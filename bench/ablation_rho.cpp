// Ablation — the CVR budget rho.  Sweeps rho over three decades and
// reports: blocks K needed at k = d = 16, PMs used by QueuingFFD, the
// analytic worst CVR bound, and the measured mean/max CVR, exposing the
// performance/consolidation trade-off the paper's Eq. (5) parameterizes.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"

int main() {
  using namespace burstq;
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kVms = 300;
  const std::size_t kSlots = 20000;
  const std::vector<double> kRhos{0.001, 0.003, 0.01, 0.03, 0.1};

  Rng rng(77);
  const auto inst = pattern_instance(SpikePattern::kEqual, kVms, kVms,
                                     paper_onoff_params(), rng);

  auto csv = open_csv("ablation_rho.csv");
  csv.row({"rho", "blocks_at_k16", "pms_used", "worst_bound", "mean_cvr",
           "max_cvr"});

  banner("rho ablation (Rb=Re pattern, 300 VMs, 20000 slots)");
  ConsoleTable out({"rho", "K(16)", "PMs used", "analytic bound",
                    "measured mean CVR", "measured max CVR"});
  for (const double rho : kRhos) {
    QueuingFfdOptions opt;
    opt.rho = rho;
    const auto outcome = queuing_ffd(inst, opt);
    const auto cvr =
        simulate_cvr(inst, outcome.result.placement, kSlots, Rng(3));
    double mean = 0.0;
    double mx = 0.0;
    std::size_t used = 0;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      if (outcome.result.placement.count_on(PmId{j}) == 0) continue;
      mean += cvr[j];
      mx = std::max(mx, cvr[j]);
      ++used;
    }
    mean /= static_cast<double>(used);
    out.add_row({ConsoleTable::num(rho, 3),
                 std::to_string(outcome.table.blocks(16)),
                 std::to_string(outcome.result.pms_used()),
                 ConsoleTable::num(outcome.table.cvr_bound(16), 4),
                 ConsoleTable::num(mean, 4), ConsoleTable::num(mx, 4)});
    csv.begin_row();
    csv.field(rho)
        .field(outcome.table.blocks(16))
        .field(outcome.result.pms_used())
        .field(outcome.table.cvr_bound(16))
        .field(mean)
        .field(mx);
    csv.end_row();
  }
  out.print(std::cout);
  csv.flush();
  std::cout << "\n[ablation_rho] tighter rho -> more blocks -> more PMs; "
               "measured CVR tracks the analytic bound.  CSV: "
               "bench_out/ablation_rho.csv\n";
  return 0;
}
