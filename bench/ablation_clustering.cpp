// Ablation — the Re-similarity clustering step (Algorithm 2 lines 7-9).
// Sweeping the bucket count from 1 (no clustering: plain Rb-descending
// FFD order) upward shows how much the "collocate similar spikes" idea
// contributes to the packing, per workload pattern.

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/queuing_ffd.h"

int main() {
  using namespace burstq;
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kVms = 400;
  const std::size_t kTrials = 5;
  const std::vector<std::size_t> kBuckets{1, 2, 4, 8, 16, 32};

  auto csv = open_csv("ablation_clustering.csv");
  csv.row({"pattern", "buckets", "pms_used_avg"});

  for (const auto pattern : all_patterns()) {
    banner("Clustering ablation (" + pattern_name(pattern) + ") — avg PMs "
           "used over " + std::to_string(kTrials) + " trials");
    ConsoleTable out({"Re buckets", "PMs used (avg)"});
    for (const auto buckets : kBuckets) {
      double pms = 0.0;
      for (std::size_t t = 0; t < kTrials; ++t) {
        Rng rng(5000 + 17 * t + static_cast<std::uint64_t>(pattern));
        const auto inst = pattern_instance(pattern, kVms, kVms,
                                           paper_onoff_params(), rng);
        QueuingFfdOptions opt;
        opt.cluster_buckets = buckets;
        pms += static_cast<double>(queuing_ffd(inst, opt).result.pms_used());
      }
      pms /= static_cast<double>(kTrials);
      out.add_row({std::to_string(buckets), ConsoleTable::num(pms, 1)});
      csv.begin_row();
      csv.field(pattern_name(pattern)).field(buckets).field(pms);
      csv.end_row();
    }
    out.print(std::cout);
  }
  csv.flush();
  std::cout << "\n[ablation_clustering] buckets=1 disables the two-step "
               "scheme; the drop from 1 to ~8 buckets is the clustering "
               "win.  CSV: bench_out/ablation_clustering.csv\n";
  return 0;
}
