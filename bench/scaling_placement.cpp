// Scaling study for the incremental placement engine (see
// docs/PERFORMANCE.md): first-fit under Eq. (17) with the O(log m)
// slack-tree descent vs the O(m) linear scan, at 10^4-10^6 VMs.
//
// Three drivers are compared on identical instances and visit orders:
//
//   naive-walk    unbound Placement: every Eq. (17) check walks the
//                 hosted list (the pre-aggregate seed behaviour, O(k)
//                 per check).  Skipped above --walk-cap VMs by default
//                 because it is quadratic-ish and exists only as the
//                 historical baseline.
//   naive         generic first_fit_place driver with a bound Placement:
//                 O(1) checks, O(m) scan per VM.
//   incremental   first_fit_place_reservation: slack-tree descent,
//                 O(log m) per VM.
//
// All drivers must produce bit-identical placements; the harness aborts
// if they diverge.  It also times QueuingFFD end-to-end (naive vs
// incremental engine, MapCal cache cleared before each run) and verifies
// the MapCal memoization: a second identical run must perform zero new
// stationary solves (`mapcal.table.builds` delta == 0).
//
// Output: console table, scaling_placement.csv, and a machine-readable
// BENCH_placement.json in the output directory (bench_out/ or
// BURSTQ_OUT_DIR).
//
// Usage: scaling_placement [--n N] [--large] [--smoke] [--walk-cap N]

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/args.h"
#include "common/error.h"
#include "core/scenario.h"
#include "placement/cluster.h"
#include "placement/first_fit.h"
#include "placement/incremental.h"
#include "placement/queuing_ffd.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace {

using namespace burstq;

template <typename F>
double time_s(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The pre-aggregate seed driver: unbound placement, so every Eq. (17)
/// check re-walks the PM's hosted list.
PlacementResult first_fit_walk(const ProblemInstance& inst,
                               const std::vector<std::size_t>& order,
                               const MapCalTable& table) {
  PlacementResult result{Placement(inst.n_vms(), inst.n_pms()), {}};
  for (const std::size_t vi : order) {
    const VmId vm{vi};
    bool placed = false;
    for (std::size_t j = 0; j < inst.n_pms() && !placed; ++j) {
      const PmId pm{j};
      if (fits_with_reservation(inst, result.placement, vm, pm, table)) {
        result.placement.assign(vm, pm);
        placed = true;
      }
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  return result;
}

bool same_placement(const ProblemInstance& inst, const PlacementResult& a,
                    const PlacementResult& b) {
  if (a.unplaced != b.unplaced) return false;
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    if (a.placement.pm_of(VmId{i}) != b.placement.pm_of(VmId{i}))
      return false;
  return true;
}

std::uint64_t counter_value(const char* name) {
  const auto snap = obs::metrics().scrape();
  const auto* sample = snap.counter(name);
  return sample != nullptr ? sample->value : 0;
}

struct Row {
  std::size_t n{0}, m{0};
  std::string engine;
  double seconds{0.0};
  std::size_t pms_used{0};
  bool identical{true};
};

}  // namespace

int main(int argc, char** argv) {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  ArgParser args("scaling_placement",
                 "incremental vs naive first-fit scaling study");
  args.add_option("n", "run a single problem size instead of the sweep");
  args.add_flag("large", "add n = 10^6 to the sweep");
  args.add_flag("smoke", "tiny run (n = 5000) for CI smoke tests");
  args.add_option("walk-cap",
                  "largest n for the quadratic naive-walk baseline", "20000");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage();
    return 2;
  }

  std::vector<std::size_t> sizes{10'000, 100'000};
  if (args.flag("large")) sizes.push_back(1'000'000);
  if (args.flag("smoke")) sizes = {5'000};
  if (args.has("n"))
    sizes = {static_cast<std::size_t>(args.get_int("n"))};
  const auto walk_cap = static_cast<std::size_t>(args.get_int("walk-cap"));

  const OnOffParams params = paper_onoff_params();
  QueuingFfdOptions naive_opt;
  naive_opt.engine = PlacementEngine::kNaive;
  QueuingFfdOptions incr_opt;
  incr_opt.engine = PlacementEngine::kIncremental;

  std::vector<Row> rows;
  struct EndToEnd {
    std::size_t n{0};
    double naive_s{0.0}, incremental_s{0.0}, speedup{0.0};
  };
  std::vector<EndToEnd> e2e;

  for (const std::size_t n : sizes) {
    const std::size_t m = n / 8;
    Rng rng(4242 + n);
    const auto inst = random_instance(n, m, params, InstanceRanges{}, rng);
    const auto order = queuing_ffd_order(inst.vms, naive_opt.cluster_buckets);
    const MapCalTable table(naive_opt.max_vms_per_pm, params, naive_opt.rho,
                            naive_opt.method);
    const auto fits = [&](const Placement& p, VmId vm, PmId pm) {
      return fits_with_reservation(inst, p, vm, pm, table);
    };

    banner("first-fit drivers, n = " + std::to_string(n) +
           " VMs, m = " + std::to_string(m) + " PMs");
    ConsoleTable out({"engine", "seconds", "PMs used", "identical"});

    PlacementResult incr{Placement(1, 1), {}};
    IncrementalStats stats;
    const double incr_s = time_s([&] {
      incr = first_fit_place_reservation(inst, order, table, &stats);
    });
    rows.push_back({n, m, "incremental", incr_s, incr.pms_used(), true});

    PlacementResult naive{Placement(1, 1), {}};
    const double naive_s =
        time_s([&] { naive = first_fit_place(inst, order, fits); });
    const bool naive_same = same_placement(inst, naive, incr);
    rows.push_back({n, m, "naive", naive_s, naive.pms_used(), naive_same});
    BURSTQ_REQUIRE(naive_same,
                   "incremental placement diverged from the naive driver");

    if (n <= walk_cap) {
      PlacementResult walk{Placement(1, 1), {}};
      const double walk_s =
          time_s([&] { walk = first_fit_walk(inst, order, table); });
      const bool walk_same = same_placement(inst, walk, incr);
      rows.push_back({n, m, "naive-walk", walk_s, walk.pms_used(), walk_same});
      BURSTQ_REQUIRE(walk_same,
                     "incremental placement diverged from the walk baseline");
    }

    for (auto it = rows.end() - (n <= walk_cap ? 3 : 2); it != rows.end();
         ++it)
      out.add_row({it->engine, ConsoleTable::num(it->seconds, 4),
                   std::to_string(it->pms_used),
                   it->identical ? "yes" : "NO"});
    out.add_row({"(tree descents)", std::to_string(stats.tree_descents),
                 "exact checks", std::to_string(stats.exact_checks)});
    out.print(std::cout);

    // End-to-end Algorithm 2, cold MapCal cache for both engines.
    EndToEnd e{n, 0.0, 0.0, 0.0};
    QueuingFfdOutcome a{{Placement(1, 1), {}},
                        MapCalTable(1, params, naive_opt.rho),
                        params};
    QueuingFfdOutcome b = a;
    mapcal_table_cache_clear();
    e.naive_s = time_s([&] { a = queuing_ffd(inst, naive_opt); });
    mapcal_table_cache_clear();
    e.incremental_s = time_s([&] { b = queuing_ffd(inst, incr_opt); });
    BURSTQ_REQUIRE(same_placement(inst, a.result, b.result),
                   "QueuingFFD engines disagree");
    e.speedup = e.naive_s / e.incremental_s;
    e2e.push_back(e);
    std::cout << "QueuingFFD end-to-end: naive "
              << ConsoleTable::num(e.naive_s, 4) << " s, incremental "
              << ConsoleTable::num(e.incremental_s, 4) << " s  ->  "
              << ConsoleTable::num(e.speedup, 1) << "x\n";
  }

  // MapCal memoization: a second run with identical (params, rho, d,
  // method) must not rebuild the table.
  banner("MapCal table cache");
  bool cache_ok = true;
  std::uint64_t builds_delta = 0, hits_delta = 0;
  {
    const std::size_t n = sizes.front();
    Rng rng(991);
    const auto inst =
        random_instance(n, n / 8, params, InstanceRanges{}, rng);
    mapcal_table_cache_clear();
    (void)queuing_ffd(inst, incr_opt);
    const std::uint64_t builds0 = counter_value("mapcal.table.builds");
    const std::uint64_t hits0 = counter_value("mapcal.table.cache_hits");
    (void)queuing_ffd(inst, incr_opt);
    builds_delta = counter_value("mapcal.table.builds") - builds0;
    hits_delta = counter_value("mapcal.table.cache_hits") - hits0;
    if (obs::kEnabled) {
      cache_ok = builds_delta == 0 && hits_delta >= 1;
      BURSTQ_REQUIRE(cache_ok,
                     "second identical QueuingFFD run rebuilt the MapCal "
                     "table instead of hitting the cache");
    }
    std::cout << "second run: " << builds_delta << " new table builds, "
              << hits_delta << " cache hits (cache size "
              << mapcal_table_cache_size() << ")\n";
  }

  auto csv = open_csv("scaling_placement.csv");
  csv.row({"n", "m", "engine", "seconds", "pms_used", "identical"});
  for (const auto& r : rows) {
    csv.begin_row();
    csv.field(r.n).field(r.m).field(r.engine).field(r.seconds);
    csv.field(r.pms_used).field(r.identical ? "yes" : "no");
    csv.end_row();
  }
  csv.flush();

  // Machine-readable summary for CI artifact collection.
  const std::string json_path =
      burstq::bench::out_dir() + "/BENCH_placement.json";
  {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"scaling_placement\",\n  \"drivers\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      json << "    {\"n\": " << r.n << ", \"m\": " << r.m
           << ", \"engine\": \"" << r.engine
           << "\", \"seconds\": " << r.seconds
           << ", \"pms_used\": " << r.pms_used << ", \"identical\": "
           << (r.identical ? "true" : "false") << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"queuing_ffd_end_to_end\": [\n";
    for (std::size_t i = 0; i < e2e.size(); ++i) {
      const auto& e = e2e[i];
      json << "    {\"n\": " << e.n << ", \"naive_seconds\": " << e.naive_s
           << ", \"incremental_seconds\": " << e.incremental_s
           << ", \"speedup\": " << e.speedup << "}"
           << (i + 1 < e2e.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"mapcal_cache\": {\"second_run_builds\": "
         << builds_delta << ", \"second_run_hits\": " << hits_delta
         << ", \"zero_rebuild_confirmed\": " << (cache_ok ? "true" : "false")
         << "}\n}\n";
  }
  std::cout << "\nwrote " << json_path << "\n";

  burstq::bench::emit_obs_summary("scaling_placement");
  return 0;
}
