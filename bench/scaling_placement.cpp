// Scaling study for the placement engines (see docs/PERFORMANCE.md):
// first-fit under Eq. (17) with the O(log m) slack-tree descent vs the
// O(m) linear scan vs the sharded parallel engine, at 10^4-10^6 VMs.
//
// Four drivers are compared on identical instances and visit orders:
//
//   naive-walk    unbound Placement: every Eq. (17) check walks the
//                 hosted list (the pre-aggregate seed behaviour, O(k)
//                 per check).  Skipped above --walk-cap VMs by default
//                 because it is quadratic-ish and exists only as the
//                 historical baseline.
//   naive         generic first_fit_place driver with a bound Placement:
//                 O(1) checks, O(m) scan per VM.  Skipped above
//                 --naive-cap VMs (n * m checks is infeasible at 10^6).
//   incremental   first_fit_place_reservation: slack-tree descent,
//                 O(log m) per VM, single-threaded.
//   sharded       sharded_place_reservation: per-shard slack trees with
//                 a parallel local phase and deterministic cross-shard
//                 reconciliation (placement/sharded.h).
//
// naive/naive-walk must be bit-identical to incremental.  The sharded
// engine is bit-identical to incremental when it resolves to one shard;
// with S > 1 its placement legitimately differs (home-shard first fit),
// so the harness instead pins its *thread determinism*: the same run at
// 1, 3, and the requested thread count must agree bit-for-bit.
//
// It also times QueuingFFD end-to-end (naive vs incremental vs sharded
// engine, MapCal cache cleared before each run) and verifies the MapCal
// memoization: a second identical run must perform zero new stationary
// solves (`mapcal.table.builds` delta == 0).
//
// Output: console table, scaling_placement.csv, and a machine-readable
// BENCH_placement.json in the output directory (bench_out/ or
// BURSTQ_OUT_DIR).  The JSON is written BEFORE any divergence aborts the
// process, so CI artifacts capture failing runs too.
//
// Usage: scaling_placement [--n N] [--large] [--smoke] [--walk-cap N]
//                          [--naive-cap N] [--threads T] [--shards S]

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/args.h"
#include "common/error.h"
#include "common/parallel.h"
#include "core/scenario.h"
#include "placement/cluster.h"
#include "placement/first_fit.h"
#include "placement/incremental.h"
#include "placement/queuing_ffd.h"
#include "placement/sharded.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace {

using namespace burstq;

template <typename F>
double time_s(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The pre-aggregate seed driver: unbound placement, so every Eq. (17)
/// check re-walks the PM's hosted list.
PlacementResult first_fit_walk(const ProblemInstance& inst,
                               const std::vector<std::size_t>& order,
                               const MapCalTable& table) {
  PlacementResult result{Placement(inst.n_vms(), inst.n_pms()), {}};
  for (const std::size_t vi : order) {
    const VmId vm{vi};
    bool placed = false;
    for (std::size_t j = 0; j < inst.n_pms() && !placed; ++j) {
      const PmId pm{j};
      if (fits_with_reservation(inst, result.placement, vm, pm, table)) {
        result.placement.assign(vm, pm);
        placed = true;
      }
    }
    if (!placed) result.unplaced.push_back(vm);
  }
  return result;
}

bool same_placement(const ProblemInstance& inst, const PlacementResult& a,
                    const PlacementResult& b) {
  if (a.unplaced != b.unplaced) return false;
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    if (a.placement.pm_of(VmId{i}) != b.placement.pm_of(VmId{i}))
      return false;
  return true;
}

std::uint64_t counter_value(const char* name) {
  const auto snap = obs::metrics().scrape();
  const auto* sample = snap.counter(name);
  return sample != nullptr ? sample->value : 0;
}

struct Row {
  std::size_t n{0}, m{0};
  std::string engine;
  double seconds{0.0};
  std::size_t pms_used{0};
  bool identical{true};  ///< vs incremental; for S>1 sharded rows, the
                         ///< thread-determinism verdict instead
};

/// Per-size sharded-engine record for the JSON summary.
struct ShardedRun {
  std::size_t n{0}, m{0};
  ShardedStats stats;
  double seconds{0.0};
  double speedup_vs_incremental{0.0};
  bool thread_deterministic{true};
};

}  // namespace

int main(int argc, char** argv) {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  ArgParser args("scaling_placement",
                 "incremental vs naive vs sharded first-fit scaling study");
  args.add_option("n", "run a single problem size instead of the sweep");
  args.add_flag("large", "add n = 10^6, m = 10^5 to the sweep");
  args.add_flag("smoke", "tiny run (n = 5000) for CI smoke tests");
  args.add_option("walk-cap",
                  "largest n for the quadratic naive-walk baseline", "20000");
  args.add_option("naive-cap",
                  "largest n for the O(n*m) naive linear-scan driver",
                  "200000");
  args.add_option("threads",
                  "worker threads (0 = BURSTQ_THREADS or hardware)", "0");
  args.add_option("shards",
                  "PM shards for the sharded engine (0 = auto from m)", "1");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage();
    return 2;
  }

  std::vector<std::size_t> sizes{10'000, 100'000};
  if (args.flag("large")) sizes.push_back(1'000'000);
  if (args.flag("smoke")) sizes = {5'000};
  if (args.has("n"))
    sizes = {static_cast<std::size_t>(args.get_int("n"))};
  const auto walk_cap = static_cast<std::size_t>(args.get_int("walk-cap"));
  const auto naive_cap = static_cast<std::size_t>(args.get_int("naive-cap"));
  const auto threads_arg =
      static_cast<std::size_t>(args.get_int("threads"));
  const auto shards_arg = static_cast<std::size_t>(args.get_int("shards"));
  if (threads_arg > 0) set_thread_count_override(threads_arg);

  const OnOffParams params = paper_onoff_params();
  QueuingFfdOptions naive_opt;
  naive_opt.engine = PlacementEngine::kNaive;
  QueuingFfdOptions incr_opt;
  incr_opt.engine = PlacementEngine::kIncremental;
  QueuingFfdOptions shard_opt;
  shard_opt.engine = PlacementEngine::kSharded;
  shard_opt.sharded.shards = shards_arg;

  std::vector<Row> rows;
  std::vector<ShardedRun> sharded_runs;
  std::vector<std::string> failures;  ///< reported AFTER the JSON lands
  struct EndToEnd {
    std::size_t n{0};
    double naive_s{0.0}, incremental_s{0.0}, sharded_s{0.0};
    double speedup{0.0};          ///< naive / incremental (0 when skipped)
    double sharded_speedup{0.0};  ///< incremental / sharded
  };
  std::vector<EndToEnd> e2e;

  for (const std::size_t n : sizes) {
    // The acceptance-scale point is the paper-sized 10^6 VMs on 10^5 PMs;
    // smaller sweep points keep the historical n/8 fleet.
    const std::size_t m = n >= 1'000'000 ? n / 10 : n / 8;
    Rng rng(4242 + n);
    const auto inst = random_instance(n, m, params, InstanceRanges{}, rng);
    const auto order = queuing_ffd_order(inst.vms, naive_opt.cluster_buckets);
    const MapCalTable table(naive_opt.max_vms_per_pm, params, naive_opt.rho,
                            naive_opt.method);
    const auto fits = [&](const Placement& p, VmId vm, PmId pm) {
      return fits_with_reservation(inst, p, vm, pm, table);
    };

    banner("first-fit drivers, n = " + std::to_string(n) +
           " VMs, m = " + std::to_string(m) + " PMs");
    ConsoleTable out({"engine", "seconds", "PMs used", "identical/det"});
    const std::size_t row_base = rows.size();

    PlacementResult incr{Placement(1, 1), {}};
    IncrementalStats stats;
    const double incr_s = time_s([&] {
      incr = first_fit_place_reservation(inst, order, table, &stats);
    });
    rows.push_back({n, m, "incremental", incr_s, incr.pms_used(), true});

    // Sharded engine at the requested shard count, then the thread-
    // determinism pin: 1 and 3 workers must reproduce it bit-for-bit.
    ShardedRun srun{n, m, {}, 0.0, 0.0, true};
    ShardedOptions sopt = shard_opt.sharded;
    sopt.threads = threads_arg;
    PlacementResult shard{Placement(1, 1), {}};
    srun.seconds = time_s([&] {
      shard = sharded_place_reservation(inst, order, table, sopt,
                                        &srun.stats);
    });
    srun.speedup_vs_incremental = incr_s / srun.seconds;
    for (const std::size_t t : {std::size_t{1}, std::size_t{3}}) {
      ShardedOptions repeat = sopt;
      repeat.threads = t;
      const auto again = sharded_place_reservation(inst, order, table, repeat);
      if (!same_placement(inst, shard, again)) {
        srun.thread_deterministic = false;
        failures.push_back("sharded engine diverged between thread counts "
                           "at n = " + std::to_string(n));
      }
    }
    const bool shard_vs_incr =
        srun.stats.shards == 1 ? same_placement(inst, shard, incr)
                               : srun.thread_deterministic;
    if (srun.stats.shards == 1 && !shard_vs_incr)
      failures.push_back("single-shard engine diverged from incremental at "
                         "n = " + std::to_string(n));
    rows.push_back({n, m,
                    "sharded[S=" + std::to_string(srun.stats.shards) + "]",
                    srun.seconds, shard.pms_used(), shard_vs_incr});
    sharded_runs.push_back(srun);

    if (n <= naive_cap) {
      PlacementResult naive{Placement(1, 1), {}};
      const double naive_s =
          time_s([&] { naive = first_fit_place(inst, order, fits); });
      const bool naive_same = same_placement(inst, naive, incr);
      rows.push_back({n, m, "naive", naive_s, naive.pms_used(), naive_same});
      if (!naive_same)
        failures.push_back("incremental placement diverged from the naive "
                           "driver at n = " + std::to_string(n));
    }

    if (n <= walk_cap) {
      PlacementResult walk{Placement(1, 1), {}};
      const double walk_s =
          time_s([&] { walk = first_fit_walk(inst, order, table); });
      const bool walk_same = same_placement(inst, walk, incr);
      rows.push_back({n, m, "naive-walk", walk_s, walk.pms_used(), walk_same});
      if (!walk_same)
        failures.push_back("incremental placement diverged from the walk "
                           "baseline at n = " + std::to_string(n));
    }

    for (auto it = rows.begin() + static_cast<std::ptrdiff_t>(row_base);
         it != rows.end(); ++it)
      out.add_row({it->engine, ConsoleTable::num(it->seconds, 4),
                   std::to_string(it->pms_used),
                   it->identical ? "yes" : "NO"});
    out.add_row({"(tree descents)", std::to_string(stats.tree_descents),
                 "exact checks", std::to_string(stats.exact_checks)});
    out.print(std::cout);
    std::cout << "sharded: " << srun.stats.shards << " shards, "
              << srun.stats.threads << " threads, " << srun.stats.spills
              << " spills (" << srun.stats.reconcile_placed
              << " reconciled), " << srun.stats.steals << " steals\n";

    // End-to-end Algorithm 2, cold MapCal cache for every engine.
    EndToEnd e{n, 0.0, 0.0, 0.0, 0.0, 0.0};
    QueuingFfdOutcome b{{Placement(1, 1), {}},
                        MapCalTable(1, params, naive_opt.rho),
                        params};
    QueuingFfdOutcome c = b;
    mapcal_table_cache_clear();
    e.incremental_s = time_s([&] { b = queuing_ffd(inst, incr_opt); });
    mapcal_table_cache_clear();
    e.sharded_s = time_s([&] { c = queuing_ffd(inst, shard_opt); });
    e.sharded_speedup = e.incremental_s / e.sharded_s;
    if (n <= naive_cap) {
      QueuingFfdOutcome a = b;
      mapcal_table_cache_clear();
      e.naive_s = time_s([&] { a = queuing_ffd(inst, naive_opt); });
      if (!same_placement(inst, a.result, b.result))
        failures.push_back("QueuingFFD naive/incremental engines disagree "
                           "at n = " + std::to_string(n));
      e.speedup = e.naive_s / e.incremental_s;
    }
    e2e.push_back(e);
    std::cout << "QueuingFFD end-to-end: naive "
              << (e.naive_s > 0.0 ? ConsoleTable::num(e.naive_s, 4)
                                  : std::string("(skipped)"))
              << " s, incremental " << ConsoleTable::num(e.incremental_s, 4)
              << " s, sharded " << ConsoleTable::num(e.sharded_s, 4)
              << " s  ->  sharded " << ConsoleTable::num(e.sharded_speedup, 2)
              << "x vs incremental\n";
  }

  // MapCal memoization: a second run with identical (params, rho, d,
  // method) must not rebuild the table.
  banner("MapCal table cache");
  bool cache_ok = true;
  std::uint64_t builds_delta = 0, hits_delta = 0;
  {
    const std::size_t n = sizes.front();
    Rng rng(991);
    const auto inst =
        random_instance(n, n / 8, params, InstanceRanges{}, rng);
    mapcal_table_cache_clear();
    (void)queuing_ffd(inst, incr_opt);
    const std::uint64_t builds0 = counter_value("mapcal.table.builds");
    const std::uint64_t hits0 = counter_value("mapcal.table.cache_hits");
    (void)queuing_ffd(inst, incr_opt);
    builds_delta = counter_value("mapcal.table.builds") - builds0;
    hits_delta = counter_value("mapcal.table.cache_hits") - hits0;
    if (obs::kEnabled) {
      cache_ok = builds_delta == 0 && hits_delta >= 1;
      if (!cache_ok)
        failures.push_back("second identical QueuingFFD run rebuilt the "
                           "MapCal table instead of hitting the cache");
    }
    std::cout << "second run: " << builds_delta << " new table builds, "
              << hits_delta << " cache hits (cache size "
              << mapcal_table_cache_size() << ")\n";
  }

  auto csv = open_csv("scaling_placement.csv");
  csv.row({"n", "m", "engine", "seconds", "pms_used", "identical"});
  for (const auto& r : rows) {
    csv.begin_row();
    csv.field(r.n).field(r.m).field(r.engine).field(r.seconds);
    csv.field(r.pms_used).field(r.identical ? "yes" : "no");
    csv.end_row();
  }
  csv.flush();

  // Machine-readable summary for CI artifact collection.  Written before
  // the divergence checks below abort, so failing runs still ship data.
  const std::string json_path =
      burstq::bench::out_dir() + "/BENCH_placement.json";
  {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"scaling_placement\",\n  \"hardware\": {"
         << "\"hardware_concurrency\": "
         << std::thread::hardware_concurrency()
         << ", \"threads\": " << default_thread_count()
         << ", \"requested_shards\": " << shards_arg << "},\n"
         << "  \"drivers\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      json << "    {\"n\": " << r.n << ", \"m\": " << r.m
           << ", \"engine\": \"" << r.engine
           << "\", \"seconds\": " << r.seconds
           << ", \"pms_used\": " << r.pms_used << ", \"identical\": "
           << (r.identical ? "true" : "false") << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"sharded\": [\n";
    for (std::size_t i = 0; i < sharded_runs.size(); ++i) {
      const auto& s = sharded_runs[i];
      json << "    {\"n\": " << s.n << ", \"m\": " << s.m
           << ", \"shards\": " << s.stats.shards
           << ", \"threads\": " << s.stats.threads
           << ", \"seconds\": " << s.seconds
           << ", \"speedup_vs_incremental\": " << s.speedup_vs_incremental
           << ", \"local_placed\": " << s.stats.local_placed
           << ", \"spills\": " << s.stats.spills
           << ", \"reconcile_placed\": " << s.stats.reconcile_placed
           << ", \"steals\": " << s.stats.steals
           << ", \"budget_exhausted\": " << s.stats.budget_exhausted
           << ", \"thread_deterministic\": "
           << (s.thread_deterministic ? "true" : "false") << "}"
           << (i + 1 < sharded_runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"queuing_ffd_end_to_end\": [\n";
    for (std::size_t i = 0; i < e2e.size(); ++i) {
      const auto& e = e2e[i];
      json << "    {\"n\": " << e.n << ", \"naive_seconds\": " << e.naive_s
           << ", \"incremental_seconds\": " << e.incremental_s
           << ", \"sharded_seconds\": " << e.sharded_s
           << ", \"speedup\": " << e.speedup
           << ", \"sharded_speedup\": " << e.sharded_speedup << "}"
           << (i + 1 < e2e.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"mapcal_cache\": {\"second_run_builds\": "
         << builds_delta << ", \"second_run_hits\": " << hits_delta
         << ", \"zero_rebuild_confirmed\": " << (cache_ok ? "true" : "false")
         << "},\n  \"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i)
      json << "\"" << failures[i] << "\""
           << (i + 1 < failures.size() ? ", " : "");
    json << "]\n}\n";
  }
  std::cout << "\nwrote " << json_path << "\n";

  burstq::bench::emit_obs_summary("scaling_placement");

  for (const auto& f : failures) std::cerr << "FAILURE: " << f << "\n";
  BURSTQ_REQUIRE(failures.empty(), "placement scaling study found "
                                   "divergences (see BENCH_placement.json)");
  return 0;
}
