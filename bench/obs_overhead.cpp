// Telemetry overhead study: what does the observability layer cost on
// the hot paths, and does scraping a live run perturb it?
//
// Five measurements:
//
//   primitives   ns/op for the BURSTQ_COUNT / GAUGE / HIST / SPAN macros
//                plus a full registry scrape and a Prometheus render.
//                Under -DBURSTQ_NO_OBS the macros compile to nothing and
//                the per-op cost reads ~0.
//   queuing FFD  Algorithm 2 end-to-end (MapCal table build + the
//                incremental placement engine), cold and warm cache.
//   slot loop    ns/slot for the ClusterSimulator main loop on an
//                overcommitted instance (migrations + CVR tracking +
//                SLO windows), run twice with the same seed.  The two
//                SimReports must be field-identical or the harness
//                exits 1 — instrumentation must not leak into results.
//   scrape load  the same run with a background thread hammering
//                scrape() + render_prometheus() throughout.  The report
//                must still match the baseline bit-for-bit, proving a
//                /metrics scraper cannot perturb a deterministic run.
//   recorder     the same run again with the flight recorder at detail
//                level, once per sink format (JSONL, BTRC, BTRC+LZ):
//                write throughput, on-disk bytes, and full read-back
//                throughput.  Emits BENCH_trace.json with the headline
//                BTRC-vs-JSONL size reduction and read speedup; skipped
//                (with a stub JSON) under -DBURSTQ_NO_OBS since a
//                stripped build records no events.
//
// CI builds this twice (default and -DBURSTQ_NO_OBS=ON) and compares the
// two BENCH_obs.json files: the instrumented slot loop must stay within
// a few percent of the stripped build.
//
// Output: console tables + BENCH_obs.json and BENCH_trace.json in
// bench_out/ (BURSTQ_OUT_DIR).
//
// Usage: obs_overhead [--smoke] [--vms N] [--slots N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <optional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/args.h"
#include "obs/event_log.h"
#include "obs/jsonl.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "placement/placement.h"
#include "placement/queuing_ffd.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"
#include "sim/cluster_sim.h"

namespace {

using namespace burstq;

template <typename F>
double time_s(F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Field-by-field SimReport equality.  Determinism means exact doubles.
bool reports_identical(const SimReport& a, const SimReport& b) {
  return a.total_migrations == b.total_migrations &&
         a.failed_migrations == b.failed_migrations &&
         a.pms_used_end == b.pms_used_end &&
         a.pms_used_max == b.pms_used_max &&
         a.pms_used_timeline == b.pms_used_timeline &&
         a.migrations_per_slot == b.migrations_per_slot &&
         a.events.size() == b.events.size() && a.pm_cvr == b.pm_cvr &&
         a.pm_windowed_cvr_end == b.pm_windowed_cvr_end &&
         a.mean_cvr == b.mean_cvr && a.max_cvr == b.max_cvr &&
         a.energy_wh == b.energy_wh;
}

struct PrimitiveCost {
  std::string name;
  double ns_per_op{0.0};
};

}  // namespace

int main(int argc, char** argv) {
  using burstq::bench::banner;

  ArgParser args("obs_overhead",
                 "telemetry hot-path cost and scrape-perturbation check");
  args.add_flag("smoke", "tiny run for CI smoke tests");
  args.add_option("vms", "number of VMs in the slot-loop instance", "400");
  args.add_option("slots", "simulated slots per run", "600");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage();
    return 2;
  }
  const bool smoke = args.flag("smoke");
  const std::size_t n_vms =
      smoke ? 60 : static_cast<std::size_t>(args.get_int("vms"));
  const std::size_t slots =
      smoke ? 80 : static_cast<std::size_t>(args.get_int("slots"));
  const std::size_t prim_iters = smoke ? 200'000 : 2'000'000;

  banner("telemetry primitives (" + std::to_string(prim_iters) + " ops)");
  std::vector<PrimitiveCost> prims;
  const auto prim = [&](const std::string& name, auto&& body) {
    const double s = time_s([&] {
      for (std::size_t i = 0; i < prim_iters; ++i) body(i);
    });
    prims.push_back({name, s * 1e9 / static_cast<double>(prim_iters)});
  };
  prim("counter.add", [](std::size_t) { BURSTQ_COUNT("bench.count", 1); });
  prim("gauge.set", [](std::size_t i) {
    BURSTQ_GAUGE("bench.gauge", static_cast<double>(i));
  });
  prim("hist.record", [](std::size_t i) {
    BURSTQ_HIST("bench.hist", static_cast<std::uint64_t>(i));
  });
  prim("span.enter_exit", [](std::size_t) { BURSTQ_SPAN("bench.span"); });

  // Scrape + render cost over whatever the primitive loops left behind.
  const std::size_t scrape_iters = smoke ? 200 : 2'000;
  obs::MetricsSnapshot last;
  const double scrape_s = time_s([&] {
    for (std::size_t i = 0; i < scrape_iters; ++i)
      last = obs::metrics().scrape();
  });
  prims.push_back(
      {"registry.scrape", scrape_s * 1e9 / static_cast<double>(scrape_iters)});
  std::string rendered;
  const double render_s = time_s([&] {
    for (std::size_t i = 0; i < scrape_iters; ++i)
      rendered = obs::render_prometheus(last);
  });
  prims.push_back(
      {"prometheus.render", render_s * 1e9 / static_cast<double>(scrape_iters)});

  ConsoleTable prim_table({"primitive", "ns/op"});
  for (const auto& p : prims)
    prim_table.add_row({p.name, ConsoleTable::num(p.ns_per_op, 1)});
  prim_table.print(std::cout);

  // ---- MapCal solve + incremental placement (the paper's hot path) ---
  banner("queuing FFD (MapCal + incremental placement, " +
         std::to_string(n_vms) + " VMs)");
  ProblemInstance ffd_inst;
  for (std::size_t i = 0; i < n_vms; ++i)
    ffd_inst.vms.push_back(VmSpec{OnOffParams{0.05, 0.2}, 1.0, 4.0});
  ffd_inst.pms.assign(n_vms / 2, PmSpec{20.0});
  mapcal_table_cache_clear();
  std::optional<QueuingFfdOutcome> cold_out;
  const double ffd_cold_s = time_s(
      [&] { cold_out.emplace(queuing_ffd(ffd_inst, QueuingFfdOptions{})); });
  std::optional<QueuingFfdOutcome> warm_out;
  const double ffd_warm_s = time_s(
      [&] { warm_out.emplace(queuing_ffd(ffd_inst, QueuingFfdOptions{})); });
  ConsoleTable ffd_table({"run", "seconds", "us/vm", "placed"});
  const double d_vms = static_cast<double>(n_vms);
  ffd_table.add_row(
      {"cold (MapCal build)", ConsoleTable::num(ffd_cold_s, 4),
       ConsoleTable::num(ffd_cold_s * 1e6 / d_vms, 1),
       std::to_string(n_vms - cold_out->result.unplaced.size())});
  ffd_table.add_row(
      {"warm (table cached)", ConsoleTable::num(ffd_warm_s, 4),
       ConsoleTable::num(ffd_warm_s * 1e6 / d_vms, 1),
       std::to_string(n_vms - warm_out->result.unplaced.size())});
  ffd_table.print(std::cout);

  // ---- slot loop: overcommitted instance with live SLO windows -------
  banner("simulator slot loop (" + std::to_string(n_vms) + " VMs, " +
         std::to_string(slots) + " slots)");
  ProblemInstance inst;
  for (std::size_t i = 0; i < n_vms; ++i)
    inst.vms.push_back(VmSpec{OnOffParams{0.05, 0.08}, 2.0, 6.0});
  inst.pms.assign(n_vms / 4, PmSpec{20.0});
  Placement placed(inst);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    placed.assign(VmId{i}, PmId{i % inst.n_pms()});

  const auto run_once = [&](obs::SloTracker* slo) {
    SimConfig cfg;
    cfg.slots = slots;
    cfg.slo = slo;
    ClusterSimulator sim(inst, placed, cfg, Rng(42));
    return sim.run();
  };

  obs::SloOptions slo_opts;
  slo_opts.rho = 0.05;
  obs::SloTracker slo_a(inst.n_pms(), slo_opts);
  SimReport baseline;
  const double base_s = time_s([&] { baseline = run_once(&slo_a); });

  obs::SloTracker slo_b(inst.n_pms(), slo_opts);
  SimReport repeat;
  const double repeat_s = time_s([&] { repeat = run_once(&slo_b); });
  if (!reports_identical(baseline, repeat)) {
    std::cerr << "FATAL: same-seed runs diverged — instrumentation is "
                 "leaking into simulation results\n";
    return 1;
  }

  // Same run again while a scraper thread hammers the registry and the
  // SLO tracker, as a live /metrics endpoint would.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  obs::SloTracker slo_c(inst.n_pms(), slo_opts);
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text =
          obs::render_prometheus(obs::metrics().scrape());
      (void)slo_c.report().render();
      (void)text;
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  SimReport scraped;
  const double scraped_s = time_s([&] { scraped = run_once(&slo_c); });
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  if (!reports_identical(baseline, scraped)) {
    std::cerr << "FATAL: a concurrent scraper changed the simulation "
                 "outcome — telemetry must be read-only\n";
    return 1;
  }

  const double d_slots = static_cast<double>(slots);
  ConsoleTable loop_table({"run", "seconds", "ns/slot", "identical"});
  loop_table.add_row({"baseline", ConsoleTable::num(base_s, 3),
                      ConsoleTable::num(base_s * 1e9 / d_slots, 0), "-"});
  loop_table.add_row({"repeat", ConsoleTable::num(repeat_s, 3),
                      ConsoleTable::num(repeat_s * 1e9 / d_slots, 0),
                      "yes"});
  loop_table.add_row({"under scrape", ConsoleTable::num(scraped_s, 3),
                      ConsoleTable::num(scraped_s * 1e9 / d_slots, 0),
                      "yes"});
  loop_table.set_title("same-seed determinism under load (scrapes=" +
                       std::to_string(scrapes.load()) + ")");
  loop_table.print(std::cout);

  // ---- span-event emission: off vs sampled vs full -------------------
  // The same slot loop with a detail-level BTRC sink open, at three
  // span-event sampling rates.  Row "off" prices the sink alone; the
  // deltas price span.begin/span.end emission.  Virtual clock keeps the
  // recorded trace deterministic (and its cost is the same atomic
  // fetch_add the wall path pays for ids anyway).
  struct SpanRow {
    std::string name;
    std::uint32_t every{0};
    double seconds{0.0};
    std::uint64_t emitted{0};
    std::uint64_t dropped{0};
  };
  std::vector<SpanRow> span_rows{
      {"off", 0}, {"sampled 1/64", 64}, {"full", 1}};
  if (obs::kEnabled) {
    banner("span events (slot loop + detail sink, " +
           std::to_string(slots) + " slots)");
    const auto counter_value = [](const char* name) -> std::uint64_t {
      const obs::MetricsSnapshot snap = obs::metrics().scrape();
      const obs::CounterSample* c = snap.counter(name);
      return c == nullptr ? 0 : c->value;
    };
    const std::string span_trace =
        burstq::bench::out_dir() + "/span_bench.btrc";
    for (auto& row : span_rows) {
      const std::uint64_t emitted0 =
          counter_value("obs.span.events_emitted");
      const std::uint64_t dropped0 =
          counter_value("obs.span.events_dropped");
      obs::set_span_events({row.every, /*virtual_clock=*/true});
      row.seconds = time_s([&] {
        obs::events().open(span_trace, obs::EventFormat::kBinary,
                           obs::EventLevel::kDetail, false);
        SimConfig cfg;
        cfg.slots = slots;
        ClusterSimulator sim(inst, placed, cfg, Rng(42));
        (void)sim.run();
        obs::events().close();
      });
      obs::set_span_events({});
      row.emitted = counter_value("obs.span.events_emitted") - emitted0;
      row.dropped = counter_value("obs.span.events_dropped") - dropped0;
    }
    ConsoleTable span_table(
        {"sampling", "seconds", "ns/slot", "events", "dropped"});
    for (const auto& row : span_rows)
      span_table.add_row(
          {row.name, ConsoleTable::num(row.seconds, 3),
           ConsoleTable::num(row.seconds * 1e9 / d_slots, 0),
           std::to_string(row.emitted), std::to_string(row.dropped)});
    span_table.set_title("span.begin/span.end emission cost");
    span_table.print(std::cout);
  }

  const std::string json_path =
      burstq::bench::out_dir() + "/BENCH_obs.json";
  {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"obs_overhead\",\n"
         << "  \"obs_enabled\": " << (obs::kEnabled ? "true" : "false")
         << ",\n  \"vms\": " << n_vms << ",\n  \"slots\": " << slots
         << ",\n  \"primitives_ns\": {\n";
    for (std::size_t i = 0; i < prims.size(); ++i)
      json << "    \"" << prims[i].name << "\": " << prims[i].ns_per_op
           << (i + 1 < prims.size() ? "," : "") << "\n";
    json << "  },\n  \"queuing_ffd\": {\n"
         << "    \"cold_seconds\": " << ffd_cold_s
         << ",\n    \"warm_seconds\": " << ffd_warm_s
         << ",\n    \"placed\": "
         << n_vms - cold_out->result.unplaced.size() << "\n  },\n"
         << "  \"slot_loop\": {\n"
         << "    \"baseline_ns_per_slot\": " << base_s * 1e9 / d_slots
         << ",\n    \"repeat_ns_per_slot\": " << repeat_s * 1e9 / d_slots
         << ",\n    \"scraped_ns_per_slot\": " << scraped_s * 1e9 / d_slots
         << ",\n    \"scrapes_during_run\": " << scrapes.load()
         << ",\n    \"deterministic\": true\n  },\n"
         << "  \"span_events\": {\n"
         << "    \"skipped\": " << (obs::kEnabled ? "false" : "true");
    if (obs::kEnabled) {
      json << ",\n    \"off_ns_per_slot\": "
           << span_rows[0].seconds * 1e9 / d_slots
           << ",\n    \"sampled64_ns_per_slot\": "
           << span_rows[1].seconds * 1e9 / d_slots
           << ",\n    \"full_ns_per_slot\": "
           << span_rows[2].seconds * 1e9 / d_slots
           << ",\n    \"sampled64_events\": " << span_rows[1].emitted
           << ",\n    \"full_events\": " << span_rows[2].emitted;
    }
    json << "\n  }\n}\n";
  }
  std::cout << "\nwrote " << json_path << "\n";

  // ---- flight recorder formats: JSONL vs BTRC on a detail trace ------
  banner("flight recorder formats (detail trace, " + std::to_string(slots) +
         " slots)");
  const std::string trace_json_path =
      burstq::bench::out_dir() + "/BENCH_trace.json";
  if (!obs::kEnabled) {
    // A stripped build emits no events; recording an empty trace would
    // produce meaningless ratios.  Leave a stub so CI artifact globs and
    // cross-build comparisons still find the file.
    std::ofstream json(trace_json_path);
    json << "{\n  \"bench\": \"obs_overhead.trace\",\n"
         << "  \"obs_enabled\": false,\n  \"skipped\": true\n}\n";
    std::cout << "flight recorder stripped (BURSTQ_NO_OBS); wrote stub "
              << trace_json_path << "\n";
  } else {
    struct FormatResult {
      std::string name;
      std::string path;
      bool compress{false};
      double write_s{0.0};
      double read_s{0.0};
      std::uint64_t bytes{0};
      std::size_t events{0};
    };
    std::vector<FormatResult> fmts{
        {"jsonl", burstq::bench::out_dir() + "/trace_bench.jsonl", false},
        {"btrc", burstq::bench::out_dir() + "/trace_bench.btrc", false},
        {"btrc+lz", burstq::bench::out_dir() + "/trace_bench_lz.btrc",
         true}};
    for (auto& f : fmts) {
      f.write_s = time_s([&] {
        obs::events().open(f.path, obs::event_format_from_path(f.path),
                           obs::EventLevel::kDetail, f.compress);
        SimConfig cfg;
        cfg.slots = slots;
        ClusterSimulator sim(inst, placed, cfg, Rng(42));
        (void)sim.run();
        obs::events().close();
      });
      {
        std::ifstream in(f.path, std::ios::binary | std::ios::ate);
        f.bytes = static_cast<std::uint64_t>(in.tellg());
      }
      // Min-of-N read timing: a single cold read is dominated by page
      // cache and allocator warm-up noise; the minimum is the stable
      // decode cost the formats are actually being compared on.
      std::vector<obs::RecordedEvent> readback;
      f.read_s = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 5; ++rep) {
        const double s =
            time_s([&] { readback = obs::read_events_auto(f.path); });
        f.read_s = std::min(f.read_s, s);
      }
      f.events = readback.size();
    }
    const FormatResult& jsonl = fmts[0];
    const FormatResult& btrc = fmts[1];
    const double size_reduction =
        1.0 - static_cast<double>(btrc.bytes) /
                  static_cast<double>(jsonl.bytes);
    const double read_speedup = jsonl.read_s / btrc.read_s;

    ConsoleTable trace_table(
        {"format", "bytes", "write s", "read s", "read Mev/s"});
    for (const auto& f : fmts)
      trace_table.add_row(
          {f.name, std::to_string(f.bytes), ConsoleTable::num(f.write_s, 3),
           ConsoleTable::num(f.read_s, 3),
           ConsoleTable::num(static_cast<double>(f.events) / f.read_s / 1e6,
                             2)});
    trace_table.set_title(
        "btrc vs jsonl: " +
        ConsoleTable::num(size_reduction * 100.0, 1) + "% smaller, " +
        ConsoleTable::num(read_speedup, 1) + "x read speedup (" +
        std::to_string(jsonl.events) + " events)");
    trace_table.print(std::cout);

    std::ofstream json(trace_json_path);
    json << "{\n  \"bench\": \"obs_overhead.trace\",\n"
         << "  \"obs_enabled\": true,\n  \"slots\": " << slots
         << ",\n  \"events\": " << jsonl.events << ",\n  \"formats\": {\n";
    for (std::size_t i = 0; i < fmts.size(); ++i) {
      const auto& f = fmts[i];
      json << "    \"" << f.name << "\": {\n"
           << "      \"bytes\": " << f.bytes
           << ",\n      \"write_seconds\": " << f.write_s
           << ",\n      \"read_seconds\": " << f.read_s
           << ",\n      \"read_events_per_second\": "
           << static_cast<double>(f.events) / f.read_s << "\n    }"
           << (i + 1 < fmts.size() ? "," : "") << "\n";
    }
    json << "  },\n  \"btrc_size_reduction\": " << size_reduction
         << ",\n  \"btrc_read_speedup\": " << read_speedup << "\n}\n";
    std::cout << "wrote " << trace_json_path << "\n";
  }

  burstq::bench::emit_obs_summary("obs_overhead");
  return 0;
}
