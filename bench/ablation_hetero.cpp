// Ablation — heterogeneous (p_on, p_off) handling.
//
// The paper rounds per-VM parameters to uniform values (Section IV-E);
// burstq also implements the exact Poisson-binomial reservation.  On
// instances with increasing parameter spread, we compare:
//
//   round-mean          Algorithm 2 with mean rounding (paper default)
//   round-conservative  Algorithm 2 with (max p_on, min p_off)
//   exact               queuing_ffd_hetero (no rounding)
//
// in PMs used and realized mean/max CVR.  Mean rounding can under-reserve
// for skewed mixes (CVR above rho); conservative rounding over-reserves
// (more PMs); exact is sound and tight.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/hetero_ffd.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"

namespace {

using namespace burstq;

ProblemInstance spread_instance(double spread, std::size_t n, Rng& rng) {
  // p_on in [base*(1-spread), base*(1+spread)] (clamped), same for p_off;
  // a small fraction of "storm" VMs takes the top of the range.
  ProblemInstance inst;
  const double base_on = 0.01;
  const double base_off = 0.09;
  for (std::size_t i = 0; i < n; ++i) {
    OnOffParams p;
    if (rng.next_double() < 0.1 * spread) {
      // storm VM: frequent long spikes
      p.p_on = std::min(0.9, base_on * (1.0 + 30.0 * spread));
      p.p_off = std::max(0.01, base_off * (1.0 - 0.8 * spread));
    } else {
      p.p_on = std::clamp(base_on * rng.uniform(1.0 - spread, 1.0 + spread),
                          0.001, 0.9);
      p.p_off = std::clamp(
          base_off * rng.uniform(1.0 - spread, 1.0 + spread), 0.01, 0.9);
    }
    inst.vms.push_back(VmSpec{p, rng.uniform(2, 20), rng.uniform(2, 20)});
  }
  for (std::size_t j = 0; j < n; ++j)
    inst.pms.push_back(PmSpec{rng.uniform(80, 100)});
  return inst;
}

struct Row {
  std::size_t pms{0};
  double mean_cvr{0.0};
  double max_cvr{0.0};
};

Row evaluate(const ProblemInstance& inst, const PlacementResult& placed) {
  Row r;
  r.pms = placed.pms_used();
  const auto cvr = simulate_cvr(inst, placed.placement, 20000, Rng(11));
  std::size_t used = 0;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    if (placed.placement.count_on(PmId{j}) == 0) continue;
    r.mean_cvr += cvr[j];
    r.max_cvr = std::max(r.max_cvr, cvr[j]);
    ++used;
  }
  r.mean_cvr /= static_cast<double>(used);
  return r;
}

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  auto csv = open_csv("ablation_hetero.csv");
  csv.row({"spread", "scheme", "pms_used", "mean_cvr", "max_cvr"});

  banner("Heterogeneity ablation — rounding policies vs exact "
         "Poisson-binomial reservation (rho = 0.01)");
  ConsoleTable out({"spread", "scheme", "PMs used", "mean CVR", "max CVR"});

  for (const double spread : {0.0, 0.25, 0.5, 1.0}) {
    Rng rng(4040 + static_cast<std::uint64_t>(spread * 100));
    const auto inst = spread_instance(spread, 250, rng);

    QueuingFfdOptions mean_opt;
    mean_opt.rounding = RoundingPolicy::kMean;
    QueuingFfdOptions cons_opt;
    cons_opt.rounding = RoundingPolicy::kConservative;

    struct Named {
      const char* name;
      PlacementResult placed;
    };
    std::vector<Named> rows;
    rows.push_back({"round-mean", queuing_ffd(inst, mean_opt).result});
    rows.push_back(
        {"round-conservative", queuing_ffd(inst, cons_opt).result});
    rows.push_back({"exact", queuing_ffd_hetero(inst)});

    for (auto& named : rows) {
      if (!named.placed.complete()) {
        out.add_row({ConsoleTable::num(spread, 2), named.name,
                     "(incomplete)", "-", "-"});
        continue;
      }
      const Row r = evaluate(inst, named.placed);
      out.add_row({ConsoleTable::num(spread, 2), named.name,
                   std::to_string(r.pms), ConsoleTable::num(r.mean_cvr, 4),
                   ConsoleTable::num(r.max_cvr, 4)});
      csv.begin_row();
      csv.field(spread)
          .field(named.name)
          .field(r.pms)
          .field(r.mean_cvr)
          .field(r.max_cvr);
      csv.end_row();
    }
  }
  out.print(std::cout);
  csv.flush();
  std::cout << "\n[ablation_hetero] at spread 0 all three coincide; as the "
               "mix skews, both rounding policies mis-size the reservation "
               "(here: over-reserving, costing up to ~40% extra PMs) while "
               "the exact Poisson-binomial scheme keeps the PM count flat "
               "with CVR still at the rho budget.  CSV: "
               "bench_out/ablation_hetero.csv\n";
  return 0;
}
