// Figure 6 — runtime performance (capacity violation ratio) of each
// placement, without live migration: only local resizing, rectangular
// ON-OFF demand.
//
// The paper plots per-PM CVRs for QUEUE and RB placements (RP is omitted:
// it never violates).  QUEUE must stay bounded by rho = 0.01 with only "a
// few PMs slightly higher", while RB is "disastrous".  Beyond the paper,
// the table also reports violation *episode* structure (runs of
// consecutive violated slots) and carries the SBP related-work baseline:
// SBP's amplitude-only model concentrates violations into long episodes
// even where its CVR looks moderate.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "placement/sbp.h"
#include "sim/cluster_sim.h"
#include "sim/metrics.h"

namespace {

using namespace burstq;

struct CvrSummary {
  double mean = 0, max = 0, p95 = 0;
  double frac_over_rho = 0;
  std::size_t pms = 0;
  double mean_episode_len = 0;
  std::size_t longest_episode = 0;
};

CvrSummary summarize(const ProblemInstance& inst, const Placement& placement,
                     const std::vector<std::vector<bool>>& violations,
                     double rho) {
  SampleSet cvrs;
  double episode_len_sum = 0.0;
  std::size_t episode_count = 0;
  CvrSummary s;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    if (placement.count_on(PmId{j}) == 0) continue;
    const auto& row = violations[j];
    const auto episodes = violation_episodes(row);
    const double cvr = static_cast<double>(episodes.violated_slots) /
                       static_cast<double>(row.size());
    cvrs.add(cvr);
    episode_len_sum += episodes.mean_length *
                       static_cast<double>(episodes.episodes);
    episode_count += episodes.episodes;
    s.longest_episode = std::max(s.longest_episode, episodes.longest);
  }
  s.pms = cvrs.count();
  s.mean = cvrs.mean();
  s.max = cvrs.max();
  s.p95 = cvrs.quantile(0.95);
  std::size_t over = 0;
  for (double c : cvrs.values())
    if (c > rho) ++over;
  s.frac_over_rho =
      static_cast<double>(over) / static_cast<double>(cvrs.count());
  s.mean_episode_len = episode_count == 0
                           ? 0.0
                           : episode_len_sum /
                                 static_cast<double>(episode_count);
  return s;
}

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const double kRho = 0.01;
  const std::size_t kVms = 300;
  const std::size_t kSlots = 20000;

  auto csv = open_csv("fig6_cvr.csv");
  csv.row({"pattern", "strategy", "pms_used", "mean_cvr", "p95_cvr",
           "max_cvr", "frac_pms_over_rho", "mean_episode_len",
           "longest_episode"});

  for (const auto pattern : all_patterns()) {
    Rng rng(2024 + static_cast<std::uint64_t>(pattern));
    const auto inst =
        pattern_instance(pattern, kVms, kVms, paper_onoff_params(), rng);
    const auto queue = queuing_ffd(inst);
    const auto rb = ffd_by_normal(inst);
    const auto sbp = sbp_normal(inst, kRho);

    const Rng sim_seed = rng.split();
    banner("Figure 6 (" + pattern_name(pattern) + ") — CVR over " +
           std::to_string(kSlots) + " slots, rho = 0.01");
    ConsoleTable table({"strategy", "PMs", "mean CVR", "p95 CVR", "max CVR",
                        "PMs over rho", "mean episode", "longest"});
    const auto add = [&](const char* name, const Placement& placement) {
      const auto violations =
          record_violation_trace(inst, placement, kSlots, sim_seed);
      const CvrSummary s = summarize(inst, placement, violations, kRho);
      table.add_row({name, std::to_string(s.pms),
                     ConsoleTable::num(s.mean, 4),
                     ConsoleTable::num(s.p95, 4),
                     ConsoleTable::num(s.max, 4),
                     ConsoleTable::percent(s.frac_over_rho),
                     ConsoleTable::num(s.mean_episode_len, 1),
                     std::to_string(s.longest_episode)});
      csv.begin_row();
      csv.field(pattern_name(pattern))
          .field(name)
          .field(s.pms)
          .field(s.mean)
          .field(s.p95)
          .field(s.max)
          .field(s.frac_over_rho)
          .field(s.mean_episode_len)
          .field(s.longest_episode);
      csv.end_row();
    };
    add("QUEUE", queue.result.placement);
    add("RB", rb.placement);
    add("SBP", sbp.placement);
    table.print(std::cout);
  }
  csv.flush();
  std::cout << "\n[fig6] RP is omitted (CVR identically zero, as in the "
               "paper).  SBP is an extension column: note its episode "
               "lengths — amplitude-only packing clusters violations.  "
               "CSV: bench_out/fig6_cvr.csv\n";
  return 0;
}
