// Figure 6 — runtime performance (capacity violation ratio) of each
// placement, without live migration: only local resizing, rectangular
// ON-OFF demand.
//
// The paper plots per-PM CVRs for QUEUE and RB placements (RP is omitted:
// it never violates).  QUEUE must stay bounded by rho = 0.01 with only "a
// few PMs slightly higher", while RB is "disastrous".  Beyond the paper,
// the table also reports violation *episode* structure (runs of
// consecutive violated slots) and carries the SBP related-work baseline:
// SBP's amplitude-only model concentrates violations into long episodes
// even where its CVR looks moderate.
//
// With --obs-out the run doubles as the flight-recorder acceptance test:
// every pattern/strategy simulation is recorded as a labelled log segment,
// then replayed through sim/flight.h and checked for *exact* agreement
// with the live CVR bookkeeping.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/args.h"
#include "common/error.h"
#include "common/stats.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "placement/sbp.h"
#include "sim/cluster_sim.h"
#include "sim/flight.h"
#include "sim/metrics.h"

namespace {

using namespace burstq;

struct CvrSummary {
  double mean = 0, max = 0, p95 = 0;
  double frac_over_rho = 0;
  std::size_t pms = 0;
  double mean_episode_len = 0;
  std::size_t longest_episode = 0;
};

CvrSummary summarize(const ProblemInstance& inst, const Placement& placement,
                     const std::vector<std::vector<bool>>& violations,
                     double rho) {
  SampleSet cvrs;
  double episode_len_sum = 0.0;
  std::size_t episode_count = 0;
  CvrSummary s;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    if (placement.count_on(PmId{j}) == 0) continue;
    const auto& row = violations[j];
    const auto episodes = violation_episodes(row);
    const double cvr = static_cast<double>(episodes.violated_slots) /
                       static_cast<double>(row.size());
    cvrs.add(cvr);
    episode_len_sum += episodes.mean_length *
                       static_cast<double>(episodes.episodes);
    episode_count += episodes.episodes;
    s.longest_episode = std::max(s.longest_episode, episodes.longest);
  }
  s.pms = cvrs.count();
  s.mean = cvrs.mean();
  s.max = cvrs.max();
  s.p95 = cvrs.quantile(0.95);
  std::size_t over = 0;
  for (double c : cvrs.values())
    if (c > rho) ++over;
  s.frac_over_rho =
      static_cast<double>(over) / static_cast<double>(cvrs.count());
  s.mean_episode_len = episode_count == 0
                           ? 0.0
                           : episode_len_sum /
                                 static_cast<double>(episode_count);
  return s;
}

/// Ground truth for the replay cross-check: re-drives a CvrTracker from
/// the live violation matrix in exactly the order record_violation_trace
/// fed its flight recorder (slot-major, ascending active PM).
struct ExpectedSegment {
  std::string label;
  CvrTracker tracker;
};

ExpectedSegment expected_from_trace(
    std::string label, const ProblemInstance& inst,
    const Placement& placement,
    const std::vector<std::vector<bool>>& violations, std::size_t slots) {
  ExpectedSegment e{std::move(label), CvrTracker(inst.n_pms(), slots)};
  for (std::size_t t = 0; t < slots; ++t)
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      if (placement.count_on(PmId{j}) == 0) continue;
      e.tracker.record(PmId{j}, violations[j][t]);
    }
  return e;
}

/// Exact comparison of a replayed segment against the live bookkeeping.
/// Returns the number of mismatches (0 = bit-for-bit agreement).
std::size_t check_segment(const ExpectedSegment& want,
                          const FlightReplaySegment& got) {
  std::size_t bad = 0;
  const auto complain = [&](const std::string& what) {
    std::cerr << "[fig6][obs] MISMATCH " << want.label << ": " << what
              << "\n";
    ++bad;
  };
  if (got.label != want.label) complain("segment label " + got.label);
  if (got.n_pms != want.tracker.n_pms()) complain("PM count");
  if (got.tracker.mean_cvr() != want.tracker.mean_cvr())
    complain("mean CVR " + std::to_string(got.tracker.mean_cvr()) +
             " != " + std::to_string(want.tracker.mean_cvr()));
  if (got.tracker.max_cvr() != want.tracker.max_cvr()) complain("max CVR");
  for (std::size_t j = 0; j < want.tracker.n_pms(); ++j) {
    const PmId pm{j};
    if (got.tracker.cvr(pm) != want.tracker.cvr(pm) ||
        got.tracker.windowed_cvr(pm) != want.tracker.windowed_cvr(pm)) {
      complain("per-PM CVR, pm " + std::to_string(j));
      break;
    }
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  ArgParser args("fig6_cvr", "Figure 6 CVR experiment + flight recorder");
  args.add_option("slots", "slots to simulate per strategy", "20000");
  args.add_option("obs-out",
                  "record a flight log here (.jsonl, .csv for the "
                  "long-format dump, .btrc for binary columnar) and "
                  "self-verify the replay");
  args.add_option("obs-level", "event level: off|decisions|detail",
                  "detail");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage();
    return 2;
  }

  const double kRho = 0.01;
  const std::size_t kVms = 300;
  const std::size_t kSlots = static_cast<std::size_t>(args.get_int("slots"));

  const bool recording = args.has("obs-out");
  std::string obs_path;
  obs::EventFormat obs_format = obs::EventFormat::kJsonl;
  obs::EventLevel obs_level = obs::EventLevel::kDetail;
  try {
    obs_level = obs::parse_event_level(args.get("obs-level"));
  } catch (const InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n" << args.usage();
    return 2;
  }
  if (recording) {
    obs_path = args.get("obs-out");
    obs_format = obs::event_format_from_path(obs_path);
    obs::events().open(obs_path, obs_format, obs_level);
  }
  // Replay needs the per-slot detail stream in a replayable format —
  // JSONL or BTRC, but not the string-typed long CSV.
  const bool verifying = recording &&
                         obs_format != obs::EventFormat::kCsv &&
                         obs_level >= obs::EventLevel::kDetail &&
                         obs::kEnabled;
  std::vector<ExpectedSegment> expected;

  auto csv = open_csv("fig6_cvr.csv");
  csv.row({"pattern", "strategy", "pms_used", "mean_cvr", "p95_cvr",
           "max_cvr", "frac_pms_over_rho", "mean_episode_len",
           "longest_episode"});

  for (const auto pattern : all_patterns()) {
    Rng rng(2024 + static_cast<std::uint64_t>(pattern));
    const auto inst =
        pattern_instance(pattern, kVms, kVms, paper_onoff_params(), rng);
    const auto queue = queuing_ffd(inst);
    const auto rb = ffd_by_normal(inst);
    const auto sbp = sbp_normal(inst, kRho);

    const Rng sim_seed = rng.split();
    banner("Figure 6 (" + pattern_name(pattern) + ") — CVR over " +
           std::to_string(kSlots) + " slots, rho = 0.01");
    ConsoleTable table({"strategy", "PMs", "mean CVR", "p95 CVR", "max CVR",
                        "PMs over rho", "mean episode", "longest"});
    const auto add = [&](const char* name, const Placement& placement) {
      const std::string label = pattern_name(pattern) + "/" + name;
      obs::events().set_run_label(label);
      const auto violations =
          record_violation_trace(inst, placement, kSlots, sim_seed);
      if (verifying)
        expected.push_back(expected_from_trace(label, inst, placement,
                                               violations, kSlots));
      const CvrSummary s = summarize(inst, placement, violations, kRho);
      table.add_row({name, std::to_string(s.pms),
                     ConsoleTable::num(s.mean, 4),
                     ConsoleTable::num(s.p95, 4),
                     ConsoleTable::num(s.max, 4),
                     ConsoleTable::percent(s.frac_over_rho),
                     ConsoleTable::num(s.mean_episode_len, 1),
                     std::to_string(s.longest_episode)});
      csv.begin_row();
      csv.field(pattern_name(pattern))
          .field(name)
          .field(s.pms)
          .field(s.mean)
          .field(s.p95)
          .field(s.max)
          .field(s.frac_over_rho)
          .field(s.mean_episode_len)
          .field(s.longest_episode);
      csv.end_row();
    };
    add("QUEUE", queue.result.placement);
    add("RB", rb.placement);
    add("SBP", sbp.placement);
    table.print(std::cout);
  }
  csv.flush();
  burstq::bench::emit_obs_summary("fig6_cvr");
  std::cout << "\n[fig6] RP is omitted (CVR identically zero, as in the "
               "paper).  SBP is an extension column: note its episode "
               "lengths — amplitude-only packing clusters violations.  "
               "CSV: " +
                   burstq::bench::out_dir() + "/fig6_cvr.csv\n";

  if (recording) {
    obs::events().close();
    std::cout << "[fig6] flight log: " << obs_path << "\n";
  }
  if (verifying) {
    const auto segments = replay_flight_log(obs_path);
    std::size_t mismatches = 0;
    if (segments.size() != expected.size()) {
      std::cerr << "[fig6][obs] MISMATCH: " << segments.size()
                << " replayed segments, expected " << expected.size()
                << "\n";
      ++mismatches;
    } else {
      for (std::size_t i = 0; i < segments.size(); ++i)
        mismatches += check_segment(expected[i], segments[i]);
    }
    if (mismatches != 0) {
      std::cerr << "[fig6][obs] replay verification FAILED ("
                << mismatches << " mismatches)\n";
      return 1;
    }
    std::cout << "[fig6][obs] replay verified: " << segments.size()
              << " segments reproduce live CVR exactly\n";
  }
  return 0;
}
