// Shared helpers for the experiment harnesses.
//
// Every fig*/ablation* binary prints a paper-style console table and drops
// the same series as CSV into bench_out/ (created next to the working
// directory) so the figures can be re-plotted.

#pragma once

#include <filesystem>
#include <iostream>
#include <string>

#include "common/csv.h"
#include "common/table.h"

namespace burstq::bench {

/// Directory for CSV dumps; created on first use.
inline std::string out_dir() {
  const std::string dir = "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Opens a CSV in the output directory.
inline CsvWriter open_csv(const std::string& name) {
  return CsvWriter(out_dir() + "/" + name);
}

/// Prints a banner separating experiment sections.
inline void banner(const std::string& text) {
  std::cout << "\n" << text << "\n"
            << std::string(text.size(), '-') << "\n";
}

}  // namespace burstq::bench
