// Shared helpers for the experiment harnesses.
//
// Every fig*/ablation* binary prints a paper-style console table and drops
// the same series as CSV into the output directory (bench_out/ by default,
// overridable via the BURSTQ_OUT_DIR environment variable) so the figures
// can be re-plotted.  Harnesses also drop a `<name>_obs.csv` metrics
// summary next to their data CSVs — see emit_obs_summary().

#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "obs/obs.h"
#include "obs/summary.h"

namespace burstq::bench {

/// Directory for CSV dumps; created on first use.  Defaults to
/// "bench_out"; set BURSTQ_OUT_DIR to redirect (useful for CI artifact
/// collection and for keeping parallel runs apart).
inline std::string out_dir() {
  const char* env = std::getenv("BURSTQ_OUT_DIR");
  const std::string dir =
      (env != nullptr && *env != '\0') ? std::string(env) : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Opens a CSV in the output directory.
inline CsvWriter open_csv(const std::string& name) {
  return CsvWriter(out_dir() + "/" + name);
}

/// Prints a banner separating experiment sections.
inline void banner(const std::string& text) {
  std::cout << "\n" << text << "\n"
            << std::string(text.size(), '-') << "\n";
}

/// Scrapes the metrics registry, prints the span/counter summary to
/// stdout and writes the full snapshot to `<out_dir>/<name>_obs.csv`.
/// The CSV leads with a `meta,trace_format,<fmt>` row naming the event
/// sink format the run recorded ("none" when no sink was opened), so
/// BENCH comparisons across formats stay self-describing.
/// Call once at the end of a harness; a no-op table under BURSTQ_NO_OBS.
inline void emit_obs_summary(const std::string& name) {
  const obs::MetricsSnapshot snap = obs::metrics().scrape();
  obs::SummaryOptions opts;
  opts.title = name + " observability";
  obs::print_summary(std::cout, snap, opts);
  if (!snap.empty())
    obs::write_summary_csv(out_dir() + "/" + name + "_obs.csv", snap,
                           {{"trace_format", obs::events().sink_format_name()}});
}

}  // namespace burstq::bench
