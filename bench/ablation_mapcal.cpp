// Ablation — MapCal backends: the paper's O(k^3) pipeline (Eq. 12 matrix
// + Gaussian elimination) vs direct power iteration of Eq. 13 vs the
// closed-form Binomial quantile (exact because the k chains are
// independent).  All three must return the same K; their costs differ by
// orders of magnitude.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "queuing/mapcal.h"

namespace {

using namespace burstq;

const OnOffParams kParams{0.01, 0.09};

void BM_MapCalGaussian(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        map_cal_blocks(k, kParams, 0.01, StationaryMethod::kGaussian));
}

void BM_MapCalPower(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        map_cal_blocks(k, kParams, 0.01, StationaryMethod::kPower));
}

void BM_MapCalClosedForm(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        map_cal_blocks(k, kParams, 0.01, StationaryMethod::kClosedForm));
}

}  // namespace

BENCHMARK(BM_MapCalGaussian)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_MapCalPower)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_MapCalClosedForm)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

int main(int argc, char** argv) {
  // Agreement check before timing: all backends must give identical K.
  for (std::size_t k = 1; k <= 64; ++k) {
    const auto g = burstq::map_cal_blocks(
        k, kParams, 0.01, burstq::StationaryMethod::kGaussian);
    const auto p = burstq::map_cal_blocks(
        k, kParams, 0.01, burstq::StationaryMethod::kPower);
    const auto c = burstq::map_cal_blocks(
        k, kParams, 0.01, burstq::StationaryMethod::kClosedForm);
    if (g != c || p != c) {
      std::fprintf(stderr,
                   "BACKEND DISAGREEMENT at k=%zu: gauss=%zu power=%zu "
                   "closed=%zu\n",
                   k, g, p, c);
      return 1;
    }
  }
  std::printf("[ablation_mapcal] all backends agree on K for k in [1, 64]\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
