// Ablation — the packing heuristic under Eq. 17: First Fit (Algorithm 2)
// vs Best Fit vs Worst Fit vs Next Fit, all with the same visit order and
// feasibility rule.

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/cluster.h"
#include "placement/packing_variants.h"
#include "placement/quantile_ffd.h"
#include "placement/queuing_ffd.h"

int main() {
  using namespace burstq;
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kVms = 400;
  const std::size_t kTrials = 5;
  const MapCalTable table(16, paper_onoff_params(), 0.01);

  auto csv = open_csv("ablation_packing.csv");
  csv.row({"pattern", "heuristic", "pms_used_avg"});

  for (const auto pattern : all_patterns()) {
    banner("Packing-heuristic ablation (" + pattern_name(pattern) +
           ") — avg PMs over " + std::to_string(kTrials) + " trials");
    ConsoleTable out({"heuristic", "PMs used (avg)"});
    for (const char* h : {"first", "best", "worst", "next"}) {
      double pms = 0.0;
      for (std::size_t t = 0; t < kTrials; ++t) {
        Rng rng(7000 + 13 * t + static_cast<std::uint64_t>(pattern));
        const auto inst = pattern_instance(pattern, kVms, kVms,
                                           paper_onoff_params(), rng);
        pms += static_cast<double>(queuing_pack(inst, table, h).pms_used());
      }
      pms /= static_cast<double>(kTrials);
      out.add_row({h, ConsoleTable::num(pms, 1)});
      csv.begin_row();
      csv.field(pattern_name(pattern)).field(h).field(pms);
      csv.end_row();
    }
    out.print(std::cout);
  }
  csv.flush();
  // Cross-check: repeat with the exact-quantile reservation, where the
  // "tight packing inflates the block size" force does not exist (each
  // VM contributes its own Re to the distribution).  Expectation: the
  // classic FF/BF advantage reappears.
  banner("Same heuristics under the exact-quantile reservation (Rb=Re)");
  {
    ConsoleTable out({"heuristic", "PMs used (avg)"});
    for (const char* h : {"first", "best", "worst", "next"}) {
      double pms = 0.0;
      for (std::size_t t = 0; t < kTrials; ++t) {
        Rng rng(7000 + 13 * t);
        const auto inst = pattern_instance(SpikePattern::kEqual, kVms, kVms,
                                           paper_onoff_params(), rng);
        QuantileFfdOptions qopt;
        const auto order = queuing_ffd_order(inst.vms, 8);
        const FitPredicate fits = [&](const Placement& p, VmId vm,
                                      PmId pm) {
          return fits_with_quantile_reservation(inst, p, vm, pm, qopt);
        };
        const SlackFunction slack = [&](const Placement& p, VmId vm,
                                        PmId pm) {
          std::vector<VmSpec> hosted;
          for (std::size_t i : p.vms_on(pm)) hosted.push_back(inst.vms[i]);
          hosted.push_back(inst.vms[vm.value]);
          return inst.pms[pm.value].capacity -
                 quantile_footprint(hosted, qopt.reservation);
        };
        PlacementResult r{Placement(1, 1), {}};
        const std::string hs(h);
        if (hs == "first")
          r = first_fit_place(inst, order, fits);
        else if (hs == "best")
          r = best_fit_place(inst, order, fits, slack);
        else if (hs == "worst")
          r = worst_fit_place(inst, order, fits, slack);
        else
          r = next_fit_place(inst, order, fits);
        pms += static_cast<double>(r.pms_used());
      }
      pms /= static_cast<double>(kTrials);
      out.add_row({h, ConsoleTable::num(pms, 1)});
      csv.begin_row();
      csv.field("quantile-rule Rb=Re").field(h).field(pms);
      csv.end_row();
    }
    out.print(std::cout);
  }

  csv.flush();
  std::cout << "\n[ablation_packing] surprise: worst fit packs TIGHTER "
               "than first/best fit under both reservation rules.  The "
               "reservation cost is concave in k (pooling), so balanced "
               "loads waste less stranded capacity than greedily-full PMs "
               "that can accept no further VM; best fit is the worst "
               "offender.  The paper's FFD is still within ~12% of worst "
               "fit, and its Re-clustering step recovers part of the gap.  "
               "CSV: bench_out/ablation_packing.csv\n";
  return 0;
}
