// Figure 5 — packing result: number of PMs used by QUEUE vs FFD-by-Rp
// (RP) vs FFD-by-Rb (RB) for the three workload patterns.
//
// Paper settings: rho = 0.01, d = 16, p_on = 0.01, p_off = 0.09,
// C in [80, 100]; Rb/Re ranges per pattern (see core/scenario.h).
// The paper reports QUEUE saving ~30% vs RP at Rb = Re and up to ~45%
// at large spike sizes.

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "placement/sbp.h"

namespace {

using namespace burstq;

struct Cell {
  double rp = 0, queue = 0, rb = 0, sbp = 0;
};

Cell run_cell(SpikePattern pattern, std::size_t n, std::size_t trials) {
  Cell c;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t seed =
        std::uint64_t{0x5eed} * static_cast<std::uint64_t>(t + 1) +
        static_cast<std::uint64_t>(static_cast<int>(pattern));
    Rng rng(seed);
    // Ample PM pool: peak packing needs the most machines.
    const auto inst =
        pattern_instance(pattern, n, n, paper_onoff_params(), rng);
    c.rp += static_cast<double>(ffd_by_peak(inst).pms_used());
    c.queue += static_cast<double>(queuing_ffd(inst).result.pms_used());
    c.rb += static_cast<double>(ffd_by_normal(inst).pms_used());
    // SBP at epsilon = rho: the normal-distribution related-work baseline.
    c.sbp += static_cast<double>(sbp_normal(inst, 0.01).pms_used());
  }
  const auto tn = static_cast<double>(trials);
  c.rp /= tn;
  c.queue /= tn;
  c.rb /= tn;
  c.sbp /= tn;
  return c;
}

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kTrials = 5;
  const std::vector<std::size_t> kSizes{100, 200, 400, 800};

  auto csv = open_csv("fig5_packing.csv");
  csv.row({"pattern", "n_vms", "rp_pms", "queue_pms", "sbp_pms", "rb_pms",
           "queue_savings_vs_rp"});

  for (const auto pattern : burstq::all_patterns()) {
    banner("Figure 5 (" + burstq::pattern_name(pattern) +
           ") — avg PMs used over " + std::to_string(kTrials) + " trials");
    burstq::ConsoleTable table(
        {"n VMs", "RP", "QUEUE", "SBP", "RB", "QUEUE saving vs RP"});
    for (const auto n : kSizes) {
      const Cell c = run_cell(pattern, n, kTrials);
      const double savings = 1.0 - c.queue / c.rp;
      table.add_row({std::to_string(n), burstq::ConsoleTable::num(c.rp, 1),
                     burstq::ConsoleTable::num(c.queue, 1),
                     burstq::ConsoleTable::num(c.sbp, 1),
                     burstq::ConsoleTable::num(c.rb, 1),
                     burstq::ConsoleTable::percent(savings)});
      csv.begin_row();
      csv.field(burstq::pattern_name(pattern))
          .field(n)
          .field(c.rp)
          .field(c.queue)
          .field(c.sbp)
          .field(c.rb)
          .field(savings);
      csv.end_row();
    }
    table.print(std::cout);
  }
  csv.flush();
  std::cout << "\n[fig5] CSV written to bench_out/fig5_packing.csv\n";
  return 0;
}
