// Micro-benchmarks of the numeric substrates, for performance-regression
// tracking: RNG throughput, matrix kernels, the Eq. 12 builder, the two
// linear-algebra stationary solvers, and the Poisson-binomial DP.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "linalg/gaussian.h"
#include "linalg/power_iteration.h"
#include "markov/aggregate_chain.h"
#include "prob/poisson_binomial.h"

namespace {

using namespace burstq;

const OnOffParams kP{0.01, 0.09};

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}

void BM_RngBernoulli(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.bernoulli(0.1));
}

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix a(n, n);
  Matrix b(n, n);
  Rng rng(2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.next_double();
      b(i, j) = rng.next_double();
    }
  for (auto _ : state) {
    auto c = a.multiply(b);
    benchmark::DoNotOptimize(c(0, 0));
  }
}

void BM_TransitionMatrix(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto p = aggregate_transition_matrix(k, kP);
    benchmark::DoNotOptimize(p(0, 0));
  }
}

void BM_StationaryGaussian(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix p = aggregate_transition_matrix(k, kP);
  for (auto _ : state) {
    auto pi = stationary_distribution_gaussian(p);
    benchmark::DoNotOptimize(pi->front());
  }
}

void BM_StationaryPower(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix p = aggregate_transition_matrix(k, kP);
  for (auto _ : state) {
    auto res = stationary_distribution_power(p);
    benchmark::DoNotOptimize(res->distribution.front());
  }
}

void BM_PoissonBinomialPmf(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> qs(k);
  for (auto& q : qs) q = rng.next_double() * 0.5;
  for (auto _ : state) {
    auto pmf = poisson_binomial_pmf(qs);
    benchmark::DoNotOptimize(pmf.front());
  }
}

}  // namespace

BENCHMARK(BM_RngNextU64);
BENCHMARK(BM_RngBernoulli);
BENCHMARK(BM_MatrixMultiply)->Arg(17)->Arg(65);
BENCHMARK(BM_TransitionMatrix)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_StationaryGaussian)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_StationaryPower)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_PoissonBinomialPmf)->Arg(16)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
