// Ablation — block-size rule.  The paper "conservatively" sets the
// uniform block size to the maximum Re of the hosted VMs.  Alternatives:
//   mean-Re   blocks sized to the average spike (tighter packing, but the
//             CVR guarantee no longer holds for the biggest spikes)
//   per-VM    reserve the K largest Re values individually (sound:
//             any K simultaneous spikes fit in the K largest blocks)
// We measure PMs used and the realized max CVR for each rule.

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/cluster.h"
#include "placement/first_fit.h"
#include "placement/queuing_ffd.h"
#include "queuing/quantile_reservation.h"
#include "sim/cluster_sim.h"

namespace {

using namespace burstq;

enum class BlockRule { kMaxRe, kMeanRe, kTopKSum, kExactQuantile };

const char* rule_name(BlockRule r) {
  switch (r) {
    case BlockRule::kMaxRe:
      return "max-Re (paper)";
    case BlockRule::kMeanRe:
      return "mean-Re";
    case BlockRule::kTopKSum:
      return "top-K per-VM";
    case BlockRule::kExactQuantile:
      return "exact quantile";
  }
  return "?";
}

double reserve_for(BlockRule rule, const std::vector<double>& res,
                   std::size_t blocks) {
  if (res.empty() || blocks == 0) return 0.0;
  switch (rule) {
    case BlockRule::kMaxRe:
      return *std::max_element(res.begin(), res.end()) *
             static_cast<double>(blocks);
    case BlockRule::kMeanRe: {
      double sum = 0.0;
      for (double r : res) sum += r;
      return sum / static_cast<double>(res.size()) *
             static_cast<double>(blocks);
    }
    case BlockRule::kTopKSum: {
      std::vector<double> sorted = res;
      std::sort(sorted.rbegin(), sorted.rend());
      double sum = 0.0;
      for (std::size_t i = 0; i < std::min(blocks, sorted.size()); ++i)
        sum += sorted[i];
      return sum;
    }
    case BlockRule::kExactQuantile: {
      // The (1 - rho)-quantile of the true extra-demand law (burstq's
      // sharpest rule; "blocks" is unused).
      const std::vector<double> q(res.size(),
                                  paper_onoff_params()
                                      .stationary_on_probability());
      QuantileReservationOptions opt;
      return exact_quantile_reservation(res, q, opt);
    }
  }
  return 0.0;
}

PlacementResult place_with_rule(const ProblemInstance& inst,
                                const MapCalTable& table, BlockRule rule) {
  const auto order = queuing_ffd_order(inst.vms, 8);
  const FitPredicate fits = [&, rule](const Placement& p, VmId vm, PmId pm) {
    const std::size_t k_new = p.count_on(pm) + 1;
    if (k_new > table.max_vms_per_pm()) return false;
    std::vector<double> res{inst.vms[vm.value].re};
    double rb_sum = inst.vms[vm.value].rb;
    for (std::size_t i : p.vms_on(pm)) {
      res.push_back(inst.vms[i].re);
      rb_sum += inst.vms[i].rb;
    }
    const double reserve = reserve_for(rule, res, table.blocks(k_new));
    return reserve + rb_sum <=
           inst.pms[pm.value].capacity * (1.0 + kCapacityEpsilon);
  };
  return first_fit_place(inst, order, fits);
}

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kVms = 300;
  const std::size_t kSlots = 20000;

  auto csv = open_csv("ablation_blocksize.csv");
  csv.row({"pattern", "rule", "pms_used", "mean_cvr", "max_cvr"});

  for (const auto pattern : all_patterns()) {
    Rng rng(99 + static_cast<std::uint64_t>(pattern));
    const auto inst =
        pattern_instance(pattern, kVms, kVms, paper_onoff_params(), rng);
    const MapCalTable table(16, paper_onoff_params(), 0.01);

    banner("Block-size ablation (" + pattern_name(pattern) + ")");
    ConsoleTable out({"rule", "PMs used", "mean CVR", "max CVR"});
    for (const auto rule :
         {BlockRule::kMaxRe, BlockRule::kMeanRe, BlockRule::kTopKSum,
          BlockRule::kExactQuantile}) {
      const auto placed = place_with_rule(inst, table, rule);
      if (!placed.complete()) {
        out.add_row({rule_name(rule), "(incomplete)", "-", "-"});
        continue;
      }
      const auto cvr = simulate_cvr(inst, placed.placement, kSlots,
                                    Rng(7));
      double mean = 0.0;
      double mx = 0.0;
      std::size_t used = 0;
      for (std::size_t j = 0; j < inst.n_pms(); ++j) {
        if (placed.placement.count_on(PmId{j}) == 0) continue;
        mean += cvr[j];
        mx = std::max(mx, cvr[j]);
        ++used;
      }
      mean /= static_cast<double>(used);
      out.add_row({rule_name(rule), std::to_string(placed.pms_used()),
                   ConsoleTable::num(mean, 4), ConsoleTable::num(mx, 4)});
      csv.begin_row();
      csv.field(pattern_name(pattern))
          .field(rule_name(rule))
          .field(placed.pms_used())
          .field(mean)
          .field(mx);
      csv.end_row();
    }
    out.print(std::cout);
  }
  csv.flush();
  std::cout << "\n[ablation_blocksize] mean-Re packs tighter but can "
               "breach rho at max CVR; top-K per-VM is sound and often "
               "tighter than uniform max-Re.  CSV: "
               "bench_out/ablation_blocksize.csv\n";
  return 0;
}
