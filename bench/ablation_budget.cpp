// Ablation — migration budget for incremental re-consolidation.
//
// After churn, how many live migrations buy how many freed PMs?  Sweeps
// the move budget on a drifted cluster and reports the frontier, plus
// the full-replan reference point (unbounded moves).

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/budget.h"
#include "placement/replan.h"

int main() {
  using namespace burstq;
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  // A drifted cluster: 500 VMs arrived one by one (first-fit in arrival
  // order, no clustering), then 40% departed — the classic churn pattern
  // that leaves half-empty PMs scattered across the fleet.
  Rng rng(11011);
  auto full = pattern_instance(SpikePattern::kEqual, 500, 500,
                               paper_onoff_params(), rng);
  QueuingFfdOptions opt;
  const MapCalTable table(opt.max_vms_per_pm, paper_onoff_params(), opt.rho);

  Placement arrival_order(full.n_vms(), full.n_pms());
  for (std::size_t i = 0; i < full.n_vms(); ++i) {
    const VmId vm{i};
    for (std::size_t j = 0; j < full.n_pms(); ++j) {
      if (fits_with_reservation(full, arrival_order, vm, PmId{j}, table)) {
        arrival_order.assign(vm, PmId{j});
        break;
      }
    }
  }
  // Departures: keep a random 60%, re-index the survivors.
  ProblemInstance inst;
  inst.pms = full.pms;
  Placement drifted(300, full.n_pms());  // filled below
  {
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < full.n_vms(); ++i)
      if (rng.next_double() < 0.6) survivors.push_back(i);
    survivors.resize(300);  // deterministic size for the table below
    inst.vms.reserve(survivors.size());
    for (std::size_t new_id = 0; new_id < survivors.size(); ++new_id) {
      inst.vms.push_back(full.vms[survivors[new_id]]);
      drifted.assign(VmId{new_id},
                     arrival_order.pm_of(VmId{survivors[new_id]}));
    }
  }

  const auto fresh = replan(inst, drifted, opt);

  auto csv = open_csv("ablation_budget.csv");
  csv.row({"budget", "moves_spent", "pms_before", "pms_after",
           "pms_freed"});

  banner("Migration-budget ablation (arrival-order drifted cluster of "
         "300 VMs)");
  ConsoleTable out(
      {"move budget", "moves spent", "PMs before", "PMs after", "freed"});
  for (const std::size_t budget : {0u, 5u, 10u, 20u, 40u, 80u, 160u}) {
    Placement work = drifted;
    const auto r = consolidate_with_budget(inst, work, table, budget);
    out.add_row({std::to_string(budget), std::to_string(r.moves.size()),
                 std::to_string(r.pms_before), std::to_string(r.pms_after),
                 std::to_string(r.pms_freed())});
    csv.begin_row();
    csv.field(budget)
        .field(r.moves.size())
        .field(r.pms_before)
        .field(r.pms_after)
        .field(r.pms_freed());
    csv.end_row();
  }
  out.add_row({"replan (ref)", std::to_string(fresh.plan.move_count()),
               std::to_string(fresh.plan.pms_before),
               std::to_string(fresh.plan.pms_after),
               std::to_string(fresh.plan.pms_freed())});
  csv.begin_row();
  csv.field("replan")
      .field(fresh.plan.move_count())
      .field(fresh.plan.pms_before)
      .field(fresh.plan.pms_after)
      .field(fresh.plan.pms_freed());
  csv.end_row();

  out.print(std::cout);
  csv.flush();
  std::cout << "\n[ablation_budget] the first few dozen moves buy most of "
               "the consolidation; the full replan squeezes the remainder "
               "at a much higher migration bill.  CSV: "
               "bench_out/ablation_budget.csv\n";
  return 0;
}
