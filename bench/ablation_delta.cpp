// Ablation — RB-EX's reservation fraction delta.  The paper fixes
// delta = 0.3 and observes RB-EX lands between RB and QUEUE.  Sweeping
// delta shows the whole trade-off curve and where (if anywhere) a blind
// fixed reservation matches the queuing-theoretic one.

#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"

int main() {
  using namespace burstq;
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kVms = 80;
  const std::vector<double> kDeltas{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  const auto factory = [kVms](Rng& rng) {
    return table_i_instance(SpikePattern::kEqual, kVms, kVms,
                            paper_onoff_params(), rng);
  };
  TrialConfig cfg;
  cfg.trials = 8;
  cfg.base_seed = 808;
  cfg.sim.slots = 100;
  cfg.sim.webserver_workload = true;

  auto csv = open_csv("ablation_delta.csv");
  csv.row({"delta", "migrations_avg", "pms_end_avg", "pms_initial_avg"});

  banner("RB-EX delta ablation (Rb=Re pattern, 8 trials each)");
  ConsoleTable out({"delta", "migrations avg (min..max)",
                    "PMs end avg (min..max)", "PMs initial"});
  for (const double delta : kDeltas) {
    const auto s = run_trials(
        factory,
        [delta](const ProblemInstance& i) { return ffd_reserved(i, delta); },
        cfg);
    out.add_row({ConsoleTable::num(delta, 1),
                 summarize_cell(s.migrations, 1),
                 summarize_cell(s.pms_end, 1),
                 ConsoleTable::num(s.pms_initial.mean(), 1)});
    csv.begin_row();
    csv.field(delta)
        .field(s.migrations.mean())
        .field(s.pms_end.mean())
        .field(s.pms_initial.mean());
    csv.end_row();
  }
  // QUEUE reference row.
  const auto q = run_trials(
      factory,
      [](const ProblemInstance& i) { return queuing_ffd(i).result; }, cfg);
  out.add_row({"QUEUE", summarize_cell(q.migrations, 1),
               summarize_cell(q.pms_end, 1),
               ConsoleTable::num(q.pms_initial.mean(), 1)});
  csv.begin_row();
  csv.field("QUEUE")
      .field(q.migrations.mean())
      .field(q.pms_end.mean())
      .field(q.pms_initial.mean());
  csv.end_row();

  out.print(std::cout);
  csv.flush();
  std::cout << "\n[ablation_delta] delta = 0 is RB (migration storm); large "
               "delta wastes PMs; no fixed delta dominates the "
               "workload-aware QUEUE row.  CSV: "
               "bench_out/ablation_delta.csv\n";
  return 0;
}
