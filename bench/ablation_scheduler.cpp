// Ablation — the dynamic scheduler's target-selection policy.
//
// The paper's "idle deception" and "cycle migration" phenomena arise
// because the scheduler picks migration targets by *currently observed*
// load.  burstq also implements a reservation-aware target policy
// (Eq. 17 against a mapping table).  This bench crosses packing strategy
// x target policy and reports migrations and end-of-period PM counts:
// a burstiness-aware scheduler partially rescues a burstiness-unaware
// packing, but not as well as packing correctly in the first place.

#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"

namespace {

using namespace burstq;

const char* target_name(TargetSelection t) {
  return t == TargetSelection::kObservedLoad ? "observed-load"
                                             : "reservation-aware";
}

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kVms = 80;
  const auto factory = [kVms](Rng& rng) {
    return table_i_instance(SpikePattern::kEqual, kVms, kVms,
                            paper_onoff_params(), rng);
  };

  auto csv = open_csv("ablation_scheduler.csv");
  csv.row({"packing", "target_policy", "migrations_avg", "failed_avg",
           "pms_end_avg", "mean_cvr"});

  banner("Scheduler ablation — target policy x packing strategy "
         "(Rb=Re, 8 trials, web workload)");
  ConsoleTable out({"packing", "target policy",
                    "migrations avg (min..max)", "failed", "PMs end",
                    "mean CVR"});

  struct Packer {
    const char* name;
    PlacementFactory make;
  };
  const std::vector<Packer> packers{
      {"QUEUE",
       [](const ProblemInstance& i) { return queuing_ffd(i).result; }},
      {"RB", [](const ProblemInstance& i) { return ffd_by_normal(i); }},
      {"RB-EX",
       [](const ProblemInstance& i) { return ffd_reserved(i, 0.3); }},
  };

  for (const auto& packer : packers) {
    for (const auto target :
         {TargetSelection::kObservedLoad, TargetSelection::kReservationAware}) {
      TrialConfig cfg;
      cfg.trials = 8;
      cfg.base_seed = 515;
      cfg.sim.slots = 100;
      cfg.sim.webserver_workload = true;
      cfg.sim.policy.target = target;
      const auto s = run_trials(factory, packer.make, cfg);
      out.add_row({packer.name, target_name(target),
                   summarize_cell(s.migrations, 1),
                   ConsoleTable::num(s.failed.mean(), 1),
                   summarize_cell(s.pms_end, 1),
                   ConsoleTable::num(s.mean_cvr.mean(), 4)});
      csv.begin_row();
      csv.field(packer.name)
          .field(target_name(target))
          .field(s.migrations.mean())
          .field(s.failed.mean())
          .field(s.pms_end.mean())
          .field(s.mean_cvr.mean());
      csv.end_row();
    }
  }
  out.print(std::cout);
  csv.flush();
  std::cout << "\n[ablation_scheduler] the reservation-aware target policy "
               "damps RB's cycle migration (no bounced targets) but cannot "
               "undo the over-tight initial packing — QUEUE packing plus "
               "either scheduler stays near zero.  CSV: "
               "bench_out/ablation_scheduler.csv\n";
  return 0;
}
