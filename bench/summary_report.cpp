// Reproduction summary — one binary that re-measures every headline
// claim at reduced scale and prints a paper-vs-measured verdict table
// (the machine-checked companion to EXPERIMENTS.md).

#include <chrono>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"

namespace {

using namespace burstq;

struct Claim {
  std::string id;
  std::string paper;
  std::string measured;
  bool pass;
};

double savings_vs_rp(SpikePattern pattern, std::size_t trials) {
  double rp = 0.0;
  double q = 0.0;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    Rng rng(9090 + seed);
    const auto inst =
        pattern_instance(pattern, 400, 300, paper_onoff_params(), rng);
    rp += static_cast<double>(ffd_by_peak(inst).pms_used());
    q += static_cast<double>(queuing_ffd(inst).result.pms_used());
  }
  return 1.0 - q / rp;
}

}  // namespace

int main() {
  using burstq::bench::banner;

  std::vector<Claim> claims;
  const auto pct = [](double f) { return ConsoleTable::percent(f); };

  // --- Figure 5: consolidation ratios ---------------------------------
  {
    const double large = savings_vs_rp(SpikePattern::kLargeSpike, 4);
    const double equal = savings_vs_rp(SpikePattern::kEqual, 4);
    const double small = savings_vs_rp(SpikePattern::kSmallSpike, 4);
    claims.push_back({"Fig5 large spikes", "~45% fewer PMs than RP",
                      pct(large), large > 0.35});
    claims.push_back({"Fig5 normal spikes", "~30% fewer PMs than RP",
                      pct(equal), equal > 0.18});
    claims.push_back({"Fig5 ordering", "saving: large > equal > small",
                      pct(large) + " > " + pct(equal) + " > " + pct(small),
                      large > equal && equal > small});
  }

  // --- Figure 6: CVR bounded for QUEUE, disastrous for RB --------------
  {
    Rng rng(9191);
    const auto inst = pattern_instance(SpikePattern::kEqual, 250, 200,
                                       paper_onoff_params(), rng);
    const auto queue = queuing_ffd(inst);
    const auto rb = ffd_by_normal(inst);
    const auto cvr_q =
        simulate_cvr(inst, queue.result.placement, 10000, Rng(9192));
    const auto cvr_rb = simulate_cvr(inst, rb.placement, 10000, Rng(9192));
    double mq = 0.0;
    double mrb = 0.0;
    std::size_t uq = 0;
    std::size_t urb = 0;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      if (queue.result.placement.count_on(PmId{j}) > 0) {
        mq += cvr_q[j];
        ++uq;
      }
      if (rb.placement.count_on(PmId{j}) > 0) {
        mrb += cvr_rb[j];
        ++urb;
      }
    }
    mq /= static_cast<double>(uq);
    mrb /= static_cast<double>(urb);
    claims.push_back({"Fig6 QUEUE CVR", "bounded by rho = 1%",
                      ConsoleTable::num(mq, 4), mq <= 0.015});
    claims.push_back({"Fig6 RB CVR", "disastrous",
                      ConsoleTable::num(mrb, 4), mrb > 0.1});
  }

  // --- Figure 9/10: migration behaviour --------------------------------
  {
    const auto factory = [](Rng& rng) {
      return table_i_instance(SpikePattern::kEqual, 70, 70,
                              paper_onoff_params(), rng);
    };
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.base_seed = 9393;
    cfg.sim.slots = 100;
    cfg.sim.webserver_workload = true;
    const auto q = run_trials(
        factory,
        [](const ProblemInstance& i) { return queuing_ffd(i).result; }, cfg);
    const auto rb = run_trials(
        factory, [](const ProblemInstance& i) { return ffd_by_normal(i); },
        cfg);
    const auto ex = run_trials(
        factory,
        [](const ProblemInstance& i) { return ffd_reserved(i, 0.3); }, cfg);
    claims.push_back(
        {"Fig9 QUEUE migrations", "very few",
         ConsoleTable::num(q.migrations.mean(), 1),
         q.migrations.mean() < 5.0});
    claims.push_back(
        {"Fig9 RB migrations", "unacceptably many, constant",
         ConsoleTable::num(rb.migrations.mean(), 1),
         rb.migrations.mean() > 4.0 * std::max(1.0, q.migrations.mean())});
    claims.push_back(
        {"Fig9 RB-EX between", "alleviates RB to some extent",
         ConsoleTable::num(ex.migrations.mean(), 1),
         ex.migrations.mean() < rb.migrations.mean() &&
             ex.migrations.mean() >= q.migrations.mean() - 1.0});
    claims.push_back(
        {"Fig9 cycle migration", "RB ends with fewest PMs",
         ConsoleTable::num(rb.pms_end.mean(), 1) + " vs QUEUE " +
             ConsoleTable::num(q.pms_end.mean(), 1),
         rb.pms_end.mean() <= q.pms_end.mean() + 0.5});
  }

  // --- Figure 7: computation cost --------------------------------------
  {
    Rng rng(9494);
    const auto inst = pattern_instance(SpikePattern::kEqual, 800, 800,
                                       paper_onoff_params(), rng);
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = queuing_ffd(inst);
    const auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    claims.push_back({"Fig7 cost", "millisecond-level (d = 16, n = 800)",
                      ConsoleTable::num(ms, 1) + " ms",
                      out.result.complete() && ms < 1000.0});
  }

  banner("burstq reproduction summary");
  ConsoleTable table({"claim", "paper", "measured", "verdict"});
  bool all_pass = true;
  for (const auto& c : claims) {
    table.add_row({c.id, c.paper, c.measured, c.pass ? "PASS" : "FAIL"});
    all_pass = all_pass && c.pass;
  }
  table.print(std::cout);
  std::cout << "\n" << (all_pass ? "ALL CLAIMS REPRODUCED" : "SOME CLAIMS FAILED")
            << " (" << claims.size() << " checks)\n";
  burstq::bench::emit_obs_summary("summary_report");
  return all_pass ? 0 : 1;
}
