// Ablation — burstiness shape.  Sweeps the ON-OFF parameters (spike
// frequency p_on and spike duration 1/p_off) and reports QUEUE's blocks
// at k = 16 plus its PM saving vs peak provisioning.  The consolidation
// win shrinks as q = p_on/(p_on + p_off) grows: frequent or long spikes
// leave less to reclaim.

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"

int main() {
  using namespace burstq;
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kVms = 300;
  struct Case {
    double p_on, p_off;
  };
  const std::vector<Case> kCases{
      {0.005, 0.20}, {0.01, 0.09}, {0.02, 0.09}, {0.05, 0.09},
      {0.01, 0.05},  {0.01, 0.02}, {0.1, 0.1},   {0.2, 0.2},
  };

  auto csv = open_csv("ablation_onoff.csv");
  csv.row({"p_on", "p_off", "q", "blocks_at_k16", "queue_pms", "rp_pms",
           "savings"});

  banner("ON-OFF parameter ablation (Rb=Re pattern, 300 VMs)");
  ConsoleTable out({"p_on", "p_off", "q", "K(16)", "QUEUE PMs", "RP PMs",
                    "saving"});
  for (const auto& c : kCases) {
    const OnOffParams params{c.p_on, c.p_off};
    Rng rng(31);
    const auto inst = random_instance(
        kVms, kVms, params, ranges_for_pattern(SpikePattern::kEqual), rng);
    const auto rp = ffd_by_peak(inst);
    const auto q = queuing_ffd(inst);
    const double savings =
        1.0 - static_cast<double>(q.result.pms_used()) /
                  static_cast<double>(rp.pms_used());
    out.add_row(
        {ConsoleTable::num(c.p_on, 3), ConsoleTable::num(c.p_off, 3),
         ConsoleTable::num(params.stationary_on_probability(), 3),
         std::to_string(q.table.blocks(16)),
         std::to_string(q.result.pms_used()), std::to_string(rp.pms_used()),
         ConsoleTable::percent(savings)});
    csv.begin_row();
    csv.field(c.p_on)
        .field(c.p_off)
        .field(params.stationary_on_probability())
        .field(q.table.blocks(16))
        .field(q.result.pms_used())
        .field(rp.pms_used())
        .field(savings);
    csv.end_row();
  }
  out.print(std::cout);
  csv.flush();
  std::cout << "\n[ablation_onoff] rarer/shorter spikes (small q) -> fewer "
               "blocks -> bigger saving vs peak provisioning.  CSV: "
               "bench_out/ablation_onoff.csv\n";
  return 0;
}
