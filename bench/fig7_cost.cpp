// Figure 7 — computation cost of Algorithm 2 (getting the placement
// matrix X) for various d and n, measured with google-benchmark.
//
// The paper reports millisecond-level cost whose variation with n is
// "not even distinguishable"; d dominates through the O(d^4) mapping(k)
// precomputation.

#include <benchmark/benchmark.h>

#include "core/scenario.h"
#include "placement/queuing_ffd.h"

namespace {

using namespace burstq;

void BM_QueuingFfd(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  Rng rng(42);
  const auto inst =
      pattern_instance(SpikePattern::kEqual, n, n, paper_onoff_params(), rng);
  QueuingFfdOptions opt;
  opt.max_vms_per_pm = d;
  for (auto _ : state) {
    auto out = queuing_ffd(inst, opt);
    benchmark::DoNotOptimize(out.result.placement.pms_used());
  }
  state.SetLabel("d=" + std::to_string(d) + " n=" + std::to_string(n));
}

// The mapping-table precomputation alone (Algorithm 2 lines 1-6, O(d^4)).
void BM_MapCalTable(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    MapCalTable table(d, paper_onoff_params(), 0.01);
    benchmark::DoNotOptimize(table.blocks(d));
  }
}

// The placement loop alone, with the table amortized away.
void BM_PlacementOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  const auto inst =
      pattern_instance(SpikePattern::kEqual, n, n, paper_onoff_params(), rng);
  QueuingFfdOptions opt;
  const MapCalTable table(opt.max_vms_per_pm, paper_onoff_params(), opt.rho);
  for (auto _ : state) {
    auto result = queuing_ffd_with_table(inst, table, opt);
    benchmark::DoNotOptimize(result.placement.pms_used());
  }
}

}  // namespace

BENCHMARK(BM_QueuingFfd)
    ->ArgsProduct({{8, 12, 16, 20}, {100, 200, 400, 800, 1600}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MapCalTable)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlacementOnly)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
