// Extension experiment — user-visible performance of each packing.
//
// The paper measures performance via CVR and migration counts; this bench
// closes the loop to what a user of the hosted web servers experiences:
// request latency (Little's law over the backlog process) under each
// packing strategy, on the Table I web workload.  No migration — the
// packing's own headroom is the only defense.

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "placement/sbp.h"
#include "sim/request_sim.h"

namespace {

using namespace burstq;

struct Row {
  const char* name;
  PlacementResult placed;
};

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  auto csv = open_csv("response_time.csv");
  csv.row({"pattern", "strategy", "pms", "mean_latency_s", "p95_vm_s",
           "worst_vm_s", "served_fraction", "utilization"});

  for (const auto pattern : all_patterns()) {
    Rng rng(606 + static_cast<std::uint64_t>(pattern));
    const auto inst =
        table_i_instance(pattern, 100, 100, paper_onoff_params(), rng);

    std::vector<Row> rows;
    rows.push_back({"RP", ffd_by_peak(inst)});
    rows.push_back({"QUEUE", queuing_ffd(inst).result});
    rows.push_back({"SBP", sbp_normal(inst)});
    rows.push_back({"RB-EX", ffd_reserved(inst, 0.3)});
    rows.push_back({"RB", ffd_by_normal(inst)});

    banner("Response time (" + pattern_name(pattern) +
           ") — request-level simulation, 200 slots, no migration");
    ConsoleTable out({"strategy", "PMs", "mean latency (s)",
                      "p95 VM latency (s)", "worst VM (s)", "served",
                      "util"});
    for (auto& row : rows) {
      if (!row.placed.complete()) continue;
      RequestSimConfig cfg;
      cfg.slots = 200;
      const auto rep = simulate_request_performance(
          inst, row.placed.placement, cfg, Rng(707));
      const double served_frac = rep.total_served / rep.total_arrivals;
      out.add_row({row.name, std::to_string(row.placed.pms_used()),
                   ConsoleTable::num(rep.mean_latency_seconds, 2),
                   ConsoleTable::num(rep.p95_vm_latency_seconds, 2),
                   ConsoleTable::num(rep.worst_vm_latency_seconds, 1),
                   ConsoleTable::percent(served_frac),
                   ConsoleTable::percent(rep.mean_utilization)});
      csv.begin_row();
      csv.field(pattern_name(pattern))
          .field(row.name)
          .field(row.placed.pms_used())
          .field(rep.mean_latency_seconds)
          .field(rep.p95_vm_latency_seconds)
          .field(rep.worst_vm_latency_seconds)
          .field(served_frac)
          .field(rep.mean_utilization);
      csv.end_row();
    }
    out.print(std::cout);
  }
  csv.flush();
  std::cout << "\n[response_time] QUEUE buys near-RP latency at far fewer "
               "PMs; RB's latency diverges (starved spikes never drain).  "
               "CSV: bench_out/response_time.csv\n";
  return 0;
}
