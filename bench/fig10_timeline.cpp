// Figure 10 — time-order patterns of migration events: cumulative
// migrations per strategy over the evaluation period, one Rb = Re run
// (the paper notes the same shape holds for the other patterns).
//
// Expected: RB/RB-EX burst early (over-tight initial packing); RB keeps
// migrating throughout (cycle migration); QUEUE stays essentially flat.

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"

namespace {

using namespace burstq;

SimReport run_strategy(const ProblemInstance& inst,
                       const PlacementResult& placed, std::uint64_t seed) {
  SimConfig cfg;
  cfg.slots = 100;
  cfg.webserver_workload = true;
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(seed));
  return sim.run();
}

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  Rng rng(31337);
  const auto inst = table_i_instance(SpikePattern::kEqual, 80, 80,
                                     paper_onoff_params(), rng);
  const auto queue = queuing_ffd(inst).result;
  const auto rb = ffd_by_normal(inst);
  const auto rbex = ffd_reserved(inst, 0.3);

  const std::uint64_t sim_seed = 4242;
  const SimReport rep_q = run_strategy(inst, queue, sim_seed);
  const SimReport rep_rb = run_strategy(inst, rb, sim_seed);
  const SimReport rep_ex = run_strategy(inst, rbex, sim_seed);

  auto csv = open_csv("fig10_timeline.csv");
  csv.row({"slot", "queue_cum_migrations", "rb_cum_migrations",
           "rbex_cum_migrations", "queue_pms", "rb_pms", "rbex_pms"});

  banner("Figure 10 — cumulative migrations over time (Rb=Re pattern)");
  ConsoleTable table({"slot", "QUEUE cum", "RB cum", "RB-EX cum",
                      "QUEUE PMs", "RB PMs", "RB-EX PMs"});
  std::size_t cq = 0;
  std::size_t crb = 0;
  std::size_t cex = 0;
  for (std::size_t t = 0; t < rep_q.migrations_per_slot.size(); ++t) {
    cq += rep_q.migrations_per_slot[t];
    crb += rep_rb.migrations_per_slot[t];
    cex += rep_ex.migrations_per_slot[t];
    csv.begin_row();
    csv.field(static_cast<std::size_t>(t))
        .field(cq)
        .field(crb)
        .field(cex)
        .field(rep_q.pms_used_timeline[t])
        .field(rep_rb.pms_used_timeline[t])
        .field(rep_ex.pms_used_timeline[t]);
    csv.end_row();
    if (t % 10 == 9 || t == 0) {
      table.add_row({std::to_string(t), std::to_string(cq),
                     std::to_string(crb), std::to_string(cex),
                     std::to_string(rep_q.pms_used_timeline[t]),
                     std::to_string(rep_rb.pms_used_timeline[t]),
                     std::to_string(rep_ex.pms_used_timeline[t])});
    }
  }
  table.print(std::cout);
  csv.flush();

  std::cout << "\ntotals: QUEUE " << rep_q.total_migrations << " (failed "
            << rep_q.failed_migrations << "), RB " << rep_rb.total_migrations
            << " (failed " << rep_rb.failed_migrations << "), RB-EX "
            << rep_ex.total_migrations << " (failed "
            << rep_ex.failed_migrations << ")\n";
  std::cout << "[fig10] CSV written to bench_out/fig10_timeline.csv\n";
  return 0;
}
