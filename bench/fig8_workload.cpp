// Figure 8 — sample of the generated web-server workload used in the
// live-migration experiment (Section V-D): request-driven demand with
// exponential think times riding on the ON-OFF user population.
//
// Prints an ASCII sparkline of one VM's demand trace and dumps the full
// series (state, requests, demand) to CSV.  Also covers Figure 1 (sample
// bursty trace with the two provisioning levels).

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "markov/onoff.h"
#include "sim/webserver.h"

namespace {

using namespace burstq;

char spark_char(double v, double lo, double hi) {
  static const char* levels = " .:-=+*#%@";
  const double t = (v - lo) / (hi - lo + 1e-12);
  const int idx = std::max(0, std::min(9, static_cast<int>(t * 10.0)));
  return levels[idx];
}

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  // A medium/medium VM from Table I: 800 users normally, 1600 at peak.
  WebServerParams wp;
  wp.normal_users = 800;
  wp.peak_users = 1600;
  const WebServerWorkload workload(wp);
  const OnOffParams chain_params = paper_onoff_params();

  const std::size_t kSlots = 400;
  Rng rng(7);
  OnOffChain chain(chain_params);
  chain.reset_stationary(rng);

  auto csv = open_csv("fig8_workload.csv");
  csv.row({"slot", "state", "requests", "demand_units"});

  std::vector<double> demand(kSlots);
  std::vector<VmState> states(kSlots);
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t t = 0; t < kSlots; ++t) {
    states[t] = chain.state();
    const double requests =
        workload.sample_requests_gaussian(states[t], rng);
    demand[t] = workload.requests_to_demand(requests);
    lo = std::min(lo, demand[t]);
    hi = std::max(hi, demand[t]);
    csv.begin_row();
    csv.field(static_cast<std::size_t>(t))
        .field(states[t] == VmState::kOn ? "ON" : "OFF")
        .field(requests)
        .field(demand[t]);
    csv.end_row();
    chain.step(rng);
  }
  csv.flush();

  banner("Figure 8 — sample generated workload (medium VM, 800/1600 users)");
  std::cout << "demand sparkline (" << kSlots << " slots of 30s, '@' = "
            << ConsoleTable::num(hi, 1) << " units, ' ' = "
            << ConsoleTable::num(lo, 1) << "):\n";
  for (std::size_t row = 0; row < kSlots; row += 80) {
    for (std::size_t t = row; t < std::min(row + 80, kSlots); ++t)
      std::cout << spark_char(demand[t], lo, hi);
    std::cout << '\n';
  }

  std::size_t on_slots = 0;
  for (auto s : states)
    if (s == VmState::kOn) ++on_slots;
  const double rb_level =
      workload.requests_to_demand(workload.expected_requests(VmState::kOff));
  const double rp_level =
      workload.requests_to_demand(workload.expected_requests(VmState::kOn));
  std::cout << "\nprovisioning levels (Figure 1): normal = "
            << ConsoleTable::num(rb_level, 2)
            << " units, peak = " << ConsoleTable::num(rp_level, 2)
            << " units\n";
  std::cout << "ON fraction observed: "
            << ConsoleTable::percent(
                   static_cast<double>(on_slots) /
                   static_cast<double>(kSlots))
            << " (stationary q = "
            << ConsoleTable::percent(
                   chain_params.stationary_on_probability())
            << ")\n";
  std::cout << "[fig8] CSV written to bench_out/fig8_workload.csv\n";
  return 0;
}
