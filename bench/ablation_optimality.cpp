// Ablation — how far is QueuingFFD from the true optimum?
//
// The consolidation problem is NP-hard; the paper evaluates its FFD
// heuristic only against other heuristics.  For small instances the exact
// branch-and-bound optimum is computable, so we can measure the gap.

#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "placement/optimal.h"
#include "placement/queuing_ffd.h"

int main() {
  using namespace burstq;
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const OnOffParams params = paper_onoff_params();
  const MapCalTable table(16, params, 0.01);
  const std::size_t kTrialsPerSize = 20;

  auto csv = open_csv("ablation_optimality.csv");
  csv.row({"n_vms", "ffd_avg", "optimal_avg", "gap_instances",
           "unsolved"});

  banner("Optimality gap — QueuingFFD vs exact branch & bound (rho=0.01)");
  ConsoleTable out({"n VMs", "FFD PMs (avg)", "optimal PMs (avg)",
                    "instances with gap", "unsolved"});

  for (const std::size_t n : {6u, 8u, 10u, 12u, 14u}) {
    double ffd_total = 0.0;
    double opt_total = 0.0;
    std::size_t gap_count = 0;
    std::size_t unsolved = 0;
    std::size_t solved = 0;
    for (std::size_t t = 0; t < kTrialsPerSize; ++t) {
      Rng rng(9000 + 31 * t + n);
      ProblemInstance inst;
      for (std::size_t i = 0; i < n; ++i)
        inst.vms.push_back(
            VmSpec{params, rng.uniform(2, 20), rng.uniform(2, 20)});
      for (std::size_t j = 0; j < n; ++j)
        inst.pms.push_back(PmSpec{90.0});

      QueuingFfdOptions ffd_opt;
      const auto ffd = queuing_ffd_with_table(inst, table, ffd_opt);
      const auto optimum = optimal_pm_count(inst, table);
      if (!ffd.complete() || !optimum) {
        ++unsolved;
        continue;
      }
      ++solved;
      ffd_total += static_cast<double>(ffd.pms_used());
      opt_total += static_cast<double>(*optimum);
      if (ffd.pms_used() > *optimum) ++gap_count;
    }
    const auto sd = static_cast<double>(solved);
    out.add_row({std::to_string(n),
                 ConsoleTable::num(solved ? ffd_total / sd : 0.0, 2),
                 ConsoleTable::num(solved ? opt_total / sd : 0.0, 2),
                 std::to_string(gap_count) + "/" + std::to_string(solved),
                 std::to_string(unsolved)});
    csv.begin_row();
    csv.field(n)
        .field(solved ? ffd_total / sd : 0.0)
        .field(solved ? opt_total / sd : 0.0)
        .field(gap_count)
        .field(unsolved);
    csv.end_row();
  }
  out.print(std::cout);
  csv.flush();
  std::cout << "\n[ablation_optimality] QueuingFFD is typically optimal or "
               "within one PM on small instances.  CSV: "
               "bench_out/ablation_optimality.csv\n";
  return 0;
}
