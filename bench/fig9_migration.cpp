// Figure 9 — runtime performance with live migration enabled, on the
// web-server workload (Table I specifications):
//   (a) total number of migrations     (performance)
//   (b) number of PMs used at the end  (energy consumption)
// for QUEUE vs RB vs RB-EX (delta = 0.3), three patterns, 10 runs each,
// reporting average with min/max whiskers.
//
// Settings follow the paper: rho = 0.01, p_on = 0.01, p_off = 0.09,
// sigma = 30s, evaluation period 100 sigma.

#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"

namespace {

using namespace burstq;

PlacementFactory placer_for(Strategy s) {
  switch (s) {
    case Strategy::kQueue:
      return [](const ProblemInstance& i) { return queuing_ffd(i).result; };
    case Strategy::kNormal:
      return [](const ProblemInstance& i) { return ffd_by_normal(i); };
    case Strategy::kReserved:
      return [](const ProblemInstance& i) { return ffd_reserved(i, 0.3); };
    case Strategy::kPeak:
      return [](const ProblemInstance& i) { return ffd_by_peak(i); };
    default:
      break;  // extensions are not part of the Figure 9 comparison
  }
  return {};
}

}  // namespace

int main() {
  using burstq::bench::banner;
  using burstq::bench::open_csv;

  const std::size_t kVms = 80;
  const std::size_t kTrials = 10;

  TrialConfig cfg;
  cfg.trials = kTrials;
  cfg.base_seed = 20130527;  // IPDPS'13 Boston, why not
  cfg.sim.slots = 100;
  cfg.sim.sigma_seconds = 30.0;
  cfg.sim.webserver_workload = true;
  cfg.sim.policy.rho = 0.01;

  auto csv = open_csv("fig9_migration.csv");
  csv.row({"pattern", "strategy", "migrations_avg", "migrations_min",
           "migrations_max", "pms_end_avg", "pms_end_min", "pms_end_max",
           "pms_initial_avg", "mean_cvr", "energy_wh_avg"});

  for (const auto pattern : all_patterns()) {
    const auto factory = [pattern, kVms](Rng& rng) {
      return table_i_instance(pattern, kVms, kVms, paper_onoff_params(),
                              rng);
    };

    banner("Figure 9 (" + pattern_name(pattern) + ") — " +
           std::to_string(kTrials) + " runs, 100 slots of 30s, " +
           std::to_string(kVms) + " web-server VMs");
    ConsoleTable table({"strategy", "migrations avg (min..max)",
                        "PMs end avg (min..max)", "PMs initial", "mean CVR",
                        "energy (Wh)"});

    for (const auto strat :
         {Strategy::kQueue, Strategy::kNormal, Strategy::kReserved}) {
      const TrialSummary s = run_trials(factory, placer_for(strat), cfg);
      table.add_row({strategy_name(strat),
                     summarize_cell(s.migrations, 1),
                     summarize_cell(s.pms_end, 1),
                     ConsoleTable::num(s.pms_initial.mean(), 1),
                     ConsoleTable::num(s.mean_cvr.mean(), 4),
                     ConsoleTable::num(s.energy_wh.mean(), 0)});
      csv.begin_row();
      csv.field(pattern_name(pattern))
          .field(strategy_name(strat))
          .field(s.migrations.mean())
          .field(s.migrations.min())
          .field(s.migrations.max())
          .field(s.pms_end.mean())
          .field(s.pms_end.min())
          .field(s.pms_end.max())
          .field(s.pms_initial.mean())
          .field(s.mean_cvr.mean())
          .field(s.energy_wh.mean());
      csv.end_row();
    }
    table.print(std::cout);
  }
  csv.flush();
  std::cout << "\n[fig9] Expected shape: RB >> RB-EX > QUEUE in migrations; "
               "RB lowest in PMs (cycle migration), QUEUE slightly more "
               "PMs but near-zero migrations.  CSV: "
               "bench_out/fig9_migration.csv\n";
  return 0;
}
