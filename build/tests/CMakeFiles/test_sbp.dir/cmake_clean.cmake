file(REMOVE_RECURSE
  "CMakeFiles/test_sbp.dir/test_sbp.cpp.o"
  "CMakeFiles/test_sbp.dir/test_sbp.cpp.o.d"
  "test_sbp"
  "test_sbp.pdb"
  "test_sbp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
