# Empty dependencies file for test_quantile_reservation.
# This may be replaced when dependencies are built.
