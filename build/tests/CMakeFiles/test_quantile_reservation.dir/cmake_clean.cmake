file(REMOVE_RECURSE
  "CMakeFiles/test_quantile_reservation.dir/test_quantile_reservation.cpp.o"
  "CMakeFiles/test_quantile_reservation.dir/test_quantile_reservation.cpp.o.d"
  "test_quantile_reservation"
  "test_quantile_reservation.pdb"
  "test_quantile_reservation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantile_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
