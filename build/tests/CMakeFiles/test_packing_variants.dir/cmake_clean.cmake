file(REMOVE_RECURSE
  "CMakeFiles/test_packing_variants.dir/test_packing_variants.cpp.o"
  "CMakeFiles/test_packing_variants.dir/test_packing_variants.cpp.o.d"
  "test_packing_variants"
  "test_packing_variants.pdb"
  "test_packing_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packing_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
