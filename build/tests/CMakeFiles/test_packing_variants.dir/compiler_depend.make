# Empty compiler generated dependencies file for test_packing_variants.
# This may be replaced when dependencies are built.
