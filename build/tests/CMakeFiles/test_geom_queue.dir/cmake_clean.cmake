file(REMOVE_RECURSE
  "CMakeFiles/test_geom_queue.dir/test_geom_queue.cpp.o"
  "CMakeFiles/test_geom_queue.dir/test_geom_queue.cpp.o.d"
  "test_geom_queue"
  "test_geom_queue.pdb"
  "test_geom_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
