# Empty compiler generated dependencies file for test_geom_queue.
# This may be replaced when dependencies are built.
