file(REMOVE_RECURSE
  "CMakeFiles/test_instance_io.dir/test_instance_io.cpp.o"
  "CMakeFiles/test_instance_io.dir/test_instance_io.cpp.o.d"
  "test_instance_io"
  "test_instance_io.pdb"
  "test_instance_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instance_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
