
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/test_experiment.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_experiment.dir/test_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fit/CMakeFiles/burstq_fit.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/burstq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/burstq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/burstq_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/queuing/CMakeFiles/burstq_queuing.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/burstq_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/burstq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/burstq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/burstq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
