# Empty compiler generated dependencies file for test_multidim.
# This may be replaced when dependencies are built.
