file(REMOVE_RECURSE
  "CMakeFiles/test_replan.dir/test_replan.cpp.o"
  "CMakeFiles/test_replan.dir/test_replan.cpp.o.d"
  "test_replan"
  "test_replan.pdb"
  "test_replan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
