# Empty dependencies file for test_replan.
# This may be replaced when dependencies are built.
