# Empty compiler generated dependencies file for test_mapcal.
# This may be replaced when dependencies are built.
