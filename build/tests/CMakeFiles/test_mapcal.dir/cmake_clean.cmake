file(REMOVE_RECURSE
  "CMakeFiles/test_mapcal.dir/test_mapcal.cpp.o"
  "CMakeFiles/test_mapcal.dir/test_mapcal.cpp.o.d"
  "test_mapcal"
  "test_mapcal.pdb"
  "test_mapcal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapcal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
