# Empty dependencies file for test_queuing_ffd.
# This may be replaced when dependencies are built.
