file(REMOVE_RECURSE
  "CMakeFiles/test_queuing_ffd.dir/test_queuing_ffd.cpp.o"
  "CMakeFiles/test_queuing_ffd.dir/test_queuing_ffd.cpp.o.d"
  "test_queuing_ffd"
  "test_queuing_ffd.pdb"
  "test_queuing_ffd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queuing_ffd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
