file(REMOVE_RECURSE
  "CMakeFiles/test_aggregate_chain.dir/test_aggregate_chain.cpp.o"
  "CMakeFiles/test_aggregate_chain.dir/test_aggregate_chain.cpp.o.d"
  "test_aggregate_chain"
  "test_aggregate_chain.pdb"
  "test_aggregate_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggregate_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
