# Empty compiler generated dependencies file for test_aggregate_chain.
# This may be replaced when dependencies are built.
