# Empty compiler generated dependencies file for test_linalg_stress.
# This may be replaced when dependencies are built.
