file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_stress.dir/test_linalg_stress.cpp.o"
  "CMakeFiles/test_linalg_stress.dir/test_linalg_stress.cpp.o.d"
  "test_linalg_stress"
  "test_linalg_stress.pdb"
  "test_linalg_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
