# Empty dependencies file for test_request_sim.
# This may be replaced when dependencies are built.
