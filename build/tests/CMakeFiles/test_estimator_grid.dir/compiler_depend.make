# Empty compiler generated dependencies file for test_estimator_grid.
# This may be replaced when dependencies are built.
