file(REMOVE_RECURSE
  "CMakeFiles/test_estimator_grid.dir/test_estimator_grid.cpp.o"
  "CMakeFiles/test_estimator_grid.dir/test_estimator_grid.cpp.o.d"
  "test_estimator_grid"
  "test_estimator_grid.pdb"
  "test_estimator_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimator_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
