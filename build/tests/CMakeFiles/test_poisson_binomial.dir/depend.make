# Empty dependencies file for test_poisson_binomial.
# This may be replaced when dependencies are built.
