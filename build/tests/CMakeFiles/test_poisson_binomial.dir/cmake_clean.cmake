file(REMOVE_RECURSE
  "CMakeFiles/test_poisson_binomial.dir/test_poisson_binomial.cpp.o"
  "CMakeFiles/test_poisson_binomial.dir/test_poisson_binomial.cpp.o.d"
  "test_poisson_binomial"
  "test_poisson_binomial.pdb"
  "test_poisson_binomial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poisson_binomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
