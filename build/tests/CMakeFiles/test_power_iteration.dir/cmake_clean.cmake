file(REMOVE_RECURSE
  "CMakeFiles/test_power_iteration.dir/test_power_iteration.cpp.o"
  "CMakeFiles/test_power_iteration.dir/test_power_iteration.cpp.o.d"
  "test_power_iteration"
  "test_power_iteration.pdb"
  "test_power_iteration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
