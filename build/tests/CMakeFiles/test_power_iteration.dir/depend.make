# Empty dependencies file for test_power_iteration.
# This may be replaced when dependencies are built.
