# Empty dependencies file for test_multidim_sim.
# This may be replaced when dependencies are built.
