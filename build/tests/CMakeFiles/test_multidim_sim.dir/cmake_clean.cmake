file(REMOVE_RECURSE
  "CMakeFiles/test_multidim_sim.dir/test_multidim_sim.cpp.o"
  "CMakeFiles/test_multidim_sim.dir/test_multidim_sim.cpp.o.d"
  "test_multidim_sim"
  "test_multidim_sim.pdb"
  "test_multidim_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multidim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
