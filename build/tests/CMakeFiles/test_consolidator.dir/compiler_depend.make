# Empty compiler generated dependencies file for test_consolidator.
# This may be replaced when dependencies are built.
