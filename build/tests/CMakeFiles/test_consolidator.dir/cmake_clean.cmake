file(REMOVE_RECURSE
  "CMakeFiles/test_consolidator.dir/test_consolidator.cpp.o"
  "CMakeFiles/test_consolidator.dir/test_consolidator.cpp.o.d"
  "test_consolidator"
  "test_consolidator.pdb"
  "test_consolidator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consolidator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
