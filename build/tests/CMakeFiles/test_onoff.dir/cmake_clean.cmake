file(REMOVE_RECURSE
  "CMakeFiles/test_onoff.dir/test_onoff.cpp.o"
  "CMakeFiles/test_onoff.dir/test_onoff.cpp.o.d"
  "test_onoff"
  "test_onoff.pdb"
  "test_onoff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_onoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
