# Empty dependencies file for test_onoff.
# This may be replaced when dependencies are built.
