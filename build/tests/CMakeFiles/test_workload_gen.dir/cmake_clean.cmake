file(REMOVE_RECURSE
  "CMakeFiles/test_workload_gen.dir/test_workload_gen.cpp.o"
  "CMakeFiles/test_workload_gen.dir/test_workload_gen.cpp.o.d"
  "test_workload_gen"
  "test_workload_gen.pdb"
  "test_workload_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
