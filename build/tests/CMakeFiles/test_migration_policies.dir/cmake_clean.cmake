file(REMOVE_RECURSE
  "CMakeFiles/test_migration_policies.dir/test_migration_policies.cpp.o"
  "CMakeFiles/test_migration_policies.dir/test_migration_policies.cpp.o.d"
  "test_migration_policies"
  "test_migration_policies.pdb"
  "test_migration_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migration_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
