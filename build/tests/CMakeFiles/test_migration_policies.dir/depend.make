# Empty dependencies file for test_migration_policies.
# This may be replaced when dependencies are built.
