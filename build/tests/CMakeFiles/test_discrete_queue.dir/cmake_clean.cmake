file(REMOVE_RECURSE
  "CMakeFiles/test_discrete_queue.dir/test_discrete_queue.cpp.o"
  "CMakeFiles/test_discrete_queue.dir/test_discrete_queue.cpp.o.d"
  "test_discrete_queue"
  "test_discrete_queue.pdb"
  "test_discrete_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_discrete_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
