# Empty compiler generated dependencies file for test_discrete_queue.
# This may be replaced when dependencies are built.
