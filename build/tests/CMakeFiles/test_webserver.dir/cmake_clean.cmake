file(REMOVE_RECURSE
  "CMakeFiles/test_webserver.dir/test_webserver.cpp.o"
  "CMakeFiles/test_webserver.dir/test_webserver.cpp.o.d"
  "test_webserver"
  "test_webserver.pdb"
  "test_webserver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_webserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
