# Empty dependencies file for test_webserver.
# This may be replaced when dependencies are built.
