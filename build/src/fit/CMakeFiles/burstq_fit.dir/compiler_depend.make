# Empty compiler generated dependencies file for burstq_fit.
# This may be replaced when dependencies are built.
