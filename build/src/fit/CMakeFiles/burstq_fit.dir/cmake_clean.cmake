file(REMOVE_RECURSE
  "CMakeFiles/burstq_fit.dir/diagnostics.cpp.o"
  "CMakeFiles/burstq_fit.dir/diagnostics.cpp.o.d"
  "CMakeFiles/burstq_fit.dir/estimator.cpp.o"
  "CMakeFiles/burstq_fit.dir/estimator.cpp.o.d"
  "CMakeFiles/burstq_fit.dir/instance_io.cpp.o"
  "CMakeFiles/burstq_fit.dir/instance_io.cpp.o.d"
  "CMakeFiles/burstq_fit.dir/planetlab.cpp.o"
  "CMakeFiles/burstq_fit.dir/planetlab.cpp.o.d"
  "CMakeFiles/burstq_fit.dir/trace_io.cpp.o"
  "CMakeFiles/burstq_fit.dir/trace_io.cpp.o.d"
  "libburstq_fit.a"
  "libburstq_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
