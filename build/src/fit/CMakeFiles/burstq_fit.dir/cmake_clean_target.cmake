file(REMOVE_RECURSE
  "libburstq_fit.a"
)
