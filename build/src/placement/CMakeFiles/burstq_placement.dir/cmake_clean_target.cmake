file(REMOVE_RECURSE
  "libburstq_placement.a"
)
