# Empty dependencies file for burstq_placement.
# This may be replaced when dependencies are built.
