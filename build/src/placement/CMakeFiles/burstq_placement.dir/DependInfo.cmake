
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/baselines.cpp" "src/placement/CMakeFiles/burstq_placement.dir/baselines.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/baselines.cpp.o.d"
  "/root/repo/src/placement/budget.cpp" "src/placement/CMakeFiles/burstq_placement.dir/budget.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/budget.cpp.o.d"
  "/root/repo/src/placement/cluster.cpp" "src/placement/CMakeFiles/burstq_placement.dir/cluster.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/cluster.cpp.o.d"
  "/root/repo/src/placement/first_fit.cpp" "src/placement/CMakeFiles/burstq_placement.dir/first_fit.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/first_fit.cpp.o.d"
  "/root/repo/src/placement/hetero_ffd.cpp" "src/placement/CMakeFiles/burstq_placement.dir/hetero_ffd.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/hetero_ffd.cpp.o.d"
  "/root/repo/src/placement/multidim.cpp" "src/placement/CMakeFiles/burstq_placement.dir/multidim.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/multidim.cpp.o.d"
  "/root/repo/src/placement/online.cpp" "src/placement/CMakeFiles/burstq_placement.dir/online.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/online.cpp.o.d"
  "/root/repo/src/placement/optimal.cpp" "src/placement/CMakeFiles/burstq_placement.dir/optimal.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/optimal.cpp.o.d"
  "/root/repo/src/placement/packing_variants.cpp" "src/placement/CMakeFiles/burstq_placement.dir/packing_variants.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/packing_variants.cpp.o.d"
  "/root/repo/src/placement/placement.cpp" "src/placement/CMakeFiles/burstq_placement.dir/placement.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/placement.cpp.o.d"
  "/root/repo/src/placement/quantile_ffd.cpp" "src/placement/CMakeFiles/burstq_placement.dir/quantile_ffd.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/quantile_ffd.cpp.o.d"
  "/root/repo/src/placement/queuing_ffd.cpp" "src/placement/CMakeFiles/burstq_placement.dir/queuing_ffd.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/queuing_ffd.cpp.o.d"
  "/root/repo/src/placement/replan.cpp" "src/placement/CMakeFiles/burstq_placement.dir/replan.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/replan.cpp.o.d"
  "/root/repo/src/placement/sbp.cpp" "src/placement/CMakeFiles/burstq_placement.dir/sbp.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/sbp.cpp.o.d"
  "/root/repo/src/placement/spec.cpp" "src/placement/CMakeFiles/burstq_placement.dir/spec.cpp.o" "gcc" "src/placement/CMakeFiles/burstq_placement.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queuing/CMakeFiles/burstq_queuing.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/burstq_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/burstq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/burstq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/burstq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
