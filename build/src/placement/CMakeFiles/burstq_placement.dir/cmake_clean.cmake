file(REMOVE_RECURSE
  "CMakeFiles/burstq_placement.dir/baselines.cpp.o"
  "CMakeFiles/burstq_placement.dir/baselines.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/budget.cpp.o"
  "CMakeFiles/burstq_placement.dir/budget.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/cluster.cpp.o"
  "CMakeFiles/burstq_placement.dir/cluster.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/first_fit.cpp.o"
  "CMakeFiles/burstq_placement.dir/first_fit.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/hetero_ffd.cpp.o"
  "CMakeFiles/burstq_placement.dir/hetero_ffd.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/multidim.cpp.o"
  "CMakeFiles/burstq_placement.dir/multidim.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/online.cpp.o"
  "CMakeFiles/burstq_placement.dir/online.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/optimal.cpp.o"
  "CMakeFiles/burstq_placement.dir/optimal.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/packing_variants.cpp.o"
  "CMakeFiles/burstq_placement.dir/packing_variants.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/placement.cpp.o"
  "CMakeFiles/burstq_placement.dir/placement.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/quantile_ffd.cpp.o"
  "CMakeFiles/burstq_placement.dir/quantile_ffd.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/queuing_ffd.cpp.o"
  "CMakeFiles/burstq_placement.dir/queuing_ffd.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/replan.cpp.o"
  "CMakeFiles/burstq_placement.dir/replan.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/sbp.cpp.o"
  "CMakeFiles/burstq_placement.dir/sbp.cpp.o.d"
  "CMakeFiles/burstq_placement.dir/spec.cpp.o"
  "CMakeFiles/burstq_placement.dir/spec.cpp.o.d"
  "libburstq_placement.a"
  "libburstq_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
