
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster_sim.cpp" "src/sim/CMakeFiles/burstq_sim.dir/cluster_sim.cpp.o" "gcc" "src/sim/CMakeFiles/burstq_sim.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/burstq_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/burstq_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/migration.cpp" "src/sim/CMakeFiles/burstq_sim.dir/migration.cpp.o" "gcc" "src/sim/CMakeFiles/burstq_sim.dir/migration.cpp.o.d"
  "/root/repo/src/sim/multidim_sim.cpp" "src/sim/CMakeFiles/burstq_sim.dir/multidim_sim.cpp.o" "gcc" "src/sim/CMakeFiles/burstq_sim.dir/multidim_sim.cpp.o.d"
  "/root/repo/src/sim/request_sim.cpp" "src/sim/CMakeFiles/burstq_sim.dir/request_sim.cpp.o" "gcc" "src/sim/CMakeFiles/burstq_sim.dir/request_sim.cpp.o.d"
  "/root/repo/src/sim/trace_replay.cpp" "src/sim/CMakeFiles/burstq_sim.dir/trace_replay.cpp.o" "gcc" "src/sim/CMakeFiles/burstq_sim.dir/trace_replay.cpp.o.d"
  "/root/repo/src/sim/webserver.cpp" "src/sim/CMakeFiles/burstq_sim.dir/webserver.cpp.o" "gcc" "src/sim/CMakeFiles/burstq_sim.dir/webserver.cpp.o.d"
  "/root/repo/src/sim/workload_gen.cpp" "src/sim/CMakeFiles/burstq_sim.dir/workload_gen.cpp.o" "gcc" "src/sim/CMakeFiles/burstq_sim.dir/workload_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/placement/CMakeFiles/burstq_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/queuing/CMakeFiles/burstq_queuing.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/burstq_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/burstq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/burstq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/burstq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
