# Empty compiler generated dependencies file for burstq_sim.
# This may be replaced when dependencies are built.
