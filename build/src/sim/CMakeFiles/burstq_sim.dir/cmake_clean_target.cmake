file(REMOVE_RECURSE
  "libburstq_sim.a"
)
