file(REMOVE_RECURSE
  "CMakeFiles/burstq_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/burstq_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/burstq_sim.dir/metrics.cpp.o"
  "CMakeFiles/burstq_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/burstq_sim.dir/migration.cpp.o"
  "CMakeFiles/burstq_sim.dir/migration.cpp.o.d"
  "CMakeFiles/burstq_sim.dir/multidim_sim.cpp.o"
  "CMakeFiles/burstq_sim.dir/multidim_sim.cpp.o.d"
  "CMakeFiles/burstq_sim.dir/request_sim.cpp.o"
  "CMakeFiles/burstq_sim.dir/request_sim.cpp.o.d"
  "CMakeFiles/burstq_sim.dir/trace_replay.cpp.o"
  "CMakeFiles/burstq_sim.dir/trace_replay.cpp.o.d"
  "CMakeFiles/burstq_sim.dir/webserver.cpp.o"
  "CMakeFiles/burstq_sim.dir/webserver.cpp.o.d"
  "CMakeFiles/burstq_sim.dir/workload_gen.cpp.o"
  "CMakeFiles/burstq_sim.dir/workload_gen.cpp.o.d"
  "libburstq_sim.a"
  "libburstq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
