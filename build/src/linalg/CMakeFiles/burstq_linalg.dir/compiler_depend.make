# Empty compiler generated dependencies file for burstq_linalg.
# This may be replaced when dependencies are built.
