file(REMOVE_RECURSE
  "CMakeFiles/burstq_linalg.dir/gaussian.cpp.o"
  "CMakeFiles/burstq_linalg.dir/gaussian.cpp.o.d"
  "CMakeFiles/burstq_linalg.dir/matrix.cpp.o"
  "CMakeFiles/burstq_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/burstq_linalg.dir/power_iteration.cpp.o"
  "CMakeFiles/burstq_linalg.dir/power_iteration.cpp.o.d"
  "libburstq_linalg.a"
  "libburstq_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
