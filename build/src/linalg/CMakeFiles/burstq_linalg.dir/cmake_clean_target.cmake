file(REMOVE_RECURSE
  "libburstq_linalg.a"
)
