file(REMOVE_RECURSE
  "libburstq_common.a"
)
