# Empty dependencies file for burstq_common.
# This may be replaced when dependencies are built.
