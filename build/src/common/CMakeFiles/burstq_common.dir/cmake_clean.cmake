file(REMOVE_RECURSE
  "CMakeFiles/burstq_common.dir/args.cpp.o"
  "CMakeFiles/burstq_common.dir/args.cpp.o.d"
  "CMakeFiles/burstq_common.dir/csv.cpp.o"
  "CMakeFiles/burstq_common.dir/csv.cpp.o.d"
  "CMakeFiles/burstq_common.dir/parallel.cpp.o"
  "CMakeFiles/burstq_common.dir/parallel.cpp.o.d"
  "CMakeFiles/burstq_common.dir/rng.cpp.o"
  "CMakeFiles/burstq_common.dir/rng.cpp.o.d"
  "CMakeFiles/burstq_common.dir/stats.cpp.o"
  "CMakeFiles/burstq_common.dir/stats.cpp.o.d"
  "CMakeFiles/burstq_common.dir/table.cpp.o"
  "CMakeFiles/burstq_common.dir/table.cpp.o.d"
  "libburstq_common.a"
  "libburstq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
