file(REMOVE_RECURSE
  "libburstq_prob.a"
)
