# Empty dependencies file for burstq_prob.
# This may be replaced when dependencies are built.
