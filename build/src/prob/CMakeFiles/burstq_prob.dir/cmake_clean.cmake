file(REMOVE_RECURSE
  "CMakeFiles/burstq_prob.dir/binomial.cpp.o"
  "CMakeFiles/burstq_prob.dir/binomial.cpp.o.d"
  "CMakeFiles/burstq_prob.dir/combinatorics.cpp.o"
  "CMakeFiles/burstq_prob.dir/combinatorics.cpp.o.d"
  "CMakeFiles/burstq_prob.dir/normal.cpp.o"
  "CMakeFiles/burstq_prob.dir/normal.cpp.o.d"
  "CMakeFiles/burstq_prob.dir/poisson_binomial.cpp.o"
  "CMakeFiles/burstq_prob.dir/poisson_binomial.cpp.o.d"
  "libburstq_prob.a"
  "libburstq_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
