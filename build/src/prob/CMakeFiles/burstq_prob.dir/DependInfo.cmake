
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prob/binomial.cpp" "src/prob/CMakeFiles/burstq_prob.dir/binomial.cpp.o" "gcc" "src/prob/CMakeFiles/burstq_prob.dir/binomial.cpp.o.d"
  "/root/repo/src/prob/combinatorics.cpp" "src/prob/CMakeFiles/burstq_prob.dir/combinatorics.cpp.o" "gcc" "src/prob/CMakeFiles/burstq_prob.dir/combinatorics.cpp.o.d"
  "/root/repo/src/prob/normal.cpp" "src/prob/CMakeFiles/burstq_prob.dir/normal.cpp.o" "gcc" "src/prob/CMakeFiles/burstq_prob.dir/normal.cpp.o.d"
  "/root/repo/src/prob/poisson_binomial.cpp" "src/prob/CMakeFiles/burstq_prob.dir/poisson_binomial.cpp.o" "gcc" "src/prob/CMakeFiles/burstq_prob.dir/poisson_binomial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/burstq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
