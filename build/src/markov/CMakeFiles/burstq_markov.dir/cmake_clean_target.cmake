file(REMOVE_RECURSE
  "libburstq_markov.a"
)
