
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/aggregate_chain.cpp" "src/markov/CMakeFiles/burstq_markov.dir/aggregate_chain.cpp.o" "gcc" "src/markov/CMakeFiles/burstq_markov.dir/aggregate_chain.cpp.o.d"
  "/root/repo/src/markov/burstiness.cpp" "src/markov/CMakeFiles/burstq_markov.dir/burstiness.cpp.o" "gcc" "src/markov/CMakeFiles/burstq_markov.dir/burstiness.cpp.o.d"
  "/root/repo/src/markov/onoff.cpp" "src/markov/CMakeFiles/burstq_markov.dir/onoff.cpp.o" "gcc" "src/markov/CMakeFiles/burstq_markov.dir/onoff.cpp.o.d"
  "/root/repo/src/markov/transient.cpp" "src/markov/CMakeFiles/burstq_markov.dir/transient.cpp.o" "gcc" "src/markov/CMakeFiles/burstq_markov.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/burstq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/burstq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/burstq_prob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
