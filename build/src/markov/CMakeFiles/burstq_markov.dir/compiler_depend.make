# Empty compiler generated dependencies file for burstq_markov.
# This may be replaced when dependencies are built.
