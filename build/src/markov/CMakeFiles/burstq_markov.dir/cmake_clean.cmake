file(REMOVE_RECURSE
  "CMakeFiles/burstq_markov.dir/aggregate_chain.cpp.o"
  "CMakeFiles/burstq_markov.dir/aggregate_chain.cpp.o.d"
  "CMakeFiles/burstq_markov.dir/burstiness.cpp.o"
  "CMakeFiles/burstq_markov.dir/burstiness.cpp.o.d"
  "CMakeFiles/burstq_markov.dir/onoff.cpp.o"
  "CMakeFiles/burstq_markov.dir/onoff.cpp.o.d"
  "CMakeFiles/burstq_markov.dir/transient.cpp.o"
  "CMakeFiles/burstq_markov.dir/transient.cpp.o.d"
  "libburstq_markov.a"
  "libburstq_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
