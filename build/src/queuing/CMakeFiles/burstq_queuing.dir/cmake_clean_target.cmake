file(REMOVE_RECURSE
  "libburstq_queuing.a"
)
