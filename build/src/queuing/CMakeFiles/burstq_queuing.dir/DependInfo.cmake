
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queuing/discrete_queue.cpp" "src/queuing/CMakeFiles/burstq_queuing.dir/discrete_queue.cpp.o" "gcc" "src/queuing/CMakeFiles/burstq_queuing.dir/discrete_queue.cpp.o.d"
  "/root/repo/src/queuing/geom_queue.cpp" "src/queuing/CMakeFiles/burstq_queuing.dir/geom_queue.cpp.o" "gcc" "src/queuing/CMakeFiles/burstq_queuing.dir/geom_queue.cpp.o.d"
  "/root/repo/src/queuing/hetero.cpp" "src/queuing/CMakeFiles/burstq_queuing.dir/hetero.cpp.o" "gcc" "src/queuing/CMakeFiles/burstq_queuing.dir/hetero.cpp.o.d"
  "/root/repo/src/queuing/mapcal.cpp" "src/queuing/CMakeFiles/burstq_queuing.dir/mapcal.cpp.o" "gcc" "src/queuing/CMakeFiles/burstq_queuing.dir/mapcal.cpp.o.d"
  "/root/repo/src/queuing/quantile_reservation.cpp" "src/queuing/CMakeFiles/burstq_queuing.dir/quantile_reservation.cpp.o" "gcc" "src/queuing/CMakeFiles/burstq_queuing.dir/quantile_reservation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/markov/CMakeFiles/burstq_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/burstq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/burstq_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/burstq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
