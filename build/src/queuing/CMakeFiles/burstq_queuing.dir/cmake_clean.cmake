file(REMOVE_RECURSE
  "CMakeFiles/burstq_queuing.dir/discrete_queue.cpp.o"
  "CMakeFiles/burstq_queuing.dir/discrete_queue.cpp.o.d"
  "CMakeFiles/burstq_queuing.dir/geom_queue.cpp.o"
  "CMakeFiles/burstq_queuing.dir/geom_queue.cpp.o.d"
  "CMakeFiles/burstq_queuing.dir/hetero.cpp.o"
  "CMakeFiles/burstq_queuing.dir/hetero.cpp.o.d"
  "CMakeFiles/burstq_queuing.dir/mapcal.cpp.o"
  "CMakeFiles/burstq_queuing.dir/mapcal.cpp.o.d"
  "CMakeFiles/burstq_queuing.dir/quantile_reservation.cpp.o"
  "CMakeFiles/burstq_queuing.dir/quantile_reservation.cpp.o.d"
  "libburstq_queuing.a"
  "libburstq_queuing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_queuing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
