# Empty compiler generated dependencies file for burstq_queuing.
# This may be replaced when dependencies are built.
