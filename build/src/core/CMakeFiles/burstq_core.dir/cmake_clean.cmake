file(REMOVE_RECURSE
  "CMakeFiles/burstq_core.dir/consolidator.cpp.o"
  "CMakeFiles/burstq_core.dir/consolidator.cpp.o.d"
  "CMakeFiles/burstq_core.dir/controller.cpp.o"
  "CMakeFiles/burstq_core.dir/controller.cpp.o.d"
  "CMakeFiles/burstq_core.dir/experiment.cpp.o"
  "CMakeFiles/burstq_core.dir/experiment.cpp.o.d"
  "CMakeFiles/burstq_core.dir/scenario.cpp.o"
  "CMakeFiles/burstq_core.dir/scenario.cpp.o.d"
  "libburstq_core.a"
  "libburstq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
