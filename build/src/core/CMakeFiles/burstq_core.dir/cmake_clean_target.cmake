file(REMOVE_RECURSE
  "libburstq_core.a"
)
