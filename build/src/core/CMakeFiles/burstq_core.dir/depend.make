# Empty dependencies file for burstq_core.
# This may be replaced when dependencies are built.
