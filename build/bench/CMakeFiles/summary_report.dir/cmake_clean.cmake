file(REMOVE_RECURSE
  "CMakeFiles/summary_report.dir/summary_report.cpp.o"
  "CMakeFiles/summary_report.dir/summary_report.cpp.o.d"
  "summary_report"
  "summary_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
