# Empty compiler generated dependencies file for summary_report.
# This may be replaced when dependencies are built.
