# Empty dependencies file for fig9_migration.
# This may be replaced when dependencies are built.
