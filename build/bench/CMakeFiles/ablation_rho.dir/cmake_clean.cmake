file(REMOVE_RECURSE
  "CMakeFiles/ablation_rho.dir/ablation_rho.cpp.o"
  "CMakeFiles/ablation_rho.dir/ablation_rho.cpp.o.d"
  "ablation_rho"
  "ablation_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
