file(REMOVE_RECURSE
  "CMakeFiles/fig7_cost.dir/fig7_cost.cpp.o"
  "CMakeFiles/fig7_cost.dir/fig7_cost.cpp.o.d"
  "fig7_cost"
  "fig7_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
