file(REMOVE_RECURSE
  "CMakeFiles/fig8_workload.dir/fig8_workload.cpp.o"
  "CMakeFiles/fig8_workload.dir/fig8_workload.cpp.o.d"
  "fig8_workload"
  "fig8_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
