# Empty dependencies file for fig8_workload.
# This may be replaced when dependencies are built.
