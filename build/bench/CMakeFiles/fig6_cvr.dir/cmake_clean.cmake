file(REMOVE_RECURSE
  "CMakeFiles/fig6_cvr.dir/fig6_cvr.cpp.o"
  "CMakeFiles/fig6_cvr.dir/fig6_cvr.cpp.o.d"
  "fig6_cvr"
  "fig6_cvr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cvr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
