# Empty dependencies file for fig6_cvr.
# This may be replaced when dependencies are built.
