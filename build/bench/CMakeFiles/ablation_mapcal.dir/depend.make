# Empty dependencies file for ablation_mapcal.
# This may be replaced when dependencies are built.
