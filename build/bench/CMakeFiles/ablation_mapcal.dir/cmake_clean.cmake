file(REMOVE_RECURSE
  "CMakeFiles/ablation_mapcal.dir/ablation_mapcal.cpp.o"
  "CMakeFiles/ablation_mapcal.dir/ablation_mapcal.cpp.o.d"
  "ablation_mapcal"
  "ablation_mapcal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapcal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
