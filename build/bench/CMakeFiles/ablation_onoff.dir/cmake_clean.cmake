file(REMOVE_RECURSE
  "CMakeFiles/ablation_onoff.dir/ablation_onoff.cpp.o"
  "CMakeFiles/ablation_onoff.dir/ablation_onoff.cpp.o.d"
  "ablation_onoff"
  "ablation_onoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_onoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
