# Empty compiler generated dependencies file for ablation_onoff.
# This may be replaced when dependencies are built.
