file(REMOVE_RECURSE
  "CMakeFiles/fig5_packing.dir/fig5_packing.cpp.o"
  "CMakeFiles/fig5_packing.dir/fig5_packing.cpp.o.d"
  "fig5_packing"
  "fig5_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
