# Empty compiler generated dependencies file for fig5_packing.
# This may be replaced when dependencies are built.
