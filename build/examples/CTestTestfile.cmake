# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter_consolidation "/root/repo/build/examples/datacenter_consolidation")
set_tests_properties(example_datacenter_consolidation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_cloud "/root/repo/build/examples/online_cloud")
set_tests_properties(example_online_cloud PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multidim_packing "/root/repo/build/examples/multidim_packing")
set_tests_properties(example_multidim_packing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_analysis "/root/repo/build/examples/trace_analysis")
set_tests_properties(example_trace_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autopilot "/root/repo/build/examples/autopilot")
set_tests_properties(example_autopilot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
