file(REMOVE_RECURSE
  "CMakeFiles/burstq_cli.dir/burstq_cli.cpp.o"
  "CMakeFiles/burstq_cli.dir/burstq_cli.cpp.o.d"
  "burstq_cli"
  "burstq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
