# Empty dependencies file for burstq_cli.
# This may be replaced when dependencies are built.
