file(REMOVE_RECURSE
  "CMakeFiles/multidim_packing.dir/multidim_packing.cpp.o"
  "CMakeFiles/multidim_packing.dir/multidim_packing.cpp.o.d"
  "multidim_packing"
  "multidim_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidim_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
