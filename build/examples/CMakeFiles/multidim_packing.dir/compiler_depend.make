# Empty compiler generated dependencies file for multidim_packing.
# This may be replaced when dependencies are built.
