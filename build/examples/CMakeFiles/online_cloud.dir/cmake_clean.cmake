file(REMOVE_RECURSE
  "CMakeFiles/online_cloud.dir/online_cloud.cpp.o"
  "CMakeFiles/online_cloud.dir/online_cloud.cpp.o.d"
  "online_cloud"
  "online_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
