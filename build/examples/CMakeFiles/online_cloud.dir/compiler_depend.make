# Empty compiler generated dependencies file for online_cloud.
# This may be replaced when dependencies are built.
