// Tests for the Placement container and the Eq. (17) feasibility checks.

#include <gtest/gtest.h>

#include "common/error.h"
#include "placement/placement.h"

namespace burstq {
namespace {

const OnOffParams kParams{0.01, 0.09};

ProblemInstance small_instance() {
  ProblemInstance inst;
  inst.vms = {VmSpec{kParams, 10.0, 4.0}, VmSpec{kParams, 8.0, 6.0},
              VmSpec{kParams, 5.0, 2.0}};
  inst.pms = {PmSpec{50.0}, PmSpec{40.0}};
  return inst;
}

TEST(Placement, AssignUnassignLifecycle) {
  Placement p(3, 2);
  EXPECT_EQ(p.pms_used(), 0u);
  EXPECT_EQ(p.vms_assigned(), 0u);
  p.assign(VmId{0}, PmId{1});
  EXPECT_EQ(p.pms_used(), 1u);
  EXPECT_EQ(p.pm_of(VmId{0}), PmId{1});
  EXPECT_TRUE(p.assigned(VmId{0}));
  p.assign(VmId{1}, PmId{1});
  EXPECT_EQ(p.pms_used(), 1u);
  EXPECT_EQ(p.count_on(PmId{1}), 2u);
  p.unassign(VmId{0});
  EXPECT_EQ(p.count_on(PmId{1}), 1u);
  EXPECT_FALSE(p.assigned(VmId{0}));
  p.unassign(VmId{1});
  EXPECT_EQ(p.pms_used(), 0u);
}

TEST(Placement, DoubleAssignThrows) {
  Placement p(2, 2);
  p.assign(VmId{0}, PmId{0});
  EXPECT_THROW(p.assign(VmId{0}, PmId{1}), InvalidArgument);
}

TEST(Placement, UnassignUnassignedThrows) {
  Placement p(2, 2);
  EXPECT_THROW(p.unassign(VmId{0}), InvalidArgument);
}

TEST(Placement, OutOfRangeThrows) {
  Placement p(2, 2);
  EXPECT_THROW(p.assign(VmId{5}, PmId{0}), InvalidArgument);
  EXPECT_THROW(p.assign(VmId{0}, PmId{5}), InvalidArgument);
  EXPECT_THROW((void)p.pm_of(VmId{9}), InvalidArgument);
  EXPECT_THROW((void)p.vms_on(PmId{9}), InvalidArgument);
}

TEST(Placement, VmsOnTracksMembers) {
  Placement p(3, 2);
  p.assign(VmId{2}, PmId{0});
  p.assign(VmId{0}, PmId{0});
  const auto& list = p.vms_on(PmId{0});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], 2u);
  EXPECT_EQ(list[1], 0u);
}

TEST(Aggregates, TotalRbAndMaxRe) {
  const auto inst = small_instance();
  Placement p(3, 2);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  EXPECT_DOUBLE_EQ(total_rb_on(inst, p, PmId{0}), 18.0);
  EXPECT_DOUBLE_EQ(max_re_on(inst, p, PmId{0}), 6.0);
  EXPECT_DOUBLE_EQ(total_rb_on(inst, p, PmId{1}), 0.0);
  EXPECT_DOUBLE_EQ(max_re_on(inst, p, PmId{1}), 0.0);
}

TEST(ReservedFootprint, MatchesEq17Arithmetic) {
  const auto inst = small_instance();
  const MapCalTable table(4, kParams, 0.01);
  Placement p(3, 2);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  const double expected =
      6.0 * static_cast<double>(table.blocks(2)) + 18.0;
  EXPECT_DOUBLE_EQ(reserved_footprint(inst, p, PmId{0}, table), expected);
}

TEST(FitsWithReservation, AcceptsWhenRoomRejectsWhenFull) {
  const auto inst = small_instance();
  const MapCalTable table(4, kParams, 0.01);
  Placement p(3, 2);
  // PM0 capacity 50: VM0 footprint = 4*blocks(1) + 10.  blocks(1) is 1
  // (a single VM's spike has probability q = 0.1 > rho).
  EXPECT_TRUE(fits_with_reservation(inst, p, VmId{0}, PmId{0}, table));
  p.assign(VmId{0}, PmId{0});
  EXPECT_TRUE(fits_with_reservation(inst, p, VmId{1}, PmId{0}, table));
  p.assign(VmId{1}, PmId{0});
  // Footprint with all three: rb 23 + 6*blocks(3).
  const bool third_fits =
      23.0 + 6.0 * static_cast<double>(table.blocks(3)) <= 50.0;
  EXPECT_EQ(fits_with_reservation(inst, p, VmId{2}, PmId{0}, table),
            third_fits);
}

TEST(FitsWithReservation, RespectsVmCap) {
  // Table with d = 1: second VM must be rejected regardless of capacity.
  const auto inst = small_instance();
  const MapCalTable table(1, kParams, 0.01);
  Placement p(3, 2);
  p.assign(VmId{0}, PmId{0});
  EXPECT_FALSE(fits_with_reservation(inst, p, VmId{2}, PmId{0}, table));
}

TEST(FitsWithReservation, SpecsVariantAgrees) {
  const auto inst = small_instance();
  const MapCalTable table(4, kParams, 0.01);
  Placement p(3, 2);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  const std::vector<VmSpec> hosted{inst.vms[0], inst.vms[1]};
  EXPECT_EQ(
      fits_with_reservation(inst, p, VmId{2}, PmId{0}, table),
      fits_with_reservation_specs(hosted, inst.vms[2], 50.0, table));
  EXPECT_DOUBLE_EQ(reserved_footprint(inst, p, PmId{0}, table),
                   reserved_footprint_specs(hosted, table));
}

TEST(PlacementValidation, ReservationAndInitialCapacity) {
  const auto inst = small_instance();
  const MapCalTable table(4, kParams, 0.01);
  Placement good(3, 2);
  good.assign(VmId{0}, PmId{0});
  good.assign(VmId{1}, PmId{1});
  good.assign(VmId{2}, PmId{1});
  EXPECT_TRUE(placement_satisfies_reservation(inst, good, table));
  EXPECT_TRUE(placement_satisfies_initial_capacity(inst, good));
}

TEST(PlacementValidation, DetectsOverCapacity) {
  ProblemInstance inst;
  inst.vms = {VmSpec{kParams, 30.0, 1.0}, VmSpec{kParams, 30.0, 1.0}};
  inst.pms = {PmSpec{40.0}};
  Placement p(2, 1);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  const MapCalTable table(4, kParams, 0.01);
  EXPECT_FALSE(placement_satisfies_initial_capacity(inst, p));
  EXPECT_FALSE(placement_satisfies_reservation(inst, p, table));
}

TEST(PlacementValidation, DetectsVmCapViolation) {
  ProblemInstance inst;
  inst.vms = {VmSpec{kParams, 1.0, 1.0}, VmSpec{kParams, 1.0, 1.0}};
  inst.pms = {PmSpec{100.0}};
  Placement p(2, 1);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  const MapCalTable table(1, kParams, 0.01);  // d = 1
  EXPECT_FALSE(placement_satisfies_reservation(inst, p, table));
}

TEST(Ids, StrongTypingAndHash) {
  VmId v{3};
  PmId m{3};
  EXPECT_TRUE(v.valid());
  EXPECT_FALSE(VmId{}.valid());
  EXPECT_EQ(std::hash<VmId>{}(v), std::hash<VmId>{}(VmId{3}));
  EXPECT_EQ(v, VmId{3});
  EXPECT_NE(v, VmId{4});
  EXPECT_LT(VmId{1}, VmId{2});
  (void)m;
}

}  // namespace
}  // namespace burstq
