// Tests for the general discrete-time queue substrate.

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "queuing/discrete_queue.h"

namespace burstq {
namespace {

TEST(DiscreteQueueModel, Validation) {
  DiscreteQueueModel ok;
  EXPECT_NO_THROW(ok.validate());
  DiscreteQueueModel bad = ok;
  bad.arrival_p = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.service_p = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.capacity = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);  // capacity < servers
}

TEST(DiscreteQueue, MatrixIsStochastic) {
  for (const auto& m :
       {DiscreteQueueModel{0.3, 0.5, 1, 5}, DiscreteQueueModel{0.7, 0.2, 3, 8},
        DiscreteQueueModel{0.05, 0.9, 2, 2}}) {
    EXPECT_TRUE(
        discrete_queue_transition_matrix(m).is_row_stochastic(1e-10));
  }
}

TEST(DiscreteQueue, EmptySystemStaysEmptyWithoutArrivals) {
  const DiscreteQueueModel m{0.0, 0.5, 1, 4};
  const Matrix p = discrete_queue_transition_matrix(m);
  EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
  const auto metrics = analyze_discrete_queue(m);
  EXPECT_NEAR(metrics.mean_in_system, 0.0, 1e-12);
  EXPECT_NEAR(metrics.stationary[0], 1.0, 1e-12);
}

TEST(DiscreteQueue, SingleServerLowLoadMostlyEmpty) {
  const DiscreteQueueModel m{0.1, 0.9, 1, 10};
  const auto metrics = analyze_discrete_queue(m);
  EXPECT_GT(metrics.stationary[0], 0.85);
  EXPECT_LT(metrics.blocking_probability, 1e-6);
  EXPECT_NEAR(metrics.throughput, 0.1, 1e-6);
}

TEST(DiscreteQueue, SaturatedQueueBlocksOften) {
  // lambda near 1, slow single server: the system pins at capacity.
  const DiscreteQueueModel m{0.95, 0.2, 1, 6};
  const auto metrics = analyze_discrete_queue(m);
  EXPECT_GT(metrics.blocking_probability, 0.5);
  EXPECT_GT(metrics.mean_in_system, 4.0);
  // Throughput is service-limited: ~mu when always busy.
  EXPECT_NEAR(metrics.throughput, 0.2, 0.02);
}

TEST(DiscreteQueue, UtilizationMatchesThroughput) {
  // Flow balance: accepted arrivals = served = utilization * c * mu.
  const DiscreteQueueModel m{0.4, 0.3, 2, 12};
  const auto metrics = analyze_discrete_queue(m);
  EXPECT_NEAR(metrics.server_utilization * 2.0 * 0.3, metrics.throughput,
              1e-9);
}

TEST(DiscreteQueue, MoreServersShrinkQueue) {
  DiscreteQueueModel one{0.5, 0.3, 1, 20};
  DiscreteQueueModel three{0.5, 0.3, 3, 20};
  EXPECT_GT(analyze_discrete_queue(one).mean_in_queue,
            analyze_discrete_queue(three).mean_in_queue);
}

TEST(DiscreteQueue, ErlangLossCaseHasNoQueue) {
  // capacity == servers: nobody ever waits.
  const DiscreteQueueModel m{0.6, 0.4, 3, 3};
  const auto metrics = analyze_discrete_queue(m);
  EXPECT_NEAR(metrics.mean_in_queue, 0.0, 1e-12);
}

using QueueParam = std::tuple<double, double, std::size_t, std::size_t>;

class DiscreteQueueSimAgreement
    : public ::testing::TestWithParam<QueueParam> {};

TEST_P(DiscreteQueueSimAgreement, StationaryMatchesSimulation) {
  const auto [lambda, mu, servers, capacity] = GetParam();
  const DiscreteQueueModel m{lambda, mu, servers, capacity};
  const auto analytics = analyze_discrete_queue(m);
  Rng rng(5);
  const auto sim = simulate_discrete_queue(m, 400000, rng);
  for (std::size_t n = 0; n <= capacity; ++n)
    EXPECT_NEAR(sim.occupancy[n], analytics.stationary[n], 0.01)
        << "state " << n;
  // Empirical blocking fraction vs analytic.
  if (sim.arrivals > 0) {
    const double blocked = static_cast<double>(sim.blocked) /
                           static_cast<double>(sim.arrivals);
    EXPECT_NEAR(blocked, analytics.blocking_probability, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DiscreteQueueSimAgreement,
    ::testing::Values(QueueParam{0.2, 0.5, 1, 6}, QueueParam{0.6, 0.3, 2, 8},
                      QueueParam{0.9, 0.25, 4, 10},
                      QueueParam{0.05, 0.8, 1, 3},
                      QueueParam{0.5, 0.5, 3, 3}));

TEST(DiscreteQueueSim, CountsConserve) {
  const DiscreteQueueModel m{0.5, 0.4, 2, 7};
  Rng rng(9);
  const auto sim = simulate_discrete_queue(m, 50000, rng);
  // served <= accepted arrivals; occupancy frequencies sum to 1.
  EXPECT_LE(sim.served, sim.arrivals - sim.blocked + m.capacity);
  double sum = 0.0;
  for (double f : sim.occupancy) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace burstq
