// Unit tests for the xoshiro256** generator and its distribution helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace burstq {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  // Child must differ from a fresh copy of the parent's continuation.
  Rng parent2(7);
  (void)parent2.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (child.next_u64() == parent.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, NextBelowRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.next_below(10);
    ASSERT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values reachable
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(17);
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextBelowApproxUniform) {
  Rng rng(23);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int draws = 700000;
  for (int i = 0; i < draws; ++i) ++counts[rng.next_below(n)];
  for (auto c : counts)
    EXPECT_NEAR(static_cast<double>(c) / draws, 1.0 / 7.0, 0.005);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(29);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-2, 3);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 3);
    saw_lo = saw_lo || x == -2;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  const double p = 0.3;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(p)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.005);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(-0.01), InvalidArgument);
  EXPECT_THROW(rng.bernoulli(1.01), InvalidArgument);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(41);
  const double mean = 2.5;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(mean);
    ASSERT_GE(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double m = sum / n;
  const double var = sq / n - m * m;
  EXPECT_NEAR(m, mean, 0.03);
  EXPECT_NEAR(var, mean * mean, 0.15);
}

TEST(Rng, GeometricSupportAndMean) {
  Rng rng(43);
  const double p = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto x = rng.geometric(p);
    ASSERT_GE(x, 1);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / n, 1.0 / p, 0.05);
}

TEST(Rng, GeometricPOneIsAlwaysOne) {
  Rng rng(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 1);
}

TEST(Rng, GeometricRejectsBadP) {
  Rng rng(47);
  EXPECT_THROW(rng.geometric(0.0), InvalidArgument);
  EXPECT_THROW(rng.geometric(1.5), InvalidArgument);
}

}  // namespace
}  // namespace burstq
