// Tests for the generic first-fit / best-fit drivers.

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "placement/first_fit.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance simple_instance(std::size_t n_vms, std::size_t n_pms,
                                double rb, double cap) {
  ProblemInstance inst;
  for (std::size_t i = 0; i < n_vms; ++i)
    inst.vms.push_back(VmSpec{kP, rb, 1.0});
  for (std::size_t j = 0; j < n_pms; ++j) inst.pms.push_back(PmSpec{cap});
  return inst;
}

FitPredicate capacity_fit(const ProblemInstance& inst) {
  return [&inst](const Placement& p, VmId vm, PmId pm) {
    Resource load = inst.vms[vm.value].rb;
    for (std::size_t i : p.vms_on(pm)) load += inst.vms[i].rb;
    return load <= inst.pms[pm.value].capacity;
  };
}

std::vector<std::size_t> iota_order(std::size_t n) {
  std::vector<std::size_t> o(n);
  std::iota(o.begin(), o.end(), 0);
  return o;
}

TEST(FirstFit, PacksSequentially) {
  // 4 VMs of size 5 onto PMs of capacity 10: two per PM.
  const auto inst = simple_instance(4, 4, 5.0, 10.0);
  const auto r = first_fit_place(inst, iota_order(4), capacity_fit(inst));
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.pms_used(), 2u);
  EXPECT_EQ(r.placement.pm_of(VmId{0}), PmId{0});
  EXPECT_EQ(r.placement.pm_of(VmId{1}), PmId{0});
  EXPECT_EQ(r.placement.pm_of(VmId{2}), PmId{1});
  EXPECT_EQ(r.placement.pm_of(VmId{3}), PmId{1});
}

TEST(FirstFit, CollectsUnplaced) {
  // 3 VMs of size 8 but only one PM of capacity 10.
  const auto inst = simple_instance(3, 1, 8.0, 10.0);
  const auto r = first_fit_place(inst, iota_order(3), capacity_fit(inst));
  EXPECT_FALSE(r.complete());
  ASSERT_EQ(r.unplaced.size(), 2u);
  EXPECT_EQ(r.unplaced[0], VmId{1});
  EXPECT_EQ(r.unplaced[1], VmId{2});
  EXPECT_EQ(r.pms_used(), 1u);
}

TEST(FirstFit, HonorsVisitOrder) {
  const auto inst = simple_instance(2, 2, 6.0, 10.0);
  const std::vector<std::size_t> order{1, 0};
  const auto r = first_fit_place(inst, order, capacity_fit(inst));
  // VM1 visited first -> PM0; VM0 doesn't fit there -> PM1.
  EXPECT_EQ(r.placement.pm_of(VmId{1}), PmId{0});
  EXPECT_EQ(r.placement.pm_of(VmId{0}), PmId{1});
}

TEST(FirstFit, WrongOrderLengthThrows) {
  const auto inst = simple_instance(3, 1, 1.0, 10.0);
  const std::vector<std::size_t> short_order{0, 1};
  EXPECT_THROW(first_fit_place(inst, short_order, capacity_fit(inst)),
               InvalidArgument);
}

TEST(BestFit, PrefersTightestPm) {
  // PM0 cap 10, PM1 cap 6.  VM of size 5: best-fit slack favors PM1.
  ProblemInstance inst;
  inst.vms.push_back(VmSpec{kP, 5.0, 1.0});
  inst.pms = {PmSpec{10.0}, PmSpec{6.0}};
  const SlackFunction slack = [&inst](const Placement& p, VmId vm, PmId pm) {
    Resource load = inst.vms[vm.value].rb;
    for (std::size_t i : p.vms_on(pm)) load += inst.vms[i].rb;
    return inst.pms[pm.value].capacity - load;
  };
  const auto r =
      best_fit_place(inst, iota_order(1), capacity_fit(inst), slack);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.placement.pm_of(VmId{0}), PmId{1});
}

TEST(BestFit, FallsBackToUnplaced) {
  const auto inst = simple_instance(2, 1, 8.0, 10.0);
  const SlackFunction slack = [](const Placement&, VmId, PmId) {
    return 0.0;
  };
  const auto r =
      best_fit_place(inst, iota_order(2), capacity_fit(inst), slack);
  EXPECT_EQ(r.unplaced.size(), 1u);
}

TEST(BestFit, EquivalentToFirstFitWhenOnePmFeasible) {
  const auto inst = simple_instance(4, 2, 9.0, 10.0);  // one VM per PM
  const SlackFunction slack = [&inst](const Placement& p, VmId vm, PmId pm) {
    Resource load = inst.vms[vm.value].rb;
    for (std::size_t i : p.vms_on(pm)) load += inst.vms[i].rb;
    return inst.pms[pm.value].capacity - load;
  };
  const auto ff = first_fit_place(inst, iota_order(4), capacity_fit(inst));
  const auto bf =
      best_fit_place(inst, iota_order(4), capacity_fit(inst), slack);
  EXPECT_EQ(ff.pms_used(), bf.pms_used());
  EXPECT_EQ(ff.unplaced.size(), bf.unplaced.size());
}

}  // namespace
}  // namespace burstq
