// Tests for Re-similarity clustering and visit orders (Algorithm 2 lines
// 7-9 and the baseline FFD orders).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "placement/cluster.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

std::vector<VmSpec> make_vms(std::initializer_list<std::pair<double, double>>
                                 rb_re) {
  std::vector<VmSpec> vms;
  for (auto [rb, re] : rb_re) vms.push_back(VmSpec{kP, rb, re});
  return vms;
}

TEST(ClusterByRe, EqualReCollapsesToOneCluster) {
  const auto vms = make_vms({{1, 5}, {2, 5}, {3, 5}});
  const auto c = cluster_by_re(vms, 4);
  EXPECT_EQ(c, (std::vector<std::size_t>{0, 0, 0}));
}

TEST(ClusterByRe, SimilarReShareCluster) {
  const auto vms = make_vms({{1, 2.0}, {1, 2.1}, {1, 19.9}, {1, 20.0}});
  const auto c = cluster_by_re(vms, 4);
  EXPECT_EQ(c[0], c[1]);
  EXPECT_EQ(c[2], c[3]);
  EXPECT_NE(c[0], c[2]);
}

TEST(ClusterByRe, AllIdsWithinRange) {
  Rng rng(3);
  std::vector<VmSpec> vms;
  for (int i = 0; i < 500; ++i)
    vms.push_back(VmSpec{kP, 1.0, rng.uniform(2.0, 20.0)});
  const auto c = cluster_by_re(vms, 8);
  for (auto id : c) EXPECT_LT(id, 8u);
}

TEST(ClusterByRe, MonotoneInRe) {
  // Higher Re never lands in a lower bucket.
  const auto vms = make_vms({{1, 2}, {1, 8}, {1, 14}, {1, 20}});
  const auto c = cluster_by_re(vms, 3);
  EXPECT_LE(c[0], c[1]);
  EXPECT_LE(c[1], c[2]);
  EXPECT_LE(c[2], c[3]);
}

TEST(ClusterByRe, InvalidArgsThrow) {
  EXPECT_THROW(cluster_by_re({}, 4), InvalidArgument);
  EXPECT_THROW(cluster_by_re(make_vms({{1, 1}}), 0), InvalidArgument);
}

TEST(QueuingFfdOrder, IsAPermutation) {
  Rng rng(7);
  std::vector<VmSpec> vms;
  for (int i = 0; i < 300; ++i)
    vms.push_back(VmSpec{kP, rng.uniform(2, 20), rng.uniform(2, 20)});
  auto order = queuing_ffd_order(vms, 8);
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(QueuingFfdOrder, ClustersDescendingByRe) {
  Rng rng(9);
  std::vector<VmSpec> vms;
  for (int i = 0; i < 200; ++i)
    vms.push_back(VmSpec{kP, rng.uniform(2, 20), rng.uniform(2, 20)});
  const auto cluster = cluster_by_re(vms, 6);
  const auto order = queuing_ffd_order(vms, 6);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(cluster[order[i - 1]], cluster[order[i]]);
}

TEST(QueuingFfdOrder, RbDescendingWithinCluster) {
  Rng rng(11);
  std::vector<VmSpec> vms;
  for (int i = 0; i < 200; ++i)
    vms.push_back(VmSpec{kP, rng.uniform(2, 20), rng.uniform(2, 20)});
  const auto cluster = cluster_by_re(vms, 6);
  const auto order = queuing_ffd_order(vms, 6);
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (cluster[order[i - 1]] == cluster[order[i]]) {
      EXPECT_GE(vms[order[i - 1]].rb, vms[order[i]].rb);
    }
  }
}

TEST(QueuingFfdOrder, DeterministicTieBreak) {
  const auto vms = make_vms({{5, 5}, {5, 5}, {5, 5}});
  const auto order = queuing_ffd_order(vms, 4);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BaselineOrders, PeakDescending) {
  const auto vms = make_vms({{1, 10}, {8, 1}, {3, 3}});  // Rp: 11, 9, 6
  EXPECT_EQ(order_by_peak_desc(vms), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BaselineOrders, NormalDescending) {
  const auto vms = make_vms({{1, 10}, {8, 1}, {3, 3}});  // Rb: 1, 8, 3
  EXPECT_EQ(order_by_normal_desc(vms), (std::vector<std::size_t>{1, 2, 0}));
}

TEST(BaselineOrders, StableOnTies) {
  const auto vms = make_vms({{5, 1}, {5, 2}, {5, 3}});
  EXPECT_EQ(order_by_normal_desc(vms), (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace burstq
