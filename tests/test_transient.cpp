// Tests for transient / first-passage analysis of the aggregate chain.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "markov/aggregate_chain.h"
#include "markov/transient.h"
#include "queuing/mapcal.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

TEST(TransientDistribution, TimeZeroIsPointMass) {
  const auto d = aggregate_distribution_at(5, kP, 0, 2);
  ASSERT_EQ(d.size(), 6u);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
}

TEST(TransientDistribution, OneStepMatchesMatrixRow) {
  const auto d = aggregate_distribution_at(4, kP, 1, 1);
  const Matrix p = aggregate_transition_matrix(4, kP);
  for (std::size_t j = 0; j <= 4; ++j) EXPECT_NEAR(d[j], p(1, j), 1e-15);
}

TEST(TransientDistribution, ConvergesToStationary) {
  const std::size_t k = 8;
  const auto late = aggregate_distribution_at(k, kP, 5000, 0);
  const auto pi =
      aggregate_stationary_distribution(k, kP, StationaryMethod::kClosedForm);
  for (std::size_t i = 0; i <= k; ++i) EXPECT_NEAR(late[i], pi[i], 1e-9);
}

TEST(TransientDistribution, StaysNormalized) {
  for (std::size_t t : {1u, 10u, 100u}) {
    const auto d = aggregate_distribution_at(6, kP, t, 3);
    double sum = 0.0;
    for (double v : d) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(TransientDistribution, BadInitialThrows) {
  EXPECT_THROW(aggregate_distribution_at(3, kP, 1, 4), InvalidArgument);
}

TEST(FirstPassage, KOneClosedForm) {
  // k = 1, servers = 0: time until the single VM first turns ON starting
  // OFF.  Dwell is geometric: E = 1/p_on.
  const OnOffParams p{0.2, 0.5};
  EXPECT_NEAR(expected_slots_to_overflow(1, p, 0, 0), 1.0 / 0.2, 1e-10);
}

TEST(FirstPassage, MoreServersLastLonger) {
  double prev = 0.0;
  for (std::size_t servers = 0; servers < 8; ++servers) {
    const double t = expected_slots_to_overflow(8, kP, servers, 0);
    EXPECT_GT(t, prev) << "servers=" << servers;
    prev = t;
  }
}

TEST(FirstPassage, StartingHigherOverflowsSooner) {
  const double from_empty = expected_slots_to_overflow(8, kP, 4, 0);
  const double from_full = expected_slots_to_overflow(8, kP, 4, 4);
  EXPECT_GT(from_empty, from_full);
}

TEST(FirstPassage, MatchesSimulation) {
  const OnOffParams p{0.05, 0.2};  // fast chain so simulation is cheap
  const std::size_t k = 4;
  const std::size_t servers = 2;
  const double analytic = expected_slots_to_overflow(k, p, servers, 0);

  Rng rng(11);
  double total = 0.0;
  const int trials = 20000;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<OnOffChain> chains(k, OnOffChain(p));
    std::size_t t = 0;
    for (;;) {
      ++t;
      std::size_t on = 0;
      for (auto& c : chains)
        if (c.step(rng) == VmState::kOn) ++on;
      if (on > servers) break;
    }
    total += static_cast<double>(t);
  }
  EXPECT_NEAR(total / trials, analytic, 0.03 * analytic);
}

TEST(FirstPassage, InvalidArgumentsThrow) {
  EXPECT_THROW(expected_slots_to_overflow(4, kP, 4, 0), InvalidArgument);
  EXPECT_THROW(expected_slots_to_overflow(4, kP, 2, 3), InvalidArgument);
}

TEST(MeanBetweenOverflows, ReciprocalOfTailMass) {
  const std::size_t k = 10;
  const std::size_t servers = 3;
  const auto pi =
      aggregate_stationary_distribution(k, kP, StationaryMethod::kClosedForm);
  double tail = 0.0;
  for (std::size_t i = servers + 1; i <= k; ++i) tail += pi[i];
  EXPECT_NEAR(mean_slots_between_overflows(k, kP, servers), 1.0 / tail,
              1e-9);
}

TEST(MeanBetweenOverflows, MapCalBlocksGiveAtLeastOneOverRho) {
  // With K = MapCal blocks at rho, overflow slots are at most a rho
  // fraction, so the mean gap is at least 1/rho.
  const double rho = 0.01;
  for (std::size_t k = 4; k <= 16; k += 4) {
    const std::size_t blocks = map_cal_blocks(k, kP, rho);
    if (blocks >= k) continue;
    EXPECT_GE(mean_slots_between_overflows(k, kP, blocks),
              1.0 / rho - 1e-6)
        << "k=" << k;
  }
}

TEST(MixingSlots, FastChainMixesFasterThanSlowChain) {
  const std::size_t slow =
      mixing_slots(8, OnOffParams{0.01, 0.09}, 1e-3);
  const std::size_t fast = mixing_slots(8, OnOffParams{0.2, 0.3}, 1e-3);
  EXPECT_LT(fast, slow);
  EXPECT_GT(slow, 10u);  // the paper's parameters mix over tens of slots
}

TEST(MixingSlots, ZeroWhenAlreadyTight) {
  // eps = 2 is larger than any TV distance (max is 2): mixed at t = 0.
  EXPECT_EQ(mixing_slots(4, kP, 2.0), 0u);
}

}  // namespace
}  // namespace burstq
