// End-to-end integration tests: miniature versions of the paper's
// experiments asserting the qualitative shapes that Figures 5, 6, 9 and
// 10 report.

#include <gtest/gtest.h>

#include <numeric>

#include "core/consolidator.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

// ---- Figure 5 shape: QUEUE saves PMs vs RP, and saves most for large
// spikes; RB is always tightest. -------------------------------------

TEST(Figure5Shape, QueueBetweenRbAndRp) {
  for (const auto pattern : all_patterns()) {
    Rng rng(1234);
    const auto inst =
        pattern_instance(pattern, 300, 200, paper_onoff_params(), rng);
    const auto rp = ffd_by_peak(inst);
    const auto rb = ffd_by_normal(inst);
    const auto q = queuing_ffd(inst);
    ASSERT_TRUE(rp.complete() && rb.complete() && q.result.complete());
    EXPECT_LT(q.result.pms_used(), rp.pms_used())
        << pattern_name(pattern);
    EXPECT_GE(q.result.pms_used(), rb.pms_used()) << pattern_name(pattern);
  }
}

TEST(Figure5Shape, LargestSavingsForLargeSpikes) {
  auto savings = [](SpikePattern pattern) {
    double rp_total = 0.0;
    double q_total = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Rng rng(1000 + seed);
      const auto inst =
          pattern_instance(pattern, 300, 250, paper_onoff_params(), rng);
      rp_total += static_cast<double>(ffd_by_peak(inst).pms_used());
      q_total += static_cast<double>(queuing_ffd(inst).result.pms_used());
    }
    return 1.0 - q_total / rp_total;
  };
  const double s_large = savings(SpikePattern::kLargeSpike);
  const double s_equal = savings(SpikePattern::kEqual);
  const double s_small = savings(SpikePattern::kSmallSpike);
  // Peak provisioning wastes the most when spikes are large, so QUEUE's
  // relative saving must be ordered large > equal > small.
  EXPECT_GT(s_large, s_equal);
  EXPECT_GT(s_equal, s_small);
  // And the headline magnitudes: ~45% for large spikes, ~30% for equal.
  EXPECT_GT(s_large, 0.30);
  EXPECT_GT(s_equal, 0.15);
}

// ---- Figure 6 shape: QUEUE's CVR stays near rho; RB's explodes. ------

TEST(Figure6Shape, CvrBoundedForQueueUnboundedForRb) {
  Rng rng(77);
  const auto inst = pattern_instance(SpikePattern::kEqual, 200, 150,
                                     paper_onoff_params(), rng);
  const auto q = queuing_ffd(inst);
  const auto rb = ffd_by_normal(inst);
  ASSERT_TRUE(q.result.complete() && rb.complete());
  const std::size_t slots = 20000;
  const auto cvr_q = simulate_cvr(inst, q.result.placement, slots, Rng(78));
  const auto cvr_rb = simulate_cvr(inst, rb.placement, slots, Rng(78));

  double q_mean = 0.0;
  std::size_t q_used = 0;
  double rb_mean = 0.0;
  std::size_t rb_used = 0;
  std::size_t q_over_budget = 0;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    if (q.result.placement.count_on(PmId{j}) > 0) {
      q_mean += cvr_q[j];
      ++q_used;
      if (cvr_q[j] > 0.02) ++q_over_budget;  // 2x the rho budget
    }
    if (rb.placement.count_on(PmId{j}) > 0) {
      rb_mean += cvr_rb[j];
      ++rb_used;
    }
  }
  q_mean /= static_cast<double>(q_used);
  rb_mean /= static_cast<double>(rb_used);

  EXPECT_LE(q_mean, 0.012);  // average within the analytic budget
  // "the existence of very few PMs with CVRs slightly higher than rho".
  EXPECT_LE(static_cast<double>(q_over_budget),
            0.1 * static_cast<double>(q_used));
  EXPECT_GT(rb_mean, 0.1);  // disastrous by comparison
}

// ---- Figure 9/10 shapes with the dynamic scheduler. ------------------

struct StrategySummaries {
  TrialSummary queue, rb, rbex;
};

StrategySummaries run_pattern(SpikePattern pattern) {
  const auto factory = [pattern](Rng& rng) {
    return table_i_instance(pattern, 60, 60, paper_onoff_params(), rng);
  };
  TrialConfig cfg;
  cfg.trials = 5;
  cfg.sim.slots = 100;
  cfg.base_seed = 99;
  StrategySummaries out;
  out.queue = run_trials(
      factory,
      [](const ProblemInstance& i) { return queuing_ffd(i).result; }, cfg);
  out.rb = run_trials(
      factory, [](const ProblemInstance& i) { return ffd_by_normal(i); },
      cfg);
  out.rbex = run_trials(
      factory,
      [](const ProblemInstance& i) { return ffd_reserved(i, 0.3); }, cfg);
  return out;
}

TEST(Figure9Shape, MigrationOrderingRbWorst) {
  const auto s = run_pattern(SpikePattern::kEqual);
  // RB incurs "unacceptably more migrations than QUEUE"; RB-EX sits in
  // between ("alleviates this problem to some extent").
  EXPECT_GT(s.rb.migrations.mean(), s.queue.migrations.mean());
  EXPECT_GT(s.rb.migrations.mean(), s.rbex.migrations.mean());
  EXPECT_GE(s.rbex.migrations.mean(), s.queue.migrations.mean());
  // QUEUE incurs very few migrations.
  EXPECT_LT(s.queue.migrations.mean(), 5.0);
}

TEST(Figure9Shape, RbStartsWithFewestPms) {
  const auto s = run_pattern(SpikePattern::kEqual);
  EXPECT_LT(s.rb.pms_initial.mean(), s.queue.pms_initial.mean());
}

TEST(Figure10Shape, QueueTimelineFlatRbKeepsMigrating) {
  Rng rng(555);
  const auto inst = table_i_instance(SpikePattern::kEqual, 60, 60,
                                     paper_onoff_params(), rng);
  const auto q = queuing_ffd(inst);
  const auto rb = ffd_by_normal(inst);
  ASSERT_TRUE(q.result.complete() && rb.complete());
  SimConfig cfg;
  cfg.slots = 100;
  ClusterSimulator sim_q(inst, q.result.placement, cfg, Rng(556));
  ClusterSimulator sim_rb(inst, rb.placement, cfg, Rng(556));
  const auto rep_q = sim_q.run();
  const auto rep_rb = sim_rb.run();

  // RB migrates early (over-tight packing) and keeps going.
  const auto half = rep_rb.migrations_per_slot.size() / 2;
  const auto early = std::accumulate(
      rep_rb.migrations_per_slot.begin(),
      rep_rb.migrations_per_slot.begin() + static_cast<std::ptrdiff_t>(half),
      std::size_t{0});
  EXPECT_GT(early, 0u);
  EXPECT_GT(rep_rb.total_migrations, rep_q.total_migrations);

  // RB's PM usage grows from its over-tight start.
  EXPECT_GT(rep_rb.pms_used_timeline.back(),
            rep_rb.pms_used_timeline.front());
}

TEST(EndToEnd, ConsolidatorFacadeMatchesDirectCalls) {
  Rng rng(9);
  const auto inst = pattern_instance(SpikePattern::kEqual, 100, 80,
                                     paper_onoff_params(), rng);
  const Consolidator c;
  const auto via_facade = c.place(inst, Strategy::kQueue);
  const auto direct = queuing_ffd(inst, c.options());
  EXPECT_EQ(via_facade.pms_used(), direct.result.pms_used());
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    EXPECT_EQ(via_facade.placement.pm_of(VmId{i}),
              direct.result.placement.pm_of(VmId{i}));
}

}  // namespace
}  // namespace burstq
