// Tests for the power model and energy meter.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/energy.h"

namespace burstq {
namespace {

TEST(PowerModel, LinearInterpolation) {
  PowerModel m{100.0, 200.0};
  EXPECT_DOUBLE_EQ(m.watts(0.0), 100.0);
  EXPECT_DOUBLE_EQ(m.watts(1.0), 200.0);
  EXPECT_DOUBLE_EQ(m.watts(0.5), 150.0);
}

TEST(PowerModel, ClampsUtilization) {
  PowerModel m{100.0, 200.0};
  EXPECT_DOUBLE_EQ(m.watts(-0.5), 100.0);
  EXPECT_DOUBLE_EQ(m.watts(2.0), 200.0);
}

TEST(PowerModel, Validation) {
  EXPECT_NO_THROW((PowerModel{100, 200}.validate()));
  EXPECT_THROW((PowerModel{-1, 200}.validate()), InvalidArgument);
  EXPECT_THROW((PowerModel{300, 200}.validate()), InvalidArgument);
}

TEST(EnergyMeter, AccumulatesExactly) {
  EnergyMeter meter(PowerModel{100.0, 200.0}, 3600.0);  // 1h slots
  meter.add_pm_slot(0.0);  // 100 Wh
  meter.add_pm_slot(1.0);  // 200 Wh
  EXPECT_DOUBLE_EQ(meter.watt_hours(), 300.0);
  EXPECT_DOUBLE_EQ(meter.joules(), 300.0 * 3600.0);
}

TEST(EnergyMeter, ThirtySecondSlots) {
  EnergyMeter meter(PowerModel{150.0, 250.0}, 30.0);
  for (int i = 0; i < 120; ++i) meter.add_pm_slot(0.5);  // one hour total
  EXPECT_NEAR(meter.watt_hours(), 200.0, 1e-9);
}

TEST(EnergyMeter, InvalidSlotLengthThrows) {
  EXPECT_THROW(EnergyMeter(PowerModel{}, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace burstq
