// Tests for the metrics registry: sharded counters merge across threads,
// histogram bucketing, snapshot lookup, and reset semantics.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/registry.h"

namespace burstq::obs {
namespace {

TEST(Counter, AddAndMerge) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, MergesAcrossThreads) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i)
    workers.emplace_back([&c] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) c.add();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(2.5);
  g.set(-7.0);
  EXPECT_DOUBLE_EQ(g.value(), -7.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketOf) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  // Everything huge lands in the last bucket instead of overflowing.
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), kHistogramBuckets - 1);
}

TEST(Histogram, SnapshotStats) {
  Histogram h;
  for (std::uint64_t v : {5u, 10u, 200u, 0u}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 215u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 200u);
  EXPECT_DOUBLE_EQ(s.mean(), 215.0 / 4.0);
  // Quantiles are bucket upper bounds: monotone and bounded by buckets.
  EXPECT_LE(s.approx_quantile(0.0), s.approx_quantile(0.5));
  EXPECT_LE(s.approx_quantile(0.5), s.approx_quantile(1.0));
  EXPECT_GE(s.approx_quantile(1.0), 200.0);
}

TEST(Histogram, MergesAcrossThreads) {
  Histogram h;
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i)
    workers.emplace_back([&h, i] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) h.record(i + 1);
    });
  for (auto& w : workers) w.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, kThreads);
}

TEST(SpanStat, RecordAggregates) {
  SpanStat s;
  s.record(100, 60);
  s.record(50, 50);
  EXPECT_EQ(s.calls(), 2u);
  EXPECT_EQ(s.total_ns(), 150u);
  EXPECT_EQ(s.self_ns(), 110u);
  EXPECT_EQ(s.max_ns(), 100u);
  s.reset();
  EXPECT_EQ(s.calls(), 0u);
}

TEST(MetricsRegistry, InternsPerName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.calls");
  Counter& b = reg.counter("x.calls");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("y.calls");
  EXPECT_NE(&a, &c);
  // The same name in a different metric family is a different object.
  (void)reg.gauge("x.calls");
}

TEST(MetricsRegistry, ScrapeSortedAndLookup) {
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(3.5);
  reg.histogram("h").record(7);
  reg.span("s").record(10, 10);
  const MetricsSnapshot snap = reg.scrape();
  EXPECT_FALSE(snap.empty());
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[1].name, "b");
  ASSERT_NE(snap.counter("b"), nullptr);
  EXPECT_EQ(snap.counter("b")->value, 2u);
  EXPECT_EQ(snap.counter("missing"), nullptr);
  ASSERT_NE(snap.span("s"), nullptr);
  EXPECT_EQ(snap.span("s")->calls, 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 1u);
}

TEST(MetricsRegistry, ResetKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("r");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // cached reference still usable after reset
  EXPECT_EQ(reg.scrape().counter("r")->value, 1u);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry reg;
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i)
    workers.emplace_back([&reg] {
      for (int n = 0; n < 1000; ++n) {
        reg.counter("shared").add();
        reg.histogram("hist").record(static_cast<std::uint64_t>(n));
      }
    });
  for (auto& w : workers) w.join();
  const MetricsSnapshot snap = reg.scrape();
  EXPECT_EQ(snap.counter("shared")->value, kThreads * 1000u);
  EXPECT_EQ(snap.histograms[0].hist.count, kThreads * 1000u);
}

}  // namespace
}  // namespace burstq::obs
