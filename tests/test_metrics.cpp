// Tests for CVR tracking and migration-event records.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/metrics.h"

namespace burstq {
namespace {

TEST(CvrTracker, CumulativeCvr) {
  CvrTracker t(2, 4);
  t.record(PmId{0}, true);
  t.record(PmId{0}, false);
  t.record(PmId{0}, false);
  t.record(PmId{0}, true);
  EXPECT_DOUBLE_EQ(t.cvr(PmId{0}), 0.5);
  EXPECT_DOUBLE_EQ(t.cvr(PmId{1}), 0.0);
  EXPECT_EQ(t.observed_slots(PmId{0}), 4u);
  EXPECT_EQ(t.violations(PmId{0}), 2u);
}

TEST(CvrTracker, WindowedCvrSlides) {
  CvrTracker t(1, 3);
  t.record(PmId{0}, true);
  EXPECT_DOUBLE_EQ(t.windowed_cvr(PmId{0}), 1.0);
  t.record(PmId{0}, false);
  t.record(PmId{0}, false);
  EXPECT_NEAR(t.windowed_cvr(PmId{0}), 1.0 / 3.0, 1e-12);
  t.record(PmId{0}, false);  // the old violation falls out
  EXPECT_DOUBLE_EQ(t.windowed_cvr(PmId{0}), 0.0);
  // Cumulative still remembers it.
  EXPECT_DOUBLE_EQ(t.cvr(PmId{0}), 0.25);
}

TEST(CvrTracker, ResetWindowKeepsCumulative) {
  CvrTracker t(1, 5);
  t.record(PmId{0}, true);
  t.record(PmId{0}, true);
  t.reset_window(PmId{0});
  EXPECT_DOUBLE_EQ(t.windowed_cvr(PmId{0}), 0.0);
  EXPECT_DOUBLE_EQ(t.cvr(PmId{0}), 1.0);
}

TEST(CvrTracker, MeanSkipsUnobserved) {
  CvrTracker t(3, 4);
  t.record(PmId{0}, true);   // CVR 1.0
  t.record(PmId{2}, false);  // CVR 0.0
  // PM1 never observed -> mean over PM0 and PM2 only.
  EXPECT_DOUBLE_EQ(t.mean_cvr(), 0.5);
  EXPECT_DOUBLE_EQ(t.max_cvr(), 1.0);
}

TEST(CvrTracker, EmptyTrackerZeroes) {
  CvrTracker t(2, 4);
  EXPECT_DOUBLE_EQ(t.mean_cvr(), 0.0);
  EXPECT_DOUBLE_EQ(t.max_cvr(), 0.0);
  EXPECT_DOUBLE_EQ(t.windowed_cvr(PmId{0}), 0.0);
}

TEST(CvrTracker, InvalidConstructionThrows) {
  EXPECT_THROW(CvrTracker(0, 4), InvalidArgument);
  EXPECT_THROW(CvrTracker(2, 0), InvalidArgument);
}

TEST(CvrTracker, OutOfRangePmThrows) {
  CvrTracker t(2, 4);
  EXPECT_THROW(t.record(PmId{5}, true), InvalidArgument);
  EXPECT_THROW((void)t.cvr(PmId{5}), InvalidArgument);
}

TEST(MigrationEvent, FailureFlag) {
  MigrationEvent ok{3, VmId{1}, PmId{0}, PmId{2}};
  EXPECT_FALSE(ok.failed());
  MigrationEvent fail{3, VmId{1}, PmId{0}, PmId{}};
  EXPECT_TRUE(fail.failed());
}

}  // namespace
}  // namespace burstq
