// Unit tests for Binomial cdf / quantile / pmf-vector helpers.

#include <gtest/gtest.h>

#include "common/error.h"
#include "prob/binomial.h"
#include "prob/combinatorics.h"

namespace burstq {
namespace {

TEST(BinomialCdf, MonotoneAndBounded) {
  const std::int64_t n = 20;
  const double p = 0.3;
  double prev = -1.0;
  for (std::int64_t x = 0; x <= n; ++x) {
    const double c = binomial_cdf(n, x, p);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(binomial_cdf(n, n, p), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(n, -1, p), 0.0);
}

TEST(BinomialCdf, MatchesPmfSum) {
  const std::int64_t n = 16;
  const double p = 0.1;
  double acc = 0.0;
  for (std::int64_t x = 0; x < n; ++x) {
    acc += binomial_pmf(n, x, p);
    EXPECT_NEAR(binomial_cdf(n, x, p), acc, 1e-12);
  }
}

TEST(BinomialQuantile, InvertsTheCdf) {
  const std::int64_t n = 16;
  const double p = 0.1;
  for (const double prob : {0.5, 0.9, 0.99, 0.999}) {
    const std::int64_t q = binomial_quantile(n, prob, p);
    EXPECT_GE(binomial_cdf(n, q, p), prob);
    if (q > 0) {
      EXPECT_LT(binomial_cdf(n, q - 1, p), prob);
    }
  }
}

TEST(BinomialQuantile, Extremes) {
  EXPECT_EQ(binomial_quantile(10, 0.0, 0.5), 0);
  EXPECT_EQ(binomial_quantile(10, 1.0, 0.5), 10);
  EXPECT_EQ(binomial_quantile(10, 0.5, 0.0), 0);
  EXPECT_EQ(binomial_quantile(10, 0.5, 1.0), 10);
}

TEST(BinomialQuantile, MonotoneInProb) {
  const std::int64_t n = 32;
  const double p = 0.2;
  std::int64_t prev = 0;
  for (double prob = 0.05; prob < 1.0; prob += 0.05) {
    const std::int64_t q = binomial_quantile(n, prob, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(BinomialPmfVector, SumsToOneAndMatchesScalar) {
  const std::int64_t n = 16;
  const double p = 0.1;
  const auto v = binomial_pmf_vector(n, p);
  ASSERT_EQ(v.size(), static_cast<std::size_t>(n) + 1);
  double sum = 0.0;
  for (std::int64_t x = 0; x <= n; ++x) {
    EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(x)], binomial_pmf(n, x, p));
    sum += v[static_cast<std::size_t>(x)];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialMoments, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(binomial_mean(10, 0.3), 3.0);
  EXPECT_DOUBLE_EQ(binomial_variance(10, 0.3), 2.1);
}

TEST(BinomialMoments, MatchEmpiricalPmf) {
  const std::int64_t n = 24;
  const double p = 0.15;
  const auto v = binomial_pmf_vector(n, p);
  double mean = 0.0;
  double second = 0.0;
  for (std::int64_t x = 0; x <= n; ++x) {
    const auto d = static_cast<double>(x);
    mean += d * v[static_cast<std::size_t>(x)];
    second += d * d * v[static_cast<std::size_t>(x)];
  }
  EXPECT_NEAR(mean, binomial_mean(n, p), 1e-10);
  EXPECT_NEAR(second - mean * mean, binomial_variance(n, p), 1e-10);
}

TEST(Binomial, InvalidArgumentsThrow) {
  EXPECT_THROW(binomial_cdf(-1, 0, 0.5), InvalidArgument);
  EXPECT_THROW(binomial_quantile(5, -0.1, 0.5), InvalidArgument);
  EXPECT_THROW(binomial_quantile(5, 0.5, 2.0), InvalidArgument);
  EXPECT_THROW(binomial_pmf_vector(-2, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace burstq
