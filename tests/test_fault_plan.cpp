// Fault-plan grammar, validation, and injector determinism.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "fault/injector.h"
#include "fault/plan.h"

namespace burstq::fault {
namespace {

// --- parser: the documented grammar round-trips -----------------------

TEST(FaultPlanParse, FullGrammar) {
  const FaultPlan plan = parse_fault_plan(
      "crash@10:pm=2;solver@15:slots=20;mig-abort@18;"
      "mig-stall@20:slots=3;recover@40:pm=2");
  ASSERT_EQ(plan.scripted.size(), 5u);
  EXPECT_EQ(plan.scripted[0].kind, FaultKind::kPmCrash);
  EXPECT_EQ(plan.scripted[0].slot, 10u);
  EXPECT_EQ(plan.scripted[0].pm, 2u);
  EXPECT_EQ(plan.scripted[1].kind, FaultKind::kSolverOutage);
  EXPECT_EQ(plan.scripted[1].duration, 20u);
  EXPECT_EQ(plan.scripted[2].kind, FaultKind::kMigrationAbort);
  EXPECT_EQ(plan.scripted[3].kind, FaultKind::kMigrationStall);
  EXPECT_EQ(plan.scripted[3].duration, 3u);
  EXPECT_EQ(plan.scripted[4].kind, FaultKind::kPmRecover);
  EXPECT_EQ(plan.scripted[4].slot, 40u);
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlanParse, SortsEventsBySlot) {
  const FaultPlan plan =
      parse_fault_plan("recover@40:pm=1;crash@5:pm=1;mig-abort@20");
  ASSERT_EQ(plan.scripted.size(), 3u);
  EXPECT_EQ(plan.scripted[0].slot, 5u);
  EXPECT_EQ(plan.scripted[1].slot, 20u);
  EXPECT_EQ(plan.scripted[2].slot, 40u);
}

TEST(FaultPlanParse, MalformedItemsNameTheOffender) {
  // Each bad spec throws InvalidArgument whose message quotes the item —
  // actionable errors, never a silent default.
  const char* bad[] = {
      "crash@10",              // crash without :pm=
      "crash@10:slots=3",      // wrong key for the kind
      "crash:pm=2",            // missing @slot
      "crash@x:pm=2",          // non-numeric slot
      "crash@10:pm=two",       // non-numeric pm
      "mig-abort@5:pm=1",      // mig-abort takes no suffix
      "mig-stall@5",           // stall without :slots=
      "mig-stall@5:slots=0",   // zero-length stall is a silent no-op
      "solver@5:slots=0",      // same for solver outages
      "explode@5",             // unknown kind
      "",                      // nothing at all
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)parse_fault_plan(spec), InvalidArgument)
        << "accepted: '" << spec << "'";
  }
  try {
    (void)parse_fault_plan("crash@10");
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("crash@10"), std::string::npos)
        << "error message should quote the offending item: " << e.what();
  }
}

// --- validation -------------------------------------------------------

TEST(FaultPlanValidate, RejectsOutOfRangeProbabilities) {
  FaultPlan plan;
  plan.markov.p_crash = 1.5;
  plan.markov.p_recover = 0.5;
  EXPECT_THROW(plan.validate(), InvalidArgument);
  plan.markov.p_crash = -0.1;
  EXPECT_THROW(plan.validate(), InvalidArgument);
}

TEST(FaultPlanValidate, RejectsCrashWithoutRecovery) {
  // p_crash > 0 with p_recover == 0 monotonically drains the fleet.
  FaultPlan plan;
  plan.markov.p_crash = 0.01;
  plan.markov.p_recover = 0.0;
  EXPECT_THROW(plan.validate(), InvalidArgument);
  plan.markov.p_recover = 0.1;
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanValidate, RejectsPmIndexBeyondFleet) {
  const FaultPlan plan = parse_fault_plan("crash@1:pm=7");
  EXPECT_NO_THROW(plan.validate());  // fleet size unknown: range unchecked
  EXPECT_THROW(plan.validate(4), InvalidArgument);
  EXPECT_NO_THROW(plan.validate(8));
}

// --- injector ---------------------------------------------------------

TEST(FaultInjector, ScriptedEventsFireAtTheirSlot) {
  const FaultPlan plan = parse_fault_plan(
      "crash@2:pm=1;solver@3:slots=2;mig-stall@4:slots=5;recover@5:pm=1");
  FaultInjector inj(plan, 3);
  EXPECT_TRUE(inj.pm_up(1));

  EXPECT_TRUE(inj.advance(0).crashes.empty());
  EXPECT_TRUE(inj.advance(1).crashes.empty());

  const SlotFaults s2 = inj.advance(2);
  ASSERT_EQ(s2.crashes.size(), 1u);
  EXPECT_EQ(s2.crashes[0], 1u);
  EXPECT_FALSE(inj.pm_up(1));
  EXPECT_EQ(inj.up_count(), 2u);

  EXPECT_TRUE(inj.advance(3).solver_fault);
  const SlotFaults s4 = inj.advance(4);
  EXPECT_TRUE(s4.solver_fault);  // outage covers slots [3, 5)
  EXPECT_EQ(s4.stall_slots, 5u);

  const SlotFaults s5 = inj.advance(5);
  EXPECT_FALSE(s5.solver_fault);
  ASSERT_EQ(s5.recoveries.size(), 1u);
  EXPECT_EQ(s5.recoveries[0], 1u);
  EXPECT_TRUE(inj.pm_up(1));
  EXPECT_EQ(inj.up_count(), 3u);
}

TEST(FaultInjector, CrashOfDownPmAndRecoverOfUpPmAreNoOps) {
  const FaultPlan plan =
      parse_fault_plan("crash@1:pm=0;crash@2:pm=0;recover@3:pm=1");
  FaultInjector inj(plan, 2);
  EXPECT_TRUE(inj.advance(0).crashes.empty());
  EXPECT_EQ(inj.advance(1).crashes.size(), 1u);
  EXPECT_TRUE(inj.advance(2).crashes.empty());  // pm 0 already down
  EXPECT_TRUE(inj.advance(3).recoveries.empty());  // pm 1 already up
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.markov.p_crash = 0.08;
  plan.markov.p_recover = 0.3;
  plan.markov.p_mig_fail = 0.1;
  plan.seed = 321;

  const auto record = [&] {
    FaultInjector inj(plan, 10);
    std::vector<std::size_t> trace;
    for (std::size_t t = 0; t < 200; ++t) {
      const SlotFaults sf = inj.advance(t);
      for (std::size_t pm : sf.crashes) trace.push_back(2000 + t * 10 + pm);
      for (std::size_t pm : sf.recoveries)
        trace.push_back(4000 + t * 10 + pm);
      trace.push_back(inj.draw_migration_abort() ? 1 : 0);
    }
    return trace;
  };
  EXPECT_EQ(record(), record());
}

TEST(FaultInjector, MarkovCrashesNeverTakeTheLastPmDown) {
  // The clamp sheds Markov-drawn crashes so the fleet never hits zero up
  // PMs by chance alone (a scripted plan may still kill everything).
  FaultPlan plan;
  plan.markov.p_crash = 1.0;  // every up PM "fails" every slot
  plan.markov.p_recover = 1e-9;
  plan.seed = 7;
  FaultInjector inj(plan, 4);
  for (std::size_t t = 0; t < 50; ++t) {
    (void)inj.advance(t);
    EXPECT_GE(inj.up_count(), 1u) << "slot " << t;
  }
}

TEST(FaultInjector, NoMigrationFaultMeansNoRngConsumption) {
  // With p_mig_fail == 0, draw_migration_abort must not advance the Rng:
  // two runs that differ only in how often they ask must stay in lockstep.
  FaultPlan plan;
  plan.markov.p_crash = 0.05;
  plan.markov.p_recover = 0.5;
  plan.seed = 99;

  const auto trace = [&](std::size_t extra_draws) {
    FaultInjector inj(plan, 6);
    std::vector<std::size_t> crashes;
    for (std::size_t t = 0; t < 100; ++t) {
      const SlotFaults sf = inj.advance(t);
      crashes.insert(crashes.end(), sf.crashes.begin(), sf.crashes.end());
      for (std::size_t i = 0; i < extra_draws; ++i)
        EXPECT_FALSE(inj.draw_migration_abort());
    }
    return crashes;
  };
  EXPECT_EQ(trace(0), trace(5));
}

}  // namespace
}  // namespace burstq::fault
