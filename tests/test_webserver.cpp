// Tests for the web-server request workload (Section V-D driver): think
// time moments, exact vs Gaussian generators, demand calibration.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "sim/webserver.h"

namespace burstq {
namespace {

TEST(ThinkTimeMoments, ZeroFloorIsPlainExponential) {
  const auto m = think_time_moments(1.0, 0.0);
  EXPECT_NEAR(m.mean, 1.0, 1e-12);
  EXPECT_NEAR(m.variance, 1.0, 1e-12);
}

TEST(ThinkTimeMoments, PaperValues) {
  // mean 1, floor 0.1: E = 0.1 + e^-0.1 ~= 1.00484.
  const auto m = think_time_moments(1.0, 0.1);
  EXPECT_NEAR(m.mean, 0.1 + std::exp(-0.1), 1e-12);
  EXPECT_GT(m.variance, 0.0);
  EXPECT_LT(m.variance, 1.0);  // truncation removes variance
}

TEST(ThinkTimeMoments, MatchesMonteCarlo) {
  const auto m = think_time_moments(2.0, 0.5);
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 400000; ++i)
    s.add(std::max(0.5, rng.exponential(2.0)));
  EXPECT_NEAR(s.mean(), m.mean, 0.01);
  EXPECT_NEAR(s.variance(), m.variance, 0.05);
}

TEST(ThinkTimeMoments, InvalidThrows) {
  EXPECT_THROW(think_time_moments(0.0, 0.1), InvalidArgument);
  EXPECT_THROW(think_time_moments(1.0, -0.1), InvalidArgument);
}

TEST(WebServerParams, Validation) {
  WebServerParams ok;
  EXPECT_NO_THROW(ok.validate());
  WebServerParams bad = ok;
  bad.peak_users = bad.normal_users - 1;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.normal_users = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.sigma_seconds = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(WebServer, ExpectedRequestsScaleWithUsers) {
  WebServerParams p;
  p.normal_users = 400;
  p.peak_users = 800;
  const WebServerWorkload w(p);
  const double off = w.expected_requests(VmState::kOff);
  const double on = w.expected_requests(VmState::kOn);
  EXPECT_NEAR(on / off, 2.0, 1e-12);
  // ~400 users * 30s / 1.005s think time.
  EXPECT_NEAR(off, 400.0 * 30.0 / (0.1 + std::exp(-0.1)), 1e-9);
}

TEST(WebServer, ExactGeneratorMatchesExpectation) {
  WebServerParams p;
  p.normal_users = 50;  // small so the exact path is fast
  p.peak_users = 100;
  const WebServerWorkload w(p);
  Rng rng(2);
  RunningStats s;
  for (int i = 0; i < 300; ++i)
    s.add(w.sample_requests_exact(VmState::kOff, rng));
  EXPECT_NEAR(s.mean(), w.expected_requests(VmState::kOff),
              0.02 * w.expected_requests(VmState::kOff));
}

TEST(WebServer, GaussianMatchesExactMoments) {
  WebServerParams p;
  p.normal_users = 50;
  p.peak_users = 100;
  const WebServerWorkload w(p);
  Rng rng(3);
  RunningStats exact;
  RunningStats gauss;
  for (int i = 0; i < 400; ++i) {
    exact.add(w.sample_requests_exact(VmState::kOn, rng));
    gauss.add(w.sample_requests_gaussian(VmState::kOn, rng));
  }
  EXPECT_NEAR(gauss.mean(), exact.mean(), 0.02 * exact.mean());
  // Standard deviations agree within a loose statistical band.
  EXPECT_NEAR(gauss.stddev() / exact.stddev(), 1.0, 0.35);
}

TEST(WebServer, DemandCalibration) {
  // 400 normal users with 100 users/unit must average ~4 demand units.
  WebServerParams p;
  p.normal_users = 400;
  p.peak_users = 1200;
  p.users_per_unit = 100.0;
  const WebServerWorkload w(p);
  Rng rng(4);
  RunningStats off_demand;
  RunningStats on_demand;
  for (int i = 0; i < 2000; ++i) {
    off_demand.add(w.sample_demand(VmState::kOff, rng));
    on_demand.add(w.sample_demand(VmState::kOn, rng));
  }
  EXPECT_NEAR(off_demand.mean(), 4.0, 0.05);
  EXPECT_NEAR(on_demand.mean(), 12.0, 0.1);
}

TEST(WebServer, SamplesNonNegative) {
  WebServerParams p;
  p.normal_users = 1;
  p.peak_users = 2;
  const WebServerWorkload w(p);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i)
    EXPECT_GE(w.sample_requests_gaussian(VmState::kOff, rng), 0.0);
}

}  // namespace
}  // namespace burstq
