// Randomized stress tests for the linear-algebra substrate: residual
// checks on random systems and stationary-solver cross-validation on
// random stochastic matrices.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/gaussian.h"
#include "linalg/power_iteration.h"

namespace burstq {
namespace {

Matrix random_diagonally_dominant(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = rng.uniform(-1.0, 1.0);
      row_sum += std::abs(a(i, j));
    }
    a(i, i) = row_sum + rng.uniform(1.0, 2.0);  // strictly dominant
  }
  return a;
}

Matrix random_stochastic(std::size_t n, Rng& rng) {
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      p(i, j) = rng.uniform(0.01, 1.0);  // strictly positive: irreducible
      sum += p(i, j);
    }
    for (std::size_t j = 0; j < n; ++j) p(i, j) /= sum;
  }
  return p;
}

class LinalgStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinalgStress, SolveResidualTiny) {
  Rng rng(GetParam() * 1299709);
  for (const std::size_t n : {2u, 5u, 17u, 33u}) {
    const Matrix a = random_diagonally_dominant(n, rng);
    std::vector<double> b(n);
    for (auto& v : b) v = rng.uniform(-10.0, 10.0);
    const auto x = solve_linear_system(a, b);
    ASSERT_TRUE(x.has_value()) << "n=" << n;
    // Residual ||Ax - b||_inf.
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * (*x)[j];
      EXPECT_NEAR(acc, b[i], 1e-9) << "n=" << n << " row " << i;
    }
  }
}

TEST_P(LinalgStress, StationarySolversAgreeOnRandomChains) {
  Rng rng(GetParam() * 15485863);
  for (const std::size_t n : {2u, 6u, 20u}) {
    const Matrix p = random_stochastic(n, rng);
    const auto gauss = stationary_distribution_gaussian(p);
    const auto power = stationary_distribution_power(p);
    ASSERT_TRUE(gauss.has_value());
    ASSERT_TRUE(power.has_value());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR((*gauss)[i], power->distribution[i], 1e-8)
          << "n=" << n << " i=" << i;
    // pi P = pi.
    const auto piP = p.left_multiply(*gauss);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(piP[i], (*gauss)[i], 1e-10);
  }
}

TEST_P(LinalgStress, TransposeInvolutionAndProductShape) {
  Rng rng(GetParam() * 32452843);
  Matrix a(4, 7);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 7; ++j) a(i, j) = rng.uniform(-5, 5);
  const Matrix att = a.transposed().transposed();
  EXPECT_DOUBLE_EQ(a.max_abs_diff(att), 0.0);
  // (AB)^T == B^T A^T.
  Matrix b(7, 3);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 3; ++j) b(i, j) = rng.uniform(-5, 5);
  const Matrix lhs = a.multiply(b).transposed();
  const Matrix rhs = b.transposed().multiply(a.transposed());
  EXPECT_LT(lhs.max_abs_diff(rhs), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinalgStress,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace burstq
