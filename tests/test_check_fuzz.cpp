// Tests for the check/ differential-fuzz subsystem: generator
// determinism and boundary bias, oracle verdicts on known-good and
// known-degenerate cases, and end-to-end harness reproducibility.

#include <gtest/gtest.h>

#include <set>

#include "check/fuzz.h"
#include "check/generator.h"
#include "check/oracles.h"

namespace burstq::check {
namespace {

TEST(FuzzGenerator, CaseIsPureFunctionOfSeed) {
  const std::uint64_t seed = derive_case_seed(123, 45);
  const FuzzCase a = generate_case(seed, 45);
  const FuzzCase b = generate_case(seed, 45);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.params.p_on, b.params.p_on);
  EXPECT_EQ(a.params.p_off, b.params.p_off);
  EXPECT_EQ(a.rho, b.rho);
  EXPECT_EQ(a.n_vms, b.n_vms);
  EXPECT_EQ(a.n_pms, b.n_pms);
  EXPECT_EQ(a.max_vms_per_pm, b.max_vms_per_pm);
  EXPECT_EQ(a.seed, seed);
}

TEST(FuzzGenerator, DistinctIndicesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i)
    seeds.insert(derive_case_seed(7, i));
  EXPECT_EQ(seeds.size(), 1000u);
  // And different master seeds diverge too.
  EXPECT_NE(derive_case_seed(7, 0), derive_case_seed(8, 0));
}

TEST(FuzzGenerator, SamplesTheDomainBoundaries) {
  // The whole point of the generator: within a modest budget it must hit
  // the exact corner p = 1.0, the slow-mixing floor, and the equal-params
  // family — the regimes that crashed the kPower backend.
  bool corner = false, slow = false, equal = false;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const FuzzCase c = generate_case(derive_case_seed(3, i), i);
    ASSERT_GT(c.params.p_on, 0.0);
    ASSERT_LE(c.params.p_on, 1.0);
    ASSERT_GT(c.params.p_off, 0.0);
    ASSERT_LE(c.params.p_off, 1.0);
    ASSERT_GE(c.rho, 0.0);
    ASSERT_LT(c.rho, 1.0);
    ASSERT_GE(c.k, 1u);
    corner |= c.params.p_on == 1.0 && c.params.p_off == 1.0;
    slow |= c.params.p_on <= 1e-5 && c.params.p_off <= 1e-5;
    equal |= c.params.p_on == c.params.p_off;
  }
  EXPECT_TRUE(corner);
  EXPECT_TRUE(slow);
  EXPECT_TRUE(equal);
}

TEST(FuzzOracles, PassOnTheHistoricalCrashFamilies) {
  // The two reproducers from ISSUE 3 as literal fuzz cases: every oracle
  // that runs must pass now that the backends are fixed.
  for (const auto& [p_on, p_off] : {std::pair{1.0, 1.0},
                                    std::pair{1e-6, 1e-6}}) {
    FuzzCase c;
    c.seed = 99;
    c.k = 16;
    c.params = OnOffParams{p_on, p_off};
    c.rho = 0.01;
    c.n_vms = 40;
    c.n_pms = 10;
    c.max_vms_per_pm = 8;
    for (const OracleId id :
         {OracleId::kStationary, OracleId::kCvr, OracleId::kPlacement,
          OracleId::kCache, OracleId::kRecovery, OracleId::kDurability}) {
      const OracleReport r = run_oracle(id, c);
      EXPECT_TRUE(!r.ran || r.ok)
          << oracle_name(id) << " failed on p=(" << p_on << "," << p_off
          << "): " << r.detail;
    }
  }
}

TEST(FuzzOracles, CvrOracleGatesOutNonErgodicCorner) {
  // At p_on = p_off = 1 a single trajectory's time average depends on the
  // initial draw (the chain is reducible), so the simulation oracle must
  // skip rather than compare.
  FuzzCase c;
  c.k = 4;
  c.params = OnOffParams{1.0, 1.0};
  c.rho = 0.5;
  const OracleReport r = check_cvr_bound_vs_simulation(c);
  EXPECT_FALSE(r.ran);
}

TEST(FuzzOracles, CvrOracleRunsOnFastMixers) {
  FuzzCase c;
  c.seed = 4242;
  c.k = 8;
  c.params = OnOffParams{0.2, 0.3};
  c.rho = 0.05;
  const OracleReport r = check_cvr_bound_vs_simulation(c);
  EXPECT_TRUE(r.ran);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(FuzzHarness, SmallSweepIsCleanAndCountsAddUp) {
  FuzzOptions options;
  options.seed = 11;
  options.instances = 25;
  const FuzzSummary summary = run_fuzz(options);
  EXPECT_TRUE(summary.ok()) << summary.discrepancies.size()
                            << " discrepancies, first: "
                            << (summary.discrepancies.empty()
                                    ? ""
                                    : summary.discrepancies[0].detail);
  EXPECT_EQ(summary.instances, 25u);
  EXPECT_FALSE(summary.stopped_early);
  // Six oracles per case; each either ran or was gated out.
  EXPECT_EQ(summary.oracle_runs + summary.oracle_skips, 6u * 25u);
}

TEST(FuzzHarness, RerunsAreIdentical) {
  FuzzOptions options;
  options.seed = 77;
  options.instances = 15;
  const FuzzSummary a = run_fuzz(options);
  const FuzzSummary b = run_fuzz(options);
  EXPECT_EQ(a.oracle_runs, b.oracle_runs);
  EXPECT_EQ(a.oracle_skips, b.oracle_skips);
  EXPECT_EQ(a.discrepancies.size(), b.discrepancies.size());
}

TEST(FuzzHarness, ReplaySingleCase) {
  const std::uint64_t seed = derive_case_seed(5, 3);
  FuzzOptions options;
  options.cvr = false;  // keep the replay cheap
  const FuzzSummary summary = replay_case(seed, options);
  EXPECT_EQ(summary.instances, 1u);
  EXPECT_TRUE(summary.ok());
  EXPECT_EQ(summary.oracle_runs + summary.oracle_skips, 5u);
}

TEST(FuzzHarness, OracleSelectionIsHonoured) {
  FuzzOptions options;
  options.seed = 2;
  options.instances = 10;
  options.cvr = options.placement = options.cache = options.recovery =
      options.durability = false;
  const FuzzSummary summary = run_fuzz(options);
  // The stationary oracle never gates out.
  EXPECT_EQ(summary.oracle_runs, 10u);
  EXPECT_EQ(summary.oracle_skips, 0u);
}

TEST(FuzzHarness, MaxSecondsStopsAtACaseBoundary) {
  FuzzOptions options;
  options.seed = 9;
  options.instances = 100000;
  options.max_seconds = 1e-9;  // expires before the first boundary check
  const FuzzSummary summary = run_fuzz(options);
  EXPECT_TRUE(summary.stopped_early);
  EXPECT_LT(summary.instances, options.instances);
  EXPECT_TRUE(summary.ok());
}

TEST(FuzzOracles, DurabilityOracleAcceptsAHealthyCase) {
  FuzzCase c;
  c.seed = 4242;
  c.k = 8;
  c.params = OnOffParams{0.1, 0.3};
  c.rho = 0.05;
  c.n_vms = 24;
  c.n_pms = 8;
  c.max_vms_per_pm = 8;
  c.fault_slots = 30;
  c.fault_crash_slot = 6;
  c.fault_recover_slot = 18;
  c.fault_p_mig_fail = 0.05;
  c.fault_seed = 17;
  const OracleReport r = check_durability_contract(c);
  EXPECT_TRUE(r.ran) << r.detail;
  EXPECT_TRUE(r.ok) << r.detail;
}

}  // namespace
}  // namespace burstq::check
