// Tests for the command-line flag parser.

#include <gtest/gtest.h>

#include "common/args.h"
#include "common/error.h"

namespace burstq {
namespace {

ArgParser make_parser() {
  ArgParser p("tool", "does things");
  p.add_option("input", "input file");
  p.add_option("rho", "CVR budget", "0.01");
  p.add_flag("verbose", "print more");
  return p;
}

TEST(ArgParser, ParsesOptionsAndFlags) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--input", "x.csv", "--verbose"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.get("input"), "x.csv");
  EXPECT_TRUE(p.flag("verbose"));
  EXPECT_DOUBLE_EQ(p.get_double("rho"), 0.01);  // default
}

TEST(ArgParser, DefaultsApplyOnlyWhenDeclared) {
  auto p = make_parser();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_FALSE(p.has("input"));
  EXPECT_TRUE(p.has("rho"));
  EXPECT_THROW((void)p.get("input"), InvalidArgument);
}

TEST(ArgParser, OverridesDefault) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--rho", "0.05"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_DOUBLE_EQ(p.get_double("rho"), 0.05);
}

TEST(ArgParser, RejectsUnknownOption) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--bogus", "1"};
  EXPECT_FALSE(p.parse(3, argv));
  EXPECT_NE(p.error().find("bogus"), std::string::npos);
}

TEST(ArgParser, RejectsMissingValue) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--input"};
  EXPECT_FALSE(p.parse(2, argv));
  EXPECT_NE(p.error().find("requires a value"), std::string::npos);
}

TEST(ArgParser, RejectsPositional) {
  auto p = make_parser();
  const char* argv[] = {"tool", "loose"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, NumericValidation) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--rho", "abc"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_THROW((void)p.get_double("rho"), InvalidArgument);
  EXPECT_THROW((void)p.get_int("rho"), InvalidArgument);
}

TEST(ArgParser, GetIntParsesIntegers) {
  ArgParser p("t", "d");
  p.add_option("n", "count", "42");
  const char* argv[] = {"t"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("n"), 42);
}

TEST(ArgParser, FlagDefaultsFalse) {
  auto p = make_parser();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_FALSE(p.flag("verbose"));
}

TEST(ArgParser, UsageMentionsEverything) {
  const auto p = make_parser();
  const auto u = p.usage();
  EXPECT_NE(u.find("--input"), std::string::npos);
  EXPECT_NE(u.find("--rho"), std::string::npos);
  EXPECT_NE(u.find("--verbose"), std::string::npos);
  EXPECT_NE(u.find("default: 0.01"), std::string::npos);
}

TEST(ArgParser, DuplicateDeclarationThrows) {
  ArgParser p("t", "d");
  p.add_option("x", "h");
  EXPECT_THROW(p.add_option("x", "h2"), InvalidArgument);
  EXPECT_THROW(p.add_flag("x", "h3"), InvalidArgument);
}

TEST(ArgParser, ShortAliasResolvesToOption) {
  ArgParser p("t", "d");
  p.add_option("n", "events", "10");
  p.add_alias('n', "n");
  const char* argv[] = {"t", "-n", "25"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("n"), 25);
  EXPECT_NE(p.usage().find("-n"), std::string::npos);
}

TEST(ArgParser, UnknownShortOptionFails) {
  ArgParser p("t", "d");
  p.add_option("n", "events", "10");
  const char* argv[] = {"t", "-n", "25"};
  EXPECT_FALSE(p.parse(3, argv));
  EXPECT_NE(p.error().find("-n"), std::string::npos);
}

TEST(ArgParser, AliasForUndeclaredOptionThrows) {
  ArgParser p("t", "d");
  EXPECT_THROW(p.add_alias('x', "missing"), InvalidArgument);
  p.add_option("n", "events");
  p.add_alias('n', "n");
  EXPECT_THROW(p.add_alias('n', "n"), InvalidArgument);  // duplicate
}

TEST(ArgParser, ReparseResetsState) {
  auto p = make_parser();
  const char* argv1[] = {"tool", "--verbose"};
  ASSERT_TRUE(p.parse(2, argv1));
  EXPECT_TRUE(p.flag("verbose"));
  const char* argv2[] = {"tool"};
  ASSERT_TRUE(p.parse(1, argv2));
  EXPECT_FALSE(p.flag("verbose"));
}

}  // namespace
}  // namespace burstq
