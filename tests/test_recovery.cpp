// Recovery under PM churn: the RecoveryController's evacuate/queue/drain
// discipline, the degradation ladder under solver outages, and the
// ClusterSimulator's end-to-end fault handling (zero lost VMs, queue
// drain after recovery, same-seed bit-identity).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "fault/degrade.h"
#include "fault/plan.h"
#include "fault/recovery.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "queuing/mapcal.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

const OnOffParams kBursty{0.05, 0.15};

ProblemInstance tight_instance() {
  // Two PMs of capacity 20 hosting one VM each; rb = 12 means two VMs on
  // one PM need Rb 24 > 20, so *every* ladder rung rejects collocation.
  ProblemInstance inst;
  inst.vms.assign(2, VmSpec{kBursty, 12.0, 6.0});
  inst.pms.assign(2, PmSpec{20.0});
  return inst;
}

std::vector<std::uint8_t> all_up(std::size_t n) {
  return std::vector<std::uint8_t>(n, 1);
}

// --- RecoveryController -----------------------------------------------

TEST(RecoveryController, EvacuatesOntoAnUpPmWhenOneFits) {
  ProblemInstance inst;
  inst.vms.assign(3, VmSpec{kBursty, 4.0, 3.0});
  inst.pms.assign(3, PmSpec{60.0});
  Placement pl(inst.n_vms(), inst.n_pms());
  pl.assign(VmId{0}, PmId{0});
  pl.assign(VmId{1}, PmId{1});
  pl.assign(VmId{2}, PmId{2});

  fault::RecoveryController rc(inst, fault::RecoveryPolicy{}, 16, 0.01,
                               StationaryMethod::kGaussian);
  auto up = all_up(3);
  up[1] = 0;  // PM 1 just crashed
  const OnOffParams rounded = round_uniform_params(inst.vms);
  const std::size_t moved =
      rc.evacuate(pl, PmId{1}, up, rounded, /*slot=*/4);

  EXPECT_EQ(moved, 1u);
  EXPECT_TRUE(rc.queue().empty());
  EXPECT_TRUE(pl.assigned(VmId{1}));
  EXPECT_NE(pl.pm_of(VmId{1}), PmId{1});
  EXPECT_TRUE(rc.invariant_holds(pl, up));
}

TEST(RecoveryController, QueuesWithReasonWhenNothingFitsThenDrains) {
  const ProblemInstance inst = tight_instance();
  Placement pl(2, 2);
  pl.assign(VmId{0}, PmId{0});
  pl.assign(VmId{1}, PmId{1});

  fault::RecoveryPolicy policy;
  policy.backoff_base_slots = 1;
  fault::RecoveryController rc(inst, policy, 16, 0.01,
                               StationaryMethod::kGaussian);
  auto up = all_up(2);
  up[1] = 0;
  const OnOffParams rounded = round_uniform_params(inst.vms);
  EXPECT_EQ(rc.evacuate(pl, PmId{1}, up, rounded, /*slot=*/0), 0u);

  ASSERT_EQ(rc.queue().size(), 1u);
  EXPECT_EQ(rc.queue()[0].vm, 1u);
  EXPECT_EQ(rc.queue()[0].reason, fault::QueueReason::kNoFeasiblePm);
  EXPECT_EQ(rc.enqueued_total(), 1u);
  EXPECT_FALSE(pl.assigned(VmId{1}));
  EXPECT_TRUE(rc.invariant_holds(pl, up));

  // Still down: due attempts fail, retries grow, the VM is never dropped.
  std::size_t slot = 1;
  for (; slot < 10; ++slot) (void)rc.drain(pl, up, rounded, slot);
  EXPECT_EQ(rc.queue().size(), 1u);
  EXPECT_GE(rc.retries_total(), 2u);
  const std::size_t retries_while_down = rc.retries_total();

  // PM 1 recovers; the next due attempt re-places the VM.
  up[1] = 1;
  std::size_t drained = 0;
  for (; slot < 200 && drained == 0; ++slot)
    drained = rc.drain(pl, up, rounded, slot);
  EXPECT_EQ(drained, 1u);
  EXPECT_TRUE(rc.queue().empty());
  EXPECT_TRUE(pl.assigned(VmId{1}));
  EXPECT_GT(rc.retries_total(), retries_while_down);
  EXPECT_TRUE(rc.invariant_holds(pl, up));
}

TEST(RecoveryController, BackoffIsBoundedByTheCap) {
  const ProblemInstance inst = tight_instance();
  Placement pl(2, 2);
  pl.assign(VmId{0}, PmId{0});
  pl.assign(VmId{1}, PmId{1});

  fault::RecoveryPolicy policy;
  policy.backoff_base_slots = 1;
  policy.backoff_cap_slots = 8;
  fault::RecoveryController rc(inst, policy, 16, 0.01,
                               StationaryMethod::kGaussian);
  auto up = all_up(2);
  up[1] = 0;
  const OnOffParams rounded = round_uniform_params(inst.vms);
  (void)rc.evacuate(pl, PmId{1}, up, rounded, 0);

  std::size_t last_attempt = 0;
  std::size_t max_gap = 0;
  for (std::size_t slot = 1; slot < 400; ++slot) {
    const std::size_t before = rc.retries_total();
    (void)rc.drain(pl, up, rounded, slot);
    if (rc.retries_total() > before) {
      if (last_attempt != 0) max_gap = std::max(max_gap, slot - last_attempt);
      last_attempt = slot;
    }
  }
  EXPECT_GE(rc.retries_total(), 10u);  // capped backoff keeps retrying
  EXPECT_LE(max_gap, policy.backoff_cap_slots);
}

// --- degradation ladder -----------------------------------------------

TEST(ReservationLadder, DegradesUnderSolverFaultInsteadOfThrowing) {
  mapcal_table_cache_clear();  // no memoized rung-1 escape hatch
  fault::ReservationLadder ladder(16, 0.01, StationaryMethod::kGaussian);
  const VmSpec vm{kBursty, 4.0, 3.0};
  const std::vector<VmSpec> hosted(3, vm);

  ScopedSolverFault outage;
  bool decided = false;
  EXPECT_NO_THROW(decided = ladder.admits(hosted, vm, Resource{60.0},
                                          kBursty));
  EXPECT_TRUE(decided);  // plenty of room at any rung
  EXPECT_GT(ladder.degraded_decisions(), 0u);
  EXPECT_NE(ladder.last_level(), fault::ReserveLevel::kTable);
  EXPECT_NE(ladder.last_level(), fault::ReserveLevel::kGaussianTable);
}

TEST(ReservationLadder, CacheHitServesRungOneDuringOutage) {
  mapcal_table_cache_clear();
  const OnOffParams rounded = round_uniform_params(
      std::vector<VmSpec>(4, VmSpec{kBursty, 4.0, 3.0}));
  // Warm the memo cache with the exact (d, params, rho) key the ladder
  // will ask for.
  const MapCalTable warm(16, rounded, 0.01, StationaryMethod::kGaussian);
  (void)warm;

  fault::ReservationLadder ladder(16, 0.01, StationaryMethod::kGaussian);
  ScopedSolverFault outage;
  const VmSpec vm{kBursty, 4.0, 3.0};
  (void)ladder.admits(std::vector<VmSpec>(2, vm), vm, Resource{60.0},
                      rounded);
  EXPECT_EQ(ladder.last_level(), fault::ReserveLevel::kTable);
  EXPECT_EQ(ladder.degraded_decisions(), 0u);
}

TEST(ReservationLadder, PeakRungNeverAdmitsAnOverflow) {
  mapcal_table_cache_clear();
  fault::ReservationLadder ladder(16, 0.01, StationaryMethod::kGaussian);
  ScopedSolverFault outage;
  // Two rb = 12 VMs on a 20-capacity PM exceed capacity at every rung.
  const VmSpec vm{kBursty, 12.0, 6.0};
  EXPECT_FALSE(ladder.admits(std::vector<VmSpec>(1, vm), vm,
                             Resource{20.0}, kBursty));
}

// --- ClusterSimulator under churn -------------------------------------

SimConfig chaos_config(std::string_view plan_text, std::size_t slots) {
  SimConfig cfg;
  cfg.slots = slots;
  cfg.policy.rho = 0.05;
  cfg.policy.cost_slots = 4;  // long copies: crashes land mid-flight
  cfg.faults = fault::parse_fault_plan(std::string(plan_text));
  return cfg;
}

/// Overcommitted fleet (Rb-based packing) that migrates under load, so
/// crashes interleave with in-flight copies.
ProblemInstance busy_instance(Rng& rng, std::size_t n_vms,
                              std::size_t n_pms) {
  ProblemInstance inst;
  for (std::size_t i = 0; i < n_vms; ++i) {
    OnOffParams p{rng.uniform(0.1, 0.4), rng.uniform(0.1, 0.3)};
    inst.vms.push_back(VmSpec{p, rng.uniform(4.0, 10.0),
                              rng.uniform(4.0, 12.0)});
  }
  inst.pms.assign(n_pms, PmSpec{40.0});
  return inst;
}

TEST(ClusterSimChaos, CrashStormConservesEveryVm) {
  Rng rng(2024);
  const ProblemInstance inst = busy_instance(rng, 30, 10);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());

  // Crashes at 10 and 25 (the second while slot-10 evacuations and
  // scheduler moves are still in flight), aborts and stalls on top, and
  // staggered recoveries.
  SimConfig cfg = chaos_config(
      "crash@10:pm=0;mig-stall@12:slots=3;mig-abort@14;crash@25:pm=3;"
      "recover@40:pm=0;recover@55:pm=3",
      80);
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(77));
  const SimReport rep = sim.run();

  EXPECT_EQ(rep.faults.pm_crashes, 2u);
  EXPECT_EQ(rep.faults.pm_recoveries, 2u);
  EXPECT_EQ(rep.faults.lost_vms, 0u);
  EXPECT_EQ(sim.placement().vms_assigned() + rep.faults.queue_end,
            inst.n_vms());
  EXPECT_GT(rep.faults.evacuated + rep.faults.enqueued, 0u);
}

TEST(ClusterSimChaos, CrashOfMigrationTargetNeverLosesTheVm) {
  // A markov migration-abort stream plus a crash directly after the
  // scheduler's busiest phase: whatever PM a copy targets may die before
  // the copy lands.  The conservation and liveness invariants must hold
  // regardless of which interleaving the seed produces.
  Rng rng(5150);
  const ProblemInstance inst = busy_instance(rng, 24, 8);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());

  SimConfig cfg = chaos_config(
      "crash@8:pm=1;crash@9:pm=2;recover@30:pm=1;recover@31:pm=2", 60);
  cfg.faults->markov.p_mig_fail = 0.3;
  cfg.faults->seed = 9;
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(31));
  const SimReport rep = sim.run();

  EXPECT_EQ(rep.faults.lost_vms, 0u);
  EXPECT_EQ(sim.placement().vms_assigned() + rep.faults.queue_end,
            inst.n_vms());
  for (std::size_t v = 0; v < inst.n_vms(); ++v) {
    if (sim.placement().assigned(VmId{v})) {
      EXPECT_LT(sim.placement().pm_of(VmId{v}).value, inst.n_pms());
    }
  }
}

TEST(ClusterSimChaos, ZeroFeasiblePmsQueuesThenDrainsAfterRecovery) {
  const ProblemInstance inst = tight_instance();
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());

  SimConfig cfg;
  cfg.slots = 60;
  cfg.policy.rho = 0.01;
  cfg.faults = fault::parse_fault_plan("crash@5:pm=1;recover@20:pm=1");
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(11));
  const SimReport rep = sim.run();

  EXPECT_EQ(rep.faults.enqueued, 1u);   // nothing fit while PM 1 was down
  EXPECT_GE(rep.faults.retries, 1u);    // backoff attempts were counted
  EXPECT_EQ(rep.faults.queue_end, 0u);  // drained once PM 1 came back
  EXPECT_EQ(rep.faults.lost_vms, 0u);
  EXPECT_EQ(sim.placement().vms_assigned(), inst.n_vms());
}

TEST(ClusterSimChaos, SolverOutageDegradesInsteadOfAborting) {
  Rng rng(404);
  const ProblemInstance inst = busy_instance(rng, 20, 8);
  const auto placed = ffd_by_peak(inst);  // builds no MapCal table
  ASSERT_TRUE(placed.complete());

  mapcal_table_cache_clear();  // evacuation must hit the outage cold
  SimConfig cfg;
  cfg.slots = 40;
  cfg.policy.rho = 0.05;
  cfg.faults =
      fault::parse_fault_plan("solver@2:slots=30;crash@5:pm=0;"
                              "recover@35:pm=0");
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(8));
  SimReport rep;
  ASSERT_NO_THROW(rep = sim.run());
  EXPECT_GT(rep.faults.solver_degraded, 0u);
  EXPECT_EQ(rep.faults.lost_vms, 0u);
}

TEST(ClusterSimChaos, SameSeedRunsAreBitIdentical) {
  Rng rng(1234);
  const ProblemInstance inst = busy_instance(rng, 25, 9);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());

  const SimConfig cfg = chaos_config(
      "crash@6:pm=2;solver@10:slots=15;mig-abort@12;recover@30:pm=2", 70);
  const auto run = [&] {
    mapcal_table_cache_clear();  // cache warmth must not leak between runs
    ClusterSimulator sim(inst, placed.placement, cfg, Rng(55));
    const SimReport rep = sim.run();
    std::vector<std::size_t> fp;
    fp.push_back(rep.total_migrations);
    fp.push_back(rep.failed_migrations);
    fp.push_back(rep.faults.evacuated);
    fp.push_back(rep.faults.enqueued);
    fp.push_back(rep.faults.retries);
    fp.push_back(rep.faults.migration_aborts);
    fp.push_back(rep.faults.migration_stalls);
    fp.push_back(rep.faults.solver_degraded);
    for (std::size_t v = 0; v < inst.n_vms(); ++v)
      fp.push_back(sim.placement().assigned(VmId{v})
                       ? sim.placement().pm_of(VmId{v}).value
                       : static_cast<std::size_t>(-1));
    return fp;
  };
  EXPECT_EQ(run(), run());
}

// --- CloudController under churn --------------------------------------

TEST(ControllerChurn, CrashEvacuatesOrQueuesAndRecoveryDrains) {
  ControllerConfig cfg;
  CloudController cloud(std::vector<PmSpec>(6, PmSpec{60.0}), cfg,
                        Rng(99));

  Rng rng(3);
  std::vector<TenantId> ids;
  for (int i = 0; i < 30; ++i) {
    VmSpec v{OnOffParams{rng.uniform(0.01, 0.05), rng.uniform(0.05, 0.2)},
             rng.uniform(2.0, 8.0), rng.uniform(2.0, 8.0)};
    if (const auto id = cloud.admit(v)) ids.push_back(*id);
    cloud.tick();
  }
  ASSERT_FALSE(ids.empty());
  ASSERT_TRUE(cloud.reservation_invariant_holds());
  const std::size_t hosted_before = cloud.stats().vms_hosted;

  // Crash every PM but one: most tenants cannot fit and must queue.
  for (std::size_t j = 1; j < 6; ++j) cloud.inject_pm_crash(PmId{j});
  EXPECT_TRUE(cloud.reservation_invariant_holds());
  for (int t = 0; t < 5; ++t) cloud.tick();
  EXPECT_TRUE(cloud.reservation_invariant_holds());
  // No tenant is dropped: queued ones stay live (parked), so the live
  // count is conserved and the overflow shows up in the queue.
  EXPECT_EQ(cloud.stats().vms_hosted, hosted_before);
  EXPECT_GT(cloud.queued_tenants(), 0u);
  EXPECT_GT(cloud.stats().evac_queued, 0u);

  // Recovery: the queue must fully drain once capacity returns.
  for (std::size_t j = 1; j < 6; ++j) cloud.inject_pm_recover(PmId{j});
  for (int t = 0; t < 200 && cloud.queued_tenants() > 0; ++t) cloud.tick();
  EXPECT_EQ(cloud.queued_tenants(), 0u);
  EXPECT_EQ(cloud.stats().vms_hosted, hosted_before);
  EXPECT_GT(cloud.stats().retries, 0u);
  EXPECT_TRUE(cloud.reservation_invariant_holds());

  // Queued-then-drained tenants must be addressable again.
  for (TenantId id : ids) EXPECT_TRUE(cloud.pm_of(id).valid());
}

TEST(ControllerChurn, DepartWhileQueuedIsClean) {
  ControllerConfig cfg;
  CloudController cloud(std::vector<PmSpec>(2, PmSpec{20.0}), cfg, Rng(1));
  const VmSpec big{kBursty, 12.0, 6.0};
  const auto a = cloud.admit(big);
  const auto b = cloud.admit(big);
  ASSERT_TRUE(a && b);
  ASSERT_NE(cloud.pm_of(*a), cloud.pm_of(*b));

  cloud.inject_pm_crash(cloud.pm_of(*b));
  EXPECT_EQ(cloud.queued_tenants(), 1u);
  EXPECT_FALSE(cloud.pm_of(*b).valid());

  cloud.depart(*b);  // leaves the queue, not a dangling entry
  EXPECT_EQ(cloud.queued_tenants(), 0u);
  cloud.tick();
  EXPECT_TRUE(cloud.reservation_invariant_holds());
  EXPECT_THROW((void)cloud.pm_of(*b), InvalidArgument);
}

}  // namespace
}  // namespace burstq
