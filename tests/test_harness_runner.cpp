// End-to-end harness runs: reports round-trip, same-seed runs are
// byte-identical, failing invariants carry resolvable trace pointers,
// and aborted runs still finalize their trace and write a report.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "obs/jsonl.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace burstq::harness {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::filesystem::create_directories(path);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Scenario quiet_scenario() {
  return parse_scenario_text(
      "scenario quiet\n"
      "seed 11\n"
      "slots 30\n"
      "rho 0.05\n"
      "topology vms=12 pms=6 pattern=equal\n"
      "workload p_on=0.02 p_off=0.10\n"
      "invariant cluster_cvr <= 0.05\n"
      "invariant lost_vms == 0\n",
      "<quiet>");
}

/// Hot enough that cluster_cvr > 0.0001 is certain to breach.
Scenario breached_scenario() {
  return parse_scenario_text(
      "scenario breached\n"
      "seed 3\n"
      "slots 60\n"
      "rho 0.05\n"
      "topology vms=40 pms=20 pattern=large\n"
      "workload p_on=0.05 p_off=0.05\n"
      "phase at=20 p_on=0.6 p_off=0.01\n"
      "invariant cluster_cvr <= 0.0001\n"
      "invariant lost_vms == 0\n",
      "<breached>");
}

// --- passing run ------------------------------------------------------

TEST(HarnessRunner, PassingRunWritesLoadableReport) {
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_pass");
  const RunSummary run = run_scenario(quiet_scenario(), opt);

  EXPECT_EQ(run.report.status, "pass");
  EXPECT_TRUE(run.report.all_pass());
  EXPECT_EQ(run.report.slots_completed, 30u);
  EXPECT_EQ(run.report.trace_file, "quiet.trace.jsonl");
  if (obs::kEnabled) {
    EXPECT_GT(run.report.trace_events, 0u);
  }

  const ScenarioReport loaded = load_report(run.report_path);
  EXPECT_EQ(loaded.scenario, "quiet");
  EXPECT_EQ(loaded.seed, 11u);
  EXPECT_EQ(loaded.status, "pass");
  ASSERT_EQ(loaded.invariants.size(), 2u);
  EXPECT_EQ(loaded.invariants[0].kind, InvariantKind::kClusterCvr);
  EXPECT_TRUE(loaded.invariants[0].pass);

  // The trace next to the report reads back whole.  (Under
  // BURSTQ_NO_OBS the trace is legitimately empty.)
  if (obs::kEnabled) {
    const auto events = obs::read_events_auto(run.trace_path);
    EXPECT_EQ(events.size(), run.report.trace_events);
  }
}

TEST(HarnessRunner, EmptyTimelineRuns) {
  // No phases, no faults, a one-slot horizon: the degenerate scenario
  // still produces a full report rather than tripping on empty series.
  const Scenario sc = parse_scenario_text(
      "scenario tiny\nslots 1\nrho 0.5\n"
      "topology vms=4 pms=4 pattern=equal\n"
      "invariant cluster_cvr <= 0.5\ninvariant lost_vms == 0\n",
      "<tiny>");
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_tiny");
  const RunSummary run = run_scenario(sc, opt);
  EXPECT_EQ(run.report.status, "pass");
  EXPECT_EQ(run.report.slots_completed, 1u);
}

TEST(HarnessRunner, FaultOnLastSlotCompletes) {
  const Scenario sc = parse_scenario_text(
      "scenario last_slot\nseed 5\nslots 20\nrho 0.10\n"
      "topology vms=12 pms=6 pattern=equal\n"
      "workload p_on=0.02 p_off=0.10\n"
      "fault crash@19:pm=0\n"
      "invariant lost_vms == 0\n",
      "<last_slot>");
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_last");
  const RunSummary run = run_scenario(sc, opt);
  EXPECT_EQ(run.report.slots_completed, 20u);
  EXPECT_NE(run.report.status, "abort");
}

// --- determinism ------------------------------------------------------

TEST(HarnessRunner, SameSeedRunsAreByteIdentical) {
  HarnessOptions a;
  a.out_dir = temp_dir("hr_det_a");
  HarnessOptions b;
  b.out_dir = temp_dir("hr_det_b");
  const RunSummary ra = run_scenario(breached_scenario(), a);
  const RunSummary rb = run_scenario(breached_scenario(), b);

  const std::string report_a = slurp(ra.report_path);
  ASSERT_FALSE(report_a.empty());
  EXPECT_EQ(report_a, slurp(rb.report_path));
  EXPECT_EQ(slurp(ra.trace_path), slurp(rb.trace_path));
}

// --- kill-restart durability ------------------------------------------

/// Kills early/mid/late with a PM crash in between; durability cadence
/// 20 so every restore replays at most 20 slots.  `kills` toggles the
/// kill-points; everything else (including the durability statement and
/// invariant set) is held identical so reports can be byte-compared.
Scenario power_loss_scenario(bool kills) {
  std::string text =
      "scenario power_loss\n"
      "seed 21\n"
      "slots 60\n"
      "rho 0.08\n"
      "topology vms=24 pms=12 pattern=small\n"
      "workload p_on=0.05 p_off=0.12\n"
      "fault crash@15:pm=2\n"
      "fault recover@40:pm=2\n"
      "durability every=20\n"
      "invariant cluster_cvr <= 0.2\n"
      "invariant lost_vms == 0\n";
  if (kills) text += "fault kill@5\nfault kill@33\nfault kill@58\n";
  return parse_scenario_text(text, "<power_loss>");
}

TEST(HarnessRunner, KillRestartReportMatchesUninterruptedRun) {
  HarnessOptions killed;
  killed.out_dir = temp_dir("hr_kill_a");
  HarnessOptions plain;
  plain.out_dir = temp_dir("hr_kill_b");
  const RunSummary rk = run_scenario(power_loss_scenario(true), killed);
  const RunSummary rp = run_scenario(power_loss_scenario(false), plain);

  EXPECT_NE(rk.report.status, "abort") << rk.report.abort_reason;
  EXPECT_EQ(rk.report.slots_completed, 60u);

  // The hard durability contract, end to end: three kills and restores
  // later, report AND trace are byte-identical to the run that was
  // never interrupted.
  const std::string report_killed = slurp(rk.report_path);
  ASSERT_FALSE(report_killed.empty());
  EXPECT_EQ(report_killed, slurp(rp.report_path));
  EXPECT_EQ(slurp(rk.trace_path), slurp(rp.trace_path));
}

TEST(HarnessRunner, KillRestartRunsAreByteIdentical) {
  // Two killed runs in different directories also agree — the restore
  // path itself is deterministic.
  HarnessOptions a;
  a.out_dir = temp_dir("hr_kill_det_a");
  HarnessOptions b;
  b.out_dir = temp_dir("hr_kill_det_b");
  const RunSummary ra = run_scenario(power_loss_scenario(true), a);
  const RunSummary rb = run_scenario(power_loss_scenario(true), b);
  EXPECT_EQ(slurp(ra.report_path), slurp(rb.report_path));
  EXPECT_EQ(slurp(ra.trace_path), slurp(rb.trace_path));
}

TEST(HarnessRunner, RecoveryReplaySlotsInvariantObservesRestores) {
  // kill@33 with cadence 20 restores from snap-20: 13 slots of replay.
  // The invariant sees the worst restore and stays under the cadence.
  Scenario sc = parse_scenario_text(
      "scenario replay_bound\n"
      "seed 21\n"
      "slots 40\n"
      "rho 0.2\n"
      "topology vms=12 pms=6 pattern=equal\n"
      "workload p_on=0.05 p_off=0.12\n"
      "fault kill@33\n"
      "durability every=20\n"
      "invariant lost_vms == 0\n"
      "invariant recovery_replay_slots <= 20\n",
      "<replay_bound>");
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_replay");
  const RunSummary run = run_scenario(sc, opt);
  ASSERT_NE(run.report.status, "abort") << run.report.abort_reason;

  const InvariantResult* replay = nullptr;
  for (const InvariantResult& r : run.report.invariants)
    if (r.kind == InvariantKind::kRecoveryReplaySlots) replay = &r;
  ASSERT_NE(replay, nullptr);
  EXPECT_TRUE(replay->pass);
  EXPECT_EQ(replay->worst, 13.0);
}

TEST(HarnessRunner, KillsWithoutDurabilityStatementAutoEnable) {
  // No `durability` statement: has_kills() turns it on with defaults;
  // the run must complete rather than abort on SimConfig validation.
  Scenario sc = parse_scenario_text(
      "scenario auto_durable\n"
      "seed 7\n"
      "slots 30\n"
      "rho 0.2\n"
      "topology vms=12 pms=6 pattern=equal\n"
      "workload p_on=0.05 p_off=0.12\n"
      "fault kill@11\n"
      "invariant lost_vms == 0\n",
      "<auto_durable>");
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_auto");
  const RunSummary run = run_scenario(sc, opt);
  EXPECT_NE(run.report.status, "abort") << run.report.abort_reason;
  EXPECT_EQ(run.report.slots_completed, 30u);
  EXPECT_TRUE(std::filesystem::exists(opt.out_dir +
                                      "/auto_durable.durable"));
}

// --- failing run: named invariant + resolvable trace pointer ----------

TEST(HarnessRunner, BrokenScenarioNamesInvariantWithValidWindow) {
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_fail");
  const RunSummary run = run_scenario(breached_scenario(), opt);

  EXPECT_EQ(run.report.status, "fail");
  EXPECT_FALSE(run.report.all_pass());

  const InvariantResult* failed = nullptr;
  for (const InvariantResult& r : run.report.invariants)
    if (!r.pass) failed = &r;
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->kind, InvariantKind::kClusterCvr);
  EXPECT_GT(failed->worst, failed->threshold);

  ASSERT_TRUE(failed->window.has_value());
  EXPECT_LE(failed->window->first, failed->window->second);
  EXPECT_LT(failed->window->second, run.report.slots_completed);

  // The report text names the invariant for CI log grepping.
  EXPECT_NE(slurp(run.report_path).find("\"cluster_cvr\""),
            std::string::npos);
}

TEST(HarnessRunner, TracePointerResolvesToWindowStart) {
  if (!obs::kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_ptr");
  const RunSummary run = run_scenario(breached_scenario(), opt);

  const InvariantResult* failed = nullptr;
  for (const InvariantResult& r : run.report.invariants)
    if (!r.pass) failed = &r;
  ASSERT_NE(failed, nullptr);
  ASSERT_TRUE(failed->trace.has_value());

  // JSONL pointers are exact: reading at the offset yields the slot.obs
  // event of the window's first slot.
  const auto events =
      obs::read_events_at_offset(run.trace_path, failed->trace->offset, 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "slot.obs");
  EXPECT_EQ(events[0].integer("t"),
            static_cast<std::int64_t>(failed->window->first));
  EXPECT_EQ(failed->trace->slot, failed->window->first);
}

TEST(HarnessRunner, BtrcTracePointerLandsOnBlockBoundary) {
  if (!obs::kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_btrc");
  opt.trace_format = obs::EventFormat::kBinary;
  const RunSummary run = run_scenario(breached_scenario(), opt);

  EXPECT_EQ(run.report.trace_format, "btrc");
  const InvariantResult* failed = nullptr;
  for (const InvariantResult& r : run.report.invariants)
    if (!r.pass) failed = &r;
  ASSERT_NE(failed, nullptr);
  ASSERT_TRUE(failed->trace.has_value());

  // A BTRC pointer is a block boundary: reading there must succeed and
  // the stream from that point must contain the window-start slot.obs.
  const auto events = obs::read_events_at_offset(
      run.trace_path, failed->trace->offset, 4096);
  ASSERT_FALSE(events.empty());
  bool found = false;
  for (const auto& e : events)
    if (e.kind == "slot.obs" &&
        e.integer("t") ==
            static_cast<std::int64_t>(failed->window->first))
      found = true;
  EXPECT_TRUE(found);
}

// --- abort safety -----------------------------------------------------

TEST(HarnessRunner, AbortWritesReportAndFinalizesTrace) {
  // 40 VMs cannot fit on 2 PMs under any budget: placement aborts
  // before the first slot.
  const Scenario sc = parse_scenario_text(
      "scenario doomed\nslots 50\nrho 0.05\n"
      "topology vms=40 pms=2 pattern=large\n"
      "invariant lost_vms == 0\n",
      "<doomed>");
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_abort");
  const RunSummary run = run_scenario(sc, opt);

  EXPECT_EQ(run.report.status, "abort");
  EXPECT_FALSE(run.report.abort_reason.empty());
  EXPECT_EQ(run.report.slots_completed, 0u);

  // The report exists on disk and round-trips.
  const ScenarioReport loaded = load_report(run.report_path);
  EXPECT_EQ(loaded.status, "abort");
  EXPECT_EQ(loaded.abort_reason, run.report.abort_reason);

  // The partial trace was flushed and finalized — every event written
  // before the abort reads back.
  if (obs::kEnabled) {
    const auto events = obs::read_events_auto(run.trace_path);
    EXPECT_EQ(events.size(), run.report.trace_events);
    EXPECT_GT(events.size(), 0u);
  }
}

TEST(HarnessRunner, AbortFinalizesBtrcPartialBlock) {
  // Same abort, binary trace: the buffered partial block must be
  // flushed on close or the trace would be unreadable.
  const Scenario sc = parse_scenario_text(
      "scenario doomed_btrc\nslots 50\nrho 0.05\n"
      "topology vms=40 pms=2 pattern=large\n"
      "invariant lost_vms == 0\n",
      "<doomed_btrc>");
  HarnessOptions opt;
  opt.out_dir = temp_dir("hr_abort_btrc");
  opt.trace_format = obs::EventFormat::kBinary;
  const RunSummary run = run_scenario(sc, opt);

  EXPECT_EQ(run.report.status, "abort");
  if (!obs::kEnabled) return;
  const auto events = obs::read_events_btrc(run.trace_path);
  EXPECT_EQ(events.size(), run.report.trace_events);
  EXPECT_GT(events.size(), 0u);
}

// --- failure modes ----------------------------------------------------

TEST(HarnessRunner, UnwritableOutputDirectoryThrows) {
  HarnessOptions opt;
  opt.out_dir = "/nonexistent/harness/out";
  EXPECT_THROW((void)run_scenario(quiet_scenario(), opt), InvalidArgument);
}

}  // namespace
}  // namespace burstq::harness
