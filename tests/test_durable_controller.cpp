// Crash-durability of the closed-loop controller: every public op is
// journaled before it is applied, a snapshot checkpoint lands every N
// ops, and recover() = newest snapshot + op-suffix replay through the
// same public methods.  The contract mirrors the simulator's: a
// controller killed between ANY two ops and recovered reaches the exact
// same state (byte-identical export_state) as one never interrupted.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/controller.h"
#include "durable/controller_store.h"
#include "durable/durable.h"
#include "durable/snapshot.h"
#include "obs/slo.h"

namespace burstq {
namespace {

const OnOffParams kP{0.05, 0.12};

std::vector<PmSpec> pms(std::size_t m, double cap = 60.0) {
  return std::vector<PmSpec>(m, PmSpec{cap});
}

VmSpec vm(double rb, double re, OnOffParams p = kP) {
  return VmSpec{p, rb, re};
}

ControllerConfig base_config() {
  ControllerConfig c;
  c.maintenance_every = 10;  // exercise table recalibration mid-run
  return c;
}

/// The scripted op stream: a pure function of the op index, so the
/// uninterrupted run and any kill-restart run apply the same sequence.
/// Mixes admits, ticks, resizes, departs, and a PM crash/recover pair;
/// decisions that consult controller state (is tenant 0 live?) are
/// deterministic too — both runs see identical state at every index.
void apply_op(durable::DurableController& d, std::size_t i) {
  const TenantId t{(i / 7) % 3};
  switch (i % 7) {
    case 0:
    case 4:
      (void)d.admit(vm(6.0 + static_cast<double>(i % 5), 5.0));
      return;
    case 2:
      if (d.controller().tenant_live(t)) {
        (void)d.resize(t, vm(7.0 + static_cast<double>(i % 3), 6.0));
        return;
      }
      d.tick();
      return;
    case 5:
      if (i == 12) {
        d.inject_pm_crash(PmId{1});
        return;
      }
      if (i == 26) {
        d.inject_pm_recover(PmId{1});
        return;
      }
      if (i > 20 && d.controller().tenant_live(t)) {
        d.depart(t);
        return;
      }
      d.tick();
      return;
    default:
      d.tick();
      return;
  }
}

class DurableControllerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = testing::TempDir() + "durable_ctrl_" + info->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void reset_dir() { std::filesystem::remove_all(dir_); }

  durable::DurabilityConfig dcfg(std::size_t every = 8) {
    durable::DurabilityConfig d;
    d.dir = dir_;
    d.snapshot_every = every;
    return d;
  }

  durable::DurableController fresh(std::size_t every = 8,
                                   std::size_t fleet = 6) {
    return durable::DurableController(pms(fleet), base_config(), Rng(77),
                                      dcfg(every));
  }

  /// Final state of the 40-op script with no interruption.
  std::string uninterrupted_state() {
    reset_dir();
    durable::DurableController d = fresh();
    for (std::size_t i = 0; i < 40; ++i) apply_op(d, i);
    std::string state = d.controller().export_state();
    reset_dir();
    return state;
  }

  std::string dir_;
};

TEST_F(DurableControllerTest, OpsAreJournaledAndSnapshotsPruned) {
  durable::DurableController d = fresh();
  EXPECT_FALSE(d.has_state());
  for (std::size_t i = 0; i < 40; ++i) apply_op(d, i);
  EXPECT_EQ(d.op_seq(), 40u);
  EXPECT_TRUE(d.has_state());

  // Checkpoints landed at ops 0, 8, 16, 24, 32; prune keeps the two
  // newest snapshot/WAL pairs.
  const durable::SnapshotStore store(dir_, false);
  const std::vector<std::size_t> slots = store.snapshot_slots();
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0], 24u);
  EXPECT_EQ(slots[1], 32u);
  EXPECT_TRUE(std::filesystem::exists(store.wal_path(32)));
}

TEST_F(DurableControllerTest, KillRestartStateIsByteIdentical) {
  const std::string want = uninterrupted_state();

  // Kill on a snapshot boundary, mid-window, and on the last op.
  for (const std::size_t kill : {8u, 13u, 39u}) {
    reset_dir();
    {
      durable::DurableController b = fresh();
      for (std::size_t i = 0; i < kill; ++i) apply_op(b, i);
    }  // "power loss": the instance goes away, the directory stays

    durable::DurableController c = fresh();
    ASSERT_TRUE(c.has_state());
    const auto info = c.recover();
    EXPECT_EQ(info.snapshot_op + info.replayed_ops, kill);
    EXPECT_LT(info.replayed_ops, 8u + 1u);  // never more than a window
    EXPECT_EQ(c.op_seq(), kill);

    for (std::size_t i = kill; i < 40; ++i) apply_op(c, i);
    EXPECT_EQ(c.controller().export_state(), want)
        << "diverged after kill at op " << kill;
    EXPECT_TRUE(c.controller().reservation_invariant_holds());
  }
}

TEST_F(DurableControllerTest, MultipleKillsStillConverge) {
  const std::string want = uninterrupted_state();

  reset_dir();
  {
    durable::DurableController a = fresh();
    for (std::size_t i = 0; i < 5; ++i) apply_op(a, i);
  }
  std::size_t resumed = 0;
  {
    durable::DurableController b = fresh();
    resumed = b.recover().snapshot_op + 5 - 5;  // snapshot 0, replay 5
    EXPECT_EQ(b.op_seq(), 5u);
    for (std::size_t i = 5; i < 23; ++i) apply_op(b, i);
  }
  durable::DurableController c = fresh();
  const auto info = c.recover();
  EXPECT_EQ(info.snapshot_op, 16u);
  EXPECT_EQ(c.op_seq(), 23u);
  for (std::size_t i = 23; i < 40; ++i) apply_op(c, i);
  EXPECT_EQ(c.controller().export_state(), want);
  (void)resumed;
}

TEST_F(DurableControllerTest, MidWindowRecoverReplaysExactSuffix) {
  {
    durable::DurableController a = fresh();
    for (std::size_t i = 0; i < 13; ++i) apply_op(a, i);
  }
  durable::DurableController b = fresh();
  const auto info = b.recover();
  EXPECT_EQ(info.snapshot_op, 8u);
  EXPECT_EQ(info.replayed_ops, 5u);
}

TEST_F(DurableControllerTest, TornWalTailRecoversValidPrefix) {
  const std::string want = uninterrupted_state();

  reset_dir();
  {
    durable::DurableController a = fresh();
    for (std::size_t i = 0; i < 13; ++i) apply_op(a, i);
  }
  // Chop the journal mid-frame: the final committed group (op 12) turns
  // into a torn tail and must be discarded, not rejected as corruption.
  const durable::SnapshotStore store(dir_, false);
  const std::string wal = store.wal_path(8);
  const auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 3);

  durable::DurableController b = fresh();
  const auto info = b.recover();
  EXPECT_EQ(info.snapshot_op, 8u);
  EXPECT_EQ(info.replayed_ops, 4u);
  EXPECT_EQ(b.op_seq(), 12u);

  // The discarded op is simply re-applied by the continuing script; the
  // final state still converges to the uninterrupted run.
  for (std::size_t i = 12; i < 40; ++i) apply_op(b, i);
  EXPECT_EQ(b.controller().export_state(), want);
}

TEST_F(DurableControllerTest, CorruptSnapshotFailsLoudlyWithOffset) {
  {
    durable::DurableController a = fresh();
    for (std::size_t i = 0; i < 13; ++i) apply_op(a, i);
  }
  const durable::SnapshotStore store(dir_, false);
  const std::string snap = store.snapshot_path(8);
  {
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(40);
    f.write(&byte, 1);
  }
  durable::DurableController b = fresh();
  try {
    (void)b.recover();
    FAIL() << "corrupt snapshot must not recover";
  } catch (const durable::CorruptState& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt at byte"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(DurableControllerTest, RecoverIntoDifferentFleetIsRejected) {
  {
    durable::DurableController a = fresh();
    for (std::size_t i = 0; i < 10; ++i) apply_op(a, i);
  }
  durable::DurableController b = fresh(8, 5);  // one PM fewer
  EXPECT_THROW((void)b.recover(), durable::CorruptState);
}

TEST_F(DurableControllerTest, RecoverWithoutStateThrows) {
  durable::DurableController d = fresh();
  EXPECT_FALSE(d.has_state());
  EXPECT_THROW((void)d.recover(), durable::CorruptState);
}

TEST_F(DurableControllerTest, InvalidOpsAreNotJournaled) {
  durable::DurableController d = fresh();
  (void)d.admit(vm(6.0, 5.0));
  const std::size_t before = d.op_seq();
  EXPECT_THROW(d.depart(TenantId{99}), InvalidArgument);
  EXPECT_THROW((void)d.resize(TenantId{99}, vm(6.0, 5.0)),
               InvalidArgument);
  EXPECT_THROW(d.inject_pm_crash(PmId{42}), InvalidArgument);
  // A rejected op never reached the journal: the sequence is unchanged
  // and a recover replays only valid ops.
  EXPECT_EQ(d.op_seq(), before);
}

// --- CloudController state round-trip (no journal) --------------------

TEST(ControllerState, ExportImportRoundTripsAndStaysInLockstep) {
  obs::SloOptions so;
  so.rho = 0.05;
  obs::SloTracker slo_a(6, so);
  obs::SloTracker slo_b(6, so);
  ControllerConfig cfg_a = base_config();
  cfg_a.slo = &slo_a;
  ControllerConfig cfg_b = base_config();
  cfg_b.slo = &slo_b;

  CloudController a(pms(6), cfg_a, Rng(5));
  for (int i = 0; i < 6; ++i) (void)a.admit(vm(6.0 + i, 5.0));
  for (int i = 0; i < 15; ++i) a.tick();
  a.inject_pm_crash(PmId{2});
  for (int i = 0; i < 3; ++i) a.tick();

  const std::string blob = a.export_state();
  CloudController b(pms(6), cfg_b, Rng(999));  // seed overwritten by import
  b.import_state(blob);
  EXPECT_EQ(b.export_state(), blob);

  // Lockstep from here: identical restored state + identical inputs
  // must evolve identically (RNG state came over in the blob).
  a.inject_pm_recover(PmId{2});
  b.inject_pm_recover(PmId{2});
  for (int i = 0; i < 12; ++i) {
    a.tick();
    b.tick();
  }
  EXPECT_EQ(b.export_state(), a.export_state());
  EXPECT_EQ(a.stats().runtime_migrations, b.stats().runtime_migrations);
  EXPECT_EQ(a.stats().energy_wh, b.stats().energy_wh);
}

TEST(ControllerState, TruncatedBlobFailsLoudly) {
  CloudController a(pms(4), base_config(), Rng(5));
  (void)a.admit(vm(6.0, 5.0));
  const std::string blob = a.export_state();
  CloudController b(pms(4), base_config(), Rng(5));
  try {
    b.import_state(std::string_view(blob).substr(0, blob.size() / 2));
    FAIL() << "truncated blob must not import";
  } catch (const durable::CorruptState& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt at byte"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace burstq
