// Unit tests for CSV output and console table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/table.h"

namespace burstq {
namespace {

TEST(CsvEscape, PlainPassthrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesCommasNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("he said \"hi\""), "\"he said \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
}

TEST(CsvFormat, RoundTripsDoubles) {
  EXPECT_EQ(csv_format(1.5), "1.5");
  EXPECT_EQ(csv_format(0.0), "0");
  const double v = 0.1234567890123;
  EXPECT_DOUBLE_EQ(std::stod(csv_format(v)), v);
}

TEST(CsvFormat, SpecialValues) {
  EXPECT_EQ(csv_format(std::nan("")), "nan");
  EXPECT_EQ(csv_format(1.0 / 0.0), "inf");
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/burstq_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_back() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvWriterTest, WritesRows) {
  {
    CsvWriter w(path_);
    w.row({"a", "b,c"});
    w.begin_row();
    w.field(1.5).field(std::size_t{7}).field("x");
    w.end_row();
    w.flush();
  }
  EXPECT_EQ(read_back(), "a,\"b,c\"\n1.5,7,x\n");
}

TEST_F(CsvWriterTest, RowProtocolEnforced) {
  CsvWriter w(path_);
  EXPECT_THROW(w.end_row(), InvalidArgument);
  EXPECT_THROW(w.field("x"), InvalidArgument);
  w.begin_row();
  EXPECT_THROW(w.begin_row(), InvalidArgument);
}

TEST(CsvWriterError, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), InvalidArgument);
}

TEST(ConsoleTable, RendersAlignedColumns) {
  ConsoleTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ConsoleTable, TitleBanner) {
  ConsoleTable t({"x"});
  t.set_title("Figure 5");
  std::ostringstream oss;
  t.print(oss);
  EXPECT_EQ(oss.str().rfind("Figure 5", 0), 0u);
}

TEST(ConsoleTable, ArityMismatchThrows) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(ConsoleTable, EmptyHeaderThrows) {
  EXPECT_THROW(ConsoleTable({}), InvalidArgument);
}

TEST(ConsoleTable, NumericFormatters) {
  EXPECT_EQ(ConsoleTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(ConsoleTable::num(std::size_t{42}), "42");
  EXPECT_EQ(ConsoleTable::percent(0.456, 1), "45.6%");
}

}  // namespace
}  // namespace burstq
