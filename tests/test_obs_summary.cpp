// Summary emitters (obs/summary.h): the console digest and the CSV dump,
// including the sketch-backed p50/p95/p99 columns added alongside the
// Prometheus exporter.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/summary.h"

namespace burstq::obs {
namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) rows.push_back(split_csv_line(line));
  return rows;
}

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back({"sim.migrations", 42});
  snap.gauges.push_back({"slo.cvr.fast", 0.0125});
  snap.spans.push_back(
      {"mapcal.solve", 4, 8000000ULL, 6000000ULL, 3000000ULL});
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  snap.histograms.push_back({"mapcal.k", h.snapshot()});
  return snap;
}

TEST(SummaryCsv, HeaderHasElevenColumnsIncludingP95) {
  const std::string path = testing::TempDir() + "summary_header.csv";
  write_summary_csv(path, sample_snapshot());
  const auto rows = read_csv(path);
  ASSERT_FALSE(rows.empty());
  const std::vector<std::string> want = {
      "type", "name",     "value",   "calls", "total_ns", "self_ns",
      "mean", "p50",      "p95",     "p99",   "max"};
  EXPECT_EQ(rows[0], want);
  std::remove(path.c_str());
}

TEST(SummaryCsv, EveryRowHasHeaderArity) {
  const std::string path = testing::TempDir() + "summary_arity.csv";
  write_summary_csv(path, sample_snapshot());
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 5u);  // header + counter + gauge + span + hist
  for (const auto& row : rows) EXPECT_EQ(row.size(), 11u);
  std::remove(path.c_str());
}

TEST(SummaryCsv, RowsRoundTripTheSnapshot) {
  const std::string path = testing::TempDir() + "summary_roundtrip.csv";
  const MetricsSnapshot snap = sample_snapshot();
  write_summary_csv(path, snap);
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 5u);

  // Counter: value filled, timing/quantile columns empty.
  EXPECT_EQ(rows[1][0], "counter");
  EXPECT_EQ(rows[1][1], "sim.migrations");
  EXPECT_EQ(rows[1][2], "42");
  for (std::size_t i = 3; i < 11; ++i) EXPECT_EQ(rows[1][i], "");

  // Gauge.
  EXPECT_EQ(rows[2][0], "gauge");
  EXPECT_EQ(rows[2][1], "slo.cvr.fast");
  EXPECT_DOUBLE_EQ(std::stod(rows[2][2]), 0.0125);

  // Span: calls/total/self/mean/max filled, quantiles empty.
  EXPECT_EQ(rows[3][0], "span");
  EXPECT_EQ(rows[3][1], "mapcal.solve");
  EXPECT_EQ(rows[3][3], "4");
  EXPECT_EQ(rows[3][4], "8000000");
  EXPECT_EQ(rows[3][5], "6000000");
  EXPECT_DOUBLE_EQ(std::stod(rows[3][6]), 2000000.0);
  EXPECT_EQ(rows[3][7], "");
  EXPECT_EQ(rows[3][8], "");
  EXPECT_EQ(rows[3][9], "");
  EXPECT_EQ(rows[3][10], "3000000");

  // Histogram: count + sketch quantiles; p50 <= p95 <= p99 <= max.
  EXPECT_EQ(rows[4][0], "histogram");
  EXPECT_EQ(rows[4][1], "mapcal.k");
  EXPECT_EQ(rows[4][3], "100");
  const double p50 = std::stod(rows[4][7]);
  const double p95 = std::stod(rows[4][8]);
  const double p99 = std::stod(rows[4][9]);
  const double mx = std::stod(rows[4][10]);
  EXPECT_DOUBLE_EQ(std::stod(rows[4][6]), snap.histograms[0].hist.mean());
  EXPECT_DOUBLE_EQ(p50, snap.histograms[0].hist.quantile(0.5));
  EXPECT_DOUBLE_EQ(p95, snap.histograms[0].hist.quantile(0.95));
  EXPECT_DOUBLE_EQ(p99, snap.histograms[0].hist.quantile(0.99));
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, mx);
  EXPECT_DOUBLE_EQ(mx, 100.0);
  // Uniform 1..100: sketch quantiles are exact for values < 32 and
  // within 1/16 relative width above, so p50 is near 50.
  EXPECT_NEAR(p50, 50.0, 50.0 / 16.0 + 1.0);
  std::remove(path.c_str());
}

TEST(PrintSummary, ConsoleDigestCarriesQuantileColumns) {
  std::ostringstream os;
  print_summary(os, sample_snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("observability summary"), std::string::npos);
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("mapcal.k"), std::string::npos);
  EXPECT_NE(text.find("sim.migrations"), std::string::npos);
}

TEST(PrintSummary, EmptySnapshotPrintsNote) {
  std::ostringstream os;
  print_summary(os, MetricsSnapshot{});
  EXPECT_NE(os.str().find("no metrics recorded"), std::string::npos);
}

}  // namespace
}  // namespace burstq::obs
