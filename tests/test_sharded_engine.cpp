// Property tests for the sharded parallel placement engine (sharded.h).
//
// The determinism contract under test:
//   * results are a pure function of (instance, order, shard count) — the
//     thread count NEVER changes them (this file runs under TSan in CI,
//     so the parallel phase is also raced-checked while being pinned);
//   * with one shard the engine is bit-identical to the single-threaded
//     incremental engine;
//   * the decision budget is deterministic (it counts checks, not time).
// Plus ShardedAdmitIndex unit coverage, PmSlackTree/engine edge cases
// (m = 1, all PMs infeasible, duplicate slack keys), and online/
// controller churn pinning.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/controller.h"
#include "placement/cluster.h"
#include "placement/incremental.h"
#include "placement/online.h"
#include "placement/queuing_ffd.h"
#include "placement/sharded.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace burstq {
namespace {

const OnOffParams kParams{0.02, 0.08};

ProblemInstance random_inst(std::size_t n, std::size_t m, Rng& rng) {
  return random_instance(n, m, kParams, InstanceRanges{}, rng);
}

void expect_identical(const ProblemInstance& inst, const PlacementResult& a,
                      const PlacementResult& b, const std::string& what) {
  EXPECT_EQ(a.unplaced, b.unplaced) << what;
  ASSERT_EQ(a.placement.pms_used(), b.placement.pms_used()) << what;
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    ASSERT_EQ(a.placement.pm_of(VmId{i}), b.placement.pm_of(VmId{i}))
        << what << ": VM " << i;
}

// --- resolve_shard_count -----------------------------------------------

TEST(ResolveShardCount, RequestedIsClampedToFleet) {
  EXPECT_EQ(resolve_shard_count(100, 1), 1u);
  EXPECT_EQ(resolve_shard_count(100, 7), 7u);
  EXPECT_EQ(resolve_shard_count(100, 1000), 100u);
  EXPECT_EQ(resolve_shard_count(1, 5), 1u);
}

TEST(ResolveShardCount, AutoDependsOnlyOnFleetSize) {
  // Small fleets stay single-shard (== incremental engine), large fleets
  // scale with the PM count, capped — and never consult the thread count.
  EXPECT_EQ(resolve_shard_count(1, 0), 1u);
  EXPECT_EQ(resolve_shard_count(255, 0), 1u);
  EXPECT_GE(resolve_shard_count(4096, 0), 2u);
  EXPECT_LE(resolve_shard_count(1000000, 0), 64u);
  set_thread_count_override(3);
  const std::size_t with_three = resolve_shard_count(100000, 0);
  set_thread_count_override(11);
  EXPECT_EQ(resolve_shard_count(100000, 0), with_three);
  set_thread_count_override(0);
}

// --- ShardedAdmitIndex unit coverage -----------------------------------

TEST(ShardedAdmitIndex, ShardRangesTileTheFleet) {
  const ShardedAdmitIndex index(10, 3);
  ASSERT_EQ(index.shard_count(), 3u);
  EXPECT_EQ(index.n_pms(), 10u);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(index.shard_begin(s), covered);
    EXPECT_GT(index.shard_end(s), index.shard_begin(s));
    for (std::size_t j = index.shard_begin(s); j < index.shard_end(s); ++j)
      EXPECT_EQ(index.shard_of(j), s);
    covered = index.shard_end(s);
  }
  EXPECT_EQ(covered, 10u);
  // Sizes differ by at most one.
  EXPECT_EQ(index.shard_end(0) - index.shard_begin(0), 4u);
  EXPECT_EQ(index.shard_end(1) - index.shard_begin(1), 3u);
  EXPECT_EQ(index.shard_end(2) - index.shard_begin(2), 3u);
}

TEST(ShardedAdmitIndex, FindInShardRespectsBoundsAndFrom) {
  ShardedAdmitIndex index(6, 2, 0.0);
  for (std::size_t j = 0; j < 6; ++j)
    index.set_key(j, static_cast<double>(j));
  // Shard 0 = PMs 0..2, shard 1 = PMs 3..5.
  EXPECT_EQ(index.find_in_shard(0, 1.5), 2u);
  EXPECT_EQ(index.find_in_shard(0, 2.5), ShardedAdmitIndex::npos);
  EXPECT_EQ(index.find_in_shard(1, 2.5), 3u);
  EXPECT_EQ(index.find_in_shard(1, 2.5, 4), 4u);
  EXPECT_EQ(index.find_in_shard(1, 0.0, 99), ShardedAdmitIndex::npos);
  EXPECT_EQ(index.key(4), 4.0);
}

TEST(ShardedAdmitIndex, RouteVisitsHomeThenFixedOrder) {
  ShardedAdmitIndex index(9, 3, 1.0);  // every PM key-admissible
  std::vector<std::size_t> probed;
  const auto exact = [&](std::size_t j) {
    probed.push_back(j);
    return false;  // force a full tour
  };
  const auto out = index.route(0.5, 1, exact);
  EXPECT_EQ(out.pm, ShardedAdmitIndex::npos);
  // Home shard 1 (PMs 3..5) first, then shards 0 and 2 in fixed order.
  EXPECT_EQ(probed,
            (std::vector<std::size_t>{3, 4, 5, 0, 1, 2, 6, 7, 8}));
  EXPECT_EQ(out.exact_checks, 9u);
}

TEST(ShardedAdmitIndex, RouteStopsAtFirstAcceptAndHonoursBudget) {
  ShardedAdmitIndex index(8, 2, 1.0);
  std::size_t calls = 0;
  const auto accept_fifth = [&](std::size_t) { return ++calls == 5; };
  const auto hit = index.route(0.0, 0, accept_fifth);
  EXPECT_EQ(hit.pm, 4u);
  EXPECT_FALSE(hit.budget_exhausted);

  calls = 0;
  const auto starved = index.route(0.0, 0, accept_fifth, 3);
  EXPECT_EQ(starved.pm, ShardedAdmitIndex::npos);
  EXPECT_TRUE(starved.budget_exhausted);
  EXPECT_EQ(starved.exact_checks, 3u);
}

TEST(ShardedAdmitIndex, KeyFilterSkipsExactChecks) {
  ShardedAdmitIndex index(4, 1, 0.0);
  index.set_key(1, 10.0);
  index.set_key(3, 10.0);
  std::vector<std::size_t> probed;
  const auto out = index.route(5.0, 0, [&](std::size_t j) {
    probed.push_back(j);
    return false;
  });
  EXPECT_EQ(out.pm, ShardedAdmitIndex::npos);
  EXPECT_EQ(probed, (std::vector<std::size_t>{1, 3}));
}

// --- Tentpole: S = 1 is bit-identical to the incremental engine --------

TEST(ShardedEngine, SingleShardMatchesIncrementalBitForBit) {
  for (std::uint64_t seed : {1u, 17u, 98u, 4242u}) {
    Rng rng(seed);
    const auto inst = random_inst(300, 60, rng);
    const auto order = queuing_ffd_order(inst.vms, 8);
    const MapCalTable table(12, kParams, 0.02);

    const auto incr = first_fit_place_reservation(inst, order, table);
    for (const std::size_t threads : {1u, 2u, 5u}) {
      ShardedOptions opt;
      opt.shards = 1;
      opt.threads = threads;
      ShardedStats stats;
      const auto sharded =
          sharded_place_reservation(inst, order, table, opt, &stats);
      expect_identical(inst, incr, sharded,
                       "seed " + std::to_string(seed) + " threads " +
                           std::to_string(threads));
      EXPECT_EQ(stats.shards, 1u);
      EXPECT_EQ(stats.reconcile_placed, 0u);  // monotone: spills stay out
      EXPECT_EQ(stats.local_placed,
                inst.n_vms() - sharded.unplaced.size());
    }
  }
}

// --- Tentpole: thread count never changes the result -------------------

TEST(ShardedEngine, ResultsInvariantAcrossThreadCounts) {
  Rng rng(2024);
  const auto inst = random_inst(600, 90, rng);
  const auto order = queuing_ffd_order(inst.vms, 8);
  const MapCalTable table(12, kParams, 0.02);

  for (const std::size_t shards : {2u, 3u, 7u}) {
    std::optional<PlacementResult> reference;
    std::size_t reference_spills = 0;
    for (const std::size_t threads : {1u, 2u, 5u}) {
      ShardedOptions opt;
      opt.shards = shards;
      opt.threads = threads;
      ShardedStats stats;
      auto result = sharded_place_reservation(inst, order, table, opt, &stats);
      EXPECT_EQ(stats.shards, shards);
      if (!reference) {
        reference = std::move(result);
        reference_spills = stats.spills;
      } else {
        expect_identical(inst, *reference, result,
                         "shards " + std::to_string(shards) + " threads " +
                             std::to_string(threads));
        // Spill/reconcile accounting is part of the deterministic
        // contract too, not just the final mapping.
        EXPECT_EQ(stats.spills, reference_spills);
      }
    }
  }
}

TEST(ShardedEngine, EveryShardCountYieldsValidPlacement) {
  Rng rng(5150);
  const auto inst = random_inst(400, 64, rng);
  const auto order = queuing_ffd_order(inst.vms, 8);
  const MapCalTable table(12, kParams, 0.02);
  for (const std::size_t shards : {1u, 2u, 5u, 16u, 64u}) {
    ShardedOptions opt;
    opt.shards = shards;
    opt.threads = 4;
    const auto result = sharded_place_reservation(inst, order, table, opt);
    EXPECT_TRUE(
        placement_satisfies_reservation(inst, result.placement, table))
        << "shards " << shards;
    EXPECT_EQ(result.placement.vms_assigned() + result.unplaced.size(),
              inst.n_vms());
  }
}

TEST(ShardedEngine, DecisionBudgetIsDeterministic) {
  Rng rng(31337);
  const auto inst = random_inst(300, 40, rng);
  const auto order = queuing_ffd_order(inst.vms, 8);
  const MapCalTable table(12, kParams, 0.02);

  ShardedOptions opt;
  opt.shards = 4;
  opt.decision_budget = 2;
  opt.threads = 1;
  ShardedStats first_stats;
  const auto first =
      sharded_place_reservation(inst, order, table, opt, &first_stats);
  opt.threads = 6;
  ShardedStats second_stats;
  const auto second =
      sharded_place_reservation(inst, order, table, opt, &second_stats);
  expect_identical(inst, first, second, "budgeted runs");
  EXPECT_EQ(first_stats.budget_exhausted, second_stats.budget_exhausted);
  EXPECT_EQ(first_stats.exact_checks, second_stats.exact_checks);
  EXPECT_TRUE(placement_satisfies_reservation(inst, first.placement, table));
}

TEST(ShardedEngine, QueuingFfdDispatchMatchesDirectCall) {
  Rng rng(808);
  const auto inst = random_inst(250, 50, rng);
  QueuingFfdOptions incr_opt;
  incr_opt.engine = PlacementEngine::kIncremental;
  QueuingFfdOptions shard_opt;
  shard_opt.engine = PlacementEngine::kSharded;  // default: one shard
  expect_identical(inst, queuing_ffd(inst, incr_opt).result,
                   queuing_ffd(inst, shard_opt).result, "ffd dispatch");
}

// --- Edge cases: m = 1, all infeasible, duplicate keys ------------------

TEST(ShardedEngine, SinglePmFleet) {
  Rng rng(9);
  const auto inst = random_inst(40, 1, rng);
  const auto order = queuing_ffd_order(inst.vms, 4);
  const MapCalTable table(12, kParams, 0.02);
  const auto incr = first_fit_place_reservation(inst, order, table);
  for (const std::size_t shards : {0u, 1u, 8u}) {  // all resolve to 1
    ShardedOptions opt;
    opt.shards = shards;
    opt.threads = 3;
    expect_identical(inst, incr,
                     sharded_place_reservation(inst, order, table, opt),
                     "m=1 shards=" + std::to_string(shards));
  }
}

TEST(ShardedEngine, AllPmsInfeasibleLeavesEveryVmUnplacedInOrder) {
  ProblemInstance inst;
  for (int i = 0; i < 12; ++i)
    inst.vms.push_back(VmSpec{kParams, 50.0 + i, 5.0});
  inst.pms.assign(4, PmSpec{10.0});  // every Rb alone exceeds capacity
  const auto order = queuing_ffd_order(inst.vms, 3);
  const MapCalTable table(8, kParams, 0.02);
  for (const std::size_t shards : {1u, 2u, 4u}) {
    ShardedOptions opt;
    opt.shards = shards;
    opt.threads = 2;
    ShardedStats stats;
    const auto result =
        sharded_place_reservation(inst, order, table, opt, &stats);
    EXPECT_EQ(result.placement.vms_assigned(), 0u);
    ASSERT_EQ(result.unplaced.size(), inst.n_vms());
    // Unplaced VMs come back in visit order regardless of sharding.
    for (std::size_t r = 0; r < order.size(); ++r)
      EXPECT_EQ(result.unplaced[r].value, order[r]) << "rank " << r;
    EXPECT_EQ(stats.spills, inst.n_vms());
    EXPECT_EQ(stats.reconcile_placed, 0u);
  }
}

TEST(ShardedEngine, DuplicateSlackKeysTieBreakByLowestIndex) {
  // Identical PMs produce duplicate keys in every tree; first-fit must
  // still pick the lowest-indexed PM within the visited shard order.
  ProblemInstance inst;
  for (int i = 0; i < 20; ++i) inst.vms.push_back(VmSpec{kParams, 4.0, 2.0});
  inst.pms.assign(6, PmSpec{90.0});
  const auto order = queuing_ffd_order(inst.vms, 2);
  const MapCalTable table(12, kParams, 0.02);

  const auto incr = first_fit_place_reservation(inst, order, table);
  ShardedOptions opt;
  opt.shards = 1;
  opt.threads = 4;
  expect_identical(inst, incr,
                   sharded_place_reservation(inst, order, table, opt),
                   "duplicate keys");
  // And thread-invariance with real sharding on the degenerate fleet.
  opt.shards = 3;
  opt.threads = 1;
  const auto a = sharded_place_reservation(inst, order, table, opt);
  opt.threads = 5;
  const auto b = sharded_place_reservation(inst, order, table, opt);
  expect_identical(inst, a, b, "duplicate keys, 3 shards");
}

// --- Online consolidator: shard routing under churn --------------------

// Legacy reference: the pre-shard linear first-fit scan over every PM,
// fed by walk-based aggregates.
class OnlineModel {
 public:
  OnlineModel(std::vector<PmSpec> pms, const MapCalTable& table)
      : pms_(std::move(pms)), table_(table), hosted_(pms_.size()) {}

  std::optional<std::size_t> add(const VmSpec& vm) {
    for (std::size_t j = 0; j < pms_.size(); ++j) {
      if (fits_with_reservation_specs(hosted_[j], vm, pms_[j].capacity,
                                      table_)) {
        hosted_[j].push_back(vm);
        return j;
      }
    }
    return std::nullopt;
  }

  void remove(std::size_t pm, const VmSpec& vm) {
    auto& list = hosted_[pm];
    const auto it = std::find_if(list.begin(), list.end(), [&](const VmSpec& v) {
      return v.rb == vm.rb && v.re == vm.re;
    });
    ASSERT_NE(it, list.end());
    // Swap-remove, mirroring OnlineConsolidator's slot bookkeeping.
    *it = list.back();
    list.pop_back();
  }

 private:
  std::vector<PmSpec> pms_;
  MapCalTable table_;
  std::vector<std::vector<VmSpec>> hosted_;
};

TEST(OnlineSharded, SingleShardChurnMatchesLegacyLinearScan) {
  Rng rng(616);
  const std::vector<PmSpec> pms(12, PmSpec{90.0});
  QueuingFfdOptions opt;
  opt.rho = 0.02;
  opt.max_vms_per_pm = 12;
  OnlineConsolidator online(pms, opt, kParams);
  OnlineModel model(pms, online.table());

  std::vector<std::pair<VmHandle, VmSpec>> live;
  for (std::size_t step = 0; step < 400; ++step) {
    const bool do_add = live.empty() || rng.next_below(3) != 0;
    if (do_add) {
      VmSpec vm{kParams, rng.uniform(2.0, 20.0), rng.uniform(2.0, 20.0)};
      const auto h = online.add_vm(vm);
      const auto expected = model.add(vm);
      ASSERT_EQ(h.has_value(), expected.has_value()) << "step " << step;
      if (h) {
        ASSERT_EQ(online.pm_of(*h).value, *expected) << "step " << step;
        live.emplace_back(*h, vm);
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      const auto [h, vm] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      model.remove(online.pm_of(h).value, vm);
      online.remove_vm(h);
    }
  }
  EXPECT_TRUE(online.reservation_invariant_holds());
}

TEST(OnlineSharded, MultiShardChurnIsReproducible) {
  const std::vector<PmSpec> pms(16, PmSpec{90.0});
  QueuingFfdOptions opt;
  opt.rho = 0.02;
  opt.max_vms_per_pm = 12;
  opt.sharded.shards = 4;

  const auto run = [&] {
    Rng rng(99);  // identical op stream for both runs
    OnlineConsolidator online(pms, opt, kParams);
    std::vector<VmHandle> live;
    std::vector<std::size_t> trace;
    for (std::size_t step = 0; step < 300; ++step) {
      const std::size_t kind = rng.next_below(4);
      if (live.empty() || kind != 0) {
        VmSpec vm{kParams, rng.uniform(2.0, 20.0), rng.uniform(2.0, 20.0)};
        if (const auto h = online.add_vm(vm)) {
          live.push_back(*h);
          trace.push_back(online.pm_of(*h).value);
        } else {
          trace.push_back(static_cast<std::size_t>(-1));
        }
      } else if (kind == 0 && !live.empty()) {
        const std::size_t pick = rng.next_below(live.size());
        online.remove_vm(live[pick]);
        live[pick] = live.back();
        live.pop_back();
        trace.push_back(static_cast<std::size_t>(-2));
      }
    }
    EXPECT_TRUE(online.reservation_invariant_holds());
    trace.push_back(online.pms_used());
    trace.push_back(online.vms_hosted());
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(OnlineSharded, ResizeInPlaceMoveAndRollback) {
  // Re = 1 everywhere and max_vms_per_pm = 8 bound the reservation term
  // by 8, so the assertions below hold for any blocks(k) in [1, 8].
  const std::vector<PmSpec> pms{PmSpec{40.0}, PmSpec{1000.0},
                                PmSpec{1000.0}};
  QueuingFfdOptions opt;
  opt.rho = 0.02;
  opt.max_vms_per_pm = 8;
  OnlineConsolidator online(pms, opt, kParams);

  const auto h = online.add_vm(VmSpec{kParams, 10.0, 1.0});
  ASSERT_TRUE(h.has_value());
  const PmId original = online.pm_of(*h);
  EXPECT_EQ(original.value, 0u);  // first fit picks the first PM

  // Grow within capacity (30 + <=8 <= 40): stays put.
  EXPECT_TRUE(online.resize_vm(*h, VmSpec{kParams, 30.0, 1.0}));
  EXPECT_EQ(online.pm_of(*h), original);
  EXPECT_EQ(online.spec_of(*h).rb, 30.0);
  EXPECT_TRUE(online.reservation_invariant_holds());

  // Grow past the PM's raw capacity: the VM must migrate off PM 0.
  EXPECT_TRUE(online.resize_vm(*h, VmSpec{kParams, 45.0, 1.0}));
  EXPECT_NE(online.pm_of(*h), original);
  EXPECT_EQ(online.spec_of(*h).rb, 45.0);
  EXPECT_TRUE(online.reservation_invariant_holds());

  // Impossible growth: rolled back in place, handle still valid.
  const PmId before = online.pm_of(*h);
  EXPECT_FALSE(online.resize_vm(*h, VmSpec{kParams, 5000.0, 1.0}));
  EXPECT_EQ(online.pm_of(*h), before);
  EXPECT_EQ(online.spec_of(*h).rb, 45.0);
  EXPECT_TRUE(online.reservation_invariant_holds());
}

// --- Controller: sharded routing stays deterministic -------------------

TEST(ControllerSharded, MultiShardRunsAreReproducible) {
  const auto run = [] {
    std::vector<PmSpec> pms(24, PmSpec{90.0});
    ControllerConfig cfg;
    cfg.ffd.rho = 0.02;
    cfg.ffd.max_vms_per_pm = 12;
    cfg.ffd.sharded.shards = 6;
    CloudController ctl(pms, cfg, Rng(7));

    Rng rng(1234);
    std::vector<TenantId> live;
    for (std::size_t step = 0; step < 200; ++step) {
      if (live.empty() || rng.next_below(3) != 0) {
        VmSpec vm{kParams, rng.uniform(2.0, 15.0), rng.uniform(2.0, 15.0)};
        if (const auto id = ctl.admit(vm)) live.push_back(*id);
      } else {
        const std::size_t pick = rng.next_below(live.size());
        ctl.depart(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
      if (step % 16 == 0 && !live.empty())
        ctl.resize(live.front(),
                   VmSpec{kParams, rng.uniform(2.0, 15.0),
                          rng.uniform(2.0, 15.0)});
      if (step % 25 == 0) ctl.tick();
      EXPECT_TRUE(ctl.reservation_invariant_holds()) << "step " << step;
    }
    std::vector<std::size_t> fingerprint;
    for (const auto id : live) fingerprint.push_back(ctl.pm_of(id).value);
    fingerprint.push_back(ctl.stats().admissions);
    fingerprint.push_back(ctl.stats().rejections);
    fingerprint.push_back(ctl.stats().resizes);
    fingerprint.push_back(ctl.stats().resize_migrations);
    fingerprint.push_back(ctl.pms_used());
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

TEST(ControllerSharded, CrashEvacuationWorksAcrossShards) {
  std::vector<PmSpec> pms(8, PmSpec{90.0});
  ControllerConfig cfg;
  cfg.ffd.rho = 0.02;
  cfg.ffd.max_vms_per_pm = 12;
  cfg.ffd.sharded.shards = 4;
  CloudController ctl(pms, cfg, Rng(3));

  std::vector<TenantId> ids;
  for (int i = 0; i < 24; ++i) {
    const auto id = ctl.admit(VmSpec{kParams, 8.0, 4.0});
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  // Crash every PM that hosts tenant 0's shard-mates; conservation must
  // hold: nothing is lost, everything is re-placed or queued.
  ctl.inject_pm_crash(ctl.pm_of(ids[0]));
  EXPECT_TRUE(ctl.reservation_invariant_holds());
  std::size_t placed = 0;
  for (const auto id : ids)
    if (ctl.pm_of(id).valid()) ++placed;
  EXPECT_EQ(placed + ctl.queued_tenants(), ids.size());

  // A resize on a queued tenant (if any) must not throw; on a placed one
  // it must preserve the invariant.
  EXPECT_TRUE(ctl.resize(ids[1], VmSpec{kParams, 9.0, 4.0}));
  EXPECT_TRUE(ctl.reservation_invariant_holds());
}

TEST(ControllerSharded, DecisionBudgetRejectsDeterministically) {
  std::vector<PmSpec> pms(16, PmSpec{30.0});
  ControllerConfig cfg;
  cfg.ffd.rho = 0.02;
  cfg.ffd.max_vms_per_pm = 4;
  cfg.ffd.sharded.shards = 4;
  cfg.ffd.sharded.decision_budget = 1;  // one exact check per decision

  const auto run = [&] {
    CloudController ctl(pms, cfg, Rng(11));
    std::vector<std::size_t> outcome;
    for (int i = 0; i < 40; ++i) {
      const auto id = ctl.admit(VmSpec{kParams, 12.0, 6.0});
      outcome.push_back(id ? ctl.pm_of(*id).value
                           : static_cast<std::size_t>(-1));
    }
    outcome.push_back(ctl.stats().rejections);
    return outcome;
  };
  const auto a = run();
  EXPECT_EQ(a, run());
  // The tight budget must actually bite on this saturated fleet.
  EXPECT_GT(a.back(), 0u);
}

}  // namespace
}  // namespace burstq
