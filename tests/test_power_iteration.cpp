// Unit tests for power iteration, and cross-checks against the Gaussian
// solver (the two must agree — they are independent implementations of
// Eq. 13 vs Eq. 14).

#include <gtest/gtest.h>

#include "common/error.h"
#include "linalg/gaussian.h"
#include "linalg/power_iteration.h"

namespace burstq {
namespace {

TEST(PowerIteration, TwoStateClosedForm) {
  const double alpha = 0.25;
  const double beta = 0.05;
  Matrix p{{1 - alpha, alpha}, {beta, 1 - beta}};
  auto res = stationary_distribution_power(p);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->distribution[0], beta / (alpha + beta), 1e-9);
  EXPECT_NEAR(res->distribution[1], alpha / (alpha + beta), 1e-9);
  EXPECT_GT(res->iterations, 0u);
}

TEST(PowerIteration, AgreesWithGaussian) {
  Matrix p{{0.7, 0.2, 0.1}, {0.3, 0.5, 0.2}, {0.05, 0.15, 0.8}};
  auto power = stationary_distribution_power(p);
  auto gauss = stationary_distribution_gaussian(p);
  ASSERT_TRUE(power.has_value());
  ASSERT_TRUE(gauss.has_value());
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(power->distribution[i], (*gauss)[i], 1e-9);
}

TEST(PowerIteration, PeriodicChainConvergesViaDamping) {
  // Two-cycle: period 2, Pi0 P^t oscillates forever — but the damped
  // iterate (P + I)/2 is aperiodic with the same stationary vector, so
  // the iteration now converges (this exact chain is theta(t) for k = 1,
  // p_on = p_off = 1, a valid parameter point that used to crash).
  Matrix p{{0.0, 1.0}, {1.0, 0.0}};
  auto res = stationary_distribution_power(p, 1e-13, 1000);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(res->distribution[0], 0.5, 1e-12);
  EXPECT_NEAR(res->distribution[1], 0.5, 1e-12);
}

TEST(PowerIteration, SlowMixingChainExhaustsBudget) {
  // Spectral gap ~1e-6: a 1000-step budget cannot converge; the caller
  // (aggregate_stationary_distribution) is responsible for scaling the
  // budget or falling back, and relies on nullopt here.
  const double eps = 1e-6;
  Matrix p{{1 - eps, eps}, {eps, 1 - eps}};
  EXPECT_FALSE(stationary_distribution_power(p, 1e-13, 1000).has_value());
}

TEST(PowerIteration, RejectsNonStochastic) {
  Matrix p{{0.9, 0.2}, {0.5, 0.5}};
  EXPECT_THROW(stationary_distribution_power(p), InvalidArgument);
}

TEST(PowerIteration, DistributionStaysNormalized) {
  Matrix p{{0.5, 0.5}, {0.25, 0.75}};
  auto res = stationary_distribution_power(p);
  ASSERT_TRUE(res.has_value());
  double sum = 0.0;
  for (double v : res->distribution) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace burstq
