// Unit tests for Gaussian elimination and the stationary-distribution
// solver (Algorithm 1's numeric core).

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "linalg/gaussian.h"

namespace burstq {
namespace {

TEST(SolveLinearSystem, Known2x2) {
  // x + y = 3 ; 2x - y = 0  =>  x = 1, y = 2
  Matrix a{{1, 1}, {2, -1}};
  auto x = solve_linear_system(a, {3.0, 0.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a{{0, 1}, {1, 0}};
  auto x = solve_linear_system(a, {5.0, 7.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 7.0, 1e-12);
  EXPECT_NEAR((*x)[1], 5.0, 1e-12);
}

TEST(SolveLinearSystem, SingularReturnsNullopt) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(solve_linear_system(a, {1.0, 2.0}).has_value());
}

TEST(SolveLinearSystem, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), InvalidArgument);
}

TEST(SolveLinearSystem, RhsLengthMismatchThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(solve_linear_system(a, {1.0}), InvalidArgument);
}

TEST(SolveLinearSystem, Larger5x5RoundTrip) {
  // Construct A x = b from a known x and verify recovery.
  Matrix a(5, 5);
  const std::vector<double> truth{1.0, -2.0, 0.5, 3.0, -1.5};
  // Diagonally-dominant A for stability.
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      a(i, j) = (i == j) ? 10.0 : static_cast<double>((i * 5 + j) % 3);
  std::vector<double> b(5, 0.0);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) b[i] += a(i, j) * truth[j];
  auto x = solve_linear_system(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR((*x)[i], truth[i], 1e-10);
}

TEST(Stationary, TwoStateChainClosedForm) {
  // P = [[1-a, a], [b, 1-b]] has stationary (b, a)/(a+b).
  const double alpha = 0.3;
  const double beta = 0.1;
  Matrix p{{1 - alpha, alpha}, {beta, 1 - beta}};
  auto pi = stationary_distribution_gaussian(p);
  ASSERT_TRUE(pi.has_value());
  EXPECT_NEAR((*pi)[0], beta / (alpha + beta), 1e-12);
  EXPECT_NEAR((*pi)[1], alpha / (alpha + beta), 1e-12);
}

TEST(Stationary, IdentityChainStillSolvable) {
  // Identity is stochastic but reducible: every distribution is
  // stationary.  The solver must not crash; it may return any valid
  // probability vector or nullopt (rank deficiency > 1).
  const Matrix p = Matrix::identity(3);
  auto pi = stationary_distribution_gaussian(p);
  if (pi) {
    double sum = 0.0;
    for (double v : *pi) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Stationary, SumsToOneAndNonNegative) {
  Matrix p{{0.2, 0.5, 0.3}, {0.1, 0.6, 0.3}, {0.4, 0.4, 0.2}};
  auto pi = stationary_distribution_gaussian(p);
  ASSERT_TRUE(pi.has_value());
  double sum = 0.0;
  for (double v : *pi) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Verify pi P = pi.
  const auto piP = p.left_multiply(*pi);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(piP[i], (*pi)[i], 1e-12);
}

TEST(Stationary, RejectsNonStochastic) {
  Matrix p{{0.5, 0.6}, {0.5, 0.5}};
  EXPECT_THROW(stationary_distribution_gaussian(p), InvalidArgument);
}

TEST(Stationary, OneStateChain) {
  Matrix p{{1.0}};
  auto pi = stationary_distribution_gaussian(p);
  ASSERT_TRUE(pi.has_value());
  EXPECT_NEAR((*pi)[0], 1.0, 1e-15);
}

}  // namespace
}  // namespace burstq
