// Flight-recorder replay tests: a recorded cluster_sim run, re-driven
// through sim/flight.h, must reproduce the live CvrTracker bookkeeping
// bit-for-bit — cumulative CVR, windowed CVR (including the reset_window
// cooldown path after migrations), and the migration counts.

#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/event_log.h"
#include "obs/jsonl.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"
#include "sim/flight.h"

namespace burstq {
namespace {

[[maybe_unused]] const OnOffParams kP{0.01, 0.09};

// Only the instrumented-build tests simulate; silence the kill-switch
// configuration's unused warning.
[[maybe_unused]] ProblemInstance typical_instance(std::size_t n_vms,
                                                  std::size_t n_pms,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n_vms, n_pms, kP, InstanceRanges{}, rng);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(ParseIdList, SpaceSeparated) {
  EXPECT_TRUE(parse_id_list("").empty());
  EXPECT_EQ(parse_id_list("7"), (std::vector<std::size_t>{7}));
  EXPECT_EQ(parse_id_list("0 3 12"), (std::vector<std::size_t>{0, 3, 12}));
}

TEST(ReplayFlightLog, RejectsSlotBeforeConfig) {
  std::vector<obs::RecordedEvent> events;
  auto slot = obs::parse_event_line(
      "{\"kind\":\"slot.obs\",\"t\":0,\"active\":\"0\",\"viol\":\"\"}");
  ASSERT_TRUE(slot.has_value());
  events.push_back(*slot);
  EXPECT_THROW(replay_flight_log(events), InvalidArgument);
}

TEST(ReplayFlightLog, EmptyStreamYieldsNoSegments) {
  EXPECT_TRUE(replay_flight_log(std::vector<obs::RecordedEvent>{}).empty());
}

#ifndef BURSTQ_NO_OBS

/// Records a simulator run into `path` at detail level and returns the
/// live report.  The global event log is closed before returning.
SimReport record_run(const std::string& path, const ProblemInstance& inst,
                     const Placement& placement, const SimConfig& cfg,
                     std::uint64_t seed, const std::string& label) {
  obs::events().open(path, obs::EventFormat::kJsonl,
                     obs::EventLevel::kDetail);
  obs::events().set_run_label(label);
  ClusterSimulator sim(inst, placement, cfg, Rng(seed));
  SimReport report = sim.run();
  obs::events().close();
  obs::events().set_run_label("");
  return report;
}

void expect_replay_matches(const FlightReplaySegment& seg,
                           const SimReport& live, std::size_t n_pms) {
  ASSERT_EQ(seg.n_pms, n_pms);
  for (std::size_t j = 0; j < n_pms; ++j) {
    const PmId pm{j};
    // Bit-for-bit: the replayed tracker saw the identical record/reset
    // sequence, so even the double divisions agree exactly.
    EXPECT_EQ(seg.tracker.cvr(pm), live.pm_cvr[j]) << "pm " << j;
    EXPECT_EQ(seg.tracker.windowed_cvr(pm), live.pm_windowed_cvr_end[j])
        << "pm " << j;
  }
  EXPECT_EQ(seg.tracker.mean_cvr(), live.mean_cvr);
  EXPECT_EQ(seg.tracker.max_cvr(), live.max_cvr);
  EXPECT_EQ(seg.migrations, live.total_migrations);
  EXPECT_EQ(seg.failed_migrations, live.failed_migrations);
}

TEST(ReplayFlightLog, StaticRunReproducesCvrExactly) {
  const auto inst = typical_instance(40, 40, 31);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());
  SimConfig cfg;
  cfg.slots = 120;
  cfg.enable_migration = false;

  const std::string path = temp_path("replay_static.jsonl");
  const SimReport live =
      record_run(path, inst, placed.placement, cfg, 31, "static");

  const auto segments = replay_flight_log(path);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].label, "static");
  EXPECT_EQ(segments[0].slots_seen, cfg.slots);
  EXPECT_EQ(segments[0].window_resets, 0u);
  expect_replay_matches(segments[0], live, inst.n_pms());
}

TEST(ReplayFlightLog, MigrationRunReproducesWindowedCvr) {
  // RB packing under-reserves, so the CVR trigger fires and the recorded
  // stream must carry migration + window.reset events whose replay keeps
  // the windowed tracker in lockstep.
  const auto inst = typical_instance(60, 60, 32);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());
  SimConfig cfg;
  cfg.slots = 150;

  const std::string path = temp_path("replay_migration.jsonl");
  const SimReport live =
      record_run(path, inst, placed.placement, cfg, 32, "rb-dynamic");

  const auto segments = replay_flight_log(path);
  ASSERT_EQ(segments.size(), 1u);
  const FlightReplaySegment& seg = segments[0];
  ASSERT_GT(live.total_migrations, 0u) << "seed no longer triggers "
                                          "migrations; pick another";
  // Every successful migration resets two windows, every failed one one.
  EXPECT_EQ(seg.window_resets,
            2 * live.total_migrations + live.failed_migrations);
  expect_replay_matches(seg, live, inst.n_pms());
}

TEST(ReplayFlightLog, MultiRunLogSegmentsByLabel) {
  const auto inst = typical_instance(25, 25, 33);
  const auto rb = ffd_by_normal(inst);
  const auto rp = ffd_by_peak(inst);
  ASSERT_TRUE(rb.complete());
  ASSERT_TRUE(rp.complete());
  SimConfig cfg;
  cfg.slots = 50;
  cfg.enable_migration = false;

  const std::string path = temp_path("replay_multi.jsonl");
  obs::events().open(path, obs::EventFormat::kJsonl,
                     obs::EventLevel::kDetail);
  obs::events().set_run_label("run/rb");
  ClusterSimulator sim_rb(inst, rb.placement, cfg, Rng(33));
  const SimReport live_rb = sim_rb.run();
  obs::events().set_run_label("run/rp");
  ClusterSimulator sim_rp(inst, rp.placement, cfg, Rng(33));
  const SimReport live_rp = sim_rp.run();
  obs::events().close();
  obs::events().set_run_label("");

  const auto segments = replay_flight_log(path);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].label, "run/rb");
  EXPECT_EQ(segments[1].label, "run/rp");
  expect_replay_matches(segments[0], live_rb, inst.n_pms());
  expect_replay_matches(segments[1], live_rp, inst.n_pms());
  // RP never violates with rectangular demand; RB must have.
  EXPECT_EQ(segments[1].tracker.max_cvr(), 0.0);
  EXPECT_GT(segments[0].tracker.max_cvr(), 0.0);
}

TEST(FlightSlotRecorder, SilentWhenLogClosed) {
  // No sink open: the recorder must stay disabled and write nothing.
  const std::uint64_t before = obs::events().events_written();
  FlightSlotRecorder recorder("idle", 4, 10, 5, 0.01);
  EXPECT_FALSE(recorder.enabled());
  recorder.slot(0, {0, 1}, {});
  EXPECT_EQ(obs::events().events_written(), before);
}

#else  // BURSTQ_NO_OBS

TEST(FlightSlotRecorder, NoOpUnderKillSwitch) {
  // The stub must exist with the same shape and record nothing even with
  // a sink open.
  const std::string path = temp_path("noop.jsonl");
  obs::events().open(path, obs::EventFormat::kJsonl,
                     obs::EventLevel::kDetail);
  FlightSlotRecorder recorder("noop", 4, 10, 5, 0.01);
  EXPECT_FALSE(recorder.enabled());
  recorder.slot(0, {0, 1}, {1});
  obs::events().close();
  EXPECT_TRUE(replay_flight_log(path).empty());
}

#endif  // BURSTQ_NO_OBS

}  // namespace
}  // namespace burstq
