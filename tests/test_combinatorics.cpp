// Unit tests for log-space combinatorics and the binomial pmf.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "prob/combinatorics.h"

namespace burstq {
namespace {

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-14);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-14);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-11);
}

TEST(LogFactorial, NegativeThrows) {
  EXPECT_THROW(log_factorial(-1), InvalidArgument);
}

TEST(LogChoose, KnownValues) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 5)), 252.0, 1e-8);
  EXPECT_NEAR(log_choose(7, 0), 0.0, 1e-13);
  EXPECT_NEAR(log_choose(7, 7), 0.0, 1e-13);
}

TEST(LogChoose, OutOfDomainThrows) {
  EXPECT_THROW(log_choose(3, 4), InvalidArgument);
  EXPECT_THROW(log_choose(3, -1), InvalidArgument);
}

TEST(BinomialCoefficient, ExactSmallValues) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(16, 8), 12870.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(52, 5), 2598960.0);
}

TEST(BinomialCoefficient, PaperZeroConvention) {
  // The paper defines C(n, x) = 0 when x > n or x < 0 (Eq. 12 context).
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, -1), 0.0);
}

TEST(BinomialCoefficient, LargeArgumentsViaLgamma) {
  // C(100, 50) ~ 1.0089e29; relative accuracy ~1e-12 is plenty.
  const double v = binomial_coefficient(100, 50);
  EXPECT_NEAR(v / 1.0089134454556417e29, 1.0, 1e-10);
}

TEST(BinomialCoefficient, PascalIdentityHolds) {
  for (std::int64_t n = 1; n <= 40; ++n)
    for (std::int64_t x = 1; x < n; ++x)
      EXPECT_DOUBLE_EQ(binomial_coefficient(n, x),
                       binomial_coefficient(n - 1, x - 1) +
                           binomial_coefficient(n - 1, x))
          << "n=" << n << " x=" << x;
}

TEST(BinomialPmf, SumsToOne) {
  for (const double p : {0.01, 0.1, 0.5, 0.9}) {
    for (const std::int64_t n : {1, 5, 16, 64}) {
      double sum = 0.0;
      for (std::int64_t x = 0; x <= n; ++x) sum += binomial_pmf(n, x, p);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BinomialPmf, KnownValues) {
  EXPECT_NEAR(binomial_pmf(2, 1, 0.5), 0.5, 1e-14);
  EXPECT_NEAR(binomial_pmf(10, 0, 0.1), std::pow(0.9, 10), 1e-13);
  EXPECT_NEAR(binomial_pmf(3, 2, 0.25), 3 * 0.0625 * 0.75, 1e-13);
}

TEST(BinomialPmf, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 4, 1.0), 0.0);
}

TEST(BinomialPmf, OutsideSupportIsZero) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, -1, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 6, 0.3), 0.0);
}

TEST(BinomialPmf, InvalidArgsThrow) {
  EXPECT_THROW(binomial_pmf(-1, 0, 0.5), InvalidArgument);
  EXPECT_THROW(binomial_pmf(5, 2, -0.1), InvalidArgument);
  EXPECT_THROW(binomial_pmf(5, 2, 1.1), InvalidArgument);
}

TEST(BinomialPmf, NoUnderflowAtModerateSizes) {
  // Direct products would underflow around n=2000, log-space must not.
  const double v = binomial_pmf(2000, 1000, 0.5);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

}  // namespace
}  // namespace burstq
