// Tests for victim and target selection of the migration policy.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/migration.h"

namespace burstq {
namespace {

TEST(SelectVictim, PrefersLargestOnVm) {
  const std::vector<std::size_t> on_pm{0, 1, 2};
  const std::vector<Resource> demand{5.0, 20.0, 12.0};
  const std::vector<VmState> state{VmState::kOff, VmState::kOn,
                                   VmState::kOn};
  const auto v = select_victim(on_pm, demand, state);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, VmId{1});
}

TEST(SelectVictim, FallsBackToLargestDemandWhenAllOff) {
  const std::vector<std::size_t> on_pm{0, 1};
  const std::vector<Resource> demand{5.0, 9.0};
  const std::vector<VmState> state{VmState::kOff, VmState::kOff};
  const auto v = select_victim(on_pm, demand, state);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, VmId{1});
}

TEST(SelectVictim, EmptyPmReturnsNullopt) {
  const std::vector<std::size_t> empty;
  const std::vector<Resource> demand{1.0};
  const std::vector<VmState> state{VmState::kOff};
  EXPECT_FALSE(select_victim(empty, demand, state).has_value());
}

TEST(SelectVictim, OnBeatsLargerOffDemand) {
  // A small ON VM is preferred over a big OFF one (the spike is what
  // local resizing could not absorb).
  const std::vector<std::size_t> on_pm{0, 1};
  const std::vector<Resource> demand{50.0, 8.0};
  const std::vector<VmState> state{VmState::kOff, VmState::kOn};
  EXPECT_EQ(*select_victim(on_pm, demand, state), VmId{1});
}

TEST(SelectTarget, FirstFitByObservedLoad) {
  const std::vector<Resource> load{90.0, 50.0, 10.0};
  const std::vector<Resource> cap{100.0, 100.0, 100.0};
  const std::vector<std::size_t> count{3, 3, 1};
  const auto t = select_target(PmId{0}, 30.0, load, cap, count, 16);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, PmId{1});  // PM1 is the first with room (50+30 <= 100)
}

TEST(SelectTarget, SkipsSourcePm) {
  const std::vector<Resource> load{0.0, 90.0};
  const std::vector<Resource> cap{100.0, 100.0};
  const std::vector<std::size_t> count{0, 3};
  const auto t = select_target(PmId{0}, 5.0, load, cap, count, 16);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, PmId{1});  // the only non-source option that fits (90+5)
}

TEST(SelectTarget, SkipsFullVmCount) {
  const std::vector<Resource> load{90.0, 10.0};
  const std::vector<Resource> cap{100.0, 100.0};
  const std::vector<std::size_t> count{1, 16};
  EXPECT_FALSE(
      select_target(PmId{0}, 5.0, load, cap, count, 16).has_value());
}

TEST(SelectTarget, NoCapacityAnywhere) {
  const std::vector<Resource> load{95.0, 99.0};
  const std::vector<Resource> cap{100.0, 100.0};
  const std::vector<std::size_t> count{2, 2};
  EXPECT_FALSE(
      select_target(PmId{0}, 10.0, load, cap, count, 16).has_value());
}

TEST(SelectTarget, IdleDeceptionScenario) {
  // A PM that is momentarily idle (all hosted VMs OFF) looks like a great
  // target even if it is packed to the brim by Rb — the mechanism behind
  // the paper's cycle migration.  The policy must pick it (that is the
  // observed behaviour being modeled, not a bug).
  const std::vector<Resource> load{100.0, 20.0};
  const std::vector<Resource> cap{100.0, 100.0};
  const std::vector<std::size_t> count{4, 10};  // PM1 crowded but quiet
  const auto t = select_target(PmId{0}, 15.0, load, cap, count, 16);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, PmId{1});
}

TEST(MigrationPolicy, Validation) {
  MigrationPolicy ok;
  EXPECT_NO_THROW(ok.validate());
  MigrationPolicy bad = ok;
  bad.rho = 1.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.cvr_window = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.max_vms_per_pm = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(SelectTarget, MismatchedSpansThrow) {
  const std::vector<Resource> load{1.0};
  const std::vector<Resource> cap{1.0, 2.0};
  const std::vector<std::size_t> count{1};
  EXPECT_THROW(select_target(PmId{0}, 1.0, load, cap, count, 4),
               InvalidArgument);
}

}  // namespace
}  // namespace burstq
