// Tests for the pluggable victim/target migration policies, including
// the reservation-aware scheduler extension.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"
#include "sim/migration.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance policy_instance() {
  // Three VMs with distinct rb/re so each victim policy picks another VM.
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 20.0, 2.0},   // largest rb, smallest re
              VmSpec{kP, 5.0, 15.0},   // smallest rb, largest re
              VmSpec{kP, 10.0, 8.0}};  // middle
  inst.pms = {PmSpec{90.0}, PmSpec{90.0}};
  return inst;
}

TEST(VictimPolicy, LargestOnDemandDelegates) {
  const auto inst = policy_instance();
  const std::vector<std::size_t> on_pm{0, 1, 2};
  const std::vector<Resource> demand{20.0, 20.0, 18.0};
  const std::vector<VmState> state{VmState::kOff, VmState::kOn,
                                   VmState::kOn};
  const auto v = select_victim_policy(VictimSelection::kLargestOnDemand,
                                      inst, on_pm, demand, state);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, VmId{1});  // the largest-demand ON VM
}

TEST(VictimPolicy, SmallestRbPicksCheapestMove) {
  const auto inst = policy_instance();
  const std::vector<std::size_t> on_pm{0, 1, 2};
  const std::vector<Resource> demand{20.0, 5.0, 10.0};
  const std::vector<VmState> state(3, VmState::kOff);
  const auto v = select_victim_policy(VictimSelection::kSmallestRb, inst,
                                      on_pm, demand, state);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, VmId{1});  // rb = 5 is the smallest
}

TEST(VictimPolicy, LargestRePicksBurstCulprit) {
  const auto inst = policy_instance();
  const std::vector<std::size_t> on_pm{0, 1, 2};
  const std::vector<Resource> demand{20.0, 5.0, 10.0};
  const std::vector<VmState> state(3, VmState::kOff);
  const auto v = select_victim_policy(VictimSelection::kLargestRe, inst,
                                      on_pm, demand, state);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, VmId{1});  // re = 15 is the largest
}

TEST(VictimPolicy, EmptyPmNullopt) {
  const auto inst = policy_instance();
  const std::vector<std::size_t> empty;
  const std::vector<Resource> demand{1.0, 1.0, 1.0};
  const std::vector<VmState> state(3, VmState::kOff);
  for (auto policy :
       {VictimSelection::kLargestOnDemand, VictimSelection::kSmallestRb,
        VictimSelection::kLargestRe}) {
    EXPECT_FALSE(
        select_victim_policy(policy, inst, empty, demand, state).has_value());
  }
}

ProblemInstance sim_instance(std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(80, 80, kP, InstanceRanges{}, rng);
}

TEST(SchedulerPolicy, AllPolicyCombinationsRunClean) {
  const auto inst = sim_instance(1);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());
  for (auto victim :
       {VictimSelection::kLargestOnDemand, VictimSelection::kSmallestRb,
        VictimSelection::kLargestRe}) {
    for (auto target :
         {TargetSelection::kObservedLoad, TargetSelection::kReservationAware}) {
      SimConfig cfg;
      cfg.slots = 40;
      cfg.policy.victim = victim;
      cfg.policy.target = target;
      ClusterSimulator sim(inst, placed.placement, cfg, Rng(2));
      const auto rep = sim.run();
      EXPECT_EQ(rep.pms_used_timeline.size(), 40u);
      EXPECT_EQ(sim.placement().vms_assigned(), inst.n_vms());
    }
  }
}

TEST(SchedulerPolicy, ReservationAwareTargetsSatisfyEq17) {
  const auto inst = sim_instance(3);
  const auto placed = ffd_by_normal(inst);  // over-tight: will migrate
  ASSERT_TRUE(placed.complete());
  SimConfig cfg;
  cfg.slots = 100;
  cfg.policy.target = TargetSelection::kReservationAware;
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(4));
  const auto rep = sim.run();

  // Every successful migration target, at the moment of the move, kept
  // Eq. 17 satisfiable; verify the weaker post-hoc property that targets
  // never exceeded the VM cap and that migrations did happen.
  EXPECT_GT(rep.total_migrations, 0u);
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_LE(sim.placement().count_on(PmId{j}),
              cfg.policy.max_vms_per_pm + 1);
}

TEST(SchedulerPolicy, ReservationAwareBreaksCycleMigration) {
  // The burstiness-aware scheduler should need fewer follow-up
  // migrations than the idle-deception-prone observed-load scheduler on
  // RB packings: once a VM lands on a PM with genuine (reservation)
  // headroom it does not bounce again.
  double observed = 0.0;
  double aware = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = sim_instance(100 + seed);
    const auto placed = ffd_by_normal(inst);
    ASSERT_TRUE(placed.complete());
    SimConfig cfg;
    cfg.slots = 100;
    cfg.policy.target = TargetSelection::kObservedLoad;
    ClusterSimulator a(inst, placed.placement, cfg, Rng(7 + seed));
    observed += static_cast<double>(a.run().total_migrations);
    cfg.policy.target = TargetSelection::kReservationAware;
    ClusterSimulator b(inst, placed.placement, cfg, Rng(7 + seed));
    aware += static_cast<double>(b.run().total_migrations);
  }
  // Not necessarily dramatic per seed, but the aggregate must not be
  // worse by more than noise, and typically is clearly better.
  EXPECT_LE(aware, observed * 1.1);
}

TEST(SchedulerPolicy, QueuePlacementUnaffectedByTargetPolicy) {
  // QUEUE placements barely migrate, so the target policy is moot there.
  const auto inst = sim_instance(9);
  const auto placed = queuing_ffd(inst).result;
  ASSERT_TRUE(placed.complete());
  for (auto target :
       {TargetSelection::kObservedLoad, TargetSelection::kReservationAware}) {
    SimConfig cfg;
    cfg.slots = 100;
    cfg.policy.target = target;
    ClusterSimulator sim(inst, placed.placement, cfg, Rng(10));
    EXPECT_LT(sim.run().total_migrations, 10u);
  }
}

}  // namespace
}  // namespace burstq
