// Tests for the structured event log and its JSONL reader: field typing,
// level gating, JSON escaping, and write -> parse round trips.

#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "obs/event_log.h"
#include "obs/jsonl.h"

namespace burstq::obs {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(EventLevel, Parsing) {
  EXPECT_EQ(parse_event_level("off"), EventLevel::kOff);
  EXPECT_EQ(parse_event_level("decisions"), EventLevel::kDecisions);
  EXPECT_EQ(parse_event_level("detail"), EventLevel::kDetail);
  EXPECT_EQ(parse_event_level("0"), EventLevel::kOff);
  EXPECT_EQ(parse_event_level("2"), EventLevel::kDetail);
  EXPECT_THROW(parse_event_level("verbose"), InvalidArgument);
}

TEST(JsonEscape, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
}

TEST(EventLog, ClosedLogIsDisabledAndDropsEvents) {
  EventLog log;
  EXPECT_FALSE(log.enabled(EventLevel::kDecisions));
  log.emit(EventLevel::kDecisions, "dropped", {{"x", 1}});
  EXPECT_EQ(log.events_written(), 0u);
}

TEST(EventLog, LevelGating) {
  const std::string path = temp_path("gating.jsonl");
  EventLog log;
  log.open(path, EventFormat::kJsonl, EventLevel::kDecisions);
  EXPECT_TRUE(log.enabled(EventLevel::kDecisions));
  EXPECT_FALSE(log.enabled(EventLevel::kDetail));
  log.emit(EventLevel::kDecisions, "kept", {});
  log.emit(EventLevel::kDetail, "dropped", {});
  log.close();
  EXPECT_FALSE(log.enabled(EventLevel::kDecisions));
  const auto events = read_events_jsonl(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "kept");
}

TEST(EventLog, JsonlRoundTripPreservesTypesAndValues) {
  const std::string path = temp_path("roundtrip.jsonl");
  EventLog log;
  log.open(path, EventFormat::kJsonl, EventLevel::kDetail);
  log.emit(EventLevel::kDecisions, "mixed",
           {{"i", -42},
            {"u", std::size_t{7}},
            {"d", 0.125},
            {"yes", true},
            {"no", false},
            {"s", "a \"quoted\"\nstring"}});
  log.emit(EventLevel::kDetail, "tiny", {{"t", 0}});
  log.close();
  EXPECT_EQ(log.events_written(), 2u);

  const auto events = read_events_jsonl(path);
  ASSERT_EQ(events.size(), 2u);
  const RecordedEvent& e = events[0];
  EXPECT_EQ(e.kind, "mixed");
  EXPECT_EQ(e.integer("i"), -42);
  EXPECT_EQ(e.integer("u"), 7);
  EXPECT_DOUBLE_EQ(e.num("d"), 0.125);
  EXPECT_TRUE(e.boolean("yes"));
  EXPECT_FALSE(e.boolean("no", true));
  EXPECT_EQ(e.str("s"), "a \"quoted\"\nstring");
  EXPECT_FALSE(e.has("absent"));
  EXPECT_EQ(e.integer("absent", -1), -1);
  EXPECT_EQ(events[1].kind, "tiny");
}

TEST(EventLog, NonFiniteDoublesBecomeNull) {
  const std::string path = temp_path("nonfinite.jsonl");
  EventLog log;
  log.open(path, EventFormat::kJsonl, EventLevel::kDetail);
  log.emit(EventLevel::kDecisions, "nan",
           {{"v", std::numeric_limits<double>::quiet_NaN()}});
  log.close();
  const auto events = read_events_jsonl(path);
  ASSERT_EQ(events.size(), 1u);
  const EventValue* v = events[0].find("v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->tag, EventValue::Tag::kNull);
}

TEST(EventLog, CsvLongFormat) {
  const std::string path = temp_path("events.csv");
  EventLog log;
  log.open(path, EventFormat::kCsv, EventLevel::kDetail);
  log.emit(EventLevel::kDecisions, "row", {{"a", 1}, {"b", "x,y"}});
  log.close();
  const std::string text = slurp(path);
  EXPECT_NE(text.find("id,kind,key,value"), std::string::npos);
  EXPECT_NE(text.find("row"), std::string::npos);
  // The comma-bearing value must be quoted to stay one CSV field.
  EXPECT_NE(text.find("\"x,y\""), std::string::npos);
}

TEST(EventLog, RunLabelRoundTrip) {
  EventLog log;
  EXPECT_EQ(log.run_label(), "");
  log.set_run_label("fig6/QUEUE");
  EXPECT_EQ(log.run_label(), "fig6/QUEUE");
}

TEST(ParseEventLine, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_event_line("", &error).has_value());
  EXPECT_TRUE(error.empty());  // blank line is not an error
  EXPECT_FALSE(parse_event_line("not json", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_event_line("{\"kind\":\"x\",\"v\":[1]}", &error)
                   .has_value());
  EXPECT_FALSE(parse_event_line("{\"kind\":\"x\"", &error).has_value());
}

TEST(ParseEventLine, ParsesEscapesAndNumbers) {
  const auto e = parse_event_line(
      "{\"kind\":\"k\",\"s\":\"a\\u0041\\n\",\"n\":-1.5e2,\"b\":true,"
      "\"z\":null}");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->kind, "k");
  EXPECT_EQ(e->str("s"), "aA\n");
  EXPECT_DOUBLE_EQ(e->num("n"), -150.0);
  EXPECT_TRUE(e->boolean("b"));
  ASSERT_NE(e->find("z"), nullptr);
  EXPECT_EQ(e->find("z")->tag, EventValue::Tag::kNull);
}

TEST(ReadEventsJsonl, MissingFileThrows) {
  EXPECT_THROW(read_events_jsonl(temp_path("does_not_exist.jsonl")),
               InvalidArgument);
}

// Seed-pure fuzz-style round trip: adversarial strings (unicode bytes,
// embedded quotes/backslashes/newlines/control bytes, empty values) must
// survive writer escaping and reader parsing in both text sinks.
namespace {

std::string fuzz_string(Rng& rng) {
  static const std::string_view pieces[] = {
      "",        "\"",      "\\",        "\\\\\"",   "\n",  "\r\n",
      "\t",      ",",       ",,",        "a,b\"c\n", "\x01", "\x1f",
      "héllo",   "Ω≈ç√∫",  "日本語",    "🌀🌀",     " ",   "null",
      "true",    "-1.5e3",  "0",         "id,kind",  "{}",  "}{",
      "end\\"};
  std::string out;
  const std::size_t parts = rng.next_u64() % 4;
  for (std::size_t i = 0; i <= parts; ++i)
    out += pieces[rng.next_u64() % std::size(pieces)];
  return out;
}

}  // namespace

TEST(EventLogFuzz, JsonlEscapingRoundTripsAdversarialStrings) {
  const std::string path = temp_path("fuzz.jsonl");
  Rng rng(20240809);  // seed-pure: same strings every run
  std::vector<std::pair<std::string, std::string>> emitted;  // key, value
  EventLog log;
  log.open(path, EventFormat::kJsonl, EventLevel::kDetail);
  for (int i = 0; i < 300; ++i) {
    std::string key = fuzz_string(rng);
    if (key == "kind" || key.empty()) key = "k" + key;
    const std::string value = fuzz_string(rng);
    log.emit(EventLevel::kDetail, "fuzz", {{key, std::string_view(value)}});
    emitted.emplace_back(std::move(key), value);
  }
  log.close();

  const auto events = read_events_jsonl(path);
  ASSERT_EQ(events.size(), emitted.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(events[i].fields.size(), 1u) << i;
    EXPECT_EQ(events[i].fields[0].first, emitted[i].first) << i;
    ASSERT_EQ(events[i].fields[0].second.tag, EventValue::Tag::kString);
    EXPECT_EQ(events[i].fields[0].second.str, emitted[i].second) << i;
  }
}

TEST(EventLogFuzz, CsvEscapingRoundTripsAdversarialStrings) {
  const std::string path = temp_path("fuzz.csv");
  Rng rng(424242);
  std::vector<std::pair<std::string, std::string>> emitted;
  EventLog log;
  log.open(path, EventFormat::kCsv, EventLevel::kDetail);
  for (int i = 0; i < 300; ++i) {
    std::string key = "k";  // (not "k" + …: GCC 12 -Wrestrict misfires)
    key += fuzz_string(rng);
    const std::string value = fuzz_string(rng);
    log.emit(EventLevel::kDetail, "fuzz", {{key, std::string_view(value)}});
    emitted.emplace_back(key, value);
  }
  log.close();

  const auto events = read_events_csv(path);
  ASSERT_EQ(events.size(), emitted.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, "fuzz");
    ASSERT_EQ(events[i].fields.size(), 1u) << i;
    EXPECT_EQ(events[i].fields[0].first, emitted[i].first) << i;
    EXPECT_EQ(events[i].fields[0].second.str, emitted[i].second) << i;
  }
}

TEST(ReadEventsCsv, RoundTripsQuotedFieldsAndMultipleEvents) {
  const std::string path = temp_path("long.csv");
  EventLog log;
  log.open(path, EventFormat::kCsv, EventLevel::kDetail);
  log.emit(EventLevel::kDecisions, "alpha",
           {{"plain", "x"}, {"tricky", "a,\"b\"\nc"}, {"empty", ""}});
  log.emit(EventLevel::kDecisions, "beta", {{"n", 42}});
  log.close();

  const auto events = read_events_csv(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "alpha");
  ASSERT_EQ(events[0].fields.size(), 3u);
  EXPECT_EQ(events[0].str("plain"), "x");
  EXPECT_EQ(events[0].str("tricky"), "a,\"b\"\nc");
  EXPECT_EQ(events[0].str("empty"), "");
  EXPECT_EQ(events[1].kind, "beta");
  // CSV is string-typed: numbers come back as their text form.
  EXPECT_EQ(events[1].str("n"), "42");
}

TEST(ReadEventsCsv, RejectsMalformedFiles) {
  const std::string bad_header = temp_path("bad_header.csv");
  {
    std::ofstream out(bad_header);
    out << "wrong,header\n";
  }
  EXPECT_THROW(read_events_csv(bad_header), InvalidArgument);

  const std::string no_kind_row = temp_path("no_kind_row.csv");
  {
    std::ofstream out(no_kind_row);
    out << "id,kind,key,value\n0,k,key,value\n";
  }
  EXPECT_THROW(read_events_csv(no_kind_row), InvalidArgument);

  EXPECT_THROW(read_events_csv(temp_path("missing.csv")), InvalidArgument);
}

}  // namespace
}  // namespace burstq::obs
