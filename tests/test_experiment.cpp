// Tests for the repeated-trial experiment runner.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"
#include "placement/baselines.h"

namespace burstq {
namespace {

InstanceFactory small_factory() {
  return [](Rng& rng) {
    return table_i_instance(SpikePattern::kEqual, 30, 30,
                            paper_onoff_params(), rng);
  };
}

PlacementFactory peak_placer() {
  return [](const ProblemInstance& inst) { return ffd_by_peak(inst); };
}

TEST(RunTrials, CollectsOneSamplePerTrial) {
  TrialConfig cfg;
  cfg.trials = 5;
  cfg.sim.slots = 20;
  const auto s = run_trials(small_factory(), peak_placer(), cfg);
  EXPECT_EQ(s.migrations.count(), 5u);
  EXPECT_EQ(s.pms_end.count(), 5u);
  EXPECT_EQ(s.energy_wh.count(), 5u);
  EXPECT_EQ(s.pms_initial.count(), 5u);
}

TEST(RunTrials, DeterministicAcrossThreadCounts) {
  TrialConfig cfg;
  cfg.trials = 6;
  cfg.sim.slots = 15;
  cfg.base_seed = 7;
  cfg.threads = 1;
  const auto serial = run_trials(small_factory(), peak_placer(), cfg);
  cfg.threads = 4;
  const auto parallel = run_trials(small_factory(), peak_placer(), cfg);
  EXPECT_DOUBLE_EQ(serial.pms_end.mean(), parallel.pms_end.mean());
  EXPECT_DOUBLE_EQ(serial.energy_wh.mean(), parallel.energy_wh.mean());
  EXPECT_DOUBLE_EQ(serial.migrations.mean(), parallel.migrations.mean());
}

TEST(RunTrials, DifferentSeedsDiffer) {
  TrialConfig a;
  a.trials = 4;
  a.sim.slots = 15;
  a.base_seed = 1;
  TrialConfig b = a;
  b.base_seed = 2;
  const auto ra = run_trials(small_factory(), peak_placer(), a);
  const auto rb = run_trials(small_factory(), peak_placer(), b);
  // Energy depends on the instance draw; different seeds almost surely
  // give different totals.
  EXPECT_NE(ra.energy_wh.mean(), rb.energy_wh.mean());
}

TEST(RunTrials, PeakPlacementsNeverMigrate) {
  TrialConfig cfg;
  cfg.trials = 4;
  cfg.sim.slots = 40;
  const auto s = run_trials(small_factory(), peak_placer(), cfg);
  EXPECT_DOUBLE_EQ(s.migrations.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.max_cvr.max(), 0.0);
}

TEST(RunTrials, ZeroTrialsThrows) {
  TrialConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(run_trials(small_factory(), peak_placer(), cfg),
               InvalidArgument);
}

TEST(RunTrials, IncompletePlacementFails) {
  TrialConfig cfg;
  cfg.trials = 1;
  cfg.sim.slots = 5;
  const auto starved = [](Rng& rng) {
    // 50 big VMs, 1 PM: impossible to place completely.
    ProblemInstance inst = table_i_instance(
        SpikePattern::kEqual, 50, 1, paper_onoff_params(), rng);
    return inst;
  };
  EXPECT_THROW(run_trials(starved, peak_placer(), cfg), InternalError);
}

TEST(SummarizeCell, Format) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(summarize_cell(s, 1), "2.0 (1.0..3.0)");
  EXPECT_EQ(summarize_cell(s, 0), "2 (1..3)");
}

}  // namespace
}  // namespace burstq
