// SnapshotStore: atomic rename-into-place, newest-wins loading, loud
// corruption failure with a named byte offset, and snapshot/WAL pair
// pruning (durable/snapshot.h).

#include "durable/snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "durable/durable.h"
#include "durable/state_codec.h"
#include "durable/wal.h"

namespace burstq::durable {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("burstq_snap_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

TEST_F(SnapshotTest, ConfigValidation) {
  DurabilityConfig cfg;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // empty dir
  cfg.dir = "somewhere";
  cfg.snapshot_every = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.snapshot_every = 25;
  EXPECT_NO_THROW(cfg.validate());
}

TEST_F(SnapshotTest, RoundTripsNewestSnapshot) {
  SnapshotStore store(dir_.string(), /*fsync=*/false);
  store.write_snapshot(0, "alpha");
  store.write_snapshot(50, "bravo");
  store.write_snapshot(25, "charlie");

  const auto loaded = store.load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->slot, 50u);
  EXPECT_EQ(loaded->blob, "bravo");
  EXPECT_EQ(loaded->path, store.snapshot_path(50));
  EXPECT_EQ(store.snapshot_slots(),
            (std::vector<std::size_t>{0, 25, 50}));
}

TEST_F(SnapshotTest, EmptyDirLoadsNothing) {
  SnapshotStore store(dir_.string(), false);
  EXPECT_FALSE(store.load_newest().has_value());
  EXPECT_TRUE(store.snapshot_slots().empty());
}

TEST_F(SnapshotTest, NoTmpFileSurvivesWrite) {
  SnapshotStore store(dir_.string(), false);
  store.write_snapshot(7, std::string(10000, 'x'));
  for (const auto& entry : fs::directory_iterator(dir_))
    EXPECT_EQ(entry.path().extension(), ".bqss")
        << entry.path() << " left behind";
}

TEST_F(SnapshotTest, BitFlipFailsLoudlyWithByteOffset) {
  SnapshotStore store(dir_.string(), false);
  const std::string blob(256, 'z');
  store.write_snapshot(3, blob);

  const std::string path = store.snapshot_path(3);
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  std::string damaged = data;
  damaged[data.size() - 5] = static_cast<char>(damaged[data.size() - 5] ^ 1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  }

  try {
    store.load_newest();
    FAIL() << "corrupt snapshot must throw";
  } catch (const CorruptState& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("corrupt at byte"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, TruncationAndBadMagicFailLoudly) {
  SnapshotStore store(dir_.string(), false);
  store.write_snapshot(1, "payload-bytes");
  const std::string path = store.snapshot_path(1);
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }

  const auto rewrite = [&](const std::string& d) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(d.data(), static_cast<std::streamsize>(d.size()));
  };

  rewrite(data.substr(0, data.size() - 1));  // truncated blob
  EXPECT_THROW(store.load_newest(), CorruptState);
  rewrite(data.substr(0, 10));  // truncated header
  EXPECT_THROW(store.load_newest(), CorruptState);
  std::string bad_magic = data;
  bad_magic[1] = 'x';
  rewrite(bad_magic);
  EXPECT_THROW(store.load_newest(), CorruptState);
  rewrite(data);  // intact again: loads fine
  EXPECT_EQ(store.load_newest()->blob, "payload-bytes");
}

TEST_F(SnapshotTest, PruneKeepsNewestPairs) {
  SnapshotStore store(dir_.string(), false);
  for (const std::size_t slot : {0u, 25u, 50u, 75u}) {
    store.write_snapshot(slot, "s" + std::to_string(slot));
    WalWriter wal(store.wal_path(slot), slot, false);
    wal.commit(slot + 1, 0);
  }
  store.prune(2);
  EXPECT_EQ(store.snapshot_slots(), (std::vector<std::size_t>{50, 75}));
  EXPECT_FALSE(fs::exists(store.wal_path(0)));
  EXPECT_FALSE(fs::exists(store.wal_path(25)));
  EXPECT_TRUE(fs::exists(store.wal_path(50)));
  EXPECT_TRUE(fs::exists(store.wal_path(75)));
}

TEST_F(SnapshotTest, StateCodecRoundTrip) {
  StateWriter w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(1ull << 60);
  w.varint(300);
  w.svarint(-5);
  w.f64(-0.125);
  w.boolean(true);
  w.str("hello");
  w.size_vec({1, 2, 3});
  w.f64_vec({0.5, -1.5});

  StateReader r(w.data(), "test blob");
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 1ull << 60);
  EXPECT_EQ(r.varint(), 300u);
  EXPECT_EQ(r.svarint(), -5);
  EXPECT_EQ(r.f64(), -0.125);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.size_vec(), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{0.5, -1.5}));
  EXPECT_NO_THROW(r.expect_done());

  StateReader torn(std::string_view(w.data()).substr(0, 3), "torn blob");
  torn.u8();
  try {
    torn.u32();
    FAIL() << "truncated read must throw";
  } catch (const CorruptState& e) {
    EXPECT_NE(std::string(e.what()).find("torn blob: corrupt at byte 1"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace burstq::durable
