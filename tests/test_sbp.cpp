// Tests for the stochastic-bin-packing baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/placement.h"
#include "placement/queuing_ffd.h"
#include "placement/sbp.h"
#include "prob/normal.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};  // q = 0.1

ProblemInstance typical_instance(std::size_t n, std::size_t m,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n, m, kP, InstanceRanges{}, rng);
}

TEST(SbpMoments, MatchOnOffLaw) {
  const VmSpec v{kP, 10.0, 5.0};
  EXPECT_NEAR(sbp_mean_demand(v), 10.0 + 0.1 * 5.0, 1e-12);
  EXPECT_NEAR(sbp_demand_variance(v), 0.1 * 0.9 * 25.0, 1e-12);
}

TEST(SbpMoments, ZeroSpikeIsDeterministic) {
  const VmSpec v{kP, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(sbp_mean_demand(v), 10.0);
  EXPECT_DOUBLE_EQ(sbp_demand_variance(v), 0.0);
}

TEST(SbpNormal, CompleteOnAmpleInstance) {
  const auto inst = typical_instance(200, 150, 1);
  const auto r = sbp_normal(inst);
  EXPECT_TRUE(r.complete());
}

TEST(SbpNormal, EffectiveSizeRuleHolds) {
  const auto inst = typical_instance(200, 150, 2);
  const double eps = 0.01;
  const auto r = sbp_normal(inst, eps);
  ASSERT_TRUE(r.complete());
  const double z = normal_quantile(1.0 - eps);
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    const PmId pm{j};
    if (r.placement.count_on(pm) == 0) continue;
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t i : r.placement.vms_on(pm)) {
      mean += sbp_mean_demand(inst.vms[i]);
      var += sbp_demand_variance(inst.vms[i]);
    }
    EXPECT_LE(mean + z * std::sqrt(var),
              inst.pms[j].capacity * (1.0 + 1e-9));
  }
}

TEST(SbpNormal, BetweenRbAndRpInPmCount) {
  // SBP packs tighter than peak provisioning (it discounts rare spikes)
  // but looser than pure Rb packing (it budgets variance).  Averaged over
  // seeds the ordering is robust.
  double rb = 0.0;
  double sbp = 0.0;
  double rp = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = typical_instance(200, 150, 100 + seed);
    rb += static_cast<double>(ffd_by_normal(inst).pms_used());
    sbp += static_cast<double>(sbp_normal(inst).pms_used());
    rp += static_cast<double>(ffd_by_peak(inst).pms_used());
  }
  EXPECT_LT(rb, sbp);
  EXPECT_LT(sbp, rp);
}

TEST(SbpNormal, TighterEpsilonUsesMorePms) {
  const auto inst = typical_instance(300, 250, 3);
  const auto loose = sbp_normal(inst, 0.1);
  const auto tight = sbp_normal(inst, 0.001);
  ASSERT_TRUE(loose.complete());
  ASSERT_TRUE(tight.complete());
  EXPECT_GE(tight.pms_used(), loose.pms_used());
}

TEST(SbpNormal, CvrWorseThanQueueAtSameTarget) {
  // SBP at epsilon = rho versus QUEUE at rho: SBP ignores spike duration
  // (time correlation), so its violation *episodes* cluster, and its
  // per-PM CVR is generally higher than QUEUE's on bursty workloads.
  const auto inst = typical_instance(250, 200, 4);
  const auto sbp = sbp_normal(inst, 0.01);
  const auto queue = queuing_ffd(inst);
  ASSERT_TRUE(sbp.complete());
  ASSERT_TRUE(queue.result.complete());
  const auto cvr_s = simulate_cvr(inst, sbp.placement, 8000, Rng(5));
  const auto cvr_q = simulate_cvr(inst, queue.result.placement, 8000,
                                  Rng(5));
  double max_s = 0.0;
  double max_q = 0.0;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    max_s = std::max(max_s, cvr_s[j]);
    max_q = std::max(max_q, cvr_q[j]);
  }
  // QUEUE's worst PM stays near rho; SBP's packs more aggressively and
  // overshoots on at least some PMs.
  EXPECT_LE(max_q, 0.03);
  EXPECT_GE(max_s, max_q);
}

TEST(SbpNormal, InvalidEpsilonThrows) {
  const auto inst = typical_instance(5, 5, 6);
  EXPECT_THROW(sbp_normal(inst, 0.0), InvalidArgument);
  EXPECT_THROW(sbp_normal(inst, 1.0), InvalidArgument);
}

TEST(SbpNormal, RespectsVmCap) {
  const auto inst = typical_instance(40, 40, 7);
  const auto r = sbp_normal(inst, 0.01, 3);
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_LE(r.placement.count_on(PmId{j}), 3u);
}

}  // namespace
}  // namespace burstq
