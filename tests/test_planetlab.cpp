// Tests for PlanetLab-format trace import/export, violation-episode
// statistics and the chi-square helper.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "fit/estimator.h"
#include "fit/planetlab.h"
#include "prob/binomial.h"
#include "prob/combinatorics.h"
#include "sim/metrics.h"

namespace burstq {
namespace {

class PlanetLabTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/burstq_pl_test.txt";
  std::string path2_ = ::testing::TempDir() + "/burstq_pl_test2.txt";
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(path2_.c_str());
  }
};

TEST_F(PlanetLabTest, ReadsSimpleFile) {
  {
    std::ofstream out(path_);
    out << "10\n50\n 100 \n\n0\n";
  }
  const auto d = read_planetlab_file(path_, 0.2);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 10.0);
  EXPECT_DOUBLE_EQ(d[2], 20.0);
  EXPECT_DOUBLE_EQ(d[3], 0.0);
}

TEST_F(PlanetLabTest, RoundTrip) {
  const std::vector<double> demand{2.0, 10.0, 20.0, 4.8};
  write_planetlab_file(path_, demand, 0.2);
  const auto back = read_planetlab_file(path_, 0.2);
  ASSERT_EQ(back.size(), demand.size());
  for (std::size_t i = 0; i < demand.size(); ++i)
    EXPECT_NEAR(back[i], demand[i], 0.2);  // integer percent rounding
}

TEST_F(PlanetLabTest, MultiFileTruncatesToShortest) {
  {
    std::ofstream a(path_);
    a << "10\n20\n30\n40\n";
    std::ofstream b(path2_);
    b << "50\n60\n70\n";
  }
  const auto trace = read_planetlab_traces({path_, path2_}, 0.1);
  ASSERT_EQ(trace.size(), 3u);  // truncated to the shorter file
  ASSERT_EQ(trace[0].size(), 2u);
  EXPECT_DOUBLE_EQ(trace[2][0], 3.0);
  EXPECT_DOUBLE_EQ(trace[2][1], 7.0);
}

TEST_F(PlanetLabTest, RejectsMalformed) {
  {
    std::ofstream out(path_);
    out << "10\nbanana\n";
  }
  EXPECT_THROW(read_planetlab_file(path_), InvalidArgument);
  {
    std::ofstream out(path2_);
    out << "-5\n";
  }
  EXPECT_THROW(read_planetlab_file(path2_), InvalidArgument);
}

TEST_F(PlanetLabTest, RejectsEmptyAndMissing) {
  {
    std::ofstream out(path_);
  }
  EXPECT_THROW(read_planetlab_file(path_), InvalidArgument);
  EXPECT_THROW(read_planetlab_file("/nonexistent/pl.txt"), InvalidArgument);
  EXPECT_THROW(read_planetlab_traces({}), InvalidArgument);
}

TEST_F(PlanetLabTest, ImportedTraceFeedsEstimator) {
  // Export a synthetic ON-OFF series through the PlanetLab format, then
  // fit it back: levels recover within rounding error.
  ProblemInstance truth;
  truth.vms = {VmSpec{OnOffParams{0.05, 0.2}, 10.0, 10.0}};
  truth.pms = {PmSpec{100.0}};
  const auto trace = record_demand_trace(truth, 50000, Rng(1));
  std::vector<double> series(trace.size());
  for (std::size_t t = 0; t < trace.size(); ++t) series[t] = trace[t][0];
  write_planetlab_file(path_, series, 0.2);
  const auto imported = read_planetlab_file(path_, 0.2);
  const auto fit = fit_onoff_from_trace(imported);
  EXPECT_NEAR(fit.spec.rb, 10.0, 0.3);
  EXPECT_NEAR(fit.spec.re, 10.0, 0.5);
  EXPECT_NEAR(fit.spec.onoff.p_on, 0.05, 0.01);
}

TEST(ViolationEpisodes, HandComputed) {
  // pattern: 1 1 0 1 0 0 1 1 1  -> episodes {2, 1, 3}
  const std::vector<bool> v{true, true, false, true, false,
                            false, true, true, true};
  const auto s = violation_episodes(v);
  EXPECT_EQ(s.episodes, 3u);
  EXPECT_EQ(s.violated_slots, 6u);
  EXPECT_EQ(s.longest, 3u);
  EXPECT_NEAR(s.mean_length, 2.0, 1e-12);
}

TEST(ViolationEpisodes, NoViolations) {
  const auto s = violation_episodes({false, false, false});
  EXPECT_EQ(s.episodes, 0u);
  EXPECT_EQ(s.longest, 0u);
  EXPECT_DOUBLE_EQ(s.mean_length, 0.0);
}

TEST(ViolationEpisodes, AllViolated) {
  const auto s = violation_episodes(std::vector<bool>(5, true));
  EXPECT_EQ(s.episodes, 1u);
  EXPECT_EQ(s.longest, 5u);
  EXPECT_NEAR(s.mean_length, 5.0, 1e-12);
}

TEST(ChiSquare, UniformDataFitsUniformModel) {
  Rng rng(2);
  std::vector<std::size_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.next_below(10)];
  const std::vector<double> probs(10, 0.1);
  const auto r = chi_square_gof(counts, probs);
  EXPECT_EQ(r.degrees_of_freedom, 9u);
  // 99.9th percentile of chi2(9) ~ 27.9.
  EXPECT_LT(r.statistic, 27.9);
}

TEST(ChiSquare, DetectsWrongModel) {
  Rng rng(3);
  std::vector<std::size_t> counts(4, 0);
  // Sample Binomial(3, 0.5), test against Binomial(3, 0.2).
  for (int i = 0; i < 50000; ++i) {
    std::size_t x = 0;
    for (int b = 0; b < 3; ++b)
      if (rng.bernoulli(0.5)) ++x;
    ++counts[x];
  }
  std::vector<double> wrong(4);
  for (std::int64_t x = 0; x <= 3; ++x)
    wrong[static_cast<std::size_t>(x)] = binomial_pmf(3, x, 0.2);
  const auto r = chi_square_gof(counts, wrong);
  EXPECT_GT(r.statistic, 1000.0);
}

TEST(ChiSquare, PoolsTinyBins) {
  // A distribution with a vanishing tail bin must be pooled, not divide
  // by ~zero.
  const std::vector<std::size_t> counts{500, 499, 1};
  const std::vector<double> probs{0.5, 0.4999999, 1e-7};
  const auto r = chi_square_gof(counts, probs, 1e-4);
  EXPECT_LE(r.degrees_of_freedom, 1u);
  EXPECT_LT(r.statistic, 50.0);
}

TEST(ChiSquare, ValidatesInput) {
  EXPECT_THROW(chi_square_gof({1}, {1.0}), InvalidArgument);
  EXPECT_THROW(chi_square_gof({1, 2}, {0.5}), InvalidArgument);
  EXPECT_THROW(chi_square_gof({0, 0}, {0.5, 0.5}), InvalidArgument);
  EXPECT_THROW(chi_square_gof({1, 2}, {0.9, 0.3}), InvalidArgument);
}

TEST(ChiSquare, AggregateChainOccupancyPassesGof) {
  // The empirical theta occupancy must pass a chi-square test against
  // the closed-form Binomial stationary law — a sharper statistical
  // check than per-bin tolerance.
  const OnOffParams p{0.05, 0.15};
  const std::size_t k = 6;
  Rng rng(4);
  std::vector<OnOffChain> chains(k, OnOffChain(p));
  for (auto& c : chains) c.reset_stationary(rng);
  std::vector<std::size_t> counts(k + 1, 0);
  const std::size_t slots = 200000;
  for (std::size_t t = 0; t < slots; ++t) {
    std::size_t on = 0;
    for (auto& c : chains) {
      if (c.on()) ++on;
      c.step(rng);
    }
    ++counts[on];
  }
  const auto probs =
      binomial_pmf_vector(static_cast<std::int64_t>(k),
                          p.stationary_on_probability());
  const auto r = chi_square_gof(counts, probs);
  // Correlated samples inflate the statistic; the effective sample size
  // is slots * (1-r)/(1+r) with r = 0.8, a factor ~9.  A generous bound
  // still rejects gross disagreement.
  EXPECT_LT(r.statistic,
            9.0 * 22.5);  // 22.5 ~ chi2_{0.999}(6)
}

}  // namespace
}  // namespace burstq
