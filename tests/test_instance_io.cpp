// Tests for problem-instance CSV persistence.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "common/rng.h"
#include "fit/instance_io.h"

namespace burstq {
namespace {

class InstanceIoTest : public ::testing::Test {
 protected:
  std::string vm_path_ = ::testing::TempDir() + "/burstq_vms_test.csv";
  std::string pm_path_ = ::testing::TempDir() + "/burstq_pms_test.csv";
  void TearDown() override {
    std::remove(vm_path_.c_str());
    std::remove(pm_path_.c_str());
  }
};

TEST_F(InstanceIoTest, VmRoundTrip) {
  Rng rng(1);
  std::vector<VmSpec> vms;
  for (int i = 0; i < 50; ++i)
    vms.push_back(VmSpec{OnOffParams{rng.uniform(0.001, 0.5),
                                     rng.uniform(0.001, 0.5)},
                         rng.uniform(0, 30), rng.uniform(0, 30)});
  write_vm_specs_csv(vm_path_, vms);
  const auto back = read_vm_specs_csv(vm_path_);
  ASSERT_EQ(back.size(), vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].onoff.p_on, vms[i].onoff.p_on);
    EXPECT_DOUBLE_EQ(back[i].onoff.p_off, vms[i].onoff.p_off);
    EXPECT_DOUBLE_EQ(back[i].rb, vms[i].rb);
    EXPECT_DOUBLE_EQ(back[i].re, vms[i].re);
  }
}

TEST_F(InstanceIoTest, PmRoundTrip) {
  std::vector<PmSpec> pms{PmSpec{80.5}, PmSpec{100.0}, PmSpec{96.125}};
  write_pm_specs_csv(pm_path_, pms);
  const auto back = read_pm_specs_csv(pm_path_);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_DOUBLE_EQ(back[j].capacity, pms[j].capacity);
}

TEST_F(InstanceIoTest, RejectsInvalidSpecValues) {
  {
    std::ofstream out(vm_path_);
    out << "p_on,p_off,rb,re\n0.0,0.1,5,5\n";  // p_on = 0 invalid
  }
  EXPECT_THROW(read_vm_specs_csv(vm_path_), InvalidArgument);
}

TEST_F(InstanceIoTest, RejectsWrongArity) {
  {
    std::ofstream out(vm_path_);
    out << "p_on,p_off,rb,re\n0.01,0.09,5\n";
  }
  EXPECT_THROW(read_vm_specs_csv(vm_path_), InvalidArgument);
}

TEST_F(InstanceIoTest, RejectsGarbageNumbers) {
  {
    std::ofstream out(pm_path_);
    out << "capacity\nbanana\n";
  }
  EXPECT_THROW(read_pm_specs_csv(pm_path_), InvalidArgument);
}

TEST_F(InstanceIoTest, RejectsHeaderOnly) {
  {
    std::ofstream out(pm_path_);
    out << "capacity\n";
  }
  EXPECT_THROW(read_pm_specs_csv(pm_path_), InvalidArgument);
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW(read_vm_specs_csv("/nonexistent/vms.csv"), InvalidArgument);
}

TEST(InstanceIo, RefusesEmptyWrite) {
  EXPECT_THROW(write_vm_specs_csv("/tmp/x.csv", {}), InvalidArgument);
  EXPECT_THROW(write_pm_specs_csv("/tmp/x.csv", {}), InvalidArgument);
}

}  // namespace
}  // namespace burstq
