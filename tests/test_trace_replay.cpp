// Tests for trace-driven CVR replay.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"
#include "sim/trace_replay.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

TEST(TraceReplay, HandCheckedViolations) {
  // 2 VMs on 1 PM of capacity 10; three slots: loads 8, 12, 10.
  DemandTrace trace{{4.0, 4.0}, {6.0, 6.0}, {5.0, 5.0}};
  Placement p(2, 1);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  const auto rep = replay_trace_cvr(trace, p, {10.0});
  EXPECT_NEAR(rep.pm_cvr[0], 1.0 / 3.0, 1e-12);
  EXPECT_EQ(rep.slots, 3u);
  EXPECT_NEAR(rep.mean_cvr, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.max_cvr, 1.0 / 3.0, 1e-12);
}

TEST(TraceReplay, MatchesLiveSimulationOnSameTrace) {
  // Replaying a recorded trace must give the same per-PM CVR as
  // simulate_cvr when both consume the exact same demand sequence.
  Rng rng(5);
  const auto inst = random_instance(60, 50, kP, InstanceRanges{}, rng);
  const auto placed = queuing_ffd(inst).result;
  ASSERT_TRUE(placed.complete());

  const std::size_t slots = 3000;
  const auto trace = record_demand_trace(inst, slots, Rng(6));
  std::vector<Resource> caps;
  caps.reserve(inst.n_pms());
  for (const auto& pm : inst.pms) caps.push_back(pm.capacity);
  const auto replayed = replay_trace_cvr(trace, placed.placement, caps);
  const auto live = simulate_cvr(inst, placed.placement, slots, Rng(6));
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_NEAR(replayed.pm_cvr[j], live[j], 1e-12) << "pm " << j;
}

TEST(TraceReplay, EmptyPmsExcludedFromMean) {
  DemandTrace trace{{20.0}};
  Placement p(1, 3);
  p.assign(VmId{0}, PmId{1});
  const auto rep = replay_trace_cvr(trace, p, {10.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(rep.pm_cvr[0], 0.0);
  EXPECT_DOUBLE_EQ(rep.pm_cvr[1], 1.0);
  EXPECT_DOUBLE_EQ(rep.mean_cvr, 1.0);  // only PM1 hosts a VM
}

TEST(TraceReplay, ValidatesInput) {
  Placement p(2, 1);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  EXPECT_THROW(replay_trace_cvr({}, p, {10.0}), InvalidArgument);
  DemandTrace wrong_vms{{1.0}};
  EXPECT_THROW(replay_trace_cvr(wrong_vms, p, {10.0}), InvalidArgument);
  DemandTrace ok{{1.0, 1.0}};
  EXPECT_THROW(replay_trace_cvr(ok, p, {10.0, 20.0}), InvalidArgument);
  Placement partial(2, 1);
  partial.assign(VmId{0}, PmId{0});
  EXPECT_THROW(replay_trace_cvr(ok, partial, {10.0}), InvalidArgument);
}

TEST(TraceReplay, RaggedTraceThrows) {
  Placement p(2, 1);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  DemandTrace ragged{{1.0, 1.0}, {1.0}};
  EXPECT_THROW(replay_trace_cvr(ragged, p, {10.0}), InvalidArgument);
}

}  // namespace
}  // namespace burstq
