// WAL framing, torn-tail tolerance, and bit-flip recovery
// (durable/wal.h).  The contract under test: every committed group
// survives byte-exact, and ANY damage past the last valid group is
// silently discarded as a torn tail — never an exception, never a
// partial record.

#include "durable/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "durable/state_codec.h"

namespace burstq::durable {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("burstq_wal_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "wal-0.bqwl").string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string read_file() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }
  void write_file(const std::string& data) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  fs::path dir_;
  std::string path_;
};

std::string payload_bytes(std::uint64_t a, std::uint64_t b) {
  StateWriter w;
  w.varint(a);
  w.varint(b);
  return w.take();
}

TEST_F(WalTest, RoundTripsCommittedGroups) {
  std::string g0, g1;
  {
    WalWriter wal(path_, 10, /*fsync=*/false);
    wal.append(WalRecord::kMigrate, payload_bytes(3, 7));
    wal.append(WalRecord::kCrash, payload_bytes(1, 0));
    g0 = wal.commit(11, 0xABCD);
    g1 = wal.commit(12, 0x1234);  // empty group: a slot with no mutations
    EXPECT_EQ(wal.groups_committed(), 2u);
  }

  const WalScan scan = scan_wal(path_);
  ASSERT_TRUE(scan.present);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.base_slot, 10u);
  ASSERT_EQ(scan.groups.size(), 2u);

  EXPECT_EQ(scan.groups[0].slot, 11u);
  EXPECT_EQ(scan.groups[0].state_crc, 0xABCDu);
  ASSERT_EQ(scan.groups[0].records.size(), 2u);
  EXPECT_EQ(scan.groups[0].records[0].first, WalRecord::kMigrate);
  EXPECT_EQ(scan.groups[0].records[0].second, payload_bytes(3, 7));
  EXPECT_EQ(scan.groups[0].records[1].first, WalRecord::kCrash);
  EXPECT_EQ(scan.groups[0].bytes, g0);

  EXPECT_EQ(scan.groups[1].slot, 12u);
  EXPECT_TRUE(scan.groups[1].records.empty());
  EXPECT_EQ(scan.groups[1].bytes, g1);
  EXPECT_EQ(scan.valid_bytes, read_file().size());
}

TEST_F(WalTest, MissingFileScansEmpty) {
  const WalScan scan = scan_wal((dir_ / "absent.bqwl").string());
  EXPECT_FALSE(scan.present);
  EXPECT_FALSE(scan.torn);
  EXPECT_TRUE(scan.groups.empty());
}

TEST_F(WalTest, DiscardPendingDropsUncommittedRecords) {
  {
    WalWriter wal(path_, 0, false);
    wal.append(WalRecord::kMigrate, payload_bytes(1, 2));
    wal.discard_pending();  // killed slot: partial work must vanish
    wal.commit(1, 0);
  }
  const WalScan scan = scan_wal(path_);
  ASSERT_EQ(scan.groups.size(), 1u);
  EXPECT_TRUE(scan.groups[0].records.empty());
}

TEST_F(WalTest, TornTailKeepsValidPrefix) {
  std::uint64_t full_size = 0;
  std::uint64_t one_group_size = 0;
  {
    WalWriter wal(path_, 0, false);
    wal.append(WalRecord::kQueue, payload_bytes(5, 5));
    wal.commit(1, 1);
    one_group_size = wal.bytes_written();
    wal.append(WalRecord::kRecover, payload_bytes(6, 6));
    wal.commit(2, 2);
    full_size = wal.bytes_written();
  }
  const std::string data = read_file();
  ASSERT_EQ(data.size(), full_size);

  // Truncate at every byte boundary inside the second group: the first
  // group must always survive, the second must never half-appear.
  for (std::size_t cut = one_group_size; cut < full_size; ++cut) {
    write_file(data.substr(0, cut));
    const WalScan scan = scan_wal(path_);
    ASSERT_TRUE(scan.present) << "cut=" << cut;
    ASSERT_EQ(scan.groups.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(scan.groups[0].slot, 1u);
    EXPECT_EQ(scan.torn, cut != one_group_size) << "cut=" << cut;
    EXPECT_EQ(scan.valid_bytes, one_group_size) << "cut=" << cut;
  }
}

TEST_F(WalTest, BitFlipInTailGroupDiscardsOnlyThatGroup) {
  std::uint64_t one_group_size = 0;
  {
    WalWriter wal(path_, 0, false);
    wal.commit(1, 1);
    one_group_size = wal.bytes_written();
    wal.append(WalRecord::kAbort, payload_bytes(9, 9));
    wal.commit(2, 2);
  }
  std::string data = read_file();
  // Flip one bit in every byte of the trailing group (frame and payload).
  for (std::size_t i = one_group_size; i < data.size(); ++i) {
    std::string damaged = data;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x10);
    write_file(damaged);
    const WalScan scan = scan_wal(path_);
    ASSERT_TRUE(scan.present) << "byte=" << i;
    EXPECT_TRUE(scan.torn) << "byte=" << i;
    ASSERT_EQ(scan.groups.size(), 1u) << "byte=" << i;
    EXPECT_EQ(scan.groups[0].slot, 1u);
  }
}

TEST_F(WalTest, DamagedHeaderIsNotPresent) {
  { WalWriter wal(path_, 0, false); }
  std::string data = read_file();
  data[0] = 'X';
  write_file(data);
  const WalScan scan = scan_wal(path_);
  EXPECT_FALSE(scan.present);
  EXPECT_TRUE(scan.torn);
}

TEST_F(WalTest, CommitBytesAreDeterministic) {
  const std::string p = payload_bytes(4, 2);
  std::string first, second;
  {
    WalWriter wal(path_, 3, false);
    wal.append(WalRecord::kStall, p);
    first = wal.commit(4, 77);
  }
  {
    WalWriter wal(path_, 3, false);
    wal.append(WalRecord::kStall, p);
    second = wal.commit(4, 77);
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace burstq::durable
