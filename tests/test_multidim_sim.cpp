// Tests for the multi-dimensional CVR simulation.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/multidim.h"
#include "sim/multidim_sim.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

MultiProblemInstance make_instance(std::size_t n, std::size_t m,
                                   std::uint64_t seed) {
  Rng rng(seed);
  MultiProblemInstance inst;
  for (std::size_t i = 0; i < n; ++i) {
    MultiVmSpec v;
    v.onoff = kP;
    v.dims = 2;
    v.rb = {rng.uniform(2, 10), rng.uniform(2, 10)};
    v.re = {rng.uniform(2, 10), rng.uniform(2, 10)};
    inst.vms.push_back(v);
  }
  for (std::size_t j = 0; j < m; ++j) {
    MultiPmSpec p;
    p.dims = 2;
    p.capacity = {90.0, 90.0};
    inst.pms.push_back(p);
  }
  return inst;
}

TEST(MultidimSim, QueuePlacementBounded) {
  const auto inst = make_instance(100, 80, 1);
  const auto placed = multidim_queuing_first_fit(inst);
  ASSERT_TRUE(placed.unplaced.empty());
  const auto cvr =
      simulate_cvr_multidim(inst, placed.pm_of, 8000, Rng(2));
  double mean = 0.0;
  std::size_t used = 0;
  std::vector<bool> has_vm(inst.pms.size(), false);
  for (std::size_t pm : placed.pm_of) has_vm[pm] = true;
  for (std::size_t j = 0; j < inst.pms.size(); ++j) {
    if (!has_vm[j]) {
      EXPECT_DOUBLE_EQ(cvr[j], 0.0);
      continue;
    }
    mean += cvr[j];
    ++used;
  }
  EXPECT_LE(mean / static_cast<double>(used), 0.02);
}

TEST(MultidimSim, OverpackedPlacementViolates) {
  // Cram everything onto PM 0 regardless of capacity: CVR must blow up
  // (the aggregate Rb alone exceeds capacity, so every slot violates).
  const auto inst = make_instance(40, 40, 3);
  std::vector<std::size_t> all_on_zero(inst.vms.size(), 0);
  const auto cvr =
      simulate_cvr_multidim(inst, all_on_zero, 200, Rng(4));
  EXPECT_DOUBLE_EQ(cvr[0], 1.0);
}

TEST(MultidimSim, ViolationCountsAnyDimension) {
  // Dimension 1 is tight (capacity 10), dimension 0 huge: a spike in
  // dim 1 alone must register.
  MultiProblemInstance inst;
  MultiVmSpec v;
  v.onoff = OnOffParams{0.5, 0.5};  // spikes half the time
  v.dims = 2;
  v.rb = {1.0, 8.0};
  v.re = {1.0, 5.0};  // dim1 peak = 13 > 10
  inst.vms.push_back(v);
  MultiPmSpec p;
  p.dims = 2;
  p.capacity = {1000.0, 10.0};
  inst.pms.push_back(p);

  const auto cvr = simulate_cvr_multidim(inst, {0}, 20000, Rng(5));
  EXPECT_NEAR(cvr[0], 0.5, 0.03);  // violated exactly when ON
}

TEST(MultidimSim, DeterministicPerSeed) {
  const auto inst = make_instance(30, 30, 6);
  const auto placed = multidim_queuing_first_fit(inst);
  ASSERT_TRUE(placed.unplaced.empty());
  const auto a = simulate_cvr_multidim(inst, placed.pm_of, 500, Rng(7));
  const auto b = simulate_cvr_multidim(inst, placed.pm_of, 500, Rng(7));
  EXPECT_EQ(a, b);
}

TEST(MultidimSim, RejectsIncompletePlacement) {
  const auto inst = make_instance(5, 5, 8);
  std::vector<std::size_t> bad(5, MultiPlacementResult::npos);
  EXPECT_THROW(simulate_cvr_multidim(inst, bad, 10, Rng(9)),
               InvalidArgument);
  std::vector<std::size_t> wrong_size(3, 0);
  EXPECT_THROW(simulate_cvr_multidim(inst, wrong_size, 10, Rng(9)),
               InvalidArgument);
}

}  // namespace
}  // namespace burstq
