// Tests for the heterogeneity-exact reservation (queuing/hetero and
// placement/hetero_ffd).

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/hetero_ffd.h"
#include "placement/placement.h"
#include "placement/queuing_ffd.h"
#include "queuing/hetero.h"
#include "queuing/mapcal.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

TEST(MapCalHetero, UniformInputMatchesMapCal) {
  const OnOffParams p{0.01, 0.09};
  for (std::size_t k : {1u, 4u, 8u, 16u}) {
    const std::vector<OnOffParams> params(k, p);
    EXPECT_EQ(map_cal_hetero_blocks(params, 0.01),
              map_cal_blocks(k, p, 0.01))
        << "k=" << k;
  }
}

TEST(MapCalHetero, CvrBoundRespectsRho) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<OnOffParams> params;
    for (int i = 0; i < 12; ++i)
      params.push_back(
          OnOffParams{rng.uniform(0.005, 0.05), rng.uniform(0.05, 0.3)});
    const auto r = map_cal_hetero(params, 0.01);
    EXPECT_LE(r.cvr_bound, 0.01 + kCdfTieEpsilon);
    EXPECT_LE(r.blocks, params.size());
  }
}

TEST(MapCalHetero, StationaryIsPoissonBinomial) {
  const std::vector<OnOffParams> params{
      {0.01, 0.09},   // q = 0.1
      {0.05, 0.05},   // q = 0.5
  };
  const auto r = map_cal_hetero(params, 0.01);
  ASSERT_EQ(r.stationary.size(), 3u);
  EXPECT_NEAR(r.stationary[0], 0.9 * 0.5, 1e-12);
  EXPECT_NEAR(r.stationary[1], 0.1 * 0.5 + 0.9 * 0.5, 1e-12);
  EXPECT_NEAR(r.stationary[2], 0.1 * 0.5, 1e-12);
}

TEST(MapCalHetero, MeanRoundingUnderestimatesForSkewedMix) {
  // One very bursty VM among many calm ones: rounding to the mean q can
  // reserve fewer blocks than the exact law requires.  The conservative
  // policy must reserve at least as much as exact.
  std::vector<VmSpec> vms;
  std::vector<OnOffParams> params;
  for (int i = 0; i < 10; ++i) {
    const OnOffParams p =
        i == 0 ? OnOffParams{0.5, 0.05} : OnOffParams{0.005, 0.3};
    params.push_back(p);
    vms.push_back(VmSpec{p, 1.0, 1.0});
  }
  const std::size_t exact = map_cal_hetero_blocks(params, 0.01);
  const OnOffParams cons =
      round_uniform_params(vms, RoundingPolicy::kConservative);
  const std::size_t conservative =
      map_cal_blocks(params.size(), cons, 0.01);
  EXPECT_GE(conservative, exact);
}

TEST(MapCalHetero, InvalidInputsThrow) {
  EXPECT_THROW(map_cal_hetero({}, 0.01), InvalidArgument);
  const std::vector<OnOffParams> ok{{0.1, 0.1}};
  EXPECT_THROW(map_cal_hetero(ok, 1.0), InvalidArgument);
  const std::vector<OnOffParams> bad{{0.0, 0.1}};
  EXPECT_THROW(map_cal_hetero(bad, 0.01), InvalidArgument);
}

TEST(StationaryOnProbabilities, Computed) {
  const std::vector<OnOffParams> params{{0.01, 0.09}, {0.2, 0.2}};
  const auto qs = stationary_on_probabilities(params);
  ASSERT_EQ(qs.size(), 2u);
  EXPECT_NEAR(qs[0], 0.1, 1e-15);
  EXPECT_NEAR(qs[1], 0.5, 1e-15);
}

ProblemInstance hetero_instance(std::size_t n, std::size_t m,
                                std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;
  for (std::size_t i = 0; i < n; ++i) {
    OnOffParams p{rng.uniform(0.005, 0.05), rng.uniform(0.05, 0.3)};
    inst.vms.push_back(VmSpec{p, rng.uniform(2, 20), rng.uniform(2, 20)});
  }
  for (std::size_t j = 0; j < m; ++j)
    inst.pms.push_back(PmSpec{rng.uniform(80, 100)});
  return inst;
}

TEST(HeteroFfd, CompleteAndExactFeasible) {
  const auto inst = hetero_instance(150, 100, 7);
  const HeteroFfdOptions opt;
  const auto placed = queuing_ffd_hetero(inst, opt);
  EXPECT_TRUE(placed.complete());
  EXPECT_TRUE(placement_satisfies_exact_reservation(inst, placed.placement,
                                                    opt));
}

TEST(HeteroFfd, UniformParamsMatchRoundedAlgorithm) {
  // With truly uniform parameters the exact scheme reduces to Algorithm 2.
  Rng rng(9);
  const auto inst = random_instance(100, 60, OnOffParams{0.01, 0.09},
                                    InstanceRanges{}, rng);
  const auto exact = queuing_ffd_hetero(inst);
  const auto rounded = queuing_ffd(inst);
  EXPECT_EQ(exact.pms_used(), rounded.result.pms_used());
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    EXPECT_EQ(exact.placement.pm_of(VmId{i}),
              rounded.result.placement.pm_of(VmId{i}));
}

TEST(HeteroFfd, SimulatedCvrBounded) {
  const auto inst = hetero_instance(120, 80, 11);
  const auto placed = queuing_ffd_hetero(inst);
  ASSERT_TRUE(placed.complete());
  const auto cvr = simulate_cvr(inst, placed.placement, 5000, Rng(12));
  double mean = 0.0;
  std::size_t used = 0;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    if (placed.placement.count_on(PmId{j}) == 0) continue;
    mean += cvr[j];
    ++used;
  }
  EXPECT_LE(mean / static_cast<double>(used), 0.02);
}

TEST(HeteroFfd, RespectsVmCap) {
  const auto inst = hetero_instance(40, 40, 13);
  HeteroFfdOptions opt;
  opt.max_vms_per_pm = 2;
  const auto placed = queuing_ffd_hetero(inst, opt);
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_LE(placed.placement.count_on(PmId{j}), 2u);
}

TEST(HeteroFfdOptions, Validation) {
  HeteroFfdOptions bad;
  bad.rho = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = HeteroFfdOptions{};
  bad.max_vms_per_pm = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

}  // namespace
}  // namespace burstq
