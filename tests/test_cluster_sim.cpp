// Tests for the dynamic cluster simulator: conservation invariants, CVR
// behaviour, migration phenomena and report consistency.

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"
#include "sim/metrics.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance typical_instance(std::size_t n_vms, std::size_t n_pms,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n_vms, n_pms, kP, InstanceRanges{}, rng);
}

TEST(SimConfig, Validation) {
  SimConfig ok;
  EXPECT_NO_THROW(ok.validate());
  SimConfig bad = ok;
  bad.slots = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.sigma_seconds = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(ClusterSimulator, RejectsIncompletePlacement) {
  const auto inst = typical_instance(10, 10, 1);
  Placement partial(inst.n_vms(), inst.n_pms());
  partial.assign(VmId{0}, PmId{0});  // 9 VMs unassigned
  EXPECT_THROW(ClusterSimulator(inst, partial, SimConfig{}, Rng(1)),
               InvalidArgument);
}

TEST(ClusterSimulator, RunOnlyOnce) {
  const auto inst = typical_instance(20, 20, 2);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  ClusterSimulator sim(inst, placed.placement, SimConfig{}, Rng(2));
  (void)sim.run();
  EXPECT_THROW(sim.run(), InvalidArgument);
}

TEST(ClusterSimulator, ReportShapesConsistent) {
  const auto inst = typical_instance(40, 40, 3);
  const auto placed = queuing_ffd(inst);
  ASSERT_TRUE(placed.result.complete());
  SimConfig cfg;
  cfg.slots = 60;
  ClusterSimulator sim(inst, placed.result.placement, cfg, Rng(3));
  const SimReport rep = sim.run();
  EXPECT_EQ(rep.pms_used_timeline.size(), 60u);
  EXPECT_EQ(rep.migrations_per_slot.size(), 60u);
  EXPECT_EQ(rep.pm_cvr.size(), inst.n_pms());
  EXPECT_EQ(rep.pms_used_end, rep.pms_used_timeline.back());
  EXPECT_LE(rep.pms_used_end, rep.pms_used_max);
  const std::size_t mig_sum = std::accumulate(
      rep.migrations_per_slot.begin(), rep.migrations_per_slot.end(),
      std::size_t{0});
  EXPECT_EQ(mig_sum, rep.total_migrations);
  // Every successful event appears once in the log.
  std::size_t ok_events = 0;
  for (const auto& e : rep.events)
    if (!e.failed()) ++ok_events;
  EXPECT_EQ(ok_events, rep.total_migrations);
  EXPECT_EQ(rep.events.size() - ok_events, rep.failed_migrations);
  EXPECT_GT(rep.energy_wh, 0.0);
}

TEST(ClusterSimulator, VmConservation) {
  const auto inst = typical_instance(50, 50, 4);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());
  SimConfig cfg;
  cfg.slots = 80;
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(4));
  (void)sim.run();
  // After all migrations, every VM is still assigned exactly once.
  const Placement& final = sim.placement();
  EXPECT_EQ(final.vms_assigned(), inst.n_vms());
  std::size_t total = 0;
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    total += final.count_on(PmId{j});
  EXPECT_EQ(total, inst.n_vms());
}

TEST(ClusterSimulator, DeterministicGivenSeed) {
  const auto inst = typical_instance(30, 30, 5);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());
  SimConfig cfg;
  cfg.slots = 50;
  ClusterSimulator a(inst, placed.placement, cfg, Rng(77));
  ClusterSimulator b(inst, placed.placement, cfg, Rng(77));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.total_migrations, rb.total_migrations);
  EXPECT_EQ(ra.pms_used_timeline, rb.pms_used_timeline);
  EXPECT_DOUBLE_EQ(ra.energy_wh, rb.energy_wh);
}

TEST(ClusterSimulator, PeakPlacementNeverViolatesWithRectangularDemand) {
  const auto inst = typical_instance(60, 60, 6);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  SimConfig cfg;
  cfg.slots = 100;
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(6));
  const auto rep = sim.run();
  EXPECT_EQ(rep.total_migrations, 0u);
  EXPECT_DOUBLE_EQ(rep.max_cvr, 0.0);
}

TEST(ClusterSimulator, MigrationDisabledObservesOnly) {
  const auto inst = typical_instance(60, 60, 7);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());
  SimConfig cfg;
  cfg.slots = 100;
  cfg.enable_migration = false;
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(7));
  const auto rep = sim.run();
  EXPECT_EQ(rep.total_migrations, 0u);
  EXPECT_TRUE(rep.events.empty());
  // RB packs by Rb only, so violations must occur.
  EXPECT_GT(rep.max_cvr, 0.0);
  // PM count never changes without migrations.
  for (auto used : rep.pms_used_timeline)
    EXPECT_EQ(used, placed.pms_used());
}

TEST(ClusterSimulator, QueuePlacementKeepsCvrNearRho) {
  // Statistical: QUEUE's analytic bound is rho = 0.01 per PM; the observed
  // mean CVR without migration should stay well under a small multiple.
  const auto inst = typical_instance(120, 80, 8);
  const auto placed = queuing_ffd(inst);
  ASSERT_TRUE(placed.result.complete());
  SimConfig cfg;
  cfg.slots = 4000;
  cfg.enable_migration = false;
  ClusterSimulator sim(inst, placed.result.placement, cfg, Rng(8));
  const auto rep = sim.run();
  EXPECT_LE(rep.mean_cvr, 0.02);
}

TEST(ClusterSimulator, RbMigratesMoreThanQueue) {
  // The Figure 9(a) headline shape on one seed.
  const auto inst = typical_instance(80, 80, 9);
  const auto rb = ffd_by_normal(inst);
  const auto queue = queuing_ffd(inst);
  ASSERT_TRUE(rb.complete());
  ASSERT_TRUE(queue.result.complete());
  SimConfig cfg;
  cfg.slots = 100;
  ClusterSimulator sim_rb(inst, rb.placement, cfg, Rng(9));
  ClusterSimulator sim_q(inst, queue.result.placement, cfg, Rng(9));
  const auto rep_rb = sim_rb.run();
  const auto rep_q = sim_q.run();
  EXPECT_GT(rep_rb.total_migrations, rep_q.total_migrations);
}

TEST(ClusterSimulator, WebserverModeRuns) {
  const auto inst = typical_instance(30, 30, 10);
  const auto placed = queuing_ffd(inst);
  ASSERT_TRUE(placed.result.complete());
  SimConfig cfg;
  cfg.slots = 40;
  cfg.webserver_workload = true;
  ClusterSimulator sim(inst, placed.result.placement, cfg, Rng(10));
  const auto rep = sim.run();
  EXPECT_EQ(rep.pms_used_timeline.size(), 40u);
  EXPECT_GT(rep.energy_wh, 0.0);
}

TEST(SimulateCvr, PeakPlacementZeroEverywhere) {
  const auto inst = typical_instance(50, 50, 11);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  const auto cvr = simulate_cvr(inst, placed.placement, 500, Rng(11));
  for (double c : cvr) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(SimulateCvr, QueueBoundedRbNot) {
  const auto inst = typical_instance(100, 80, 12);
  const auto queue = queuing_ffd(inst);
  const auto rb = ffd_by_normal(inst);
  ASSERT_TRUE(queue.result.complete());
  ASSERT_TRUE(rb.complete());
  const std::size_t slots = 5000;
  const auto cvr_q = simulate_cvr(inst, queue.result.placement, slots,
                                  Rng(12));
  const auto cvr_rb = simulate_cvr(inst, rb.placement, slots, Rng(12));
  double mean_q = 0.0;
  double mean_rb = 0.0;
  std::size_t used_q = 0;
  std::size_t used_rb = 0;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    if (queue.result.placement.count_on(PmId{j}) > 0) {
      mean_q += cvr_q[j];
      ++used_q;
    }
    if (rb.placement.count_on(PmId{j}) > 0) {
      mean_rb += cvr_rb[j];
      ++used_rb;
    }
  }
  mean_q /= static_cast<double>(used_q);
  mean_rb /= static_cast<double>(used_rb);
  EXPECT_LE(mean_q, 0.02);       // near the rho = 0.01 budget
  EXPECT_GT(mean_rb, 5 * mean_q);  // RB is "disastrous" in comparison
}

TEST(ClusterSimulator, ExactWebserverModeAgreesWithGaussian) {
  // Tiny fleet so the exact per-user renewal path is cheap.  Both web
  // modes must produce statistically indistinguishable PM usage; the
  // exact mode exists as the validation oracle for the CLT path.
  ProblemInstance inst;
  for (int i = 0; i < 6; ++i)
    inst.vms.push_back(VmSpec{kP, 0.2, 0.2});  // 20 users normal, 40 peak
  for (int j = 0; j < 6; ++j) inst.pms.push_back(PmSpec{1.0});
  const auto placed = queuing_ffd(inst);
  ASSERT_TRUE(placed.result.complete());

  SimConfig cfg;
  cfg.slots = 200;
  cfg.webserver_workload = true;
  cfg.webserver_exact = true;
  ClusterSimulator exact(inst, placed.result.placement, cfg, Rng(21));
  const auto rep_exact = exact.run();
  cfg.webserver_exact = false;
  ClusterSimulator gauss(inst, placed.result.placement, cfg, Rng(21));
  const auto rep_gauss = gauss.run();

  EXPECT_EQ(rep_exact.pms_used_timeline.size(), 200u);
  // Same order of magnitude of violations/migrations; identical fleets.
  EXPECT_NEAR(static_cast<double>(rep_exact.pms_used_end),
              static_cast<double>(rep_gauss.pms_used_end), 2.0);
}

TEST(RecordViolationTrace, ConsistentWithSimulateCvr) {
  const auto inst = typical_instance(60, 60, 14);
  const auto placed = queuing_ffd(inst);
  ASSERT_TRUE(placed.result.complete());
  const std::size_t slots = 2000;
  const auto trace =
      record_violation_trace(inst, placed.result.placement, slots, Rng(15));
  const auto cvr = simulate_cvr(inst, placed.result.placement, slots,
                                Rng(15));
  ASSERT_EQ(trace.size(), inst.n_pms());
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    std::size_t violations = 0;
    for (bool v : trace[j])
      if (v) ++violations;
    EXPECT_NEAR(static_cast<double>(violations) /
                    static_cast<double>(slots),
                cvr[j], 1e-12)
        << "pm " << j;
  }
}

TEST(ViolationEpisodeStructure, SpikeDurationShowsInEpisodeLength) {
  // The same placement run under longer spikes (smaller p_off at equal
  // q) must violate in longer episodes — the time dimension the paper's
  // Markov model captures and amplitude-only models miss.
  auto mean_episode = [](double p_on, double p_off) {
    ProblemInstance inst;
    for (int i = 0; i < 12; ++i)
      inst.vms.push_back(VmSpec{OnOffParams{p_on, p_off}, 5.0, 10.0});
    inst.pms = {PmSpec{70.0}};  // rb 60 + one spike fits; two spikes violate
    Placement p(12, 1);
    for (std::size_t i = 0; i < 12; ++i) p.assign(VmId{i}, PmId{0});
    const auto trace = record_violation_trace(inst, p, 60000, Rng(16));
    return violation_episodes(trace[0]).mean_length;
  };
  // q = 0.1 in both cases; spikes 4x longer in the second.
  const double fast = mean_episode(0.04, 0.36);
  const double slow = mean_episode(0.01, 0.09);
  EXPECT_GT(slow, 1.5 * fast);
}

TEST(SimulateCvr, RequiresCompletePlacement) {
  const auto inst = typical_instance(5, 5, 13);
  Placement partial(5, 5);
  EXPECT_THROW(simulate_cvr(inst, partial, 10, Rng(13)), InvalidArgument);
}

}  // namespace
}  // namespace burstq
