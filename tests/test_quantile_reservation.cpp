// Tests for the exact quantile reservation and its placement strategy.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/placement.h"
#include "placement/quantile_ffd.h"
#include "placement/queuing_ffd.h"
#include "prob/binomial.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};  // q = 0.1

TEST(ExtraDemandDistribution, SumsToOne) {
  const std::vector<double> re{4.0, 7.5, 2.25};
  const std::vector<double> q{0.1, 0.3, 0.5};
  const auto pmf = extra_demand_distribution(re, q, 0.25);
  double sum = 0.0;
  for (double p : pmf) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ExtraDemandDistribution, SingleVmTwoPoint) {
  const std::vector<double> re{5.0};
  const std::vector<double> q{0.2};
  const auto pmf = extra_demand_distribution(re, q, 1.0);
  ASSERT_EQ(pmf.size(), 6u);
  EXPECT_NEAR(pmf[0], 0.8, 1e-15);
  EXPECT_NEAR(pmf[5], 0.2, 1e-15);
  for (std::size_t g = 1; g < 5; ++g) EXPECT_DOUBLE_EQ(pmf[g], 0.0);
}

TEST(ExtraDemandDistribution, MatchesMonteCarlo) {
  const std::vector<double> re{3.0, 6.0, 2.0};
  const std::vector<double> q{0.2, 0.1, 0.4};
  const auto pmf = extra_demand_distribution(re, q, 1.0);
  Rng rng(1);
  std::vector<double> freq(pmf.size(), 0.0);
  const int n = 400000;
  for (int t = 0; t < n; ++t) {
    double e = 0.0;
    for (std::size_t i = 0; i < re.size(); ++i)
      if (rng.bernoulli(q[i])) e += re[i];
    freq[static_cast<std::size_t>(e + 0.5)] += 1.0 / n;
  }
  for (std::size_t g = 0; g < pmf.size(); ++g)
    EXPECT_NEAR(freq[g], pmf[g], 0.005) << "g=" << g;
}

TEST(QuantileReservation, UniformSpikesMatchBinomialBlocks) {
  // All Re equal: the quantile is exactly (Binomial quantile) * Re.
  QuantileReservationOptions opt;
  opt.rho = 0.01;
  opt.grid_step = 0.5;  // divides Re exactly
  const double re_val = 8.0;
  for (std::size_t k : {4u, 8u, 16u}) {
    const std::vector<double> re(k, re_val);
    const std::vector<double> q(k, 0.1);
    const double reservation = exact_quantile_reservation(re, q, opt);
    const auto blocks = static_cast<double>(
        binomial_quantile(static_cast<std::int64_t>(k), 0.99, 0.1));
    EXPECT_NEAR(reservation, blocks * re_val, 1e-9) << "k=" << k;
  }
}

TEST(QuantileReservation, NeverExceedsBlockScheme) {
  // R* <= mapping(k) * max(Re) for any mix (the block scheme covers the
  // same quantile with uniform-size blocks).
  Rng rng(2);
  QuantileReservationOptions qopt;
  const MapCalTable table(16, kP, 0.01);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = 2 + rng.next_below(14);
    std::vector<double> re(k);
    std::vector<double> q(k, 0.1);
    double max_re = 0.0;
    for (auto& r : re) {
      r = rng.uniform(1.0, 20.0);
      max_re = std::max(max_re, r);
    }
    const double exact = exact_quantile_reservation(re, q, qopt);
    const double blocks =
        static_cast<double>(table.blocks(k)) * max_re;
    EXPECT_LE(exact, blocks + qopt.grid_step * static_cast<double>(k))
        << "trial " << trial;
  }
}

TEST(QuantileReservation, EdgeCases) {
  QuantileReservationOptions opt;
  EXPECT_DOUBLE_EQ(
      exact_quantile_reservation(std::span<const double>{},
                                 std::span<const double>{}, opt),
      0.0);
  // rho = 0-ish: must reserve everything.
  opt.rho = 0.0;
  const std::vector<double> re{4.0, 4.0};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NEAR(exact_quantile_reservation(re, q, opt), 8.0, opt.grid_step);
  // All q = 0: nothing ever spikes.
  opt.rho = 0.01;
  const std::vector<double> q0{0.0, 0.0};
  EXPECT_DOUBLE_EQ(exact_quantile_reservation(re, q0, opt), 0.0);
}

TEST(QuantileReservation, MonotoneInRho) {
  const std::vector<double> re{3.0, 9.0, 6.0, 12.0};
  const std::vector<double> q(4, 0.15);
  double prev = 1e9;
  for (const double rho : {0.001, 0.01, 0.1, 0.5}) {
    QuantileReservationOptions opt;
    opt.rho = rho;
    const double r = exact_quantile_reservation(re, q, opt);
    EXPECT_LE(r, prev);
    prev = r;
  }
}

TEST(QuantileReservation, InvalidInputsThrow) {
  QuantileReservationOptions opt;
  const std::vector<double> re{1.0};
  const std::vector<double> q2{0.1, 0.2};
  EXPECT_THROW(exact_quantile_reservation(re, q2, opt), InvalidArgument);
  opt.grid_step = 0.0;
  const std::vector<double> q1{0.1};
  EXPECT_THROW(exact_quantile_reservation(re, q1, opt), InvalidArgument);
}

// --- placement strategy ------------------------------------------------

ProblemInstance typical_instance(std::size_t n, std::size_t m,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n, m, kP, InstanceRanges{}, rng);
}

TEST(QuantileFfd, CompleteAndFeasible) {
  const auto inst = typical_instance(150, 100, 3);
  QuantileFfdOptions opt;
  const auto placed = queuing_ffd_quantile(inst, opt);
  EXPECT_TRUE(placed.complete());
  EXPECT_TRUE(
      placement_satisfies_quantile_reservation(inst, placed.placement, opt));
}

TEST(QuantileFfd, NeverWorsePmCountThanBlockScheme) {
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    const auto inst = typical_instance(200, 150, seed);
    const auto block = queuing_ffd(inst);
    const auto quant = queuing_ffd_quantile(inst);
    ASSERT_TRUE(block.result.complete());
    ASSERT_TRUE(quant.complete());
    // Same visit order and an (up to grid rounding) weaker constraint:
    // the quantile scheme packs at least as tight, modulo one PM of
    // grid-tie slack.
    EXPECT_LE(quant.pms_used(), block.result.pms_used() + 1)
        << "seed " << seed;
  }
}

TEST(QuantileFfd, SimulatedCvrBounded) {
  const auto inst = typical_instance(150, 100, 4);
  const auto placed = queuing_ffd_quantile(inst);
  ASSERT_TRUE(placed.complete());
  const auto cvr = simulate_cvr(inst, placed.placement, 20000, Rng(5));
  double mean = 0.0;
  std::size_t used = 0;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    if (placed.placement.count_on(PmId{j}) == 0) continue;
    mean += cvr[j];
    ++used;
  }
  // The quantile packs tighter, so the mean CVR sits closer to rho than
  // the block scheme's — but must still respect the budget statistically.
  EXPECT_LE(mean / static_cast<double>(used), 0.015);
}

TEST(QuantileFfd, RespectsVmCap) {
  const auto inst = typical_instance(40, 40, 6);
  QuantileFfdOptions opt;
  opt.max_vms_per_pm = 3;
  const auto placed = queuing_ffd_quantile(inst, opt);
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_LE(placed.placement.count_on(PmId{j}), 3u);
}

}  // namespace
}  // namespace burstq
