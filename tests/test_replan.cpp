// Tests for migration planning and periodic re-consolidation.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/replan.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance typical_instance(std::size_t n, std::size_t m,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n, m, kP, InstanceRanges{}, rng);
}

TEST(PlanMigrations, IdenticalPlacementsNeedNoMoves) {
  const auto inst = typical_instance(40, 30, 1);
  const auto placed = queuing_ffd(inst).result;
  ASSERT_TRUE(placed.complete());
  const auto plan = plan_migrations(placed.placement, placed.placement);
  EXPECT_EQ(plan.move_count(), 0u);
  EXPECT_EQ(plan.pms_freed(), 0u);
  EXPECT_EQ(plan.pms_before, plan.pms_after);
}

TEST(PlanMigrations, DiffListsExactlyTheMovedVms) {
  Placement a(4, 3);
  Placement b(4, 3);
  a.assign(VmId{0}, PmId{0});
  a.assign(VmId{1}, PmId{0});
  a.assign(VmId{2}, PmId{1});
  a.assign(VmId{3}, PmId{2});
  b.assign(VmId{0}, PmId{0});
  b.assign(VmId{1}, PmId{1});  // moved
  b.assign(VmId{2}, PmId{1});
  b.assign(VmId{3}, PmId{1});  // moved
  const auto plan = plan_migrations(a, b);
  ASSERT_EQ(plan.move_count(), 2u);
  EXPECT_EQ(plan.moves[0].vm, VmId{1});
  EXPECT_EQ(plan.moves[0].from, PmId{0});
  EXPECT_EQ(plan.moves[0].to, PmId{1});
  EXPECT_EQ(plan.moves[1].vm, VmId{3});
  EXPECT_EQ(plan.pms_before, 3u);
  EXPECT_EQ(plan.pms_after, 2u);
  EXPECT_EQ(plan.pms_freed(), 1u);
}

TEST(PlanMigrations, RejectsPartialPlacements) {
  Placement full(2, 2);
  full.assign(VmId{0}, PmId{0});
  full.assign(VmId{1}, PmId{0});
  Placement partial(2, 2);
  partial.assign(VmId{0}, PmId{0});
  EXPECT_THROW(plan_migrations(partial, full), InvalidArgument);
  EXPECT_THROW(plan_migrations(full, partial), InvalidArgument);
}

TEST(PlanMigrations, RejectsShapeMismatch) {
  Placement a(2, 2);
  a.assign(VmId{0}, PmId{0});
  a.assign(VmId{1}, PmId{0});
  Placement b(3, 2);
  EXPECT_THROW(plan_migrations(a, b), InvalidArgument);
}

TEST(ApplyPlan, ReproducesTargetPlacement) {
  const auto inst = typical_instance(50, 40, 2);
  // Current: RB packing.  Target: QUEUE packing.
  auto current = ffd_by_normal(inst);
  const auto target = queuing_ffd(inst).result;
  ASSERT_TRUE(current.complete() && target.complete());
  const auto plan = plan_migrations(current.placement, target.placement);
  apply_plan(current.placement, plan);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    EXPECT_EQ(current.placement.pm_of(VmId{i}),
              target.placement.pm_of(VmId{i}));
}

TEST(ApplyPlan, StalePlanThrows) {
  Placement p(2, 2);
  p.assign(VmId{0}, PmId{1});
  p.assign(VmId{1}, PmId{1});
  MigrationPlan plan;
  plan.moves.push_back(PlannedMove{VmId{0}, PmId{0}, PmId{1}});  // wrong from
  EXPECT_THROW(apply_plan(p, plan), InvalidArgument);
}

TEST(Replan, DriftedPlacementGetsConsolidated) {
  const auto inst = typical_instance(60, 60, 3);
  // Simulate drift: a deliberately wasteful one-VM-per-PM placement.
  Placement drifted(inst.n_vms(), inst.n_pms());
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    drifted.assign(VmId{i}, PmId{i});
  const auto result = replan(inst, drifted);
  EXPECT_TRUE(result.fresh.complete());
  EXPECT_LT(result.plan.pms_after, result.plan.pms_before);
  EXPECT_GT(result.plan.pms_freed(), 0u);
  // Applying the plan lands exactly on the fresh placement.
  Placement live = drifted;
  apply_plan(live, result.plan);
  EXPECT_EQ(live.pms_used(), result.fresh.pms_used());
}

TEST(Replan, NoopWhenAlreadyOptimallyPacked) {
  const auto inst = typical_instance(60, 60, 4);
  const auto fresh = queuing_ffd(inst).result;
  ASSERT_TRUE(fresh.complete());
  const auto result = replan(inst, fresh.placement);
  EXPECT_EQ(result.plan.move_count(), 0u);
}

TEST(Replan, MismatchedInstanceThrows) {
  const auto inst = typical_instance(10, 10, 5);
  Placement wrong(5, 10);
  for (std::size_t i = 0; i < 5; ++i) wrong.assign(VmId{i}, PmId{0});
  EXPECT_THROW(replan(inst, wrong), InvalidArgument);
}

}  // namespace
}  // namespace burstq
