// Tests for the finite-source Geom/Geom/K analytic metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "queuing/geom_queue.h"
#include "queuing/mapcal.h"

namespace burstq {
namespace {

const OnOffParams kParams{0.01, 0.09};  // q = 0.1

TEST(GeomQueue, FullServersNeverOverflow) {
  const auto m = analyze_geom_queue(8, 8, kParams);
  EXPECT_DOUBLE_EQ(m.overflow_probability, 0.0);
  EXPECT_DOUBLE_EQ(m.expected_overflow_excess, 0.0);
}

TEST(GeomQueue, ZeroServersAlwaysOverflowWhenOn) {
  const auto m = analyze_geom_queue(4, 0, kParams);
  // Overflow prob = P[theta > 0] = 1 - (1-q)^4.
  const double q = kParams.stationary_on_probability();
  EXPECT_NEAR(m.overflow_probability, 1.0 - std::pow(1.0 - q, 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.server_utilization, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_busy_servers, 0.0);
}

TEST(GeomQueue, MeanOnSourcesIsKQ) {
  for (std::size_t k : {1u, 4u, 16u}) {
    const auto m = analyze_geom_queue(k, k / 2, kParams);
    EXPECT_NEAR(m.mean_on_sources,
                static_cast<double>(k) * kParams.stationary_on_probability(),
                1e-10);
  }
}

TEST(GeomQueue, OverflowMonotoneInServers) {
  double prev = 1.0;
  for (std::size_t servers = 0; servers <= 12; ++servers) {
    const auto m = analyze_geom_queue(12, servers, kParams);
    EXPECT_LE(m.overflow_probability, prev + 1e-15);
    prev = m.overflow_probability;
  }
}

TEST(GeomQueue, BusyServersBoundedByServersAndSources) {
  const auto m = analyze_geom_queue(10, 4, kParams);
  EXPECT_LE(m.mean_busy_servers, 4.0);
  EXPECT_LE(m.mean_busy_servers, m.mean_on_sources + 1e-12);
  EXPECT_GE(m.server_utilization, 0.0);
  EXPECT_LE(m.server_utilization, 1.0);
}

TEST(GeomQueue, ExcessConsistentWithOverflow) {
  const auto m = analyze_geom_queue(12, 2, kParams);
  // E[(theta-K)^+] >= P[theta > K] (each overflowing state contributes
  // at least one unit of excess).
  EXPECT_GE(m.expected_overflow_excess, m.overflow_probability - 1e-12);
}

TEST(GeomQueue, MinServersMatchesMapCal) {
  for (std::size_t k = 1; k <= 20; ++k) {
    for (const double rho : {0.001, 0.01, 0.1}) {
      EXPECT_EQ(min_servers_for_overflow(k, kParams, rho),
                map_cal_blocks(k, kParams, rho))
          << "k=" << k << " rho=" << rho;
    }
  }
}

TEST(GeomQueue, MinServersAchievesBound) {
  const double rho = 0.01;
  for (std::size_t k = 1; k <= 20; ++k) {
    const std::size_t servers = min_servers_for_overflow(k, kParams, rho);
    EXPECT_LE(analyze_geom_queue(k, servers, kParams).overflow_probability,
              rho + kCdfTieEpsilon);
    if (servers > 0) {
      EXPECT_GT(
          analyze_geom_queue(k, servers - 1, kParams).overflow_probability,
          rho - kCdfTieEpsilon);
    }
  }
}

TEST(GeomQueue, InvalidArgsThrow) {
  EXPECT_THROW(analyze_geom_queue(0, 0, kParams), InvalidArgument);
  EXPECT_THROW(analyze_geom_queue(4, 5, kParams), InvalidArgument);
  EXPECT_THROW(min_servers_for_overflow(4, kParams, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace burstq
