// Tests for WorkloadEnsemble and demand-trace recording.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/workload_gen.h"

namespace burstq {
namespace {

const OnOffParams kP{0.05, 0.15};  // q = 0.25, fast-mixing for tests

ProblemInstance make_instance(std::size_t n) {
  ProblemInstance inst;
  for (std::size_t i = 0; i < n; ++i)
    inst.vms.push_back(VmSpec{kP, 10.0, 4.0});
  inst.pms.push_back(PmSpec{100.0});
  return inst;
}

TEST(WorkloadEnsemble, DemandTracksState) {
  const auto inst = make_instance(5);
  WorkloadEnsemble e(inst, Rng(1));
  for (int t = 0; t < 100; ++t) {
    for (std::size_t i = 0; i < 5; ++i) {
      const double expect =
          e.state(i) == VmState::kOn ? 14.0 : 10.0;
      EXPECT_DOUBLE_EQ(e.demand(i), expect);
    }
    e.step();
  }
}

TEST(WorkloadEnsemble, OnCountConsistent) {
  const auto inst = make_instance(8);
  WorkloadEnsemble e(inst, Rng(2));
  for (int t = 0; t < 50; ++t) {
    std::size_t on = 0;
    for (std::size_t i = 0; i < 8; ++i)
      if (e.state(i) == VmState::kOn) ++on;
    EXPECT_EQ(e.on_count(), on);
    e.step();
  }
}

TEST(WorkloadEnsemble, StationaryOnFraction) {
  const auto inst = make_instance(4);
  WorkloadEnsemble e(inst, Rng(3));
  std::size_t on = 0;
  const int slots = 200000;
  for (int t = 0; t < slots; ++t) {
    on += e.on_count();
    e.step();
  }
  EXPECT_NEAR(static_cast<double>(on) / (4.0 * slots),
              kP.stationary_on_probability(), 0.01);
}

TEST(WorkloadEnsemble, ColdStartAllOff) {
  const auto inst = make_instance(6);
  WorkloadEnsemble e(inst, Rng(4), /*start_stationary=*/false);
  EXPECT_EQ(e.on_count(), 0u);
}

TEST(RecordDemandTrace, ShapeAndDeterminism) {
  const auto inst = make_instance(3);
  const auto a = record_demand_trace(inst, 50, Rng(5));
  const auto b = record_demand_trace(inst, 50, Rng(5));
  ASSERT_EQ(a.size(), 50u);
  ASSERT_EQ(a[0].size(), 3u);
  EXPECT_EQ(a, b);
}

TEST(RecordDemandTrace, ValuesAreRbOrRp) {
  const auto inst = make_instance(3);
  const auto trace = record_demand_trace(inst, 200, Rng(6));
  for (const auto& row : trace)
    for (double d : row) EXPECT_TRUE(d == 10.0 || d == 14.0) << d;
}

TEST(RecordDemandTrace, ZeroSlotsThrows) {
  const auto inst = make_instance(1);
  EXPECT_THROW(record_demand_trace(inst, 0, Rng(7)), InvalidArgument);
}

}  // namespace
}  // namespace burstq
