// Tests for the closed-loop CloudController.

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/controller.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

std::vector<PmSpec> pms(std::size_t m, double cap = 90.0) {
  return std::vector<PmSpec>(m, PmSpec{cap});
}

VmSpec vm(double rb, double re, OnOffParams p = kP) {
  return VmSpec{p, rb, re};
}

TEST(ControllerConfig, Validation) {
  ControllerConfig ok;
  EXPECT_NO_THROW(ok.validate());
  ControllerConfig bad = ok;
  bad.sigma_seconds = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.ffd.rho = 1.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(Controller, AdmissionRespectsReservation) {
  CloudController c(pms(2, 30.0), ControllerConfig{}, Rng(1));
  std::size_t admitted = 0;
  for (int i = 0; i < 10; ++i)
    if (c.admit(vm(10, 5))) ++admitted;
  EXPECT_LT(admitted, 10u);  // capacity 60 total cannot host all
  EXPECT_GT(admitted, 0u);
  EXPECT_TRUE(c.reservation_invariant_holds());
  EXPECT_EQ(c.stats().admissions, admitted);
  EXPECT_EQ(c.stats().rejections, 10u - admitted);
}

TEST(Controller, DepartureFreesRoom) {
  CloudController c(pms(1, 30.0), ControllerConfig{}, Rng(2));
  const auto a = c.admit(vm(12, 6));
  const auto b = c.admit(vm(12, 6));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(c.admit(vm(12, 6)).has_value());
  c.depart(*a);
  EXPECT_TRUE(c.admit(vm(12, 6)).has_value());
  EXPECT_TRUE(c.reservation_invariant_holds());
}

TEST(Controller, DepartTwiceThrows) {
  CloudController c(pms(2), ControllerConfig{}, Rng(3));
  const auto a = c.admit(vm(5, 5));
  ASSERT_TRUE(a.has_value());
  c.depart(*a);
  EXPECT_THROW(c.depart(*a), InvalidArgument);
  EXPECT_THROW((void)c.pm_of(*a), InvalidArgument);
}

TEST(Controller, TicksAccumulateStats) {
  CloudController c(pms(10), ControllerConfig{}, Rng(4));
  for (int i = 0; i < 20; ++i) c.admit(vm(8, 6));
  for (int t = 0; t < 50; ++t) c.tick();
  const auto& s = c.stats();
  EXPECT_EQ(s.slots, 50u);
  EXPECT_GT(s.energy_wh, 0.0);
  EXPECT_EQ(s.vms_hosted, 20u);
  EXPECT_GT(s.pms_used, 0u);
  EXPECT_LE(s.mean_cvr, 1.0);
}

TEST(Controller, QueueAdmissionKeepsCvrNearBudget) {
  CloudController c(pms(30), ControllerConfig{}, Rng(5));
  Rng vm_rng(6);
  for (int i = 0; i < 100; ++i)
    c.admit(vm(vm_rng.uniform(2, 20), vm_rng.uniform(2, 20)));
  for (int t = 0; t < 2000; ++t) c.tick();
  // Eq. 17-gated admission keeps the running mean CVR near rho = 0.01.
  EXPECT_LE(c.stats().mean_cvr, 0.02);
  EXPECT_LT(c.stats().runtime_migrations, 40u);
}

TEST(Controller, MaintenanceConsolidatesAfterChurn) {
  ControllerConfig cfg;
  cfg.maintenance_every = 100;
  cfg.maintenance_budget = 50;
  CloudController c(pms(60), cfg, Rng(7));
  Rng vm_rng(8);

  // Admit a big wave, then let half depart: fragmentation.
  std::vector<TenantId> ids;
  for (int i = 0; i < 120; ++i) {
    const auto id = c.admit(vm(vm_rng.uniform(2, 14), vm_rng.uniform(2, 14)));
    if (id) ids.push_back(*id);
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) c.depart(ids[i]);
  const std::size_t fragmented = c.pms_used();

  for (int t = 0; t < 100; ++t) c.tick();  // includes one maintenance run
  EXPECT_EQ(c.stats().maintenance_windows, 1u);
  EXPECT_LE(c.pms_used(), fragmented);
  EXPECT_GT(c.stats().maintenance_migrations, 0u);
  EXPECT_TRUE(c.reservation_invariant_holds());
}

TEST(Controller, MaintenanceRespectsBudget) {
  ControllerConfig cfg;
  cfg.maintenance_every = 10;
  cfg.maintenance_budget = 3;
  CloudController c(pms(40), cfg, Rng(9));
  Rng vm_rng(10);
  std::vector<TenantId> ids;
  for (int i = 0; i < 80; ++i) {
    const auto id = c.admit(vm(vm_rng.uniform(2, 10), vm_rng.uniform(2, 10)));
    if (id) ids.push_back(*id);
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) c.depart(ids[i]);
  for (int t = 0; t < 10; ++t) c.tick();
  EXPECT_LE(c.stats().maintenance_migrations, 3u);
}

TEST(Controller, DeterministicPerSeed) {
  auto run = [] {
    CloudController c(pms(20), ControllerConfig{}, Rng(42));
    Rng vm_rng(43);
    for (int i = 0; i < 50; ++i)
      c.admit(vm(vm_rng.uniform(2, 18), vm_rng.uniform(2, 18)));
    for (int t = 0; t < 100; ++t) c.tick();
    return c.stats();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.runtime_migrations, b.runtime_migrations);
  EXPECT_DOUBLE_EQ(a.energy_wh, b.energy_wh);
  EXPECT_EQ(a.pms_used, b.pms_used);
}

TEST(Controller, ChurnStressKeepsInvariant) {
  ControllerConfig cfg;
  cfg.maintenance_every = 50;
  CloudController c(pms(40), cfg, Rng(11));
  Rng op_rng(12);
  std::vector<TenantId> live;
  for (int t = 0; t < 300; ++t) {
    if (op_rng.next_double() < 0.3) {
      const auto id =
          c.admit(vm(op_rng.uniform(2, 16), op_rng.uniform(2, 16),
                     OnOffParams{op_rng.uniform(0.005, 0.05),
                                 op_rng.uniform(0.05, 0.3)}));
      if (id) live.push_back(*id);
    }
    if (op_rng.next_double() < 0.15 && !live.empty()) {
      const std::size_t pick = op_rng.next_below(live.size());
      c.depart(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    c.tick();
    ASSERT_EQ(c.stats().vms_hosted, live.size()) << "t=" << t;
  }
  // The invariant is checked against the *current* table, which
  // maintenance recalibrates; after a maintenance pass it must hold.
  EXPECT_GT(c.stats().maintenance_windows, 0u);
}

TEST(Controller, EmptyFleetTicksSafely) {
  CloudController c(pms(3), ControllerConfig{}, Rng(13));
  for (int t = 0; t < 10; ++t) c.tick();
  EXPECT_EQ(c.stats().pms_used, 0u);
  EXPECT_DOUBLE_EQ(c.stats().energy_wh, 0.0);
}

}  // namespace
}  // namespace burstq
