// Tests for workload characterization (fit/estimator) and trace I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "fit/estimator.h"
#include "fit/trace_io.h"

namespace burstq {
namespace {

TEST(TwoMeans, SeparatesBimodalData) {
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(10.0 + 0.1 * (i % 5));
  for (int i = 0; i < 10; ++i) values.push_back(20.0 + 0.1 * (i % 3));
  const double t = two_means_threshold(values);
  EXPECT_GT(t, 10.5);
  EXPECT_LT(t, 20.0);
}

TEST(TwoMeans, ConstantInputReturnsConstant) {
  const std::vector<double> values(10, 7.0);
  EXPECT_DOUBLE_EQ(two_means_threshold(values), 7.0);
}

TEST(TwoMeans, EmptyThrows) {
  EXPECT_THROW(two_means_threshold({}), InvalidArgument);
}

TEST(FitOnOff, RecoversParametersFromSyntheticTrace) {
  const VmSpec truth{OnOffParams{0.02, 0.1}, 10.0, 8.0};
  ProblemInstance inst;
  inst.vms = {truth};
  inst.pms = {PmSpec{100.0}};
  const auto trace = record_demand_trace(inst, 200000, Rng(1));

  std::vector<double> series(trace.size());
  for (std::size_t t = 0; t < trace.size(); ++t) series[t] = trace[t][0];
  const FittedVm fit = fit_onoff_from_trace(series);

  EXPECT_TRUE(fit.bursty);
  EXPECT_NEAR(fit.spec.rb, truth.rb, 0.01);
  EXPECT_NEAR(fit.spec.re, truth.re, 0.01);
  EXPECT_NEAR(fit.spec.onoff.p_on, truth.onoff.p_on, 0.004);
  EXPECT_NEAR(fit.spec.onoff.p_off, truth.onoff.p_off, 0.015);
}

TEST(FitOnOff, FlatTraceReportedNonBursty) {
  const std::vector<double> flat(100, 5.0);
  const FittedVm fit = fit_onoff_from_trace(flat);
  EXPECT_FALSE(fit.bursty);
  EXPECT_DOUBLE_EQ(fit.spec.rb, 5.0);
  EXPECT_DOUBLE_EQ(fit.spec.re, 0.0);
  EXPECT_NO_THROW(fit.spec.validate());  // defaults remain a valid model
}

TEST(FitOnOff, TooShortThrows) {
  EXPECT_THROW(fit_onoff_from_trace(std::vector<double>{1.0}),
               InvalidArgument);
}

TEST(FitOnOff, NoisyTraceStillRecoversLevels) {
  // Add +-5% uniform noise on top of the rectangular demand.
  const VmSpec truth{OnOffParams{0.05, 0.15}, 10.0, 10.0};
  Rng rng(2);
  OnOffChain chain(truth.onoff);
  chain.reset_stationary(rng);
  std::vector<double> series;
  for (int t = 0; t < 100000; ++t) {
    const double base = truth.demand(chain.state());
    series.push_back(base * rng.uniform(0.95, 1.05));
    chain.step(rng);
  }
  const FittedVm fit = fit_onoff_from_trace(series);
  EXPECT_NEAR(fit.spec.rb, truth.rb, 0.2);
  EXPECT_NEAR(fit.spec.re, truth.re, 0.4);
  EXPECT_NEAR(fit.spec.onoff.p_on, 0.05, 0.01);
  EXPECT_NEAR(fit.spec.onoff.p_off, 0.15, 0.03);
}

TEST(InstanceFromTraces, ReassemblesWholeFleet) {
  ProblemInstance truth;
  truth.vms = {VmSpec{OnOffParams{0.03, 0.12}, 8.0, 6.0},
               VmSpec{OnOffParams{0.05, 0.2}, 12.0, 10.0}};
  truth.pms = {PmSpec{100.0}};
  const auto trace = record_demand_trace(truth, 100000, Rng(3));

  const auto rebuilt =
      instance_from_traces(trace, {PmSpec{90.0}, PmSpec{95.0}});
  ASSERT_EQ(rebuilt.n_vms(), 2u);
  ASSERT_EQ(rebuilt.n_pms(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(rebuilt.vms[i].rb, truth.vms[i].rb, 0.1);
    EXPECT_NEAR(rebuilt.vms[i].re, truth.vms[i].re, 0.1);
    EXPECT_NEAR(rebuilt.vms[i].onoff.p_on, truth.vms[i].onoff.p_on, 0.01);
  }
}

TEST(InstanceFromTraces, ValidatesInput) {
  EXPECT_THROW(instance_from_traces({}, {PmSpec{10}}), InvalidArgument);
  DemandTrace ragged{{1.0, 2.0}, {1.0}};
  EXPECT_THROW(instance_from_traces(ragged, {PmSpec{10}}), InvalidArgument);
  DemandTrace ok{{1.0}, {2.0}};
  EXPECT_THROW(instance_from_traces(ok, {}), InvalidArgument);
}

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/burstq_trace_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceIoTest, RoundTrip) {
  DemandTrace trace{{1.5, 2.0, 3.25}, {4.0, 5.5, 6.0}, {7.0, 8.0, 9.125}};
  write_demand_trace_csv(path_, trace);
  const auto back = read_demand_trace_csv(path_);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t t = 0; t < trace.size(); ++t) {
    ASSERT_EQ(back[t].size(), trace[t].size());
    for (std::size_t i = 0; i < trace[t].size(); ++i)
      EXPECT_DOUBLE_EQ(back[t][i], trace[t][i]);
  }
}

TEST_F(TraceIoTest, RoundTripThroughEstimator) {
  ProblemInstance truth;
  truth.vms = {VmSpec{OnOffParams{0.05, 0.2}, 10.0, 10.0}};
  truth.pms = {PmSpec{100.0}};
  const auto trace = record_demand_trace(truth, 50000, Rng(4));
  write_demand_trace_csv(path_, trace);
  const auto rebuilt =
      instance_from_traces(read_demand_trace_csv(path_), {PmSpec{90.0}});
  EXPECT_NEAR(rebuilt.vms[0].rb, 10.0, 0.1);
  EXPECT_NEAR(rebuilt.vms[0].re, 10.0, 0.1);
}

TEST_F(TraceIoTest, RejectsMalformedCsv) {
  {
    std::ofstream out(path_);
    out << "slot,vm0\n0,not_a_number\n";
  }
  EXPECT_THROW(read_demand_trace_csv(path_), InvalidArgument);
}

TEST_F(TraceIoTest, RejectsEmptyFile) {
  {
    std::ofstream out(path_);
  }
  EXPECT_THROW(read_demand_trace_csv(path_), InvalidArgument);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_demand_trace_csv("/nonexistent/trace.csv"),
               InvalidArgument);
}

TEST(TraceIo, RefusesEmptyTrace) {
  EXPECT_THROW(write_demand_trace_csv("/tmp/x.csv", {}), InvalidArgument);
}

}  // namespace
}  // namespace burstq
