// Tests for migration-budget-bounded consolidation.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/budget.h"
#include "placement/queuing_ffd.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance typical_instance(std::size_t n, std::size_t m,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n, m, kP, InstanceRanges{}, rng);
}

/// A deliberately wasteful starting point: one VM per PM.
Placement sparse_placement(const ProblemInstance& inst) {
  Placement p(inst.n_vms(), inst.n_pms());
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    p.assign(VmId{i}, PmId{i});
  return p;
}

TEST(BudgetConsolidation, ZeroBudgetDoesNothing) {
  const auto inst = typical_instance(30, 30, 1);
  auto placement = sparse_placement(inst);
  const MapCalTable table(16, kP, 0.01);
  const auto r = consolidate_with_budget(inst, placement, table, 0);
  EXPECT_TRUE(r.moves.empty());
  EXPECT_EQ(r.pms_before, r.pms_after);
  EXPECT_EQ(r.budget_left, 0u);
}

TEST(BudgetConsolidation, FreesPmsWithinBudget) {
  const auto inst = typical_instance(30, 30, 2);
  auto placement = sparse_placement(inst);
  const MapCalTable table(16, kP, 0.01);
  const auto r = consolidate_with_budget(inst, placement, table, 10);
  EXPECT_LE(r.moves.size(), 10u);
  EXPECT_GT(r.pms_freed(), 0u);
  EXPECT_EQ(r.pms_after, placement.pms_used());
  EXPECT_EQ(r.budget_left, 10u - r.moves.size());
}

TEST(BudgetConsolidation, EveryIntermediateStateFeasible) {
  const auto inst = typical_instance(40, 40, 3);
  auto placement = sparse_placement(inst);
  const MapCalTable table(16, kP, 0.01);
  const auto r = consolidate_with_budget(inst, placement, table, 25);
  // Final state satisfies Eq. 17 (each move was individually validated).
  EXPECT_TRUE(placement_satisfies_reservation(inst, placement, table));
  // Replay the moves on a fresh copy: every prefix must be feasible too.
  Placement replay = sparse_placement(inst);
  for (const auto& move : r.moves) {
    replay.unassign(move.vm);
    replay.assign(move.vm, move.to);
    EXPECT_TRUE(placement_satisfies_reservation(inst, replay, table));
  }
}

TEST(BudgetConsolidation, LargerBudgetFreesAtLeastAsMuch) {
  const auto inst = typical_instance(40, 40, 4);
  const MapCalTable table(16, kP, 0.01);
  std::size_t prev_freed = 0;
  for (const std::size_t budget : {5u, 15u, 40u}) {
    auto placement = sparse_placement(inst);
    const auto r =
        consolidate_with_budget(inst, placement, table, budget);
    EXPECT_GE(r.pms_freed(), prev_freed) << "budget " << budget;
    prev_freed = r.pms_freed();
  }
}

TEST(BudgetConsolidation, UnlimitedBudgetApproachesFreshPacking) {
  const auto inst = typical_instance(60, 60, 5);
  auto placement = sparse_placement(inst);
  QueuingFfdOptions opt;
  const MapCalTable table(opt.max_vms_per_pm, kP, opt.rho);
  const auto r = consolidate_with_budget(inst, placement, table, 1000);
  const auto fresh = queuing_ffd_with_table(inst, table, opt);
  ASSERT_TRUE(fresh.complete());
  // Greedy evacuation won't beat FFD-from-scratch but must get close
  // (within 50% more PMs) and strictly better than the sparse start.
  EXPECT_LT(r.pms_after, r.pms_before);
  EXPECT_LE(static_cast<double>(r.pms_after),
            1.5 * static_cast<double>(fresh.pms_used()));
}

TEST(BudgetConsolidation, NeverOpensEmptyPms) {
  const auto inst = typical_instance(30, 60, 6);  // plenty of spare PMs
  auto placement = sparse_placement(inst);
  const std::size_t before = placement.pms_used();
  const MapCalTable table(16, kP, 0.01);
  (void)consolidate_with_budget(inst, placement, table, 20);
  EXPECT_LE(placement.pms_used(), before);
}

TEST(BudgetConsolidation, RejectsPartialPlacement) {
  const auto inst = typical_instance(5, 5, 7);
  Placement partial(5, 5);
  partial.assign(VmId{0}, PmId{0});
  const MapCalTable table(16, kP, 0.01);
  EXPECT_THROW(consolidate_with_budget(inst, partial, table, 5),
               InvalidArgument);
}

}  // namespace
}  // namespace burstq
