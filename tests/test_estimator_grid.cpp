// Parameter-recovery grid for the ON-OFF estimator: across a lattice of
// (p_on, p_off, Rb, Re) the fitted four-tuple must recover the truth
// within statistical tolerance, and the recovered model must reproduce
// the trace's second-order structure (ACF fit error).

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "common/stats.h"
#include "fit/diagnostics.h"
#include "fit/estimator.h"
#include "markov/onoff.h"
#include "sim/webserver.h"

namespace burstq {
namespace {

using GridParam = std::tuple<double, double, double, double>;

class EstimatorGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(EstimatorGrid, RecoversTruthWithinTolerance) {
  const auto [p_on, p_off, rb, re] = GetParam();
  const OnOffParams truth{p_on, p_off};
  Rng rng(static_cast<std::uint64_t>(p_on * 1e6) +
          static_cast<std::uint64_t>(p_off * 1e3) + 7);
  OnOffChain chain(truth);
  chain.reset_stationary(rng);
  std::vector<double> series;
  const std::size_t slots = 150000;
  series.reserve(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    series.push_back(rb + (chain.on() ? re : 0.0));
    chain.step(rng);
  }

  const FittedVm fit = fit_onoff_from_trace(series);
  ASSERT_TRUE(fit.bursty);
  EXPECT_NEAR(fit.spec.rb, rb, 0.02 * rb + 1e-9);
  EXPECT_NEAR(fit.spec.re, re, 0.02 * re + 1e-9);
  // Switch probabilities: relative tolerance scales with sqrt of the
  // number of dwell periods observed.
  EXPECT_NEAR(fit.spec.onoff.p_on, p_on, 0.25 * p_on);
  EXPECT_NEAR(fit.spec.onoff.p_off, p_off, 0.25 * p_off);
  // Second-order structure: the fitted geometric ACF explains the trace.
  EXPECT_LT(acf_fit_error(series, fit), 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, EstimatorGrid,
    ::testing::Values(GridParam{0.01, 0.09, 10.0, 10.0},  // paper default
                      GridParam{0.005, 0.05, 20.0, 5.0},  // rare long spikes
                      GridParam{0.05, 0.30, 5.0, 15.0},   // frequent short
                      GridParam{0.02, 0.02, 8.0, 8.0},    // symmetric slow
                      GridParam{0.10, 0.40, 12.0, 3.0},   // fast small
                      GridParam{0.01, 0.30, 4.0, 18.0}    // rare tall
                      ));

class WebExactGaussianGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(WebExactGaussianGrid, GeneratorsAgreeAcrossScales) {
  const auto [users, sigma] = GetParam();
  WebServerParams wp;
  wp.normal_users = users;
  wp.peak_users = users * 2;
  wp.sigma_seconds = sigma;
  const WebServerWorkload w(wp);
  Rng rng(users + static_cast<std::uint64_t>(sigma));
  RunningStats exact;
  RunningStats gauss;
  for (int i = 0; i < 250; ++i) {
    exact.add(w.sample_requests_exact(VmState::kOff, rng));
    gauss.add(w.sample_requests_gaussian(VmState::kOff, rng));
  }
  EXPECT_NEAR(gauss.mean(), exact.mean(), 0.03 * exact.mean())
      << "users=" << users << " sigma=" << sigma;
  EXPECT_NEAR(exact.mean(), w.expected_requests(VmState::kOff),
              0.03 * exact.mean());
}

INSTANTIATE_TEST_SUITE_P(
    Scales, WebExactGaussianGrid,
    ::testing::Combine(::testing::Values(std::size_t{10}, std::size_t{40},
                                         std::size_t{160}),
                       ::testing::Values(10.0, 30.0)));

}  // namespace
}  // namespace burstq
