// SloTracker (obs/slo.h): window arithmetic, burn rates, breach-episode
// hysteresis, verdicts — and the contract that a replayed flight log
// reproduces the live tracker's report bit-for-bit.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.h"
#include "obs/slo.h"
#include "sim/cluster_sim.h"
#include "sim/flight.h"
#include "placement/placement.h"

namespace burstq {
namespace {

using obs::SloOptions;
using obs::SloReport;
using obs::SloTracker;

SloOptions small_windows() {
  SloOptions o;
  o.rho = 0.1;
  o.fast_window = 2;
  o.slow_window = 4;
  return o;
}

TEST(SloOptions, Validation) {
  EXPECT_NO_THROW(SloOptions{}.validate());
  SloOptions bad = small_windows();
  bad.rho = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = small_windows();
  bad.rho = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = small_windows();
  bad.fast_window = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = small_windows();
  bad.fast_window = 8;  // > slow_window
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = small_windows();
  bad.breach_burn = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  EXPECT_THROW(SloTracker(0, SloOptions{}), InvalidArgument);
}

TEST(SloTracker, RecordRejectsOutOfRangePm) {
  SloTracker slo(2, small_windows());
  EXPECT_THROW(slo.record(PmId{2}, false), InvalidArgument);
}

TEST(SloTracker, CumulativeAndWindowedCvr) {
  SloTracker slo(2, small_windows());
  // Slot 0: both ok.  Slot 1: PM0 violated.  Slot 2: PM0 violated, PM1
  // unobserved.  Slot 3: both ok.
  slo.record(PmId{0}, false);
  slo.record(PmId{1}, false);
  slo.end_slot();
  slo.record(PmId{0}, true);
  slo.record(PmId{1}, false);
  slo.end_slot();
  slo.record(PmId{0}, true);
  slo.end_slot();
  slo.record(PmId{0}, false);
  slo.record(PmId{1}, false);
  slo.end_slot();

  const SloReport r = slo.report();
  EXPECT_EQ(r.slots, 4u);
  EXPECT_EQ(r.cumulative.observed, 7u);
  EXPECT_EQ(r.cumulative.violations, 2u);
  EXPECT_DOUBLE_EQ(r.cumulative.cvr, 2.0 / 7.0);
  // Fast window (last 2 slots): 3 observations, 1 violation.
  EXPECT_EQ(r.fast.observed, 3u);
  EXPECT_EQ(r.fast.violations, 1u);
  // Slow window (last 4 slots) covers everything here.
  EXPECT_EQ(r.slow.observed, 7u);
  EXPECT_EQ(r.slow.violations, 2u);
  EXPECT_DOUBLE_EQ(r.fast.burn, (1.0 / 3.0) / 0.1);

  ASSERT_EQ(r.pms.size(), 2u);
  EXPECT_EQ(r.pms[0].pm, 0u);
  EXPECT_EQ(r.pms[0].observed, 4u);
  EXPECT_EQ(r.pms[0].violations, 2u);
  EXPECT_TRUE(r.pms[0].above_rho);  // 0.5 > 0.1
  EXPECT_FALSE(r.pms[1].above_rho);
  EXPECT_DOUBLE_EQ(r.worst_pm_cvr, 0.5);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.verdict(), "FAIL");
}

TEST(SloTracker, WindowsSlideAndEvictOldSlots) {
  SloOptions o = small_windows();  // fast 2, slow 4
  SloTracker slo(1, o);
  // 4 violated slots, then 6 clean slots: both windows must drain.
  for (int t = 0; t < 4; ++t) {
    slo.record(PmId{0}, true);
    slo.end_slot();
  }
  EXPECT_DOUBLE_EQ(slo.report().fast.cvr, 1.0);
  EXPECT_DOUBLE_EQ(slo.report().slow.cvr, 1.0);
  for (int t = 0; t < 6; ++t) {
    slo.record(PmId{0}, false);
    slo.end_slot();
  }
  const SloReport r = slo.report();
  EXPECT_DOUBLE_EQ(r.fast.cvr, 0.0);
  EXPECT_DOUBLE_EQ(r.slow.cvr, 0.0);
  EXPECT_DOUBLE_EQ(r.cumulative.cvr, 0.4);
  // A cumulative breach of the budget still fails the SLO.
  EXPECT_FALSE(r.ok());
}

TEST(SloTracker, UnobservedSlotsDoNotCount) {
  SloTracker slo(3, small_windows());
  slo.end_slot();  // nothing recorded at all
  const SloReport r = slo.report();
  EXPECT_EQ(r.slots, 1u);
  EXPECT_EQ(r.cumulative.observed, 0u);
  EXPECT_DOUBLE_EQ(r.cumulative.cvr, 0.0);
  EXPECT_TRUE(r.pms.empty());
  EXPECT_TRUE(r.ok());
}

TEST(SloTracker, BreachEpisodeHysteresis) {
  SloOptions o;
  o.rho = 0.1;
  o.fast_window = 2;
  o.slow_window = 2;  // fast == slow: one knob drives both burns
  SloTracker slo(1, o);

  const auto violated_slot = [&](bool v) {
    slo.record(PmId{0}, v);
    slo.end_slot();
  };

  violated_slot(true);  // fast cvr 1.0 -> burn 10 > 1 on both windows
  EXPECT_TRUE(slo.report().breaching);
  EXPECT_EQ(slo.report().breaches, 1u);
  violated_slot(true);  // still breaching: episode count must not grow
  EXPECT_EQ(slo.report().breaches, 1u);
  violated_slot(false);  // fast burn 5 -> still above threshold
  EXPECT_TRUE(slo.report().breaching);
  violated_slot(false);  // window now clean -> episode closes
  EXPECT_FALSE(slo.report().breaching);
  EXPECT_EQ(slo.report().breaches, 1u);
  violated_slot(true);  // a new episode
  EXPECT_EQ(slo.report().breaches, 2u);
}

TEST(SloReport, RenderIsDeterministicKeyValue) {
  SloTracker slo(1, small_windows());
  slo.record(PmId{0}, true);
  slo.end_slot();
  const std::string text = slo.report().render();
  EXPECT_NE(text.find("slo.rho=0.1\n"), std::string::npos);
  EXPECT_NE(text.find("slo.slots=1\n"), std::string::npos);
  EXPECT_NE(text.find("slo.fast.cvr=1\n"), std::string::npos);
  EXPECT_NE(text.find("slo.verdict=FAIL\n"), std::string::npos);
  EXPECT_NE(text.find("slo.pm.0.cvr=1"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  // Two reports off the same state render identically.
  EXPECT_EQ(text, slo.report().render());
}

#ifndef BURSTQ_NO_OBS
// The observability contract: replaying a recorded flight log re-derives
// the exact SLO report the live run produced.
TEST(SloReplay, LiveAndReplayedReportsAreIdentical) {
  const std::string log = testing::TempDir() + "slo_replay.jsonl";
  ProblemInstance inst;
  // Small, hot instance so violations actually happen.
  for (int i = 0; i < 12; ++i)
    inst.vms.push_back(VmSpec{OnOffParams{0.05, 0.05}, 4.0, 10.0});
  inst.pms.assign(4, PmSpec{24.0});
  // Deliberately overcommitted round-robin placement (3 hot VMs per PM)
  // so the run produces real violations for the SLO windows.
  Placement placed(inst);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    placed.assign(VmId{i}, PmId{i % inst.n_pms()});

  obs::SloOptions slo_opts;
  slo_opts.rho = 0.01;
  slo_opts.fast_window = 5;
  slo_opts.slow_window = 20;
  obs::SloTracker live(inst.n_pms(), slo_opts);

  obs::events().open(log, obs::EventFormat::kJsonl,
                     obs::EventLevel::kDetail);
  SimConfig cfg;
  cfg.slots = 60;
  cfg.slo = &live;
  ClusterSimulator sim(inst, placed, cfg, Rng(7));
  const SimReport rep = sim.run();
  obs::events().close();
  (void)rep;

  const auto segments = replay_flight_log(log, &slo_opts);
  ASSERT_EQ(segments.size(), 1u);
  ASSERT_NE(segments[0].slo, nullptr);
  // render() covers every field of the report, so string equality is
  // report equality.
  EXPECT_EQ(segments[0].slo->report().render(), live.report().render());
  // And the run was interesting enough to mean something.
  EXPECT_GT(live.report().cumulative.observed, 0u);
  std::remove(log.c_str());
}
#endif  // BURSTQ_NO_OBS

}  // namespace
}  // namespace burstq
