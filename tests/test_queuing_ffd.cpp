// Tests for Algorithm 2 (QueuingFFD) — completeness, constraint
// satisfaction, determinism, and the parameter-rounding policies.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/placement.h"
#include "placement/queuing_ffd.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance typical_instance(std::size_t n_vms, std::size_t n_pms,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n_vms, n_pms, kP, InstanceRanges{}, rng);
}

TEST(RoundUniform, MeanPolicy) {
  std::vector<VmSpec> vms = {VmSpec{OnOffParams{0.01, 0.05}, 1, 1},
                             VmSpec{OnOffParams{0.03, 0.15}, 1, 1}};
  const auto p = round_uniform_params(vms, RoundingPolicy::kMean);
  EXPECT_NEAR(p.p_on, 0.02, 1e-15);
  EXPECT_NEAR(p.p_off, 0.10, 1e-15);
}

TEST(RoundUniform, ConservativePolicy) {
  std::vector<VmSpec> vms = {VmSpec{OnOffParams{0.01, 0.05}, 1, 1},
                             VmSpec{OnOffParams{0.03, 0.15}, 1, 1}};
  const auto p = round_uniform_params(vms, RoundingPolicy::kConservative);
  EXPECT_DOUBLE_EQ(p.p_on, 0.03);   // most frequent spikes
  EXPECT_DOUBLE_EQ(p.p_off, 0.05);  // longest spikes
}

TEST(RoundUniform, UniformInputUnchanged) {
  std::vector<VmSpec> vms(5, VmSpec{kP, 1, 1});
  for (auto policy : {RoundingPolicy::kMean, RoundingPolicy::kConservative}) {
    const auto p = round_uniform_params(vms, policy);
    EXPECT_DOUBLE_EQ(p.p_on, kP.p_on);
    EXPECT_DOUBLE_EQ(p.p_off, kP.p_off);
  }
}

TEST(RoundUniform, EmptyThrows) {
  EXPECT_THROW(round_uniform_params({}), InvalidArgument);
}

TEST(QueuingFfdOptions, Validation) {
  QueuingFfdOptions bad;
  bad.rho = 1.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = QueuingFfdOptions{};
  bad.max_vms_per_pm = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = QueuingFfdOptions{};
  bad.cluster_buckets = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  EXPECT_NO_THROW(QueuingFfdOptions{}.validate());
}

TEST(QueuingFfd, PlacesEveryVmGivenAmplePms) {
  const auto inst = typical_instance(200, 100, 1);
  const auto out = queuing_ffd(inst);
  EXPECT_TRUE(out.result.complete());
  EXPECT_EQ(out.result.placement.vms_assigned(), 200u);
}

TEST(QueuingFfd, SatisfiesEq17PostHoc) {
  const auto inst = typical_instance(300, 150, 2);
  const auto out = queuing_ffd(inst);
  ASSERT_TRUE(out.result.complete());
  EXPECT_TRUE(placement_satisfies_reservation(inst, out.result.placement,
                                              out.table));
}

TEST(QueuingFfd, SatisfiesInitialCapacity) {
  const auto inst = typical_instance(300, 150, 3);
  const auto out = queuing_ffd(inst);
  ASSERT_TRUE(out.result.complete());
  EXPECT_TRUE(
      placement_satisfies_initial_capacity(inst, out.result.placement));
}

TEST(QueuingFfd, DeterministicAcrossRuns) {
  const auto inst = typical_instance(150, 80, 4);
  const auto a = queuing_ffd(inst);
  const auto b = queuing_ffd(inst);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    EXPECT_EQ(a.result.placement.pm_of(VmId{i}),
              b.result.placement.pm_of(VmId{i}));
}

TEST(QueuingFfd, RespectsVmCapD) {
  QueuingFfdOptions opt;
  opt.max_vms_per_pm = 3;
  const auto inst = typical_instance(60, 60, 5);
  const auto out = queuing_ffd(inst, opt);
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_LE(out.result.placement.count_on(PmId{j}), 3u);
}

TEST(QueuingFfd, ReportsRoundedParams) {
  const auto inst = typical_instance(10, 10, 6);
  const auto out = queuing_ffd(inst);
  EXPECT_DOUBLE_EQ(out.rounded_params.p_on, kP.p_on);
  EXPECT_DOUBLE_EQ(out.rounded_params.p_off, kP.p_off);
}

TEST(QueuingFfd, WithTableMatchesFullRun) {
  const auto inst = typical_instance(120, 60, 7);
  QueuingFfdOptions opt;
  const auto full = queuing_ffd(inst, opt);
  const auto reused = queuing_ffd_with_table(inst, full.table, opt);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    EXPECT_EQ(full.result.placement.pm_of(VmId{i}),
              reused.placement.pm_of(VmId{i}));
}

TEST(QueuingFfd, BestFitVariantAlsoFeasible) {
  const auto inst = typical_instance(150, 80, 8);
  QueuingFfdOptions opt;
  opt.use_best_fit = true;
  const auto out = queuing_ffd(inst, opt);
  ASSERT_TRUE(out.result.complete());
  EXPECT_TRUE(placement_satisfies_reservation(inst, out.result.placement,
                                              out.table));
}

TEST(QueuingFfd, HeterogeneousParamsAreRounded) {
  Rng rng(9);
  ProblemInstance inst;
  for (int i = 0; i < 50; ++i) {
    OnOffParams p{rng.uniform(0.005, 0.02), rng.uniform(0.05, 0.15)};
    inst.vms.push_back(
        VmSpec{p, rng.uniform(2, 20), rng.uniform(2, 20)});
  }
  for (int j = 0; j < 30; ++j) inst.pms.push_back(PmSpec{90.0});
  const auto out = queuing_ffd(inst);
  EXPECT_TRUE(out.result.complete());
  // Rounded parameters live inside the per-VM range.
  EXPECT_GT(out.rounded_params.p_on, 0.005);
  EXPECT_LT(out.rounded_params.p_on, 0.02);
}

TEST(QueuingFfd, TighterRhoNeverUsesFewerPms) {
  const auto inst = typical_instance(200, 120, 10);
  QueuingFfdOptions loose;
  loose.rho = 0.1;
  QueuingFfdOptions tight;
  tight.rho = 0.001;
  const auto l = queuing_ffd(inst, loose);
  const auto t = queuing_ffd(inst, tight);
  ASSERT_TRUE(l.result.complete());
  ASSERT_TRUE(t.result.complete());
  EXPECT_GE(t.result.pms_used(), l.result.pms_used());
}

// Property sweep over seeds: Algorithm 2 always yields feasible, complete
// placements on amply-provisioned instances.
class QueuingFfdSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueuingFfdSeeds, FeasibleAndComplete) {
  const auto inst = typical_instance(100, 60, GetParam());
  const auto out = queuing_ffd(inst);
  EXPECT_TRUE(out.result.complete());
  EXPECT_TRUE(placement_satisfies_reservation(inst, out.result.placement,
                                              out.table));
  EXPECT_TRUE(
      placement_satisfies_initial_capacity(inst, out.result.placement));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueuingFfdSeeds,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace burstq
