// Tests for the online consolidator (Section IV-E: arrivals, departures,
// batches, periodic parameter recalibration).

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/online.h"
#include "placement/placement.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

std::vector<PmSpec> pms(std::size_t m, double cap = 90.0) {
  return std::vector<PmSpec>(m, PmSpec{cap});
}

VmSpec vm(double rb, double re, OnOffParams p = kP) {
  return VmSpec{p, rb, re};
}

TEST(Online, SingleArrivalFirstFit) {
  OnlineConsolidator oc(pms(3), QueuingFfdOptions{}, kP);
  const auto h = oc.add_vm(vm(10, 5));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(oc.pm_of(*h), PmId{0});
  EXPECT_EQ(oc.vms_hosted(), 1u);
  EXPECT_EQ(oc.pms_used(), 1u);
  EXPECT_TRUE(oc.reservation_invariant_holds());
}

TEST(Online, ArrivalsFillThenSpill) {
  OnlineConsolidator oc(pms(3, 30.0), QueuingFfdOptions{}, kP);
  // Each VM footprint alone: rb 10 + re 5 * blocks(1)=1 -> 15; two VMs:
  // rb 20 + 5 * blocks(2).  Depending on blocks(2), a third may spill.
  std::size_t placed = 0;
  for (int i = 0; i < 6; ++i)
    if (oc.add_vm(vm(10, 5))) ++placed;
  EXPECT_EQ(placed, oc.vms_hosted());
  EXPECT_TRUE(oc.reservation_invariant_holds());
  EXPECT_GE(oc.pms_used(), 2u);
}

TEST(Online, RejectsWhenNoRoom) {
  OnlineConsolidator oc(pms(1, 20.0), QueuingFfdOptions{}, kP);
  EXPECT_TRUE(oc.add_vm(vm(10, 5)).has_value());
  // A VM that cannot fit anywhere is rejected without state corruption.
  EXPECT_FALSE(oc.add_vm(vm(15, 5)).has_value());
  EXPECT_EQ(oc.vms_hosted(), 1u);
  EXPECT_TRUE(oc.reservation_invariant_holds());
}

TEST(Online, RemoveShrinksReservation) {
  OnlineConsolidator oc(pms(2), QueuingFfdOptions{}, kP);
  const auto a = oc.add_vm(vm(20, 10));
  const auto b = oc.add_vm(vm(20, 10));
  ASSERT_TRUE(a && b);
  EXPECT_EQ(oc.vms_hosted(), 2u);
  oc.remove_vm(*a);
  EXPECT_EQ(oc.vms_hosted(), 1u);
  EXPECT_TRUE(oc.reservation_invariant_holds());
  // Slot reuse must hand back a valid handle.
  const auto c = oc.add_vm(vm(5, 5));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(oc.vms_hosted(), 2u);
}

TEST(Online, RemoveTwiceThrows) {
  OnlineConsolidator oc(pms(2), QueuingFfdOptions{}, kP);
  const auto h = oc.add_vm(vm(5, 5));
  ASSERT_TRUE(h.has_value());
  oc.remove_vm(*h);
  EXPECT_THROW(oc.remove_vm(*h), InvalidArgument);
  EXPECT_THROW((void)oc.pm_of(*h), InvalidArgument);
  EXPECT_THROW((void)oc.spec_of(*h), InvalidArgument);
}

TEST(Online, BatchUsesAlgorithm2Ordering) {
  OnlineConsolidator oc(pms(10), QueuingFfdOptions{}, kP);
  Rng rng(3);
  std::vector<VmSpec> batch;
  for (int i = 0; i < 40; ++i)
    batch.push_back(vm(rng.uniform(2, 20), rng.uniform(2, 20)));
  const auto handles = oc.add_batch(batch);
  ASSERT_EQ(handles.size(), batch.size());
  std::size_t placed = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (handles[i]) {
      ++placed;
      EXPECT_DOUBLE_EQ(oc.spec_of(*handles[i]).rb, batch[i].rb);
    }
  }
  EXPECT_EQ(placed, oc.vms_hosted());
  EXPECT_TRUE(oc.reservation_invariant_holds());
}

TEST(Online, EmptyBatchIsNoop) {
  OnlineConsolidator oc(pms(2), QueuingFfdOptions{}, kP);
  EXPECT_TRUE(oc.add_batch({}).empty());
}

TEST(Online, RecalibrateNoopWhenParamsStable) {
  OnlineConsolidator oc(pms(4), QueuingFfdOptions{}, kP);
  for (int i = 0; i < 10; ++i) oc.add_vm(vm(10, 5));
  EXPECT_EQ(oc.recalibrate(), 0u);
  EXPECT_DOUBLE_EQ(oc.rounded_params().p_on, kP.p_on);
}

TEST(Online, RecalibrateTracksPopulationDrift) {
  OnlineConsolidator oc(pms(6), QueuingFfdOptions{}, kP);
  // Admit VMs that are much burstier than the seed parameters.
  const OnOffParams bursty{0.2, 0.2};
  for (int i = 0; i < 8; ++i) oc.add_vm(vm(10, 5, bursty));
  oc.recalibrate();
  EXPECT_NEAR(oc.rounded_params().p_on, 0.2, 1e-12);
  EXPECT_NEAR(oc.rounded_params().p_off, 0.2, 1e-12);
  EXPECT_TRUE(oc.reservation_invariant_holds());
}

TEST(Online, RecalibrateRepairsOverflowingPms) {
  // Pack tightly under calm parameters, then drift to very bursty ones:
  // mapping(k) grows, some PMs overflow, repair migrations must restore
  // the invariant.
  QueuingFfdOptions opt;
  OnlineConsolidator oc(pms(20, 60.0), opt, kP);
  std::vector<VmHandle> handles;
  const OnOffParams calm{0.01, 0.09};
  for (int i = 0; i < 30; ++i) {
    const auto h = oc.add_vm(vm(8, 6, calm));
    if (h) handles.push_back(*h);
  }
  ASSERT_GT(handles.size(), 0u);
  // Replace the population with spike-heavy VMs (remove half, add bursty).
  for (std::size_t i = 0; i < handles.size() / 2; ++i)
    oc.remove_vm(handles[i]);
  const OnOffParams stormy{0.45, 0.05};
  for (int i = 0; i < 10; ++i) oc.add_vm(vm(8, 6, stormy));
  oc.recalibrate();
  EXPECT_TRUE(oc.reservation_invariant_holds());
}

TEST(Online, InvalidConstructionThrows) {
  EXPECT_THROW(OnlineConsolidator({}, QueuingFfdOptions{}, kP),
               InvalidArgument);
  QueuingFfdOptions bad;
  bad.rho = 2.0;
  EXPECT_THROW(OnlineConsolidator(pms(2), bad, kP), InvalidArgument);
}

TEST(Online, CountOnMatchesHandles) {
  OnlineConsolidator oc(pms(4), QueuingFfdOptions{}, kP);
  const auto a = oc.add_vm(vm(10, 5));
  const auto b = oc.add_vm(vm(10, 5));
  ASSERT_TRUE(a && b);
  std::size_t total = 0;
  for (std::size_t j = 0; j < 4; ++j) total += oc.count_on(PmId{j});
  EXPECT_EQ(total, 2u);
}

}  // namespace
}  // namespace burstq
