// Invariant catalog and evaluation semantics: inclusive thresholds
// (exactly-met passes, epsilon-over fails), peak-vs-final worst-case
// rules, violation windows, and graceful degradation on empty series.

#include <gtest/gtest.h>

#include <limits>

#include "harness/invariants.h"

namespace burstq::harness {
namespace {

// --- catalog ----------------------------------------------------------

TEST(InvariantCatalog, NamesRoundTrip) {
  const auto& catalog = invariant_catalog();
  ASSERT_EQ(catalog.size(), 8u);
  for (const InvariantInfo& info : catalog) {
    EXPECT_EQ(info.name, invariant_name(info.kind));
    const auto back = invariant_from_name(info.name);
    ASSERT_TRUE(back.has_value()) << info.name;
    EXPECT_EQ(*back, info.kind);
    EXPECT_FALSE(info.description.empty());
  }
}

TEST(InvariantCatalog, UnknownNamesAreNullopt) {
  EXPECT_FALSE(invariant_from_name("not_a_thing").has_value());
  EXPECT_FALSE(invariant_from_name("").has_value());
  EXPECT_FALSE(invariant_op_from_name(">=").has_value());
  EXPECT_FALSE(invariant_op_from_name("=").has_value());
}

TEST(InvariantCatalog, RecoveryReplaySlotsEvaluatesFinalScalar) {
  SlotSeries s;
  s.cluster_cvr.assign(40, 0.0);
  s.recovery_replay_slots = 13;
  InvariantResult pass = evaluate_invariant(
      InvariantKind::kRecoveryReplaySlots, InvariantOp::kLe, 20.0, s);
  EXPECT_TRUE(pass.pass);
  EXPECT_EQ(pass.worst, 13.0);
  EXPECT_FALSE(pass.window.has_value());

  InvariantResult fail = evaluate_invariant(
      InvariantKind::kRecoveryReplaySlots, InvariantOp::kLe, 10.0, s);
  EXPECT_FALSE(fail.pass);
  ASSERT_TRUE(fail.window.has_value());
  EXPECT_EQ(fail.window->first, 39u);
}

TEST(InvariantCatalog, OpNamesRoundTrip) {
  EXPECT_EQ(invariant_op_name(InvariantOp::kLe), "<=");
  EXPECT_EQ(invariant_op_name(InvariantOp::kEq), "==");
  EXPECT_EQ(invariant_op_from_name("<="), InvariantOp::kLe);
  EXPECT_EQ(invariant_op_from_name("=="), InvariantOp::kEq);
}

// --- inclusive comparison boundary ------------------------------------

SlotSeries migration_series(std::vector<std::size_t> migrations) {
  SlotSeries s;
  const std::size_t n = migrations.size();
  s.migrations = std::move(migrations);
  s.cluster_cvr.assign(n, 0.0);
  s.worst_pm_cvr.assign(n, 0.0);
  s.fast_burn.assign(n, 0.0);
  s.slow_burn.assign(n, 0.0);
  s.max_vm_moves.assign(n, 0);
  return s;
}

TEST(InvariantEval, ExactlyMetThresholdPasses) {
  // The budget IS the contract: observing exactly the threshold passes.
  const SlotSeries s = migration_series({1, 3, 2});
  const InvariantResult r = evaluate_invariant(
      InvariantKind::kMigrationsPerSlot, InvariantOp::kLe, 3.0, s);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.worst, 3.0);
  EXPECT_EQ(r.worst_slot, 1u);
  EXPECT_FALSE(r.window.has_value());
  EXPECT_FALSE(r.trace.has_value());
}

TEST(InvariantEval, EpsilonOverThresholdFails) {
  SlotSeries s = migration_series({0, 0, 0});
  s.fast_burn = {0.0, 1.0 + 1e-12, 0.0};
  const InvariantResult r = evaluate_invariant(
      InvariantKind::kSloFastBurn, InvariantOp::kLe, 1.0, s);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.worst, 1.0);
  EXPECT_EQ(r.worst_slot, 1u);
  ASSERT_TRUE(r.window.has_value());
  EXPECT_EQ(r.window->first, 1u);
  EXPECT_EQ(r.window->second, 1u);
}

// --- per-slot quantities: peak value, [first, last] breach window -----

TEST(InvariantEval, PerSlotWindowSpansFirstToLastBreach) {
  const SlotSeries s = migration_series({0, 5, 1, 7, 0});
  const InvariantResult r = evaluate_invariant(
      InvariantKind::kMigrationsPerSlot, InvariantOp::kLe, 2.0, s);
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.worst, 7.0);
  EXPECT_EQ(r.worst_slot, 3u);
  ASSERT_TRUE(r.window.has_value());
  EXPECT_EQ(r.window->first, 1u);   // first breach
  EXPECT_EQ(r.window->second, 3u);  // last breach (slot 2 dipped back)
}

TEST(InvariantEval, WorstSlotIsFirstSlotReachingPeak) {
  const SlotSeries s = migration_series({4, 1, 4});
  const InvariantResult r = evaluate_invariant(
      InvariantKind::kMigrationsPerSlot, InvariantOp::kLe, 10.0, s);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.worst, 4.0);
  EXPECT_EQ(r.worst_slot, 0u);
}

// --- cumulative ratios: FINAL value verdict, trailing breach window ---

TEST(InvariantEval, CvrVerdictUsesFinalValueNotEarlyNoise) {
  // One violation at t=0 makes the running ratio 1.0 before the
  // denominator grows.  The final value is the honest Eq. 4 number, so
  // a run that settles inside the budget passes.
  SlotSeries s = migration_series({0, 0, 0, 0});
  s.cluster_cvr = {1.0, 0.5, 0.1, 0.01};
  const InvariantResult r = evaluate_invariant(
      InvariantKind::kClusterCvr, InvariantOp::kLe, 0.05, s);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.worst, 0.01);
  EXPECT_EQ(r.worst_slot, 3u);
  EXPECT_FALSE(r.window.has_value());
}

TEST(InvariantEval, CvrFailureWindowIsTrailingBreachRun) {
  SlotSeries s = migration_series({0, 0, 0, 0, 0});
  s.cluster_cvr = {0.2, 0.01, 0.04, 0.09, 0.08};
  const InvariantResult r = evaluate_invariant(
      InvariantKind::kClusterCvr, InvariantOp::kLe, 0.05, s);
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.worst, 0.08);  // final value, not the t=0 spike
  EXPECT_EQ(r.worst_slot, 4u);
  ASSERT_TRUE(r.window.has_value());
  EXPECT_EQ(r.window->first, 3u);  // trailing contiguous breach only
  EXPECT_EQ(r.window->second, 4u);
}

TEST(InvariantEval, PmCvrUsesSameFinalValueRule) {
  SlotSeries s = migration_series({0, 0, 0});
  s.worst_pm_cvr = {0.5, 0.2, 0.3};
  const InvariantResult r = evaluate_invariant(
      InvariantKind::kPmCvr, InvariantOp::kLe, 0.25, s);
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.worst, 0.3);
  ASSERT_TRUE(r.window.has_value());
  EXPECT_EQ(r.window->first, 2u);
  EXPECT_EQ(r.window->second, 2u);
}

// --- lost_vms: end-of-run equality ------------------------------------

TEST(InvariantEval, LostVmsZeroPasses) {
  SlotSeries s = migration_series({0, 0});
  s.lost_vms = 0;
  const InvariantResult r = evaluate_invariant(InvariantKind::kLostVms,
                                               InvariantOp::kEq, 0.0, s);
  EXPECT_EQ(r.kind, InvariantKind::kLostVms);
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.worst, 0.0);
  EXPECT_FALSE(r.window.has_value());
}

TEST(InvariantEval, LostVmsNonzeroFailsPinnedToLastSlot) {
  SlotSeries s = migration_series({0, 0, 0});
  s.lost_vms = 2;
  const InvariantResult r = evaluate_invariant(InvariantKind::kLostVms,
                                               InvariantOp::kEq, 0.0, s);
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.worst, 2.0);
  EXPECT_EQ(r.worst_slot, 2u);
  ASSERT_TRUE(r.window.has_value());
  EXPECT_EQ(r.window->first, 2u);
  EXPECT_EQ(r.window->second, 2u);
}

TEST(InvariantEval, EqualityOpBreachesInBothDirections) {
  SlotSeries s = migration_series({2, 2});
  const InvariantResult below = evaluate_invariant(
      InvariantKind::kMigrationsPerSlot, InvariantOp::kEq, 3.0, s);
  EXPECT_FALSE(below.pass);  // 2 != 3 breaches even though 2 < 3
  const InvariantResult exact = evaluate_invariant(
      InvariantKind::kMigrationsPerSlot, InvariantOp::kEq, 2.0, s);
  EXPECT_TRUE(exact.pass);
}

// --- empty timeline (aborted before any slot completed) ---------------

TEST(InvariantEval, EmptySeriesPassesEverySlotInvariant) {
  const SlotSeries s;  // no slots completed
  for (const InvariantInfo& info : invariant_catalog()) {
    if (info.kind == InvariantKind::kLostVms) continue;
    const InvariantResult r =
        evaluate_invariant(info.kind, InvariantOp::kLe, 0.0, s);
    EXPECT_TRUE(r.pass) << info.name;
    EXPECT_EQ(r.worst, 0.0) << info.name;
    EXPECT_FALSE(r.window.has_value()) << info.name;
  }
}

TEST(InvariantEval, EmptySeriesStillChecksLostVms) {
  SlotSeries s;
  s.lost_vms = 1;
  const InvariantResult r = evaluate_invariant(InvariantKind::kLostVms,
                                               InvariantOp::kEq, 0.0, s);
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.worst, 1.0);
}

// --- result metadata --------------------------------------------------

TEST(InvariantEval, ResultEchoesKindOpThreshold) {
  const SlotSeries s = migration_series({1});
  const InvariantResult r = evaluate_invariant(
      InvariantKind::kVmFlaps, InvariantOp::kLe, 5.0, s);
  EXPECT_EQ(r.kind, InvariantKind::kVmFlaps);
  EXPECT_EQ(r.op, InvariantOp::kLe);
  EXPECT_EQ(r.threshold, 5.0);
}

}  // namespace
}  // namespace burstq::harness
