// The paper's Section V conclusions, observation by observation, as
// executable assertions.  Section V ends with seven numbered findings;
// each test here is one of them, run at reduced scale (statistical
// claims use fixed seeds and generous margins so the suite is
// deterministic yet honest).

#include <gtest/gtest.h>

#include <numeric>

#include "core/experiment.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

TrialSummary run_cell(SpikePattern pattern, Strategy strat,
                      std::size_t trials = 6) {
  const auto factory = [pattern](Rng& rng) {
    return table_i_instance(pattern, 70, 70, paper_onoff_params(), rng);
  };
  const PlacementFactory placer = [strat](const ProblemInstance& i) {
    switch (strat) {
      case Strategy::kQueue:
        return queuing_ffd(i).result;
      case Strategy::kPeak:
        return ffd_by_peak(i);
      case Strategy::kNormal:
        return ffd_by_normal(i);
      case Strategy::kReserved:
        return ffd_reserved(i, 0.3);
      default:
        break;
    }
    return ffd_by_peak(i);
  };
  TrialConfig cfg;
  cfg.trials = trials;
  cfg.base_seed = 1234;
  cfg.sim.slots = 100;
  cfg.sim.webserver_workload = true;
  return run_trials(factory, placer, cfg);
}

// (i) "QUEUE reduce the number of PMs used by 45% with large spike size
// and 30% with normal spike size compared with RP."  We require > 35%
// and > 18% respectively at our scale.
TEST(PaperClaims, I_ConsolidationRatios) {
  auto savings = [](SpikePattern pattern) {
    double rp = 0.0;
    double q = 0.0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      Rng rng(42 + seed);
      const auto inst =
          pattern_instance(pattern, 400, 300, paper_onoff_params(), rng);
      rp += static_cast<double>(ffd_by_peak(inst).pms_used());
      q += static_cast<double>(queuing_ffd(inst).result.pms_used());
    }
    return 1.0 - q / rp;
  };
  EXPECT_GT(savings(SpikePattern::kLargeSpike), 0.35);
  EXPECT_GT(savings(SpikePattern::kEqual), 0.18);
}

// (ii) "QUEUE incurs very few migrations throughout the experiment."
TEST(PaperClaims, II_QueueFewMigrations) {
  const auto s = run_cell(SpikePattern::kEqual, Strategy::kQueue);
  EXPECT_LT(s.migrations.mean(), 5.0);
}

// (iii) "Both RB and RB-EX incur excessive migrations at the beginning
// of an experiment due to the over-tight initial packing, and the number
// of PMs used increases rapidly during this period."
TEST(PaperClaims, III_EarlyMigrationBurstForRbFamilies) {
  Rng rng(77);
  const auto inst = table_i_instance(SpikePattern::kEqual, 70, 70,
                                     paper_onoff_params(), rng);
  for (const auto& placed : {ffd_by_normal(inst), ffd_reserved(inst, 0.2)}) {
    ASSERT_TRUE(placed.complete());
    SimConfig cfg;
    cfg.slots = 100;
    cfg.webserver_workload = true;
    ClusterSimulator sim(inst, placed.placement, cfg, Rng(78));
    const auto rep = sim.run();
    // Migrations happen in the first quarter...
    const auto q1 = std::accumulate(
        rep.migrations_per_slot.begin(), rep.migrations_per_slot.begin() + 25,
        std::size_t{0});
    EXPECT_GT(q1, 0u);
    // ...and PM usage grows from the over-tight start.
    EXPECT_GT(rep.pms_used_timeline[50], rep.pms_used_timeline[0]);
  }
}

// (iv) "RB incurs unacceptably large number of migrations constantly
// throughout the experiment" — an order of magnitude above QUEUE, with
// activity persisting into the second half.
TEST(PaperClaims, IV_RbConstantMigrations) {
  const auto rb = run_cell(SpikePattern::kEqual, Strategy::kNormal);
  const auto q = run_cell(SpikePattern::kEqual, Strategy::kQueue);
  EXPECT_GT(rb.migrations.mean(), 5.0 * std::max(1.0, q.migrations.mean()));

  Rng rng(99);
  const auto inst = table_i_instance(SpikePattern::kEqual, 70, 70,
                                     paper_onoff_params(), rng);
  const auto placed = ffd_by_normal(inst);
  ASSERT_TRUE(placed.complete());
  SimConfig cfg;
  cfg.slots = 100;
  cfg.webserver_workload = true;
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(100));
  const auto rep = sim.run();
  const auto late = std::accumulate(
      rep.migrations_per_slot.begin() + 50, rep.migrations_per_slot.end(),
      std::size_t{0});
  EXPECT_GT(late, 0u);  // cycle migration: still migrating after slot 50
}

// (v) Idle deception / cycle migration: under RB the number of PMs stays
// low even though migrations keep firing — busy-but-quiet PMs keep being
// picked as targets.
TEST(PaperClaims, V_CycleMigrationKeepsPmCountLow) {
  const auto rb = run_cell(SpikePattern::kEqual, Strategy::kNormal);
  const auto q = run_cell(SpikePattern::kEqual, Strategy::kQueue);
  EXPECT_LT(rb.pms_end.mean(), q.pms_end.mean() + 1.0);
  EXPECT_GT(rb.migrations.mean(), q.migrations.mean());
}

// (vi) "RB-EX performs not as well as QUEUE": either it still migrates
// notably more than QUEUE, or it ends with at least as many PMs.
TEST(PaperClaims, VI_RbExDominatedByQueue) {
  for (const auto pattern : all_patterns()) {
    const auto ex = run_cell(pattern, Strategy::kReserved);
    const auto q = run_cell(pattern, Strategy::kQueue);
    const bool migrates_more =
        ex.migrations.mean() > q.migrations.mean() + 1.0;
    const bool uses_more_pms = ex.pms_end.mean() >= q.pms_end.mean() - 0.5;
    EXPECT_TRUE(migrates_more || uses_more_pms) << pattern_name(pattern);
  }
}

// (vii) "For larger spike size the packing result of QUEUE is better
// while the performance is slightly worse than those of normal spike
// size, whereas [small spikes] shows opposite result."
TEST(PaperClaims, VII_SpikeSizeTradeoff) {
  auto measure = [](SpikePattern pattern) {
    Rng rng(321 + static_cast<std::uint64_t>(pattern));
    const auto inst =
        pattern_instance(pattern, 300, 250, paper_onoff_params(), rng);
    const auto rp = ffd_by_peak(inst);
    const auto q = queuing_ffd(inst);
    const double saving = 1.0 - static_cast<double>(q.result.pms_used()) /
                                    static_cast<double>(rp.pms_used());
    const auto cvr =
        simulate_cvr(inst, q.result.placement, 20000, Rng(654));
    double mean_cvr = 0.0;
    std::size_t used = 0;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      if (q.result.placement.count_on(PmId{j}) == 0) continue;
      mean_cvr += cvr[j];
      ++used;
    }
    return std::pair{saving, mean_cvr / static_cast<double>(used)};
  };
  const auto [save_large, cvr_large] = measure(SpikePattern::kLargeSpike);
  const auto [save_equal, cvr_equal] = measure(SpikePattern::kEqual);
  const auto [save_small, cvr_small] = measure(SpikePattern::kSmallSpike);
  // Packing: large > equal > small.
  EXPECT_GT(save_large, save_equal);
  EXPECT_GT(save_equal, save_small);
  // Performance (CVR): large spikes slightly worse, small spikes better.
  EXPECT_GT(cvr_large, cvr_small);
}

// The performance constraint itself (Eq. 5): every QUEUE PM's analytic
// bound respects rho, across all patterns and a seed sweep.
TEST(PaperClaims, Eq5_PerformanceConstraintHolds) {
  for (const auto pattern : all_patterns()) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(1000 + seed);
      const auto inst =
          pattern_instance(pattern, 150, 120, paper_onoff_params(), rng);
      const auto out = queuing_ffd(inst);
      ASSERT_TRUE(out.result.complete());
      for (std::size_t j = 0; j < inst.n_pms(); ++j) {
        const std::size_t k = out.result.placement.count_on(PmId{j});
        if (k == 0) continue;
        EXPECT_LE(out.table.cvr_bound(k), 0.01 + kCdfTieEpsilon);
      }
    }
  }
}

}  // namespace
}  // namespace burstq
