// BTRC trace format tests: codec primitives, columnar write -> read
// round trips, decode parity with the JSONL sink (the bit-identity
// contract replay relies on), loud failure on truncation/corruption,
// compression, and the recorder self-metrics.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "obs/event_log.h"
#include "obs/jsonl.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_codec.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/cluster_sim.h"
#include "sim/flight.h"

namespace burstq::obs {
namespace {

using namespace trace_detail;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- codec primitives ------------------------------------------------

TEST(TraceCodec, VarintRoundTrip) {
  const std::uint64_t cases[] = {0,       1,        127,        128,
                                 129,     16383,    16384,      (1u << 21) - 1,
                                 1u << 21, UINT32_MAX, UINT64_MAX};
  for (const std::uint64_t v : cases) {
    std::string buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    std::uint64_t back = 0;
    ASSERT_TRUE(get_varint(buf, pos, back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(TraceCodec, VarintRejectsTruncationAndOverlength) {
  std::string buf;
  put_varint(buf, UINT64_MAX);
  buf.pop_back();  // drop the terminating byte
  std::size_t pos = 0;
  std::uint64_t v = 0;
  EXPECT_FALSE(get_varint(buf, pos, v));
  const std::string eleven(11, '\x80');
  pos = 0;
  EXPECT_FALSE(get_varint(eleven, pos, v));
}

TEST(TraceCodec, ZigzagRoundTrip) {
  const std::int64_t cases[] = {0,  -1, 1,  -2, 2, INT64_MAX, INT64_MIN,
                                42, -42};
  for (const std::int64_t v : cases) EXPECT_EQ(unzigzag(zigzag(v)), v);
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(TraceCodec, Crc32KnownVector) {
  // The standard CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(TraceCodec, LzRoundTripRepetitiveAndRandom) {
  std::string repetitive;
  for (int i = 0; i < 500; ++i) repetitive += "slot.obs t=123 rho=0.0100 ";
  Rng rng(7);
  std::string random;
  for (int i = 0; i < 4096; ++i)
    random.push_back(static_cast<char>(rng.next_u64() & 0xFF));

  for (const std::string& raw : {repetitive, random, std::string{}}) {
    const std::string packed = lz_compress(raw);
    std::string back;
    ASSERT_TRUE(lz_decompress(packed, raw.size(), back));
    EXPECT_EQ(back, raw);
  }
  // The repetitive stream must actually shrink.
  EXPECT_LT(lz_compress(repetitive).size(), repetitive.size() / 2);
}

TEST(TraceCodec, LzDecompressRejectsCorruptStreams) {
  const std::string packed = lz_compress("abcdabcdabcdabcd");
  std::string out;
  EXPECT_FALSE(lz_decompress(packed, 99, out));  // wrong raw size
  std::string clipped = packed.substr(0, packed.size() - 1);
  EXPECT_FALSE(lz_decompress(clipped, 16, out));
}

// ---- write -> read round trips ---------------------------------------

TEST(TraceRoundTrip, MixedKindsTypesAndPresence) {
  const std::string path = temp_path("mixed.btrc");
  {
    TraceWriter w(path);
    w.append("alpha", {{"i", -5}, {"d", 0.25}, {"s", "hello"}});
    w.append("beta", {{"u", std::size_t{99}}, {"flag", true}});
    w.append("alpha", {{"i", -4}, {"s", "hello"}});  // d absent this row
    w.append("alpha", {{"i", 1000000}, {"d", -1.5}, {"s", "world"}});
    w.append("beta", {{"u", std::size_t{100}}, {"flag", false}});
  }
  const auto events = read_events_btrc(path);
  ASSERT_EQ(events.size(), 5u);
  // Global interleaving is preserved exactly.
  EXPECT_EQ(events[0].kind, "alpha");
  EXPECT_EQ(events[1].kind, "beta");
  EXPECT_EQ(events[2].kind, "alpha");
  EXPECT_EQ(events[3].kind, "alpha");
  EXPECT_EQ(events[4].kind, "beta");

  EXPECT_EQ(events[0].integer("i"), -5);
  EXPECT_DOUBLE_EQ(events[0].num("d"), 0.25);
  EXPECT_EQ(events[0].str("s"), "hello");
  EXPECT_EQ(events[2].integer("i"), -4);
  EXPECT_FALSE(events[2].has("d"));  // presence bitmap honoured
  EXPECT_EQ(events[3].integer("i"), 1000000);
  EXPECT_DOUBLE_EQ(events[3].num("d"), -1.5);
  EXPECT_EQ(events[3].str("s"), "world");
  EXPECT_EQ(events[1].integer("u"), 99);
  EXPECT_TRUE(events[1].boolean("flag"));
  EXPECT_EQ(events[4].integer("u"), 100);
  EXPECT_FALSE(events[4].boolean("flag", true));
}

TEST(TraceRoundTrip, MultiBlockWithEvolvingSchema) {
  const std::string path = temp_path("multiblock.btrc");
  TraceWriteOptions opts;
  opts.block_events = 16;  // force many blocks
  {
    TraceWriter w(path, opts);
    for (int i = 0; i < 200; ++i)
      w.append("tick", {{"t", i}, {"rho", 0.01 * i}});
    // A kind (and columns) first seen long after the first block.
    for (int i = 0; i < 50; ++i)
      w.append("late", {{"name", i % 2 == 0 ? "even" : "odd"}, {"n", i}});
    EXPECT_EQ(w.events_written(), 250u);
  }
  const auto events = read_events_btrc(path);
  ASSERT_EQ(events.size(), 250u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(events[i].kind, "tick");
    EXPECT_EQ(events[i].integer("t"), static_cast<std::int64_t>(i));
    EXPECT_DOUBLE_EQ(events[i].num("rho"), 0.01 * static_cast<double>(i));
  }
  EXPECT_EQ(events[200].kind, "late");
  EXPECT_EQ(events[249].str("name"), "odd");

  const TraceFileInfo info = read_trace_info(path);
  EXPECT_EQ(info.events, 250u);
  EXPECT_GE(info.data_blocks, 2u);
  ASSERT_EQ(info.kinds.size(), 2u);
  EXPECT_EQ(info.kinds[0].name, "tick");
  EXPECT_EQ(info.kinds[0].rows, 200u);
  EXPECT_EQ(info.kinds[1].name, "late");
  EXPECT_EQ(info.kinds[1].rows, 50u);
  ASSERT_EQ(info.kinds[0].columns.size(), 2u);
  EXPECT_EQ(info.kinds[0].columns[0].name, "t");
  EXPECT_EQ(info.kinds[0].columns[0].type_name(), "int");
  EXPECT_EQ(info.kinds[0].columns[1].type_name(), "double");
}

TEST(TraceRoundTrip, DeterministicBytes) {
  const std::string a = temp_path("det_a.btrc");
  const std::string b = temp_path("det_b.btrc");
  for (const std::string& path : {a, b}) {
    TraceWriter w(path);
    for (int i = 0; i < 100; ++i)
      w.append("e", {{"i", i * 7}, {"s", i % 3 == 0 ? "fizz" : "x"}});
  }
  EXPECT_EQ(slurp(a), slurp(b));
}

TEST(TraceRoundTrip, NonFiniteDoublesDecodeAsNullLikeJsonl) {
  const std::string path = temp_path("nonfinite.btrc");
  {
    TraceWriter w(path);
    w.append("v", {{"nan", std::numeric_limits<double>::quiet_NaN()},
                   {"inf", std::numeric_limits<double>::infinity()},
                   {"ok", 1.5}});
  }
  const auto events = read_events_btrc(path);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_NE(events[0].find("nan"), nullptr);
  EXPECT_EQ(events[0].find("nan")->tag, EventValue::Tag::kNull);
  ASSERT_NE(events[0].find("inf"), nullptr);
  EXPECT_EQ(events[0].find("inf")->tag, EventValue::Tag::kNull);
  EXPECT_DOUBLE_EQ(events[0].num("ok"), 1.5);
}

TEST(TraceRoundTrip, CompressionPreservesContentAndShrinksFile) {
  const std::string raw_path = temp_path("comp_off.btrc");
  const std::string lz_path = temp_path("comp_on.btrc");
  TraceWriteOptions lz;
  lz.compress = true;
  const auto fill = [](TraceWriter& w) {
    for (int i = 0; i < 2000; ++i)
      w.append("slot.obs",
               {{"t", i}, {"active", "0 1 2 3 4 5 6 7"}, {"viol", ""}});
  };
  {
    TraceWriter w(raw_path);
    fill(w);
  }
  {
    TraceWriter w(lz_path, lz);
    fill(w);
  }
  const auto raw_events = read_events_btrc(raw_path);
  const auto lz_events = read_events_btrc(lz_path);
  ASSERT_EQ(raw_events.size(), lz_events.size());
  for (std::size_t i = 0; i < raw_events.size(); ++i) {
    EXPECT_EQ(raw_events[i].kind, lz_events[i].kind);
    ASSERT_EQ(raw_events[i].fields.size(), lz_events[i].fields.size());
  }
  EXPECT_LT(slurp(lz_path).size(), slurp(raw_path).size());
  EXPECT_TRUE(read_trace_info(lz_path).compressed);
  EXPECT_FALSE(read_trace_info(raw_path).compressed);
}

// Decoding a BTRC recording must yield the same RecordedEvent stream as
// the JSONL sink fed the same emits — the contract that makes replay
// format-agnostic.
TEST(TraceParity, MatchesJsonlDecodeExactly) {
  const std::string jsonl_path = temp_path("parity.jsonl");
  const std::string btrc_path = temp_path("parity.btrc");
  EventLog jl;
  jl.open(jsonl_path, EventFormat::kJsonl, EventLevel::kDetail);
  EventLog bl;
  bl.open(btrc_path, EventFormat::kBinary, EventLevel::kDetail);

  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    const double d = static_cast<double>(rng.next_u64() % 100000) / 997.0;
    const int sign = (rng.next_u64() & 1) != 0 ? -1 : 1;
    const long long iv = sign * static_cast<long long>(rng.next_u64() %
                                                       (1ull << 50));
    const std::size_t uv = rng.next_u64() % (1ull << 50);
    const bool flag = (rng.next_u64() & 1) != 0;
    const std::string s = "pm-" + std::to_string(rng.next_u64() % 8);
    const auto emit = [&](EventLog& log) {
      switch (i % 3) {
        case 0:
          log.emit(EventLevel::kDetail, "mix",
                   {{"i", iv}, {"u", uv}, {"d", d}, {"b", flag}, {"s", s}});
          break;
        case 1:
          log.emit(EventLevel::kDetail, "sparse",
                   flag ? std::initializer_list<Field>{{"d", d}}
                        : std::initializer_list<Field>{{"i", iv}, {"s", s}});
          break;
        default:
          log.emit(EventLevel::kDetail, "text", {{"s", s}, {"t", i}});
      }
    };
    emit(jl);
    emit(bl);
  }
  jl.close();
  bl.close();

  const auto je = read_events_jsonl(jsonl_path);
  const auto be = read_events_btrc(btrc_path);
  ASSERT_EQ(je.size(), be.size());
  for (std::size_t i = 0; i < je.size(); ++i) {
    EXPECT_EQ(je[i].kind, be[i].kind) << i;
    ASSERT_EQ(je[i].fields.size(), be[i].fields.size()) << i;
    for (std::size_t f = 0; f < je[i].fields.size(); ++f) {
      EXPECT_EQ(je[i].fields[f].first, be[i].fields[f].first) << i;
      const EventValue& jv = je[i].fields[f].second;
      const EventValue& bv = be[i].fields[f].second;
      ASSERT_EQ(jv.tag, bv.tag) << i << "/" << je[i].fields[f].first;
      switch (jv.tag) {
        case EventValue::Tag::kNumber:
          // Bit-identical, not approximately equal.
          EXPECT_EQ(jv.num, bv.num) << i << "/" << je[i].fields[f].first;
          break;
        case EventValue::Tag::kString:
          EXPECT_EQ(jv.str, bv.str);
          break;
        case EventValue::Tag::kBool:
          EXPECT_EQ(jv.b, bv.b);
          break;
        case EventValue::Tag::kNull:
          break;
      }
    }
  }
}

// ---- corruption and truncation ---------------------------------------

TEST(TraceCorruption, TruncatedFileFailsLoudlyWithOffset) {
  const std::string path = temp_path("trunc.btrc");
  TraceWriteOptions opts;
  opts.block_events = 32;
  {
    TraceWriter w(path, opts);
    for (int i = 0; i < 100; ++i) w.append("e", {{"t", i}});
  }
  const std::string whole = slurp(path);
  // Chop mid-way through the final block's payload.
  const std::string clipped_path = temp_path("trunc_clipped.btrc");
  spit(clipped_path, whole.substr(0, whole.size() - 7));
  try {
    read_events_btrc(clipped_path);
    FAIL() << "truncated file must throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("last valid block"), std::string::npos) << what;
  }
  // Earlier intact blocks stay readable via the streaming reader.
  TraceReader reader(clipped_path);
  std::vector<RecordedEvent> events;
  EXPECT_TRUE(reader.next_block(events));
  EXPECT_FALSE(events.empty());
  EXPECT_GT(reader.valid_offset(), 8u);
}

TEST(TraceCorruption, FlippedByteFailsCrc) {
  const std::string path = temp_path("crc.btrc");
  {
    TraceWriter w(path);
    for (int i = 0; i < 10; ++i) w.append("e", {{"t", i}});
  }
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] =
      static_cast<char>(~static_cast<unsigned char>(bytes[bytes.size() / 2]));
  const std::string bad = temp_path("crc_bad.btrc");
  spit(bad, bytes);
  try {
    read_events_btrc(bad);
    FAIL() << "corrupt file must throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

TEST(TraceCorruption, BadMagicAndVersionRejected) {
  const std::string path = temp_path("magic.btrc");
  spit(path, std::string("NOPE\x01\x00\x00\x00", 8));
  EXPECT_THROW(read_events_btrc(path), InvalidArgument);
  std::string versioned = "BTRC";
  versioned += '\x63';  // version 99
  versioned += std::string("\x00\x00\x00", 3);
  spit(path, versioned);
  EXPECT_THROW(read_events_btrc(path), InvalidArgument);
}

// ---- degenerate files ------------------------------------------------

TEST(TraceDegenerate, ZeroEventFileReadsBackEmpty) {
  const std::string path = temp_path("zero.btrc");
  {
    TraceWriter w(path);
    EXPECT_EQ(w.events_written(), 0u);
  }
  EXPECT_TRUE(read_events_btrc(path).empty());
  const TraceFileInfo info = read_trace_info(path);
  EXPECT_EQ(info.events, 0u);
  EXPECT_EQ(info.data_blocks, 0u);
  EXPECT_TRUE(info.kinds.empty());
}

TEST(TraceDegenerate, HeaderOnlyFileIsEmptyNotAnError) {
  // The 8-byte header with nothing after it — what a process killed
  // right after open() leaves behind.
  const std::string path = temp_path("header_only.btrc");
  std::string header = "BTRC";
  header += '\x01';
  header += std::string("\x00\x00\x00", 3);
  spit(path, header);
  EXPECT_TRUE(read_events_btrc(path).empty());
  TraceReader reader(path);
  std::vector<RecordedEvent> events;
  EXPECT_FALSE(reader.next_block(events));
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(reader.valid_offset(), 8u);
}

TEST(TraceDegenerate, SinglePartialBlockYieldsNoEventsAndNamesHeader) {
  // A file whose ONLY block is torn (killed mid first flush): the
  // streaming reader — the path `trace tail` walks — must surface zero
  // events and report the header end (offset 8) as the last valid byte.
  const std::string path = temp_path("one_block.btrc");
  {
    TraceWriter w(path);
    for (int i = 0; i < 20; ++i) w.append("e", {{"t", i}});
  }
  const std::string whole = slurp(path);
  ASSERT_GT(whole.size(), 12u);
  const std::string torn = temp_path("one_block_torn.btrc");
  spit(torn, whole.substr(0, 12));  // header + 4 stray bytes

  TraceReader reader(torn);
  std::vector<RecordedEvent> events;
  EXPECT_THROW(reader.next_block(events), InvalidArgument);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(reader.valid_offset(), 8u);
  try {
    read_events_btrc(torn);
    FAIL() << "torn single-block file must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

// ---- format dispatch -------------------------------------------------

TEST(FormatDispatch, SniffsAllThreeFormats) {
  const std::string btrc = temp_path("sniff.btrc_actually_jsonl_name");
  {
    TraceWriter w(btrc);
    w.append("k", {{"a", 1}});
  }
  EXPECT_EQ(sniff_event_format(btrc), EventFormat::kBinary);

  const std::string jsonl = temp_path("sniff.jsonl");
  spit(jsonl, "{\"kind\":\"k\",\"a\":1}\n");
  EXPECT_EQ(sniff_event_format(jsonl), EventFormat::kJsonl);

  const std::string csv = temp_path("sniff.csv");
  spit(csv, "id,kind,key,value\n0,k,,\n0,k,a,1\n");
  EXPECT_EQ(sniff_event_format(csv), EventFormat::kCsv);

  EventFormat seen{};
  const auto via_auto = read_events_auto(btrc, &seen);
  EXPECT_EQ(seen, EventFormat::kBinary);
  ASSERT_EQ(via_auto.size(), 1u);
  EXPECT_EQ(via_auto[0].integer("a"), 1);
}

TEST(FormatDispatch, PathExtensionMapping) {
  EXPECT_EQ(event_format_from_path("x.btrc"), EventFormat::kBinary);
  EXPECT_EQ(event_format_from_path("x.csv"), EventFormat::kCsv);
  EXPECT_EQ(event_format_from_path("x.jsonl"), EventFormat::kJsonl);
  EXPECT_EQ(event_format_from_path("x.log"), EventFormat::kJsonl);
  EXPECT_EQ(format_name(EventFormat::kBinary), "btrc");
  EXPECT_EQ(format_name(EventFormat::kJsonl), "jsonl");
  EXPECT_EQ(format_name(EventFormat::kCsv), "csv");
}

// ---- EventLog integration --------------------------------------------

TEST(EventLogBinary, LevelGatingUnchanged) {
  const std::string path = temp_path("gating.btrc");
  EventLog log;
  log.open(path, EventFormat::kBinary, EventLevel::kDecisions);
  EXPECT_TRUE(log.enabled(EventLevel::kDecisions));
  EXPECT_FALSE(log.enabled(EventLevel::kDetail));
  log.emit(EventLevel::kDecisions, "kept", {{"x", 1}});
  log.emit(EventLevel::kDetail, "dropped", {{"x", 2}});
  log.close();
  EXPECT_EQ(log.events_written(), 1u);
  const auto events = read_events_btrc(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "kept");
}

TEST(EventLogBinary, SelfMetricsCountBytesEventsBlocks) {
  const std::string path = temp_path("metrics.btrc");
  const std::uint64_t bytes0 =
      metrics().counter("obs.trace.bytes_written.btrc").value();
  const std::uint64_t events0 =
      metrics().counter("obs.trace.events_written.btrc").value();
  const std::uint64_t blocks0 =
      metrics().counter("obs.trace.blocks_flushed.btrc").value();
  EventLog log;
  log.open(path, EventFormat::kBinary, EventLevel::kDetail);
  for (int i = 0; i < 100; ++i)
    log.emit(EventLevel::kDetail, "m", {{"t", i}});
  log.close();
  EXPECT_EQ(metrics().counter("obs.trace.events_written.btrc").value(),
            events0 + 100);
  const std::uint64_t bytes =
      metrics().counter("obs.trace.bytes_written.btrc").value() - bytes0;
  EXPECT_EQ(bytes, slurp(path).size());
  EXPECT_GE(metrics().counter("obs.trace.blocks_flushed.btrc").value(),
            blocks0 + 1);
  EXPECT_EQ(log.sink_format_name(), "btrc");
}

TEST(EventLogText, SelfMetricsCountJsonlBytes) {
  const std::string path = temp_path("metrics.jsonl");
  const std::uint64_t bytes0 =
      metrics().counter("obs.trace.bytes_written.jsonl").value();
  const std::uint64_t events0 =
      metrics().counter("obs.trace.events_written.jsonl").value();
  EventLog log;
  log.open(path, EventFormat::kJsonl, EventLevel::kDetail);
  log.emit(EventLevel::kDecisions, "m", {{"t", 1}});
  log.close();
  EXPECT_EQ(metrics().counter("obs.trace.events_written.jsonl").value(),
            events0 + 1);
  EXPECT_EQ(metrics().counter("obs.trace.bytes_written.jsonl").value() -
                bytes0,
            slurp(path).size());
  EXPECT_EQ(log.sink_format_name(), "jsonl");
}

// ---- replay bit-identity ---------------------------------------------

#ifndef BURSTQ_NO_OBS

/// Records one simulator run into `path` (format from the extension) at
/// detail level; closes the global log before returning.
SimReport record_run(const std::string& path, const ProblemInstance& inst,
                     const Placement& placement, const SimConfig& cfg,
                     std::uint64_t seed) {
  events().open(path, event_format_from_path(path), EventLevel::kDetail);
  events().set_run_label("trace-parity");
  ClusterSimulator sim(inst, placement, cfg, Rng(seed));
  SimReport report = sim.run();
  events().close();
  events().set_run_label("");
  return report;
}

TEST(TraceReplay, BtrcReplayBitIdenticalToJsonl) {
  Rng rng(99);
  const OnOffParams p{0.01, 0.09};
  const auto inst = random_instance(40, 40, p, InstanceRanges{}, rng);
  const auto placed = queuing_ffd(inst);
  ASSERT_TRUE(placed.result.complete());
  SimConfig cfg;
  cfg.slots = 400;

  const std::string jsonl_path = temp_path("replay_parity.jsonl");
  const std::string btrc_path = temp_path("replay_parity.btrc");
  const SimReport live_j =
      record_run(jsonl_path, inst, placed.result.placement, cfg, 4242);
  const SimReport live_b =
      record_run(btrc_path, inst, placed.result.placement, cfg, 4242);
  ASSERT_EQ(live_j.mean_cvr, live_b.mean_cvr);  // same seed, same run

  SloOptions slo;
  const auto seg_j = replay_flight_log(jsonl_path, &slo);
  const auto seg_b = replay_flight_log(btrc_path, &slo);
  ASSERT_EQ(seg_j.size(), 1u);
  ASSERT_EQ(seg_b.size(), 1u);

  // CVR re-derivation: bit-for-bit across formats and vs the live run.
  ASSERT_EQ(seg_j[0].n_pms, seg_b[0].n_pms);
  for (std::size_t j = 0; j < seg_j[0].n_pms; ++j) {
    const PmId pm{j};
    EXPECT_EQ(seg_j[0].tracker.cvr(pm), seg_b[0].tracker.cvr(pm));
    EXPECT_EQ(seg_j[0].tracker.windowed_cvr(pm),
              seg_b[0].tracker.windowed_cvr(pm));
    EXPECT_EQ(seg_b[0].tracker.cvr(pm), live_b.pm_cvr[j]);
  }
  EXPECT_EQ(seg_j[0].migrations, seg_b[0].migrations);
  EXPECT_EQ(seg_j[0].slots_seen, seg_b[0].slots_seen);

  // SLO re-derivation: identical report text, down to every digit.
  ASSERT_NE(seg_j[0].slo, nullptr);
  ASSERT_NE(seg_b[0].slo, nullptr);
  EXPECT_EQ(seg_j[0].slo->report().render(), seg_b[0].slo->report().render());

  // And the binary file earns its keep on size.
  EXPECT_LT(slurp(btrc_path).size(), slurp(jsonl_path).size());
}

TEST(TraceReplay, CsvLogsAreRejectedWithClearError) {
  Rng rng(11);
  const OnOffParams p{0.01, 0.09};
  const auto inst = random_instance(10, 10, p, InstanceRanges{}, rng);
  const auto placed = queuing_ffd(inst);
  SimConfig cfg;
  cfg.slots = 50;
  const std::string csv_path = temp_path("replay_reject.csv");
  record_run(csv_path, inst, placed.result.placement, cfg, 1);
  try {
    replay_flight_log(csv_path, nullptr);
    FAIL() << "CSV replay must be rejected";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("lossy"), std::string::npos);
  }
}

#endif  // BURSTQ_NO_OBS

}  // namespace
}  // namespace burstq::obs
