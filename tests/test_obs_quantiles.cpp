// Streaming-quantile sketch (obs/quantiles.h): index math, bounds, and
// the accuracy guarantee that makes histogram p50/p95/p99 trustworthy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "obs/quantiles.h"
#include "obs/registry.h"

namespace burstq::obs {
namespace {

TEST(SketchIndex, ExactBelowThirtyTwo) {
  for (std::uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(sketch_bucket_of(v), v);
    EXPECT_EQ(sketch_bucket_lower(v), v);
    EXPECT_EQ(sketch_bucket_upper(v), v);
  }
}

TEST(SketchIndex, BucketsAreMonotoneAndContiguous) {
  // Every bucket's lower bound is exactly one past the previous bucket's
  // upper bound: no gaps, no overlaps.
  for (std::size_t b = 1; b < kSketchBuckets; ++b) {
    EXPECT_EQ(sketch_bucket_lower(b), sketch_bucket_upper(b - 1) + 1)
        << "bucket " << b;
    EXPECT_LE(sketch_bucket_lower(b), sketch_bucket_upper(b));
  }
}

TEST(SketchIndex, EveryValueMapsInsideItsBucket) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform draws cover every octave.
    const double exp = rng.uniform(0.0, 45.0);
    const auto v = static_cast<std::uint64_t>(std::pow(2.0, exp));
    const std::size_t b = sketch_bucket_of(v);
    ASSERT_LT(b, kSketchBuckets);
    EXPECT_GE(v, sketch_bucket_lower(b));
    EXPECT_LE(v, sketch_bucket_upper(b));
  }
}

TEST(SketchIndex, HugeValuesClampToLastBucket) {
  EXPECT_EQ(sketch_bucket_of(UINT64_MAX), kSketchBuckets - 1);
  EXPECT_GE(UINT64_MAX, sketch_bucket_lower(kSketchBuckets - 1));
}

TEST(SketchIndex, RelativeWidthBound) {
  // Above the exact range, bucket width / lower bound <= 2^-4: the
  // midpoint rule then errs by at most 1/32 relative.
  for (std::size_t b = 32; b + 1 < kSketchBuckets; ++b) {
    const double lo = static_cast<double>(sketch_bucket_lower(b));
    const double width =
        static_cast<double>(sketch_bucket_upper(b) - sketch_bucket_lower(b) + 1);
    EXPECT_LE(width / lo, 1.0 / 16.0 + 1e-12) << "bucket " << b;
  }
}

TEST(SketchSnapshot, EmptyQuantileIsZero) {
  SketchSnapshot s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.quantile(0.0), 0.0);
  EXPECT_EQ(s.quantile(1.0), 0.0);
}

TEST(SketchSnapshot, SingleValue) {
  Histogram h;
  h.record(1234567);
  const HistogramSnapshot s = h.snapshot();
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    const double est = s.quantile(q);
    EXPECT_NEAR(est, 1234567.0, 1234567.0 * kSketchRelativeError) << q;
  }
  // Extremes clamp to the true min/max, making q=0 and q=1 exact.
  EXPECT_EQ(s.quantile(0.0), 1234567.0);
  EXPECT_EQ(s.quantile(1.0), 1234567.0);
}

TEST(SketchSnapshot, ExactForSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v)
    for (std::uint64_t k = 0; k <= v; ++k) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  // 528 observations; values < 32 land in exact unit buckets.
  const std::vector<double> qs = {0.1, 0.5, 0.9, 0.99};
  std::vector<std::uint64_t> all;
  for (std::uint64_t v = 0; v < 32; ++v)
    for (std::uint64_t k = 0; k <= v; ++k) all.push_back(v);
  std::sort(all.begin(), all.end());
  for (double q : qs) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(all.size())));
    const std::uint64_t expect = all[rank == 0 ? 0 : rank - 1];
    EXPECT_EQ(s.quantile(q), static_cast<double>(expect)) << "q=" << q;
  }
}

TEST(SketchSnapshot, RelativeErrorOnLogUniformSamples) {
  Histogram h;
  Rng rng(99);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50000; ++i) {
    const auto v =
        static_cast<std::uint64_t>(std::pow(2.0, rng.uniform(5.0, 40.0)));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot s = h.snapshot();
  for (double q : {0.5, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double truth = static_cast<double>(samples[rank - 1]);
    EXPECT_NEAR(s.quantile(q), truth, truth * kSketchRelativeError)
        << "q=" << q;
  }
}

TEST(SketchSnapshot, QuantileMonotoneInQ) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i)
    h.record(rng.next_below(std::uint64_t{1} << 20));
  const HistogramSnapshot s = h.snapshot();
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double cur = s.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(SketchSnapshot, CoarseViewConsistentWithSketch) {
  // Every fine bucket lies wholly inside one coarse log2 bucket, so the
  // derived coarse counts must sum to the same total.
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 10000; ++i)
    h.record(rng.next_below(std::uint64_t{1} << 30));
  const HistogramSnapshot s = h.snapshot();
  std::uint64_t coarse_total = 0;
  for (const auto c : s.buckets) coarse_total += c;
  std::uint64_t fine_total = 0;
  for (const auto c : s.sketch.counts) fine_total += c;
  EXPECT_EQ(coarse_total, s.count);
  EXPECT_EQ(fine_total, s.count);
}

}  // namespace
}  // namespace burstq::obs
