// Tests for the next-fit / worst-fit packing variants.

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "placement/packing_variants.h"
#include "placement/queuing_ffd.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance simple_instance(std::size_t n_vms, std::size_t n_pms,
                                double rb, double cap) {
  ProblemInstance inst;
  for (std::size_t i = 0; i < n_vms; ++i)
    inst.vms.push_back(VmSpec{kP, rb, 1.0});
  for (std::size_t j = 0; j < n_pms; ++j) inst.pms.push_back(PmSpec{cap});
  return inst;
}

FitPredicate capacity_fit(const ProblemInstance& inst) {
  return [&inst](const Placement& p, VmId vm, PmId pm) {
    Resource load = inst.vms[vm.value].rb;
    for (std::size_t i : p.vms_on(pm)) load += inst.vms[i].rb;
    return load <= inst.pms[pm.value].capacity;
  };
}

SlackFunction capacity_slack(const ProblemInstance& inst) {
  return [&inst](const Placement& p, VmId vm, PmId pm) {
    Resource load = inst.vms[vm.value].rb;
    for (std::size_t i : p.vms_on(pm)) load += inst.vms[i].rb;
    return inst.pms[pm.value].capacity - load;
  };
}

std::vector<std::size_t> iota_order(std::size_t n) {
  std::vector<std::size_t> o(n);
  std::iota(o.begin(), o.end(), 0);
  return o;
}

TEST(NextFit, NeverLooksBack) {
  // Sizes 6, 6, 3 on capacity 10: NF puts 6|6,3 -> wait: 6 then 6 doesn't
  // fit PM0 -> open PM1; 3 doesn't go back to PM0 even though it fits.
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 6, 1}, VmSpec{kP, 6, 1}, VmSpec{kP, 3, 1}};
  inst.pms = {PmSpec{10}, PmSpec{10}, PmSpec{10}};
  const auto r = next_fit_place(inst, iota_order(3), capacity_fit(inst));
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.placement.pm_of(VmId{0}), PmId{0});
  EXPECT_EQ(r.placement.pm_of(VmId{1}), PmId{1});
  EXPECT_EQ(r.placement.pm_of(VmId{2}), PmId{1});  // joined the open PM
}

TEST(NextFit, CollectsUnplacedWhenPmsExhausted) {
  const auto inst = simple_instance(5, 2, 8.0, 10.0);
  const auto r = next_fit_place(inst, iota_order(5), capacity_fit(inst));
  EXPECT_EQ(r.placement.vms_assigned(), 2u);
  EXPECT_EQ(r.unplaced.size(), 3u);
}

TEST(WorstFit, PrefersEmptiestUsedPm) {
  // PM0 holds 6 (slack 4), PM1 holds 2 (slack 8): worst-fit sends the
  // next VM of size 3 to PM1.
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 6, 1}, VmSpec{kP, 2, 1}, VmSpec{kP, 3, 1}};
  inst.pms = {PmSpec{10}, PmSpec{10}, PmSpec{10}};
  Placement seed(3, 3);
  const auto fits = capacity_fit(inst);
  const auto slack = capacity_slack(inst);
  const std::vector<std::size_t> order{0, 1, 2};
  const auto r = worst_fit_place(inst, order, fits, slack);
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.placement.pm_of(VmId{2}), PmId{1});
}

TEST(WorstFit, PrefersUsedOverEmptyPm) {
  // An empty PM always has more raw slack; worst-fit must still prefer a
  // used feasible PM (otherwise it never consolidates at all).
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 2, 1}, VmSpec{kP, 2, 1}};
  inst.pms = {PmSpec{10}, PmSpec{10}};
  const auto r = worst_fit_place(inst, iota_order(2), capacity_fit(inst),
                                 capacity_slack(inst));
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.pms_used(), 1u);
}

TEST(QueuingPack, AllHeuristicsFeasibleAndComplete) {
  Rng rng(3);
  const auto inst = random_instance(150, 120, kP, InstanceRanges{}, rng);
  QueuingFfdOptions opt;
  const MapCalTable table(opt.max_vms_per_pm, kP, opt.rho);
  for (const char* h : {"first", "best", "worst", "next"}) {
    const auto r = queuing_pack(inst, table, h);
    EXPECT_TRUE(r.complete()) << h;
    EXPECT_TRUE(placement_satisfies_reservation(inst, r.placement, table))
        << h;
  }
}

TEST(QueuingPack, FirstMatchesQueuingFfd) {
  Rng rng(4);
  const auto inst = random_instance(100, 80, kP, InstanceRanges{}, rng);
  QueuingFfdOptions opt;
  const MapCalTable table(opt.max_vms_per_pm, kP, opt.rho);
  const auto pack = queuing_pack(inst, table, "first");
  const auto ffd = queuing_ffd_with_table(inst, table, opt);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    EXPECT_EQ(pack.placement.pm_of(VmId{i}), ffd.placement.pm_of(VmId{i}));
}

TEST(QueuingPack, HeuristicOrderingOnAverage) {
  // Classic bin-packing folklore says FF/BF beat WF, but under Eq. 17
  // the uniform max-Re block makes *tight* packing counterproductive:
  // cramming a big-Re VM into a PM of small-Re VMs inflates the whole
  // PM's block size.  Worst fit spreads the load and empirically packs
  // tighter here (a finding bench/ablation_packing quantifies).  The
  // robust claims: next fit is never better than worst fit, and nothing
  // beats first fit by a huge margin.
  double first = 0.0;
  double best = 0.0;
  double worst = 0.0;
  double next = 0.0;
  const MapCalTable table(16, kP, 0.01);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(100 + seed);
    const auto inst = random_instance(150, 150, kP, InstanceRanges{}, rng);
    first += static_cast<double>(queuing_pack(inst, table, "first").pms_used());
    best += static_cast<double>(queuing_pack(inst, table, "best").pms_used());
    worst += static_cast<double>(queuing_pack(inst, table, "worst").pms_used());
    next += static_cast<double>(queuing_pack(inst, table, "next").pms_used());
  }
  EXPECT_LE(worst, next);
  EXPECT_LE(first, next);
  EXPECT_LE(first, 1.3 * worst);
  EXPECT_LE(best, 1.3 * next);
}

TEST(QueuingPack, UnknownHeuristicThrows) {
  Rng rng(5);
  const auto inst = random_instance(5, 5, kP, InstanceRanges{}, rng);
  const MapCalTable table(16, kP, 0.01);
  EXPECT_THROW(queuing_pack(inst, table, "banana"), InvalidArgument);
}

}  // namespace
}  // namespace burstq
