// Kill-restart determinism of the durable ClusterSimulator: a run killed
// at any point and restored from snapshot + WAL must produce the
// byte-identical final report and trace of the uninterrupted run.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "durable/durable.h"
#include "durable/snapshot.h"
#include "durable/wal.h"
#include "obs/event_log.h"
#include "placement/baselines.h"
#include "placement/spec.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

namespace fs = std::filesystem;

const OnOffParams kP{0.05, 0.2};

ProblemInstance small_instance(std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(24, 12, kP, InstanceRanges{}, rng);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Deterministic textual digest of everything a SimReport carries.
std::string digest(const SimReport& r) {
  std::ostringstream ss;
  ss.precision(17);
  ss << r.total_migrations << ' ' << r.failed_migrations << ' '
     << r.pms_used_end << ' ' << r.pms_used_max << '\n';
  for (const std::size_t u : r.pms_used_timeline) ss << u << ',';
  ss << '\n';
  for (const std::size_t u : r.migrations_per_slot) ss << u << ',';
  ss << '\n';
  for (const auto& e : r.events)
    ss << e.slot << ':' << e.vm.value << ':' << e.from.value << ':'
       << (e.to.valid() ? static_cast<long long>(e.to.value) : -1) << ';';
  ss << '\n';
  for (const double c : r.pm_cvr) ss << c << ',';
  ss << '\n';
  for (const double c : r.pm_windowed_cvr_end) ss << c << ',';
  ss << '\n'
     << r.mean_cvr << ' ' << r.max_cvr << ' ' << r.energy_wh << '\n'
     << r.faults.pm_crashes << ' ' << r.faults.pm_recoveries << ' '
     << r.faults.evacuated << ' ' << r.faults.enqueued << ' '
     << r.faults.queue_end << ' ' << r.faults.retries << ' '
     << r.faults.migration_aborts << ' ' << r.faults.migration_stalls << ' '
     << r.faults.solver_degraded << ' ' << r.faults.lost_vms << '\n';
  return ss.str();
}

class DurableSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("burstq_dsim_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    obs::events().close();
    fs::remove_all(dir_);
  }

  [[nodiscard]] SimConfig base_config(const std::string& fault_spec,
                                      const std::string& state_dir) const {
    SimConfig cfg;
    cfg.slots = 60;
    cfg.policy.rho = 0.05;
    if (!fault_spec.empty()) {
      cfg.faults = fault::parse_fault_plan(fault_spec);
      cfg.recovery = fault::RecoveryPolicy{};
    }
    durable::DurabilityConfig d;
    d.dir = state_dir;
    d.snapshot_every = 20;
    cfg.durability = d;
    return cfg;
  }

  /// Runs to completion, restoring after every kill.  Returns the final
  /// report and counts restores/replayed slots.
  SimReport run_with_restores(const ProblemInstance& inst,
                              const Placement& placed, const SimConfig& cfg,
                              std::uint64_t seed, std::size_t* restores,
                              std::size_t* replayed) {
    for (;;) {
      ClusterSimulator sim(inst, placed, cfg, Rng(seed));
      if (restores != nullptr && *restores > 0) {
        const auto info = sim.restore_from_durable();
        if (replayed != nullptr) *replayed += info.replay_slots;
      }
      try {
        return sim.run();
      } catch (const durable::SimKilled&) {
        if (restores != nullptr) ++(*restores);
      }
    }
  }

  fs::path dir_;
};

TEST_F(DurableSimTest, UninterruptedRunWritesSnapshots) {
  const auto inst = small_instance(11);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  const SimConfig cfg = base_config("", (dir_ / "state").string());
  ClusterSimulator sim(inst, placed.placement, cfg, Rng(11));
  (void)sim.run();
  durable::SnapshotStore store((dir_ / "state").string(), false);
  const auto slots = store.snapshot_slots();
  ASSERT_FALSE(slots.empty());
  // Cadence 20 over 60 slots: snapshots at 0, 20, 40; prune keeps 2.
  EXPECT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots.back(), 40u);
}

TEST_F(DurableSimTest, KillRestartReportIsByteIdentical) {
  const auto inst = small_instance(12);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());

  // Faults but no kill: the baseline truth.
  const SimConfig base = base_config("crash@15:pm=2;recover@30:pm=2",
                                     (dir_ / "base").string());
  ClusterSimulator ref(inst, placed.placement, base, Rng(12));
  const std::string want = digest(ref.run());

  // Same run killed early/mid/late, restored each time.
  for (const std::size_t kill_at : {1UL, 17UL, 35UL, 59UL}) {
    const std::string sub = "k" + std::to_string(kill_at);
    const SimConfig killed = base_config(
        "crash@15:pm=2;recover@30:pm=2;kill@" + std::to_string(kill_at),
        (dir_ / sub).string());
    std::size_t restores = 0;
    std::size_t replayed = 0;
    const SimReport rep = run_with_restores(inst, placed.placement, killed,
                                            12, &restores, &replayed);
    EXPECT_EQ(restores, 1u) << "kill@" << kill_at;
    EXPECT_LE(replayed, 20u) << "kill@" << kill_at;
    EXPECT_EQ(digest(rep), want) << "kill@" << kill_at;
  }
}

TEST_F(DurableSimTest, MultipleKillsStillConverge) {
  const auto inst = small_instance(13);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  const SimConfig base = base_config("", (dir_ / "base").string());
  ClusterSimulator ref(inst, placed.placement, base, Rng(13));
  const std::string want = digest(ref.run());

  const SimConfig killed =
      base_config("kill@10;kill@25;kill@26", (dir_ / "killed").string());
  std::size_t restores = 0;
  const SimReport rep = run_with_restores(inst, placed.placement, killed,
                                          13, &restores, nullptr);
  EXPECT_EQ(restores, 3u);
  EXPECT_EQ(digest(rep), want);
}

TEST_F(DurableSimTest, TraceStaysByteIdenticalAcrossKills) {
  const auto inst = small_instance(14);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());

  for (const char* ext : {"jsonl", "btrc"}) {
    const std::string ref_trace =
        (dir_ / ("ref." + std::string(ext))).string();
    obs::events().open(ref_trace, obs::event_format_from_path(ref_trace));
    const SimConfig base =
        base_config("", (dir_ / ("b" + std::string(ext))).string());
    ClusterSimulator ref(inst, placed.placement, base, Rng(14));
    const std::string want = digest(ref.run());
    obs::events().close();

    const std::string kill_trace =
        (dir_ / ("kill." + std::string(ext))).string();
    obs::events().open(kill_trace, obs::event_format_from_path(kill_trace));
    const SimConfig killed =
        base_config("kill@33", (dir_ / ("k" + std::string(ext))).string());
    std::size_t restores = 0;
    const SimReport rep = run_with_restores(inst, placed.placement, killed,
                                            14, &restores, nullptr);
    obs::events().close();

    EXPECT_EQ(restores, 1u) << ext;
    EXPECT_EQ(digest(rep), want) << ext;
    EXPECT_EQ(slurp(kill_trace), slurp(ref_trace))
        << "trace bytes diverged for " << ext;
  }
}

TEST_F(DurableSimTest, TornWalTailStillRecovers) {
  const auto inst = small_instance(15);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  const SimConfig base = base_config("", (dir_ / "base").string());
  ClusterSimulator ref(inst, placed.placement, base, Rng(15));
  const std::string want = digest(ref.run());

  const std::string state = (dir_ / "killed").string();
  const SimConfig killed = base_config("kill@31", state);
  ClusterSimulator first(inst, placed.placement, killed, Rng(15));
  try {
    (void)first.run();
    FAIL() << "expected SimKilled";
  } catch (const durable::SimKilled& k) {
    EXPECT_EQ(k.slot, 31u);
  }

  // Tear the WAL tail: chop 3 bytes off the newest journal (snapshot 20,
  // groups 20..30 -> the slot-30 group frame is now torn).
  durable::SnapshotStore store(state, false);
  const std::string wal = store.wal_path(20);
  ASSERT_TRUE(fs::exists(wal));
  const auto size = fs::file_size(wal);
  fs::resize_file(wal, size - 3);
  const durable::WalScan scan = durable::scan_wal(wal);
  EXPECT_TRUE(scan.torn);

  ClusterSimulator second(inst, placed.placement, killed, Rng(15));
  const auto info = second.restore_from_durable();
  EXPECT_EQ(info.snapshot_slot, 20u);
  EXPECT_EQ(info.replay_slots, 10u);  // slot 30's group was torn away
  // The torn group left replay short of the kill slot, so the scripted
  // kill re-fires once; the next restore sees the re-committed journal.
  try {
    EXPECT_EQ(digest(second.run()), want);
  } catch (const durable::SimKilled& k) {
    EXPECT_EQ(k.slot, 31u);
    ClusterSimulator third(inst, placed.placement, killed, Rng(15));
    const auto info2 = third.restore_from_durable();
    EXPECT_EQ(info2.replay_slots, 11u);
    EXPECT_EQ(digest(third.run()), want);
  }
}

TEST_F(DurableSimTest, CorruptSnapshotFailsLoudly) {
  const auto inst = small_instance(16);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  const std::string state = (dir_ / "killed").string();
  const SimConfig killed = base_config("kill@45", state);
  ClusterSimulator first(inst, placed.placement, killed, Rng(16));
  EXPECT_THROW((void)first.run(), durable::SimKilled);

  durable::SnapshotStore store(state, false);
  const std::string snap = store.snapshot_path(40);
  ASSERT_TRUE(fs::exists(snap));
  {
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    const auto mid = static_cast<std::streamoff>(fs::file_size(snap) / 2);
    f.seekg(mid);
    char b = 0;
    f.read(&b, 1);
    f.seekp(mid);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }

  ClusterSimulator second(inst, placed.placement, killed, Rng(16));
  try {
    (void)second.restore_from_durable();
    FAIL() << "expected CorruptState";
  } catch (const durable::CorruptState& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt at byte"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(DurableSimTest, RestoreIntoDifferentConfigIsRejected) {
  const auto inst = small_instance(17);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  const std::string state = (dir_ / "state").string();
  const SimConfig killed = base_config("kill@30", state);
  ClusterSimulator first(inst, placed.placement, killed, Rng(17));
  EXPECT_THROW((void)first.run(), durable::SimKilled);

  SimConfig other = killed;
  other.slots = 90;  // different horizon -> different digest
  ClusterSimulator second(inst, placed.placement, other, Rng(17));
  EXPECT_THROW((void)second.restore_from_durable(), durable::CorruptState);
}

TEST(DurableSimConfig, KillsRequireDurability) {
  SimConfig cfg;
  cfg.faults = fault::parse_fault_plan("kill@5");
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  durable::DurabilityConfig d;
  d.dir = "/tmp/burstq-wherever";
  cfg.durability = d;
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace burstq
