// Cross-module property grid: the full analytic pipeline (model ->
// MapCal -> placement -> simulation) checked for its invariants across a
// parameter lattice of (pattern, rho, d, seed).  Each case is small; the
// value is in the breadth of the sweep.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/scenario.h"
#include "placement/baselines.h"
#include "placement/placement.h"
#include "placement/queuing_ffd.h"
#include "queuing/geom_queue.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

using GridParam = std::tuple<SpikePattern, double, std::size_t, std::uint64_t>;

class PipelineGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(PipelineGrid, EndToEndInvariants) {
  const auto [pattern, rho, d, seed] = GetParam();
  Rng rng(seed);
  const auto inst =
      pattern_instance(pattern, 80, 60, paper_onoff_params(), rng);

  QueuingFfdOptions opt;
  opt.rho = rho;
  opt.max_vms_per_pm = d;
  const auto out = queuing_ffd(inst, opt);

  // 1. Placement is complete and feasible.
  ASSERT_TRUE(out.result.complete());
  EXPECT_TRUE(
      placement_satisfies_reservation(inst, out.result.placement, out.table));
  EXPECT_TRUE(
      placement_satisfies_initial_capacity(inst, out.result.placement));

  // 2. Table invariants: mapping monotone, bounds within budget.
  std::size_t prev = 0;
  for (std::size_t k = 1; k <= d; ++k) {
    EXPECT_GE(out.table.blocks(k), prev);
    prev = out.table.blocks(k);
    EXPECT_LE(out.table.cvr_bound(k), rho + kCdfTieEpsilon);
  }

  // 3. Per-PM: the analytic overflow probability at the reserved block
  // count matches the table's bound (independent computation through the
  // Geom/Geom/K module).
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    const std::size_t k = out.result.placement.count_on(PmId{j});
    if (k == 0) continue;
    const auto metrics =
        analyze_geom_queue(k, out.table.blocks(k), out.rounded_params);
    EXPECT_NEAR(metrics.overflow_probability, out.table.cvr_bound(k), 1e-9);
  }

  // 4. Short simulation respects conservation.
  SimConfig cfg;
  cfg.slots = 30;
  cfg.policy.rho = rho;
  cfg.policy.max_vms_per_pm = d;
  ClusterSimulator sim(inst, out.result.placement, cfg, rng.split());
  const auto rep = sim.run();
  EXPECT_EQ(sim.placement().vms_assigned(), inst.n_vms());
  EXPECT_LE(rep.mean_cvr, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, PipelineGrid,
    ::testing::Combine(
        ::testing::Values(SpikePattern::kEqual, SpikePattern::kSmallSpike,
                          SpikePattern::kLargeSpike),
        ::testing::Values(0.001, 0.01, 0.1),
        ::testing::Values(std::size_t{8}, std::size_t{16}),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2})));

// Analytic CVR bound vs long-run simulation, across rho values: the
// statistical heart of the reproduction, swept.
class CvrBudgetSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(CvrBudgetSweep, SimulatedCvrTracksBudget) {
  const auto [rho, seed] = GetParam();
  Rng rng(seed);
  const auto inst = pattern_instance(SpikePattern::kEqual, 150, 120,
                                     paper_onoff_params(), rng);
  QueuingFfdOptions opt;
  opt.rho = rho;
  const auto out = queuing_ffd(inst, opt);
  ASSERT_TRUE(out.result.complete());
  const auto cvr =
      simulate_cvr(inst, out.result.placement, 12000, rng.split());
  double mean = 0.0;
  std::size_t used = 0;
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    if (out.result.placement.count_on(PmId{j}) == 0) continue;
    mean += cvr[j];
    ++used;
  }
  mean /= static_cast<double>(used);
  // The mean realized CVR must not exceed the budget beyond noise
  // (tolerance scales with the budget since variance does too).
  EXPECT_LE(mean, rho * 1.5 + 0.002) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, CvrBudgetSweep,
    ::testing::Combine(::testing::Values(0.001, 0.005, 0.02, 0.05),
                       ::testing::Values(std::uint64_t{11},
                                         std::uint64_t{12})));

// Baseline sanity swept over patterns: RP never violates, RB always
// packs tightest at t = 0.
class BaselineGrid : public ::testing::TestWithParam<SpikePattern> {};

TEST_P(BaselineGrid, RpZeroViolationRbTightest) {
  Rng rng(31 + static_cast<std::uint64_t>(GetParam()));
  const auto inst =
      pattern_instance(GetParam(), 120, 100, paper_onoff_params(), rng);
  const auto rp = ffd_by_peak(inst);
  const auto rb = ffd_by_normal(inst);
  ASSERT_TRUE(rp.complete() && rb.complete());
  const auto cvr = simulate_cvr(inst, rp.placement, 3000, rng.split());
  for (double c : cvr) EXPECT_DOUBLE_EQ(c, 0.0);
  EXPECT_LE(rb.pms_used(), rp.pms_used());
}

INSTANTIATE_TEST_SUITE_P(Patterns, BaselineGrid,
                         ::testing::ValuesIn(all_patterns()));

}  // namespace
}  // namespace burstq
