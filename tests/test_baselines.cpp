// Tests for the RP / RB / RB-EX baselines, including the ordering
// relations the paper's Figure 5 relies on.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/placement.h"
#include "placement/queuing_ffd.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance typical_instance(std::size_t n_vms, std::size_t n_pms,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n_vms, n_pms, kP, InstanceRanges{}, rng);
}

double sum_key_on(const ProblemInstance& inst, const Placement& p,
                  PmId pm, double (*key)(const VmSpec&)) {
  double s = 0.0;
  for (std::size_t i : p.vms_on(pm)) s += key(inst.vms[i]);
  return s;
}

double key_rp(const VmSpec& v) { return v.rp(); }
double key_rb(const VmSpec& v) { return v.rb; }

TEST(FfdByPeak, NeverExceedsCapacityAtPeak) {
  const auto inst = typical_instance(200, 120, 1);
  const auto r = ffd_by_peak(inst);
  ASSERT_TRUE(r.complete());
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_LE(sum_key_on(inst, r.placement, PmId{j}, key_rp),
              inst.pms[j].capacity * (1.0 + 1e-9));
}

TEST(FfdByNormal, NormalLoadWithinCapacity) {
  const auto inst = typical_instance(200, 120, 2);
  const auto r = ffd_by_normal(inst);
  ASSERT_TRUE(r.complete());
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_LE(sum_key_on(inst, r.placement, PmId{j}, key_rb),
              inst.pms[j].capacity * (1.0 + 1e-9));
}

TEST(FfdReserved, HonorsHeadroom) {
  const auto inst = typical_instance(200, 120, 3);
  const double delta = 0.3;
  const auto r = ffd_reserved(inst, delta);
  ASSERT_TRUE(r.complete());
  for (std::size_t j = 0; j < inst.n_pms(); ++j)
    EXPECT_LE(sum_key_on(inst, r.placement, PmId{j}, key_rb),
              inst.pms[j].capacity * (1.0 - delta) * (1.0 + 1e-9));
}

TEST(FfdReserved, DeltaZeroEqualsRb) {
  const auto inst = typical_instance(100, 60, 4);
  const auto rb = ffd_by_normal(inst);
  const auto ex0 = ffd_reserved(inst, 0.0);
  EXPECT_EQ(rb.pms_used(), ex0.pms_used());
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    EXPECT_EQ(rb.placement.pm_of(VmId{i}), ex0.placement.pm_of(VmId{i}));
}

TEST(FfdReserved, InvalidDeltaThrows) {
  const auto inst = typical_instance(5, 5, 5);
  EXPECT_THROW(ffd_reserved(inst, 1.0), InvalidArgument);
  EXPECT_THROW(ffd_reserved(inst, -0.1), InvalidArgument);
}

TEST(Baselines, RespectVmCap) {
  const auto inst = typical_instance(60, 60, 6);
  for (const auto& r :
       {ffd_by_peak(inst, 2), ffd_by_normal(inst, 2), ffd_reserved(inst, 0.3, 2)}) {
    for (std::size_t j = 0; j < inst.n_pms(); ++j)
      EXPECT_LE(r.placement.count_on(PmId{j}), 2u);
  }
}

// The Figure 5 ordering: RB <= QUEUE <= RP in PMs used, and RB-EX above
// RB.  FFD is a heuristic, so the ordering is not a per-instance theorem
// (packing anomalies can shift a bin or two); we allow a 2-PM slack per
// instance and require the strict ordering on average across seeds.
class BaselineOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineOrdering, PmCountsOrderedWithSlack) {
  const auto inst = typical_instance(200, 150, GetParam());
  const auto rp = ffd_by_peak(inst);
  const auto rb = ffd_by_normal(inst);
  const auto rbex = ffd_reserved(inst, 0.3);
  const auto queue = queuing_ffd(inst);
  ASSERT_TRUE(rp.complete());
  ASSERT_TRUE(rb.complete());
  ASSERT_TRUE(rbex.complete());
  ASSERT_TRUE(queue.result.complete());

  EXPECT_LE(rb.pms_used(), queue.result.pms_used() + 2);
  EXPECT_LE(queue.result.pms_used(), rp.pms_used() + 2);
  EXPECT_GE(rbex.pms_used() + 2, rb.pms_used());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineOrdering,
                         ::testing::Range<std::uint64_t>(10, 25));

TEST(BaselineOrdering, StrictOnAverage) {
  double rp_sum = 0.0;
  double rb_sum = 0.0;
  double q_sum = 0.0;
  for (std::uint64_t seed = 10; seed < 25; ++seed) {
    const auto inst = typical_instance(200, 150, seed);
    rp_sum += static_cast<double>(ffd_by_peak(inst).pms_used());
    rb_sum += static_cast<double>(ffd_by_normal(inst).pms_used());
    q_sum += static_cast<double>(queuing_ffd(inst).result.pms_used());
  }
  EXPECT_LT(rb_sum, q_sum);
  EXPECT_LT(q_sum, rp_sum);
  // The headline claim: QUEUE saves a substantial fraction vs RP.
  EXPECT_LT(q_sum, 0.9 * rp_sum);
}

TEST(StrategyName, AllNamed) {
  EXPECT_STREQ(strategy_name(Strategy::kQueue), "QUEUE");
  EXPECT_STREQ(strategy_name(Strategy::kPeak), "RP");
  EXPECT_STREQ(strategy_name(Strategy::kNormal), "RB");
  EXPECT_STREQ(strategy_name(Strategy::kReserved), "RB-EX");
}

}  // namespace
}  // namespace burstq
