// Unit tests for ThreadPool and parallel_for.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/parallel.h"

namespace burstq {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    std::vector<double> out(64);
    parallel_for(64, [&](std::size_t i) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= i; ++k) acc += static_cast<double>(k * k);
      out[i] = acc;
    }, threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
}

TEST(ParallelForWorkers, WorkerIndexInRangeAndAllIndicesCovered) {
  const std::size_t n = 5000;
  const std::size_t threads = 4;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<bool> worker_out_of_range{false};
  parallel_for_workers(
      n,
      [&](std::size_t i, std::size_t w) {
        if (w >= threads) worker_out_of_range.store(true);
        hits[i].fetch_add(1);
      },
      threads);
  EXPECT_FALSE(worker_out_of_range.load());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForWorkers, SingleThreadReportsWorkerZeroInOrder) {
  std::vector<std::size_t> order;
  parallel_for_workers(
      4,
      [&](std::size_t i, std::size_t w) {
        EXPECT_EQ(w, 0u);
        order.push_back(i);
      },
      1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadCount, OverrideWinsOverEverything) {
  set_thread_count_override(3);
  EXPECT_EQ(default_thread_count(), 3u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 3u);
  set_thread_count_override(0);  // clear
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadCount, EnvVariableRespectedWhenNoOverride) {
  set_thread_count_override(0);
  ::setenv("BURSTQ_THREADS", "5", 1);
  EXPECT_EQ(default_thread_count(), 5u);
  ::setenv("BURSTQ_THREADS", "not-a-number", 1);
  EXPECT_GE(default_thread_count(), 1u);  // garbage falls through to hardware
  ::unsetenv("BURSTQ_THREADS");
}

TEST(ThreadCount, OverrideBeatsEnv) {
  ::setenv("BURSTQ_THREADS", "7", 1);
  set_thread_count_override(2);
  EXPECT_EQ(default_thread_count(), 2u);
  set_thread_count_override(0);
  EXPECT_EQ(default_thread_count(), 7u);
  ::unsetenv("BURSTQ_THREADS");
}

}  // namespace
}  // namespace burstq
