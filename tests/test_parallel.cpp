// Unit tests for ThreadPool and parallel_for.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/parallel.h"

namespace burstq {
namespace {

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    std::vector<double> out(64);
    parallel_for(64, [&](std::size_t i) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= i; ++k) acc += static_cast<double>(k * k);
      out[i] = acc;
    }, threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
}

}  // namespace
}  // namespace burstq
