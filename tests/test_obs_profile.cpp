// Trace analytics tests: the query expression engine, span-tree
// reconstruction (inclusive/exclusive time, slot attribution, critical
// paths, collapsed stacks), span-event emission, and the end-to-end
// determinism contracts — same-seed runs render byte-identical
// `trace profile` and `slo explain` reports, JSONL and BTRC recordings
// agree, and explain pointers resolve to events inside the named
// breach window.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "obs/event_log.h"
#include "obs/jsonl.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/query.h"
#include "obs/trace.h"
#include "placement/placement.h"
#include "queuing/mapcal.h"
#include "sim/cluster_sim.h"
#include "sim/flight.h"

namespace burstq::obs {
namespace {

RecordedEvent ev(const std::string& json) {
  auto parsed = parse_event_line(json);
  EXPECT_TRUE(parsed.has_value()) << json;
  return *parsed;
}

// ---- query expression engine ----------------------------------------

TEST(Query, EmptyExpressionMatchesEverything) {
  const Query q = Query::parse("   ");
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.matches(ev("{\"kind\":\"slot.obs\",\"t\":3}")));
}

TEST(Query, KindAndNumericClausesAreAnded) {
  const Query q = Query::parse("kind=slot.obs, t>=3, t<5");
  EXPECT_TRUE(q.matches(ev("{\"kind\":\"slot.obs\",\"t\":3}")));
  EXPECT_TRUE(q.matches(ev("{\"kind\":\"slot.obs\",\"t\":4}")));
  EXPECT_FALSE(q.matches(ev("{\"kind\":\"slot.obs\",\"t\":5}")));
  EXPECT_FALSE(q.matches(ev("{\"kind\":\"migration\",\"t\":3}")));
}

TEST(Query, StringBoolAndMissingFieldSemantics) {
  EXPECT_TRUE(Query::parse("name=sim.slot")
                  .matches(ev("{\"kind\":\"x\",\"name\":\"sim.slot\"}")));
  EXPECT_TRUE(
      Query::parse("ok=true").matches(ev("{\"kind\":\"x\",\"ok\":true}")));
  // ok=true coerces bool->1 only for numeric text; "true" is a string
  // compare against the rendered value.
  EXPECT_FALSE(
      Query::parse("ok=true").matches(ev("{\"kind\":\"x\",\"ok\":false}")));
  // An absent field never matches, not even with !=.
  EXPECT_FALSE(
      Query::parse("t!=3").matches(ev("{\"kind\":\"x\",\"u\":1}")));
}

TEST(Query, OrderingOnNonNumericValuesFails) {
  EXPECT_FALSE(Query::parse("name>a").matches(
      ev("{\"kind\":\"x\",\"name\":\"zzz\"}")));
}

TEST(Query, MalformedExpressionsThrow) {
  EXPECT_THROW(Query::parse("justakey"), InvalidArgument);
  EXPECT_THROW(Query::parse("=3"), InvalidArgument);
  EXPECT_THROW(Query::parse("a=1,,b=2"), InvalidArgument);
  EXPECT_THROW(Query::parse("kind<3"), InvalidArgument);
}

// ---- span-tree reconstruction ---------------------------------------

std::vector<RecordedEvent> nested_span_events() {
  return {
      ev("{\"kind\":\"span.begin\",\"id\":1,\"parent\":0,\"thread\":0,"
         "\"name\":\"root\",\"t_ns\":1}"),
      ev("{\"kind\":\"span.begin\",\"id\":2,\"parent\":1,\"thread\":0,"
         "\"name\":\"child\",\"t_ns\":2}"),
      ev("{\"kind\":\"span.end\",\"id\":2,\"t_ns\":5}"),
      ev("{\"kind\":\"span.end\",\"id\":1,\"t_ns\":10}"),
  };
}

SpanProfile build(const std::vector<RecordedEvent>& events) {
  SpanTreeBuilder builder;
  for (const RecordedEvent& e : events) builder.add(e);
  return builder.finish();
}

TEST(SpanTreeBuilder, NestedSpansSplitInclusiveFromExclusive) {
  const SpanProfile p = build(nested_span_events());
  EXPECT_EQ(p.events, 4u);
  EXPECT_EQ(p.span_events, 4u);
  EXPECT_EQ(p.spans, 2u);
  EXPECT_EQ(p.unmatched_ends, 0u);
  EXPECT_EQ(p.unclosed, 0u);
  ASSERT_EQ(p.by_name.size(), 2u);
  // root: incl 9, excl 9-3=6; child: incl=excl=3.  Sorted excl desc.
  EXPECT_EQ(p.by_name[0].name, "root");
  EXPECT_EQ(p.by_name[0].incl_ns, 9u);
  EXPECT_EQ(p.by_name[0].excl_ns, 6u);
  EXPECT_EQ(p.by_name[1].name, "child");
  EXPECT_EQ(p.by_name[1].incl_ns, 3u);
  EXPECT_EQ(p.by_name[1].excl_ns, 3u);
  ASSERT_EQ(p.collapsed.size(), 2u);
  EXPECT_EQ(p.collapsed[0].stack, "root");
  EXPECT_EQ(p.collapsed[0].self_ns, 6u);
  EXPECT_EQ(p.collapsed[1].stack, "root;child");
  EXPECT_EQ(p.collapsed[1].self_ns, 3u);
  // One slot row (-1 = setup); critical path descends into the child.
  ASSERT_EQ(p.slots.size(), 1u);
  EXPECT_EQ(p.slots[0].slot, -1);
  EXPECT_EQ(p.slots[0].root_incl_ns, 9u);
  EXPECT_EQ(p.slots[0].critical_ns, 9u);
  EXPECT_EQ(p.slots[0].critical_path, "root;child");
}

TEST(SpanTreeBuilder, SlotAttributionFollowsSlotObs) {
  // A span beginning after slot.obs(t) belongs to slot t+1; sim.config
  // moves setup (-1) to slot 0.
  const SpanProfile p = build({
      ev("{\"kind\":\"span.begin\",\"id\":1,\"parent\":0,\"thread\":0,"
         "\"name\":\"setup\",\"t_ns\":1}"),
      ev("{\"kind\":\"span.end\",\"id\":1,\"t_ns\":2}"),
      ev("{\"kind\":\"sim.config\",\"label\":\"x\",\"n_pms\":2,"
         "\"slots\":4,\"window\":5,\"rho\":0.01}"),
      ev("{\"kind\":\"span.begin\",\"id\":2,\"parent\":0,\"thread\":0,"
         "\"name\":\"slot0\",\"t_ns\":3}"),
      ev("{\"kind\":\"span.end\",\"id\":2,\"t_ns\":5}"),
      ev("{\"kind\":\"slot.obs\",\"t\":0,\"active\":\"0 1\","
         "\"viol\":\"\"}"),
      ev("{\"kind\":\"span.begin\",\"id\":3,\"parent\":0,\"thread\":0,"
         "\"name\":\"slot1\",\"t_ns\":6}"),
      ev("{\"kind\":\"span.end\",\"id\":3,\"t_ns\":10}"),
  });
  ASSERT_EQ(p.slots.size(), 3u);
  EXPECT_EQ(p.slots[0].slot, -1);
  EXPECT_EQ(p.slots[0].critical_path, "setup");
  EXPECT_EQ(p.slots[1].slot, 0);
  EXPECT_EQ(p.slots[1].critical_path, "slot0");
  EXPECT_EQ(p.slots[2].slot, 1);
  EXPECT_EQ(p.slots[2].critical_path, "slot1");
  EXPECT_EQ(p.slots[2].critical_ns, 4u);
}

TEST(SpanTreeBuilder, UnmatchedEndsAndUnclosedBeginsAreCounted) {
  const SpanProfile p = build({
      ev("{\"kind\":\"span.end\",\"id\":99,\"t_ns\":4}"),
      ev("{\"kind\":\"span.begin\",\"id\":7,\"parent\":0,\"thread\":0,"
         "\"name\":\"truncated\",\"t_ns\":5}"),
  });
  EXPECT_EQ(p.unmatched_ends, 1u);
  EXPECT_EQ(p.unclosed, 1u);
  EXPECT_EQ(p.spans, 0u);
}

TEST(SpanProfile, RenderIsDeterministicAndCarriesSchema) {
  const SpanProfile p = build(nested_span_events());
  const std::string a = p.render();
  const std::string b = p.render();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("profile.schema=burstq.profile/v1"), std::string::npos);
  EXPECT_NE(a.find("root;child"), std::string::npos);
  const std::string collapsed = p.render_collapsed();
  EXPECT_EQ(collapsed, "root 6\nroot;child 3\n");
}

TEST(FlameSvg, DeterministicSelfContainedOutput) {
  const SpanProfile p = build(nested_span_events());
  const std::string a = render_flame_svg(p.collapsed, "t");
  EXPECT_EQ(a, render_flame_svg(p.collapsed, "t"));
  EXPECT_NE(a.find("<svg"), std::string::npos);
  EXPECT_NE(a.find("</svg>"), std::string::npos);
  EXPECT_NE(a.find("child"), std::string::npos);
  // Empty input still renders a valid document.
  EXPECT_NE(render_flame_svg({}, "empty").find("</svg>"),
            std::string::npos);
}

#ifndef BURSTQ_NO_OBS

// ---- span-event emission --------------------------------------------

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

void nested_named_spans(int repeats) {
  for (int i = 0; i < repeats; ++i) {
    BURSTQ_SPAN("test.outer");
    { BURSTQ_SPAN("test.inner"); }
  }
}

TEST(SpanEvents, EmitsPairedEventsWithParentLinks) {
  const std::string path = temp_path("span_pairs.jsonl");
  events().open(path, EventFormat::kJsonl, EventLevel::kDetail);
  set_span_events({1, true});
  nested_named_spans(3);
  set_span_events({});
  events().close();

  const auto recorded = read_events_jsonl(path);
  std::map<std::int64_t, std::string> begin_name;
  std::map<std::int64_t, std::int64_t> parent;
  std::size_t ends = 0;
  for (const RecordedEvent& e : recorded) {
    if (e.kind == "span.begin") {
      const std::int64_t id = e.integer("id");
      EXPECT_EQ(begin_name.count(id), 0u) << "span ids must be unique";
      begin_name[id] = std::string(e.str("name"));
      parent[id] = e.integer("parent");
      EXPECT_TRUE(e.has("thread"));
      EXPECT_TRUE(e.has("t_ns"));
    } else if (e.kind == "span.end") {
      EXPECT_EQ(begin_name.count(e.integer("id")), 1u);
      ++ends;
    }
  }
  EXPECT_EQ(begin_name.size(), 6u);  // 3 x (outer + inner)
  EXPECT_EQ(ends, 6u);
  for (const auto& [id, name] : begin_name) {
    if (name == "test.inner") {
      ASSERT_EQ(begin_name.count(parent[id]), 1u);
      EXPECT_EQ(begin_name[parent[id]], "test.outer");
    } else {
      EXPECT_EQ(parent[id], 0) << "outer spans are roots";
    }
  }
}

TEST(SpanEvents, SamplingEmitsOneInNAndCountsDrops) {
  const std::string path = temp_path("span_sampled.jsonl");
  const auto counter_value = [](const char* name) -> std::uint64_t {
    const MetricsSnapshot snap = metrics().scrape();
    const CounterSample* c = snap.counter(name);
    return c == nullptr ? 0 : c->value;
  };
  const std::uint64_t dropped0 =
      counter_value("obs.span.events_dropped");
  events().open(path, EventFormat::kJsonl, EventLevel::kDetail);
  set_span_events({2, true});
  nested_named_spans(10);  // 20 named spans on this thread
  set_span_events({});
  events().close();

  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const RecordedEvent& e : read_events_jsonl(path)) {
    begins += e.kind == "span.begin" ? 1u : 0u;
    ends += e.kind == "span.end" ? 1u : 0u;
  }
  EXPECT_EQ(begins, 10u);  // exactly one in two
  EXPECT_EQ(ends, begins) << "sampled spans always emit begin+end pairs";
  EXPECT_EQ(counter_value("obs.span.events_dropped"), dropped0 + 10u);
}

TEST(SpanEvents, SilentWithoutDetailSink) {
  const std::string path = temp_path("span_decisions.jsonl");
  events().open(path, EventFormat::kJsonl, EventLevel::kDecisions);
  set_span_events({1, true});
  nested_named_spans(2);
  set_span_events({});
  events().close();
  for (const RecordedEvent& e : read_events_jsonl(path))
    EXPECT_NE(e.kind.substr(0, 5), "span.");
}

// ---- end-to-end determinism contracts -------------------------------

/// Overcommitted fleet: 8 bursty VMs per PM, so CVR violations (and,
/// replayed with short SLO windows, breach episodes) are guaranteed.
ProblemInstance overcommitted_instance() {
  ProblemInstance inst;
  for (std::size_t i = 0; i < 24; ++i)
    inst.vms.push_back(VmSpec{OnOffParams{0.05, 0.08}, 2.0, 6.0});
  inst.pms.assign(3, PmSpec{20.0});
  return inst;
}

/// Records one same-seed simulator run (full span sampling, virtual
/// clock) into `path`.
void record_run(const std::string& path) {
  ProblemInstance inst = overcommitted_instance();
  Placement placed(inst);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    placed.assign(VmId{i}, PmId{i % inst.n_pms()});
  // A warm MapCal cache would swallow spans a cold run emits; every
  // recording must start cold for byte-identity across recordings.
  mapcal_table_cache_clear();
  events().open(path, event_format_from_path(path), EventLevel::kDetail);
  set_span_events({1, true});
  SimConfig cfg;
  cfg.slots = 60;
  ClusterSimulator sim(inst, placed, cfg, Rng(1234));
  (void)sim.run();
  set_span_events({});
  events().close();
}

SloExplainOptions short_windows() {
  SloExplainOptions opt;
  opt.slo.fast_window = 6;
  opt.slo.slow_window = 12;
  return opt;
}

/// Drops the two per-format lines (`slo.explain.format=`, `pointer `)
/// so JSONL and BTRC reports of the same run can be compared.
std::string strip_format_lines(const std::string& report) {
  std::istringstream in(report);
  std::string out;
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("slo.explain.format=", 0) != 0 &&
        line.rfind("pointer ", 0) != 0)
      out += line + "\n";
  return out;
}

TEST(TraceProfileEndToEnd, SameSeedAndCrossFormatByteIdentity) {
  const std::string a = temp_path("prof_a.jsonl");
  const std::string b = temp_path("prof_b.jsonl");
  const std::string c = temp_path("prof_c.btrc");
  record_run(a);
  record_run(b);
  record_run(c);
  const std::string report_a = profile_trace(a).render();
  EXPECT_GT(profile_trace(a).spans, 0u);
  EXPECT_EQ(report_a, profile_trace(b).render())
      << "same-seed profiles must be byte-identical";
  EXPECT_EQ(report_a, profile_trace(c).render())
      << "JSONL and BTRC recordings of the same run must agree";
  EXPECT_NE(report_a.find("sim.slot"), std::string::npos);
}

TEST(SloExplainEndToEnd, SameSeedAndCrossFormatAgreement) {
  std::filesystem::create_directories(temp_path("expl_a"));
  std::filesystem::create_directories(temp_path("expl_b"));
  std::filesystem::create_directories(temp_path("expl_c"));
  const std::string a = temp_path("expl_a/run.jsonl");
  const std::string b = temp_path("expl_b/run.jsonl");
  const std::string c = temp_path("expl_c/run.btrc");
  record_run(a);
  record_run(b);
  record_run(c);
  const std::string report_a = explain_slo_breaches(a, short_windows());
  EXPECT_NE(report_a.find("episode="), std::string::npos)
      << "the overcommitted fleet must produce at least one episode";
  EXPECT_EQ(report_a, explain_slo_breaches(b, short_windows()))
      << "same-seed explain reports must be byte-identical";
  // BTRC offsets differ from JSONL offsets; everything else agrees.
  EXPECT_EQ(strip_format_lines(report_a),
            strip_format_lines(explain_slo_breaches(c, short_windows())));
}

TEST(SloExplainEndToEnd, PointerResolvesIntoBreachWindow) {
  const std::string path = temp_path("expl_ptr.btrc");
  record_run(path);
  const std::string report = explain_slo_breaches(path, short_windows());

  // The first episode line names the window; its pointer line gives the
  // byte offset of the window's first slot.obs.
  long long begin_slot = -1;
  long long end_slot = -1;
  unsigned long long offset = 0;
  long long ptr_slot = -1;
  std::istringstream in(report);
  std::string line;
  while (std::getline(in, line)) {
    if (begin_slot < 0 &&
        std::sscanf(line.c_str(), "episode=%*d window=%lld..%lld",
                    &begin_slot, &end_slot) == 2)
      continue;
    if (begin_slot >= 0 &&
        std::sscanf(line.c_str(),
                    "pointer trace_offset=%llu event_index=%*u slot=%lld",
                    &offset, &ptr_slot) == 2)
      break;
  }
  ASSERT_GE(begin_slot, 0) << report;
  ASSERT_EQ(ptr_slot, begin_slot) << report;

  // Resolve the pointer exactly as `trace head --at-offset` does: the
  // events there must include the breach window's first slot.obs.
  const auto events_at = read_events_at_offset(path, offset, 32);
  ASSERT_FALSE(events_at.empty());
  bool found = false;
  for (const RecordedEvent& e : events_at)
    if (e.kind == "slot.obs" && e.integer("t") == begin_slot) found = true;
  EXPECT_TRUE(found) << "pointer must land on slot.obs t=" << begin_slot;
}

TEST(SloExplainEndToEnd, RejectsCsvTraces) {
  const std::string path = temp_path("expl_reject.csv");
  std::ofstream(path) << "id,kind,key,value\n0,slot.obs,,\n";
  EXPECT_THROW((void)explain_slo_breaches(path), InvalidArgument);
}

#endif  // BURSTQ_NO_OBS

}  // namespace
}  // namespace burstq::obs
