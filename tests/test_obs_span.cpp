// Tests for scoped trace spans: nesting, self-vs-total attribution, and
// the BURSTQ_SPAN macro (a no-op under -DBURSTQ_NO_OBS).

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace burstq::obs {
namespace {

// Burns a little measurable wall time without sleeping.
void spin() {
  volatile std::uint64_t x = 0;
  for (int i = 0; i < 50000; ++i)
    x = x + static_cast<std::uint64_t>(i);
}

TEST(ScopedSpan, RecordsOnDestruction) {
  SpanStat stat;
  {
    ScopedSpan span(stat);
    spin();
  }
  EXPECT_EQ(stat.calls(), 1u);
  EXPECT_GT(stat.total_ns(), 0u);
  EXPECT_EQ(stat.total_ns(), stat.self_ns());
  EXPECT_EQ(stat.max_ns(), stat.total_ns());
}

TEST(ScopedSpan, NestingSplitsSelfFromTotal) {
  SpanStat outer_stat;
  SpanStat inner_stat;
  {
    ScopedSpan outer(outer_stat);
    spin();
    {
      ScopedSpan inner(inner_stat);
      spin();
    }
    spin();
  }
  EXPECT_EQ(outer_stat.calls(), 1u);
  EXPECT_EQ(inner_stat.calls(), 1u);
  // Parent total covers the child; parent self excludes it exactly.
  EXPECT_GE(outer_stat.total_ns(), inner_stat.total_ns());
  EXPECT_EQ(outer_stat.self_ns(),
            outer_stat.total_ns() - inner_stat.total_ns());
  EXPECT_EQ(inner_stat.self_ns(), inner_stat.total_ns());
}

TEST(ScopedSpan, DepthTracksActiveSpans) {
  const std::size_t base = ScopedSpan::active_depth();
  SpanStat stat;
  {
    ScopedSpan a(stat);
    EXPECT_EQ(ScopedSpan::active_depth(), base + 1);
    {
      ScopedSpan b(stat);
      EXPECT_EQ(ScopedSpan::active_depth(), base + 2);
    }
    EXPECT_EQ(ScopedSpan::active_depth(), base + 1);
  }
  EXPECT_EQ(ScopedSpan::active_depth(), base);
}

TEST(ScopedSpan, SiblingsAccumulateIntoParent) {
  SpanStat parent_stat;
  SpanStat child_stat;
  {
    ScopedSpan parent(parent_stat);
    for (int i = 0; i < 3; ++i) {
      ScopedSpan child(child_stat);
      spin();
    }
  }
  EXPECT_EQ(child_stat.calls(), 3u);
  EXPECT_EQ(parent_stat.self_ns(),
            parent_stat.total_ns() - child_stat.total_ns());
}

TEST(SpanMacro, CompilesAndAggregates) {
  const auto snapshot_calls = [] {
    const auto* s = metrics().scrape().span("test.obs_span.macro");
    return s == nullptr ? std::uint64_t{0} : s->calls;
  };
  const std::uint64_t before = snapshot_calls();
  {
    BURSTQ_SPAN("test.obs_span.macro");
    spin();
  }
  if constexpr (kEnabled) {
    EXPECT_EQ(snapshot_calls(), before + 1);
  } else {
    // Under -DBURSTQ_NO_OBS the macro must not register anything.
    EXPECT_EQ(metrics().scrape().span("test.obs_span.macro"), nullptr);
  }
}

TEST(SpanMacro, CounterGaugeHistMacrosRespectKillSwitch) {
  const std::size_t local = 17;  // only consumed by the macros below
  BURSTQ_COUNT("test.obs_span.count", local);
  BURSTQ_GAUGE("test.obs_span.gauge", local);
  BURSTQ_HIST("test.obs_span.hist", local);
  const MetricsSnapshot snap = metrics().scrape();
  if constexpr (kEnabled) {
    ASSERT_NE(snap.counter("test.obs_span.count"), nullptr);
    EXPECT_GE(snap.counter("test.obs_span.count")->value, 17u);
  } else {
    EXPECT_EQ(snap.counter("test.obs_span.count"), nullptr);
  }
}

}  // namespace
}  // namespace burstq::obs
