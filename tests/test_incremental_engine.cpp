// Property tests for the incremental placement engine: the slack-tree
// first-fit must be bit-identical to the naive linear-scan driver, the
// cached per-PM aggregates must track the walk-based reference through
// arbitrary assign/unassign churn, and the MapCal table cache must make
// repeated identical QueuingFFD runs solve-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "obs/obs.h"
#include "placement/cluster.h"
#include "placement/first_fit.h"
#include "placement/incremental.h"
#include "placement/pm_slack_tree.h"
#include "placement/queuing_ffd.h"
#include "placement/spec.h"
#include "queuing/mapcal.h"

namespace burstq {
namespace {

const OnOffParams kParams{0.02, 0.08};

ProblemInstance random_churn_instance(std::size_t n, std::size_t m,
                                      Rng& rng) {
  return random_instance(n, m, kParams, InstanceRanges{}, rng);
}

void expect_identical(const ProblemInstance& inst, const PlacementResult& a,
                      const PlacementResult& b, const char* what) {
  EXPECT_EQ(a.unplaced, b.unplaced) << what;
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    ASSERT_EQ(a.placement.pm_of(VmId{i}), b.placement.pm_of(VmId{i}))
        << what << ": VM " << i;
}

// --- Tentpole part 2: slack-tree first-fit == naive driver -------------

TEST(IncrementalEngine, FirstFitMatchesNaiveOnRandomInstances) {
  for (std::uint64_t seed : {1u, 17u, 98u, 4242u}) {
    Rng rng(seed);
    const auto inst = random_churn_instance(300, 60, rng);
    const auto order = queuing_ffd_order(inst.vms, 8);
    const MapCalTable table(12, kParams, 0.02);

    const auto fits = [&](const Placement& p, VmId vm, PmId pm) {
      return fits_with_reservation(inst, p, vm, pm, table);
    };
    const auto naive = first_fit_place(inst, order, fits);
    IncrementalStats stats;
    const auto incr = first_fit_place_reservation(inst, order, table, &stats);
    expect_identical(inst, naive, incr, "seed run");
    // Saturated instances exercise the "no PM fits" path too.
    EXPECT_GT(stats.tree_descents, 0u);
    EXPECT_GE(stats.exact_checks, inst.n_vms() - incr.unplaced.size());
  }
}

TEST(IncrementalEngine, FirstFitMatchesNaiveUnderLooseAndTightFleets) {
  Rng rng(7);
  for (const std::size_t m : {10u, 40u, 200u}) {
    const auto inst = random_churn_instance(200, m, rng);
    const auto order = queuing_ffd_order(inst.vms, 4);
    const MapCalTable table(16, kParams, 0.01);
    const auto fits = [&](const Placement& p, VmId vm, PmId pm) {
      return fits_with_reservation(inst, p, vm, pm, table);
    };
    expect_identical(inst, first_fit_place(inst, order, fits),
                     first_fit_place_reservation(inst, order, table),
                     "fleet size sweep");
  }
}

TEST(IncrementalEngine, QueuingFfdEnginesAgree) {
  Rng rng(55);
  const auto inst = random_churn_instance(400, 80, rng);
  QueuingFfdOptions naive_opt;
  naive_opt.engine = PlacementEngine::kNaive;
  QueuingFfdOptions incr_opt;
  incr_opt.engine = PlacementEngine::kIncremental;
  expect_identical(inst, queuing_ffd(inst, naive_opt).result,
                   queuing_ffd(inst, incr_opt).result, "queuing_ffd");
}

// --- Satellite: best-fit on a bound placement keeps seed semantics -----

TEST(IncrementalEngine, BestFitBoundMatchesWalkReference) {
  Rng rng(31);
  const auto inst = random_churn_instance(250, 50, rng);
  const auto order = queuing_ffd_order(inst.vms, 8);
  const MapCalTable table(12, kParams, 0.02);

  const auto fits = [&](const Placement& p, VmId vm, PmId pm) {
    return fits_with_reservation(inst, p, vm, pm, table);
  };
  const auto slack = [&](const Placement& p, VmId vm, PmId pm) {
    const std::size_t k_new = p.vms_on(pm).size() + 1;
    const Resource block =
        std::max(inst.vms[vm.value].re, max_re_on(inst, p, pm));
    return inst.pms[pm.value].capacity -
           (block * static_cast<double>(table.blocks(k_new)) +
            inst.vms[vm.value].rb + total_rb_on(inst, p, pm));
  };
  const auto bound = best_fit_place(inst, order, fits, slack);

  // Reference: same predicate/slack arithmetic forced through the
  // walk-based helpers on an unbound placement.
  PlacementResult ref{Placement(inst.n_vms(), inst.n_pms()), {}};
  for (const std::size_t vi : order) {
    const VmId vm{vi};
    PmId best{};
    double best_slack = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      const PmId pm{j};
      if (!fits_with_reservation(inst, ref.placement, vm, pm, table))
        continue;
      const std::size_t k_new = ref.placement.vms_on(pm).size() + 1;
      const Resource block = std::max(inst.vms[vm.value].re,
                                      max_re_on_walk(inst, ref.placement, pm));
      const double s =
          inst.pms[pm.value].capacity -
          (block * static_cast<double>(table.blocks(k_new)) +
           inst.vms[vm.value].rb + total_rb_on_walk(inst, ref.placement, pm));
      if (s < best_slack) {
        best_slack = s;
        best = pm;
      }
    }
    if (best.valid())
      ref.placement.assign(vm, best);
    else
      ref.unplaced.push_back(vm);
  }
  expect_identical(inst, ref, bound, "best-fit");
}

// --- Tentpole part 1: cached aggregates track the walk reference -------

TEST(IncrementalEngine, AggregatesExactWithoutChurn) {
  Rng rng(13);
  const auto inst = random_churn_instance(120, 12, rng);
  Placement p(inst);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    p.assign(VmId{i}, PmId{i % inst.n_pms()});
  for (std::size_t j = 0; j < inst.n_pms(); ++j) {
    const PmId pm{j};
    // Append-only assignment adds in list order, so the cached sum is
    // bit-for-bit the walk sum, not merely close.
    EXPECT_EQ(p.rb_sum_on(pm), total_rb_on_walk(inst, p, pm));
    EXPECT_EQ(p.re_max_on(pm), max_re_on_walk(inst, p, pm));
  }
  EXPECT_TRUE(aggregates_consistent(inst, p));
}

TEST(IncrementalEngine, AggregatesConsistentUnderRandomChurn) {
  Rng rng(999);
  const auto inst = random_churn_instance(80, 8, rng);
  Placement p(inst);
  std::vector<std::size_t> assigned;

  for (std::size_t step = 0; step < 2000; ++step) {
    const bool do_assign =
        assigned.empty() ||
        (assigned.size() < inst.n_vms() && rng.next_below(3) != 0);
    if (do_assign) {
      std::size_t vi = 0;
      do {
        vi = rng.next_below(inst.n_vms());
      } while (p.assigned(VmId{vi}));
      p.assign(VmId{vi}, PmId{rng.next_below(inst.n_pms())});
      assigned.push_back(vi);
    } else {
      const std::size_t pick = rng.next_below(assigned.size());
      const std::size_t vi = assigned[pick];
      assigned[pick] = assigned.back();
      assigned.pop_back();
      p.unassign(VmId{vi});
    }
    ASSERT_TRUE(aggregates_consistent(inst, p)) << "step " << step;
  }
}

// --- Satellite: O(1) unassign keeps positions and membership coherent --

TEST(IncrementalEngine, SwapRemoveKeepsMembershipCoherent) {
  Placement p(6, 2);
  for (std::size_t i = 0; i < 6; ++i) p.assign(VmId{i}, PmId{0});
  // Remove from the middle: the tail VM must take the vacated slot.
  p.unassign(VmId{1});
  EXPECT_EQ(p.vms_on(PmId{0}), (std::vector<std::size_t>{0, 5, 2, 3, 4}));
  p.unassign(VmId{5});  // the VM that was just swapped into the middle
  EXPECT_EQ(p.vms_on(PmId{0}), (std::vector<std::size_t>{0, 4, 2, 3}));
  // Every surviving VM still reports the right PM and can be moved again.
  for (const std::size_t vi : {0u, 2u, 3u, 4u}) {
    EXPECT_EQ(p.pm_of(VmId{vi}), PmId{0});
    p.unassign(VmId{vi});
    p.assign(VmId{vi}, PmId{1});
    EXPECT_EQ(p.pm_of(VmId{vi}), PmId{1});
  }
  EXPECT_TRUE(p.vms_on(PmId{0}).empty());
}

// --- PmSlackTree unit coverage -----------------------------------------

TEST(PmSlackTree, FindsLowestIndexAtOrAfterFrom) {
  PmSlackTree tree({5.0, 1.0, 8.0, 3.0, 8.0});
  EXPECT_EQ(tree.find_first_ge(4.0), 0u);
  EXPECT_EQ(tree.find_first_ge(6.0), 2u);
  EXPECT_EQ(tree.find_first_ge(6.0, 3), 4u);
  EXPECT_EQ(tree.find_first_ge(9.0), PmSlackTree::npos);
  EXPECT_EQ(tree.find_first_ge(1.0, 5), PmSlackTree::npos);
  EXPECT_EQ(tree.find_first_ge(8.0, 2), 2u);
}

TEST(PmSlackTree, UpdateMovesTheAnswer) {
  PmSlackTree tree({2.0, 2.0, 2.0, 2.0});
  EXPECT_EQ(tree.find_first_ge(3.0), PmSlackTree::npos);
  tree.update(2, 7.0);
  EXPECT_EQ(tree.find_first_ge(3.0), 2u);
  EXPECT_EQ(tree.key(2), 7.0);
  tree.update(2, 0.0);
  EXPECT_EQ(tree.find_first_ge(3.0), PmSlackTree::npos);
  EXPECT_EQ(tree.find_first_ge(2.0, 1), 1u);
}

TEST(PmSlackTree, NonPowerOfTwoPaddingNeverMatches) {
  // 5 leaves pad to 8; padding holds -inf so a threshold of any finite
  // value (or even -inf itself... which no caller uses) cannot land there.
  PmSlackTree tree({1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_EQ(tree.find_first_ge(1.0, 4), 4u);
  EXPECT_EQ(tree.find_first_ge(0.0, 5), PmSlackTree::npos);
}

TEST(PmSlackTree, SingleElement) {
  PmSlackTree tree({3.5});
  EXPECT_EQ(tree.find_first_ge(3.0), 0u);
  EXPECT_EQ(tree.find_first_ge(4.0), PmSlackTree::npos);
  tree.update(0, 9.0);
  EXPECT_EQ(tree.find_first_ge(4.0), 0u);
}

TEST(PmSlackTree, RandomizedAgainstLinearScan) {
  Rng rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(60);
    std::vector<double> keys(n);
    for (auto& k : keys) k = rng.uniform(-5.0, 5.0);
    PmSlackTree tree(keys);
    for (int q = 0; q < 50; ++q) {
      if (rng.next_below(2) == 0) {
        const std::size_t i = rng.next_below(n);
        keys[i] = rng.uniform(-5.0, 5.0);
        tree.update(i, keys[i]);
      }
      const double threshold = rng.uniform(-5.0, 5.0);
      const std::size_t from = rng.next_below(n + 2);
      std::size_t expect = PmSlackTree::npos;
      for (std::size_t i = from; i < n; ++i)
        if (keys[i] >= threshold) {
          expect = i;
          break;
        }
      ASSERT_EQ(tree.find_first_ge(threshold, from), expect)
          << "trial " << trial << " query " << q;
    }
  }
}

// --- Tentpole part 3: MapCal memoization -------------------------------

TEST(MapCalCache, SecondIdenticalRunPerformsNoNewSolves) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";
  Rng rng(77);
  const auto inst = random_churn_instance(150, 30, rng);
  QueuingFfdOptions opt;
  opt.rho = 0.017531;  // unique rho so other tests cannot pre-warm the key

  const auto builds = [] {
    const auto snap = obs::metrics().scrape();
    const auto* c = snap.counter("mapcal.table.builds");
    return c != nullptr ? c->value : 0;
  };
  const auto solves = [] {
    const auto snap = obs::metrics().scrape();
    const auto* c = snap.counter("mapcal.calls");
    return c != nullptr ? c->value : 0;
  };

  const auto first = queuing_ffd(inst, opt);
  const auto builds_after_first = builds();
  const auto solves_after_first = solves();

  const auto second = queuing_ffd(inst, opt);
  EXPECT_EQ(builds() - builds_after_first, 0u)
      << "identical options must hit the table cache";
  EXPECT_EQ(solves() - solves_after_first, 0u)
      << "a cache hit must not run MapCal";
  expect_identical(inst, first.result, second.result, "cached run");
}

TEST(MapCalCache, DistinctKeysBuildDistinctTables) {
  const std::size_t size_before = mapcal_table_cache_size();
  const MapCalTable a(6, kParams, 0.031771);
  EXPECT_EQ(mapcal_table_cache_size(), size_before + 1);
  const MapCalTable b(6, kParams, 0.031771);  // same key: no growth
  EXPECT_EQ(mapcal_table_cache_size(), size_before + 1);
  const MapCalTable c(6, kParams, 0.031772);  // rho differs: new entry
  EXPECT_EQ(mapcal_table_cache_size(), size_before + 2);
  EXPECT_EQ(a.blocks(6), b.blocks(6));
}

TEST(MapCalCache, CachedTableMatchesFreshSolve) {
  // A cache hit must return the same mapping a cold build produces.
  const MapCalTable warm(8, kParams, 0.012345);
  const MapCalTable hit(8, kParams, 0.012345);
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(warm.blocks(k), hit.blocks(k));
    EXPECT_EQ(warm.blocks(k), map_cal_blocks(k, kParams, 0.012345));
  }
}

}  // namespace
}  // namespace burstq
