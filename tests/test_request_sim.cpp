// Tests for the request-level performance simulator.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/queuing_ffd.h"
#include "sim/request_sim.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance typical_instance(std::size_t n, std::size_t m,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n, m, kP, InstanceRanges{}, rng);
}

TEST(RequestSimConfig, Validation) {
  RequestSimConfig ok;
  EXPECT_NO_THROW(ok.validate());
  RequestSimConfig bad = ok;
  bad.slots = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.service_demand_seconds = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(RequestSim, RejectsIncompletePlacement) {
  const auto inst = typical_instance(5, 5, 1);
  Placement partial(5, 5);
  EXPECT_THROW(simulate_request_performance(inst, partial,
                                            RequestSimConfig{}, Rng(1)),
               InvalidArgument);
}

TEST(RequestSim, ConservationArrivalsEqualServedPlusBacklog) {
  const auto inst = typical_instance(30, 30, 2);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  RequestSimConfig cfg;
  cfg.slots = 50;
  const auto rep =
      simulate_request_performance(inst, placed.placement, cfg, Rng(2));
  EXPECT_NEAR(rep.total_arrivals, rep.total_served + rep.final_backlog,
              1e-6 * rep.total_arrivals);
  EXPECT_GT(rep.total_arrivals, 0.0);
}

TEST(RequestSim, PeakProvisioningKeepsLatencyLow) {
  // Under RP every VM always receives its full demand; backlogs stay
  // bounded and latencies tiny (sub-slot).
  const auto inst = typical_instance(40, 40, 3);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  RequestSimConfig cfg;
  cfg.slots = 100;
  const auto rep =
      simulate_request_performance(inst, placed.placement, cfg, Rng(3));
  EXPECT_LT(rep.mean_latency_seconds, cfg.sigma_seconds);
  EXPECT_LT(rep.worst_vm_latency_seconds, 10.0 * cfg.sigma_seconds);
}

TEST(RequestSim, RbPackingDegradesLatencyVsQueue) {
  // The headline performance claim made user-visible: packing by Rb
  // starves spiking VMs and response time blows up relative to QUEUE.
  const auto inst = typical_instance(120, 100, 4);
  const auto rb = ffd_by_normal(inst);
  const auto queue = queuing_ffd(inst);
  ASSERT_TRUE(rb.complete() && queue.result.complete());
  RequestSimConfig cfg;
  cfg.slots = 200;
  const auto rep_rb =
      simulate_request_performance(inst, rb.placement, cfg, Rng(5));
  const auto rep_q = simulate_request_performance(
      inst, queue.result.placement, cfg, Rng(5));
  EXPECT_GT(rep_rb.mean_latency_seconds, rep_q.mean_latency_seconds);
  EXPECT_GT(rep_rb.p95_vm_latency_seconds,
            2.0 * rep_q.p95_vm_latency_seconds);
}

TEST(RequestSim, UtilizationSane) {
  const auto inst = typical_instance(50, 50, 6);
  const auto placed = queuing_ffd(inst).result;
  ASSERT_TRUE(placed.complete());
  RequestSimConfig cfg;
  cfg.slots = 80;
  const auto rep =
      simulate_request_performance(inst, placed.placement, cfg, Rng(6));
  EXPECT_GT(rep.mean_utilization, 0.0);
  EXPECT_LE(rep.mean_utilization, 1.0 + 1e-9);
  ASSERT_EQ(rep.vm_latency_seconds.size(), inst.n_vms());
  for (double w : rep.vm_latency_seconds) EXPECT_GE(w, 0.0);
}

TEST(RequestSim, DeterministicPerSeed) {
  const auto inst = typical_instance(25, 25, 7);
  const auto placed = ffd_by_peak(inst);
  ASSERT_TRUE(placed.complete());
  RequestSimConfig cfg;
  cfg.slots = 40;
  const auto a =
      simulate_request_performance(inst, placed.placement, cfg, Rng(8));
  const auto b =
      simulate_request_performance(inst, placed.placement, cfg, Rng(8));
  EXPECT_DOUBLE_EQ(a.total_served, b.total_served);
  EXPECT_DOUBLE_EQ(a.mean_latency_seconds, b.mean_latency_seconds);
}

TEST(RequestSim, HopelesslyOverloadedPmBuildsBacklog) {
  // Two VMs whose combined Rb alone is double the PM capacity: roughly
  // half the offered load must remain queued.
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 20.0, 1.0}, VmSpec{kP, 20.0, 1.0}};
  inst.pms = {PmSpec{20.0}};
  Placement p(2, 1);
  p.assign(VmId{0}, PmId{0});
  p.assign(VmId{1}, PmId{0});
  RequestSimConfig cfg;
  cfg.slots = 50;
  const auto rep = simulate_request_performance(inst, p, cfg, Rng(9));
  EXPECT_GT(rep.final_backlog, 0.3 * rep.total_arrivals);
  EXPECT_GT(rep.mean_latency_seconds, cfg.sigma_seconds);
}

}  // namespace
}  // namespace burstq
