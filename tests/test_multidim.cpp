// Tests for the multi-dimensional consolidation extension (Section IV-E).

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/multidim.h"
#include "placement/placement.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

MultiVmSpec mvm(std::initializer_list<double> rb,
                std::initializer_list<double> re, OnOffParams p = kP) {
  MultiVmSpec v;
  v.onoff = p;
  v.dims = rb.size();
  std::size_t d = 0;
  for (double x : rb) v.rb[d++] = x;
  d = 0;
  for (double x : re) v.re[d++] = x;
  return v;
}

MultiPmSpec mpm(std::initializer_list<double> cap) {
  MultiPmSpec p;
  p.dims = cap.size();
  std::size_t d = 0;
  for (double x : cap) p.capacity[d++] = x;
  return p;
}

TEST(MultiSpec, Validation) {
  EXPECT_NO_THROW(mvm({1, 2}, {3, 4}).validate());
  MultiVmSpec bad = mvm({1}, {2});
  bad.rb[0] = -1;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  MultiVmSpec bad_dims = mvm({1}, {1});
  bad_dims.dims = 9;
  EXPECT_THROW(bad_dims.validate(), InvalidArgument);
  EXPECT_THROW(mpm({0.0}).validate(), InvalidArgument);
}

TEST(MultiInstance, DimensionAgreementEnforced) {
  MultiProblemInstance inst;
  inst.vms = {mvm({1, 2}, {1, 2}), mvm({1}, {1})};
  inst.pms = {mpm({10, 10})};
  EXPECT_THROW(inst.validate(), InvalidArgument);
  inst.vms.pop_back();
  EXPECT_NO_THROW(inst.validate());
  EXPECT_EQ(inst.dims(), 2u);
}

TEST(MultidimFits, ChecksEveryDimension) {
  const MapCalTable table(4, kP, 0.01);
  const MultiPmSpec pm = mpm({100, 10});
  const MultiVmSpec fat_dim1 = mvm({5, 9}, {1, 1});
  // Alone: dim0 5 + 1*blocks(1) <= 100 ok; dim1 9 + 1 <= 10 ok.
  EXPECT_TRUE(multidim_fits({}, fat_dim1, pm, table));
  // Two of them: dim1 18 + blocks(2) > 10 -> reject.
  std::vector<const MultiVmSpec*> hosted{&fat_dim1};
  EXPECT_FALSE(multidim_fits(hosted, fat_dim1, pm, table));
}

TEST(MultidimFits, RespectsVmCap) {
  const MapCalTable table(1, kP, 0.01);
  const MultiVmSpec v = mvm({1}, {1});
  const MultiPmSpec pm = mpm({1000});
  std::vector<const MultiVmSpec*> hosted{&v};
  EXPECT_FALSE(multidim_fits(hosted, v, pm, table));
}

TEST(MultidimPlacement, CompleteOnAmpleCluster) {
  Rng rng(1);
  MultiProblemInstance inst;
  for (int i = 0; i < 60; ++i)
    inst.vms.push_back(mvm({rng.uniform(2, 10), rng.uniform(2, 10)},
                           {rng.uniform(2, 10), rng.uniform(2, 10)}));
  for (int j = 0; j < 40; ++j) inst.pms.push_back(mpm({90, 90}));
  const auto r = multidim_queuing_first_fit(inst);
  EXPECT_TRUE(r.unplaced.empty());
  EXPECT_GT(r.pms_used, 0u);
  // Every VM has a PM.
  for (auto pm : r.pm_of) EXPECT_NE(pm, MultiPlacementResult::npos);
}

TEST(MultidimPlacement, PerDimensionReservationHolds) {
  Rng rng(2);
  MultiProblemInstance inst;
  for (int i = 0; i < 80; ++i)
    inst.vms.push_back(mvm({rng.uniform(2, 12), rng.uniform(2, 12)},
                           {rng.uniform(2, 12), rng.uniform(2, 12)}));
  for (int j = 0; j < 60; ++j) inst.pms.push_back(mpm({85, 95}));
  QueuingFfdOptions opt;
  const auto r = multidim_queuing_first_fit(inst, opt);
  ASSERT_TRUE(r.unplaced.empty());

  // Rebuild the table exactly as the placer did and verify Eq. (17) per
  // dimension post-hoc.
  const MapCalTable table(opt.max_vms_per_pm, kP, opt.rho);
  for (std::size_t j = 0; j < inst.pms.size(); ++j) {
    std::vector<const MultiVmSpec*> hosted;
    for (std::size_t i = 0; i < inst.vms.size(); ++i)
      if (r.pm_of[i] == j) hosted.push_back(&inst.vms[i]);
    if (hosted.empty()) continue;
    const auto blocks = static_cast<double>(table.blocks(hosted.size()));
    for (std::size_t d = 0; d < 2; ++d) {
      double max_re = 0.0;
      double rb_sum = 0.0;
      for (auto* v : hosted) {
        max_re = std::max(max_re, v->re[d]);
        rb_sum += v->rb[d];
      }
      EXPECT_LE(max_re * blocks + rb_sum,
                inst.pms[j].capacity[d] * (1.0 + 1e-9))
          << "pm " << j << " dim " << d;
    }
  }
}

TEST(MultidimPlacement, OneDimMatchesSpecsPredicate) {
  // In 1-D the multi-dim feasibility degenerates to Eq. (17).
  const MapCalTable table(8, kP, 0.01);
  const MultiVmSpec a = mvm({10}, {5});
  const MultiVmSpec b = mvm({8}, {7});
  const MultiPmSpec pm = mpm({30});
  std::vector<const MultiVmSpec*> hosted{&a};

  const std::vector<VmSpec> hosted1{VmSpec{kP, 10, 5}};
  const VmSpec cand{kP, 8, 7};
  EXPECT_EQ(multidim_fits(hosted, b, pm, table),
            fits_with_reservation_specs(hosted1, cand, 30.0, table));
}

TEST(ProjectCorrelated, WeightedSum) {
  MultiProblemInstance inst;
  inst.vms = {mvm({10, 2}, {4, 6})};
  inst.pms = {mpm({100, 50})};
  const auto flat = project_correlated(inst, {1.0, 0.5});
  ASSERT_EQ(flat.n_vms(), 1u);
  EXPECT_DOUBLE_EQ(flat.vms[0].rb, 10.0 + 1.0);
  EXPECT_DOUBLE_EQ(flat.vms[0].re, 4.0 + 3.0);
  EXPECT_DOUBLE_EQ(flat.pms[0].capacity, 100.0 + 25.0);
}

TEST(ProjectCorrelated, BadWeightsThrow) {
  MultiProblemInstance inst;
  inst.vms = {mvm({1, 1}, {1, 1})};
  inst.pms = {mpm({10, 10})};
  EXPECT_THROW(project_correlated(inst, {1.0}), InvalidArgument);
  EXPECT_THROW(project_correlated(inst, {0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(project_correlated(inst, {-1.0, 1.0}), InvalidArgument);
}

}  // namespace
}  // namespace burstq
