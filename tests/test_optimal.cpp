// Tests for the exact branch-and-bound consolidation baseline.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "placement/optimal.h"
#include "placement/queuing_ffd.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance uniform_cap_instance(std::size_t n, double cap,
                                     std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;
  for (std::size_t i = 0; i < n; ++i)
    inst.vms.push_back(
        VmSpec{kP, rng.uniform(2, 20), rng.uniform(2, 20)});
  for (std::size_t j = 0; j < n; ++j) inst.pms.push_back(PmSpec{cap});
  return inst;
}

TEST(Optimal, SingleVmNeedsOnePm) {
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 10, 5}};
  inst.pms = {PmSpec{50}, PmSpec{50}};
  const MapCalTable table(16, kP, 0.01);
  const auto opt = optimal_pm_count(inst, table);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, 1u);
}

TEST(Optimal, InfeasibleVmReturnsNullopt) {
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 100, 5}};  // Rb alone exceeds any PM
  inst.pms = {PmSpec{50}};
  const MapCalTable table(16, kP, 0.01);
  EXPECT_FALSE(optimal_pm_count(inst, table).has_value());
}

TEST(Optimal, TwoIncompatibleVmsNeedTwoPms) {
  // Each VM alone: 30 + 10*1 = 40 <= 45.  Together: rb 60 > 45.
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 30, 10}, VmSpec{kP, 30, 10}};
  inst.pms = {PmSpec{45}, PmSpec{45}};
  const MapCalTable table(16, kP, 0.01);
  const auto opt = optimal_pm_count(inst, table);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, 2u);
}

TEST(Optimal, NeverWorseThanFfd) {
  const MapCalTable table(16, kP, 0.01);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto inst = uniform_cap_instance(10, 90.0, seed);
    QueuingFfdOptions opt;
    const auto ffd = queuing_ffd_with_table(inst, table, opt);
    ASSERT_TRUE(ffd.complete());
    const auto exact = optimal_pm_count(inst, table);
    ASSERT_TRUE(exact.has_value()) << "seed " << seed;
    EXPECT_LE(*exact, ffd.pms_used()) << "seed " << seed;
  }
}

TEST(Optimal, MatchesBruteForceOnTinyInstance) {
  // 4 identical VMs, capacity fits exactly two per PM -> optimum 2.
  ProblemInstance inst;
  for (int i = 0; i < 4; ++i) inst.vms.push_back(VmSpec{kP, 10, 5});
  for (int j = 0; j < 4; ++j) inst.pms.push_back(PmSpec{25.0});
  // Two VMs: rb 20 + 5*blocks(2).  blocks(2) with q=0.1, rho=0.01 is 1
  // (CDF(1) = 0.99 >= 0.99 via the tie rule): footprint 25 <= 25. OK.
  const MapCalTable table(16, kP, 0.01);
  const auto opt = optimal_pm_count(inst, table);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, 2u);
}

TEST(Optimal, RejectsNonUniformCapacity) {
  ProblemInstance inst;
  inst.vms = {VmSpec{kP, 1, 1}};
  inst.pms = {PmSpec{50}, PmSpec{60}};
  const MapCalTable table(16, kP, 0.01);
  EXPECT_THROW(optimal_pm_count(inst, table), InvalidArgument);
}

TEST(Optimal, RejectsOversizedInstance) {
  const auto inst = uniform_cap_instance(19, 90.0, 1);
  const MapCalTable table(16, kP, 0.01);
  OptimalOptions opt;
  opt.max_vms = 18;
  EXPECT_THROW(optimal_pm_count(inst, table, opt), InvalidArgument);
}

TEST(OptimalOptions, Validation) {
  OptimalOptions bad;
  bad.max_vms = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = OptimalOptions{};
  bad.node_limit = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = OptimalOptions{};
  bad.max_vms = 30;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(Optimal, NodeLimitReturnsNullopt) {
  const auto inst = uniform_cap_instance(12, 90.0, 3);
  const MapCalTable table(16, kP, 0.01);
  OptimalOptions opt;
  opt.node_limit = 5;  // absurdly small
  EXPECT_FALSE(optimal_pm_count(inst, table, opt).has_value());
}

}  // namespace
}  // namespace burstq
