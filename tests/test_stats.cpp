// Unit tests for RunningStats, SampleSet and Histogram.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace burstq {
namespace {

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), InvalidArgument);
  EXPECT_THROW((void)s.min(), InvalidArgument);
  EXPECT_THROW((void)s.max(), InvalidArgument);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_THROW((void)s.variance(), InvalidArgument);  // needs two points
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(1);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 9.0);
    xs.push_back(x);
    s.add(x);
  }
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-10);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_NEAR(s.sum(), sum, 1e-8);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(2);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.exponential(3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (int i = 1; i <= 5; ++i) s.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.mean(), InvalidArgument);
  EXPECT_THROW((void)s.quantile(0.5), InvalidArgument);
}

TEST(SampleSet, BadQuantileThrows) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(-0.1), InvalidArgument);
  EXPECT_THROW((void)s.quantile(1.1), InvalidArgument);
}

TEST(SampleSet, Ci95ShrinksWithSamples) {
  Rng rng(3);
  SampleSet small;
  SampleSet large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Histogram, BucketsValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(5.0);   // bin 2
  h.add(-1.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.2);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(Histogram, OutOfRangeBinThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), InvalidArgument);
  EXPECT_THROW((void)h.bin_lo(5), InvalidArgument);
}

}  // namespace
}  // namespace burstq
