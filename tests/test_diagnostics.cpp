// Tests for trace burstiness diagnostics.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "fit/diagnostics.h"
#include "markov/onoff.h"

namespace burstq {
namespace {

std::vector<double> onoff_series(const OnOffParams& p, double rb, double re,
                                 std::size_t slots, std::uint64_t seed) {
  Rng rng(seed);
  OnOffChain chain(p);
  chain.reset_stationary(rng);
  std::vector<double> out;
  out.reserve(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    out.push_back(rb + (chain.on() ? re : 0.0));
    chain.step(rng);
  }
  return out;
}

std::vector<double> white_noise_series(std::size_t slots,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(slots);
  for (std::size_t t = 0; t < slots; ++t)
    out.push_back(rng.uniform(8.0, 12.0));
  return out;
}

TEST(Diagnostics, BurstyWorkloadDetected) {
  const auto series =
      onoff_series(OnOffParams{0.01, 0.09}, 10.0, 10.0, 100000, 1);
  const auto d = diagnose_burstiness(series);
  EXPECT_TRUE(d.bursty);
  EXPECT_NEAR(d.lag1_acf, 0.9, 0.05);     // r = 0.9
  EXPECT_NEAR(d.fitted_decay, 0.9, 0.05);
  // Long-memory spikes inflate the IDC far above the iid baseline.
  EXPECT_GT(d.empirical_idc, 5.0);
  EXPECT_TRUE(is_bursty(series));
}

TEST(Diagnostics, WhiteNoiseNotBursty) {
  const auto series = white_noise_series(100000, 2);
  EXPECT_FALSE(is_bursty(series));
  const auto d = diagnose_burstiness(series);
  EXPECT_LT(d.lag1_acf, 0.1);
  EXPECT_FALSE(d.bursty);
}

TEST(Diagnostics, ConstantSeriesNotBursty) {
  const std::vector<double> flat(1000, 5.0);
  EXPECT_FALSE(is_bursty(flat));
}

TEST(Diagnostics, FastSwitchingNotBursty) {
  // p_on + p_off ~ 1: no memory even though two levels exist.
  const auto series =
      onoff_series(OnOffParams{0.5, 0.5}, 10.0, 10.0, 100000, 3);
  EXPECT_FALSE(is_bursty(series));
}

TEST(Diagnostics, ShortSeriesRejected) {
  const std::vector<double> tiny(50, 1.0);
  EXPECT_THROW(diagnose_burstiness(tiny, 100), InvalidArgument);
  EXPECT_THROW(diagnose_burstiness(tiny, 1), InvalidArgument);
}

TEST(AcfFitError, SmallForTrueModel) {
  const OnOffParams truth{0.02, 0.1};
  const auto series = onoff_series(truth, 8.0, 6.0, 200000, 4);
  const FittedVm fit = fit_onoff_from_trace(series);
  EXPECT_LT(acf_fit_error(series, fit), 0.05);
}

TEST(AcfFitError, LargeForWrongModel) {
  // Fit a slow chain, test it against a fast series: the geometric ACFs
  // disagree badly.
  const auto slow_series =
      onoff_series(OnOffParams{0.01, 0.04}, 8.0, 6.0, 100000, 5);
  const auto fast_series =
      onoff_series(OnOffParams{0.4, 0.4}, 8.0, 6.0, 100000, 6);
  const FittedVm slow_fit = fit_onoff_from_trace(slow_series);
  EXPECT_GT(acf_fit_error(fast_series, slow_fit), 0.3);
}

TEST(AcfFitError, ValidatesArguments) {
  const auto series = onoff_series(OnOffParams{0.1, 0.2}, 5, 5, 1000, 7);
  const FittedVm fit = fit_onoff_from_trace(series);
  EXPECT_THROW(acf_fit_error(series, fit, 0), InvalidArgument);
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(acf_fit_error(tiny, fit, 10), InvalidArgument);
}

}  // namespace
}  // namespace burstq
