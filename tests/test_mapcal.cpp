// Tests for Algorithm 1 (MapCal) — the heart of the paper's reservation
// quantification — and the precomputed MapCalTable.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <tuple>

#include "common/error.h"
#include "markov/aggregate_chain.h"
#include "prob/binomial.h"
#include "queuing/mapcal.h"

namespace burstq {
namespace {

const OnOffParams kPaperParams{0.01, 0.09};  // q = 0.1

TEST(MapCal, CvrBoundRespectsRho) {
  for (std::size_t k = 1; k <= 20; ++k) {
    const auto r = map_cal(k, kPaperParams, 0.01);
    EXPECT_LE(r.cvr_bound, 0.01 + kCdfTieEpsilon) << "k=" << k;
    EXPECT_LE(r.blocks, k);
  }
}

TEST(MapCal, EqualsBinomialQuantile) {
  // With the closed-form stationary law, K is exactly the Binomial
  // quantile at 1 - rho.  rho = 0.015 avoids exact CDF ties (k = 2 with
  // q = 0.1 has CDF(1) = 0.99 exactly, a knife-edge the implementations
  // resolve via kCdfTieEpsilon rather than raw comparison).
  const double q = kPaperParams.stationary_on_probability();
  const double rho = 0.015;
  for (std::size_t k = 1; k <= 24; ++k) {
    const auto r = map_cal(k, kPaperParams, rho);
    const auto expected = static_cast<std::size_t>(
        binomial_quantile(static_cast<std::int64_t>(k), 1.0 - rho, q));
    EXPECT_EQ(r.blocks, expected) << "k=" << k;
  }
}

TEST(MapCal, MonotoneInK) {
  std::size_t prev = 0;
  for (std::size_t k = 1; k <= 24; ++k) {
    const std::size_t blocks = map_cal_blocks(k, kPaperParams, 0.01);
    EXPECT_GE(blocks, prev) << "k=" << k;
    prev = blocks;
  }
}

TEST(MapCal, MonotoneInRho) {
  // Looser budgets never need more blocks.
  const std::size_t k = 16;
  std::size_t prev = k;
  for (const double rho : {0.001, 0.01, 0.05, 0.1, 0.3, 0.9}) {
    const std::size_t blocks = map_cal_blocks(k, kPaperParams, rho);
    EXPECT_LE(blocks, prev) << "rho=" << rho;
    prev = blocks;
  }
}

TEST(MapCal, RhoZeroReservesEverything) {
  // CDF must reach exactly 1 - 0: every state with positive mass counts,
  // so K = k (all VMs can spike simultaneously with positive probability).
  for (std::size_t k = 1; k <= 8; ++k)
    EXPECT_EQ(map_cal_blocks(k, kPaperParams, 0.0), k);
}

TEST(MapCal, HugeRhoReservesLittle) {
  // rho = 0.95 tolerates nearly everything; with q = 0.1 state 0 alone
  // usually carries > 5% mass, so K should be tiny.
  const auto r = map_cal(16, kPaperParams, 0.95);
  EXPECT_LE(r.blocks, 1u);
}

TEST(MapCal, BlocksReductionSavesForTypicalParams) {
  // Paper's whole point: K < k for bursty workloads at moderate k.
  const auto r = map_cal(16, kPaperParams, 0.01);
  EXPECT_LT(r.blocks, 16u);
  EXPECT_GE(r.blocks, 1u);
}

TEST(MapCal, StationaryVectorIncluded) {
  const auto r = map_cal(8, kPaperParams, 0.01);
  ASSERT_EQ(r.stationary.size(), 9u);
  double sum = 0.0;
  for (double v : r.stationary) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(MapCal, InvalidInputsThrow) {
  EXPECT_THROW(map_cal(0, kPaperParams, 0.01), InvalidArgument);
  EXPECT_THROW(map_cal(4, kPaperParams, 1.0), InvalidArgument);
  EXPECT_THROW(map_cal(4, kPaperParams, -0.1), InvalidArgument);
  EXPECT_THROW(map_cal(4, OnOffParams{0.0, 0.5}, 0.01), InvalidArgument);
}

// Property sweep: all three backends give the same K.
using MapCalParam = std::tuple<std::size_t, double, double, double>;

class MapCalBackends : public ::testing::TestWithParam<MapCalParam> {};

TEST_P(MapCalBackends, GaussianPowerClosedFormAgree) {
  const auto [k, p_on, p_off, rho] = GetParam();
  const OnOffParams p{p_on, p_off};
  const auto kg = map_cal_blocks(k, p, rho, StationaryMethod::kGaussian);
  const auto kp = map_cal_blocks(k, p, rho, StationaryMethod::kPower);
  const auto kc = map_cal_blocks(k, p, rho, StationaryMethod::kClosedForm);
  EXPECT_EQ(kg, kc);
  EXPECT_EQ(kp, kc);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapCalBackends,
    ::testing::Values(MapCalParam{1, 0.01, 0.09, 0.01},
                      MapCalParam{4, 0.01, 0.09, 0.01},
                      MapCalParam{8, 0.01, 0.09, 0.01},
                      MapCalParam{16, 0.01, 0.09, 0.01},
                      MapCalParam{16, 0.01, 0.09, 0.001},
                      MapCalParam{16, 0.01, 0.09, 0.1},
                      MapCalParam{12, 0.2, 0.2, 0.05},
                      MapCalParam{10, 0.05, 0.5, 0.02},
                      MapCalParam{20, 0.02, 0.1, 0.01},
                      MapCalParam{6, 0.5, 0.1, 0.01}));

TEST(MapCal, CvrBoundMatchesTailMass) {
  const auto r = map_cal(12, kPaperParams, 0.01);
  double tail = 0.0;
  for (std::size_t m = r.blocks + 1; m <= 12; ++m) tail += r.stationary[m];
  EXPECT_NEAR(r.cvr_bound, tail, 1e-12);
}

TEST(MapCalTable, MatchesPerKCalls) {
  const MapCalTable table(16, kPaperParams, 0.01);
  EXPECT_EQ(table.max_vms_per_pm(), 16u);
  EXPECT_EQ(table.blocks(0), 0u);
  for (std::size_t k = 1; k <= 16; ++k) {
    EXPECT_EQ(table.blocks(k), map_cal_blocks(k, kPaperParams, 0.01));
    EXPECT_LE(table.cvr_bound(k), 0.01 + kCdfTieEpsilon);
  }
}

TEST(MapCalTable, OutOfRangeThrows) {
  const MapCalTable table(8, kPaperParams, 0.01);
  EXPECT_THROW((void)table.blocks(9), InvalidArgument);
  EXPECT_THROW((void)table.cvr_bound(9), InvalidArgument);
}

TEST(MapCalTable, StoresConfig) {
  const MapCalTable table(8, kPaperParams, 0.02);
  EXPECT_DOUBLE_EQ(table.rho(), 0.02);
  EXPECT_DOUBLE_EQ(table.params().p_on, 0.01);
}

TEST(MapCalTable, SignedZeroRhoSharesOneCacheEntry) {
  // TableKey equality uses double ==, under which -0.0 == 0.0 — so the
  // hash must collapse the two bit patterns as well, or the second build
  // misses the cached entry and silently duplicates it.
  mapcal_table_cache_clear();
  const MapCalTable pos(6, kPaperParams, 0.0);
  EXPECT_EQ(mapcal_table_cache_size(), 1u);
  const MapCalTable neg(6, kPaperParams, -0.0);
  EXPECT_EQ(mapcal_table_cache_size(), 1u)
      << "rho = -0.0 must hit the rho = 0.0 entry, not sit beside it";
  for (std::size_t k = 1; k <= 6; ++k) {
    EXPECT_EQ(neg.blocks(k), pos.blocks(k));
    EXPECT_DOUBLE_EQ(neg.cvr_bound(k), pos.cvr_bound(k));
  }
}

TEST(MapCalTable, CacheHitBitIdenticalToColdSolve) {
  mapcal_table_cache_clear();
  const MapCalTable cold(8, kPaperParams, 0.01);
  const MapCalTable warm(8, kPaperParams, 0.01);
  EXPECT_EQ(mapcal_table_cache_size(), 1u);
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(warm.blocks(k), cold.blocks(k));
    // Bit-identical, not just close: the hit returns the same immutable
    // data the cold build produced.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.cvr_bound(k)),
              std::bit_cast<std::uint64_t>(cold.cvr_bound(k)));
  }
}

TEST(MapCal, PaperParameterSanity) {
  // With q = 0.1 and rho = 0.01, sharing 16 VMs needs far fewer than 16
  // blocks — the consolidation win the paper reports.  Binomial(16, 0.1)
  // has 99th percentile at 5.
  EXPECT_EQ(map_cal_blocks(16, kPaperParams, 0.01), 5u);
  EXPECT_EQ(map_cal_blocks(8, kPaperParams, 0.01), 3u);
}

}  // namespace
}  // namespace burstq
