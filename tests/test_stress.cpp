// Randomized stress tests: long random operation sequences and random
// instances, checking only invariants (never exact values).  These are
// the tests most likely to surface state-machine bugs that directed unit
// tests miss.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/hetero_ffd.h"
#include "placement/online.h"
#include "placement/placement.h"
#include "placement/queuing_ffd.h"
#include "placement/replan.h"
#include "placement/sbp.h"
#include "sim/cluster_sim.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

VmSpec random_vm(Rng& rng) {
  OnOffParams p{rng.uniform(0.005, 0.2), rng.uniform(0.02, 0.5)};
  return VmSpec{p, rng.uniform(0.5, 25.0), rng.uniform(0.0, 25.0)};
}

// --- OnlineConsolidator under a random op mix -------------------------

class OnlineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineStress, InvariantSurvivesRandomChurn) {
  Rng rng(GetParam());
  OnlineConsolidator cloud(std::vector<PmSpec>(60, PmSpec{90.0}),
                           QueuingFfdOptions{}, kP);
  std::vector<VmHandle> live;
  std::size_t hosted = 0;

  for (int op = 0; op < 400; ++op) {
    const double roll = rng.next_double();
    if (roll < 0.5) {
      if (const auto h = cloud.add_vm(random_vm(rng))) {
        live.push_back(*h);
        ++hosted;
      }
    } else if (roll < 0.75 && !live.empty()) {
      const std::size_t pick = rng.next_below(live.size());
      cloud.remove_vm(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      --hosted;
    } else if (roll < 0.85) {
      std::vector<VmSpec> batch;
      const auto sz = rng.next_below(8);
      for (std::uint64_t i = 0; i < sz; ++i)
        batch.push_back(random_vm(rng));
      for (const auto& h : cloud.add_batch(batch)) {
        if (h) {
          live.push_back(*h);
          ++hosted;
        }
      }
    } else {
      const std::size_t migs = cloud.recalibrate();
      // Repair may drop VMs it cannot re-place; resync our view.
      if (migs > 0) {
        std::erase_if(live, [&](VmHandle h) {
          // A dropped handle throws on pm_of; probe via count.
          try {
            (void)cloud.pm_of(h);
            return false;
          } catch (const InvalidArgument&) {
            return true;
          }
        });
        hosted = live.size();
      }
    }
    ASSERT_TRUE(cloud.reservation_invariant_holds()) << "op " << op;
    ASSERT_EQ(cloud.vms_hosted(), hosted) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineStress,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- every placement strategy on random instances ---------------------

class StrategyStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyStress, AllStrategiesProduceValidPlacements) {
  Rng rng(GetParam() * 7919);
  ProblemInstance inst;
  const std::size_t n = 50 + rng.next_below(100);
  for (std::size_t i = 0; i < n; ++i) inst.vms.push_back(random_vm(rng));
  for (std::size_t j = 0; j < n; ++j)
    inst.pms.push_back(PmSpec{rng.uniform(60.0, 120.0)});

  const auto check = [&](const PlacementResult& r) {
    // No VM on two PMs; every placed VM's PM index sane; per-PM counts
    // consistent.
    std::size_t counted = 0;
    for (std::size_t j = 0; j < inst.n_pms(); ++j) {
      for (std::size_t i : r.placement.vms_on(PmId{j})) {
        ASSERT_EQ(r.placement.pm_of(VmId{i}), PmId{j});
        ++counted;
      }
    }
    ASSERT_EQ(counted, r.placement.vms_assigned());
    ASSERT_EQ(r.placement.vms_assigned() + r.unplaced.size(), inst.n_vms());
    // Placed VMs are never in the unplaced list.
    for (VmId vm : r.unplaced) ASSERT_FALSE(r.placement.assigned(vm));
  };

  check(queuing_ffd(inst).result);
  check(ffd_by_peak(inst));
  check(ffd_by_normal(inst));
  check(ffd_reserved(inst, 0.3));
  check(sbp_normal(inst));
  check(queuing_ffd_hetero(inst));
}

TEST_P(StrategyStress, SimulatorConservesVms) {
  Rng rng(GetParam() * 104729);
  ProblemInstance inst;
  const std::size_t n = 30 + rng.next_below(50);
  for (std::size_t i = 0; i < n; ++i) inst.vms.push_back(random_vm(rng));
  for (std::size_t j = 0; j < n; ++j)
    inst.pms.push_back(PmSpec{rng.uniform(60.0, 120.0)});

  const auto placed = ffd_by_normal(inst);
  if (!placed.complete()) return;  // starved fleet: nothing to simulate

  SimConfig cfg;
  cfg.slots = 60;
  cfg.webserver_workload = (GetParam() % 2) == 0;
  cfg.policy.cost_slots = 1 + GetParam() % 3;  // validate() rejects 0
  ClusterSimulator sim(inst, placed.placement, cfg, rng.split());
  const auto rep = sim.run();
  ASSERT_EQ(sim.placement().vms_assigned(), inst.n_vms());
  ASSERT_LE(rep.pms_used_end, inst.n_pms());
  // Energy only accrues for active PMs: bounded by all-PMs-all-slots.
  PowerModel pm;
  const double cap = pm.busy_watts * static_cast<double>(inst.n_pms()) *
                     static_cast<double>(cfg.slots) * cfg.sigma_seconds /
                     3600.0;
  ASSERT_LE(rep.energy_wh, cap * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyStress,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- replan round-trips under churn -----------------------------------

TEST(ReplanStress, PlanAlwaysLandsOnFreshPlacement) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 31337);
    ProblemInstance inst;
    for (int i = 0; i < 60; ++i) inst.vms.push_back(random_vm(rng));
    for (int j = 0; j < 60; ++j)
      inst.pms.push_back(PmSpec{rng.uniform(70.0, 110.0)});
    // Random (valid) current placement: shuffle then first-fit by Rb.
    auto current = ffd_by_normal(inst);
    if (!current.complete()) continue;
    const auto result = replan(inst, current.placement);
    Placement live = current.placement;
    apply_plan(live, result.plan);
    for (std::size_t i = 0; i < inst.n_vms(); ++i)
      ASSERT_EQ(live.pm_of(VmId{i}),
                result.fresh.placement.pm_of(VmId{i}));
  }
}

}  // namespace
}  // namespace burstq
