// Prometheus exposition rendering + the standalone validator
// (obs/prometheus.h): name sanitization, the counter/gauge/histogram/
// span mappings, and the edge cases the telemetry endpoint must survive
// (empty registry, zero-observation histograms, adversarial documents).

#include <gtest/gtest.h>

#include <string>

#include "obs/prometheus.h"
#include "obs/registry.h"

namespace burstq::obs {
namespace {

TEST(Sanitize, DotsBecomeUnderscores) {
  EXPECT_EQ(sanitize_metric_name("mapcal.solve"), "mapcal_solve");
  EXPECT_EQ(sanitize_metric_name("fault.slo.breaches"),
            "fault_slo_breaches");
  EXPECT_EQ(sanitize_metric_name("obs.slo.cvr_burn_fast"),
            "obs_slo_cvr_burn_fast");
}

TEST(Sanitize, InvalidCharactersAndLeadingDigits) {
  EXPECT_EQ(sanitize_metric_name("a-b c%d"), "a_b_c_d");
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(sanitize_metric_name(""), "_");
  EXPECT_EQ(sanitize_metric_name(":colon"), "_colon");
  EXPECT_EQ(sanitize_metric_name("ok_name"), "ok_name");
}

TEST(Render, EmptyRegistryIsValidEmptyDocument) {
  const MetricsSnapshot snap;
  const std::string text = render_prometheus(snap);
  EXPECT_TRUE(text.empty());
  EXPECT_EQ(validate_exposition(text), std::nullopt);
}

TEST(Render, CounterAndGauge) {
  MetricsSnapshot snap;
  snap.counters.push_back({"sim.migrations", 42});
  snap.gauges.push_back({"slo.cvr.fast", 0.0125});
  const std::string text = render_prometheus(snap);
  EXPECT_NE(text.find("# TYPE burstq_sim_migrations_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_sim_migrations_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE burstq_slo_cvr_fast gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_slo_cvr_fast 0.0125\n"), std::string::npos);
  EXPECT_EQ(validate_exposition(text), std::nullopt) <<
      *validate_exposition(text);
}

TEST(Render, HistogramBucketsAreCumulativeAndValid) {
  Histogram h;
  h.record(1);
  h.record(3);
  h.record(200);
  MetricsSnapshot snap;
  snap.histograms.push_back({"mapcal.k", h.snapshot()});
  const std::string text = render_prometheus(snap);
  // le="1" covers {0,1}; the +Inf bucket equals the total count.
  EXPECT_NE(text.find("burstq_mapcal_k_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_mapcal_k_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_mapcal_k_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_mapcal_k_sum 204\n"), std::string::npos);
  EXPECT_NE(text.find("burstq_mapcal_k_count 3\n"), std::string::npos);
  // Companion summary carries the sketch quantiles.
  EXPECT_NE(text.find("# TYPE burstq_mapcal_k_quantiles summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_mapcal_k_quantiles{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_EQ(validate_exposition(text), std::nullopt)
      << *validate_exposition(text);
}

TEST(Render, ZeroObservationHistogram) {
  Histogram h;  // never recorded into
  MetricsSnapshot snap;
  snap.histograms.push_back({"sim.empty", h.snapshot()});
  const std::string text = render_prometheus(snap);
  // Only the +Inf bucket appears; _count and the bucket agree at 0.
  EXPECT_NE(text.find("burstq_sim_empty_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_sim_empty_count 0\n"), std::string::npos);
  EXPECT_EQ(text.find("le=\"0\""), std::string::npos);
  EXPECT_EQ(validate_exposition(text), std::nullopt)
      << *validate_exposition(text);
}

TEST(Render, SpanFamilies) {
  MetricsSnapshot snap;
  snap.spans.push_back({"mapcal.solve", 7, 3500000000ULL, 2000000000ULL,
                        900000000ULL});
  const std::string text = render_prometheus(snap);
  EXPECT_NE(text.find("burstq_mapcal_solve_calls_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_mapcal_solve_wall_seconds_total 3.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_mapcal_solve_self_seconds_total 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("burstq_mapcal_solve_max_seconds 0.9"),
            std::string::npos);
  EXPECT_EQ(validate_exposition(text), std::nullopt)
      << *validate_exposition(text);
}

TEST(Render, LiveRegistryRoundTripsThroughValidator) {
  metrics().reset();
  metrics().counter("promtest.count").add(5);
  metrics().gauge("promtest.gauge").set(-1.5);
  metrics().histogram("promtest.hist").record(1000);
  metrics().span("promtest.span").record(1000, 800);
  const std::string text = render_prometheus(metrics().scrape());
  EXPECT_EQ(validate_exposition(text), std::nullopt)
      << *validate_exposition(text);
  metrics().reset();
}

TEST(Validate, AcceptsCommentsBlanksAndTimestamps) {
  EXPECT_EQ(validate_exposition(""), std::nullopt);
  EXPECT_EQ(validate_exposition("# a free-form comment\n\nx 1\n"),
            std::nullopt);
  EXPECT_EQ(validate_exposition("x{a=\"b\"} 1 1712345678\n"),
            std::nullopt);
  EXPECT_EQ(validate_exposition("x NaN\ny +Inf\n"), std::nullopt);
  EXPECT_EQ(validate_exposition("x{a=\"line\\nbreak\",b=\"q\\\"q\"} 1\n"),
            std::nullopt);
}

TEST(Validate, RejectsMalformedDocuments) {
  EXPECT_TRUE(validate_exposition("x 1").has_value());  // no newline
  EXPECT_TRUE(validate_exposition("1badname 2\n").has_value());
  EXPECT_TRUE(validate_exposition("x notanumber\n").has_value());
  EXPECT_TRUE(validate_exposition("x{a=b} 1\n").has_value());  // unquoted
  EXPECT_TRUE(validate_exposition("x{a=\"b} 1\n").has_value());
  EXPECT_TRUE(
      validate_exposition("# TYPE x wibble\nx 1\n").has_value());
  EXPECT_TRUE(validate_exposition("x 1 12.5\n").has_value());  // bad ts
  // TYPE after its own samples.
  EXPECT_TRUE(
      validate_exposition("x 1\n# TYPE x counter\n").has_value());
  // Duplicate TYPE.
  EXPECT_TRUE(
      validate_exposition("# TYPE x counter\n# TYPE x counter\nx 1\n")
          .has_value());
  // Summary sample without a quantile label.
  EXPECT_TRUE(
      validate_exposition("# TYPE s summary\ns 1\n").has_value());
  // Quantile outside [0,1].
  EXPECT_TRUE(
      validate_exposition("# TYPE s summary\ns{quantile=\"1.5\"} 1\n")
          .has_value());
}

TEST(Validate, HistogramCrossLineChecks) {
  // Non-monotone cumulative buckets.
  EXPECT_TRUE(validate_exposition("# TYPE h histogram\n"
                                  "h_bucket{le=\"1\"} 5\n"
                                  "h_bucket{le=\"2\"} 3\n"
                                  "h_bucket{le=\"+Inf\"} 5\n"
                                  "h_count 5\n")
                  .has_value());
  // Missing +Inf.
  EXPECT_TRUE(validate_exposition("# TYPE h histogram\n"
                                  "h_bucket{le=\"1\"} 5\n"
                                  "h_count 5\n")
                  .has_value());
  // _count disagrees with the +Inf bucket.
  EXPECT_TRUE(validate_exposition("# TYPE h histogram\n"
                                  "h_bucket{le=\"+Inf\"} 5\n"
                                  "h_count 6\n")
                  .has_value());
  // A well-formed histogram passes.
  EXPECT_EQ(validate_exposition("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 2\n"
                                "h_bucket{le=\"+Inf\"} 5\n"
                                "h_sum 17\n"
                                "h_count 5\n"),
            std::nullopt);
}

}  // namespace
}  // namespace burstq::obs
