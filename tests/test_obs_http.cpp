// HttpServer (obs/http_server.h): real loopback GETs against an
// ephemeral port, routing, error statuses, and clean shutdown.  Under
// -DBURSTQ_NO_OBS the server is a stub whose start() throws — those
// tests skip, and one verifies the stub's refusal.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/error.h"
#include "obs/build_info.h"
#include "obs/exporter.h"
#include "obs/http_server.h"
#include "obs/obs.h"
#include "obs/registry.h"

namespace burstq::obs {
namespace {

/// Blocking one-shot HTTP client: sends `request` verbatim, returns the
/// full response (headers + body).
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
      0)
      << std::strerror(errno);
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

std::string get(std::uint16_t port, const std::string& path) {
  return raw_request(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

TEST(HttpServer, ServesRoutesOnEphemeralPort) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  server.handle("/hello", [](const std::string& path) {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        "hi from " + path + "\n"};
  });
  server.start(0);
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string resp = get(server.port(), "/hello");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 15"), std::string::npos);
  EXPECT_NE(resp.find("hi from /hello\n"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, QueryStringIsStripped) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  server.handle("/metrics", [](const std::string&) {
    return HttpResponse{200, "text/plain", "m\n"};
  });
  server.start(0);
  const std::string resp = get(server.port(), "/metrics?format=text");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(HttpServer, UnknownPathIs404) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  server.handle("/known", [](const std::string&) {
    return HttpResponse{200, "text/plain", "k\n"};
  });
  server.start(0);
  EXPECT_NE(get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
}

TEST(HttpServer, NonGetIs405AndJunkIs400) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  server.handle("/x", [](const std::string&) {
    return HttpResponse{200, "text/plain", "x\n"};
  });
  server.start(0);
  EXPECT_NE(
      raw_request(server.port(), "POST /x HTTP/1.1\r\nHost: x\r\n\r\n")
          .find("HTTP/1.1 405"),
      std::string::npos);
  EXPECT_NE(raw_request(server.port(), "garbage\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
}

TEST(HttpServer, StalledClientGets408AfterReadTimeout) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  server.handle("/x", [](const std::string&) {
    return HttpResponse{200, "text/plain", "x\n"};
  });
  server.set_read_timeout_ms(100);
  server.start(0);
  // Send a partial head and then go silent: the server must give up
  // after the read timeout and answer 408 instead of blocking forever.
  const std::string resp = raw_request(server.port(), "GET /x HTT");
  EXPECT_NE(resp.find("HTTP/1.1 408 Request Timeout"), std::string::npos)
      << resp;
  // The acceptor thread is free again: a normal request still works.
  EXPECT_NE(get(server.port(), "/x").find("200 OK"), std::string::npos);
}

TEST(HttpServer, OversizedHeadGets431) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  server.handle("/x", [](const std::string&) {
    return HttpResponse{200, "text/plain", "x\n"};
  });
  server.start(0);
  // Exactly the head cap (8192 bytes) with no terminator: the server
  // must stop reading at the cap and reject rather than parse.
  const std::string resp =
      raw_request(server.port(), std::string(8192, 'a'));
  EXPECT_NE(resp.find("HTTP/1.1 431 Request Header Fields Too Large"),
            std::string::npos)
      << resp.substr(0, 120);
  EXPECT_NE(get(server.port(), "/x").find("200 OK"), std::string::npos);
}

TEST(HttpServer, ReadTimeoutMustBeSetBeforeStartAndPositive) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  EXPECT_THROW(server.set_read_timeout_ms(0), InvalidArgument);
  server.start(0);
  EXPECT_THROW(server.set_read_timeout_ms(50), InvalidArgument);
  server.stop();
}

TEST(HttpServer, StopIsIdempotentAndRestartable) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  server.handle("/x", [](const std::string&) {
    return HttpResponse{200, "text/plain", "x\n"};
  });
  server.start(0);
  server.stop();
  server.stop();  // idempotent
  server.start(0);
  EXPECT_NE(get(server.port(), "/x").find("200 OK"), std::string::npos);
  server.stop();
}

TEST(HttpServer, DoubleStartThrows) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  HttpServer server;
  server.start(0);
  EXPECT_THROW(server.start(0), InvalidArgument);
  server.stop();
}

#ifdef BURSTQ_NO_OBS
TEST(HttpServer, NoObsStubRefusesToStart) {
  HttpServer server;
  EXPECT_THROW(server.start(0), InvalidArgument);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}
#endif

TEST(BuildInfo, TextCarriesVersionObsAndTraceFormat) {
  const std::string text = build_info_text();
  EXPECT_NE(text.find("build.version=" + std::string(build_version())),
            std::string::npos);
  EXPECT_NE(text.find("build.obs="), std::string::npos);
  EXPECT_NE(text.find("build.trace_format_version="), std::string::npos);
  EXPECT_FALSE(std::string(build_version()).empty());
  EXPECT_EQ(build_obs_enabled(), kEnabled);
}

TEST(BuildInfo, RegistersGaugeFamilyIdempotently) {
  register_build_info_metrics();
  register_build_info_metrics();  // second call must not duplicate
  const MetricsSnapshot snap = metrics().scrape();
  double info = -1.0;
  std::size_t info_gauges = 0;
  for (const GaugeSample& g : snap.gauges) {
    if (g.name == "obs.build.info") {
      info = g.value;
      ++info_gauges;
    }
  }
  if (kEnabled) {
    EXPECT_EQ(info_gauges, 1u);
    EXPECT_EQ(info, 1.0);
  } else {
    EXPECT_EQ(info_gauges, 0u);  // gauges compile out with the macros
  }
}

#ifndef BURSTQ_NO_OBS
TEST(TelemetryExporter, HealthzReportsBuildAndUptime) {
  TelemetryOptions opt;
  opt.port = 0;
  TelemetryExporter exporter(opt);
  const std::string resp = get(exporter.port(), "/healthz");
  // First line stays exactly "ok" — liveness probes grep for it.
  EXPECT_NE(resp.find("\r\n\r\nok\n"), std::string::npos);
  EXPECT_NE(resp.find("build.version=" + std::string(build_version())),
            std::string::npos);
  EXPECT_NE(resp.find("uptime_seconds="), std::string::npos);
  // The scrape surface exposes the same identity as a gauge family.
  EXPECT_NE(exporter.render_metrics().find("burstq_obs_build_info 1"),
            std::string::npos);
  exporter.stop();
}
#endif

}  // namespace
}  // namespace burstq::obs
