// Tests for scenario configuration: pattern ranges and Table I.

#include <gtest/gtest.h>

#include "core/scenario.h"

namespace burstq {
namespace {

TEST(Patterns, AllThreePresent) {
  const auto ps = all_patterns();
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0], SpikePattern::kEqual);
  EXPECT_EQ(ps[1], SpikePattern::kSmallSpike);
  EXPECT_EQ(ps[2], SpikePattern::kLargeSpike);
}

TEST(Patterns, NamesDistinct) {
  EXPECT_NE(pattern_name(SpikePattern::kEqual),
            pattern_name(SpikePattern::kSmallSpike));
  EXPECT_NE(pattern_name(SpikePattern::kSmallSpike),
            pattern_name(SpikePattern::kLargeSpike));
}

TEST(Ranges, MatchFigure5Settings) {
  const auto eq = ranges_for_pattern(SpikePattern::kEqual);
  EXPECT_DOUBLE_EQ(eq.rb_lo, 2.0);
  EXPECT_DOUBLE_EQ(eq.rb_hi, 20.0);
  EXPECT_DOUBLE_EQ(eq.re_lo, 2.0);
  EXPECT_DOUBLE_EQ(eq.re_hi, 20.0);
  const auto small = ranges_for_pattern(SpikePattern::kSmallSpike);
  EXPECT_DOUBLE_EQ(small.rb_lo, 12.0);
  EXPECT_DOUBLE_EQ(small.re_hi, 10.0);
  const auto large = ranges_for_pattern(SpikePattern::kLargeSpike);
  EXPECT_DOUBLE_EQ(large.rb_hi, 10.0);
  EXPECT_DOUBLE_EQ(large.re_lo, 12.0);
  // Capacity [80, 100] for all.
  for (const auto& r : {eq, small, large}) {
    EXPECT_DOUBLE_EQ(r.capacity_lo, 80.0);
    EXPECT_DOUBLE_EQ(r.capacity_hi, 100.0);
  }
}

TEST(PaperParams, LowFrequencyShortSpikes) {
  const auto p = paper_onoff_params();
  EXPECT_DOUBLE_EQ(p.p_on, 0.01);
  EXPECT_DOUBLE_EQ(p.p_off, 0.09);
}

TEST(TableI, SevenRowsWithPaperUserCounts) {
  const auto rows = table_i();
  ASSERT_EQ(rows.size(), 7u);
  // First row: small/small = 400 normal, 800 peak.
  EXPECT_EQ(rows[0].normal_users, 400u);
  EXPECT_EQ(rows[0].peak_users, 800u);
  // medium/medium: 800 -> 1600.
  EXPECT_EQ(rows[1].normal_users, 800u);
  EXPECT_EQ(rows[1].peak_users, 1600u);
  // large/large: 1600 -> 3200.
  EXPECT_EQ(rows[2].normal_users, 1600u);
  EXPECT_EQ(rows[2].peak_users, 3200u);
  // Rb>Re medium/small: 800 -> 1200.
  EXPECT_EQ(rows[3].normal_users, 800u);
  EXPECT_EQ(rows[3].peak_users, 1200u);
  // Rb>Re large/medium: 1600 -> 2400.
  EXPECT_EQ(rows[4].normal_users, 1600u);
  EXPECT_EQ(rows[4].peak_users, 2400u);
  // Rb<Re small/medium: 400 -> 1200.
  EXPECT_EQ(rows[5].normal_users, 400u);
  EXPECT_EQ(rows[5].peak_users, 1200u);
  // Rb<Re medium/large: 800 -> 2400.
  EXPECT_EQ(rows[6].normal_users, 800u);
  EXPECT_EQ(rows[6].peak_users, 2400u);
}

TEST(TableI, PatternFilter) {
  EXPECT_EQ(table_i_rows(SpikePattern::kEqual).size(), 3u);
  EXPECT_EQ(table_i_rows(SpikePattern::kSmallSpike).size(), 2u);
  EXPECT_EQ(table_i_rows(SpikePattern::kLargeSpike).size(), 2u);
}

TEST(TableI, PatternsConsistentWithSizes) {
  for (const auto& row : table_i()) {
    switch (row.pattern) {
      case SpikePattern::kEqual:
        EXPECT_DOUBLE_EQ(row.rb, row.re);
        break;
      case SpikePattern::kSmallSpike:
        EXPECT_GT(row.rb, row.re);
        break;
      case SpikePattern::kLargeSpike:
        EXPECT_LT(row.rb, row.re);
        break;
    }
  }
}

TEST(TableIInstance, DrawsFromPatternRows) {
  Rng rng(1);
  const auto inst = table_i_instance(SpikePattern::kLargeSpike, 100, 40,
                                     paper_onoff_params(), rng);
  EXPECT_EQ(inst.n_vms(), 100u);
  EXPECT_EQ(inst.n_pms(), 40u);
  const auto rows = table_i_rows(SpikePattern::kLargeSpike);
  for (const auto& v : inst.vms) {
    bool found = false;
    for (const auto& row : rows)
      if (v.rb == row.rb && v.re == row.re) found = true;
    EXPECT_TRUE(found) << "VM (" << v.rb << "," << v.re
                       << ") not a Table I row";
    EXPECT_LT(v.rb, v.re);  // large-spike pattern
  }
}

TEST(PatternInstance, HonorsPatternRanges) {
  Rng rng(2);
  const auto inst = pattern_instance(SpikePattern::kSmallSpike, 50, 20,
                                     paper_onoff_params(), rng);
  for (const auto& v : inst.vms) {
    EXPECT_GE(v.rb, 12.0);
    EXPECT_LE(v.re, 10.0);
    EXPECT_GT(v.rb, v.re);
  }
}

}  // namespace
}  // namespace burstq
