// Tests for burstiness diagnostics (ACF, variance, index of dispersion).

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "markov/burstiness.h"
#include "markov/onoff.h"

namespace burstq {
namespace {

TEST(CorrelationDecay, KnownValues) {
  EXPECT_NEAR(correlation_decay(OnOffParams{0.01, 0.09}), 0.9, 1e-15);
  EXPECT_NEAR(correlation_decay(OnOffParams{0.5, 0.5}), 0.0, 1e-15);
  EXPECT_NEAR(correlation_decay(OnOffParams{0.9, 0.9}), -0.8, 1e-15);
}

TEST(DemandAutocorrelation, GeometricDecay) {
  const OnOffParams p{0.01, 0.09};  // r = 0.9
  EXPECT_DOUBLE_EQ(demand_autocorrelation(p, 0), 1.0);
  EXPECT_NEAR(demand_autocorrelation(p, 1), 0.9, 1e-15);
  EXPECT_NEAR(demand_autocorrelation(p, 10), std::pow(0.9, 10.0), 1e-12);
}

TEST(DemandAutocorrelation, MatchesEmpiricalTrace) {
  const OnOffParams p{0.05, 0.15};  // r = 0.8
  Rng rng(1);
  OnOffChain chain(p);
  chain.reset_stationary(rng);
  std::vector<double> series;
  for (int t = 0; t < 400000; ++t) {
    series.push_back(chain.on() ? 1.0 : 0.0);
    chain.step(rng);
  }
  for (std::size_t lag : {1u, 2u, 5u, 10u}) {
    EXPECT_NEAR(empirical_autocorrelation(series, lag),
                demand_autocorrelation(p, lag), 0.02)
        << "lag " << lag;
  }
}

TEST(DemandVariance, ClosedForm) {
  const OnOffParams p{0.01, 0.09};  // q = 0.1
  EXPECT_NEAR(demand_variance(p, 10.0), 0.1 * 0.9 * 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(demand_variance(p, 0.0), 0.0);
}

TEST(IndexOfDispersion, GrowsWithSpikeLength) {
  // Same q = 0.1, increasingly long spikes (smaller p_off with p_on
  // scaled to keep q): IDC must increase.
  double prev = 0.0;
  for (const double scale : {1.0, 0.5, 0.25, 0.1}) {
    const OnOffParams p{0.01 * scale, 0.09 * scale};
    const double idc = index_of_dispersion(p, 10.0, 10.0);
    EXPECT_GT(idc, prev);
    prev = idc;
  }
}

TEST(IndexOfDispersion, UncorrelatedBaseline) {
  // p_on + p_off = 1 (r = 0): IDC reduces to Var/Mean.
  const OnOffParams p{0.5, 0.5};
  const double rb = 4.0;
  const double re = 8.0;
  const double mean = rb + 0.5 * re;
  const double var = 0.25 * re * re;
  EXPECT_NEAR(index_of_dispersion(p, rb, re), var / mean, 1e-12);
}

TEST(IndexOfDispersion, MatchesSimulatedCountVariance) {
  // Window-sum variance over long windows approaches IDC * window * mean.
  const OnOffParams p{0.05, 0.15};  // r = 0.8
  const double rb = 2.0;
  const double re = 6.0;
  const double idc = index_of_dispersion(p, rb, re);

  Rng rng(3);
  OnOffChain chain(p);
  chain.reset_stationary(rng);
  const std::size_t window = 500;
  std::vector<double> sums;
  for (int w = 0; w < 4000; ++w) {
    double sum = 0.0;
    for (std::size_t t = 0; t < window; ++t) {
      sum += rb + (chain.on() ? re : 0.0);
      chain.step(rng);
    }
    sums.push_back(sum);
  }
  double mean = 0.0;
  for (double s : sums) mean += s;
  mean /= static_cast<double>(sums.size());
  double var = 0.0;
  for (double s : sums) var += (s - mean) * (s - mean);
  var /= static_cast<double>(sums.size() - 1);
  EXPECT_NEAR(var / mean, idc, 0.15 * idc);
}

TEST(IndexOfDispersion, InvalidInputsThrow) {
  EXPECT_THROW(index_of_dispersion(OnOffParams{0.1, 0.1}, 0.0, 0.0),
               InvalidArgument);
  EXPECT_THROW(index_of_dispersion(OnOffParams{0.1, 0.1}, -1.0, 1.0),
               InvalidArgument);
}

TEST(EmpiricalAcf, LagZeroIsOne) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(empirical_autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(EmpiricalAcf, ErrorsOnDegenerateInput) {
  const std::vector<double> constant(10, 3.0);
  EXPECT_THROW(empirical_autocorrelation(constant, 1), InvalidArgument);
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(empirical_autocorrelation(tiny, 5), InvalidArgument);
}

}  // namespace
}  // namespace burstq
