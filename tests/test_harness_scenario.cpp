// Scenario-file grammar: the documented statements parse, defaults hold,
// and every malformed input dies with a positioned (source:line:col)
// actionable error instead of a silent default.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/error.h"
#include "harness/scenario.h"

namespace burstq::harness {
namespace {

Scenario parse(std::string_view text) {
  return parse_scenario_text(text, "<test>");
}

/// Asserts `text` fails to parse and the message carries the expected
/// position prefix and a fragment of the explanation.
void expect_error(std::string_view text, std::string_view position,
                  std::string_view fragment) {
  try {
    (void)parse(text);
    FAIL() << "expected InvalidArgument for: " << text;
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::string("<test>:") + std::string(position)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

// --- the documented grammar round-trips -------------------------------

TEST(ScenarioParse, FullGrammar) {
  const Scenario sc = parse(R"(# full-grammar scenario
scenario kitchen_sink
seed 7
slots 50
rho 0.02
max-vms-per-pm 12
strategy rbex
topology vms=30 pms=12 pattern=large
capacity 70 90
workload p_on=0.03 p_off=0.11
phase at=10 p_on=0.2
phase at=20 p_on=0.03 p_off=0.11
fault crash@15:pm=2
fault recover@40:pm=2
fault mig-stall@25:slots=3
fault-markov p_crash=0.001 p_recover=0.2 p_mig_fail=0.05 seed=9
migration window=8 cost=2
slo fast=5 slow=40
invariant cluster_cvr <= 0.02
invariant lost_vms == 0
)");
  EXPECT_EQ(sc.name, "kitchen_sink");
  EXPECT_EQ(sc.source, "<test>");
  EXPECT_EQ(sc.seed, 7u);
  EXPECT_EQ(sc.slots, 50u);
  EXPECT_EQ(sc.rho, 0.02);
  EXPECT_EQ(sc.max_vms_per_pm, 12u);
  EXPECT_EQ(sc.strategy, "rbex");
  EXPECT_EQ(sc.n_vms, 30u);
  EXPECT_EQ(sc.n_pms, 12u);
  EXPECT_EQ(sc.pattern, SpikePattern::kLargeSpike);
  EXPECT_EQ(sc.capacity_lo, 70.0);
  EXPECT_EQ(sc.capacity_hi, 90.0);
  EXPECT_EQ(sc.onoff.p_on, 0.03);
  EXPECT_EQ(sc.onoff.p_off, 0.11);
  ASSERT_EQ(sc.phases.size(), 2u);
  EXPECT_EQ(sc.phases[0].slot, 10u);
  ASSERT_TRUE(sc.phases[0].p_on.has_value());
  EXPECT_EQ(*sc.phases[0].p_on, 0.2);
  EXPECT_FALSE(sc.phases[0].p_off.has_value());
  ASSERT_EQ(sc.faults.scripted.size(), 3u);
  EXPECT_EQ(sc.faults.scripted[0].slot, 15u);
  EXPECT_EQ(sc.faults.markov.p_mig_fail, 0.05);
  EXPECT_EQ(sc.migration_window, 8u);
  EXPECT_EQ(sc.migration_cost, 2u);
  EXPECT_EQ(sc.slo_fast, 5u);
  EXPECT_EQ(sc.slo_slow, 40u);
  ASSERT_EQ(sc.invariants.size(), 2u);
  EXPECT_EQ(sc.invariants[0].kind, InvariantKind::kClusterCvr);
  EXPECT_EQ(sc.invariants[0].op, InvariantOp::kLe);
  EXPECT_EQ(sc.invariants[0].threshold, 0.02);
  EXPECT_EQ(sc.invariants[1].kind, InvariantKind::kLostVms);
  EXPECT_EQ(sc.invariants[1].op, InvariantOp::kEq);
}

TEST(ScenarioParse, DurabilityAndKillsParse) {
  const Scenario sc = parse(
      "scenario durable\n"
      "slots 50\n"
      "fault kill@12\n"
      "fault-markov p_kill=0.01 seed=3\n"
      "durability every=10 fsync=on\n"
      "invariant recovery_replay_slots <= 10\n");
  EXPECT_TRUE(sc.durability);
  EXPECT_EQ(sc.durability_every, 10u);
  EXPECT_TRUE(sc.durability_fsync);
  EXPECT_TRUE(sc.faults.has_kills());
  EXPECT_EQ(sc.faults.markov.p_kill, 0.01);
  ASSERT_EQ(sc.invariants.size(), 1u);
  EXPECT_EQ(sc.invariants[0].kind, InvariantKind::kRecoveryReplaySlots);
}

TEST(ScenarioParse, DurabilityDefaultsAndBareStatement) {
  const Scenario sc = parse(
      "scenario durable_bare\n"
      "durability\n"
      "invariant lost_vms == 0\n");
  EXPECT_TRUE(sc.durability);
  EXPECT_EQ(sc.durability_every, 25u);
  EXPECT_FALSE(sc.durability_fsync);
}

TEST(ScenarioParse, DurabilityBadValuesRejected) {
  expect_error(
      "scenario d\ndurability fsync=maybe\ninvariant lost_vms == 0\n",
      "2:18", "bad fsync value 'maybe'");
  expect_error(
      "scenario d\ndurability cadence=5\ninvariant lost_vms == 0\n",
      "2:12", "unknown durability key 'cadence'");
  expect_error(
      "scenario d\ndurability every=0\ninvariant lost_vms == 0\n", "",
      "durability every= must be >= 1");
}

TEST(ScenarioParse, DefaultsHoldWhenOmitted) {
  const Scenario sc = parse(
      "scenario minimal\n"
      "invariant lost_vms == 0\n");
  EXPECT_EQ(sc.seed, 42u);
  EXPECT_EQ(sc.slots, 100u);
  EXPECT_EQ(sc.rho, 0.01);
  EXPECT_EQ(sc.max_vms_per_pm, 16u);
  EXPECT_EQ(sc.strategy, "queue");
  EXPECT_EQ(sc.n_vms, 20u);
  EXPECT_EQ(sc.n_pms, 10u);
  EXPECT_EQ(sc.pattern, SpikePattern::kEqual);
  EXPECT_EQ(sc.capacity_lo, 80.0);
  EXPECT_EQ(sc.capacity_hi, 100.0);
  EXPECT_TRUE(sc.phases.empty());
  EXPECT_FALSE(sc.faults.any());
}

TEST(ScenarioParse, CommentsAndBlankLinesIgnored) {
  const Scenario sc = parse(
      "\n"
      "# leading comment\n"
      "scenario commented   # trailing comment\n"
      "\t \n"
      "seed 3 # another\n"
      "invariant lost_vms == 0\n");
  EXPECT_EQ(sc.name, "commented");
  EXPECT_EQ(sc.seed, 3u);
}

// --- positioned errors ------------------------------------------------

TEST(ScenarioParse, FirstStatementMustBeScenario) {
  expect_error("seed 3\n", "1:1", "first statement must be 'scenario");
}

TEST(ScenarioParse, DuplicateSingletonNamesFirstLine) {
  expect_error(
      "scenario dup\nseed 3\nseed 4\ninvariant lost_vms == 0\n", "3:1",
      "duplicate 'seed' (first set at line 2)");
}

TEST(ScenarioParse, TrailingGarbageNamesTheToken) {
  expect_error("scenario t\nseed 3 oops\ninvariant lost_vms == 0\n",
               "2:8", "unexpected trailing token 'oops'");
}

TEST(ScenarioParse, UnknownKeywordNamed) {
  expect_error("scenario t\nfrobnicate 3\ninvariant lost_vms == 0\n",
               "2:1", "unknown keyword 'frobnicate'");
}

TEST(ScenarioParse, BadNumberPointsAtTheValueColumn) {
  // "12x" starts at column 6 of "seed 12x".
  expect_error("scenario t\nseed 12x\ninvariant lost_vms == 0\n", "2:6",
               "'12x' is not a valid");
}

TEST(ScenarioParse, UnknownKeyValueKeyNamed) {
  expect_error(
      "scenario t\ntopology vms=4 pms=2 shape=equal\n"
      "invariant lost_vms == 0\n",
      "2:22", "unknown topology key 'shape'");
}

TEST(ScenarioParse, MalformedKeyValueRejected) {
  expect_error("scenario t\ntopology vms=4 pms=\ninvariant lost_vms == 0\n",
               "2:16", "expected key=value");
}

TEST(ScenarioParse, UnknownInvariantListsKnownNames) {
  expect_error("scenario t\ninvariant cvr <= 0.1\n", "2:11",
               "unknown invariant 'cvr'");
}

TEST(ScenarioParse, UnknownComparisonRejected) {
  expect_error("scenario t\ninvariant lost_vms >= 0\n", "2:20",
               "unknown comparison '>='");
}

TEST(ScenarioParse, DuplicateInvariantNamesFirstLine) {
  expect_error(
      "scenario t\ninvariant lost_vms == 0\ninvariant lost_vms == 1\n",
      "3:11", "duplicate invariant 'lost_vms' (first set at line 2)");
}

// --- out-of-horizon and ordering checks -------------------------------

TEST(ScenarioParse, PhaseAtOrBeyondHorizonRejected) {
  expect_error(
      "scenario t\nslots 20\nphase at=20 p_on=0.5\n"
      "invariant lost_vms == 0\n",
      "3:1", "horizon");
}

TEST(ScenarioParse, NonAscendingPhasesRejected) {
  expect_error(
      "scenario t\nslots 50\nphase at=20 p_on=0.5\nphase at=10 p_on=0.2\n"
      "invariant lost_vms == 0\n",
      "4:1", "ascending");
}

TEST(ScenarioParse, FaultBeyondHorizonRejected) {
  EXPECT_THROW((void)parse("scenario t\nslots 20\nfault crash@25:pm=1\n"
                           "invariant lost_vms == 0\n"),
               InvalidArgument);
}

TEST(ScenarioParse, FaultPmOutOfRangeRejected) {
  EXPECT_THROW((void)parse("scenario t\ntopology vms=8 pms=4 pattern=equal\n"
                           "fault crash@5:pm=9\ninvariant lost_vms == 0\n"),
               InvalidArgument);
}

TEST(ScenarioParse, FaultOnLastSlotIsLegal) {
  const Scenario sc = parse(
      "scenario t\nslots 20\nfault crash@19:pm=1\n"
      "invariant lost_vms == 0\n");
  ASSERT_EQ(sc.faults.scripted.size(), 1u);
  EXPECT_EQ(sc.faults.scripted[0].slot, 19u);
}

// --- cross-statement validation ---------------------------------------

TEST(ScenarioParse, AtLeastOneInvariantRequired) {
  EXPECT_THROW((void)parse("scenario t\nseed 3\n"), InvalidArgument);
}

TEST(ScenarioParse, CapacityRangeValidated) {
  EXPECT_THROW(
      (void)parse("scenario t\ncapacity 100 80\ninvariant lost_vms == 0\n"),
      InvalidArgument);
}

TEST(ScenarioParse, RhoOutsideUnitIntervalRejected) {
  EXPECT_THROW(
      (void)parse("scenario t\nrho 1.5\ninvariant lost_vms == 0\n"),
      InvalidArgument);
  EXPECT_THROW(
      (void)parse("scenario t\nrho 0\ninvariant lost_vms == 0\n"),
      InvalidArgument);
}

TEST(ScenarioParse, UnknownStrategyRejected) {
  expect_error("scenario t\nstrategy greedy\ninvariant lost_vms == 0\n",
               "2:10", "unknown strategy 'greedy'");
}

// --- file loading -----------------------------------------------------

TEST(ScenarioParse, MissingFileThrowsWithPath) {
  try {
    (void)parse_scenario_file("/nonexistent/dir/nope.scn");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("nope.scn"), std::string::npos);
  }
}

TEST(ScenarioParse, FileErrorsCarryThePath) {
  const std::string path = testing::TempDir() + "bad_scn_test.scn";
  {
    std::ofstream out(path);
    out << "scenario bad\nseed oops\ninvariant lost_vms == 0\n";
  }
  try {
    (void)parse_scenario_file(path);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path + ":2:6:"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace burstq::harness
