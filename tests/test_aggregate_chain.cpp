// Tests for the aggregate theta(t) chain: Eq. (12) transition matrix and
// the three stationary-distribution backends, which must all agree with
// each other and with long-run simulation.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "markov/aggregate_chain.h"
#include "obs/obs.h"
#include "prob/binomial.h"
#include "prob/combinatorics.h"

namespace burstq {
namespace {

TEST(TransitionMatrix, ShapeAndStochasticity) {
  const OnOffParams p{0.01, 0.09};
  for (std::size_t k : {1u, 2u, 5u, 16u}) {
    const Matrix m = aggregate_transition_matrix(k, p);
    EXPECT_EQ(m.rows(), k + 1);
    EXPECT_EQ(m.cols(), k + 1);
    EXPECT_TRUE(m.is_row_stochastic(1e-10)) << "k=" << k;
  }
}

TEST(TransitionMatrix, KOneMatchesTwoStateChain) {
  const OnOffParams p{0.3, 0.4};
  const Matrix m = aggregate_transition_matrix(1, p);
  EXPECT_NEAR(m(0, 0), 1 - p.p_on, 1e-14);
  EXPECT_NEAR(m(0, 1), p.p_on, 1e-14);
  EXPECT_NEAR(m(1, 0), p.p_off, 1e-14);
  EXPECT_NEAR(m(1, 1), 1 - p.p_off, 1e-14);
}

TEST(TransitionMatrix, KTwoHandComputedEntry) {
  // From state 1 (one ON, one OFF) to state 1: either neither switches or
  // both switch: (1-p_off)(1-p_on) + p_off * p_on.
  const OnOffParams p{0.2, 0.5};
  const Matrix m = aggregate_transition_matrix(2, p);
  EXPECT_NEAR(m(1, 1), (1 - 0.5) * (1 - 0.2) + 0.5 * 0.2, 1e-14);
  // From state 0 to state 2: both OFF VMs switch ON: p_on^2.
  EXPECT_NEAR(m(0, 2), 0.2 * 0.2, 1e-14);
  // From state 2 to state 0: both ON VMs switch OFF: p_off^2.
  EXPECT_NEAR(m(2, 0), 0.5 * 0.5, 1e-14);
}

TEST(TransitionMatrix, AllEntriesPositiveForInteriorParams) {
  // Proposition 1's argument relies on p_ij > 0.
  const Matrix m = aggregate_transition_matrix(4, OnOffParams{0.1, 0.2});
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_GT(m(i, j), 0.0) << i << "," << j;
}

// Property sweep: Gaussian == power == closed form across (k, p_on, p_off).
using ParamTuple = std::tuple<std::size_t, double, double>;

class StationaryAgreement : public ::testing::TestWithParam<ParamTuple> {};

TEST_P(StationaryAgreement, AllThreeBackendsAgree) {
  const auto [k, p_on, p_off] = GetParam();
  const OnOffParams p{p_on, p_off};
  const auto gauss =
      aggregate_stationary_distribution(k, p, StationaryMethod::kGaussian);
  const auto power =
      aggregate_stationary_distribution(k, p, StationaryMethod::kPower);
  const auto closed =
      aggregate_stationary_distribution(k, p, StationaryMethod::kClosedForm);
  ASSERT_EQ(gauss.size(), k + 1);
  ASSERT_EQ(power.size(), k + 1);
  ASSERT_EQ(closed.size(), k + 1);
  for (std::size_t i = 0; i <= k; ++i) {
    EXPECT_NEAR(gauss[i], closed[i], 1e-9)
        << "i=" << i << " k=" << k << " pon=" << p_on << " poff=" << p_off;
    EXPECT_NEAR(power[i], closed[i], 1e-8) << "i=" << i;
  }
}

TEST_P(StationaryAgreement, StationaryIsFixedPointOfP) {
  const auto [k, p_on, p_off] = GetParam();
  const OnOffParams p{p_on, p_off};
  const Matrix m = aggregate_transition_matrix(k, p);
  const auto pi =
      aggregate_stationary_distribution(k, p, StationaryMethod::kGaussian);
  const auto piP = m.left_multiply(pi);
  for (std::size_t i = 0; i <= k; ++i) EXPECT_NEAR(piP[i], pi[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, StationaryAgreement,
    ::testing::Values(
        ParamTuple{1, 0.01, 0.09}, ParamTuple{2, 0.01, 0.09},
        ParamTuple{4, 0.01, 0.09}, ParamTuple{8, 0.01, 0.09},
        ParamTuple{16, 0.01, 0.09}, ParamTuple{16, 0.5, 0.5},
        ParamTuple{8, 0.9, 0.1}, ParamTuple{8, 0.1, 0.9},
        ParamTuple{12, 0.05, 0.05}, ParamTuple{3, 0.99, 0.99},
        ParamTuple{24, 0.02, 0.2}, ParamTuple{6, 0.3, 0.7}));

// Regression: the two valid-parameter families that used to crash the
// kPower backend (ISSUE 3).  p_on = p_off = 1 makes theta(t+1) =
// k - theta(t) — periodic for k = 1, reducible for k >= 2 — and
// p_on = p_off = 1e-6 mixes far too slowly for any fixed iteration
// budget.  Both must now return the Binomial stationary law, no throw.
TEST(StationaryBoundary, PeriodicCornerMatchesClosedForm) {
  for (std::size_t k : {1u, 2u, 4u, 16u, 64u}) {
    const OnOffParams p{1.0, 1.0};
    const auto closed = aggregate_stationary_distribution(
        k, p, StationaryMethod::kClosedForm);
    for (const auto method :
         {StationaryMethod::kPower, StationaryMethod::kGaussian}) {
      const auto pi = aggregate_stationary_distribution(k, p, method);
      ASSERT_EQ(pi.size(), k + 1);
      for (std::size_t i = 0; i <= k; ++i)
        EXPECT_NEAR(pi[i], closed[i], 1e-9) << "k=" << k << " i=" << i;
    }
  }
}

TEST(StationaryBoundary, SlowMixingMatchesClosedForm) {
  for (std::size_t k : {1u, 2u, 4u, 16u, 64u}) {
    const OnOffParams p{1e-6, 1e-6};
    const auto closed = aggregate_stationary_distribution(
        k, p, StationaryMethod::kClosedForm);
    for (const auto method :
         {StationaryMethod::kPower, StationaryMethod::kGaussian}) {
      const auto pi = aggregate_stationary_distribution(k, p, method);
      ASSERT_EQ(pi.size(), k + 1);
      for (std::size_t i = 0; i <= k; ++i)
        EXPECT_NEAR(pi[i], closed[i], 1e-9) << "k=" << k << " i=" << i;
    }
  }
}

TEST(StationaryBoundary, SlowMixingPowerFallsBackWithCounter) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  auto& fallbacks = obs::metrics().counter("markov.power.fallbacks");
  const auto before = fallbacks.value();
  (void)aggregate_stationary_distribution(8, OnOffParams{1e-6, 1e-6},
                                          StationaryMethod::kPower);
  EXPECT_GT(fallbacks.value(), before)
      << "slow-mixing kPower should fall back to Gaussian and count it";
}

// Boundary grid: every backend pinned to the closed form across the
// probability extremes x k extremes of the valid domain (p = 1e-6 up to
// exactly 1.0, k from 1 to 64).  This grid is exactly where Proposition
// 1's preconditions fray; it must never crash and never disagree.
class StationaryBoundaryGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(StationaryBoundaryGrid, AllBackendsAgreeAcrossK) {
  const auto [p_on, p_off] = GetParam();
  const OnOffParams p{p_on, p_off};
  for (std::size_t k : {1u, 2u, 16u, 64u}) {
    const auto closed = aggregate_stationary_distribution(
        k, p, StationaryMethod::kClosedForm);
    const auto gauss = aggregate_stationary_distribution(
        k, p, StationaryMethod::kGaussian);
    const auto power = aggregate_stationary_distribution(
        k, p, StationaryMethod::kPower);
    for (std::size_t i = 0; i <= k; ++i) {
      EXPECT_NEAR(gauss[i], closed[i], 1e-9)
          << "k=" << k << " i=" << i << " p=(" << p_on << "," << p_off << ")";
      EXPECT_NEAR(power[i], closed[i], 1e-8)
          << "k=" << k << " i=" << i << " p=(" << p_on << "," << p_off << ")";
    }
  }
}

namespace grid {
constexpr double kBoundaryProbs[] = {1e-6, 1e-3, 0.5, 1.0 - 1e-3, 1.0};
}  // namespace grid

INSTANTIATE_TEST_SUITE_P(
    BoundaryGrid, StationaryBoundaryGrid,
    ::testing::Combine(::testing::ValuesIn(grid::kBoundaryProbs),
                       ::testing::ValuesIn(grid::kBoundaryProbs)));

TEST(StationaryDistribution, ClosedFormIsBinomial) {
  const OnOffParams p{0.01, 0.09};
  const std::size_t k = 10;
  const auto pi =
      aggregate_stationary_distribution(k, p, StationaryMethod::kClosedForm);
  const double q = p.stationary_on_probability();
  for (std::size_t i = 0; i <= k; ++i)
    EXPECT_DOUBLE_EQ(pi[i],
                     binomial_pmf(static_cast<std::int64_t>(k),
                                  static_cast<std::int64_t>(i), q));
}

TEST(SimulatedOccupancy, MatchesStationaryLaw) {
  const OnOffParams p{0.05, 0.15};  // q = 0.25, fast mixing
  const std::size_t k = 6;
  Rng rng(101);
  const auto freq = simulate_occupancy(k, p, 400000, rng);
  const auto pi =
      aggregate_stationary_distribution(k, p, StationaryMethod::kClosedForm);
  for (std::size_t i = 0; i <= k; ++i)
    EXPECT_NEAR(freq[i], pi[i], 0.01) << "state " << i;
}

TEST(SimulatedOccupancy, FrequenciesSumToOne) {
  Rng rng(5);
  const auto freq = simulate_occupancy(4, OnOffParams{0.2, 0.3}, 10000, rng);
  double sum = 0.0;
  for (double f : freq) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace burstq
