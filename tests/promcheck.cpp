// promcheck: read a Prometheus text-exposition document from stdin and
// validate it with obs::validate_exposition.  Exit 0 if valid, 1 with a
// diagnostic on stderr otherwise.  Used by the telemetry-smoke CI job to
// check live /metrics scrapes without external dependencies.

#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/prometheus.h"

int main() {
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  const std::string doc = buf.str();
  const std::optional<std::string> err =
      burstq::obs::validate_exposition(doc);
  if (err.has_value()) {
    std::cerr << "promcheck: INVALID exposition: " << *err << "\n";
    return 1;
  }
  std::size_t samples = 0;
  std::size_t families = 0;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0)
      ++families;
    else if (line[0] != '#')
      ++samples;
  }
  std::cerr << "promcheck: OK (" << families << " families, " << samples
            << " samples)\n";
  return 0;
}
