// Unit tests for the dense Matrix type.

#include <gtest/gtest.h>

#include "common/error.h"
#include "linalg/matrix.h"

namespace burstq {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
}

TEST(Matrix, BraceConstruction) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedBracesThrow) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, IdentityMultiplicationIsNeutral) {
  Matrix m{{1, 2}, {3, 4}};
  const Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(m.multiply(i).max_abs_diff(m), 0.0);
  EXPECT_DOUBLE_EQ(i.multiply(m).max_abs_diff(m), 0.0);
}

TEST(Matrix, KnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix expect{{19, 22}, {43, 50}};
  EXPECT_DOUBLE_EQ(a.multiply(b).max_abs_diff(expect), 0.0);
}

TEST(Matrix, RectangularProductShape) {
  Matrix a(2, 3);
  Matrix b(3, 4);
  const Matrix c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), InvalidArgument);
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(Matrix, LeftMultiply) {
  Matrix m{{1, 2}, {3, 4}};
  const std::vector<double> v{1.0, 1.0};
  const auto r = m.left_multiply(v);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 4.0);
  EXPECT_DOUBLE_EQ(r[1], 6.0);
}

TEST(Matrix, LeftMultiplyLengthMismatchThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.left_multiply({1.0}), InvalidArgument);
}

TEST(Matrix, RowStochasticDetection) {
  Matrix good{{0.25, 0.75}, {1.0, 0.0}};
  EXPECT_TRUE(good.is_row_stochastic());
  Matrix bad_sum{{0.5, 0.4}, {1.0, 0.0}};
  EXPECT_FALSE(bad_sum.is_row_stochastic());
  Matrix negative{{1.2, -0.2}, {0.5, 0.5}};
  EXPECT_FALSE(negative.is_row_stochastic());
  Matrix rect(2, 3);
  EXPECT_FALSE(rect.is_row_stochastic());
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.5}, {3, 4}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  Matrix c(3, 3);
  EXPECT_THROW((void)a.max_abs_diff(c), InvalidArgument);
}

}  // namespace
}  // namespace burstq
