// Concurrency stress for the telemetry stack: many writer threads
// hammering the metrics registry while scrapers snapshot and render, and
// a live TelemetryExporter serving HTTP GETs throughout.  Run under the
// ThreadSanitizer preset (build-tsan) in CI.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/exporter.h"
#include "obs/jsonl.h"
#include "obs/obs.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/slo.h"

namespace burstq::obs {
namespace {

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

TEST(ObsConcurrency, WritersVsScrapers) {
  metrics().reset();
  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        BURSTQ_COUNT("stress.count", 1);
        BURSTQ_GAUGE("stress.gauge", w * 1000 + i);
        BURSTQ_HIST("stress.hist", static_cast<std::uint64_t>(i));
        BURSTQ_SPAN("stress.span");
      }
    });
  }
  std::thread scraper([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = metrics().scrape();
      const std::string text = render_prometheus(snap);
      EXPECT_EQ(validate_exposition(text), std::nullopt);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  const MetricsSnapshot snap = metrics().scrape();
  const CounterSample* c = snap.counter("stress.count");
  if (kEnabled) {
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value,
              static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  } else {
    // The macros compile to nothing in a BURSTQ_NO_OBS build; the test
    // still exercised concurrent scrape() + render on the empty registry.
    EXPECT_EQ(c, nullptr);
  }
  metrics().reset();
}

TEST(ObsConcurrency, SloTrackerRecordVsReport) {
  SloOptions o;
  o.rho = 0.05;
  SloTracker slo(8, o);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const SloReport r = slo.report();
      EXPECT_LE(r.cumulative.violations, r.cumulative.observed);
      (void)r.render();
    }
  });
  for (int t = 0; t < 2000; ++t) {
    for (std::size_t j = 0; j < 8; ++j)
      slo.record(PmId{j}, (t + static_cast<int>(j)) % 7 == 0);
    slo.end_slot();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(slo.report().slots, 2000u);
}

TEST(ObsConcurrency, SpanEventEmissionAcrossThreads) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  const std::string path = testing::TempDir() + "span_events_mt.jsonl";
  events().open(path, EventFormat::kJsonl, EventLevel::kDetail);
  set_span_events({1, /*virtual_clock=*/true});
  constexpr int kThreads = 4;
  constexpr int kIters = 250;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        BURSTQ_SPAN("mtspan.outer");
        { BURSTQ_SPAN("mtspan.inner"); }
      }
    });
  }
  for (auto& t : workers) t.join();
  set_span_events({});
  events().close();

  // Replay the log per thread: ids unique process-wide, begin/end
  // strictly LIFO per thread, parents point at the enclosing open span
  // of the same thread.
  std::map<std::int64_t, std::int64_t> thread_of;  // span id -> thread
  std::map<std::int64_t, std::vector<std::int64_t>> stacks;
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const RecordedEvent& e : read_events_jsonl(path)) {
    if (e.kind == "span.begin") {
      ++begins;
      const std::int64_t id = e.integer("id");
      const std::int64_t thread = e.integer("thread");
      ASSERT_EQ(thread_of.count(id), 0u) << "duplicate span id " << id;
      thread_of[id] = thread;
      auto& stack = stacks[thread];
      EXPECT_EQ(e.integer("parent"), stack.empty() ? 0 : stack.back());
      stack.push_back(id);
    } else if (e.kind == "span.end") {
      ++ends;
      const std::int64_t id = e.integer("id");
      ASSERT_EQ(thread_of.count(id), 1u) << "end without begin";
      auto& stack = stacks[thread_of[id]];
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), id) << "span ends must nest (LIFO)";
      stack.pop_back();
    }
  }
  EXPECT_EQ(begins, static_cast<std::size_t>(kThreads) * kIters * 2);
  EXPECT_EQ(ends, begins);
  for (const auto& [thread, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "thread " << thread << " left spans open";
}

TEST(ObsConcurrency, ExporterUnderConcurrentScrapes) {
  if (!kEnabled) GTEST_SKIP() << "BURSTQ_NO_OBS build";
  metrics().reset();
  SloTracker slo(4, SloOptions{});

  TelemetryOptions opt;
  opt.port = 0;
  opt.interval = std::chrono::milliseconds(5);
  opt.slo = &slo;
  TelemetryExporter exporter(opt);
  const std::uint16_t port = exporter.port();
  ASSERT_NE(port, 0);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      BURSTQ_COUNT("exporter_stress.count", 1);
      for (std::size_t j = 0; j < 4; ++j)
        slo.record(PmId{j}, t % 11 == 0);
      slo.end_slot();
      ++t;
    }
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&port] {
      for (int i = 0; i < 50; ++i) {
        const std::string metrics_resp = http_get(port, "/metrics");
        EXPECT_NE(metrics_resp.find("200 OK"), std::string::npos);
        // The body after the blank line must validate.
        const std::size_t body = metrics_resp.find("\r\n\r\n");
        ASSERT_NE(body, std::string::npos);
        EXPECT_EQ(validate_exposition(metrics_resp.substr(body + 4)),
                  std::nullopt);
        EXPECT_NE(http_get(port, "/healthz").find("ok"),
                  std::string::npos);
        EXPECT_NE(http_get(port, "/slo").find("slo.verdict="),
                  std::string::npos);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GE(exporter.requests_served(), 4u * 50u * 3u);
  exporter.stop();
  metrics().reset();
}

}  // namespace
}  // namespace burstq::obs
