// Tests for the Poisson-binomial distribution (heterogeneous theta law).

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "prob/binomial.h"
#include "prob/normal.h"
#include "prob/poisson_binomial.h"

namespace burstq {
namespace {

TEST(PoissonBinomial, DegeneratesToBinomialWhenIdentical) {
  const double q = 0.13;
  const std::vector<double> qs(12, q);
  const auto pmf = poisson_binomial_pmf(qs);
  const auto ref = binomial_pmf_vector(12, q);
  ASSERT_EQ(pmf.size(), ref.size());
  for (std::size_t i = 0; i < pmf.size(); ++i)
    EXPECT_NEAR(pmf[i], ref[i], 1e-13) << "i=" << i;
}

TEST(PoissonBinomial, EmptyInputIsPointMassAtZero) {
  const std::vector<double> qs;
  const auto pmf = poisson_binomial_pmf(qs);
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
}

TEST(PoissonBinomial, HandComputedTwoVariables) {
  const std::vector<double> qs{0.5, 0.1};
  const auto pmf = poisson_binomial_pmf(qs);
  ASSERT_EQ(pmf.size(), 3u);
  EXPECT_NEAR(pmf[0], 0.5 * 0.9, 1e-15);
  EXPECT_NEAR(pmf[1], 0.5 * 0.9 + 0.5 * 0.1, 1e-15);
  EXPECT_NEAR(pmf[2], 0.5 * 0.1, 1e-15);
}

TEST(PoissonBinomial, PmfSumsToOne) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> qs;
    for (int i = 0; i < 30; ++i) qs.push_back(rng.next_double());
    const auto pmf = poisson_binomial_pmf(qs);
    double sum = 0.0;
    for (double p : pmf) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(PoissonBinomial, MomentsMatchPmf) {
  Rng rng(2);
  std::vector<double> qs;
  for (int i = 0; i < 25; ++i) qs.push_back(rng.next_double());
  const auto pmf = poisson_binomial_pmf(qs);
  double mean = 0.0;
  double second = 0.0;
  for (std::size_t x = 0; x < pmf.size(); ++x) {
    mean += static_cast<double>(x) * pmf[x];
    second += static_cast<double>(x * x) * pmf[x];
  }
  EXPECT_NEAR(mean, poisson_binomial_mean(qs), 1e-10);
  EXPECT_NEAR(second - mean * mean, poisson_binomial_variance(qs), 1e-9);
}

TEST(PoissonBinomial, CdfBoundsAndEdges) {
  const std::vector<double> qs{0.2, 0.5, 0.8};
  EXPECT_DOUBLE_EQ(poisson_binomial_cdf(qs, -1), 0.0);
  EXPECT_DOUBLE_EQ(poisson_binomial_cdf(qs, 3), 1.0);
  double prev = 0.0;
  for (std::int64_t x = 0; x <= 3; ++x) {
    const double c = poisson_binomial_cdf(qs, x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(PoissonBinomial, QuantileInvertsCdf) {
  const std::vector<double> qs{0.1, 0.1, 0.3, 0.6, 0.05};
  for (const double prob : {0.1, 0.5, 0.9, 0.99}) {
    const auto x = poisson_binomial_quantile(qs, prob);
    EXPECT_GE(poisson_binomial_cdf(qs, x), prob);
    if (x > 0) {
      EXPECT_LT(poisson_binomial_cdf(qs, x - 1), prob);
    }
  }
}

TEST(PoissonBinomial, MatchesMonteCarlo) {
  const std::vector<double> qs{0.05, 0.2, 0.4, 0.15};
  Rng rng(3);
  std::vector<double> freq(qs.size() + 1, 0.0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    std::size_t sum = 0;
    for (double q : qs)
      if (rng.bernoulli(q)) ++sum;
    freq[sum] += 1.0 / n;
  }
  const auto pmf = poisson_binomial_pmf(qs);
  for (std::size_t x = 0; x < pmf.size(); ++x)
    EXPECT_NEAR(freq[x], pmf[x], 0.005) << "x=" << x;
}

TEST(PoissonBinomial, InvalidQThrows) {
  const std::vector<double> bad{0.5, 1.2};
  EXPECT_THROW(poisson_binomial_pmf(bad), InvalidArgument);
  const std::vector<double> neg{-0.1};
  EXPECT_THROW(poisson_binomial_pmf(neg), InvalidArgument);
}

TEST(NormalQuantile, RoundTripsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.99), 2.3263478740408408, 1e-8);
}

TEST(NormalQuantile, OutOfDomainThrows) {
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(-0.5), InvalidArgument);
}

}  // namespace
}  // namespace burstq
