// Tests for VM/PM specs and random instance generation.

#include <gtest/gtest.h>

#include "common/error.h"
#include "placement/spec.h"

namespace burstq {
namespace {

TEST(VmSpec, DerivedQuantities) {
  VmSpec v{OnOffParams{0.01, 0.09}, 10.0, 5.0};
  EXPECT_DOUBLE_EQ(v.rp(), 15.0);
  EXPECT_DOUBLE_EQ(v.demand(VmState::kOff), 10.0);
  EXPECT_DOUBLE_EQ(v.demand(VmState::kOn), 15.0);
  EXPECT_NEAR(v.mean_demand(), 10.0 + 0.1 * 5.0, 1e-12);
}

TEST(VmSpec, Validation) {
  VmSpec ok{OnOffParams{0.1, 0.1}, 1.0, 1.0};
  EXPECT_NO_THROW(ok.validate());
  VmSpec neg_rb{OnOffParams{0.1, 0.1}, -1.0, 1.0};
  EXPECT_THROW(neg_rb.validate(), InvalidArgument);
  VmSpec neg_re{OnOffParams{0.1, 0.1}, 1.0, -1.0};
  EXPECT_THROW(neg_re.validate(), InvalidArgument);
  VmSpec bad_p{OnOffParams{0.0, 0.1}, 1.0, 1.0};
  EXPECT_THROW(bad_p.validate(), InvalidArgument);
}

TEST(PmSpec, Validation) {
  EXPECT_NO_THROW(PmSpec{100.0}.validate());
  EXPECT_THROW(PmSpec{0.0}.validate(), InvalidArgument);
  EXPECT_THROW(PmSpec{-5.0}.validate(), InvalidArgument);
}

TEST(ProblemInstance, Validation) {
  ProblemInstance inst;
  EXPECT_THROW(inst.validate(), InvalidArgument);
  inst.vms.push_back(VmSpec{OnOffParams{0.1, 0.1}, 1.0, 1.0});
  EXPECT_THROW(inst.validate(), InvalidArgument);  // no PMs
  inst.pms.push_back(PmSpec{10.0});
  EXPECT_NO_THROW(inst.validate());
}

TEST(ProblemInstance, MaxRe) {
  ProblemInstance inst;
  inst.vms = {VmSpec{OnOffParams{0.1, 0.1}, 1.0, 3.0},
              VmSpec{OnOffParams{0.1, 0.1}, 1.0, 7.0},
              VmSpec{OnOffParams{0.1, 0.1}, 1.0, 2.0}};
  inst.pms = {PmSpec{10.0}};
  EXPECT_DOUBLE_EQ(inst.max_re(), 7.0);
}

TEST(RandomInstance, RespectsRanges) {
  Rng rng(1);
  InstanceRanges r;
  r.rb_lo = 12.0;
  r.rb_hi = 20.0;
  r.re_lo = 2.0;
  r.re_hi = 10.0;
  const auto inst =
      random_instance(200, 50, OnOffParams{0.01, 0.09}, r, rng);
  EXPECT_EQ(inst.n_vms(), 200u);
  EXPECT_EQ(inst.n_pms(), 50u);
  for (const auto& v : inst.vms) {
    EXPECT_GE(v.rb, 12.0);
    EXPECT_LT(v.rb, 20.0);
    EXPECT_GE(v.re, 2.0);
    EXPECT_LT(v.re, 10.0);
  }
  for (const auto& p : inst.pms) {
    EXPECT_GE(p.capacity, 80.0);
    EXPECT_LT(p.capacity, 100.0);
  }
}

TEST(RandomInstance, DeterministicPerSeed) {
  InstanceRanges r;
  Rng a(9);
  Rng b(9);
  const auto ia = random_instance(50, 10, OnOffParams{0.01, 0.09}, r, a);
  const auto ib = random_instance(50, 10, OnOffParams{0.01, 0.09}, r, b);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(ia.vms[i].rb, ib.vms[i].rb);
    EXPECT_DOUBLE_EQ(ia.vms[i].re, ib.vms[i].re);
  }
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_DOUBLE_EQ(ia.pms[j].capacity, ib.pms[j].capacity);
}

TEST(RandomInstance, InvalidRangesThrow) {
  Rng rng(1);
  InstanceRanges bad;
  bad.rb_lo = 10.0;
  bad.rb_hi = 5.0;
  EXPECT_THROW(random_instance(5, 5, OnOffParams{0.1, 0.1}, bad, rng),
               InvalidArgument);
  EXPECT_THROW(random_instance(0, 5, OnOffParams{0.1, 0.1}, InstanceRanges{},
                               rng),
               InvalidArgument);
}

}  // namespace
}  // namespace burstq
