// Tests for the Consolidator facade.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/consolidator.h"

namespace burstq {
namespace {

const OnOffParams kP{0.01, 0.09};

ProblemInstance typical_instance(std::size_t n_vms, std::size_t n_pms,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_instance(n_vms, n_pms, kP, InstanceRanges{}, rng);
}

TEST(Consolidator, DispatchesAllStrategies) {
  const auto inst = typical_instance(100, 80, 1);
  const Consolidator c;
  const auto q = c.place(inst, Strategy::kQueue);
  const auto rp = c.place(inst, Strategy::kPeak);
  const auto rb = c.place(inst, Strategy::kNormal);
  const auto ex = c.place(inst, Strategy::kReserved, 0.3);
  EXPECT_TRUE(q.complete());
  EXPECT_TRUE(rp.complete());
  EXPECT_TRUE(rb.complete());
  EXPECT_TRUE(ex.complete());
  // Strategies genuinely differ.
  EXPECT_NE(q.pms_used(), rp.pms_used());
}

TEST(Consolidator, AnalyzeReportsUsedPmsOnly) {
  const auto inst = typical_instance(60, 80, 2);
  const Consolidator c;
  const auto placed = c.place(inst, Strategy::kQueue);
  const auto analysis = c.analyze(inst, placed.placement);
  EXPECT_EQ(analysis.pms_used, placed.pms_used());
  EXPECT_EQ(analysis.pms.size(), placed.pms_used());
  for (const auto& pm : analysis.pms) {
    EXPECT_GT(pm.vms, 0u);
    EXPECT_LE(pm.cvr_bound, c.options().rho + 1e-12);
    // Eq. 17 holds: reserved + rb_sum within capacity.
    EXPECT_LE(pm.reserved + pm.rb_sum, pm.capacity * (1.0 + 1e-9));
    EXPECT_GE(pm.utilization_normal, 0.0);
    EXPECT_LE(pm.utilization_normal, 1.0 + 1e-9);
  }
  EXPECT_LE(analysis.worst_cvr_bound, c.options().rho + 1e-12);
  EXPECT_GT(analysis.total_reserved, 0.0);
}

TEST(Consolidator, AnalyzeHandlesOverpackedBaselines) {
  // RB placements can exceed d; analyze must extend its table, not throw.
  QueuingFfdOptions opt;
  opt.max_vms_per_pm = 4;
  const Consolidator c(opt);
  const auto inst = typical_instance(80, 80, 3);
  const auto rb = ffd_by_normal(inst, 16);  // up to 16 VMs per PM
  const auto analysis = c.analyze(inst, rb.placement);
  EXPECT_EQ(analysis.pms_used, rb.pms_used());
}

TEST(Consolidator, SavingsVsReference) {
  PlacementAnalysis a;
  a.pms_used = 70;
  EXPECT_NEAR(a.savings_vs(100), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(a.savings_vs(0), 0.0);
}

TEST(Consolidator, SimulateEndToEnd) {
  const auto inst = typical_instance(50, 50, 4);
  const Consolidator c;
  const auto placed = c.place(inst, Strategy::kQueue);
  SimConfig cfg;
  cfg.slots = 30;
  const auto rep = c.simulate(inst, placed.placement, cfg, 99);
  EXPECT_EQ(rep.pms_used_timeline.size(), 30u);
  // Same seed, same result.
  const auto rep2 = c.simulate(inst, placed.placement, cfg, 99);
  EXPECT_EQ(rep.total_migrations, rep2.total_migrations);
  EXPECT_DOUBLE_EQ(rep.energy_wh, rep2.energy_wh);
}

TEST(Consolidator, InvalidOptionsThrow) {
  QueuingFfdOptions bad;
  bad.rho = -1.0;
  EXPECT_THROW(Consolidator{bad}, InvalidArgument);
}

TEST(Consolidator, AllStrategiesEnumerated) {
  const auto all = all_strategies();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all.front(), Strategy::kQueue);
  // Names are distinct and non-empty.
  std::set<std::string> names;
  for (const auto s : all) names.insert(strategy_name(s));
  EXPECT_EQ(names.size(), all.size());
}

TEST(Consolidator, ExtensionStrategiesDispatch) {
  const auto inst = typical_instance(120, 100, 5);
  const Consolidator c;
  for (const auto strat :
       {Strategy::kSbp, Strategy::kHetero, Strategy::kQuantile}) {
    const auto placed = c.place(inst, strat);
    EXPECT_TRUE(placed.complete()) << strategy_name(strat);
    EXPECT_GT(placed.pms_used(), 0u);
    // Analysis works on any placement.
    const auto analysis = c.analyze(inst, placed.placement);
    EXPECT_EQ(analysis.pms_used, placed.pms_used());
  }
}

TEST(Consolidator, FacadeMatchesDirectExtensionCalls) {
  const auto inst = typical_instance(80, 60, 6);
  const Consolidator c;
  const auto via_facade = c.place(inst, Strategy::kQuantile);
  QuantileFfdOptions qopt;
  qopt.reservation.rho = c.options().rho;
  qopt.max_vms_per_pm = c.options().max_vms_per_pm;
  qopt.cluster_buckets = c.options().cluster_buckets;
  const auto direct = queuing_ffd_quantile(inst, qopt);
  for (std::size_t i = 0; i < inst.n_vms(); ++i)
    EXPECT_EQ(via_facade.placement.pm_of(VmId{i}),
              direct.placement.pm_of(VmId{i}));
}

TEST(Consolidator, QuantileNeverLooserThanQueue) {
  // The exact quantile packs at least as tight as the block scheme on
  // the same facade configuration (modulo one PM of grid slack).
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    const auto inst = typical_instance(150, 120, seed);
    const Consolidator c;
    const auto queue = c.place(inst, Strategy::kQueue);
    const auto quant = c.place(inst, Strategy::kQuantile);
    ASSERT_TRUE(queue.complete() && quant.complete());
    EXPECT_LE(quant.pms_used(), queue.pms_used() + 1) << seed;
  }
}

}  // namespace
}  // namespace burstq
