// Unit + statistical tests for the two-state ON-OFF workload chain.

#include <gtest/gtest.h>

#include "common/error.h"
#include "markov/onoff.h"

namespace burstq {
namespace {

TEST(OnOffParams, Validation) {
  OnOffParams ok{0.01, 0.09};
  EXPECT_NO_THROW(ok.validate());
  EXPECT_THROW((OnOffParams{0.0, 0.5}.validate()), InvalidArgument);
  EXPECT_THROW((OnOffParams{0.5, 0.0}.validate()), InvalidArgument);
  EXPECT_THROW((OnOffParams{1.5, 0.5}.validate()), InvalidArgument);
  EXPECT_THROW((OnOffParams{0.5, -0.1}.validate()), InvalidArgument);
}

TEST(OnOffParams, DerivedQuantities) {
  OnOffParams p{0.01, 0.09};
  EXPECT_NEAR(p.stationary_on_probability(), 0.1, 1e-15);
  EXPECT_NEAR(p.expected_spike_duration(), 1.0 / 0.09, 1e-12);
  EXPECT_NEAR(p.expected_gap_duration(), 100.0, 1e-12);
}

TEST(OnOffChain, StartsOffByDefault) {
  OnOffChain c(OnOffParams{0.5, 0.5});
  EXPECT_EQ(c.state(), VmState::kOff);
  EXPECT_FALSE(c.on());
}

TEST(OnOffChain, DeterministicGivenSeed) {
  OnOffChain a(OnOffParams{0.3, 0.4});
  OnOffChain b(OnOffParams{0.3, 0.4});
  Rng ra(5);
  Rng rb(5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.step(ra), b.step(rb));
}

TEST(OnOffChain, StationaryOnFraction) {
  const OnOffParams p{0.01, 0.09};  // q = 0.1
  OnOffChain c(p);
  Rng rng(7);
  c.reset_stationary(rng);
  const int n = 400000;
  int on = 0;
  for (int i = 0; i < n; ++i) {
    if (c.on()) ++on;
    c.step(rng);
  }
  EXPECT_NEAR(static_cast<double>(on) / n, 0.1, 0.01);
}

TEST(OnOffChain, MeanSpikeDurationIsOneOverPoff) {
  const OnOffParams p{0.05, 0.2};
  OnOffChain c(p);
  Rng rng(11);
  // Measure ON-run lengths.
  std::vector<int> runs;
  int current = 0;
  for (int i = 0; i < 500000; ++i) {
    const bool was_on = c.on();
    c.step(rng);
    if (was_on) {
      ++current;
      if (!c.on()) {
        runs.push_back(current);
        current = 0;
      }
    }
  }
  ASSERT_GT(runs.size(), 1000u);
  double sum = 0.0;
  for (int r : runs) sum += r;
  EXPECT_NEAR(sum / static_cast<double>(runs.size()), 1.0 / p.p_off, 0.15);
}

TEST(OnOffChain, ResetStationaryMatchesQ) {
  const OnOffParams p{0.02, 0.08};  // q = 0.2
  Rng rng(13);
  int on = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    OnOffChain c(p);
    c.reset_stationary(rng);
    if (c.on()) ++on;
  }
  EXPECT_NEAR(static_cast<double>(on) / n, 0.2, 0.01);
}

TEST(GenerateStateTrace, LengthAndDeterminism) {
  const OnOffParams p{0.1, 0.3};
  Rng a(17);
  Rng b(17);
  const auto t1 = generate_state_trace(p, 500, a);
  const auto t2 = generate_state_trace(p, 500, b);
  EXPECT_EQ(t1.size(), 500u);
  EXPECT_EQ(t1, t2);
}

TEST(GenerateStateTrace, ColdStartBeginsOff) {
  const OnOffParams p{0.1, 0.3};
  Rng rng(19);
  const auto t = generate_state_trace(p, 10, rng, /*start_stationary=*/false);
  EXPECT_EQ(t.front(), VmState::kOff);
}

TEST(GenerateStateTrace, ZeroSlotsEmpty) {
  Rng rng(23);
  EXPECT_TRUE(generate_state_trace(OnOffParams{0.1, 0.1}, 0, rng).empty());
}

}  // namespace
}  // namespace burstq
