#!/usr/bin/env python3
"""Plot the paper figures from the CSVs the bench binaries drop in
bench_out/.

Usage:
    for b in build/bench/*; do $b; done    # generates bench_out/*.csv
    python3 scripts/plot_figures.py [bench_out] [out_dir]

Requires matplotlib; exits gracefully with a message if it is absent
(the console tables printed by the benches carry the same data).
"""

import csv
import sys
from collections import defaultdict
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib not available; the bench console tables carry "
             "the same data")


def read_csv(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def plot_fig5(rows, out):
    patterns = sorted({r["pattern"] for r in rows})
    fig, axes = plt.subplots(1, len(patterns), figsize=(4 * len(patterns), 3.2),
                             sharey=False)
    for ax, pattern in zip(axes, patterns):
        sub = [r for r in rows if r["pattern"] == pattern]
        ns = [int(r["n_vms"]) for r in sub]
        for key, label in [("rp_pms", "RP"), ("queue_pms", "QUEUE"),
                           ("sbp_pms", "SBP"), ("rb_pms", "RB")]:
            ax.plot(ns, [float(r[key]) for r in sub], marker="o", label=label)
        ax.set_title(pattern, fontsize=9)
        ax.set_xlabel("VMs")
        ax.set_ylabel("PMs used")
    axes[0].legend(fontsize=8)
    fig.suptitle("Figure 5 — packing result")
    fig.tight_layout()
    fig.savefig(out / "fig5_packing.png", dpi=150)


def plot_fig9(rows, out):
    patterns = sorted({r["pattern"] for r in rows})
    fig, axes = plt.subplots(1, 2, figsize=(9, 3.2))
    width = 0.25
    strategies = ["QUEUE", "RB", "RB-EX"]
    for axis_idx, (key, title) in enumerate(
            [("migrations", "total migrations"), ("pms_end", "PMs at end")]):
        ax = axes[axis_idx]
        for si, strat in enumerate(strategies):
            xs, ys, lo, hi = [], [], [], []
            for pi, pattern in enumerate(patterns):
                row = next(r for r in rows
                           if r["pattern"] == pattern and r["strategy"] == strat)
                xs.append(pi + (si - 1) * width)
                ys.append(float(row[f"{key}_avg"]))
                lo.append(ys[-1] - float(row[f"{key}_min"]))
                hi.append(float(row[f"{key}_max"]) - ys[-1])
            ax.bar(xs, ys, width=width, label=strat,
                   yerr=[lo, hi], capsize=3)
        ax.set_xticks(range(len(patterns)))
        ax.set_xticklabels([p.split(" ")[0] for p in patterns], fontsize=8)
        ax.set_title(f"Figure 9 — {title}", fontsize=10)
    axes[0].legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out / "fig9_migration.png", dpi=150)


def plot_fig10(rows, out):
    fig, ax = plt.subplots(figsize=(6, 3.2))
    slots = [int(r["slot"]) for r in rows]
    for key, label in [("queue_cum_migrations", "QUEUE"),
                       ("rb_cum_migrations", "RB"),
                       ("rbex_cum_migrations", "RB-EX")]:
        ax.plot(slots, [int(r[key]) for r in rows], label=label)
    ax.set_xlabel("slot")
    ax.set_ylabel("cumulative migrations")
    ax.set_title("Figure 10 — time-order pattern of migration events")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out / "fig10_timeline.png", dpi=150)


def plot_fig8(rows, out):
    fig, ax = plt.subplots(figsize=(7, 2.8))
    slots = [int(r["slot"]) for r in rows]
    ax.plot(slots, [float(r["demand_units"]) for r in rows], lw=0.7)
    ax.set_xlabel("slot (30 s)")
    ax.set_ylabel("demand (units)")
    ax.set_title("Figure 8 — sample generated workload")
    fig.tight_layout()
    fig.savefig(out / "fig8_workload.png", dpi=150)


def plot_generic_grouped(rows, xkey, ykey, group, title, fname, out):
    fig, ax = plt.subplots(figsize=(6, 3.2))
    series = defaultdict(list)
    for r in rows:
        series[r[group]].append((r[xkey], float(r[ykey])))
    for name, pts in series.items():
        ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                label=name)
    ax.set_xlabel(xkey)
    ax.set_ylabel(ykey)
    ax.set_title(title)
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out / fname, dpi=150)


def main():
    src = Path(sys.argv[1] if len(sys.argv) > 1 else "bench_out")
    out = Path(sys.argv[2] if len(sys.argv) > 2 else "bench_out/plots")
    out.mkdir(parents=True, exist_ok=True)

    plotters = {
        "fig5_packing.csv": plot_fig5,
        "fig8_workload.csv": plot_fig8,
        "fig9_migration.csv": plot_fig9,
        "fig10_timeline.csv": plot_fig10,
    }
    for fname, fn in plotters.items():
        path = src / fname
        if path.exists():
            fn(read_csv(path), out)
            print(f"plotted {fname}")
        else:
            print(f"skipped {fname} (run the bench first)")

    extras = [
        ("ablation_rho.csv", "rho", "pms_used", None,
         "rho vs PMs used", "ablation_rho.png"),
        ("ablation_delta.csv", "delta", "migrations_avg", None,
         "RB-EX delta vs migrations", "ablation_delta.png"),
    ]
    for fname, xk, yk, _, title, png in extras:
        path = src / fname
        if not path.exists():
            continue
        rows = read_csv(path)
        fig, ax = plt.subplots(figsize=(5, 3))
        ax.plot([r[xk] for r in rows], [float(r[yk]) for r in rows],
                marker="o")
        ax.set_xlabel(xk)
        ax.set_ylabel(yk)
        ax.set_title(title)
        fig.tight_layout()
        fig.savefig(out / png, dpi=150)
        print(f"plotted {fname}")

    print(f"plots in {out}/")


if __name__ == "__main__":
    main()
