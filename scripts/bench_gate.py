#!/usr/bin/env python3
"""Perf-regression gate over the committed bench trajectory.

Compares the JSON outputs of the bench harnesses (BENCH_placement.json,
BENCH_trace.json, BENCH_obs.json) against the committed trajectory file
(bench_out/TRAJECTORY.json) and fails when a gated metric regressed past
its per-metric relative tolerance.

Noise model: pass several --current directories (the same bench invoked
N times); the gate takes the best value per metric (min for
direction=lower, max for direction=higher) before comparing, so a single
scheduler hiccup on a shared CI runner cannot fail the gate.  Tolerances
are per-metric: tight for deterministic counts and byte sizes, loose for
wall-clock timings.

Usage:
  scripts/bench_gate.py check  --trajectory bench_out/TRAJECTORY.json \
      --current DIR [--current DIR ...]
  scripts/bench_gate.py update --trajectory bench_out/TRAJECTORY.json \
      --current DIR [--current DIR ...]

`check` prints a per-metric delta table and exits 1 on any regression
(or any gated metric missing from the current results).  `update`
rewrites the trajectory's committed values from the current best values,
keeping each metric's direction and tolerance.
"""

import argparse
import json
import os
import re
import sys

SCHEMA = "burstq.bench.trajectory/v1"


def fail(msg):
    print("bench_gate: error: " + msg, file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    except json.JSONDecodeError as e:
        fail("bad JSON in %s: %s" % (path, e))


_PATH_TOKEN = re.compile(r"([^.\[\]]+)|\[(\d+)\]")


def lookup(doc, path):
    """Resolves a dotted path with [i] list indices ("formats.jsonl.bytes",
    "drivers[2].seconds").  Returns None when any step is missing."""
    cur = doc
    for m in _PATH_TOKEN.finditer(path):
        key, idx = m.group(1), m.group(2)
        if key is not None:
            if not isinstance(cur, dict) or key not in cur:
                return None
            cur = cur[key]
        else:
            i = int(idx)
            if not isinstance(cur, list) or i >= len(cur):
                return None
            cur = cur[i]
    return cur


def best_current(spec, current_dirs):
    """Best observed value for one metric across N bench runs, or None."""
    values = []
    for d in current_dirs:
        path = os.path.join(d, spec["file"])
        if not os.path.exists(path):
            continue
        v = lookup(load_json(path), spec["path"])
        if isinstance(v, bool):  # bool is an int subclass; reject it
            continue
        if isinstance(v, (int, float)):
            values.append(float(v))
    if not values:
        return None
    return min(values) if spec["direction"] == "lower" else max(values)


def check_metric(spec, current):
    """Returns (verdict, delta_frac).  delta > 0 means worse."""
    committed = float(spec["value"])
    tol = float(spec["rel_tol"])
    if committed == 0.0:
        # Degenerate committed value: only an exact match passes.
        return ("ok" if current == 0.0 else "REGRESSION", 0.0)
    if spec["direction"] == "lower":
        delta = current / committed - 1.0
    else:
        delta = 1.0 - current / committed
    if delta > tol:
        return ("REGRESSION", delta)
    if delta < -tol:
        return ("improved", delta)
    return ("ok", delta)


def cmd_check(trajectory, current_dirs):
    metrics = trajectory.get("metrics", [])
    if not metrics:
        fail("trajectory has no metrics")
    rows = []
    failures = 0
    improved = 0
    for spec in metrics:
        name = "%s:%s" % (spec["file"], spec["path"])
        current = best_current(spec, current_dirs)
        if current is None:
            rows.append((name, spec["value"], "MISSING", "-",
                         spec["rel_tol"], "REGRESSION"))
            failures += 1
            continue
        verdict, delta = check_metric(spec, current)
        if verdict == "REGRESSION":
            failures += 1
        if verdict == "improved":
            improved += 1
        rows.append((name, spec["value"], "%.6g" % current,
                     "%+.1f%%" % (delta * 100.0), spec["rel_tol"], verdict))

    header = ("metric", "committed", "current", "worse-by", "tol", "verdict")
    widths = [max(len(str(r[i])) for r in rows + [header])
              for i in range(len(header))]
    fmt = "  ".join("%%-%ds" % w for w in widths)
    print(fmt % header)
    print(fmt % tuple("-" * w for w in widths))
    for r in rows:
        print(fmt % tuple(str(c) for c in r))
    print()
    print("bench_gate: %d metric(s), %d regression(s), %d improved, "
          "runs-per-metric=%d"
          % (len(metrics), failures, improved, len(current_dirs)))
    if failures:
        print("bench_gate: FAIL — see REGRESSION rows above; if the change "
              "is intentional, re-seed with `scripts/bench_gate.py update`",
              file=sys.stderr)
        return 1
    if improved:
        print("bench_gate: PASS (some metrics improved past tolerance — "
              "consider re-seeding the trajectory)")
    else:
        print("bench_gate: PASS")
    return 0


def cmd_update(trajectory, trajectory_path, current_dirs):
    updated = 0
    for spec in trajectory.get("metrics", []):
        current = best_current(spec, current_dirs)
        if current is None:
            fail("metric %s:%s missing from current results; cannot seed"
                 % (spec["file"], spec["path"]))
        spec["value"] = current
        updated += 1
    with open(trajectory_path, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print("bench_gate: re-seeded %d metric(s) into %s"
          % (updated, trajectory_path))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("command", choices=["check", "update"])
    ap.add_argument("--trajectory", required=True,
                    help="committed trajectory JSON")
    ap.add_argument("--current", action="append", required=True,
                    help="directory with BENCH_*.json from one bench run; "
                         "repeat for min-of-N noise rejection")
    args = ap.parse_args()

    trajectory = load_json(args.trajectory)
    if trajectory.get("schema") != SCHEMA:
        fail("%s: expected schema %s, got %r"
             % (args.trajectory, SCHEMA, trajectory.get("schema")))
    for spec in trajectory.get("metrics", []):
        for key in ("file", "path", "direction", "rel_tol", "value"):
            if key not in spec:
                fail("metric %r lacks %r" % (spec, key))
        if spec["direction"] not in ("lower", "higher"):
            fail("metric %s: direction must be lower|higher" % spec["path"])

    if args.command == "check":
        sys.exit(cmd_check(trajectory, args.current))
    sys.exit(cmd_update(trajectory, args.trajectory, args.current))


if __name__ == "__main__":
    main()
