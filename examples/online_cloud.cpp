// Online cloud — Section IV-E in action: a long-running cluster where
// VMs arrive (singly and in batches), depart, and drift in burstiness,
// with periodic recalibration of the rounded (p_on, p_off).
//
// Simulates a day of tenant churn and prints the fleet state every
// "hour", demonstrating that the reservation invariant survives
// arbitrary arrival/departure/recalibration sequences.

#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/table.h"
#include "obs/exporter.h"
#include "placement/online.h"
#include "placement/replan.h"

int main(int argc, char** argv) {
  using namespace burstq;

  ArgParser args("online_cloud",
                 "a day of online arrivals/departures/recalibration");
  obs::add_telemetry_options(args);
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage();
    return 2;
  }
  // No per-slot violation loop here, so no SLO tracker — /metrics and
  // /healthz still expose the placement/solver instrumentation.
  std::unique_ptr<obs::TelemetryExporter> telemetry;
  try {
    telemetry = obs::start_telemetry_from_args(args);
  } catch (const InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (telemetry)
    std::cerr << "telemetry: serving /metrics /healthz on 127.0.0.1:"
              << telemetry->port() << "\n";

  OnlineConsolidator cloud(std::vector<PmSpec>(200, PmSpec{90.0}),
                           QueuingFfdOptions{}, OnOffParams{0.01, 0.09});
  Rng rng(2026);

  std::vector<VmHandle> tenants;
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t rejected = 0;
  std::size_t repair_migrations = 0;

  ConsoleTable timeline({"hour", "hosted VMs", "PMs used", "arrivals",
                         "departures", "rejected", "repair migs",
                         "rounded p_on"});

  for (int hour = 1; hour <= 24; ++hour) {
    // Morning batch (hour 8): a tenant deploys 40 VMs at once, placed
    // with the full Algorithm-2 ordering.
    if (hour == 8) {
      std::vector<VmSpec> batch;
      for (int i = 0; i < 40; ++i)
        batch.push_back(VmSpec{OnOffParams{rng.uniform(0.008, 0.015),
                                           rng.uniform(0.07, 0.1)},
                               rng.uniform(4, 16), rng.uniform(4, 16)});
      for (const auto& h : cloud.add_batch(batch)) {
        ++arrivals;
        if (h)
          tenants.push_back(*h);
        else
          ++rejected;
      }
    }

    // Steady churn: a few arrivals and departures each hour.  Evening
    // arrivals are burstier (flash-crowd-prone workloads come online).
    const int n_arrivals = static_cast<int>(rng.next_below(6));
    for (int i = 0; i < n_arrivals; ++i) {
      const bool evening = hour >= 18;
      VmSpec v;
      v.onoff.p_on = evening ? rng.uniform(0.02, 0.05)
                             : rng.uniform(0.008, 0.015);
      v.onoff.p_off = rng.uniform(0.07, 0.1);
      v.rb = rng.uniform(4, 16);
      v.re = rng.uniform(4, 16);
      ++arrivals;
      if (const auto h = cloud.add_vm(v))
        tenants.push_back(*h);
      else
        ++rejected;
    }
    const int n_departures =
        static_cast<int>(rng.next_below(4));
    for (int i = 0; i < n_departures && !tenants.empty(); ++i) {
      const std::size_t pick = rng.next_below(tenants.size());
      cloud.remove_vm(tenants[pick]);
      tenants.erase(tenants.begin() +
                    static_cast<std::ptrdiff_t>(pick));
      ++departures;
    }

    // Periodic recalibration (paper: "requires periodical recalculation
    // of the rounded p_on and p_off") — every 6 hours.
    if (hour % 6 == 0) repair_migrations += cloud.recalibrate();

    timeline.add_row({std::to_string(hour),
                      std::to_string(cloud.vms_hosted()),
                      std::to_string(cloud.pms_used()),
                      std::to_string(arrivals),
                      std::to_string(departures),
                      std::to_string(rejected),
                      std::to_string(repair_migrations),
                      ConsoleTable::num(cloud.rounded_params().p_on, 4)});

    if (!cloud.reservation_invariant_holds()) {
      std::cerr << "INVARIANT VIOLATED at hour " << hour << "\n";
      return 1;
    }
  }

  timeline.print(std::cout);
  std::cout << "\nreservation invariant held through " << arrivals
            << " arrivals, " << departures << " departures and 4 "
            << "recalibrations.\n";

  // End-of-day maintenance window: how much would a from-scratch
  // re-consolidation (Algorithm 2 on the surviving fleet) save, and at
  // what migration cost?
  ProblemInstance snapshot;
  for (const auto& h : tenants) snapshot.vms.push_back(cloud.spec_of(h));
  snapshot.pms.assign(200, PmSpec{90.0});
  Placement live(snapshot.n_vms(), snapshot.n_pms());
  // Reconstruct the live mapping from the consolidator's view.
  for (std::size_t i = 0; i < tenants.size(); ++i)
    live.assign(VmId{i}, cloud.pm_of(tenants[i]));

  const auto maintenance = replan(snapshot, live);
  std::cout << "maintenance replan: " << maintenance.plan.pms_before
            << " PMs -> " << maintenance.plan.pms_after << " PMs, freeing "
            << maintenance.plan.pms_freed() << " at the cost of "
            << maintenance.plan.move_count() << " migrations.\n";
  return 0;
}
