// Datacenter consolidation — the paper's motivating scenario at scale.
//
// A cloud operator has 1000 VMs with heterogeneous bursty workloads and
// wants to pack them onto as few PMs as possible while keeping each PM's
// capacity-violation ratio under 1%.  This example compares all four
// strategies end to end (packing, analytic reservation, dynamic
// simulation with live migration) and prints an operator-style report.

#include <iostream>

#include "common/table.h"
#include "core/consolidator.h"
#include "core/scenario.h"

int main() {
  using namespace burstq;

  // A mixed fleet: 60% normal spikes, 20% small, 20% large; switch
  // probabilities vary slightly per VM (the consolidator rounds them).
  Rng rng(20130520);
  ProblemInstance inst;
  for (int i = 0; i < 1000; ++i) {
    const double roll = rng.next_double();
    const SpikePattern pattern =
        roll < 0.6 ? SpikePattern::kEqual
                   : (roll < 0.8 ? SpikePattern::kSmallSpike
                                 : SpikePattern::kLargeSpike);
    const auto ranges = ranges_for_pattern(pattern);
    VmSpec v;
    v.onoff.p_on = rng.uniform(0.008, 0.012);
    v.onoff.p_off = rng.uniform(0.08, 0.10);
    v.rb = rng.uniform(ranges.rb_lo, ranges.rb_hi);
    v.re = rng.uniform(ranges.re_lo, ranges.re_hi);
    inst.vms.push_back(v);
  }
  for (int j = 0; j < 1000; ++j)
    inst.pms.push_back(PmSpec{rng.uniform(80.0, 100.0)});

  const Consolidator consolidator;
  SimConfig sim;
  sim.slots = 100;
  sim.webserver_workload = true;

  std::cout << "Consolidating 1000 bursty VMs (rho = 1%, d = 16)\n\n";
  ConsoleTable table({"strategy", "PMs initial", "PMs end", "migrations",
                      "failed", "mean CVR", "energy (kWh)"});
  std::size_t rp_pms = 0;
  std::size_t queue_pms = 0;
  for (const auto strat : {Strategy::kQueue, Strategy::kPeak,
                           Strategy::kNormal, Strategy::kReserved}) {
    const auto placed = consolidator.place(inst, strat);
    if (!placed.complete()) {
      std::cout << strategy_name(strat) << ": " << placed.unplaced.size()
                << " VMs could not be placed!\n";
      continue;
    }
    const auto report =
        consolidator.simulate(inst, placed.placement, sim, 7);
    if (strat == Strategy::kPeak) rp_pms = placed.pms_used();
    if (strat == Strategy::kQueue) queue_pms = placed.pms_used();
    table.add_row({strategy_name(strat), std::to_string(placed.pms_used()),
                   std::to_string(report.pms_used_end),
                   std::to_string(report.total_migrations),
                   std::to_string(report.failed_migrations),
                   ConsoleTable::num(report.mean_cvr, 4),
                   ConsoleTable::num(report.energy_wh / 1000.0, 2)});
  }
  table.print(std::cout);

  if (rp_pms > 0) {
    const double saving =
        1.0 - static_cast<double>(queue_pms) / static_cast<double>(rp_pms);
    std::cout << "\nQUEUE saves " << ConsoleTable::percent(saving)
              << " of the PMs peak provisioning would need, with the CVR "
                 "still bounded.\n";
  }
  return 0;
}
