// Autopilot — a full day of closed-loop operation with CloudController:
// Eq. 17-gated admission, the dynamic scheduler reacting to CVR
// breaches, and nightly budget-bounded maintenance consolidation.
//
// Arrival intensity follows a diurnal curve (quiet night, busy day),
// tenants stay for a random lifetime, and the controller prints an
// hourly ops dashboard.
//
// Chaos knobs: --fault-plan runs a scripted schedule of PM crashes,
// recoveries, and solver outages against the controller (mig-abort and
// mig-stall items are rejected — the controller has no in-flight copy
// model); --fault-p-crash/--fault-p-recover add Markov-drawn PM churn
// from --fault-seed.  Crashed PMs evacuate through Eq. (17); tenants
// that fit nowhere queue and drain with exponential backoff.

#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/controller.h"
#include "fault/injector.h"
#include "obs/exporter.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/summary.h"

int main(int argc, char** argv) {
  using namespace burstq;

  ArgParser args("autopilot", "24h closed-loop operation demo");
  args.add_option("obs-out",
                  "record a structured event log here (.jsonl, .csv for "
                  "the long format, .btrc for binary columnar)");
  args.add_option("obs-level", "event level: off | decisions | detail",
                  "decisions");
  args.add_flag("obs-summary", "print a metrics digest on exit");
  args.add_option("fault-plan",
                  "scripted faults, e.g. "
                  "\"crash@600:pm=3;solver@700:slots=100;recover@900:pm=3\"");
  args.add_option("fault-p-crash", "per up-PM per-slot crash probability");
  args.add_option("fault-p-recover",
                  "per down-PM per-slot recovery probability");
  args.add_option("fault-seed", "seed for the Markov fault draws", "1");
  args.add_option("hours", "hours of operation to simulate", "24");
  args.add_option("pace-ms",
                  "sleep this many ms per slot (lets a scraper watch a "
                  "run in flight; 0 = full speed)",
                  "0");
  args.add_option("threads",
                  "worker threads for parallel stages "
                  "(0 = BURSTQ_THREADS or hardware)",
                  "0");
  args.add_option("shards",
                  "PM shards for admission routing (0 = auto from the "
                  "fleet size)",
                  "1");
  args.add_option("decision-budget",
                  "max exact Eq. 17 checks per admission decision "
                  "(0 = unlimited)",
                  "0");
  obs::add_telemetry_options(args);
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage();
    return 2;
  }
  if (const auto t = static_cast<std::size_t>(args.get_int("threads")))
    set_thread_count_override(t);
  if (args.has("obs-out")) {
    const std::string path = args.get("obs-out");
    obs::events().open(path, obs::event_format_from_path(path),
                       obs::parse_event_level(args.get("obs-level")));
    obs::events().set_run_label("autopilot");
  }

  const auto hours = static_cast<std::size_t>(args.get_int("hours"));
  const auto pace_ms = static_cast<std::size_t>(args.get_int("pace-ms"));
  if (hours == 0) {
    std::cerr << "error: --hours must be > 0\n";
    return 2;
  }

  ControllerConfig cfg;
  cfg.maintenance_every = 360;  // every 3 hours of 30s slots
  cfg.maintenance_budget = 25;
  cfg.ffd.sharded.shards =
      static_cast<std::size_t>(args.get_int("shards"));
  cfg.ffd.sharded.decision_budget =
      static_cast<std::size_t>(args.get_int("decision-budget"));
  const std::size_t n_pms = 120;

  // SLO watch: fast = 5 min of 30 s slots, slow = 1 h, against the
  // admission rule's own rho budget.
  obs::SloOptions slo_opts;
  slo_opts.rho = cfg.ffd.rho;
  slo_opts.fast_window = 10;
  slo_opts.slow_window = 120;
  obs::SloTracker slo(n_pms, slo_opts);
  cfg.slo = &slo;

  std::unique_ptr<obs::TelemetryExporter> telemetry;
  try {
    telemetry = obs::start_telemetry_from_args(args, &slo);
  } catch (const InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (telemetry)
    std::cerr << "telemetry: serving /metrics /healthz /slo on 127.0.0.1:"
              << telemetry->port() << "\n";

  CloudController cloud(std::vector<PmSpec>(n_pms, PmSpec{90.0}), cfg,
                        Rng(20260704));

  // Optional chaos: a FaultInjector replays the scripted/Markov schedule
  // against the controller.  Its draws come from --fault-seed, so the
  // workload stream below is identical with and without faults.
  std::optional<fault::FaultInjector> chaos;
  {
    fault::FaultPlan plan;
    if (args.has("fault-plan"))
      plan = fault::parse_fault_plan(args.get("fault-plan"));
    for (const auto& e : plan.scripted) {
      if (e.kind == fault::FaultKind::kMigrationAbort ||
          e.kind == fault::FaultKind::kMigrationStall) {
        std::cerr << "error: autopilot supports crash/recover/solver "
                     "fault-plan items only (the controller has no "
                     "in-flight copy model)\n";
        return 2;
      }
    }
    if (args.has("fault-p-crash"))
      plan.markov.p_crash = args.get_double("fault-p-crash");
    if (args.has("fault-p-recover"))
      plan.markov.p_recover = args.get_double("fault-p-recover");
    plan.seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
    plan.validate(n_pms);
    if (plan.any()) chaos.emplace(plan, n_pms);
  }

  Rng rng(1);
  struct LiveTenant {
    TenantId id;
    std::size_t expires_at_slot;
  };
  std::vector<LiveTenant> tenants;

  const std::size_t slots_per_hour = 120;  // 30s slots
  ConsoleTable dashboard({"hour", "VMs", "PMs", "admit", "reject",
                          "runtime migs", "maint migs", "mean CVR",
                          "energy (kWh)"});

  for (std::size_t hour = 0; hour < hours; ++hour) {
    // Diurnal arrival rate: 0.05/slot at 4am .. 0.6/slot at 2pm.
    const double day_phase =
        0.5 - 0.5 * std::cos(2.0 * 3.14159265358979 *
                             (static_cast<double>(hour) - 4.0) / 24.0);
    const double arrival_rate = 0.05 + 0.55 * day_phase;

    for (std::size_t s = 0; s < slots_per_hour; ++s) {
      const std::size_t now = hour * slots_per_hour + s;
      if (rng.bernoulli(arrival_rate)) {
        VmSpec v;
        v.onoff.p_on = rng.uniform(0.008, 0.02);
        v.onoff.p_off = rng.uniform(0.07, 0.12);
        v.rb = rng.uniform(3, 16);
        v.re = rng.uniform(3, 16);
        if (const auto id = cloud.admit(v)) {
          // Lifetimes: mostly hours, occasionally days (censored at 24h).
          const auto lifetime = static_cast<std::size_t>(
              rng.exponential(6.0 * static_cast<double>(slots_per_hour)));
          tenants.push_back(LiveTenant{*id, now + lifetime});
        }
      }
      // Departures.
      std::erase_if(tenants, [&](const LiveTenant& t) {
        if (t.expires_at_slot > now) return false;
        cloud.depart(t.id);
        return true;
      });
      // Chaos schedule: crashes/recoveries land before the tick so the
      // slot's scheduling and queue drain see the new fleet shape; a
      // solver outage covers the whole tick (maintenance degrades to the
      // stale table instead of aborting).
      std::optional<ScopedSolverFault> solver_guard;
      if (chaos) {
        const fault::SlotFaults sf = chaos->advance(now);
        for (std::size_t pm : sf.crashes) cloud.inject_pm_crash(PmId{pm});
        for (std::size_t pm : sf.recoveries)
          cloud.inject_pm_recover(PmId{pm});
        solver_guard.emplace(sf.solver_fault);
      }
      cloud.tick();
      if (pace_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
    }

    const auto& st = cloud.stats();
    dashboard.add_row(
        {std::to_string(hour), std::to_string(st.vms_hosted),
         std::to_string(st.pms_used), std::to_string(st.admissions),
         std::to_string(st.rejections),
         std::to_string(st.runtime_migrations),
         std::to_string(st.maintenance_migrations),
         ConsoleTable::num(st.mean_cvr, 4),
         ConsoleTable::num(st.energy_wh / 1000.0, 2)});
  }
  dashboard.set_title("autopilot: " + std::to_string(hours) +
                      "h of closed-loop operation");
  dashboard.print(std::cout);

  const auto& st = cloud.stats();
  std::cout << "\nday summary: " << st.admissions << " admissions, "
            << st.rejections << " rejections, " << st.runtime_migrations
            << " runtime migrations (" << st.failed_migrations
            << " failed), " << st.maintenance_migrations
            << " maintenance migrations across " << st.maintenance_windows
            << " windows, mean CVR " << st.mean_cvr << " (budget "
            << cfg.ffd.rho << ").\n";
  if (chaos)
    std::cout << "chaos summary: " << st.pm_crashes << " PM crashes, "
              << st.pm_recoveries << " recoveries, " << st.evacuations
              << " evacuations, " << st.evac_queued << " queued ("
              << cloud.queued_tenants() << " still waiting), "
              << st.retries << " retries, " << st.degraded_maintenance
              << " degraded maintenance windows.\n";
  const obs::SloReport slo_report = slo.report();
  std::cout << "slo: verdict=" << slo_report.verdict()
            << " cvr=" << slo_report.cumulative.cvr << " (budget "
            << slo_opts.rho << "), burn fast=" << slo_report.fast.burn
            << " slow=" << slo_report.slow.burn << ", "
            << slo_report.breaches << " breach episodes.\n";

  if (telemetry) telemetry->stop();
  if (args.has("obs-out")) obs::events().close();
  if (args.flag("obs-summary")) obs::print_summary(std::cout);
  return cloud.reservation_invariant_holds() ? 0 : 1;
}
