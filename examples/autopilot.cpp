// Autopilot — a full day of closed-loop operation with CloudController:
// Eq. 17-gated admission, the dynamic scheduler reacting to CVR
// breaches, and nightly budget-bounded maintenance consolidation.
//
// Arrival intensity follows a diurnal curve (quiet night, busy day),
// tenants stay for a random lifetime, and the controller prints an
// hourly ops dashboard.

#include <cmath>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/table.h"
#include "core/controller.h"
#include "obs/obs.h"
#include "obs/summary.h"

int main(int argc, char** argv) {
  using namespace burstq;

  ArgParser args("autopilot", "24h closed-loop operation demo");
  args.add_option("obs-out",
                  "record a structured event log here (.jsonl, or .csv "
                  "for the long format)");
  args.add_option("obs-level", "event level: off | decisions | detail",
                  "decisions");
  args.add_flag("obs-summary", "print a metrics digest on exit");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage();
    return 2;
  }
  if (args.has("obs-out")) {
    const std::string path = args.get("obs-out");
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    obs::events().open(
        path, csv ? obs::EventFormat::kCsv : obs::EventFormat::kJsonl,
        obs::parse_event_level(args.get("obs-level")));
    obs::events().set_run_label("autopilot");
  }

  ControllerConfig cfg;
  cfg.maintenance_every = 360;  // every 3 hours of 30s slots
  cfg.maintenance_budget = 25;
  CloudController cloud(std::vector<PmSpec>(120, PmSpec{90.0}), cfg,
                        Rng(20260704));

  Rng rng(1);
  struct LiveTenant {
    TenantId id;
    std::size_t expires_at_slot;
  };
  std::vector<LiveTenant> tenants;

  const std::size_t slots_per_hour = 120;  // 30s slots
  ConsoleTable dashboard({"hour", "VMs", "PMs", "admit", "reject",
                          "runtime migs", "maint migs", "mean CVR",
                          "energy (kWh)"});

  for (std::size_t hour = 0; hour < 24; ++hour) {
    // Diurnal arrival rate: 0.05/slot at 4am .. 0.6/slot at 2pm.
    const double day_phase =
        0.5 - 0.5 * std::cos(2.0 * 3.14159265358979 *
                             (static_cast<double>(hour) - 4.0) / 24.0);
    const double arrival_rate = 0.05 + 0.55 * day_phase;

    for (std::size_t s = 0; s < slots_per_hour; ++s) {
      const std::size_t now = hour * slots_per_hour + s;
      if (rng.bernoulli(arrival_rate)) {
        VmSpec v;
        v.onoff.p_on = rng.uniform(0.008, 0.02);
        v.onoff.p_off = rng.uniform(0.07, 0.12);
        v.rb = rng.uniform(3, 16);
        v.re = rng.uniform(3, 16);
        if (const auto id = cloud.admit(v)) {
          // Lifetimes: mostly hours, occasionally days (censored at 24h).
          const auto lifetime = static_cast<std::size_t>(
              rng.exponential(6.0 * static_cast<double>(slots_per_hour)));
          tenants.push_back(LiveTenant{*id, now + lifetime});
        }
      }
      // Departures.
      std::erase_if(tenants, [&](const LiveTenant& t) {
        if (t.expires_at_slot > now) return false;
        cloud.depart(t.id);
        return true;
      });
      cloud.tick();
    }

    const auto& st = cloud.stats();
    dashboard.add_row(
        {std::to_string(hour), std::to_string(st.vms_hosted),
         std::to_string(st.pms_used), std::to_string(st.admissions),
         std::to_string(st.rejections),
         std::to_string(st.runtime_migrations),
         std::to_string(st.maintenance_migrations),
         ConsoleTable::num(st.mean_cvr, 4),
         ConsoleTable::num(st.energy_wh / 1000.0, 2)});
  }
  dashboard.set_title("autopilot: 24h of closed-loop operation");
  dashboard.print(std::cout);

  const auto& st = cloud.stats();
  std::cout << "\nday summary: " << st.admissions << " admissions, "
            << st.rejections << " rejections, " << st.runtime_migrations
            << " runtime migrations (" << st.failed_migrations
            << " failed), " << st.maintenance_migrations
            << " maintenance migrations across " << st.maintenance_windows
            << " windows, mean CVR " << st.mean_cvr << " (budget "
            << cfg.ffd.rho << ").\n";
  if (args.has("obs-out")) obs::events().close();
  if (args.flag("obs-summary")) obs::print_summary(std::cout);
  return cloud.reservation_invariant_holds() ? 0 : 1;
}
