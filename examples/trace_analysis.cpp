// Trace analysis — close the loop from monitoring data to consolidation.
//
// A real operator does not know (p_on, p_off, Rb, Re); they have demand
// traces.  This example:
//   1. records a week of slotted demand for a synthetic fleet (standing
//     in for the monitoring system's export)
//   2. writes/reads it as CSV (fit/trace_io)
//   3. fits the ON-OFF model per VM (fit/estimator)
//   4. consolidates with Algorithm 2 on the *fitted* specs
//   5. replays the ORIGINAL trace against the placement to check that the
//      CVR target holds on data the fit never promised to match exactly

#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "fit/estimator.h"
#include "fit/trace_io.h"
#include "placement/placement.h"
#include "placement/queuing_ffd.h"

int main() {
  using namespace burstq;

  // 1. Ground-truth fleet the "monitoring system" observed: heterogeneous
  // everything.
  Rng rng(777);
  ProblemInstance truth;
  for (int i = 0; i < 60; ++i) {
    VmSpec v;
    v.onoff.p_on = rng.uniform(0.008, 0.03);
    v.onoff.p_off = rng.uniform(0.06, 0.2);
    v.rb = rng.uniform(4, 18);
    v.re = rng.uniform(4, 18);
    truth.vms.push_back(v);
  }
  truth.pms = {PmSpec{90.0}};  // placeholder; traces only need the VMs

  const std::size_t kWeek = 20160;  // 7 days of 30s slots
  const auto trace = record_demand_trace(truth, kWeek, Rng(778));

  // 2. Round-trip through CSV, as a monitoring export would arrive.
  const std::string path = "trace_analysis_demands.csv";
  write_demand_trace_csv(path, trace);
  const auto imported = read_demand_trace_csv(path);
  std::cout << "recorded " << imported.size() << " slots x "
            << imported.front().size() << " VMs -> " << path << "\n\n";

  // 3. Fit the four-tuple per VM.
  std::vector<PmSpec> fleet(60, PmSpec{90.0});
  const auto fitted = instance_from_traces(imported, fleet);

  ConsoleTable sample({"vm", "true (pon,poff,Rb,Re)", "fitted"});
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& t = truth.vms[i];
    const auto& f = fitted.vms[i];
    auto fmt = [](const VmSpec& v) {
      std::string out = "(";
      out += ConsoleTable::num(v.onoff.p_on, 3) + ", ";
      out += ConsoleTable::num(v.onoff.p_off, 3) + ", ";
      out += ConsoleTable::num(v.rb, 1) + ", ";
      out += ConsoleTable::num(v.re, 1) + ")";
      return out;
    };
    sample.add_row({std::to_string(i), fmt(t), fmt(f)});
  }
  sample.print(std::cout);

  // 4. Consolidate on the fitted model.
  const auto outcome = queuing_ffd(fitted);
  std::cout << "\nconsolidated onto " << outcome.result.pms_used()
            << " PMs (rho = 0.01)\n";

  // 5. Replay the original trace against the placement.
  std::size_t violations = 0;
  std::size_t pm_slots = 0;
  for (const auto& row : imported) {
    for (std::size_t j = 0; j < fitted.n_pms(); ++j) {
      const PmId pm{j};
      if (outcome.result.placement.count_on(pm) == 0) continue;
      double load = 0.0;
      for (std::size_t i : outcome.result.placement.vms_on(pm))
        load += row[i];
      ++pm_slots;
      if (load > fitted.pms[j].capacity) ++violations;
    }
  }
  const double cvr =
      static_cast<double>(violations) / static_cast<double>(pm_slots);
  std::cout << "replaying the recorded week: aggregate CVR = "
            << ConsoleTable::num(cvr, 5) << " (target rho = 0.01)\n";
  return cvr <= 0.02 ? 0 : 1;  // fail loudly if the fit badly mis-served
}
