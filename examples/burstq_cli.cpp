// burstq_cli — command-line multi-tool.
//
//   burstq_cli place   --vms specs.csv [--strategy ...] [...]
//       consolidate a fleet; VM->PM mapping CSV on stdout
//   burstq_cli analyze --vms specs.csv --mapping map.csv [...]
//       per-PM reservation report for an existing mapping
//   burstq_cli fit     --trace demands.csv
//       estimate (p_on,p_off,rb,re) per VM from a demand trace;
//       VM spec CSV on stdout (feed it back into `place`)
//   burstq_cli replay  --log flight.jsonl|flight.btrc
//       re-derive CVR totals from a recorded flight log
//   burstq_cli sim     --vms specs.csv [--slots N] [--fault-plan ...]
//       place then run the dynamic cluster simulator, optionally with
//       deterministic fault injection (PM crashes, migration faults,
//       solver outages); key=value report on stdout
//   burstq_cli trace   <header|head|tail|tocsv|query|profile|flame>
//       inspect and analyze a recorded flight log without a custom
//       reader: header prints the BTRC schema, head/tail/tocsv print
//       events as pipe-friendly id,kind,key,value CSV (any recorded
//       format); head/tail --at-offset N resolve a harness or `slo
//       explain` trace pointer (read from byte N instead of the file
//       start); query filters events with a small expression language
//       ("kind=slot.obs, t>=57, t<=70"); profile reconstructs the
//       sampled span tree (inclusive/exclusive time, per-slot critical
//       paths); flame emits collapsed stacks for flamegraph.pl and,
//       with --svg, a self-contained SVG flame graph
//   burstq_cli slo     explain --log FILE
//       re-derive SLO breach episodes from a recorded trace (flight
//       replay) and explain each one: window, dominant events/spans,
//       top violating PMs, byte-offset trace pointers
//   burstq_cli harness <run|list|report> ...
//       the scenario + invariants harness ("physics CI"): run executes
//       scenario files and writes per-invariant JSON reports plus
//       flight-recorder traces, list inventories scenarios or the
//       invariant catalog, report re-renders written reports
//   burstq_cli state   <inspect|restore|snapshot> --dir DIR
//       tooling over a crash-durable state directory (src/durable):
//       inspect inventories snapshots and journals (including torn
//       tails), restore dry-runs a recovery and prints where it would
//       resume, snapshot exports a verified snapshot blob to a file
//
// Subcommands that do real work accept --obs-out FILE (record a
// structured event log; a .csv extension switches to the long CSV
// format, .btrc to the binary columnar flight-recorder format),
// --obs-level off|decisions|detail, --obs-fsync (fsync the sink on
// every flush), --obs-span-sample N (emit one span in N as
// span.begin/span.end events; 0 = off), --obs-span-clock wall|virtual
// (virtual = deterministic tick timestamps for byte-identical
// profiles), and --obs-summary (print a metrics digest to stderr on
// exit).
//
// Exit codes: 0 success, 1 bad usage/input/abort, 2 some VMs could not
// be placed (place subcommand only), 3 a harness invariant failed.

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "common/args.h"
#include "common/csv.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/consolidator.h"
#include "durable/durable.h"
#include "durable/snapshot.h"
#include "durable/wal.h"
#include "fault/plan.h"
#include "fit/estimator.h"
#include "fit/instance_io.h"
#include "fit/trace_io.h"
#include "harness/runner.h"
#include "obs/exporter.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/query.h"
#include "obs/slo.h"
#include "obs/summary.h"
#include "obs/trace.h"
#include "placement/hetero_ffd.h"
#include "placement/quantile_ffd.h"
#include "placement/sbp.h"
#include "sim/cluster_sim.h"
#include "sim/flight.h"

namespace {

using namespace burstq;

int usage_all() {
  std::cerr
      << "usage: burstq_cli "
         "<place|analyze|fit|replay|sim|trace|slo|harness|state> "
         "[options]\n"
         "  place    consolidate VM specs onto a PM fleet\n"
         "  analyze  report per-PM reservations of an existing mapping\n"
         "  fit      estimate ON-OFF specs from a demand trace CSV\n"
         "  replay   re-derive CVR totals from a recorded flight log\n"
         "  sim      place + dynamic simulation with optional fault "
         "injection\n"
         "  trace    inspect/analyze a recorded flight log "
         "(header|head|tail|tocsv|query|profile|flame)\n"
         "  slo      explain SLO breach episodes from a recorded trace "
         "(explain)\n"
         "  harness  scenario + invariants harness (run|list|report)\n"
         "  state    inspect/fsck/export a crash-durable state dir "
         "(inspect|restore|snapshot)\n"
         "run 'burstq_cli <subcommand> --help-usage x' for options\n";
  return 1;
}

ArgParser& add_obs_options(ArgParser& args) {
  args.add_option("obs-out",
                  "record a structured event log here (.jsonl; .csv selects "
                  "the long CSV format, .btrc the binary columnar format)");
  args.add_option("obs-level", "event level: off | decisions | detail",
                  "decisions");
  args.add_flag("obs-compress",
                "LZ-compress BTRC blocks (.btrc sinks only)");
  args.add_flag("obs-fsync",
                "fsync the event sink on every flush (durability for the "
                "trace itself; counted as obs.trace.fsyncs)");
  args.add_option("obs-span-sample",
                  "emit one span in N as span.begin/span.end events "
                  "(0 = off; needs a detail-level sink)",
                  "0");
  args.add_option("obs-span-clock",
                  "span event timestamps: wall | virtual (virtual = "
                  "deterministic tick, for byte-identical profiles)",
                  "wall");
  args.add_flag("obs-summary", "print a metrics digest to stderr on exit");
  return args;
}

/// Opens the global event log per --obs-out/--obs-level/--obs-fsync and
/// configures span-event sampling.
void open_obs(const ArgParser& args) {
  obs::SpanEventOptions span_opt;
  span_opt.sample_every =
      static_cast<std::uint32_t>(args.get_int("obs-span-sample"));
  const std::string clock = args.get("obs-span-clock");
  if (clock == "virtual") {
    span_opt.virtual_clock = true;
  } else if (clock != "wall") {
    throw InvalidArgument("--obs-span-clock must be wall or virtual, got '" +
                          clock + "'");
  }
  obs::set_span_events(span_opt);
  if (!args.has("obs-out")) return;
  const std::string path = args.get("obs-out");
  obs::events().open(path, obs::event_format_from_path(path),
                     obs::parse_event_level(args.get("obs-level")),
                     args.flag("obs-compress"));
  if (args.flag("obs-fsync")) obs::events().set_fsync(true);
}

/// Closes the event log and honours --obs-summary.
void finish_obs(const ArgParser& args) {
  if (args.has("obs-out")) obs::events().close();
  if (args.flag("obs-summary")) obs::print_summary(std::cerr);
}

ArgParser& add_thread_option(ArgParser& args) {
  args.add_option("threads",
                  "worker threads for parallel stages "
                  "(0 = BURSTQ_THREADS or hardware)",
                  "0");
  return args;
}

/// Applies --threads via the process-wide override (common/parallel.h).
void apply_thread_option(const ArgParser& args) {
  const auto t = static_cast<std::size_t>(args.get_int("threads"));
  if (t > 0) set_thread_count_override(t);
}

ProblemInstance load_instance(const ArgParser& args) {
  ProblemInstance inst;
  inst.vms = read_vm_specs_csv(args.get("vms"));
  if (args.has("pms-file")) {
    inst.pms = read_pm_specs_csv(args.get("pms-file"));
  } else {
    const auto m = args.has("pms")
                       ? static_cast<std::size_t>(args.get_int("pms"))
                       : inst.vms.size();
    inst.pms.assign(m, PmSpec{args.get_double("capacity")});
  }
  return inst;
}

QueuingFfdOptions load_options(const ArgParser& args) {
  QueuingFfdOptions opt;
  opt.rho = args.get_double("rho");
  opt.max_vms_per_pm = static_cast<std::size_t>(args.get_int("d"));
  // --engine/--shards are only declared by `place`; has() is false for
  // subcommands that never registered them.
  if (args.has("engine")) {
    const std::string engine = args.get("engine");
    if (engine == "incremental") {
      opt.engine = PlacementEngine::kIncremental;
    } else if (engine == "naive") {
      opt.engine = PlacementEngine::kNaive;
    } else if (engine == "sharded") {
      opt.engine = PlacementEngine::kSharded;
    } else {
      throw InvalidArgument("unknown engine: " + engine);
    }
  }
  if (args.has("shards"))
    opt.sharded.shards = static_cast<std::size_t>(args.get_int("shards"));
  if (args.has("threads"))
    opt.sharded.threads = static_cast<std::size_t>(args.get_int("threads"));
  return opt;
}

int cmd_place(int argc, const char* const* argv) {
  ArgParser args("burstq_cli place", "consolidate a fleet");
  args.add_option("vms", "CSV of VM specs (p_on,p_off,rb,re)");
  args.add_option("strategy",
                  "queue | rp | rb | rbex | sbp | hetero | quantile",
                  "queue");
  args.add_option("capacity", "uniform PM capacity", "96");
  args.add_option("pms", "PM pool size (default: one per VM)");
  args.add_option("pms-file", "CSV of PM capacities");
  args.add_option("rho", "CVR budget", "0.01");
  args.add_option("d", "max VMs per PM", "16");
  args.add_option("engine",
                  "queue-strategy driver: incremental | naive | sharded",
                  "incremental");
  args.add_option("shards",
                  "PM shards for the sharded engine (0 = auto from the "
                  "fleet size)",
                  "1");
  args.add_flag("quiet", "suppress the stderr summary");
  add_thread_option(args);
  add_obs_options(args);
  if (!args.parse(argc, argv) || !args.has("vms")) {
    std::cerr << (args.error().empty() ? "--vms is required" : args.error())
              << "\n\n"
              << args.usage();
    return 1;
  }
  apply_thread_option(args);
  open_obs(args);

  const auto inst = load_instance(args);
  const auto opt = load_options(args);
  const std::string strategy = args.get("strategy");
  obs::events().set_run_label("place/" + strategy);

  const PlacementResult placed = [&]() -> PlacementResult {
    if (strategy == "queue") return queuing_ffd(inst, opt).result;
    if (strategy == "rp") return ffd_by_peak(inst, opt.max_vms_per_pm);
    if (strategy == "rb") return ffd_by_normal(inst, opt.max_vms_per_pm);
    if (strategy == "rbex")
      return ffd_reserved(inst, 0.3, opt.max_vms_per_pm);
    if (strategy == "sbp")
      return sbp_normal(inst, opt.rho, opt.max_vms_per_pm);
    if (strategy == "hetero") {
      HeteroFfdOptions hopt;
      hopt.rho = opt.rho;
      hopt.max_vms_per_pm = opt.max_vms_per_pm;
      return queuing_ffd_hetero(inst, hopt);
    }
    if (strategy == "quantile") {
      QuantileFfdOptions qopt;
      qopt.reservation.rho = opt.rho;
      qopt.max_vms_per_pm = opt.max_vms_per_pm;
      return queuing_ffd_quantile(inst, qopt);
    }
    throw InvalidArgument("unknown strategy: " + strategy);
  }();

  std::cout << "vm,pm\n";
  for (std::size_t i = 0; i < inst.n_vms(); ++i) {
    const PmId pm = placed.placement.pm_of(VmId{i});
    std::cout << i << "," << (pm.valid() ? std::to_string(pm.value) : "-")
              << "\n";
  }
  if (!args.flag("quiet")) {
    const Consolidator consolidator(opt);
    const auto analysis = consolidator.analyze(inst, placed.placement);
    std::cerr << "strategy=" << strategy << " vms=" << inst.n_vms()
              << " pms_used=" << placed.pms_used()
              << " unplaced=" << placed.unplaced.size()
              << " worst_cvr_bound=" << analysis.worst_cvr_bound
              << " total_reserved=" << analysis.total_reserved << "\n";
  }
  finish_obs(args);
  return placed.complete() ? 0 : 2;
}

int cmd_analyze(int argc, const char* const* argv) {
  ArgParser args("burstq_cli analyze",
                 "per-PM reservation report for an existing mapping");
  args.add_option("vms", "CSV of VM specs");
  args.add_option("mapping", "CSV with header vm,pm (as `place` emits)");
  args.add_option("capacity", "uniform PM capacity", "96");
  args.add_option("pms", "PM pool size (default: one per VM)");
  args.add_option("pms-file", "CSV of PM capacities");
  args.add_option("rho", "CVR budget", "0.01");
  args.add_option("d", "max VMs per PM", "16");
  add_obs_options(args);
  if (!args.parse(argc, argv) || !args.has("vms") || !args.has("mapping")) {
    std::cerr << (args.error().empty() ? "--vms and --mapping are required"
                                       : args.error())
              << "\n\n"
              << args.usage();
    return 1;
  }
  open_obs(args);

  const auto inst = load_instance(args);
  Placement placement(inst.n_vms(), inst.n_pms());
  {
    std::ifstream in(args.get("mapping"));
    if (!in.is_open()) {
      std::cerr << "cannot open mapping: " << args.get("mapping") << "\n";
      return 1;
    }
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::stringstream ss(line);
      std::string vm_s;
      std::string pm_s;
      std::getline(ss, vm_s, ',');
      std::getline(ss, pm_s, ',');
      if (pm_s == "-" || pm_s.empty()) continue;
      placement.assign(VmId{std::stoul(vm_s)}, PmId{std::stoul(pm_s)});
    }
  }

  const Consolidator consolidator(load_options(args));
  const auto analysis = consolidator.analyze(inst, placement);
  std::cout << "pm,vms,blocks,block_size,reserved,rb_sum,capacity,"
               "cvr_bound\n";
  for (const auto& pm : analysis.pms) {
    std::cout << pm.pm << "," << pm.vms << "," << pm.blocks << ","
              << pm.block_size << "," << pm.reserved << "," << pm.rb_sum
              << "," << pm.capacity << "," << pm.cvr_bound << "\n";
  }
  std::cerr << "pms_used=" << analysis.pms_used
            << " worst_cvr_bound=" << analysis.worst_cvr_bound << "\n";
  finish_obs(args);
  return 0;
}

int cmd_replay(int argc, const char* const* argv) {
  ArgParser args("burstq_cli replay",
                 "re-derive CVR totals from a recorded flight log "
                 "(JSONL or BTRC, recorded at --obs-level detail)");
  args.add_option("log", "flight-recorder file (.jsonl or .btrc)");
  args.add_flag("per-pm", "also emit per-PM CVR CSV on stdout");
  args.add_option("slo-fast", "fast SLO window in slots", "10");
  args.add_option("slo-slow", "slow SLO window in slots", "120");
  if (!args.parse(argc, argv) || !args.has("log")) {
    std::cerr << (args.error().empty() ? "--log is required" : args.error())
              << "\n\n"
              << args.usage();
    return 1;
  }

  obs::SloOptions slo_opts;  // rho is taken from each recorded header
  slo_opts.fast_window = static_cast<std::size_t>(args.get_int("slo-fast"));
  slo_opts.slow_window = static_cast<std::size_t>(args.get_int("slo-slow"));
  const auto segments = replay_flight_log(args.get("log"), &slo_opts);
  if (segments.empty()) {
    std::cerr << "no sim.config segments in " << args.get("log")
              << " (was the run recorded at --obs-level detail?)\n";
    return 1;
  }

  ConsoleTable table({"run", "PMs", "slots", "mean CVR", "max CVR",
                      "migrations", "failed", "window resets"});
  for (const auto& seg : segments) {
    table.add_row({seg.label, std::to_string(seg.n_pms),
                   std::to_string(seg.slots_seen),
                   ConsoleTable::num(seg.tracker.mean_cvr(), 4),
                   ConsoleTable::num(seg.tracker.max_cvr(), 4),
                   std::to_string(seg.migrations),
                   std::to_string(seg.failed_migrations),
                   std::to_string(seg.window_resets)});
  }
  table.print(std::cerr);

  // SLO audit: observed CVR vs the run's recorded rho budget, per window.
  ConsoleTable slo_table({"run", "rho", "cum CVR", "fast burn", "slow burn",
                          "breaches", "PMs > rho", "verdict"});
  bool slo_ok = true;
  for (const auto& seg : segments) {
    if (!seg.slo) continue;
    const obs::SloReport r = seg.slo->report();
    std::size_t pms_above = 0;
    for (const auto& pm : r.pms) pms_above += pm.above_rho ? 1 : 0;
    slo_table.add_row({seg.label, ConsoleTable::num(r.rho, 4),
                       ConsoleTable::num(r.cumulative.cvr, 4),
                       ConsoleTable::num(r.fast.burn, 2),
                       ConsoleTable::num(r.slow.burn, 2),
                       std::to_string(r.breaches),
                       std::to_string(pms_above), r.verdict()});
    if (!r.ok()) slo_ok = false;
  }
  slo_table.set_title("SLO audit (observed CVR vs recorded rho)");
  slo_table.print(std::cerr);
  std::cerr << "slo.verdict=" << (slo_ok ? "PASS" : "FAIL") << "\n";

  if (args.flag("per-pm")) {
    std::cout << "run,pm,observed_slots,violations,cvr,windowed_cvr\n";
    for (const auto& seg : segments)
      for (std::size_t j = 0; j < seg.n_pms; ++j) {
        const PmId pm{j};
        if (seg.tracker.observed_slots(pm) == 0) continue;
        std::cout << seg.label << "," << j << ","
                  << seg.tracker.observed_slots(pm) << ","
                  << seg.tracker.violations(pm) << ","
                  << seg.tracker.cvr(pm) << ","
                  << seg.tracker.windowed_cvr(pm) << "\n";
      }
  }
  return 0;
}

/// Renders one decoded value the way the CSV sink would have written it.
std::string trace_value_text(const obs::EventValue& v) {
  switch (v.tag) {
    case obs::EventValue::Tag::kNumber: return csv_format(v.num);
    case obs::EventValue::Tag::kString: return v.str;
    case obs::EventValue::Tag::kBool: return v.b ? "true" : "false";
    case obs::EventValue::Tag::kNull: return "null";
  }
  return {};
}

/// Prints events as long-format CSV rows (same layout as the CSV sink:
/// a key-less kind row, then one row per field).  `first_id` numbers the
/// first event — tail uses the absolute position in the file.
void print_events_csv(std::ostream& os,
                      const std::vector<obs::RecordedEvent>& events,
                      std::uint64_t first_id) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::RecordedEvent& ev = events[i];
    const std::string id_kind =
        std::to_string(first_id + i) + ',' + csv_escape(ev.kind) + ',';
    os << id_kind << ",\n";
    for (const auto& [key, value] : ev.fields)
      os << id_kind << csv_escape(key) << ','
         << csv_escape(trace_value_text(value)) << '\n';
  }
}

int cmd_trace(int argc, const char* const* argv) {
  const std::string verb = argc >= 2 ? argv[1] : "";
  const bool known_verb = verb == "header" || verb == "head" ||
                          verb == "tail" || verb == "tocsv" ||
                          verb == "query" || verb == "profile" ||
                          verb == "flame";
  ArgParser args("burstq_cli trace " + (known_verb ? verb : "<verb>"),
                 "inspect or analyze a recorded flight log; header shows "
                 "the BTRC schema, head/tail/tocsv/query emit "
                 "id,kind,key,value CSV, profile/flame aggregate span "
                 "events");
  args.add_option("log", "recorded flight log (.btrc, .jsonl, or .csv)");
  args.add_option("n", "events for head/tail", "10");
  args.add_alias('n', "n");
  args.add_option("at-offset",
                  "head/tail: start at this byte offset (a harness report "
                  "trace_pointer; BTRC block boundary or JSONL line start)");
  args.add_option("where",
                  "query: filter expression, comma = AND; clauses "
                  "key<op>value with op in = != < <= > >=; 'kind' matches "
                  "the event kind (e.g. \"kind=slot.obs,viol>0\")");
  args.add_option("limit", "query: stop after N matching events", "0");
  args.add_flag("count", "query: print only the match count");
  args.add_option("top", "profile: rows per table", "24");
  args.add_flag("collapsed",
                "profile: print collapsed stacks (flamegraph input) "
                "instead of the report");
  args.add_option("svg", "flame: also write a self-contained SVG here");
  args.add_option("title", "flame: SVG title (default: trace stem)");
  if (!known_verb) {
    std::cerr << "usage: burstq_cli trace "
                 "<header|head|tail|tocsv|query|profile|flame> "
                 "--log FILE [-n N] [--where EXPR] [--svg FILE]\n";
    return 1;
  }
  if (!args.parse(argc - 1, argv + 1) || !args.has("log")) {
    std::cerr << (args.error().empty() ? "--log is required" : args.error())
              << "\n\n"
              << args.usage();
    return 1;
  }
  if (!obs::kEnabled) {
    std::cerr << "error: 'trace' is unavailable in this binary: it was "
                 "built with -DBURSTQ_NO_OBS, which strips the flight "
                 "recorder; rebuild without BURSTQ_NO_OBS\n";
    return 2;
  }
  const std::string path = args.get("log");
  const auto n = static_cast<std::size_t>(args.get_int("n"));

  if (verb == "header") {
    const obs::EventFormat format = obs::sniff_event_format(path);
    if (format != obs::EventFormat::kBinary) {
      std::cerr << "error: " << path << " is "
                << obs::format_name(format)
                << ", not BTRC; 'trace header' reads the binary schema "
                   "(use head/tocsv for text logs)\n";
      return 1;
    }
    const obs::TraceFileInfo info = obs::read_trace_info(path);
    std::cout << "version=" << static_cast<int>(info.version) << "\n"
              << "compressed=" << (info.compressed ? "true" : "false")
              << "\n"
              << "events=" << info.events << "\n"
              << "data_blocks=" << info.data_blocks << "\n"
              << "schema_blocks=" << info.schema_blocks << "\n"
              << "kinds=" << info.kinds.size() << "\n"
              << "kind_id,kind,rows,column,type\n";
    for (const auto& kind : info.kinds)
      for (const auto& col : kind.columns)
        std::cout << kind.id << ',' << csv_escape(kind.name) << ','
                  << kind.rows << ',' << csv_escape(col.name) << ','
                  << col.type_name() << '\n';
    return 0;
  }

  if (verb == "profile" || verb == "flame") {
    const obs::SpanProfile prof = obs::profile_trace(path);
    if (verb == "profile") {
      if (args.flag("collapsed")) {
        std::cout << prof.render_collapsed();
      } else {
        obs::SpanProfileOptions popt;
        popt.top = static_cast<std::size_t>(args.get_int("top"));
        std::cout << prof.render(popt);
      }
      return 0;
    }
    // flame: collapsed stacks on stdout, optional SVG on the side.
    std::cout << prof.render_collapsed();
    if (args.has("svg")) {
      const std::string title =
          args.has("title")
              ? args.get("title")
              : std::filesystem::path(path).stem().string();
      const std::string svg = obs::render_flame_svg(prof.collapsed, title);
      std::ofstream out(args.get("svg"), std::ios::binary);
      BURSTQ_REQUIRE(out.good(),
                     "cannot open --svg output: " + args.get("svg"));
      out << svg;
      std::cerr << "flame.svg=" << args.get("svg")
                << " stacks=" << prof.collapsed.size() << "\n";
    }
    return 0;
  }

  if (verb == "query") {
    const obs::Query query = obs::Query::parse(args.get("where"));
    const auto limit = static_cast<std::uint64_t>(args.get_int("limit"));
    const bool count_only = args.flag("count");
    if (!count_only) std::cout << "id,kind,key,value\n";
    std::uint64_t matched = 0;
    obs::scan_events(path, [&](const obs::RecordedEvent& ev,
                               std::uint64_t /*offset*/,
                               std::uint64_t index) {
      if (!query.matches(ev)) return true;
      ++matched;
      if (!count_only) print_events_csv(std::cout, {ev}, index);
      return limit == 0 || matched < limit;
    });
    if (count_only) std::cout << "matches=" << matched << "\n";
    return 0;
  }

  std::cout << "id,kind,key,value\n";
  if (verb == "tocsv") {
    print_events_csv(std::cout, obs::read_events_auto(path), 0);
    return 0;
  }
  if (verb == "head") {
    if (args.has("at-offset")) {
      // Resolve a harness trace pointer: decode n events starting at
      // the recorded byte offset.  Ids are relative to the offset.
      const auto offset =
          static_cast<std::uint64_t>(args.get_int("at-offset"));
      print_events_csv(std::cout,
                       obs::read_events_at_offset(path, offset, n), 0);
      return 0;
    }
    // Pull blocks only until enough events arrived, so head of a huge
    // trace stays cheap.
    if (obs::sniff_event_format(path) == obs::EventFormat::kBinary) {
      obs::TraceReader reader(path);
      std::vector<obs::RecordedEvent> events;
      while (events.size() < n && reader.next_block(events)) {
      }
      if (events.size() > n) events.resize(n);
      print_events_csv(std::cout, events, 0);
    } else {
      auto events = obs::read_events_auto(path);
      if (events.size() > n) events.resize(n);
      print_events_csv(std::cout, events, 0);
    }
    return 0;
  }
  // tail: stream blocks, keeping a bounded window of the last n events.
  if (args.has("at-offset")) {
    // Last n events at-or-after the pointer; ids are relative to the
    // offset (parity with head --at-offset).
    const auto offset =
        static_cast<std::uint64_t>(args.get_int("at-offset"));
    std::vector<obs::RecordedEvent> events = obs::read_events_at_offset(
        path, offset, std::numeric_limits<std::size_t>::max());
    const std::uint64_t total_after = events.size();
    if (events.size() > n)
      events.erase(events.begin(),
                   events.end() - static_cast<std::ptrdiff_t>(n));
    print_events_csv(std::cout, events, total_after - events.size());
    return 0;
  }
  std::vector<obs::RecordedEvent> window;
  std::uint64_t total = 0;
  if (obs::sniff_event_format(path) == obs::EventFormat::kBinary) {
    obs::TraceReader reader(path);
    while (reader.next_block(window)) {
      if (window.size() > n)
        window.erase(window.begin(),
                     window.end() - static_cast<std::ptrdiff_t>(n));
    }
    total = reader.info().events;
  } else {
    window = obs::read_events_auto(path);
    total = window.size();
    if (window.size() > n)
      window.erase(window.begin(),
                   window.end() - static_cast<std::ptrdiff_t>(n));
  }
  print_events_csv(std::cout, window, total - window.size());
  return 0;
}

int cmd_slo(int argc, const char* const* argv) {
  const std::string verb = argc >= 2 ? argv[1] : "";
  const bool known_verb = verb == "explain";
  ArgParser args("burstq_cli slo " + (known_verb ? verb : "<verb>"),
                 "re-derive SLO breach episodes from a recorded flight "
                 "log and explain each one (dominant events/spans, top "
                 "violating PMs, trace pointers)");
  args.add_option("log", "recorded flight log (.btrc or .jsonl)");
  args.add_option("slo-fast", "fast burn-rate window in slots", "10");
  args.add_option("slo-slow", "slow burn-rate window in slots", "120");
  args.add_option("slo-burn",
                  "burn-rate threshold that opens a breach episode",
                  "1.0");
  args.add_option("top", "events/spans/PMs listed per episode", "8");
  args.add_flag("no-pointers",
                "omit 'pointer trace_offset=' lines (reports become "
                "comparable across trace formats)");
  if (!known_verb) {
    std::cerr << "usage: burstq_cli slo explain --log FILE [--top N]\n";
    return 1;
  }
  if (!args.parse(argc - 1, argv + 1) || !args.has("log")) {
    std::cerr << (args.error().empty() ? "--log is required" : args.error())
              << "\n\n"
              << args.usage();
    return 1;
  }
  SloExplainOptions opt;
  opt.slo.fast_window =
      static_cast<std::size_t>(args.get_int("slo-fast"));
  opt.slo.slow_window =
      static_cast<std::size_t>(args.get_int("slo-slow"));
  opt.slo.breach_burn = args.get_double("slo-burn");
  opt.top = static_cast<std::size_t>(args.get_int("top"));
  opt.pointers = !args.flag("no-pointers");
  std::cout << explain_slo_breaches(args.get("log"), opt);
  return 0;
}

int cmd_fit(int argc, const char* const* argv) {
  ArgParser args("burstq_cli fit",
                 "estimate ON-OFF specs from a demand-trace CSV "
                 "(header slot,vm0,vm1,...)");
  args.add_option("trace", "demand trace CSV (fit/trace_io format)");
  if (!args.parse(argc, argv) || !args.has("trace")) {
    std::cerr << (args.error().empty() ? "--trace is required" : args.error())
              << "\n\n"
              << args.usage();
    return 1;
  }
  const auto trace = read_demand_trace_csv(args.get("trace"));
  const std::size_t n_vms = trace.front().size();
  std::cout << "p_on,p_off,rb,re\n";
  std::vector<double> series(trace.size());
  for (std::size_t i = 0; i < n_vms; ++i) {
    for (std::size_t t = 0; t < trace.size(); ++t) series[t] = trace[t][i];
    const auto fit = fit_onoff_from_trace(series);
    std::cout << fit.spec.onoff.p_on << "," << fit.spec.onoff.p_off << ","
              << fit.spec.rb << "," << fit.spec.re << "\n";
    if (!fit.bursty)
      std::cerr << "vm" << i << ": trace never switches level (treated as "
                << "non-bursty)\n";
  }
  return 0;
}

}  // namespace

/// Assembles a FaultPlan from --fault-plan / --fault-p-* / --fault-seed.
/// Returns nullopt when no fault knob was given.
std::optional<fault::FaultPlan> load_fault_plan(const ArgParser& args) {
  fault::FaultPlan plan;
  if (args.has("fault-plan"))
    plan = fault::parse_fault_plan(args.get("fault-plan"));
  if (args.has("fault-p-crash"))
    plan.markov.p_crash = args.get_double("fault-p-crash");
  if (args.has("fault-p-recover"))
    plan.markov.p_recover = args.get_double("fault-p-recover");
  if (args.has("fault-p-mig-fail"))
    plan.markov.p_mig_fail = args.get_double("fault-p-mig-fail");
  if (args.has("fault-p-kill"))
    plan.markov.p_kill = args.get_double("fault-p-kill");
  plan.seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  plan.validate();
  if (!plan.any()) return std::nullopt;
  return plan;
}

ArgParser& add_fault_options(ArgParser& args) {
  args.add_option("fault-plan",
                  "scripted faults, e.g. "
                  "\"crash@10:pm=2;solver@15:slots=20;recover@40:pm=2\"");
  args.add_option("fault-p-crash", "per up-PM per-slot crash probability");
  args.add_option("fault-p-recover",
                  "per down-PM per-slot recovery probability");
  args.add_option("fault-p-mig-fail",
                  "per in-flight migration per-slot abort probability");
  args.add_option("fault-p-kill",
                  "per-slot process-kill probability (requires "
                  "--durable-dir)");
  args.add_option("fault-seed", "seed for the Markov fault draws", "1");
  return args;
}

ArgParser& add_durability_options(ArgParser& args) {
  args.add_option("durable-dir",
                  "crash-durable state directory (snapshots + WAL); "
                  "required for kill faults, wiped at start of run");
  args.add_option("durable-every", "snapshot cadence in slots", "25");
  args.add_flag("durable-fsync", "fsync snapshot and WAL writes");
  return args;
}

int cmd_sim(int argc, const char* const* argv) {
  ArgParser args("burstq_cli sim",
                 "place a fleet, then run the dynamic cluster simulator "
                 "with optional deterministic fault injection");
  args.add_option("vms", "CSV of VM specs (p_on,p_off,rb,re)");
  args.add_option("strategy", "queue | rp | rb | quantile", "queue");
  args.add_option("capacity", "uniform PM capacity", "96");
  args.add_option("pms", "PM pool size (default: one per VM)");
  args.add_option("pms-file", "CSV of PM capacities");
  args.add_option("rho", "CVR budget", "0.01");
  args.add_option("d", "max VMs per PM", "16");
  args.add_option("slots", "simulated slots", "100");
  args.add_option("seed", "workload RNG seed", "42");
  args.add_option("cost-slots", "live-migration copy cost in slots", "1");
  args.add_option("cvr-window", "migration-trigger window in slots", "10");
  args.add_option("slo-fast", "fast SLO window in slots", "10");
  args.add_option("slo-slow", "slow SLO window in slots", "120");
  add_thread_option(args);
  add_fault_options(args);
  add_durability_options(args);
  add_obs_options(args);
  obs::add_telemetry_options(args);
  if (!args.parse(argc, argv) || !args.has("vms")) {
    std::cerr << (args.error().empty() ? "--vms is required" : args.error())
              << "\n\n"
              << args.usage();
    return 1;
  }
  apply_thread_option(args);
  open_obs(args);
  obs::events().set_run_label("sim");

  const auto inst = load_instance(args);
  const auto opt = load_options(args);
  const std::string strategy = args.get("strategy");
  const PlacementResult placed = [&]() -> PlacementResult {
    if (strategy == "queue") return queuing_ffd(inst, opt).result;
    if (strategy == "rp") return ffd_by_peak(inst, opt.max_vms_per_pm);
    if (strategy == "rb") return ffd_by_normal(inst, opt.max_vms_per_pm);
    if (strategy == "quantile") {
      QuantileFfdOptions qopt;
      qopt.reservation.rho = opt.rho;
      qopt.max_vms_per_pm = opt.max_vms_per_pm;
      return queuing_ffd_quantile(inst, qopt);
    }
    throw InvalidArgument("unknown strategy: " + strategy);
  }();
  if (!placed.complete()) {
    std::cerr << "error: " << placed.unplaced.size()
              << " VMs could not be placed; grow the fleet (--pms) or "
                 "capacity\n";
    return 2;
  }

  SimConfig cfg;
  cfg.slots = static_cast<std::size_t>(args.get_int("slots"));
  cfg.policy.rho = opt.rho;
  cfg.policy.max_vms_per_pm = opt.max_vms_per_pm;
  cfg.policy.cost_slots =
      static_cast<std::size_t>(args.get_int("cost-slots"));
  cfg.policy.cvr_window =
      static_cast<std::size_t>(args.get_int("cvr-window"));
  cfg.faults = load_fault_plan(args);

  const bool has_kills = cfg.faults && cfg.faults->has_kills();
  if (has_kills && !args.has("durable-dir"))
    throw InvalidArgument(
        "kill faults need a restore path: pass --durable-dir DIR");
  if (args.has("durable-dir")) {
    durable::DurabilityConfig dur;
    dur.dir = args.get("durable-dir");
    dur.snapshot_every =
        static_cast<std::size_t>(args.get_int("durable-every"));
    dur.fsync = args.flag("durable-fsync");
    dur.validate();
    // Stale state from an earlier run must never leak into a restore.
    std::filesystem::remove_all(dur.dir);
    cfg.durability = dur;
  }

  obs::SloOptions slo_opts;
  slo_opts.rho = opt.rho;
  slo_opts.fast_window = static_cast<std::size_t>(args.get_int("slo-fast"));
  slo_opts.slow_window = static_cast<std::size_t>(args.get_int("slo-slow"));
  obs::SloTracker slo(inst.n_pms(), slo_opts);
  cfg.slo = &slo;

  std::unique_ptr<obs::TelemetryExporter> telemetry =
      obs::start_telemetry_from_args(args, &slo);
  if (telemetry)
    std::cerr << "telemetry: serving /metrics /healthz /slo on 127.0.0.1:"
              << telemetry->port() << "\n";

  // Kill-restore loop: a fired kill point throws SimKilled; restore from
  // the durable directory and resume until the run completes.  The final
  // report is byte-identical to an uninterrupted run (the durability
  // contract), so the key=value output below stays deterministic.
  const Rng sim_rng(static_cast<std::uint64_t>(args.get_int("seed")));
  std::size_t restores = 0;
  std::size_t worst_replay = 0;
  const SimReport rep = [&] {
    for (;;) {
      ClusterSimulator sim(inst, placed.placement, cfg, sim_rng);
      if (restores > 0) {
        const ClusterSimulator::RestoreInfo info =
            sim.restore_from_durable();
        worst_replay = std::max(worst_replay, info.replay_slots);
      }
      try {
        return sim.run();
      } catch (const durable::SimKilled& k) {
        ++restores;
        std::cerr << "kill point fired at slot " << k.slot
                  << "; restoring from " << cfg.durability->dir << "\n";
      }
    }
  }();
  if (telemetry) telemetry->stop();
  const obs::SloReport slo_rep = slo.report();

  // key=value lines: stable field order, deterministic values — two runs
  // with identical seeds must produce byte-identical output.
  std::cout << "strategy=" << strategy << "\n"
            << "vms=" << inst.n_vms() << "\n"
            << "slots=" << cfg.slots << "\n"
            << "migrations=" << rep.total_migrations << "\n"
            << "failed_migrations=" << rep.failed_migrations << "\n"
            << "pms_used_end=" << rep.pms_used_end << "\n"
            << "pms_used_max=" << rep.pms_used_max << "\n"
            << "mean_cvr=" << rep.mean_cvr << "\n"
            << "max_cvr=" << rep.max_cvr << "\n"
            << "energy_wh=" << rep.energy_wh << "\n"
            << "fault.pm_crashes=" << rep.faults.pm_crashes << "\n"
            << "fault.pm_recoveries=" << rep.faults.pm_recoveries << "\n"
            << "fault.evacuated=" << rep.faults.evacuated << "\n"
            << "fault.enqueued=" << rep.faults.enqueued << "\n"
            << "fault.queue_end=" << rep.faults.queue_end << "\n"
            << "fault.retries=" << rep.faults.retries << "\n"
            << "fault.migration_aborts=" << rep.faults.migration_aborts
            << "\n"
            << "fault.migration_stalls=" << rep.faults.migration_stalls
            << "\n"
            << "fault.solver_degraded=" << rep.faults.solver_degraded
            << "\n"
            << "fault.lost_vms=" << rep.faults.lost_vms << "\n";
  if (cfg.durability)
    std::cout << "durable.restores=" << restores << "\n"
              << "durable.replay_slots=" << worst_replay << "\n";
  std::cout << slo_rep.render();
  finish_obs(args);
  return rep.faults.lost_vms == 0 ? 0 : 1;
}

/// Walks a durable state dir and prints one line per snapshot/WAL pair.
/// Integrity problems are *reported*, not thrown — inspect is the tool
/// you reach for when something is already wrong.
int state_inspect(const durable::SnapshotStore& store) {
  const auto slots = store.snapshot_slots();
  if (slots.empty()) {
    std::cerr << "no snapshots in " << store.dir() << "\n";
    return 1;
  }
  std::cout << "slot,snapshot_bytes,blob_bytes,snapshot_status,"
               "wal_groups,wal_records,wal_valid_bytes,wal_status\n";
  for (const std::size_t slot : slots) {
    const std::string snap = store.snapshot_path(slot);
    std::uintmax_t snap_bytes = 0;
    {
      std::error_code ec;
      snap_bytes = std::filesystem::file_size(snap, ec);
    }
    std::size_t blob_bytes = 0;
    std::string status = "ok";
    try {
      blob_bytes = durable::SnapshotStore::load_file(snap).blob.size();
    } catch (const durable::CorruptState& e) {
      status = std::string("corrupt: ") + e.what();
    }
    const durable::WalScan scan = durable::scan_wal(store.wal_path(slot));
    std::size_t records = 0;
    for (const auto& g : scan.groups) records += g.records.size();
    const std::string wal_status = !scan.present
                                       ? (scan.torn ? "bad-header" : "absent")
                                       : (scan.torn ? "torn-tail" : "ok");
    std::cout << slot << ',' << snap_bytes << ',' << blob_bytes << ','
              << csv_escape(status) << ',' << scan.groups.size() << ','
              << records << ',' << scan.valid_bytes << ',' << wal_status
              << '\n';
  }
  return 0;
}

/// Dry-runs a recovery: verifies the newest snapshot loads and reports
/// the slot a restore would resume at.  This is the fsck you run before
/// trusting a state directory.
int state_restore(const durable::SnapshotStore& store) {
  std::optional<durable::SnapshotStore::Loaded> loaded;
  try {
    loaded = store.load_newest();
  } catch (const durable::CorruptState& e) {
    std::cerr << "restore would FAIL: " << e.what() << "\n";
    return 1;
  }
  if (!loaded) {
    std::cerr << "restore would FAIL: no snapshot in " << store.dir()
              << "\n";
    return 1;
  }
  const durable::WalScan scan = durable::scan_wal(store.wal_path(loaded->slot));
  // Only the consecutive suffix replays (a gap means a lost group).
  std::size_t replay = 0;
  while (replay < scan.groups.size() &&
         scan.groups[replay].slot == loaded->slot + replay)
    ++replay;
  std::cout << "snapshot=" << loaded->path << "\n"
            << "snapshot_slot=" << loaded->slot << "\n"
            << "blob_bytes=" << loaded->blob.size() << "\n"
            << "replay_slots=" << replay << "\n"
            << "resume_slot=" << loaded->slot + replay << "\n"
            << "wal_torn=" << (scan.torn ? "true" : "false") << "\n"
            << "verdict=OK\n";
  return 0;
}

int cmd_state(int argc, const char* const* argv) {
  const std::string verb = argc >= 2 ? argv[1] : "";
  const bool known_verb =
      verb == "inspect" || verb == "restore" || verb == "snapshot";
  ArgParser args("burstq_cli state " + (known_verb ? verb : "<verb>"),
                 "tooling over a crash-durable state directory: inspect "
                 "inventories snapshots and journals, restore dry-runs a "
                 "recovery, snapshot exports a verified blob");
  args.add_option("dir", "durable state directory (snap-*.bqss, wal-*.bqwl)");
  args.add_option("out", "snapshot verb: write the blob to this file");
  args.add_option("slot",
                  "snapshot verb: export this slot (default: newest)");
  if (!known_verb) {
    std::cerr << "usage: burstq_cli state <inspect|restore|snapshot> "
                 "--dir DIR [--out FILE] [--slot N]\n";
    return 1;
  }
  if (!args.parse(argc - 1, argv + 1) || !args.has("dir")) {
    std::cerr << (args.error().empty() ? "--dir is required" : args.error())
              << "\n\n"
              << args.usage();
    return 1;
  }
  const std::string dir = args.get("dir");
  if (!std::filesystem::is_directory(dir)) {
    std::cerr << "--dir " << dir << " is not a directory\n";
    return 1;
  }
  const durable::SnapshotStore store(dir, false);

  if (verb == "inspect") return state_inspect(store);
  if (verb == "restore") return state_restore(store);

  // snapshot: export one verified blob.
  if (!args.has("out")) {
    std::cerr << "state snapshot needs --out FILE\n";
    return 1;
  }
  durable::SnapshotStore::Loaded loaded;
  if (args.has("slot")) {
    const auto slot = static_cast<std::size_t>(args.get_int("slot"));
    loaded = durable::SnapshotStore::load_file(store.snapshot_path(slot));
  } else {
    auto newest = store.load_newest();
    if (!newest) {
      std::cerr << "no snapshot in " << dir << "\n";
      return 1;
    }
    loaded = std::move(*newest);
  }
  std::ofstream out(args.get("out"), std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    std::cerr << "cannot open --out " << args.get("out") << "\n";
    return 1;
  }
  out.write(loaded.blob.data(),
            static_cast<std::streamsize>(loaded.blob.size()));
  out.close();
  std::cerr << "exported slot " << loaded.slot << " (" << loaded.blob.size()
            << " bytes) from " << loaded.path << "\n";
  return 0;
}

/// One line per scenario plus one per invariant, key=value formatted and
/// deterministic (shared by `harness run` and `harness report`).
void print_report_summary(const harness::ScenarioReport& rep) {
  std::cout << "scenario=" << rep.scenario << " status=" << rep.status
            << " slots=" << rep.slots_completed << "/" << rep.slots
            << " trace=" << rep.trace_file << " events=" << rep.trace_events
            << "\n";
  if (rep.status == "abort")
    std::cout << "  abort_reason=" << rep.abort_reason << "\n";
  for (const auto& inv : rep.invariants) {
    std::cout << "  invariant=" << harness::invariant_name(inv.kind)
              << " verdict=" << (inv.pass ? "PASS" : "FAIL")
              << " worst=" << csv_format(inv.worst) << " threshold="
              << harness::invariant_op_name(inv.op)
              << csv_format(inv.threshold);
    if (inv.window)
      std::cout << " window=" << inv.window->first << ".."
                << inv.window->second;
    if (inv.trace)
      std::cout << " trace_offset=" << inv.trace->offset
                << " event_index=" << inv.trace->event_index;
    std::cout << "\n";
  }
}

/// Collects the input files of a harness verb: --scenario/--report FILE
/// plus every `*.ext` under --dir, sorted by name for deterministic
/// ordering.
std::vector<std::string> harness_inputs(const ArgParser& args,
                                        const std::string& file_key,
                                        std::string_view ext) {
  std::vector<std::string> files;
  if (args.has(file_key)) files.push_back(args.get(file_key));
  if (args.has("dir")) {
    const std::string dir = args.get("dir");
    if (!std::filesystem::is_directory(dir))
      throw InvalidArgument("--dir " + dir + " is not a directory");
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > ext.size() &&
          name.compare(name.size() - ext.size(), ext.size(), ext) == 0)
        files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int cmd_harness(int argc, const char* const* argv) {
  const std::string verb = argc >= 2 ? argv[1] : "";
  const bool known_verb = verb == "run" || verb == "list" ||
                          verb == "report";
  ArgParser args("burstq_cli harness " + (known_verb ? verb : "<verb>"),
                 "scenario + invariants harness: run executes scenario "
                 "files and writes one JSON verdict per invariant next to "
                 "the flight-recorder trace; list inventories scenarios "
                 "(--catalog: the invariant catalog); report re-renders "
                 "written reports");
  args.add_option("scenario", "one scenario file (run/list)");
  args.add_option("dir",
                  "directory of inputs (run/list: *.scn; report: "
                  "*.report.json)");
  args.add_option("out", "output directory for reports and traces", ".");
  args.add_option("trace-format", "trace sink: jsonl | btrc", "jsonl");
  args.add_flag("compress", "LZ-compress BTRC trace blocks");
  args.add_flag("catalog", "list: print the invariant catalog instead");
  args.add_option("report", "one report file (report verb)");
  if (!known_verb) {
    std::cerr << "usage: burstq_cli harness <run|list|report> "
                 "[--scenario FILE | --dir DIR] [--out DIR] [options]\n";
    return 1;
  }
  if (!args.parse(argc - 1, argv + 1)) {
    std::cerr << args.error() << "\n\n" << args.usage();
    return 1;
  }

  if (verb == "list") {
    if (args.flag("catalog")) {
      std::cout << "name,description\n";
      for (const auto& info : harness::invariant_catalog())
        std::cout << info.name << "," << csv_escape(info.description)
                  << "\n";
      return 0;
    }
    const auto files = harness_inputs(args, "scenario", ".scn");
    if (files.empty()) {
      std::cerr << "nothing to list: pass --scenario FILE or --dir DIR "
                   "(or --catalog)\n";
      return 1;
    }
    std::cout << "name,slots,vms,pms,strategy,phases,faults,invariants,"
                 "file\n";
    for (const auto& file : files) {
      const harness::Scenario sc = harness::parse_scenario_file(file);
      std::cout << sc.name << "," << sc.slots << "," << sc.n_vms << ","
                << sc.n_pms << "," << sc.strategy << "," << sc.phases.size()
                << "," << sc.faults.scripted.size() << ","
                << sc.invariants.size() << "," << csv_escape(file) << "\n";
    }
    return 0;
  }

  if (verb == "report") {
    const auto files = harness_inputs(args, "report", ".report.json");
    if (files.empty()) {
      std::cerr << "nothing to report: pass --report FILE or --dir DIR\n";
      return 1;
    }
    bool any_fail = false;
    bool any_abort = false;
    for (const auto& file : files) {
      const harness::ScenarioReport rep = harness::load_report(file);
      print_report_summary(rep);
      if (rep.status == "abort") any_abort = true;
      if (!rep.all_pass() && rep.status != "abort") any_fail = true;
    }
    return any_abort ? 1 : any_fail ? 3 : 0;
  }

  // run
  const auto files = harness_inputs(args, "scenario", ".scn");
  if (files.empty()) {
    std::cerr << "nothing to run: pass --scenario FILE or --dir DIR\n";
    return 1;
  }
  harness::HarnessOptions opt;
  opt.out_dir = args.get("out");
  const std::string tf = args.get("trace-format");
  if (tf == "btrc") {
    opt.trace_format = obs::EventFormat::kBinary;
  } else if (tf == "jsonl") {
    opt.trace_format = obs::EventFormat::kJsonl;
  } else {
    throw InvalidArgument("unknown --trace-format '" + tf +
                          "' (jsonl | btrc)");
  }
  opt.compress = args.flag("compress");
  if (!std::filesystem::is_directory(opt.out_dir))
    throw InvalidArgument("--out " + opt.out_dir +
                          " is not a directory (create it first)");
  bool any_fail = false;
  bool any_abort = false;
  for (const auto& file : files) {
    const harness::Scenario sc = harness::parse_scenario_file(file);
    const harness::RunSummary run = harness::run_scenario(sc, opt);
    print_report_summary(run.report);
    std::cerr << "report: " << run.report_path << "\n";
    if (run.report.status == "abort") {
      any_abort = true;
    } else if (!run.report.all_pass()) {
      any_fail = true;
    }
  }
  return any_abort ? 1 : any_fail ? 3 : 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage_all();
  const std::string sub = argv[1];
  try {
    if (sub == "place") return cmd_place(argc - 1, argv + 1);
    if (sub == "analyze") return cmd_analyze(argc - 1, argv + 1);
    if (sub == "fit") return cmd_fit(argc - 1, argv + 1);
    if (sub == "replay") return cmd_replay(argc - 1, argv + 1);
    if (sub == "sim") return cmd_sim(argc - 1, argv + 1);
    if (sub == "trace") return cmd_trace(argc - 1, argv + 1);
    if (sub == "slo") return cmd_slo(argc - 1, argv + 1);
    if (sub == "harness") return cmd_harness(argc - 1, argv + 1);
    if (sub == "state") return cmd_state(argc - 1, argv + 1);
  } catch (const InvalidArgument& e) {
    // Finalize any open event sink so an aborted command never leaves a
    // truncated trace behind (the BTRC writer buffers partial blocks).
    obs::events().close();
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    obs::events().close();
    std::cerr << "internal error: " << e.what() << "\n";
    return 1;
  }
  return usage_all();
}
