// Multi-dimensional packing — the Section IV-E extension: VMs demanding
// CPU *and* memory, consolidated with per-dimension queuing reservation,
// versus the "correlated dimensions" shortcut that projects everything
// onto one dimension and reuses the full Algorithm 2.

#include <iostream>

#include "common/table.h"
#include "placement/multidim.h"
#include "placement/queuing_ffd.h"

int main() {
  using namespace burstq;

  // 2-D fleet: dimension 0 = CPU shares, dimension 1 = memory units.
  // CPU and memory demands are drawn independently (uncorrelated), which
  // is the case where the paper says the per-dimension algorithm with
  // plain First Fit is required.
  Rng rng(404);
  MultiProblemInstance inst;
  for (int i = 0; i < 200; ++i) {
    MultiVmSpec v;
    v.onoff = OnOffParams{0.01, 0.09};
    v.dims = 2;
    v.rb = {rng.uniform(2, 12), rng.uniform(2, 12)};
    v.re = {rng.uniform(2, 12), rng.uniform(2, 12)};
    inst.vms.push_back(v);
  }
  for (int j = 0; j < 200; ++j) {
    MultiPmSpec p;
    p.dims = 2;
    p.capacity = {90.0, 90.0};
    inst.pms.push_back(p);
  }

  // Path 1: per-dimension reservation + First Fit.
  const auto multi = multidim_queuing_first_fit(inst);

  // Path 2: pretend the dimensions are correlated, project with equal
  // weights, run the full 1-D Algorithm 2.  (Unsound for uncorrelated
  // loads — a VM can fit the weighted sum yet overflow one dimension —
  // but a useful upper bound on packing density.)
  const auto projected = project_correlated(inst, {0.5, 0.5});
  const auto flat = queuing_ffd(projected);

  ConsoleTable table({"approach", "PMs used", "unplaced", "sound per-dim?"});
  table.add_row({"per-dimension queue + First Fit",
                 std::to_string(multi.pms_used),
                 std::to_string(multi.unplaced.size()), "yes"});
  table.add_row({"projected 1-D (equal weights) + Alg. 2",
                 std::to_string(flat.result.pms_used()),
                 std::to_string(flat.result.unplaced.size()),
                 "only if dims correlated"});
  table.print(std::cout);

  // Show a per-PM view of the 2-D reservation for the first few PMs.
  const MapCalTable mapping(16, OnOffParams{0.01, 0.09}, 0.01);
  std::cout << "\nper-PM reservation (first 5 used PMs):\n";
  std::size_t shown = 0;
  for (std::size_t j = 0; j < inst.pms.size() && shown < 5; ++j) {
    std::vector<const MultiVmSpec*> hosted;
    for (std::size_t i = 0; i < inst.vms.size(); ++i)
      if (multi.pm_of[i] == j) hosted.push_back(&inst.vms[i]);
    if (hosted.empty()) continue;
    ++shown;
    const auto blocks = mapping.blocks(hosted.size());
    double max_cpu = 0;
    double max_mem = 0;
    for (auto* v : hosted) {
      max_cpu = std::max(max_cpu, v->re[0]);
      max_mem = std::max(max_mem, v->re[1]);
    }
    std::cout << "  PM " << j << ": " << hosted.size() << " VMs, "
              << blocks << " blocks -> reserve (cpu "
              << ConsoleTable::num(max_cpu * static_cast<double>(blocks), 1)
              << ", mem "
              << ConsoleTable::num(max_mem * static_cast<double>(blocks), 1)
              << ")\n";
  }
  return 0;
}
