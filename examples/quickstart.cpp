// Quickstart — consolidate a small fleet of bursty VMs and inspect the
// reservation the queuing model computes.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~60 lines: describe VMs and PMs,
// run Algorithm 2 (QueuingFFD), compare against peak provisioning, and
// validate the placement in simulation.

#include <iostream>

#include "core/consolidator.h"

int main() {
  using namespace burstq;

  // 1. Describe the workload: 24 web-server VMs, each needing 8 units
  //    normally and 8 more during a traffic spike.  Spikes start with
  //    probability 0.01 per 30s slot and end with probability 0.09
  //    (i.e. they are rare and last ~5 minutes).
  ProblemInstance inst;
  for (int i = 0; i < 24; ++i)
    inst.vms.push_back(VmSpec{OnOffParams{0.01, 0.09}, 8.0, 8.0});
  for (int j = 0; j < 24; ++j) inst.pms.push_back(PmSpec{96.0});

  // 2. Consolidate: bound each PM's capacity-violation ratio by 1%.
  QueuingFfdOptions options;
  options.rho = 0.01;
  const Consolidator consolidator(options);

  const auto queue = consolidator.place(inst, Strategy::kQueue);
  const auto peak = consolidator.place(inst, Strategy::kPeak);

  std::cout << "QUEUE (burstiness-aware) uses " << queue.pms_used()
            << " PMs; provisioning for peak uses " << peak.pms_used()
            << " PMs.\n";

  // 3. Inspect the reservation: how many spike blocks does each PM hold?
  const auto analysis = consolidator.analyze(inst, queue.placement);
  for (const auto& pm : analysis.pms) {
    std::cout << "  PM " << pm.pm << ": " << pm.vms << " VMs, "
              << pm.blocks << " spike blocks of size " << pm.block_size
              << " (analytic CVR bound " << pm.cvr_bound << ")\n";
  }

  // 4. Validate in simulation: 10000 slots of ON-OFF demand, no
  //    migration; the realized CVR must respect the rho = 1% budget.
  SimConfig sim;
  sim.slots = 10000;
  sim.enable_migration = false;
  const auto report = consolidator.simulate(inst, queue.placement, sim, 1);
  std::cout << "simulated mean CVR: " << report.mean_cvr
            << "  (budget rho = " << options.rho << ")\n";
  std::cout << "simulated max CVR per PM: " << report.max_cvr << "\n";
  return 0;
}
