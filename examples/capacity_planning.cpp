// Capacity planning — answer the operator's forward-looking questions
// with the analytic machinery (no simulation needed):
//
//   * how many PMs will a projected fleet need at each CVR budget?
//   * how much headroom does one PM need for k tenants (mapping table)?
//   * how long after consolidation until a PM first overflows, and how
//     long between overflow episodes?
//   * how quickly does the aggregate settle into steady state?

#include <iostream>

#include "common/table.h"
#include "core/consolidator.h"
#include "core/scenario.h"
#include "markov/burstiness.h"
#include "markov/transient.h"
#include "placement/queuing_ffd.h"
#include "queuing/geom_queue.h"

int main() {
  using namespace burstq;

  const OnOffParams params = paper_onoff_params();
  std::cout << "Workload class: p_on = " << params.p_on
            << ", p_off = " << params.p_off
            << "  (q = " << params.stationary_on_probability()
            << ", mean spike = " << params.expected_spike_duration()
            << " slots, ACF decay r = " << correlation_decay(params)
            << ")\n\n";

  // --- Per-PM reservation as a function of tenants and budget ---------
  ConsoleTable blocks({"k tenants", "K @ rho=0.1%", "K @ rho=1%",
                       "K @ rho=5%", "E[slots to 1st overflow] @ rho=1%",
                       "E[slots between overflows]"});
  for (std::size_t k : {4u, 8u, 12u, 16u}) {
    const std::size_t k_tight = map_cal_blocks(k, params, 0.001);
    const std::size_t k_mid = map_cal_blocks(k, params, 0.01);
    const std::size_t k_loose = map_cal_blocks(k, params, 0.05);
    const double first = k_mid < k
                             ? expected_slots_to_overflow(k, params, k_mid)
                             : -1.0;
    const double between =
        k_mid < k ? mean_slots_between_overflows(k, params, k_mid) : -1.0;
    blocks.add_row({std::to_string(k), std::to_string(k_tight),
                    std::to_string(k_mid), std::to_string(k_loose),
                    first < 0 ? "never" : ConsoleTable::num(first, 0),
                    between < 0 ? "never" : ConsoleTable::num(between, 0)});
  }
  blocks.set_title("Spike blocks K per PM (and overflow timing at rho=1%)");
  blocks.print(std::cout);

  // --- Fleet sizing across CVR budgets --------------------------------
  std::cout << "\n";
  Rng rng(2027);
  const auto fleet =
      pattern_instance(SpikePattern::kEqual, 500, 500, params, rng);
  ConsoleTable sizing({"rho", "PMs needed", "vs peak provisioning"});
  // Peak packing as the reference fleet size.
  const std::size_t rp_pms =
      Consolidator{}.place(fleet, Strategy::kPeak).pms_used();
  for (const double rho : {0.001, 0.01, 0.05, 0.1}) {
    QueuingFfdOptions opt;
    opt.rho = rho;
    const auto placed = queuing_ffd(fleet, opt);
    const double saving =
        1.0 - static_cast<double>(placed.result.pms_used()) /
                  static_cast<double>(rp_pms);
    sizing.add_row({ConsoleTable::num(rho, 3),
                    std::to_string(placed.result.pms_used()),
                    std::string("-").append(ConsoleTable::percent(saving))});
  }
  sizing.set_title("Fleet sizing for 500 VMs (peak packing needs " +
                   std::to_string(rp_pms) + " PMs)");
  sizing.print(std::cout);

  // --- Settling time ---------------------------------------------------
  std::cout << "\nafter (re)consolidation the aggregate ON-count settles "
               "to within 0.1% of steady state in "
            << mixing_slots(16, params, 1e-3)
            << " slots (k = 16 tenants).\n";
  return 0;
}
