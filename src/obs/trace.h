// BTRC — the binary columnar flight-recorder format.
//
// The JSONL/CSV event sinks (obs/event_log.h) spend most of their bytes
// repeating key names and most of their read time in strtod; at
// million-VM, multi-simulated-day scale the recorder becomes the I/O
// bottleneck.  BTRC stores the same event stream columnar: events are
// grouped by kind inside fixed-size blocks, each field becomes a typed
// column (delta+varint integers, bit-packed bools, raw IEEE-754 doubles,
// per-block dictionaries for repeated strings), and a run-length order
// stream preserves the exact global event interleaving so a BTRC trace
// replays bit-identically to the JSONL recording of the same run.
//
// The schema is self-describing: kind and column names travel in schema
// blocks ahead of the first data block that uses them, so any BTRC file
// is inspectable without out-of-band knowledge (`burstq_cli trace
// header|head|tail|tocsv`).  Every block carries a CRC-32; a truncated
// or corrupted file fails loudly with the offset of the last valid
// block.  Optional per-block LZ compression sits behind a flag that is
// safe to flip run-to-run — readers auto-detect per block.
//
// On-disk layout: docs/TRACE_FORMAT.md.  This header compiles (and the
// reader works) in -DBURSTQ_NO_OBS builds too — the kill switch strips
// instrumentation macros, not the replay tooling.

#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event_log.h"
#include "obs/jsonl.h"

namespace burstq::obs {

inline constexpr std::string_view kTraceMagic = "BTRC";
inline constexpr std::uint8_t kTraceVersion = 1;

// ---- write side ------------------------------------------------------

struct TraceWriteOptions {
  /// LZ-compress blocks when it shrinks them.  Off by default (the
  /// columnar encodings already carry the size win); safe to flip at any
  /// time — the reader auto-detects per block.
  bool compress{false};
  /// Flush a block once it buffers this many events ...
  std::size_t block_events{8192};
  /// ... or roughly this many payload bytes, whichever comes first.
  std::size_t block_bytes{1u << 20};
};

/// Streams events into a BTRC file.  Not thread-safe — EventLog
/// serializes access under its own mutex.  Deterministic: the same event
/// sequence yields a byte-identical file.
class TraceWriter {
 public:
  /// Opens `path` (truncating) and writes the file header.  Throws
  /// InvalidArgument when the file cannot be opened.
  explicit TraceWriter(const std::string& path, TraceWriteOptions opts = {});

  /// Tag type selecting the resume constructor below.
  struct ResumeTag {};
  static constexpr ResumeTag kResume{};

  /// Reopens an existing BTRC file for appending.  The file must end on
  /// a block boundary (flush() guarantees one; the durable layer rewinds
  /// by truncating to a checkpointed boundary).  The file is rescanned to
  /// rebuild the announced schema and running totals, so appended blocks
  /// reference kind/column ids consistently and the resumed byte stream
  /// is identical to one written without the interruption.
  TraceWriter(const std::string& path, TraceWriteOptions opts, ResumeTag);

  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(std::string_view kind, std::initializer_list<Field> fields);
  void append(std::string_view kind, const std::vector<Field>& fields);

  /// Writes the buffered partial block (if any) so the on-disk file is
  /// complete up to the last appended event.
  void flush();
  void close();

  /// Closes the output stream WITHOUT flushing buffered rows — used when
  /// the buffered tail is being deliberately discarded (durable rewind
  /// truncates the file right after).
  void abandon();

  [[nodiscard]] const TraceWriteOptions& options() const { return opts_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] std::uint64_t events_written() const { return events_; }
  [[nodiscard]] std::uint64_t blocks_flushed() const { return blocks_; }

 private:
  struct ColumnBuf;
  struct KindBuf;

  void append_fields(std::string_view kind, const Field* data,
                     std::size_t count);
  void flush_block();
  void write_block(std::uint8_t type, const std::string& payload);

  std::ofstream out_;
  std::string path_;
  TraceWriteOptions opts_;
  std::vector<KindBuf> kinds_;                     // by kind id
  std::vector<std::pair<std::uint32_t, std::uint64_t>> order_;  // RLE runs
  std::size_t buffered_events_{0};
  std::size_t buffered_bytes_{0};
  std::uint64_t bytes_{0};
  std::uint64_t events_{0};
  std::uint64_t blocks_{0};
};

// ---- read side -------------------------------------------------------

struct TraceColumnInfo {
  std::string name;
  Field::Tag type{Field::Tag::kInt};
  [[nodiscard]] std::string_view type_name() const;
};

struct TraceKindInfo {
  std::uint32_t id{0};
  std::string name;
  std::vector<TraceColumnInfo> columns;
  std::uint64_t rows{0};  ///< rows seen in the blocks scanned so far
};

struct TraceFileInfo {
  std::uint8_t version{0};
  bool compressed{false};   ///< any scanned block was stored compressed
  std::uint64_t events{0};  ///< events in the blocks scanned so far
  std::uint64_t data_blocks{0};
  std::uint64_t schema_blocks{0};
  std::vector<TraceKindInfo> kinds;  // kind-id order
};

/// Streaming BTRC reader: one data block of events per pull, so `head`
/// stops early and `tail` holds only a bounded window.  Throws
/// InvalidArgument on a bad magic/version, on a CRC mismatch, and on
/// truncation — the message names the offset where the last valid block
/// ends.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  /// Appends the next data block's events to `out` (intervening schema
  /// blocks are absorbed silently).  Returns false on clean end of file.
  /// When `decode` is false the block is integrity-checked and counted
  /// in info() but its columns are not materialized (fast header scans).
  bool next_block(std::vector<RecordedEvent>& out, bool decode = true);

  /// Schema and counts accumulated over the blocks read so far.
  [[nodiscard]] const TraceFileInfo& info() const { return info_; }

  /// File offset one past the last successfully validated block.
  [[nodiscard]] std::uint64_t valid_offset() const { return valid_offset_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::ifstream in_;
  std::string path_;
  TraceFileInfo info_;
  std::uint64_t offset_{0};        // bytes consumed so far
  std::uint64_t valid_offset_{0};  // end of the last validated block
};

/// Reads a whole BTRC file.  Throws like TraceReader.
std::vector<RecordedEvent> read_events_btrc(const std::string& path);

/// Scans every block (integrity check + schema + counts) without
/// materializing events.  Throws like TraceReader.
TraceFileInfo read_trace_info(const std::string& path);

// ---- format dispatch -------------------------------------------------

/// Sniffs the on-disk format from content, not extension: the BTRC magic,
/// the long-CSV header line, else JSONL.  Throws InvalidArgument when the
/// file cannot be opened.
EventFormat sniff_event_format(const std::string& path);

/// Reads a recorded event stream in whatever format the file actually is
/// (JSONL, long CSV, or BTRC).  CSV events come back string-typed — see
/// read_events_csv.  `format`, when non-null, receives the sniffed
/// format.
std::vector<RecordedEvent> read_events_auto(const std::string& path,
                                            EventFormat* format = nullptr);

/// Resolves a trace pointer (as emitted in harness invariant reports):
/// reads up to `max_events` events starting at byte `offset` of the
/// trace.  For BTRC files the offset must be a block boundary — the
/// start of a schema or data block, i.e. a value TraceReader reports as
/// valid_offset(); for JSONL it must be the start of a line.  Throws
/// InvalidArgument when the offset lands mid-block/mid-line, points past
/// the end of the file, or the file is a long-CSV event log (which has
/// no stable per-event offsets).
std::vector<RecordedEvent> read_events_at_offset(const std::string& path,
                                                 std::uint64_t offset,
                                                 std::size_t max_events);

}  // namespace burstq::obs
