// Structured event log — the write side of the flight recorder.
//
// Events are append-only records (a kind plus flat key/value fields)
// streamed to one file as JSONL (one JSON object per line, the replayable
// format) or CSV (long format: id,kind,key,value — one row per field).
// Emission is gated twice: a cheap atomic level check first (so a closed
// or coarse log costs one relaxed load per call site), then a mutex only
// when a line is actually written.  Events carry no wall-clock
// timestamps: a recorded run replays deterministically and diffs cleanly
// across machines; wall time lives in the metrics registry instead.

#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace burstq::obs {

class Counter;
class TraceWriter;

/// How much a sink records.  kDecisions captures scheduling outcomes
/// (placements, MapCal results, migrations); kDetail additionally records
/// per-slot observations — everything replay needs to re-derive CVR.
enum class EventLevel : int { kOff = 0, kDecisions = 1, kDetail = 2 };

/// kJsonl and kCsv are the text sinks; kBinary is the BTRC columnar
/// flight-recorder format (obs/trace.h) — same event stream, ~5x smaller
/// and an order of magnitude faster to read back.
enum class EventFormat { kJsonl, kCsv, kBinary };

/// Canonical short name for a sink format: "jsonl" | "csv" | "btrc".
std::string_view format_name(EventFormat format) noexcept;

/// Picks the sink format from a path's extension: `.btrc` -> kBinary,
/// `.csv` -> kCsv, anything else -> kJsonl.
EventFormat event_format_from_path(std::string_view path) noexcept;

/// Parses "off" | "decisions" | "detail" (or "0" | "1" | "2");
/// throws InvalidArgument otherwise.
EventLevel parse_event_level(std::string_view text);

/// One key/value pair of an event.  Implicitly constructible from the
/// field types instrumentation uses so call sites can write
/// {"slot", t}, {"rho", 0.01}, {"ok", true}, {"label", name}.
struct Field {
  enum class Tag { kInt, kUint, kDouble, kBool, kString };

  std::string_view key;
  Tag tag{Tag::kInt};
  long long i{0};
  unsigned long long u{0};
  double d{0.0};
  bool b{false};
  std::string_view s{};

  template <typename T>
    requires(std::is_integral_v<T> && std::is_signed_v<T> &&
             !std::is_same_v<T, bool>)
  Field(std::string_view k, T v)
      : key(k), tag(Tag::kInt), i(static_cast<long long>(v)) {}

  template <typename T>
    requires(std::is_integral_v<T> && std::is_unsigned_v<T> &&
             !std::is_same_v<T, bool>)
  Field(std::string_view k, T v)
      : key(k), tag(Tag::kUint), u(static_cast<unsigned long long>(v)) {}

  Field(std::string_view k, bool v) : key(k), tag(Tag::kBool), b(v) {}
  Field(std::string_view k, double v) : key(k), tag(Tag::kDouble), d(v) {}
  Field(std::string_view k, std::string_view v)
      : key(k), tag(Tag::kString), s(v) {}
  Field(std::string_view k, const char* v)
      : key(k), tag(Tag::kString), s(v) {}
};

/// Append-only structured event sink.  Thread-safe.
class EventLog {
 public:
  // Both out of line: TraceWriter is incomplete here, and the defaulted
  // constructor needs the member unique_ptr's deleter for cleanup paths.
  EventLog();
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens `path` for writing (truncating) and starts accepting events at
  /// or below `level`.  Throws InvalidArgument when the file cannot be
  /// opened.  Reopening closes the previous sink.  `compress` enables
  /// per-block LZ compression and only applies to kBinary.
  void open(const std::string& path, EventFormat format,
            EventLevel level = EventLevel::kDetail, bool compress = false);

  /// Flushes and stops accepting events.
  void close();

  void flush();

  /// True when an event of `level` would be recorded.  One relaxed load.
  [[nodiscard]] bool enabled(EventLevel level) const noexcept {
    return level_.load(std::memory_order_relaxed) >= static_cast<int>(level);
  }

  /// Appends one event; no-op unless enabled(level).
  void emit(EventLevel level, std::string_view kind,
            std::initializer_list<Field> fields);

  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }

  /// Free-form tag recorded into subsequent `sim.config` events so a
  /// multi-run log (e.g. fig6's pattern x strategy grid) stays
  /// segmentable.  Empty by default.
  void set_run_label(std::string label);
  [[nodiscard]] std::string run_label() const;

  /// Short name of the most recently opened sink format ("jsonl", "csv",
  /// "btrc"), or "none" before the first open.  Sticky across close() so
  /// post-run artifact writers (bench obs summaries) can label output.
  [[nodiscard]] std::string sink_format_name() const;

  /// fsync() the sink file on every flush()/close() (the --obs-fsync
  /// knob): flight-recorder traces get the same power-loss durability
  /// as the WAL.  Takes effect at the next flush; counted as
  /// `obs.trace.fsyncs`.
  void set_fsync(bool on);

  /// A durable rewind point in the open sink: everything the log has
  /// flushed so far.  Captured by checkpoint() (which flushes first, so
  /// `bytes` is a clean boundary — for BTRC, a block boundary), consumed
  /// by rewind().
  struct Checkpoint {
    bool valid{false};  ///< false when no sink was open — rewind no-ops
    EventFormat format{EventFormat::kJsonl};
    std::string path;
    std::uint64_t bytes{0};
    std::uint64_t events{0};
    std::uint64_t blocks{0};   ///< BTRC only
    std::uint64_t next_id{0};  ///< CSV only
  };

  [[nodiscard]] Checkpoint checkpoint();

  /// Truncates the open sink back to `cp`: events emitted after the
  /// checkpoint vanish from the file, and subsequent emits append as if
  /// they never happened.  This is how a durable restore discards the
  /// killed run's partial tail while keeping one continuous, eventually
  /// byte-identical trace.  No-op when `cp.valid` is false; requires the
  /// same sink (path and format) to still be open otherwise.
  void rewind(const Checkpoint& cp);

 private:
  void sync_trace_counters_locked();
  void fsync_locked();

  mutable std::mutex mu_;
  std::ofstream out_;
  std::unique_ptr<TraceWriter> writer_;  // the kBinary sink
  EventFormat format_{EventFormat::kJsonl};
  std::atomic<int> level_{static_cast<int>(EventLevel::kOff)};
  std::atomic<std::uint64_t> written_{0};
  std::uint64_t next_id_{0};
  std::string run_label_;
  std::string path_;
  std::string sink_format_name_{"none"};
  bool fsync_{false};
  std::uint64_t fsyncs_{0};
  // Recorder self-metrics (obs.trace.*) for the current sink, plus the
  // last writer totals already mirrored into them.
  Counter* bytes_counter_{nullptr};
  Counter* events_counter_{nullptr};
  Counter* blocks_counter_{nullptr};
  std::uint64_t synced_bytes_{0};
  std::uint64_t synced_blocks_{0};
};

/// Process-wide event log used by the BURSTQ_EVENT macro.
EventLog& events();

/// Escapes a string for inclusion in a JSON string literal (no quotes
/// added).  Exposed for tests.
std::string json_escape(std::string_view s);

}  // namespace burstq::obs
