// burstq observability — umbrella header and instrumentation macros.
//
//   BURSTQ_SPAN("mapcal.solve");          // RAII wall timer, nests
//   BURSTQ_COUNT("placement.fit_checks", n);
//   BURSTQ_GAUGE("sim.active_pms", v);
//   BURSTQ_HIST("mapcal.k", k);
//   BURSTQ_EVENT(obs::EventLevel::kDecisions, "migration",
//                {"slot", t}, {"vm", vm}, {"ok", true});
//
// Span/metric names are dot-separated, lower-case, layer-first
// ("layer.operation[.unit]") — see docs/OBSERVABILITY.md for the
// conventions and the registered-name inventory.
//
// Compiling with -DBURSTQ_NO_OBS (CMake: -DBURSTQ_NO_OBS=ON) turns every
// macro into `((void)0)`: arguments are not evaluated, no statics are
// emitted, and instrumented call sites cost literally nothing.  The obs
// library itself still builds — direct uses of the registry/event-log
// classes (summaries, replay tooling, tests) keep working; they simply
// observe an empty registry.

#pragma once

#include "obs/event_log.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace burstq::obs {

/// True in instrumented builds; false under -DBURSTQ_NO_OBS.  Lets code
/// skip work that only feeds the obs layer (e.g. building per-slot
/// violation lists for the flight recorder) without preprocessor noise.
#ifndef BURSTQ_NO_OBS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

}  // namespace burstq::obs

#define BURSTQ_OBS_CONCAT_INNER(a, b) a##b
#define BURSTQ_OBS_CONCAT(a, b) BURSTQ_OBS_CONCAT_INNER(a, b)

#ifndef BURSTQ_NO_OBS

/// Times the enclosing scope under `name`.  One per scope (per line).
/// Named spans also emit sampled span.begin/span.end events when
/// obs::set_span_events enabled them (off by default).
#define BURSTQ_SPAN(name)                                                  \
  static ::burstq::obs::SpanStat& BURSTQ_OBS_CONCAT(burstq_span_stat_,     \
                                                    __LINE__) =            \
      ::burstq::obs::metrics().span(name);                                 \
  const ::burstq::obs::ScopedSpan BURSTQ_OBS_CONCAT(                       \
      burstq_span_guard_, __LINE__)(BURSTQ_OBS_CONCAT(burstq_span_stat_,   \
                                                      __LINE__),           \
                                    name)

/// Adds `n` to the counter `name`.
#define BURSTQ_COUNT(name, n)                                             \
  do {                                                                    \
    static ::burstq::obs::Counter& burstq_counter_ =                      \
        ::burstq::obs::metrics().counter(name);                           \
    burstq_counter_.add(static_cast<std::uint64_t>(n));                   \
  } while (false)

/// Sets the gauge `name` to `v`.
#define BURSTQ_GAUGE(name, v)                                             \
  do {                                                                    \
    static ::burstq::obs::Gauge& burstq_gauge_ =                          \
        ::burstq::obs::metrics().gauge(name);                             \
    burstq_gauge_.set(static_cast<double>(v));                            \
  } while (false)

/// Records `v` into the histogram `name`.
#define BURSTQ_HIST(name, v)                                              \
  do {                                                                    \
    static ::burstq::obs::Histogram& burstq_hist_ =                       \
        ::burstq::obs::metrics().histogram(name);                         \
    burstq_hist_.record(static_cast<std::uint64_t>(v));                   \
  } while (false)

/// Emits a structured event; fields are evaluated only when a sink is
/// open at `level` or finer.
#define BURSTQ_EVENT(level, kind, ...)                                    \
  do {                                                                    \
    if (::burstq::obs::events().enabled(level))                           \
      ::burstq::obs::events().emit(level, kind, {__VA_ARGS__});           \
  } while (false)

#else  // BURSTQ_NO_OBS

// The value operand is consumed via sizeof — an unevaluated context — so
// locals that exist only to feed a metric don't warn, yet no code is
// generated for them.
#define BURSTQ_SPAN(name) ((void)0)
#define BURSTQ_COUNT(name, n) ((void)sizeof(n))
#define BURSTQ_GAUGE(name, v) ((void)sizeof(v))
#define BURSTQ_HIST(name, v) ((void)sizeof(v))
#define BURSTQ_EVENT(...) ((void)0)

#endif  // BURSTQ_NO_OBS
