#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace burstq::obs {

namespace detail {

std::size_t shard_index() noexcept {
  // One hash per thread, cached; consecutive thread creations spread over
  // shards well enough for the transient pools parallel_for spawns.
  static thread_local const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricShards;
  return idx;
}

namespace {

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur > v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() noexcept {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const auto width = static_cast<std::size_t>(std::bit_width(v));
  return std::min(width, kHistogramBuckets - 1);
}

void Histogram::record(std::uint64_t v) noexcept {
  Shard& s = shards_[detail::shard_index()];
  s.buckets[sketch_bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  detail::atomic_min(s.min, v);
  detail::atomic_max(s.max, v);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot out;
  std::uint64_t mn = UINT64_MAX;
  for (const auto& s : shards_) {
    out.sum += s.sum.load(std::memory_order_relaxed);
    mn = std::min(mn, s.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kSketchBuckets; ++b)
      out.sketch.counts[b] += s.buckets[b].load(std::memory_order_relaxed);
  }
  // Count derived from the merged buckets, never a separate cell, so a
  // mid-record scrape can't see sum(buckets) != count (the validator
  // checks exactly this via the +Inf bucket).
  for (const std::uint64_t c : out.sketch.counts) out.count += c;
  out.min = out.count == 0 ? 0 : mn;
  out.sketch.count = out.count;
  out.sketch.min = out.min;
  out.sketch.max = out.max;
  // Derive the coarse log2 view: every fine bucket lies entirely inside
  // one coarse bucket (its values share a bit width), so projecting by
  // the bucket's lower bound is exact.
  for (std::size_t b = 0; b < kSketchBuckets; ++b)
    out.buckets[bucket_of(sketch_bucket_lower(b))] += out.sketch.counts[b];
  return out;
}

void Histogram::reset() noexcept {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(UINT64_MAX, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

void SpanStat::record(std::uint64_t wall_ns, std::uint64_t self_ns) noexcept {
  Shard& s = shards_[detail::shard_index()];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  s.total_ns.fetch_add(wall_ns, std::memory_order_relaxed);
  s.self_ns.fetch_add(self_ns, std::memory_order_relaxed);
  detail::atomic_max(s.max_ns, wall_ns);
}

std::uint64_t SpanStat::calls() const noexcept {
  std::uint64_t v = 0;
  for (const auto& s : shards_) v += s.calls.load(std::memory_order_relaxed);
  return v;
}

std::uint64_t SpanStat::total_ns() const noexcept {
  std::uint64_t v = 0;
  for (const auto& s : shards_)
    v += s.total_ns.load(std::memory_order_relaxed);
  return v;
}

std::uint64_t SpanStat::self_ns() const noexcept {
  std::uint64_t v = 0;
  for (const auto& s : shards_) v += s.self_ns.load(std::memory_order_relaxed);
  return v;
}

std::uint64_t SpanStat::max_ns() const noexcept {
  std::uint64_t v = 0;
  for (const auto& s : shards_)
    v = std::max(v, s.max_ns.load(std::memory_order_relaxed));
  return v;
}

void SpanStat::reset() noexcept {
  for (auto& s : shards_) {
    s.calls.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    s.self_ns.store(0, std::memory_order_relaxed);
    s.max_ns.store(0, std::memory_order_relaxed);
  }
}

const CounterSample* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const SpanSample* MetricsSnapshot::span(std::string_view name) const {
  for (const auto& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

template <typename T>
T& MetricsRegistry::intern(Map<T>& map, std::string_view name) {
  auto it = map.find(std::string(name));
  if (it == map.end())
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  return intern(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  return intern(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::scoped_lock lock(mu_);
  return intern(histograms_, name);
}

SpanStat& MetricsRegistry::span(std::string_view name) {
  const std::scoped_lock lock(mu_);
  return intern(spans_, name);
}

MetricsSnapshot MetricsRegistry::scrape() const {
  const std::scoped_lock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    snap.histograms.push_back({name, h->snapshot()});
  snap.spans.reserve(spans_.size());
  for (const auto& [name, s] : spans_)
    snap.spans.push_back(
        {name, s->calls(), s->total_ns(), s->self_ns(), s->max_ns()});

  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  std::sort(snap.spans.begin(), snap.spans.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : spans_) s->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never freed
  return *instance;
}

}  // namespace burstq::obs
