#include "obs/prometheus.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace burstq::obs {

namespace {

/// Round-trippable decimal of a double: "%g" when it parses back exactly
/// (gives "0.95", not "0.94999999999999996"), "%.17g" otherwise.
std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool valid_name_char(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':')
    return true;
  return !first && c >= '0' && c <= '9';
}

void append_series(std::string& out, const std::string& name,
                   std::string_view labels, const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

void append_header(std::string& out, const std::string& family,
                   std::string_view type, std::string_view help) {
  out += "# HELP " + family + " ";
  out += help;
  out += '\n';
  out += "# TYPE " + family + " ";
  out += type;
  out += '\n';
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (valid_name_char(c, /*first=*/false) && !(i == 0 && c == ':'))
      out += c;
    else
      out += '_';
  }
  if (out.empty() || !valid_name_char(out.front(), /*first=*/true))
    out.insert(out.begin(), '_');
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snap,
                              const PrometheusOptions& options) {
  std::string out;

  for (const auto& c : snap.counters) {
    const std::string family =
        options.prefix + sanitize_metric_name(c.name) + "_total";
    append_header(out, family, "counter",
                  "burstq counter \"" + c.name + "\"");
    append_series(out, family, "", std::to_string(c.value));
  }

  for (const auto& g : snap.gauges) {
    const std::string family = options.prefix + sanitize_metric_name(g.name);
    append_header(out, family, "gauge", "burstq gauge \"" + g.name + "\"");
    append_series(out, family, "", fmt_double(g.value));
  }

  for (const auto& h : snap.histograms) {
    const std::string family = options.prefix + sanitize_metric_name(h.name);
    append_header(out, family, "histogram",
                  "burstq histogram \"" + h.name + "\"");
    // Cumulative coarse buckets, stopping at the bucket holding max
    // (every later bucket would repeat the total count).
    std::uint64_t cum = 0;
    if (h.hist.count > 0) {
      const std::size_t last = Histogram::bucket_of(h.hist.max);
      for (std::size_t b = 0; b <= last; ++b) {
        cum += h.hist.buckets[b];
        // Upper bound of coarse bucket b: 0 for b == 0, else 2^b - 1.
        const std::uint64_t le =
            b == 0 ? 0 : (b >= 64 ? UINT64_MAX : (std::uint64_t{1} << b) - 1);
        append_series(out, family + "_bucket",
                      "le=\"" + std::to_string(le) + "\"",
                      std::to_string(cum));
      }
    }
    append_series(out, family + "_bucket", "le=\"+Inf\"",
                  std::to_string(h.hist.count));
    append_series(out, family + "_sum", "", std::to_string(h.hist.sum));
    append_series(out, family + "_count", "", std::to_string(h.hist.count));

    if (!options.quantiles.empty()) {
      const std::string qfamily = family + "_quantiles";
      append_header(out, qfamily, "summary",
                    "streaming-sketch quantiles of \"" + h.name + "\"");
      for (const double q : options.quantiles)
        append_series(out, qfamily, "quantile=\"" + fmt_double(q) + "\"",
                      fmt_double(h.hist.quantile(q)));
      append_series(out, qfamily + "_sum", "", std::to_string(h.hist.sum));
      append_series(out, qfamily + "_count", "",
                    std::to_string(h.hist.count));
    }
  }

  for (const auto& s : snap.spans) {
    const std::string base = options.prefix + sanitize_metric_name(s.name);
    append_header(out, base + "_calls_total", "counter",
                  "calls of span \"" + s.name + "\"");
    append_series(out, base + "_calls_total", "", std::to_string(s.calls));
    append_header(out, base + "_wall_seconds_total", "counter",
                  "inclusive wall time of span \"" + s.name + "\"");
    append_series(out, base + "_wall_seconds_total", "",
                  fmt_double(static_cast<double>(s.total_ns) / 1e9));
    append_header(out, base + "_self_seconds_total", "counter",
                  "exclusive wall time of span \"" + s.name + "\"");
    append_series(out, base + "_self_seconds_total", "",
                  fmt_double(static_cast<double>(s.self_ns) / 1e9));
    append_header(out, base + "_max_seconds", "gauge",
                  "longest single call of span \"" + s.name + "\"");
    append_series(out, base + "_max_seconds", "",
                  fmt_double(static_cast<double>(s.max_ns) / 1e9));
  }

  return out;
}

namespace {

struct LineParser {
  std::string_view line;
  std::size_t pos{0};

  [[nodiscard]] bool done() const { return pos >= line.size(); }
  [[nodiscard]] char peek() const { return line[pos]; }
  void skip_spaces() {
    while (!done() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
  /// Consumes a metric/label name; empty result means no valid name.
  std::string_view name() {
    const std::size_t start = pos;
    while (!done() && valid_name_char(peek(), pos == start)) ++pos;
    return line.substr(start, pos - start);
  }
};

/// Parses a sample value ("3.14", "+Inf", "NaN", ...); nullopt on junk.
std::optional<double> parse_value(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string term(text);
  char* end = nullptr;
  const double v = std::strtod(term.c_str(), &end);
  if (end != term.c_str() + term.size()) return std::nullopt;
  return v;
}

struct FamilyState {
  std::string type;          ///< "" until a TYPE line is seen
  bool has_samples{false};
  bool type_after_sample{false};
  std::vector<std::pair<double, double>> le_buckets;  ///< histogram only
  std::optional<double> count_value;
};

/// Family a sample name belongs to, honouring histogram/summary member
/// suffixes (_bucket/_sum/_count map back to their declared family).
std::string family_of(const std::string& sample,
                      const std::map<std::string, FamilyState>& families) {
  for (const std::string_view suffix :
       {"_bucket", "_sum", "_count"}) {
    if (sample.size() > suffix.size() &&
        sample.compare(sample.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      const std::string stem =
          sample.substr(0, sample.size() - suffix.size());
      const auto it = families.find(stem);
      if (it != families.end() && (it->second.type == "histogram" ||
                                   it->second.type == "summary"))
        return stem;
    }
  }
  return sample;
}

}  // namespace

std::optional<std::string> validate_exposition(std::string_view text) {
  if (!text.empty() && text.back() != '\n')
    return "exposition must end with a newline";

  std::map<std::string, FamilyState> families;
  std::size_t line_no = 0;
  std::size_t start = 0;

  const auto fail = [&](const std::string& msg) {
    return "line " + std::to_string(line_no) + ": " + msg;
  };

  while (start < text.size()) {
    ++line_no;
    const std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;

    if (line.front() == '#') {
      LineParser p{line, 1};
      p.skip_spaces();
      const std::size_t kw_start = p.pos;
      while (!p.done() && p.peek() != ' ') ++p.pos;
      const std::string_view kw =
          line.substr(kw_start, p.pos - kw_start);
      if (kw != "HELP" && kw != "TYPE") continue;  // free-form comment
      p.skip_spaces();
      const std::string fam(p.name());
      if (fam.empty()) return fail("missing metric name after # " +
                                   std::string(kw));
      p.skip_spaces();
      if (kw == "TYPE") {
        const std::string_view type = line.substr(p.pos);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped")
          return fail("unknown TYPE \"" + std::string(type) + "\"");
        FamilyState& st = families[fam];
        if (!st.type.empty()) return fail("duplicate TYPE for " + fam);
        if (st.has_samples)
          return fail("TYPE for " + fam + " after its samples");
        st.type = type;
      }
      continue;
    }

    // Sample line: name [{labels}] value [timestamp]
    LineParser p{line, 0};
    const std::string name(p.name());
    if (name.empty()) return fail("invalid metric name");
    std::optional<double> le;
    std::optional<double> quantile;
    if (!p.done() && p.peek() == '{') {
      ++p.pos;
      while (true) {
        p.skip_spaces();
        if (!p.done() && p.peek() == '}') {
          ++p.pos;
          break;
        }
        const std::string label(p.name());
        if (label.empty() || label.find(':') != std::string::npos)
          return fail("invalid label name");
        if (p.done() || p.peek() != '=')
          return fail("expected '=' after label " + label);
        ++p.pos;
        if (p.done() || p.peek() != '"')
          return fail("label value must be quoted");
        ++p.pos;
        std::string value;
        bool closed = false;
        while (!p.done()) {
          const char c = p.peek();
          ++p.pos;
          if (c == '\\') {
            if (p.done()) return fail("dangling escape in label value");
            const char e = p.peek();
            ++p.pos;
            if (e != '\\' && e != '"' && e != 'n')
              return fail("bad escape in label value");
            value += e == 'n' ? '\n' : e;
          } else if (c == '"') {
            closed = true;
            break;
          } else {
            value += c;
          }
        }
        if (!closed) return fail("unterminated label value");
        if (label == "le") le = parse_value(value);
        if (label == "quantile") {
          quantile = parse_value(value);
          if (!quantile || *quantile < 0.0 || *quantile > 1.0)
            return fail("quantile label outside [0,1]");
        }
        p.skip_spaces();
        if (!p.done() && p.peek() == ',') ++p.pos;
      }
    }
    p.skip_spaces();
    const std::size_t val_start = p.pos;
    while (!p.done() && p.peek() != ' ' && p.peek() != '\t') ++p.pos;
    const auto value =
        parse_value(line.substr(val_start, p.pos - val_start));
    if (!value) return fail("unparseable sample value");
    p.skip_spaces();
    if (!p.done()) {  // optional integer timestamp
      const std::size_t ts_start = p.pos;
      while (!p.done() && p.peek() != ' ') ++p.pos;
      const std::string ts(line.substr(ts_start, p.pos - ts_start));
      char* end = nullptr;
      (void)std::strtoll(ts.c_str(), &end, 10);
      if (end != ts.c_str() + ts.size())
        return fail("malformed timestamp");
      p.skip_spaces();
      if (!p.done()) return fail("trailing garbage after timestamp");
    }

    const std::string fam = family_of(name, families);
    FamilyState& st = families[fam];
    st.has_samples = true;
    if (st.type == "histogram" && name == fam + "_bucket") {
      if (!le) return fail("histogram bucket without le label");
      st.le_buckets.emplace_back(*le, *value);
    }
    if ((st.type == "histogram" || st.type == "summary") &&
        name == fam + "_count")
      st.count_value = *value;
    if (st.type == "summary" && name == fam && !quantile)
      return fail("summary sample without quantile label");
  }

  // Cross-line histogram checks.
  for (auto& [fam, st] : families) {
    if (st.type != "histogram" || st.le_buckets.empty()) continue;
    auto buckets = st.le_buckets;
    std::sort(buckets.begin(), buckets.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double prev = -1.0;
    for (const auto& [bound, cum] : buckets) {
      if (cum < prev)
        return "histogram " + fam + ": non-monotone cumulative buckets";
      prev = cum;
    }
    if (!std::isinf(buckets.back().first))
      return "histogram " + fam + ": missing le=\"+Inf\" bucket";
    if (st.count_value && *st.count_value != buckets.back().second)
      return "histogram " + fam + ": _count != +Inf bucket";
  }
  return std::nullopt;
}

}  // namespace burstq::obs
