#include "obs/summary.h"

#include <algorithm>
#include <ostream>

#include "common/csv.h"
#include "common/table.h"

namespace burstq::obs {

namespace {

std::string ms(std::uint64_t ns) {
  return ConsoleTable::num(static_cast<double>(ns) / 1e6, 3);
}

std::string us(double ns) { return ConsoleTable::num(ns / 1e3, 1); }

}  // namespace

void print_summary(std::ostream& os, const MetricsSnapshot& snap,
                   const SummaryOptions& options) {
  os << "\n== " << options.title << " ==\n";
  if (snap.empty()) {
    os << "(no metrics recorded";
#ifdef BURSTQ_NO_OBS
    os << "; built with BURSTQ_NO_OBS";
#endif
    os << ")\n";
    return;
  }

  if (!snap.spans.empty()) {
    auto spans = snap.spans;
    std::sort(spans.begin(), spans.end(),
              [](const SpanSample& a, const SpanSample& b) {
                return a.total_ns > b.total_ns;
              });
    if (spans.size() > options.top_spans) spans.resize(options.top_spans);
    ConsoleTable table(
        {"span", "calls", "total ms", "self ms", "mean us", "max us"});
    for (const auto& s : spans) {
      const double mean_ns =
          s.calls == 0 ? 0.0
                       : static_cast<double>(s.total_ns) /
                             static_cast<double>(s.calls);
      table.add_row({s.name, std::to_string(s.calls), ms(s.total_ns),
                     ms(s.self_ns), us(mean_ns),
                     us(static_cast<double>(s.max_ns))});
    }
    table.set_title("top spans by total time");
    table.print(os);
  }

  if (!snap.counters.empty()) {
    auto counters = snap.counters;
    std::sort(counters.begin(), counters.end(),
              [](const CounterSample& a, const CounterSample& b) {
                return a.value > b.value;
              });
    if (counters.size() > options.top_counters)
      counters.resize(options.top_counters);
    ConsoleTable table({"counter", "value"});
    for (const auto& c : counters)
      table.add_row({c.name, std::to_string(c.value)});
    table.set_title("counters");
    table.print(os);
  }

  if (!snap.gauges.empty()) {
    ConsoleTable table({"gauge", "value"});
    for (const auto& g : snap.gauges)
      table.add_row({g.name, ConsoleTable::num(g.value, 4)});
    table.set_title("gauges");
    table.print(os);
  }

  if (!snap.histograms.empty()) {
    ConsoleTable table(
        {"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& h : snap.histograms)
      table.add_row({h.name, std::to_string(h.hist.count),
                     ConsoleTable::num(h.hist.mean(), 1),
                     ConsoleTable::num(h.hist.quantile(0.5), 0),
                     ConsoleTable::num(h.hist.quantile(0.95), 0),
                     ConsoleTable::num(h.hist.quantile(0.99), 0),
                     std::to_string(h.hist.max)});
    table.set_title("histograms");
    table.print(os);
  }
}

void print_summary(std::ostream& os, const SummaryOptions& options) {
  print_summary(os, metrics().scrape(), options);
}

void write_summary_csv(
    const std::string& path, const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  CsvWriter csv(path);
  csv.row({"type", "name", "value", "calls", "total_ns", "self_ns", "mean",
           "p50", "p95", "p99", "max"});
  for (const auto& [key, value] : meta) {
    csv.begin_row();
    csv.field("meta").field(key).field(value);
    for (int i = 0; i < 8; ++i) csv.field("");
    csv.end_row();
  }
  for (const auto& c : snap.counters) {
    csv.begin_row();
    csv.field("counter").field(c.name).field(static_cast<std::size_t>(
        c.value));
    for (int i = 0; i < 8; ++i) csv.field("");
    csv.end_row();
  }
  for (const auto& g : snap.gauges) {
    csv.begin_row();
    csv.field("gauge").field(g.name).field(g.value);
    for (int i = 0; i < 8; ++i) csv.field("");
    csv.end_row();
  }
  for (const auto& s : snap.spans) {
    csv.begin_row();
    csv.field("span").field(s.name).field("");
    csv.field(static_cast<std::size_t>(s.calls))
        .field(static_cast<std::size_t>(s.total_ns))
        .field(static_cast<std::size_t>(s.self_ns));
    const double mean_ns = s.calls == 0
                               ? 0.0
                               : static_cast<double>(s.total_ns) /
                                     static_cast<double>(s.calls);
    csv.field(mean_ns).field("").field("").field("").field(
        static_cast<std::size_t>(s.max_ns));
    csv.end_row();
  }
  for (const auto& h : snap.histograms) {
    csv.begin_row();
    csv.field("histogram").field(h.name).field("");
    csv.field(static_cast<std::size_t>(h.hist.count)).field("").field("");
    csv.field(h.hist.mean())
        .field(h.hist.quantile(0.5))
        .field(h.hist.quantile(0.95))
        .field(h.hist.quantile(0.99))
        .field(static_cast<std::size_t>(h.hist.max));
    csv.end_row();
  }
  csv.flush();
}

}  // namespace burstq::obs
