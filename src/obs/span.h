// Scoped trace spans: RAII wall-clock timers aggregated per name.
//
// Spans nest: a thread-local stack tracks the active span so each parent
// learns how much of its wall time was spent inside children, giving the
// summary both inclusive (total) and exclusive (self) time per name.
// Prefer the BURSTQ_SPAN("layer.operation") macro in obs/obs.h — it
// resolves the SpanStat once per call site and vanishes entirely under
// -DBURSTQ_NO_OBS.
//
// Span *events*: when sampling is enabled (set_span_events), a named
// span additionally emits `span.begin`/`span.end` records through the
// process event log at EventLevel::kDetail, so offline tooling
// (obs/profile.h, `burstq_cli trace profile|flame`) can reconstruct the
// call tree time-resolved.  Sampling is off by default — the only cost
// on the hot path is one relaxed atomic load per span.  Span ids are
// allocated from one process-wide atomic (never torn, unique within a
// recording session; each set_span_events call restarts the id and
// virtual-clock counters so same-seed recordings are byte-identical
// even within one process); the recorded parent id is the nearest
// *emitted* ancestor on the same thread, so parent links stay
// consistent under any sampling rate.

#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/registry.h"

namespace burstq::obs {

/// Monotonic nanoseconds used by all span timing.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Span-event emission knobs (the --obs-span-sample / --obs-span-clock
/// CLI flags).  See docs/TRACE_FORMAT.md for the recorded schema.
struct SpanEventOptions {
  /// 0 = off (default); N >= 1 = emit one span in N per thread.
  std::uint32_t sample_every{0};
  /// Replace wall-clock t_ns with a process-wide deterministic tick
  /// (one increment per span event).  Same-seed runs then record
  /// byte-identical durations, which is what the profile/explain
  /// byte-identity contract is built on.
  bool virtual_clock{false};
};

/// Installs the process-wide span-event configuration.  Thread-safe;
/// takes effect for spans opened after the call.
void set_span_events(SpanEventOptions opt) noexcept;
[[nodiscard]] SpanEventOptions span_event_options() noexcept;

/// Times the enclosing scope and records into `stat` on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanStat& stat) noexcept;
  /// Named spans (the BURSTQ_SPAN macro) are eligible for span-event
  /// emission; the unnamed overload above never emits.
  ScopedSpan(SpanStat& stat, std::string_view name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Nesting depth of the active span on this thread (0 = none); exposed
  /// for tests.
  [[nodiscard]] static std::size_t active_depth() noexcept;

 private:
  SpanStat* stat_;
  ScopedSpan* parent_;
  std::uint64_t start_ns_;
  std::uint64_t child_ns_{0};
  std::uint64_t event_id_{0};  ///< nonzero when span.begin was emitted
};

}  // namespace burstq::obs
