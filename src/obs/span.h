// Scoped trace spans: RAII wall-clock timers aggregated per name.
//
// Spans nest: a thread-local stack tracks the active span so each parent
// learns how much of its wall time was spent inside children, giving the
// summary both inclusive (total) and exclusive (self) time per name.
// Prefer the BURSTQ_SPAN("layer.operation") macro in obs/obs.h — it
// resolves the SpanStat once per call site and vanishes entirely under
// -DBURSTQ_NO_OBS.

#pragma once

#include <chrono>
#include <cstdint>

#include "obs/registry.h"

namespace burstq::obs {

/// Monotonic nanoseconds used by all span timing.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Times the enclosing scope and records into `stat` on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanStat& stat) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Nesting depth of the active span on this thread (0 = none); exposed
  /// for tests.
  [[nodiscard]] static std::size_t active_depth() noexcept;

 private:
  SpanStat* stat_;
  ScopedSpan* parent_;
  std::uint64_t start_ns_;
  std::uint64_t child_ns_{0};
};

}  // namespace burstq::obs
