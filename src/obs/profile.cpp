#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/error.h"
#include "obs/query.h"

namespace burstq::obs {

namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

std::string i64(std::int64_t v) { return std::to_string(v); }

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic warm color per span name.
std::string flame_color(std::string_view name) {
  const std::uint64_t h = fnv1a(name);
  const unsigned hue = static_cast<unsigned>(h % 50);          // 10..59
  const unsigned sat = static_cast<unsigned>((h >> 8) % 21);   // 70..90
  const unsigned lig = static_cast<unsigned>((h >> 16) % 11);  // 52..62
  char buf[48];
  std::snprintf(buf, sizeof buf, "hsl(%u,%u%%,%u%%)", 10 + hue, 70 + sat,
                52 + lig);
  return buf;
}

struct FlameNode {
  std::map<std::string, FlameNode> kids;  // name asc: deterministic layout
  std::uint64_t self{0};
  std::uint64_t total{0};
};

std::uint64_t fill_totals(FlameNode& node) {
  node.total = node.self;
  for (auto& [name, kid] : node.kids) node.total += fill_totals(kid);
  return node.total;
}

std::size_t tree_depth(const FlameNode& node) {
  std::size_t best = 0;
  for (const auto& [name, kid] : node.kids)
    best = std::max(best, tree_depth(kid));
  return best + 1;
}

}  // namespace

void SpanTreeBuilder::add(const RecordedEvent& ev) {
  ++events_;
  if (ev.kind == "sim.config") {
    cur_slot_ = 0;
    return;
  }
  if (ev.kind == "slot.obs") {
    cur_slot_ = ev.integer("t") + 1;
    return;
  }
  if (ev.kind == "span.begin") {
    ++span_events_;
    const auto id = static_cast<std::uint64_t>(ev.integer("id"));
    if (id == 0) return;
    Frame f;
    f.name = std::string(ev.str("name"));
    f.begin_t = static_cast<std::uint64_t>(ev.integer("t_ns"));
    f.slot = cur_slot_;
    f.parent = static_cast<std::uint64_t>(ev.integer("parent"));
    const auto pit = f.parent != 0 ? open_.find(f.parent) : open_.end();
    f.stack =
        pit != open_.end() ? pit->second.stack + ";" + f.name : f.name;
    open_[id] = std::move(f);
    return;
  }
  if (ev.kind != "span.end") return;
  ++span_events_;
  const auto id = static_cast<std::uint64_t>(ev.integer("id"));
  const auto it = open_.find(id);
  if (it == open_.end()) {
    ++unmatched_ends_;
    return;
  }
  Frame f = std::move(it->second);
  open_.erase(it);
  const auto end_t = static_cast<std::uint64_t>(ev.integer("t_ns"));
  const std::uint64_t incl = end_t > f.begin_t ? end_t - f.begin_t : 0;
  const std::uint64_t excl = incl > f.child_ns ? incl - f.child_ns : 0;
  ++spans_;

  NameAgg& agg = names_[f.name];
  ++agg.calls;
  agg.incl_ns += incl;
  agg.excl_ns += excl;
  agg.max_incl_ns = std::max(agg.max_incl_ns, incl);

  collapsed_[f.stack] += excl;

  const std::string crit = f.best_child_path.empty()
                               ? f.name
                               : f.name + ";" + f.best_child_path;
  SlotProfileRow& row = slots_[f.slot];
  row.slot = f.slot;
  ++row.spans;
  const auto pit = f.parent != 0 ? open_.find(f.parent) : open_.end();
  if (pit != open_.end()) {
    Frame& p = pit->second;
    p.child_ns += incl;
    if (incl > p.best_child_incl) {
      p.best_child_incl = incl;
      p.best_child_path = crit;
    }
  } else {
    row.root_incl_ns += incl;
    if (incl > row.critical_ns ||
        (incl == row.critical_ns && row.critical_path.empty())) {
      row.critical_ns = incl;
      row.critical_path = crit;
    }
  }
  if (hook_) hook_(f.name, f.slot, incl, excl);
}

SpanProfile SpanTreeBuilder::finish() {
  SpanProfile p;
  p.events = events_;
  p.span_events = span_events_;
  p.spans = spans_;
  p.unmatched_ends = unmatched_ends_;
  p.unclosed = open_.size();

  p.by_name.reserve(names_.size());
  for (auto& [name, agg] : names_)
    p.by_name.push_back({name, agg.calls, agg.incl_ns, agg.excl_ns,
                         agg.max_incl_ns});
  std::sort(p.by_name.begin(), p.by_name.end(),
            [](const SpanNameRow& a, const SpanNameRow& b) {
              if (a.excl_ns != b.excl_ns) return a.excl_ns > b.excl_ns;
              return a.name < b.name;
            });

  p.slots.reserve(slots_.size());
  for (auto& [slot, row] : slots_) p.slots.push_back(std::move(row));
  std::sort(p.slots.begin(), p.slots.end(),
            [](const SlotProfileRow& a, const SlotProfileRow& b) {
              return a.slot < b.slot;
            });

  p.collapsed.reserve(collapsed_.size());
  for (auto& [stack, ns] : collapsed_) p.collapsed.push_back({stack, ns});
  std::sort(p.collapsed.begin(), p.collapsed.end(),
            [](const CollapsedStack& a, const CollapsedStack& b) {
              return a.stack < b.stack;
            });

  open_.clear();
  names_.clear();
  slots_.clear();
  collapsed_.clear();
  return p;
}

std::string SpanProfile::render(const SpanProfileOptions& opt) const {
  std::string out;
  out += "profile.schema=burstq.profile/v1\n";
  out += "profile.events=" + u64(events) + "\n";
  out += "profile.span_events=" + u64(span_events) + "\n";
  out += "profile.spans=" + u64(spans) + "\n";
  out += "profile.unmatched_ends=" + u64(unmatched_ends) + "\n";
  out += "profile.unclosed=" + u64(unclosed) + "\n";
  out += "profile.names=" + u64(by_name.size()) + "\n";
  out += "profile.slots=" + u64(slots.size()) + "\n";

  out += "name calls incl_ns excl_ns max_incl_ns\n";
  const std::size_t n_names = std::min(opt.top, by_name.size());
  for (std::size_t i = 0; i < n_names; ++i) {
    const SpanNameRow& r = by_name[i];
    out += r.name + " " + u64(r.calls) + " " + u64(r.incl_ns) + " " +
           u64(r.excl_ns) + " " + u64(r.max_incl_ns) + "\n";
  }
  if (by_name.size() > n_names)
    out += "profile.names_omitted=" + u64(by_name.size() - n_names) + "\n";

  // The slot table caps to the `top` most expensive slots (by summed
  // root inclusive time) but prints them in slot order.
  std::vector<const SlotProfileRow*> picked;
  picked.reserve(slots.size());
  for (const SlotProfileRow& r : slots) picked.push_back(&r);
  if (picked.size() > opt.top) {
    std::sort(picked.begin(), picked.end(),
              [](const SlotProfileRow* a, const SlotProfileRow* b) {
                if (a->root_incl_ns != b->root_incl_ns)
                  return a->root_incl_ns > b->root_incl_ns;
                return a->slot < b->slot;
              });
    picked.resize(opt.top);
    std::sort(picked.begin(), picked.end(),
              [](const SlotProfileRow* a, const SlotProfileRow* b) {
                return a->slot < b->slot;
              });
  }
  out += "slot spans root_incl_ns critical_ns critical_path\n";
  for (const SlotProfileRow* r : picked) {
    out += i64(r->slot) + " " + u64(r->spans) + " " + u64(r->root_incl_ns) +
           " " + u64(r->critical_ns) + " " +
           (r->critical_path.empty() ? "-" : r->critical_path) + "\n";
  }
  if (slots.size() > picked.size())
    out += "profile.slots_omitted=" + u64(slots.size() - picked.size()) +
           "\n";
  return out;
}

std::string SpanProfile::render_collapsed() const {
  std::string out;
  for (const CollapsedStack& s : collapsed)
    out += s.stack + " " + u64(s.self_ns) + "\n";
  return out;
}

SpanProfile profile_trace(const std::string& path) {
  SpanTreeBuilder builder;
  scan_events(path, [&builder](const RecordedEvent& ev, std::uint64_t,
                               std::uint64_t) {
    builder.add(ev);
    return true;
  });
  return builder.finish();
}

namespace {

void emit_flame_boxes(std::string& out, const FlameNode& node,
                      const std::string& name, double x, double width,
                      std::size_t depth, std::uint64_t grand_total) {
  if (width < 0.25) return;
  const double y = 34.0 + static_cast<double>(depth) * 16.0;
  const double share =
      grand_total == 0
          ? 0.0
          : 100.0 * static_cast<double>(node.total) /
                static_cast<double>(grand_total);
  out += "<g><title>" + xml_escape(name) + " (" + u64(node.total) +
         " ns, " + pct(share) + "%)</title>\n";
  out += "<rect x=\"" + pct(x) + "\" y=\"" + pct(y) + "\" width=\"" +
         pct(width) + "\" height=\"15\" rx=\"1\" fill=\"" +
         flame_color(name) + "\"/>\n";
  if (width >= 30.0) {
    const std::size_t max_chars = static_cast<std::size_t>(width / 7.0);
    std::string label = name;
    if (label.size() > max_chars) {
      label.resize(max_chars > 2 ? max_chars - 2 : 0);
      label += "..";
    }
    out += "<text x=\"" + pct(x + 3.0) + "\" y=\"" + pct(y + 11.5) +
           "\" font-size=\"11\" font-family=\"monospace\">" +
           xml_escape(label) + "</text>\n";
  }
  out += "</g>\n";
  if (node.total == 0) return;
  double cx = x;
  for (const auto& [kid_name, kid] : node.kids) {
    const double kw = width * static_cast<double>(kid.total) /
                      static_cast<double>(node.total);
    emit_flame_boxes(out, kid, kid_name, cx, kw, depth + 1, grand_total);
    cx += kw;
  }
}

}  // namespace

std::string render_flame_svg(const std::vector<CollapsedStack>& stacks,
                             const std::string& title) {
  FlameNode root;
  for (const CollapsedStack& s : stacks) {
    FlameNode* node = &root;
    std::size_t pos = 0;
    while (pos <= s.stack.size()) {
      std::size_t sep = s.stack.find(';', pos);
      if (sep == std::string::npos) sep = s.stack.size();
      node = &node->kids[s.stack.substr(pos, sep - pos)];
      pos = sep + 1;
    }
    node->self += s.self_ns;
  }
  fill_totals(root);
  const std::size_t depth = root.kids.empty() ? 1 : tree_depth(root);
  constexpr double kWidth = 1200.0;
  const double height = 34.0 + static_cast<double>(depth + 1) * 16.0 + 8.0;

  std::string out;
  out += "<?xml version=\"1.0\" standalone=\"no\"?>\n";
  out += "<svg version=\"1.1\" width=\"" + pct(kWidth) + "\" height=\"" +
         pct(height) + "\" xmlns=\"http://www.w3.org/2000/svg\">\n";
  out += "<rect x=\"0\" y=\"0\" width=\"" + pct(kWidth) + "\" height=\"" +
         pct(height) + "\" fill=\"#f8f8f8\"/>\n";
  out += "<text x=\"8\" y=\"20\" font-size=\"13\" "
         "font-family=\"monospace\">burstq flame graph: " +
         xml_escape(title) + " (" + u64(root.total) + " ns total)</text>\n";
  emit_flame_boxes(out, root, "all", 0.0, kWidth, 0, root.total);
  out += "</svg>\n";
  return out;
}

}  // namespace burstq::obs
