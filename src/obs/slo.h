// SloTracker — turns the paper's CVR budget into a continuously watched
// service-level objective.  The reservation theory promises CVR <= rho
// per PM (Eq. 16/17); the tracker measures what actually happened, per
// PM and cluster-wide, over two rolling windows:
//
//   fast   — a short window (default 10 slots; 5 minutes of 30 s slots)
//   slow   — a long window  (default 120 slots; 1 hour of 30 s slots)
//
// and computes multi-window *burn rates* (observed CVR / rho).  A breach
// episode starts when BOTH burn rates exceed the threshold — the classic
// fast+slow alerting rule: the slow window proves the problem is real,
// the fast window proves it is still happening — and ends when the fast
// burn recovers.  Gauges `obs.slo.cvr_burn_fast` / `obs.slo.cvr_burn_slow`
// and the `fault.slo.breaches` episode counter are published into the
// metrics registry on every end_slot() (compiled out under
// -DBURSTQ_NO_OBS; the tracker itself keeps working for offline audits).
//
// Unlike CvrTracker, SLO windows are never reset on migration: operators
// measure what tenants experienced, cooldowns notwithstanding.
//
// All public methods are thread-safe: the simulation loop calls
// record()/end_slot() while the telemetry HTTP server calls report().

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace burstq::obs {

struct SloOptions {
  double rho{0.01};             ///< the configured Eq. 16/17 CVR budget
  std::size_t fast_window{10};  ///< slots; 5 min of 30 s slots
  std::size_t slow_window{120};  ///< slots; 1 h of 30 s slots
  double breach_burn{1.0};  ///< burn level that opens a breach episode

  /// Throws InvalidArgument on rho outside (0,1], zero windows, or
  /// fast_window > slow_window.
  void validate() const;
};

/// Observed violation statistics of one window (or of the whole run).
struct SloWindowStats {
  std::size_t observed{0};    ///< PM-slots observed
  std::size_t violations{0};  ///< PM-slots violated
  double cvr{0.0};            ///< violations / observed (0 if unobserved)
  double burn{0.0};           ///< cvr / rho
};

/// Per-PM verdict for /slo and the replay audit.
struct SloPmStats {
  std::size_t pm{0};
  std::size_t observed{0};    ///< cumulative slots observed
  std::size_t violations{0};  ///< cumulative violations
  double cvr{0.0};            ///< cumulative CVR (Eq. 4)
  double fast_cvr{0.0};       ///< CVR over the fast window
  bool above_rho{false};      ///< cumulative CVR exceeds rho
};

/// One breach episode as the fast+slow alerting rule saw it.  For a
/// closed episode `end_slot` is the recovery slot (where `slo.recover`
/// fired); an episode still open when the run ended keeps the last
/// breaching slot and `open == true`.  Episodes are an in-memory
/// diagnostic for `slo explain` — they are NOT part of SloTrackerState,
/// so durable snapshots and their byte format are untouched.
struct SloEpisode {
  std::size_t begin_slot{0};
  std::size_t end_slot{0};
  bool open{false};
  double peak_fast_burn{0.0};
  double peak_slow_burn{0.0};
};

struct SloReport {
  double rho{0.0};
  std::size_t slots{0};  ///< end_slot() calls so far
  SloWindowStats fast;
  SloWindowStats slow;
  SloWindowStats cumulative;
  std::size_t breaches{0};  ///< breach episodes opened so far
  bool breaching{false};    ///< currently inside a breach episode
  std::vector<SloPmStats> pms;  ///< PMs observed at least once, ascending
  double worst_pm_cvr{0.0};     ///< max cumulative per-PM CVR

  /// The SLO holds when the cumulative and slow-window cluster CVR and
  /// every PM's cumulative CVR are within the rho budget.
  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::string verdict() const;  // "PASS" | "FAIL"
  /// Deterministic key=value rendering (the /slo endpoint body and the
  /// burstq_cli audit output share this exact code path).
  [[nodiscard]] std::string render() const;
};

/// Serializable SloTracker contents for durable snapshots: everything
/// behind the mutex, verbatim.
struct SloTrackerState {
  struct PerPm {
    std::size_t observed{0};
    std::size_t violated{0};
    std::vector<std::uint8_t> ring;
    std::size_t ring_observed{0};
    std::size_t ring_violated{0};
  };
  std::vector<PerPm> pms;
  std::vector<std::uint8_t> cur;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cluster_ring;
  std::size_t slots{0};
  std::size_t fast_obs{0}, fast_viol{0};
  std::size_t slow_obs{0}, slow_viol{0};
  std::size_t cum_obs{0}, cum_viol{0};
  std::size_t breaches{0};
  bool breaching{false};
};

class SloTracker {
 public:
  /// Tracks `n_pms` machines.  Throws InvalidArgument on n_pms == 0 or
  /// invalid options.
  SloTracker(std::size_t n_pms, SloOptions options);

  /// Records one PM's outcome for the current slot; at most once per PM
  /// per slot (later calls overwrite).
  void record(PmId pm, bool violated);

  /// Closes the current slot: advances every window, publishes the burn
  /// gauges, and updates breach-episode state.
  void end_slot();

  [[nodiscard]] SloReport report() const;
  [[nodiscard]] const SloOptions& options() const { return opt_; }
  [[nodiscard]] std::size_t n_pms() const;
  [[nodiscard]] std::size_t slots() const;

  /// Breach episodes recorded so far, oldest first.  Cleared by
  /// import_state (the durable state schema cannot reconstruct them).
  [[nodiscard]] std::vector<SloEpisode> episodes() const;

  [[nodiscard]] SloTrackerState export_state() const;
  void import_state(const SloTrackerState& st);

 private:
  enum : std::uint8_t { kUnobserved = 0, kOk = 1, kViolated = 2 };

  struct PerPm {
    std::size_t observed{0};
    std::size_t violated{0};
    std::vector<std::uint8_t> ring;  ///< fast_window slot states
    std::size_t ring_observed{0};
    std::size_t ring_violated{0};
  };

  [[nodiscard]] double burn(double cvr) const { return cvr / opt_.rho; }

  SloOptions opt_;
  mutable std::mutex mu_;
  std::vector<PerPm> pms_;
  std::vector<std::uint8_t> cur_;  ///< this slot's per-PM state
  /// Cluster-wide per-slot (observed, violated) ring of slow_window
  /// entries; the fast window is its most recent suffix.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cluster_ring_;
  std::size_t slots_{0};
  std::size_t fast_obs_{0}, fast_viol_{0};
  std::size_t slow_obs_{0}, slow_viol_{0};
  std::size_t cum_obs_{0}, cum_viol_{0};
  std::size_t breaches_{0};
  bool breaching_{false};
  std::vector<SloEpisode> episodes_;
};

}  // namespace burstq::obs
