#include "obs/exporter.h"

#include <utility>

#include "obs/registry.h"

#ifndef BURSTQ_NO_OBS

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "obs/build_info.h"
#include "obs/http_server.h"
#include "obs/prometheus.h"

namespace burstq::obs {

struct TelemetryExporter::Impl {
  TelemetryOptions opt;
  HttpServer server;
  std::chrono::steady_clock::time_point started{
      std::chrono::steady_clock::now()};

  [[nodiscard]] std::uint64_t uptime_seconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - started)
            .count());
  }

  mutable std::mutex mu;
  MetricsSnapshot snap;                          ///< latest refresh
  std::map<std::string, std::uint64_t> deltas;   ///< counter change
  std::uint64_t refreshes{0};

  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stopping{false};
  std::thread refresher;

  void refresh() {
    MetricsSnapshot next = metrics().scrape();
    std::lock_guard<std::mutex> lock(mu);
    std::map<std::string, std::uint64_t> next_deltas;
    for (const CounterSample& c : next.counters) {
      const CounterSample* prev = snap.counter(c.name);
      const std::uint64_t before = prev == nullptr ? 0 : prev->value;
      // Counters are monotone per shard but a racing reset() can shrink
      // the merged value; clamp instead of wrapping around.
      next_deltas[c.name] = c.value >= before ? c.value - before : 0;
    }
    snap = std::move(next);
    deltas = std::move(next_deltas);
    ++refreshes;
  }

  [[nodiscard]] std::string render_metrics() const {
    std::lock_guard<std::mutex> lock(mu);
    std::string out = "# burstq telemetry: service=" + opt.service +
                      " refreshes=" + std::to_string(refreshes) + "\n";
    out += render_prometheus(snap);
    const PrometheusOptions popt;
    for (const auto& [name, delta] : deltas) {
      const std::string base = popt.prefix + sanitize_metric_name(name);
      out += "# TYPE " + base + "_delta gauge\n";
      out += base + "_delta " + std::to_string(delta) + "\n";
    }
    out += "# TYPE " + popt.prefix + "exporter_refreshes_total counter\n";
    out += popt.prefix + "exporter_refreshes_total " +
           std::to_string(refreshes) + "\n";
    out += "# TYPE " + popt.prefix + "exporter_interval_ms gauge\n";
    out += popt.prefix + "exporter_interval_ms " +
           std::to_string(opt.interval.count()) + "\n";
    return out;
  }

  [[nodiscard]] std::string render_slo() const {
    return opt.slo == nullptr ? std::string{} : opt.slo->report().render();
  }
};

TelemetryExporter::TelemetryExporter(TelemetryOptions options)
    : impl_(std::make_unique<Impl>()) {
  BURSTQ_REQUIRE(options.interval.count() > 0,
                 "telemetry: interval must be positive");
  impl_->opt = std::move(options);
  // Build identity travels with every scrape (obs.build.* gauges) and
  // with /healthz, so a dashboard can tell which binary it watches.
  register_build_info_metrics();
  impl_->refresh();  // /metrics is never empty-before-first-tick

  Impl* impl = impl_.get();
  impl_->server.handle("/metrics", [impl](const std::string&) {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        impl->render_metrics()};
  });
  impl_->server.handle("/healthz", [impl](const std::string&) {
    // First line stays exactly "ok" — liveness probes grep for it.
    std::string body = "ok\n";
    body += build_info_text();
    body += "uptime_seconds=" + std::to_string(impl->uptime_seconds()) +
            "\n";
    return HttpResponse{200, "text/plain; charset=utf-8", std::move(body)};
  });
  impl_->server.handle("/slo", [impl](const std::string&) {
    std::string body = impl->render_slo();
    if (body.empty())
      return HttpResponse{404, "text/plain; charset=utf-8",
                          "no SLO tracker attached\n"};
    return HttpResponse{200, "text/plain; charset=utf-8", std::move(body)};
  });
  impl_->server.start(impl_->opt.port);

  impl_->refresher = std::thread([impl] {
    std::unique_lock<std::mutex> lock(impl->stop_mu);
    while (!impl->stop_cv.wait_for(lock, impl->opt.interval,
                                   [impl] { return impl->stopping; })) {
      lock.unlock();
      impl->refresh();
      lock.lock();
    }
  });
}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::stop() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->stop_mu);
    impl_->stopping = true;
  }
  impl_->stop_cv.notify_all();
  if (impl_->refresher.joinable()) impl_->refresher.join();
  impl_->server.stop();
}

std::uint16_t TelemetryExporter::port() const { return impl_->server.port(); }

std::uint64_t TelemetryExporter::requests_served() const {
  return impl_->server.requests_served();
}

std::uint64_t TelemetryExporter::refreshes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->refreshes;
}

std::string TelemetryExporter::render_metrics() const {
  impl_->refresh();  // tests want current values, not the last tick's
  return impl_->render_metrics();
}

std::string TelemetryExporter::render_slo() const {
  return impl_->render_slo();
}

}  // namespace burstq::obs

#endif  // BURSTQ_NO_OBS

namespace burstq::obs {

void add_telemetry_options(ArgParser& args) {
  args.add_option("telemetry-port",
                  "serve /metrics, /healthz, /slo on 127.0.0.1:<port> "
                  "(0 = ephemeral; omit to disable)");
  args.add_option("telemetry-interval",
                  "telemetry snapshot refresh period in ms", "1000");
}

std::unique_ptr<TelemetryExporter> start_telemetry_from_args(
    const ArgParser& args, const SloTracker* slo) {
  if (!args.has("telemetry-port")) return nullptr;
#ifdef BURSTQ_NO_OBS
  (void)slo;
  throw InvalidArgument(
      "--telemetry-port requires an instrumented build; this binary was "
      "compiled with BURSTQ_NO_OBS=ON");
#else
  const long long port = args.get_int("telemetry-port");
  BURSTQ_REQUIRE(port >= 0 && port <= 65535,
                 "--telemetry-port must be in [0, 65535]");
  const long long interval = args.get_int("telemetry-interval");
  BURSTQ_REQUIRE(interval > 0, "--telemetry-interval must be > 0 ms");
  TelemetryOptions opt;
  opt.port = static_cast<std::uint16_t>(port);
  opt.interval = std::chrono::milliseconds(interval);
  opt.slo = slo;
  return std::make_unique<TelemetryExporter>(opt);
#endif
}

}  // namespace burstq::obs
