#include <bit>
#include <cmath>
#include <cstring>
#include <optional>

#include "common/error.h"
#include "obs/trace.h"
#include "obs/trace_codec.h"

namespace burstq::obs {

using namespace trace_detail;

namespace {

constexpr std::uint8_t kSchemaBlock = 1;
constexpr std::uint8_t kDataBlock = 2;
constexpr std::size_t kFileHeaderSize = 8;
constexpr std::size_t kBlockHeaderSize = 14;
// A block payload is bounded by the writer's flush thresholds; anything
// wildly larger means a corrupt length field, not a big block.
constexpr std::uint32_t kMaxBlockLen = 1u << 28;

}  // namespace

std::string_view TraceColumnInfo::type_name() const {
  switch (type) {
    case Field::Tag::kInt:
      return "int";
    case Field::Tag::kUint:
      return "uint";
    case Field::Tag::kDouble:
      return "double";
    case Field::Tag::kBool:
      return "bool";
    case Field::Tag::kString:
      return "string";
  }
  return "?";
}

TraceReader::TraceReader(const std::string& path) : path_(path) {
  in_.open(path, std::ios::in | std::ios::binary);
  BURSTQ_REQUIRE(in_.is_open(), "cannot open trace file: " + path);
  char header[kFileHeaderSize] = {};
  in_.read(header, kFileHeaderSize);
  if (in_.gcount() != kFileHeaderSize ||
      std::string_view(header, kTraceMagic.size()) != kTraceMagic)
    fail("not a BTRC trace (bad magic)");
  const auto version = static_cast<std::uint8_t>(header[4]);
  if (version != kTraceVersion)
    fail("unsupported BTRC version " + std::to_string(version) +
         " (reader supports " + std::to_string(kTraceVersion) + ")");
  info_.version = version;
  offset_ = kFileHeaderSize;
  valid_offset_ = kFileHeaderSize;
}

void TraceReader::fail(const std::string& what) const {
  throw InvalidArgument(path_ + ": " + what + "; last valid block ends at " +
                        "byte offset " + std::to_string(valid_offset_));
}

bool TraceReader::next_block(std::vector<RecordedEvent>& out, bool decode) {
  while (true) {
    char header[kBlockHeaderSize] = {};
    in_.read(header, kBlockHeaderSize);
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got == 0) return false;  // clean end of file
    if (got < kBlockHeaderSize)
      fail("truncated block header (" + std::to_string(got) + " of " +
           std::to_string(kBlockHeaderSize) + " bytes)");

    const auto type = static_cast<std::uint8_t>(header[0]);
    const auto flags = static_cast<std::uint8_t>(header[1]);
    std::string_view hv(header, kBlockHeaderSize);
    std::size_t hpos = 2;
    std::uint32_t raw_len = 0;
    std::uint32_t stored_len = 0;
    std::uint32_t crc = 0;
    get_u32(hv, hpos, raw_len);
    get_u32(hv, hpos, stored_len);
    get_u32(hv, hpos, crc);
    if ((type != kSchemaBlock && type != kDataBlock) ||
        raw_len > kMaxBlockLen || stored_len > kMaxBlockLen)
      fail("corrupt block header");

    std::string stored(stored_len, '\0');
    in_.read(stored.data(), static_cast<std::streamsize>(stored_len));
    if (static_cast<std::uint32_t>(in_.gcount()) != stored_len)
      fail("truncated block payload (" + std::to_string(in_.gcount()) +
           " of " + std::to_string(stored_len) + " bytes)");
    if (crc32(stored) != crc) fail("block CRC mismatch");

    std::string inflated;
    const std::string* payload = &stored;
    if ((flags & 1) != 0) {
      if (!lz_decompress(stored, raw_len, inflated))
        fail("corrupt compressed block");
      payload = &inflated;
      info_.compressed = true;
    } else if (raw_len != stored_len) {
      fail("corrupt block header (length mismatch on uncompressed block)");
    }

    offset_ += kBlockHeaderSize + stored_len;
    valid_offset_ = offset_;

    std::string_view p(*payload);
    std::size_t pos = 0;
    const auto need_varint = [&](std::uint64_t& v) {
      if (!get_varint(p, pos, v)) fail("malformed block payload");
    };

    if (type == kSchemaBlock) {
      ++info_.schema_blocks;
      std::uint64_t new_kinds = 0;
      need_varint(new_kinds);
      for (std::uint64_t i = 0; i < new_kinds; ++i) {
        std::uint64_t id = 0;
        std::uint64_t len = 0;
        need_varint(id);
        need_varint(len);
        if (id != info_.kinds.size() || len > p.size() - pos)
          fail("malformed schema block");
        TraceKindInfo kind;
        kind.id = static_cast<std::uint32_t>(id);
        kind.name.assign(p.data() + pos, static_cast<std::size_t>(len));
        pos += static_cast<std::size_t>(len);
        info_.kinds.push_back(std::move(kind));
      }
      std::uint64_t new_cols = 0;
      need_varint(new_cols);
      for (std::uint64_t i = 0; i < new_cols; ++i) {
        std::uint64_t kind_id = 0;
        std::uint64_t col_index = 0;
        need_varint(kind_id);
        need_varint(col_index);
        if (pos >= p.size()) fail("malformed schema block");
        const auto tag = static_cast<std::uint8_t>(p[pos++]);
        std::uint64_t len = 0;
        need_varint(len);
        if (kind_id >= info_.kinds.size() ||
            col_index != info_.kinds[kind_id].columns.size() ||
            tag > static_cast<std::uint8_t>(Field::Tag::kString) ||
            len > p.size() - pos)
          fail("malformed schema block");
        TraceColumnInfo col;
        col.name.assign(p.data() + pos, static_cast<std::size_t>(len));
        pos += static_cast<std::size_t>(len);
        col.type = static_cast<Field::Tag>(tag);
        info_.kinds[kind_id].columns.push_back(std::move(col));
      }
      if (pos != p.size()) fail("malformed schema block");
      continue;  // schema absorbed; keep going until a data block
    }

    // ---- data block --------------------------------------------------
    ++info_.data_blocks;
    std::uint64_t event_count = 0;
    need_varint(event_count);
    std::uint64_t n_runs = 0;
    need_varint(n_runs);
    std::vector<std::pair<std::uint32_t, std::uint64_t>> runs;
    runs.reserve(static_cast<std::size_t>(n_runs));
    std::uint64_t run_total = 0;
    for (std::uint64_t i = 0; i < n_runs; ++i) {
      std::uint64_t kind_id = 0;
      std::uint64_t len = 0;
      need_varint(kind_id);
      need_varint(len);
      if (kind_id >= info_.kinds.size() || len == 0)
        fail("malformed data block (bad order run)");
      runs.emplace_back(static_cast<std::uint32_t>(kind_id), len);
      run_total += len;
    }
    if (run_total != event_count)
      fail("malformed data block (order runs disagree with event count)");
    info_.events += event_count;

    std::uint64_t n_batches = 0;
    need_varint(n_batches);
    // Batches decode their columns into compact per-column scalar
    // arrays; the events are then assembled by one pass that follows
    // the global order runs, so the output vector is written strictly
    // sequentially.  The pivot is deliberate: materialising fields
    // column-by-column straight into the interleaved output strides
    // every column pass across the whole output, and those cache
    // misses dominate decode time.
    struct DecodedColumn {
      const std::string* name{nullptr};
      Field::Tag type{Field::Tag::kInt};
      bool all_present{false};
      std::vector<std::size_t> present;  // batch rows, when !all_present
      std::size_t next{0};               // assembly cursor into present
      std::vector<double> nums;          // kInt / kUint
      std::vector<std::uint64_t> bits;   // kDouble (raw IEEE-754 bits)
      std::vector<unsigned char> bools;  // kBool
      std::vector<std::string> strs;     // kString
    };
    struct DecodedBatch {
      std::vector<DecodedColumn> cols;
      std::size_t rows{0};
      std::size_t next_row{0};  // assembly cursor
    };
    const std::size_t base_out = out.size();
    std::vector<std::uint64_t> kind_counts(info_.kinds.size(), 0);
    std::vector<std::uint64_t> decoded_rows(info_.kinds.size(), 0);
    std::vector<std::vector<DecodedBatch>> pending(info_.kinds.size());
    if (decode) {
      out.resize(base_out + static_cast<std::size_t>(event_count));
      for (const auto& [kind_id, len] : runs) kind_counts[kind_id] += len;
    }
    // A malformed payload must not leave half-filled placeholder events
    // in the caller's output: on an exception mid-decode, everything
    // before this block stays and this block's rows vanish.
    struct Rollback {
      std::vector<RecordedEvent>& out;
      std::size_t base;
      bool armed{true};
      ~Rollback() {
        if (armed) out.resize(base);
      }
    } rollback{out, base_out};
    for (std::uint64_t bi = 0; bi < n_batches; ++bi) {
      std::uint64_t kind_id = 0;
      std::uint64_t rows = 0;
      std::uint64_t batch_len = 0;
      need_varint(kind_id);
      need_varint(rows);
      need_varint(batch_len);
      if (kind_id >= info_.kinds.size() || batch_len > p.size() - pos)
        fail("malformed data block (bad batch header)");
      TraceKindInfo& kinfo = info_.kinds[kind_id];
      kinfo.rows += rows;
      if (!decode) {
        pos += static_cast<std::size_t>(batch_len);
        continue;
      }

      std::string_view b = p.substr(pos, static_cast<std::size_t>(batch_len));
      pos += static_cast<std::size_t>(batch_len);
      std::size_t bp = 0;
      const auto batch_varint = [&](std::uint64_t& v) {
        if (!get_varint(b, bp, v)) fail("malformed column batch");
      };

      if (decoded_rows[kind_id] + rows > kind_counts[kind_id])
        fail("malformed data block (batch rows exceed order runs)");
      decoded_rows[kind_id] += rows;
      const auto nrows = static_cast<std::size_t>(rows);

      DecodedBatch batch;
      batch.rows = nrows;
      batch.cols.reserve(kinfo.columns.size());
      for (const TraceColumnInfo& col : kinfo.columns) {
        if (bp >= b.size()) fail("malformed column batch");
        const auto presence = static_cast<std::uint8_t>(b[bp++]);
        if (presence == 0) continue;
        if (presence != 1 && presence != 2)
          fail("malformed column batch (bad presence marker)");

        DecodedColumn& cv = batch.cols.emplace_back();
        cv.name = &col.name;
        cv.type = col.type;
        cv.all_present = presence == 2;
        std::size_t n_present = nrows;
        if (!cv.all_present) {
          const std::size_t bitmap_len = (nrows + 7) / 8;
          if (bitmap_len > b.size() - bp) fail("malformed column batch");
          for (std::size_t r = 0; r < nrows; ++r)
            if ((static_cast<unsigned char>(b[bp + r / 8]) >> (r % 8) & 1) !=
                0)
              cv.present.push_back(r);
          bp += bitmap_len;
          n_present = cv.present.size();
        }

        if (bp >= b.size()) fail("malformed column batch");
        const auto encoding = static_cast<std::uint8_t>(b[bp++]);
        switch (col.type) {
          case Field::Tag::kInt: {
            if (encoding != 0) fail("malformed column batch (int encoding)");
            cv.nums.resize(n_present);
            std::int64_t prev = 0;
            for (double& d : cv.nums) {
              std::uint64_t zz = 0;
              batch_varint(zz);
              prev = static_cast<std::int64_t>(
                  static_cast<std::uint64_t>(prev) +
                  static_cast<std::uint64_t>(unzigzag(zz)));
              d = static_cast<double>(prev);
            }
            break;
          }
          case Field::Tag::kUint: {
            if (encoding != 0) fail("malformed column batch (uint encoding)");
            cv.nums.resize(n_present);
            std::uint64_t prev = 0;
            for (double& d : cv.nums) {
              std::uint64_t zz = 0;
              batch_varint(zz);
              prev += static_cast<std::uint64_t>(unzigzag(zz));
              d = static_cast<double>(prev);
            }
            break;
          }
          case Field::Tag::kDouble: {
            if (encoding == 1) {  // one value for every present row
              std::uint64_t bits = 0;
              if (!get_u64(b, bp, bits)) fail("malformed column batch");
              cv.bits.assign(n_present, bits);
            } else if (encoding == 0) {
              cv.bits.resize(n_present);
              for (std::uint64_t& bits : cv.bits)
                if (!get_u64(b, bp, bits)) fail("malformed column batch");
            } else {
              fail("malformed column batch (double encoding)");
            }
            break;
          }
          case Field::Tag::kBool: {
            if (encoding != 0) fail("malformed column batch (bool encoding)");
            const std::size_t bits_len = (n_present + 7) / 8;
            if (bits_len > b.size() - bp) fail("malformed column batch");
            cv.bools.resize(n_present);
            for (std::size_t i = 0; i < n_present; ++i)
              cv.bools[i] =
                  static_cast<unsigned char>(b[bp + i / 8]) >> (i % 8) & 1;
            bp += bits_len;
            break;
          }
          case Field::Tag::kString: {
            const auto read_str = [&](std::string& s) {
              std::uint64_t len = 0;
              batch_varint(len);
              if (len > b.size() - bp) fail("malformed column batch");
              s.assign(b.data() + bp, static_cast<std::size_t>(len));
              bp += static_cast<std::size_t>(len);
            };
            cv.strs.resize(n_present);
            if (encoding == 1) {  // per-block dictionary
              std::uint64_t dict_size = 0;
              batch_varint(dict_size);
              if (dict_size > n_present)
                fail("malformed column batch (dictionary)");
              std::vector<std::string> dict(
                  static_cast<std::size_t>(dict_size));
              for (std::string& s : dict) read_str(s);
              for (std::string& s : cv.strs) {
                std::uint64_t idx = 0;
                batch_varint(idx);
                if (idx >= dict.size())
                  fail("malformed column batch (dictionary index)");
                s = dict[static_cast<std::size_t>(idx)];
              }
            } else if (encoding == 0) {
              for (std::string& s : cv.strs) read_str(s);
            } else {
              fail("malformed column batch (string encoding)");
            }
            break;
          }
        }
      }
      if (bp != b.size()) fail("malformed column batch (trailing bytes)");
      pending[kind_id].push_back(std::move(batch));
    }
    if (pos != p.size()) fail("malformed data block (trailing bytes)");

    if (decode) {
      for (std::size_t k = 0; k < kind_counts.size(); ++k)
        if (decoded_rows[k] != kind_counts[k])
          fail("malformed data block (order runs disagree with batch rows)");
      // Assembly: walk the order runs, consuming each kind's decoded
      // batches FIFO; the output vector is written front to back.
      std::vector<std::size_t> front(info_.kinds.size(), 0);
      std::size_t out_idx = base_out;
      for (const auto& [kind_id, len] : runs) {
        auto& queue = pending[kind_id];
        std::size_t& f = front[kind_id];
        const std::string& kind_name = info_.kinds[kind_id].name;
        for (std::uint64_t i = 0; i < len; ++i) {
          while (f < queue.size() && queue[f].next_row == queue[f].rows) ++f;
          // Row totals were validated above, so a batch always remains.
          DecodedBatch& db = queue[f];
          const std::size_t r = db.next_row++;
          RecordedEvent& ev = out[out_idx++];
          ev.kind = kind_name;
          ev.fields.reserve(db.cols.size());
          for (DecodedColumn& cv : db.cols) {
            std::size_t idx = r;
            if (!cv.all_present) {
              if (cv.next >= cv.present.size() || cv.present[cv.next] != r)
                continue;
              idx = cv.next++;
            }
            auto& field = ev.fields.emplace_back();
            field.first = *cv.name;
            EventValue& v = field.second;
            switch (cv.type) {
              case Field::Tag::kInt:
              case Field::Tag::kUint:
                v.tag = EventValue::Tag::kNumber;
                v.num = cv.nums[idx];
                break;
              case Field::Tag::kDouble: {
                const double d = std::bit_cast<double>(cv.bits[idx]);
                if (std::isfinite(d)) {  // non-finite stays null, like JSONL
                  v.tag = EventValue::Tag::kNumber;
                  v.num = d;
                }
                break;
              }
              case Field::Tag::kBool:
                v.tag = EventValue::Tag::kBool;
                v.b = cv.bools[idx] != 0;
                break;
              case Field::Tag::kString:
                v.tag = EventValue::Tag::kString;
                v.str = std::move(cv.strs[idx]);
                break;
            }
          }
        }
      }
    }
    rollback.armed = false;
    return true;
  }
}

namespace {

// Exact event count for pre-sizing read_events_btrc's output: walks
// block headers, reads only the leading event_count varint of each
// data block, and seeks past everything else.  Best effort — any
// irregularity just ends the count early, and compressed data blocks
// return nullopt (their count lives inside the compressed payload);
// the decoding pass owns validation and error reporting.
std::optional<std::uint64_t> count_events_fast(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  if (file_size < static_cast<std::streamoff>(kFileHeaderSize))
    return std::nullopt;
  in.seekg(static_cast<std::streamoff>(kFileHeaderSize));
  std::uint64_t total = 0;
  auto at = static_cast<std::streamoff>(kFileHeaderSize);
  while (in) {
    char header[kBlockHeaderSize] = {};
    in.read(header, kBlockHeaderSize);
    if (in.gcount() < static_cast<std::streamsize>(kBlockHeaderSize)) break;
    const auto type = static_cast<std::uint8_t>(header[0]);
    const auto flags = static_cast<std::uint8_t>(header[1]);
    std::string_view hv(header, kBlockHeaderSize);
    std::size_t hpos = 2;
    std::uint32_t raw_len = 0;
    std::uint32_t stored_len = 0;
    std::uint32_t crc = 0;
    get_u32(hv, hpos, raw_len);
    get_u32(hv, hpos, stored_len);
    get_u32(hv, hpos, crc);
    if (stored_len > kMaxBlockLen) break;
    at += static_cast<std::streamoff>(kBlockHeaderSize) + stored_len;
    if (type == kDataBlock) {
      if ((flags & 1) != 0) return std::nullopt;  // compressed
      char lead[10] = {};
      const std::size_t lead_len = stored_len < 10 ? stored_len : 10;
      in.read(lead, static_cast<std::streamsize>(lead_len));
      if (in.gcount() < static_cast<std::streamsize>(lead_len)) break;
      std::size_t lpos = 0;
      std::uint64_t n = 0;
      if (!get_varint(std::string_view(lead, lead_len), lpos, n)) break;
      total += n;
    }
    in.seekg(at);
  }
  // A corrupt count field must not drive a huge allocation: one event
  // costs at least a byte on disk, so the file size bounds the count.
  const auto bound = static_cast<std::uint64_t>(file_size);
  return total < bound ? total : bound;
}

}  // namespace

std::vector<RecordedEvent> read_events_btrc(const std::string& path) {
  std::vector<RecordedEvent> out;
  // Pre-size the output so decoded events are never moved by vector
  // reallocation; decoding validates the real counts.
  if (const auto n = count_events_fast(path))
    out.reserve(static_cast<std::size_t>(*n));
  TraceReader reader(path);
  while (reader.next_block(out)) {
  }
  return out;
}

TraceFileInfo read_trace_info(const std::string& path) {
  TraceReader reader(path);
  std::vector<RecordedEvent> scratch;
  while (reader.next_block(scratch, /*decode=*/false)) {
  }
  return reader.info();
}

EventFormat sniff_event_format(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  BURSTQ_REQUIRE(in.is_open(), "cannot open event file: " + path);
  char magic[4] = {};
  in.read(magic, 4);
  if (in.gcount() == 4 && std::string_view(magic, 4) == kTraceMagic)
    return EventFormat::kBinary;
  in.clear();
  in.seekg(0);
  std::string first_line;
  std::getline(in, first_line);
  if (!first_line.empty() && first_line.back() == '\r') first_line.pop_back();
  if (first_line == "id,kind,key,value") return EventFormat::kCsv;
  return EventFormat::kJsonl;
}

namespace {

std::vector<RecordedEvent> read_at_offset_btrc(const std::string& path,
                                               std::uint64_t offset,
                                               std::size_t max_events) {
  TraceReader reader(path);
  std::vector<RecordedEvent> out;
  // Skip (integrity-checked, schema absorbed) until the target block.
  while (reader.valid_offset() < offset) {
    if (!reader.next_block(out, /*decode=*/false))
      throw InvalidArgument(path + ": trace pointer offset " +
                            std::to_string(offset) +
                            " is past the end of the trace (last block "
                            "ends at byte " +
                            std::to_string(reader.valid_offset()) + ")");
  }
  if (reader.valid_offset() != offset)
    throw InvalidArgument(path + ": trace pointer offset " +
                          std::to_string(offset) +
                          " is not a block boundary (nearest boundary is "
                          "byte " +
                          std::to_string(reader.valid_offset()) + ")");
  while (out.size() < max_events && reader.next_block(out)) {
  }
  if (out.size() > max_events) out.resize(max_events);
  return out;
}

std::vector<RecordedEvent> read_at_offset_jsonl(const std::string& path,
                                                std::uint64_t offset,
                                                std::size_t max_events) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  BURSTQ_REQUIRE(in.is_open(), "cannot open event file: " + path);
  if (offset > 0) {
    // A valid pointer lands just after a newline; anything else is a
    // mid-line (or past-the-end) offset and would parse garbage.
    in.seekg(static_cast<std::streamoff>(offset - 1));
    char prev = '\0';
    if (!in.read(&prev, 1))
      throw InvalidArgument(path + ": trace pointer offset " +
                            std::to_string(offset) +
                            " is past the end of the trace");
    if (prev != '\n')
      throw InvalidArgument(path + ": trace pointer offset " +
                            std::to_string(offset) +
                            " is not the start of a JSONL line");
  }
  std::vector<RecordedEvent> out;
  std::string line;
  while (out.size() < max_events && std::getline(in, line)) {
    std::string error;
    auto event = parse_event_line(line, &error);
    if (!event) {
      if (error.empty()) continue;  // blank line
      throw InvalidArgument(path + ": malformed event line after offset " +
                            std::to_string(offset) + ": " + error);
    }
    out.push_back(std::move(*event));
  }
  return out;
}

}  // namespace

std::vector<RecordedEvent> read_events_at_offset(const std::string& path,
                                                 std::uint64_t offset,
                                                 std::size_t max_events) {
  switch (sniff_event_format(path)) {
    case EventFormat::kBinary:
      return read_at_offset_btrc(path, offset, max_events);
    case EventFormat::kCsv:
      throw InvalidArgument(
          path +
          ": long-CSV event logs have no stable per-event offsets; trace "
          "pointers resolve only into JSONL or BTRC traces");
    case EventFormat::kJsonl:
      break;
  }
  return read_at_offset_jsonl(path, offset, max_events);
}

std::vector<RecordedEvent> read_events_auto(const std::string& path,
                                            EventFormat* format) {
  const EventFormat f = sniff_event_format(path);
  if (format != nullptr) *format = f;
  switch (f) {
    case EventFormat::kBinary:
      return read_events_btrc(path);
    case EventFormat::kCsv:
      return read_events_csv(path);
    case EventFormat::kJsonl:
      break;
  }
  return read_events_jsonl(path);
}

}  // namespace burstq::obs
