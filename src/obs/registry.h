// Lock-cheap metrics registry: named counters, gauges and histograms.
//
// Hot-path updates go to per-thread shards (cache-line-padded relaxed
// atomics, shard picked by a hashed thread id) so the ThreadPool fan-out
// in common/parallel.h never contends on a metric; scrape() merges the
// shards into an immutable snapshot.  Metric objects are registered once
// per name and never destroyed, so call sites may cache references
// (BURSTQ_COUNT and friends in obs/obs.h do exactly that behind a
// function-local static).
//
// Histograms record into a fixed-precision streaming-quantile sketch
// (obs/quantiles.h): HDR-style log2 octaves subdivided into linear
// sub-buckets, so snapshots report p50/p95/p99 within a bounded relative
// error without storing samples.  The legacy coarse log2 view (bucket 0
// counts zeros, bucket b counts values of bit width b) is still derived
// at snapshot time for compact exposition buckets and old consumers.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/quantiles.h"

namespace burstq::obs {

/// Number of update shards per metric.  A power of two; more shards cost
/// memory (one cache line each), fewer cost contention.
inline constexpr std::size_t kMetricShards = 16;

/// Number of log2 histogram buckets.  Bucket 47 absorbs everything at or
/// above 2^46 (~19 hours in nanoseconds).
inline constexpr std::size_t kHistogramBuckets = 48;

namespace detail {

/// Stable shard index for the calling thread.
std::size_t shard_index() noexcept;

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged value across shards.
  [[nodiscard]] std::uint64_t value() const noexcept;

  /// Zeroes every shard (scrape-time races simply move counts between
  /// adjacent snapshots; callers reset only between runs).
  void reset() noexcept;

 private:
  std::array<detail::PaddedU64, kMetricShards> shards_{};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Merged view of a histogram at scrape time.
struct HistogramSnapshot {
  std::uint64_t count{0};
  std::uint64_t sum{0};
  std::uint64_t min{0};  ///< 0 when count == 0
  std::uint64_t max{0};
  /// Coarse log2 view, derived from the sketch (bucket b = bit width b).
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  /// Fine sub-bucket counts (obs/quantiles.h); count/min/max duplicated.
  SketchSnapshot sketch{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Streaming-quantile estimate from the sketch: exact at q=0 / q=1 and
  /// for small values, within kSketchRelativeError otherwise.
  [[nodiscard]] double quantile(double q) const { return sketch.quantile(q); }
  /// Backwards-compatible alias for quantile().
  [[nodiscard]] double approx_quantile(double q) const {
    return quantile(q);
  }
};

/// Histogram of non-negative integer observations over the fixed
/// sub-bucketed sketch of obs/quantiles.h.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  void reset() noexcept;

  /// Coarse log2 bucket index of a value (exposed for tests and for the
  /// derived HistogramSnapshot::buckets view).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept;

 private:
  // No separate count cell: a concurrent scrape summing buckets and a
  // count updated by a different store could disagree mid-record, which
  // renders as a non-monotone +Inf bucket.  The count is derived from
  // the bucket sums at snapshot time instead, so the two always agree.
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kSketchBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{UINT64_MAX};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Aggregated statistics of one named trace span (see obs/span.h for the
/// RAII recorder).  total includes time spent in child spans; self does
/// not, so sorting by self pinpoints where wall time actually goes.
class SpanStat {
 public:
  void record(std::uint64_t wall_ns, std::uint64_t self_ns) noexcept;

  [[nodiscard]] std::uint64_t calls() const noexcept;
  [[nodiscard]] std::uint64_t total_ns() const noexcept;
  [[nodiscard]] std::uint64_t self_ns() const noexcept;
  [[nodiscard]] std::uint64_t max_ns() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> self_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

struct CounterSample {
  std::string name;
  std::uint64_t value{0};
};
struct GaugeSample {
  std::string name;
  double value{0.0};
};
struct HistogramSample {
  std::string name;
  HistogramSnapshot hist;
};
struct SpanSample {
  std::string name;
  std::uint64_t calls{0};
  std::uint64_t total_ns{0};
  std::uint64_t self_ns{0};
  std::uint64_t max_ns{0};
};

/// Point-in-time merged view of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SpanSample> spans;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           spans.empty();
  }
  /// Lookup helpers; return nullptr when the name is unregistered.
  [[nodiscard]] const CounterSample* counter(std::string_view name) const;
  [[nodiscard]] const SpanSample* span(std::string_view name) const;
};

/// Name -> metric map.  Registration takes a mutex (once per call site);
/// updates touch only the returned object.  Returned references stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  SpanStat& span(std::string_view name);

  [[nodiscard]] MetricsSnapshot scrape() const;

  /// Zeroes all values, keeping registrations (and thus cached
  /// references) valid.  Use between benchmark runs and in tests.
  void reset();

 private:
  template <typename T>
  using Map = std::unordered_map<std::string, std::unique_ptr<T>>;

  template <typename T>
  static T& intern(Map<T>& map, std::string_view name);

  mutable std::mutex mu_;
  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<Histogram> histograms_;
  Map<SpanStat> spans_;
};

/// Process-wide registry used by the BURSTQ_* macros.
MetricsRegistry& metrics();

}  // namespace burstq::obs
