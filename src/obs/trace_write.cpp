#include <algorithm>
#include <bit>
#include <cmath>
#include <filesystem>
#include <unordered_map>

#include "common/error.h"
#include "obs/trace.h"
#include "obs/trace_codec.h"

namespace burstq::obs {

using namespace trace_detail;

namespace {

// Block types.  A schema block announces kinds/columns; a data block
// carries the column batches for a contiguous run of events.
constexpr std::uint8_t kSchemaBlock = 1;
constexpr std::uint8_t kDataBlock = 2;

// All non-finite doubles are stored as this canonical quiet-NaN pattern
// and read back as null — mirroring the JSONL sink, which has no
// NaN/inf literals, so the two formats decode identically.
constexpr std::uint64_t kNullBits = 0x7FF8000000000000ull;

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s.data(), s.size());
}

}  // namespace

/// One buffered column of the current block: the per-kind row indices
/// where the field was present, plus the values in one typed vector.
struct TraceWriter::ColumnBuf {
  std::string name;
  Field::Tag tag{Field::Tag::kInt};
  bool announced{false};
  std::vector<std::uint64_t> rows;
  std::vector<std::int64_t> ints;
  std::vector<std::uint64_t> uints;
  std::vector<double> doubles;
  std::vector<std::uint8_t> bools;
  std::vector<std::string> strings;

  void clear_values() {
    rows.clear();
    ints.clear();
    uints.clear();
    doubles.clear();
    bools.clear();
    strings.clear();
  }
};

struct TraceWriter::KindBuf {
  std::string name;
  bool announced{false};
  std::uint64_t rows{0};  // rows buffered in the current block
  std::vector<ColumnBuf> cols;
};

TraceWriter::TraceWriter(const std::string& path, TraceWriteOptions opts)
    : path_(path), opts_(opts) {
  out_.open(path, std::ios::out | std::ios::trunc | std::ios::binary);
  BURSTQ_REQUIRE(out_.is_open(), "cannot open trace file: " + path);
  std::string header(kTraceMagic);
  header.push_back(static_cast<char>(kTraceVersion));
  header.push_back(static_cast<char>(opts_.compress ? 1 : 0));
  header.push_back('\0');
  header.push_back('\0');
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  bytes_ += header.size();
}

TraceWriter::TraceWriter(const std::string& path, TraceWriteOptions opts,
                         ResumeTag)
    : path_(path), opts_(opts) {
  // Rescan the file (which must end on a block boundary) to rebuild the
  // announced schema in exact kind-id / column order — appended data
  // blocks must reference the same ids a continuous run would have used.
  const TraceFileInfo info = read_trace_info(path);
  for (const TraceKindInfo& k : info.kinds) {
    KindBuf kb;
    kb.name = k.name;
    kb.announced = true;
    for (const TraceColumnInfo& c : k.columns) {
      ColumnBuf col;
      col.name = c.name;
      col.tag = c.type;
      col.announced = true;
      kb.cols.push_back(std::move(col));
    }
    kinds_.push_back(std::move(kb));
  }
  events_ = info.events;
  blocks_ = info.data_blocks + info.schema_blocks;
  bytes_ = std::filesystem::file_size(path);
  out_.open(path, std::ios::out | std::ios::app | std::ios::binary);
  BURSTQ_REQUIRE(out_.is_open(),
                 "cannot reopen trace file for resume: " + path);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::abandon() {
  if (out_.is_open()) out_.close();
}

void TraceWriter::append(std::string_view kind,
                         std::initializer_list<Field> fields) {
  append_fields(kind, fields.begin(), fields.size());
}

void TraceWriter::append(std::string_view kind,
                         const std::vector<Field>& fields) {
  append_fields(kind, fields.data(), fields.size());
}

void TraceWriter::append_fields(std::string_view kind, const Field* data,
                                std::size_t count) {
  if (!out_.is_open()) return;

  std::uint32_t kind_id = 0;
  for (; kind_id < kinds_.size(); ++kind_id)
    if (kinds_[kind_id].name == kind) break;
  if (kind_id == kinds_.size()) {
    kinds_.push_back(KindBuf{std::string(kind), false, 0, {}});
    buffered_bytes_ += kind.size() + 8;
  }
  KindBuf& kb = kinds_[kind_id];

  if (!order_.empty() && order_.back().first == kind_id)
    ++order_.back().second;
  else
    order_.emplace_back(kind_id, 1);

  const std::uint64_t row = kb.rows++;
  for (std::size_t i = 0; i < count; ++i) {
    const Field& f = data[i];
    // First column matching (name, tag) that has no value for this row
    // yet — duplicate keys within one event land in sibling columns.
    ColumnBuf* col = nullptr;
    for (ColumnBuf& c : kb.cols)
      if (c.tag == f.tag && c.name == f.key &&
          (c.rows.empty() || c.rows.back() != row)) {
        col = &c;
        break;
      }
    if (col == nullptr) {
      kb.cols.push_back(ColumnBuf{});
      col = &kb.cols.back();
      col->name = std::string(f.key);
      col->tag = f.tag;
      buffered_bytes_ += f.key.size() + 8;
    }
    col->rows.push_back(row);
    switch (f.tag) {
      case Field::Tag::kInt:
        col->ints.push_back(f.i);
        buffered_bytes_ += 4;
        break;
      case Field::Tag::kUint:
        col->uints.push_back(f.u);
        buffered_bytes_ += 4;
        break;
      case Field::Tag::kDouble:
        col->doubles.push_back(f.d);
        buffered_bytes_ += 8;
        break;
      case Field::Tag::kBool:
        col->bools.push_back(f.b ? 1 : 0);
        buffered_bytes_ += 1;
        break;
      case Field::Tag::kString:
        col->strings.emplace_back(f.s);
        buffered_bytes_ += f.s.size() + 2;
        break;
    }
  }
  ++buffered_events_;
  ++events_;
  if (buffered_events_ >= opts_.block_events ||
      buffered_bytes_ >= opts_.block_bytes)
    flush_block();
}

void TraceWriter::flush_block() {
  if (buffered_events_ == 0) return;

  // Schema deltas first, so a reader always knows every name a data
  // block references before it reaches the block.
  std::string schema;
  std::uint64_t new_kinds = 0;
  for (const KindBuf& kb : kinds_) new_kinds += kb.announced ? 0 : 1;
  put_varint(schema, new_kinds);
  for (std::uint32_t id = 0; id < kinds_.size(); ++id) {
    if (kinds_[id].announced) continue;
    put_varint(schema, id);
    put_string(schema, kinds_[id].name);
    kinds_[id].announced = true;
  }
  std::uint64_t new_cols = 0;
  for (const KindBuf& kb : kinds_)
    for (const ColumnBuf& c : kb.cols) new_cols += c.announced ? 0 : 1;
  put_varint(schema, new_cols);
  for (std::uint32_t id = 0; id < kinds_.size(); ++id)
    for (std::size_t ci = 0; ci < kinds_[id].cols.size(); ++ci) {
      ColumnBuf& c = kinds_[id].cols[ci];
      if (c.announced) continue;
      put_varint(schema, id);
      put_varint(schema, ci);
      schema.push_back(static_cast<char>(c.tag));
      put_string(schema, c.name);
      c.announced = true;
    }
  if (new_kinds != 0 || new_cols != 0) write_block(kSchemaBlock, schema);

  std::string payload;
  put_varint(payload, buffered_events_);
  put_varint(payload, order_.size());
  for (const auto& [kind_id, run] : order_) {
    put_varint(payload, kind_id);
    put_varint(payload, run);
  }

  std::uint64_t n_batches = 0;
  for (const KindBuf& kb : kinds_) n_batches += kb.rows != 0 ? 1 : 0;
  put_varint(payload, n_batches);

  std::string batch;  // reused per kind
  for (std::uint32_t id = 0; id < kinds_.size(); ++id) {
    KindBuf& kb = kinds_[id];
    if (kb.rows == 0) continue;
    batch.clear();
    for (const ColumnBuf& c : kb.cols) {
      const std::size_t present = c.rows.size();
      if (present == 0) {
        batch.push_back(0);  // column absent from every row of the block
        continue;
      }
      if (present == kb.rows) {
        batch.push_back(2);  // present in every row — no bitmap
      } else {
        batch.push_back(1);
        std::string bitmap((kb.rows + 7) / 8, '\0');
        for (const std::uint64_t r : c.rows)
          bitmap[r / 8] |= static_cast<char>(1u << (r % 8));
        batch += bitmap;
      }
      switch (c.tag) {
        case Field::Tag::kInt: {
          batch.push_back(0);  // encoding: zigzag(delta) varints
          std::int64_t prev = 0;
          for (const std::int64_t v : c.ints) {
            const auto delta = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(v) -
                static_cast<std::uint64_t>(prev));
            put_varint(batch, zigzag(delta));
            prev = v;
          }
          break;
        }
        case Field::Tag::kUint: {
          batch.push_back(0);
          std::uint64_t prev = 0;
          for (const std::uint64_t v : c.uints) {
            put_varint(batch,
                       zigzag(static_cast<std::int64_t>(v - prev)));
            prev = v;
          }
          break;
        }
        case Field::Tag::kDouble: {
          // Non-finite canonicalizes to the null pattern (JSONL parity).
          const auto bits_of = [](double v) {
            return std::isfinite(v) ? std::bit_cast<std::uint64_t>(v)
                                    : kNullBits;
          };
          const std::uint64_t first = bits_of(c.doubles.front());
          const bool constant =
              std::all_of(c.doubles.begin(), c.doubles.end(),
                          [&](double v) { return bits_of(v) == first; });
          if (constant) {
            batch.push_back(1);  // encoding: one value for every row
            put_u64(batch, first);
          } else {
            batch.push_back(0);  // encoding: raw 8-byte values
            for (const double v : c.doubles) put_u64(batch, bits_of(v));
          }
          break;
        }
        case Field::Tag::kBool: {
          batch.push_back(0);  // encoding: bit-packed
          std::string bits((present + 7) / 8, '\0');
          for (std::size_t i = 0; i < present; ++i)
            if (c.bools[i] != 0)
              bits[i / 8] |= static_cast<char>(1u << (i % 8));
          batch += bits;
          break;
        }
        case Field::Tag::kString: {
          std::unordered_map<std::string_view, std::uint64_t> dict;
          std::vector<std::string_view> entries;
          for (const std::string& s : c.strings)
            if (dict.emplace(s, entries.size()).second)
              entries.push_back(s);
          if (entries.size() < present) {
            batch.push_back(1);  // encoding: per-block dictionary
            put_varint(batch, entries.size());
            for (const std::string_view s : entries) put_string(batch, s);
            for (const std::string& s : c.strings)
              put_varint(batch, dict.at(s));
          } else {
            batch.push_back(0);  // encoding: raw length-prefixed
            for (const std::string& s : c.strings) put_string(batch, s);
          }
          break;
        }
      }
    }
    put_varint(payload, id);
    put_varint(payload, kb.rows);
    put_varint(payload, batch.size());
    payload += batch;
  }
  write_block(kDataBlock, payload);

  for (KindBuf& kb : kinds_) {
    kb.rows = 0;
    for (ColumnBuf& c : kb.cols) c.clear_values();
  }
  order_.clear();
  buffered_events_ = 0;
  buffered_bytes_ = 0;
}

void TraceWriter::write_block(std::uint8_t type,
                              const std::string& payload) {
  const std::string* stored = &payload;
  std::string compressed;
  std::uint8_t flags = 0;
  if (opts_.compress) {
    compressed = lz_compress(payload);
    if (compressed.size() < payload.size()) {
      stored = &compressed;
      flags = 1;
    }
  }
  std::string header;
  header.push_back(static_cast<char>(type));
  header.push_back(static_cast<char>(flags));
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  put_u32(header, static_cast<std::uint32_t>(stored->size()));
  put_u32(header, crc32(*stored));
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.write(stored->data(), static_cast<std::streamsize>(stored->size()));
  bytes_ += header.size() + stored->size();
  ++blocks_;
}

void TraceWriter::flush() {
  if (!out_.is_open()) return;
  flush_block();
  out_.flush();
}

void TraceWriter::close() {
  if (!out_.is_open()) return;
  flush_block();
  out_.flush();
  out_.close();
}

}  // namespace burstq::obs
