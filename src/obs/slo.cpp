#include "obs/slo.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "obs/event_log.h"
#include "obs/obs.h"

namespace burstq::obs {

namespace {

double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

void SloOptions::validate() const {
  BURSTQ_REQUIRE(rho > 0.0 && rho <= 1.0,
                 "SloOptions: rho must be in (0, 1]");
  BURSTQ_REQUIRE(fast_window > 0, "SloOptions: fast_window must be > 0");
  BURSTQ_REQUIRE(fast_window <= slow_window,
                 "SloOptions: fast_window must not exceed slow_window");
  BURSTQ_REQUIRE(breach_burn > 0.0, "SloOptions: breach_burn must be > 0");
}

bool SloReport::ok() const {
  if (slow.cvr > rho || cumulative.cvr > rho) return false;
  return std::none_of(pms.begin(), pms.end(),
                      [](const SloPmStats& p) { return p.above_rho; });
}

std::string SloReport::verdict() const { return ok() ? "PASS" : "FAIL"; }

std::string SloReport::render() const {
  std::string out;
  out += "slo.rho=" + fmt(rho) + "\n";
  out += "slo.slots=" + std::to_string(slots) + "\n";
  const auto window = [&out](const char* name, const SloWindowStats& w) {
    const std::string p = std::string("slo.") + name;
    out += p + ".observed=" + std::to_string(w.observed) + "\n";
    out += p + ".violations=" + std::to_string(w.violations) + "\n";
    out += p + ".cvr=" + fmt(w.cvr) + "\n";
    out += p + ".burn=" + fmt(w.burn) + "\n";
  };
  window("fast", fast);
  window("slow", slow);
  window("cumulative", cumulative);
  out += "slo.breaches=" + std::to_string(breaches) + "\n";
  out += "slo.breaching=" + std::to_string(breaching ? 1 : 0) + "\n";
  out += "slo.worst_pm_cvr=" + fmt(worst_pm_cvr) + "\n";
  for (const SloPmStats& p : pms) {
    if (!p.above_rho) continue;  // only exceptions get a per-PM line
    out += "slo.pm." + std::to_string(p.pm) + ".cvr=" + fmt(p.cvr) +
           " violations=" + std::to_string(p.violations) +
           " observed=" + std::to_string(p.observed) + "\n";
  }
  out += "slo.verdict=" + verdict() + "\n";
  return out;
}

SloTracker::SloTracker(std::size_t n_pms, SloOptions options)
    : opt_(options) {
  BURSTQ_REQUIRE(n_pms > 0, "SloTracker: n_pms must be > 0");
  opt_.validate();
  pms_.resize(n_pms);
  for (PerPm& p : pms_) p.ring.assign(opt_.fast_window, kUnobserved);
  cur_.assign(n_pms, kUnobserved);
  cluster_ring_.assign(opt_.slow_window, {0, 0});
}

void SloTracker::record(PmId pm, bool violated) {
  std::lock_guard<std::mutex> lock(mu_);
  BURSTQ_REQUIRE(pm.value < cur_.size(), "SloTracker: PM index out of range");
  cur_[pm.value] = violated ? kViolated : kOk;
}

void SloTracker::end_slot() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t ring_pos = slots_ % opt_.fast_window;
  std::uint32_t slot_obs = 0;
  std::uint32_t slot_viol = 0;
  for (std::size_t j = 0; j < cur_.size(); ++j) {
    PerPm& p = pms_[j];
    // Retire the state leaving this PM's fast-window ring.
    const std::uint8_t old = p.ring[ring_pos];
    if (old != kUnobserved) {
      --p.ring_observed;
      if (old == kViolated) --p.ring_violated;
    }
    const std::uint8_t now = cur_[j];
    p.ring[ring_pos] = now;
    if (now != kUnobserved) {
      ++p.ring_observed;
      ++p.observed;
      ++slot_obs;
      if (now == kViolated) {
        ++p.ring_violated;
        ++p.violated;
        ++slot_viol;
      }
    }
    cur_[j] = kUnobserved;
  }

  // Cluster rings: the fast window is the most recent suffix of the slow
  // ring, so retire the entry leaving each window before inserting.
  const std::size_t slow_pos = slots_ % opt_.slow_window;
  const auto leaving_slow = cluster_ring_[slow_pos];
  slow_obs_ -= leaving_slow.first;
  slow_viol_ -= leaving_slow.second;
  if (slots_ >= opt_.fast_window) {
    const std::size_t fast_leave =
        (slots_ - opt_.fast_window) % opt_.slow_window;
    fast_obs_ -= cluster_ring_[fast_leave].first;
    fast_viol_ -= cluster_ring_[fast_leave].second;
  }
  cluster_ring_[slow_pos] = {slot_obs, slot_viol};
  fast_obs_ += slot_obs;
  fast_viol_ += slot_viol;
  slow_obs_ += slot_obs;
  slow_viol_ += slot_viol;
  cum_obs_ += slot_obs;
  cum_viol_ += slot_viol;
  ++slots_;

  const double fast_cvr = ratio(fast_viol_, fast_obs_);
  const double slow_cvr = ratio(slow_viol_, slow_obs_);
  const double fast_burn = burn(fast_cvr);
  const double slow_burn = burn(slow_cvr);
  double worst = 0.0;
  for (const PerPm& p : pms_)
    worst = std::max(worst, ratio(p.violated, p.observed));

  BURSTQ_GAUGE("slo.cvr.fast", fast_cvr);
  BURSTQ_GAUGE("slo.cvr.slow", slow_cvr);
  BURSTQ_GAUGE("slo.cvr.cumulative", ratio(cum_viol_, cum_obs_));
  BURSTQ_GAUGE("slo.cvr.worst_pm", worst);
  BURSTQ_GAUGE("obs.slo.cvr_burn_fast", fast_burn);
  BURSTQ_GAUGE("obs.slo.cvr_burn_slow", slow_burn);

  if (!breaching_) {
    if (fast_burn > opt_.breach_burn && slow_burn > opt_.breach_burn) {
      breaching_ = true;
      ++breaches_;
      episodes_.push_back(
          {slots_ - 1, slots_ - 1, true, fast_burn, slow_burn});
      BURSTQ_COUNT("fault.slo.breaches", 1);
      BURSTQ_EVENT(EventLevel::kDecisions, "slo.breach",
                   {"slot", slots_ - 1}, {"fast_burn", fast_burn},
                   {"slow_burn", slow_burn}, {"rho", opt_.rho});
    }
  } else {
    // The episode list can be empty here after import_state (episodes
    // are not part of the durable schema); breach accounting still
    // works, we just cannot attribute this episode's window.
    if (!episodes_.empty() && episodes_.back().open) {
      SloEpisode& ep = episodes_.back();
      ep.end_slot = slots_ - 1;
      ep.peak_fast_burn = std::max(ep.peak_fast_burn, fast_burn);
      ep.peak_slow_burn = std::max(ep.peak_slow_burn, slow_burn);
    }
    if (fast_burn <= opt_.breach_burn) {
      breaching_ = false;
      if (!episodes_.empty() && episodes_.back().open)
        episodes_.back().open = false;
      BURSTQ_EVENT(EventLevel::kDecisions, "slo.recover",
                   {"slot", slots_ - 1}, {"fast_burn", fast_burn});
    }
  }
}

SloReport SloTracker::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  SloReport r;
  r.rho = opt_.rho;
  r.slots = slots_;
  const auto fill = [this](SloWindowStats& w, std::size_t obs,
                           std::size_t viol) {
    w.observed = obs;
    w.violations = viol;
    w.cvr = ratio(viol, obs);
    w.burn = burn(w.cvr);
  };
  fill(r.fast, fast_obs_, fast_viol_);
  fill(r.slow, slow_obs_, slow_viol_);
  fill(r.cumulative, cum_obs_, cum_viol_);
  r.breaches = breaches_;
  r.breaching = breaching_;
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    const PerPm& p = pms_[j];
    if (p.observed == 0) continue;
    SloPmStats s;
    s.pm = j;
    s.observed = p.observed;
    s.violations = p.violated;
    s.cvr = ratio(p.violated, p.observed);
    s.fast_cvr = ratio(p.ring_violated, p.ring_observed);
    s.above_rho = s.cvr > opt_.rho;
    r.worst_pm_cvr = std::max(r.worst_pm_cvr, s.cvr);
    r.pms.push_back(s);
  }
  return r;
}

std::size_t SloTracker::n_pms() const { return pms_.size(); }

std::size_t SloTracker::slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_;
}

std::vector<SloEpisode> SloTracker::episodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return episodes_;
}

SloTrackerState SloTracker::export_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  SloTrackerState st;
  st.pms.reserve(pms_.size());
  for (const PerPm& p : pms_) {
    SloTrackerState::PerPm out;
    out.observed = p.observed;
    out.violated = p.violated;
    out.ring = p.ring;
    out.ring_observed = p.ring_observed;
    out.ring_violated = p.ring_violated;
    st.pms.push_back(std::move(out));
  }
  st.cur = cur_;
  st.cluster_ring = cluster_ring_;
  st.slots = slots_;
  st.fast_obs = fast_obs_;
  st.fast_viol = fast_viol_;
  st.slow_obs = slow_obs_;
  st.slow_viol = slow_viol_;
  st.cum_obs = cum_obs_;
  st.cum_viol = cum_viol_;
  st.breaches = breaches_;
  st.breaching = breaching_;
  return st;
}

void SloTracker::import_state(const SloTrackerState& st) {
  std::lock_guard<std::mutex> lock(mu_);
  BURSTQ_REQUIRE(st.pms.size() == pms_.size(),
                 "SloTracker state PM count mismatch");
  for (std::size_t j = 0; j < pms_.size(); ++j) {
    PerPm& p = pms_[j];
    p.observed = st.pms[j].observed;
    p.violated = st.pms[j].violated;
    p.ring = st.pms[j].ring;
    p.ring_observed = st.pms[j].ring_observed;
    p.ring_violated = st.pms[j].ring_violated;
  }
  cur_ = st.cur;
  cluster_ring_ = st.cluster_ring;
  slots_ = st.slots;
  fast_obs_ = st.fast_obs;
  fast_viol_ = st.fast_viol;
  slow_obs_ = st.slow_obs;
  slow_viol_ = st.slow_viol;
  cum_obs_ = st.cum_obs;
  cum_viol_ = st.cum_viol;
  breaches_ = st.breaches;
  breaching_ = st.breaching;
  // Episodes are an in-memory diagnostic; the durable schema cannot
  // carry them, so a restored tracker starts with an empty list.
  episodes_.clear();
}

}  // namespace burstq::obs
