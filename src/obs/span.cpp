#include "obs/span.h"

namespace burstq::obs {

namespace {

thread_local ScopedSpan* tls_current = nullptr;
thread_local std::size_t tls_depth = 0;

}  // namespace

ScopedSpan::ScopedSpan(SpanStat& stat) noexcept
    : stat_(&stat), parent_(tls_current), start_ns_(now_ns()) {
  tls_current = this;
  ++tls_depth;
}

ScopedSpan::~ScopedSpan() {
  const std::uint64_t end = now_ns();
  const std::uint64_t wall = end > start_ns_ ? end - start_ns_ : 0;
  const std::uint64_t self = wall > child_ns_ ? wall - child_ns_ : 0;
  stat_->record(wall, self);
  if (parent_ != nullptr) parent_->child_ns_ += wall;
  tls_current = parent_;
  --tls_depth;
}

std::size_t ScopedSpan::active_depth() noexcept { return tls_depth; }

}  // namespace burstq::obs
