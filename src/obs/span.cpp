#include "obs/span.h"

#include <atomic>

#include "obs/event_log.h"

namespace burstq::obs {

namespace {

thread_local ScopedSpan* tls_current = nullptr;
thread_local std::size_t tls_depth = 0;
/// Per-thread sampling sequence: one span in `sample_every` emits.
thread_local std::uint32_t tls_sample_seq = 0;

// Packed so the hot path (sampling off) pays exactly one relaxed load.
std::atomic<std::uint32_t> g_sample_every{0};
std::atomic<bool> g_virtual_clock{false};
/// Next span id minus one.  Ids are process-wide, start at 1, and are
/// unique within a recording session — a reader can treat an id as a
/// unique span identity even across threads.  `set_span_events`
/// restarts the counter so same-seed recordings are byte-identical
/// even within one process (ids and virtual ticks would otherwise
/// keep growing and shift every byte offset after the first run).
std::atomic<std::uint64_t> g_next_span_id{0};
/// Virtual-clock tick: one increment per span event emitted.  Restarts
/// with the id counter, for the same reason.
std::atomic<std::uint64_t> g_virtual_tick{0};
std::atomic<std::uint64_t> g_next_thread_index{0};

/// Small dense per-thread index (assigned on first emission, so the
/// main thread of a single-threaded run is always 0).
std::uint64_t thread_index() noexcept {
  thread_local const std::uint64_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

Counter& emitted_counter() {
  static Counter& c = metrics().counter("obs.span.events_emitted");
  return c;
}

Counter& dropped_counter() {
  static Counter& c = metrics().counter("obs.span.events_dropped");
  return c;
}

/// Event timestamp: the wall-clock value unless the virtual clock is on,
/// in which case each event gets the next global tick (strictly
/// increasing across the process, so begin < end always holds).
std::uint64_t event_time(std::uint64_t wall) noexcept {
  if (!g_virtual_clock.load(std::memory_order_relaxed)) return wall;
  return g_virtual_tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void set_span_events(SpanEventOptions opt) noexcept {
  g_virtual_clock.store(opt.virtual_clock, std::memory_order_relaxed);
  g_sample_every.store(opt.sample_every, std::memory_order_relaxed);
  // Each call opens a fresh recording session: ids restart at 1 and the
  // virtual clock at tick 1, so a second same-seed recording in the same
  // process emits byte-identical events (and therefore identical trace
  // offsets in derived reports).  The calling thread's sampling phase
  // restarts too; other threads' phases are their own.
  g_next_span_id.store(0, std::memory_order_relaxed);
  g_virtual_tick.store(0, std::memory_order_relaxed);
  tls_sample_seq = 0;
}

SpanEventOptions span_event_options() noexcept {
  SpanEventOptions opt;
  opt.sample_every = g_sample_every.load(std::memory_order_relaxed);
  opt.virtual_clock = g_virtual_clock.load(std::memory_order_relaxed);
  return opt;
}

ScopedSpan::ScopedSpan(SpanStat& stat) noexcept
    : stat_(&stat), parent_(tls_current), start_ns_(now_ns()) {
  tls_current = this;
  ++tls_depth;
}

ScopedSpan::ScopedSpan(SpanStat& stat, std::string_view name) noexcept
    : ScopedSpan(stat) {
  const std::uint32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every == 0) return;
  if (!events().enabled(EventLevel::kDetail)) return;
  if (++tls_sample_seq % every != 0) {
    dropped_counter().add(1);
    return;
  }
  event_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
  // Parent link: the nearest ancestor on this thread that itself emitted
  // (unsampled ancestors are transparent), so the recorded tree is
  // always well-formed whatever the sampling rate.
  std::uint64_t parent_id = 0;
  for (const ScopedSpan* p = parent_; p != nullptr; p = p->parent_) {
    if (p->event_id_ != 0) {
      parent_id = p->event_id_;
      break;
    }
  }
  events().emit(EventLevel::kDetail, "span.begin",
                {{"id", event_id_},
                 {"parent", parent_id},
                 {"thread", thread_index()},
                 {"name", name},
                 {"t_ns", event_time(start_ns_)}});
  emitted_counter().add(1);
}

ScopedSpan::~ScopedSpan() {
  const std::uint64_t end = now_ns();
  if (event_id_ != 0 && events().enabled(EventLevel::kDetail)) {
    events().emit(EventLevel::kDetail, "span.end",
                  {{"id", event_id_}, {"t_ns", event_time(end)}});
    emitted_counter().add(1);
  }
  const std::uint64_t wall = end > start_ns_ ? end - start_ns_ : 0;
  const std::uint64_t self = wall > child_ns_ ? wall - child_ns_ : 0;
  stat_->record(wall, self);
  if (parent_ != nullptr) parent_->child_ns_ += wall;
  tls_current = parent_;
  --tls_depth;
}

std::size_t ScopedSpan::active_depth() noexcept { return tls_depth; }

}  // namespace burstq::obs
