#include "obs/trace_codec.h"

#include <array>
#include <bit>
#include <cstring>

namespace burstq::obs::trace_detail {

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

bool get_f64(std::string_view data, std::size_t& pos, double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(data, pos, bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 1u << 16;
constexpr std::size_t kHashBits = 15;

std::uint32_t hash4(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::string lz_compress(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() / 2 + 16);
  std::array<std::size_t, 1u << kHashBits> head;
  head.fill(SIZE_MAX);

  std::size_t pos = 0;
  std::size_t literal_start = 0;
  const auto emit_group = [&](std::size_t match_len, std::size_t offset) {
    put_varint(out, pos - literal_start);
    out.append(raw.data() + literal_start, pos - literal_start);
    put_varint(out, match_len);
    if (match_len != 0) put_varint(out, offset);
  };

  while (pos + kMinMatch <= raw.size()) {
    const std::uint32_t h = hash4(raw.data() + pos);
    const std::size_t cand = head[h];
    head[h] = pos;
    if (cand != SIZE_MAX && pos - cand <= kMaxOffset &&
        std::memcmp(raw.data() + cand, raw.data() + pos, kMinMatch) == 0) {
      std::size_t len = kMinMatch;
      while (pos + len < raw.size() && raw[cand + len] == raw[pos + len])
        ++len;
      emit_group(len, pos - cand);
      // Index a couple of positions inside the match so back-to-back
      // repeats still find each other, without paying a full re-scan.
      const std::size_t next = pos + len;
      for (std::size_t p = pos + 1; p < next && p + kMinMatch <= raw.size();
           p += (len > 32 ? 7 : 1))
        head[hash4(raw.data() + p)] = p;
      pos = next;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  pos = raw.size();
  emit_group(0, 0);  // trailing literals, match_len 0 terminates
  return out;
}

bool lz_decompress(std::string_view compressed, std::size_t raw_size,
                   std::string& out) {
  out.clear();
  out.reserve(raw_size);
  std::size_t pos = 0;
  while (true) {
    std::uint64_t literal_len = 0;
    if (!get_varint(compressed, pos, literal_len)) return false;
    if (literal_len > compressed.size() - pos) return false;
    out.append(compressed.data() + pos,
               static_cast<std::size_t>(literal_len));
    pos += static_cast<std::size_t>(literal_len);
    std::uint64_t match_len = 0;
    if (!get_varint(compressed, pos, match_len)) return false;
    if (match_len == 0) break;
    std::uint64_t offset = 0;
    if (!get_varint(compressed, pos, offset)) return false;
    if (offset == 0 || offset > out.size()) return false;
    if (out.size() + match_len > raw_size) return false;
    // Overlapping copies are the RLE case; byte-by-byte is required.
    std::size_t from = out.size() - static_cast<std::size_t>(offset);
    for (std::uint64_t i = 0; i < match_len; ++i) out.push_back(out[from++]);
  }
  return pos == compressed.size() && out.size() == raw_size;
}

}  // namespace burstq::obs::trace_detail
