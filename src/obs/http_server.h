// Dependency-free blocking HTTP/1.1 server for the telemetry endpoints:
// POSIX sockets, one acceptor thread, loopback only, GET only, exact
// path routing, Connection: close.  Deliberately tiny — it serves
// /metrics, /healthz and /slo to a scraper, nothing more.
//
// Under -DBURSTQ_NO_OBS the implementation file compiles to nothing and
// this header provides an inline stub whose start() throws, so no socket
// code is linked into uninstrumented builds while callers still compile.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/error.h"

namespace burstq::obs {

struct HttpResponse {
  int status{200};
  std::string content_type{"text/plain; charset=utf-8"};
  std::string body;
};

/// Handlers receive the request path (query string stripped).
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

#ifndef BURSTQ_NO_OBS

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-match route.  Call before start().
  void handle(std::string path, HttpHandler handler);

  /// Per-connection read timeout (SO_RCVTIMEO).  A client that connects
  /// but never completes its request head gets 408 after this long
  /// instead of holding the acceptor thread forever.  Call before
  /// start(); defaults to 5000 ms.
  void set_read_timeout_ms(int ms);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// launches the acceptor thread.  Throws InvalidArgument when the
  /// address cannot be bound or the server is already running.
  void start(std::uint16_t port);

  /// Stops accepting, joins the acceptor thread.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const;
  /// Bound port; 0 before start().
  [[nodiscard]] std::uint16_t port() const;
  /// Requests served since start (for tests and exporter self-metrics).
  [[nodiscard]] std::uint64_t requests_served() const;

 private:
  struct Impl;
  Impl* impl_{nullptr};  ///< allocated on start(), freed on stop()
  std::map<std::string, HttpHandler> routes_;
  int read_timeout_ms_{5000};
};

#else  // BURSTQ_NO_OBS

class HttpServer {
 public:
  void handle(const std::string&, HttpHandler) {}
  void set_read_timeout_ms(int) {}
  [[noreturn]] void start(std::uint16_t) {
    throw InvalidArgument(
        "telemetry HTTP server unavailable: built with BURSTQ_NO_OBS");
  }
  void stop() {}
  [[nodiscard]] bool running() const { return false; }
  [[nodiscard]] std::uint16_t port() const { return 0; }
  [[nodiscard]] std::uint64_t requests_served() const { return 0; }
};

#endif  // BURSTQ_NO_OBS

}  // namespace burstq::obs
