// Byte-level codecs shared by the BTRC trace writer and reader
// (obs/trace.h): LEB128 varints, zigzag signed mapping, little-endian
// fixed-width scalars, CRC-32 (IEEE 802.3) for block integrity, and a
// small dependency-free LZ77 byte compressor for the optional block
// compression.  Internal to the obs layer — the on-disk layout these
// primitives produce is documented in docs/TRACE_FORMAT.md.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace burstq::obs::trace_detail {

// ---- varints ---------------------------------------------------------
//
// The scalar put/get primitives live in the header: the reader decodes
// one varint per value, so a call per byte group would dominate decode
// throughput.

/// Appends `v` as an LEB128 varint (1..10 bytes).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Reads a varint at `pos`, advancing it.  Returns false on truncation
/// or a varint longer than 10 bytes.
inline bool get_varint(std::string_view data, std::size_t& pos,
                       std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= data.size()) return false;
    const auto byte = static_cast<unsigned char>(data[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // > 10 bytes: malformed
}

/// Maps signed integers onto unsigned so small magnitudes (either sign)
/// encode short: 0,-1,1,-2,2 ... -> 0,1,2,3,4.
constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// ---- fixed-width little-endian scalars -------------------------------

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline bool get_u32(std::string_view data, std::size_t& pos,
                    std::uint32_t& v) {
  if (pos + 4 > data.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos++]))
         << (8 * i);
  return true;
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline bool get_u64(std::string_view data, std::size_t& pos,
                    std::uint64_t& v) {
  if (pos + 8 > data.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos++]))
         << (8 * i);
  return true;
}

/// Doubles travel as their IEEE-754 bit pattern (little-endian u64), so
/// a recorded value reads back bit-identical.
void put_f64(std::string& out, double v);
bool get_f64(std::string_view data, std::size_t& pos, double& v);

// ---- CRC-32 ----------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — the same
/// polynomial zlib and PNG use, computed table-free-of-deps in-tree.
std::uint32_t crc32(std::string_view data);

// ---- block compression -----------------------------------------------

/// Greedy LZ77 over a 64 KiB window with a 4-byte hash chain.  The token
/// stream is self-delimiting: (literal_len varint, literal bytes,
/// match_len varint, match_offset varint) repeated; a trailing group may
/// omit the match (match_len 0 terminates).  Deterministic: identical
/// input yields identical output.
std::string lz_compress(std::string_view raw);

/// Inflates `compressed` into `out` (cleared first).  `raw_size` is the
/// expected size from the block header; returns false on malformed
/// input or a size mismatch — callers treat that as corruption.
bool lz_decompress(std::string_view compressed, std::size_t raw_size,
                   std::string& out);

}  // namespace burstq::obs::trace_detail
