// Offline span-tree analytics over recorded traces.
//
// SpanTreeBuilder consumes a recorded event stream (span.begin/span.end
// plus the surrounding simulation events) in file order and
// reconstructs the sampled call tree:
//
//   - inclusive/exclusive nanoseconds per span name,
//   - per-slot attribution: a span belongs to the simulation slot that
//     was being processed when it began (the slot after the last
//     `slot.obs`; -1 = before the segment's `sim.config`, i.e. setup),
//   - the critical path per slot: for each slot's most expensive root
//     span, the greedy max-inclusive-time descent through its children,
//   - collapsed stacks ("a;b;c <exclusive_ns>") for flamegraph.pl and
//     the built-in SVG renderer.
//
// Everything is a single streaming pass (scan_events) — BTRC traces are
// processed block-by-block, never fully decoded into memory.  All
// output orderings are total, so the same trace renders byte-identical
// reports; with the virtual span clock (obs/span.h) two same-seed runs
// do too.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/jsonl.h"

namespace burstq::obs {

struct SpanNameRow {
  std::string name;
  std::uint64_t calls{0};
  std::uint64_t incl_ns{0};  ///< wall time, children included
  std::uint64_t excl_ns{0};  ///< self time
  std::uint64_t max_incl_ns{0};
};

struct SlotProfileRow {
  std::int64_t slot{-1};  ///< -1 = segment setup (before sim.config ends)
  std::uint64_t spans{0};
  std::uint64_t root_incl_ns{0};  ///< summed inclusive time of root spans
  std::uint64_t critical_ns{0};   ///< most expensive root span
  std::string critical_path;      ///< its greedy max-child descent, ";"-joined
};

struct CollapsedStack {
  std::string stack;  ///< "root;child;leaf"
  std::uint64_t self_ns{0};
};

struct SpanProfileOptions {
  std::size_t top{24};  ///< rows rendered in the name and slot tables
};

struct SpanProfile {
  std::uint64_t events{0};          ///< all trace events consumed
  std::uint64_t span_events{0};     ///< span.begin + span.end among them
  std::uint64_t spans{0};           ///< completed (begin+end matched)
  std::uint64_t unmatched_ends{0};  ///< span.end with no open begin
  std::uint64_t unclosed{0};        ///< span.begin with no end (truncation)
  std::vector<SpanNameRow> by_name;       ///< excl_ns desc, then name asc
  std::vector<SlotProfileRow> slots;      ///< slot asc
  std::vector<CollapsedStack> collapsed;  ///< stack asc

  /// Deterministic plain-text report (the `trace profile` output).
  [[nodiscard]] std::string render(const SpanProfileOptions& opt = {}) const;
  /// flamegraph.pl input: one "stack self_ns" line per collapsed stack.
  [[nodiscard]] std::string render_collapsed() const;
};

/// Streaming builder; feed every event in file order, then finish().
class SpanTreeBuilder {
 public:
  /// Optional per-completed-span callback — `slo explain` aggregates
  /// spans into breach windows with this without a second pass.
  using SpanHook = std::function<void(std::string_view name,
                                      std::int64_t slot,
                                      std::uint64_t incl_ns,
                                      std::uint64_t excl_ns)>;

  void set_hook(SpanHook hook) { hook_ = std::move(hook); }

  void add(const RecordedEvent& ev);

  /// Finalizes counters and sorted tables.  The builder is spent.
  [[nodiscard]] SpanProfile finish();

 private:
  struct Frame {
    std::string name;
    std::uint64_t begin_t{0};
    std::int64_t slot{-1};
    std::uint64_t parent{0};
    std::uint64_t child_ns{0};
    std::uint64_t best_child_incl{0};
    std::string best_child_path;
    std::string stack;
  };

  struct NameAgg {
    std::uint64_t calls{0};
    std::uint64_t incl_ns{0};
    std::uint64_t excl_ns{0};
    std::uint64_t max_incl_ns{0};
  };

  std::unordered_map<std::uint64_t, Frame> open_;
  std::unordered_map<std::string, NameAgg> names_;
  std::unordered_map<std::int64_t, SlotProfileRow> slots_;
  std::unordered_map<std::string, std::uint64_t> collapsed_;
  SpanHook hook_;
  std::int64_t cur_slot_{-1};
  std::uint64_t events_{0};
  std::uint64_t span_events_{0};
  std::uint64_t spans_{0};
  std::uint64_t unmatched_ends_{0};
};

/// One-call convenience: streaming scan + SpanTreeBuilder.
SpanProfile profile_trace(const std::string& path);

/// Renders collapsed stacks as a self-contained SVG flame graph
/// (icicle layout, deterministic output).  `title` is shown in the
/// header row; pass the trace name.
std::string render_flame_svg(const std::vector<CollapsedStack>& stacks,
                             const std::string& title);

}  // namespace burstq::obs
