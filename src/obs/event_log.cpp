#include "obs/event_log.h"

#include <cmath>
#include <filesystem>

#include "common/csv.h"
#include "common/error.h"
#include "obs/registry.h"
#include "obs/trace.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace burstq::obs {

EventLevel parse_event_level(std::string_view text) {
  if (text == "off" || text == "0") return EventLevel::kOff;
  if (text == "decisions" || text == "1") return EventLevel::kDecisions;
  if (text == "detail" || text == "2") return EventLevel::kDetail;
  throw InvalidArgument("unknown event level: " + std::string(text) +
                        " (expected off|decisions|detail)");
}

std::string_view format_name(EventFormat format) noexcept {
  switch (format) {
    case EventFormat::kJsonl: return "jsonl";
    case EventFormat::kCsv: return "csv";
    case EventFormat::kBinary: return "btrc";
  }
  return "?";
}

EventFormat event_format_from_path(std::string_view path) noexcept {
  if (path.ends_with(".btrc")) return EventFormat::kBinary;
  if (path.ends_with(".csv")) return EventFormat::kCsv;
  return EventFormat::kJsonl;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string value_text(const Field& f) {
  switch (f.tag) {
    case Field::Tag::kInt: return std::to_string(f.i);
    case Field::Tag::kUint: return std::to_string(f.u);
    case Field::Tag::kBool: return f.b ? "true" : "false";
    case Field::Tag::kDouble:
      // csv_format is round-trippable; JSON has no NaN/inf literals.
      return std::isfinite(f.d) ? csv_format(f.d) : "null";
    case Field::Tag::kString: return std::string(f.s);
  }
  return {};
}

}  // namespace

EventLog::EventLog() = default;

EventLog::~EventLog() { close(); }

void EventLog::open(const std::string& path, EventFormat format,
                    EventLevel level, bool compress) {
  const std::scoped_lock lock(mu_);
  if (out_.is_open()) out_.close();
  if (writer_ != nullptr) {
    writer_->close();
    sync_trace_counters_locked();
    writer_.reset();
  }
  format_ = format;
  if (format_ == EventFormat::kBinary) {
    TraceWriteOptions opts;
    opts.compress = compress;
    writer_ = std::make_unique<TraceWriter>(path, opts);
  } else {
    out_.open(path, std::ios::out | std::ios::trunc);
    BURSTQ_REQUIRE(out_.is_open(), "cannot open event log: " + path);
  }
  next_id_ = 0;
  written_.store(0, std::memory_order_relaxed);
  path_ = path;
  if (format_ == EventFormat::kCsv) out_ << "id,kind,key,value\n";

  // Recorder self-metrics, one counter family per sink format.
  sink_format_name_ = std::string(format_name(format_));
  bytes_counter_ =
      &metrics().counter("obs.trace.bytes_written." + sink_format_name_);
  events_counter_ =
      &metrics().counter("obs.trace.events_written." + sink_format_name_);
  blocks_counter_ =
      format_ == EventFormat::kBinary
          ? &metrics().counter("obs.trace.blocks_flushed.btrc")
          : nullptr;
  synced_bytes_ = 0;
  synced_blocks_ = 0;
  if (format_ == EventFormat::kBinary) sync_trace_counters_locked();

  level_.store(static_cast<int>(level), std::memory_order_release);
}

// Mirrors the TraceWriter's running totals into the obs.trace.* counters
// (delta since the last sync, so reopen/close never double-counts).
void EventLog::sync_trace_counters_locked() {
  if (writer_ == nullptr || bytes_counter_ == nullptr) return;
  const std::uint64_t bytes = writer_->bytes_written();
  const std::uint64_t blocks = writer_->blocks_flushed();
  if (bytes > synced_bytes_) bytes_counter_->add(bytes - synced_bytes_);
  if (blocks_counter_ != nullptr && blocks > synced_blocks_)
    blocks_counter_->add(blocks - synced_blocks_);
  synced_bytes_ = bytes;
  synced_blocks_ = blocks;
}

void EventLog::close() {
  const std::scoped_lock lock(mu_);
  level_.store(static_cast<int>(EventLevel::kOff),
               std::memory_order_release);
  if (out_.is_open()) {
    out_.flush();
    fsync_locked();
    out_.close();
  }
  if (writer_ != nullptr) {
    writer_->flush();
    fsync_locked();
    writer_->close();
    sync_trace_counters_locked();
    writer_.reset();
  }
}

void EventLog::flush() {
  const std::scoped_lock lock(mu_);
  if (out_.is_open()) out_.flush();
  if (writer_ != nullptr) {
    writer_->flush();
    sync_trace_counters_locked();
  }
  if (out_.is_open() || writer_ != nullptr) fsync_locked();
}

void EventLog::set_fsync(bool on) {
  const std::scoped_lock lock(mu_);
  fsync_ = on;
}

// Durability for the trace itself (--obs-fsync): the C++ stream has no
// portable fd, so sync through a short-lived side descriptor on the same
// path.  Only runs on explicit flush()/close(), which are rare.
void EventLog::fsync_locked() {
#if !defined(_WIN32)
  if (!fsync_ || path_.empty()) return;
  const int fd = ::open(path_.c_str(), O_WRONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
  ++fsyncs_;
  metrics().counter("obs.trace.fsyncs").add(1);
#endif
}

EventLog::Checkpoint EventLog::checkpoint() {
  const std::scoped_lock lock(mu_);
  Checkpoint cp;
  if (writer_ != nullptr) {
    writer_->flush();  // a block boundary: everything on disk, not buffered
    sync_trace_counters_locked();
    cp.valid = true;
    cp.format = EventFormat::kBinary;
    cp.path = path_;
    cp.bytes = writer_->bytes_written();
    cp.blocks = writer_->blocks_flushed();
  } else if (out_.is_open()) {
    out_.flush();
    cp.valid = true;
    cp.format = format_;
    cp.path = path_;
    cp.bytes = static_cast<std::uint64_t>(out_.tellp());
    cp.next_id = next_id_;
  } else {
    return cp;  // no sink open: callers treat the checkpoint as absent
  }
  cp.events = written_.load(std::memory_order_relaxed);
  return cp;
}

void EventLog::rewind(const Checkpoint& cp) {
  const std::scoped_lock lock(mu_);
  if (!cp.valid) return;
  BURSTQ_REQUIRE(cp.path == path_,
                 "rewind target is not the open sink: " + cp.path);
  BURSTQ_REQUIRE(cp.format == format_, "rewind across sink formats");
  if (format_ == EventFormat::kBinary) {
    BURSTQ_REQUIRE(writer_ != nullptr, "rewind: no BTRC writer open");
    const TraceWriteOptions opts = writer_->options();
    writer_->abandon();  // buffered tail is exactly what we are discarding
    writer_.reset();
    std::filesystem::resize_file(path_, cp.bytes);
    writer_ =
        std::make_unique<TraceWriter>(path_, opts, TraceWriter::kResume);
    synced_bytes_ = writer_->bytes_written();
    synced_blocks_ = writer_->blocks_flushed();
  } else {
    BURSTQ_REQUIRE(out_.is_open(), "rewind: no text sink open");
    out_.flush();
    out_.close();
    std::filesystem::resize_file(path_, cp.bytes);
    out_.open(path_, std::ios::out | std::ios::app);
    BURSTQ_REQUIRE(out_.is_open(),
                   "rewind: cannot reopen event log: " + path_);
    next_id_ = cp.next_id;
  }
  written_.store(cp.events, std::memory_order_relaxed);
  metrics().counter("obs.trace.rewinds").add(1);
}

void EventLog::emit(EventLevel level, std::string_view kind,
                    std::initializer_list<Field> fields) {
  if (!enabled(level)) return;

  // Format outside the lock; only the write is serialized.
  std::string line;
  if (format_ == EventFormat::kJsonl) {
    line = "{\"kind\":\"" + json_escape(kind) + "\"";
    for (const Field& f : fields) {
      line += ",\"";
      line += json_escape(f.key);
      line += "\":";
      if (f.tag == Field::Tag::kString) {
        line += '"';
        line += json_escape(f.s);
        line += '"';
      } else {
        line += value_text(f);
      }
    }
    line += "}\n";
  }

  const std::scoped_lock lock(mu_);
  if (format_ == EventFormat::kBinary) {
    if (writer_ == nullptr) return;
    writer_->append(kind, fields);
    sync_trace_counters_locked();
  } else {
    if (!out_.is_open()) return;
    if (format_ == EventFormat::kCsv) {
      const std::uint64_t id = next_id_++;
      const std::string id_kind =
          std::to_string(id) + ',' + csv_escape(kind) + ',';
      line = id_kind + ",\n";
      for (const Field& f : fields)
        line += id_kind + csv_escape(f.key) + ',' +
                csv_escape(value_text(f)) + '\n';
    }
    out_ << line;
    if (bytes_counter_ != nullptr) bytes_counter_->add(line.size());
  }
  if (events_counter_ != nullptr) events_counter_->add(1);
  written_.fetch_add(1, std::memory_order_relaxed);
}

void EventLog::set_run_label(std::string label) {
  const std::scoped_lock lock(mu_);
  run_label_ = std::move(label);
}

std::string EventLog::run_label() const {
  const std::scoped_lock lock(mu_);
  return run_label_;
}

std::string EventLog::sink_format_name() const {
  const std::scoped_lock lock(mu_);
  return sink_format_name_;
}

EventLog& events() {
  static EventLog* instance = new EventLog();  // never freed
  return *instance;
}

}  // namespace burstq::obs
