#include "obs/event_log.h"

#include <cmath>

#include "common/csv.h"
#include "common/error.h"

namespace burstq::obs {

EventLevel parse_event_level(std::string_view text) {
  if (text == "off" || text == "0") return EventLevel::kOff;
  if (text == "decisions" || text == "1") return EventLevel::kDecisions;
  if (text == "detail" || text == "2") return EventLevel::kDetail;
  throw InvalidArgument("unknown event level: " + std::string(text) +
                        " (expected off|decisions|detail)");
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string value_text(const Field& f) {
  switch (f.tag) {
    case Field::Tag::kInt: return std::to_string(f.i);
    case Field::Tag::kUint: return std::to_string(f.u);
    case Field::Tag::kBool: return f.b ? "true" : "false";
    case Field::Tag::kDouble:
      // csv_format is round-trippable; JSON has no NaN/inf literals.
      return std::isfinite(f.d) ? csv_format(f.d) : "null";
    case Field::Tag::kString: return std::string(f.s);
  }
  return {};
}

}  // namespace

EventLog::~EventLog() { close(); }

void EventLog::open(const std::string& path, EventFormat format,
                    EventLevel level) {
  const std::scoped_lock lock(mu_);
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::out | std::ios::trunc);
  BURSTQ_REQUIRE(out_.is_open(), "cannot open event log: " + path);
  format_ = format;
  next_id_ = 0;
  written_.store(0, std::memory_order_relaxed);
  if (format_ == EventFormat::kCsv) out_ << "id,kind,key,value\n";
  level_.store(static_cast<int>(level), std::memory_order_release);
}

void EventLog::close() {
  const std::scoped_lock lock(mu_);
  level_.store(static_cast<int>(EventLevel::kOff),
               std::memory_order_release);
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

void EventLog::flush() {
  const std::scoped_lock lock(mu_);
  if (out_.is_open()) out_.flush();
}

void EventLog::emit(EventLevel level, std::string_view kind,
                    std::initializer_list<Field> fields) {
  if (!enabled(level)) return;

  // Format outside the lock; only the write is serialized.
  std::string line;
  if (format_ == EventFormat::kJsonl) {
    line = "{\"kind\":\"" + json_escape(kind) + "\"";
    for (const Field& f : fields) {
      line += ",\"";
      line += json_escape(f.key);
      line += "\":";
      if (f.tag == Field::Tag::kString) {
        line += '"';
        line += json_escape(f.s);
        line += '"';
      } else {
        line += value_text(f);
      }
    }
    line += "}\n";
  }

  const std::scoped_lock lock(mu_);
  if (!out_.is_open()) return;
  if (format_ == EventFormat::kJsonl) {
    out_ << line;
  } else {
    const std::uint64_t id = next_id_++;
    out_ << id << ',' << csv_escape(kind) << ",,\n";
    for (const Field& f : fields)
      out_ << id << ',' << csv_escape(kind) << ',' << csv_escape(f.key)
           << ',' << csv_escape(value_text(f)) << '\n';
  }
  written_.fetch_add(1, std::memory_order_relaxed);
}

void EventLog::set_run_label(std::string label) {
  const std::scoped_lock lock(mu_);
  run_label_ = std::move(label);
}

std::string EventLog::run_label() const {
  const std::scoped_lock lock(mu_);
  return run_label_;
}

EventLog& events() {
  static EventLog* instance = new EventLog();  // never freed
  return *instance;
}

}  // namespace burstq::obs
