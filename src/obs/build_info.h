// Build identity for /healthz and the obs.build.info gauge family.
//
// The version string is injected by CMake (-DBURSTQ_VERSION="x.y.z"
// from the project() version); a bare compile without it reports
// "0.0.0-dev" so the header stays usable in ad-hoc builds.

#pragma once

#include <string>
#include <string_view>

namespace burstq::obs {

/// Project version, e.g. "1.0.0".
[[nodiscard]] std::string_view build_version() noexcept;

/// True when the binary was built with instrumentation (not
/// -DBURSTQ_NO_OBS).
[[nodiscard]] bool build_obs_enabled() noexcept;

/// Deterministic key=value lines describing the build:
///   build.version=1.0.0
///   build.obs=1
///   build.trace_format_version=1
[[nodiscard]] std::string build_info_text();

/// Publishes the obs.build.* gauge family into the metrics registry:
/// obs.build.info (always 1), obs.build.obs_enabled, and
/// obs.build.trace_format_version.  Idempotent.
void register_build_info_metrics();

}  // namespace burstq::obs
