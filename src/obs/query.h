// Trace query engine: a small filter-expression language over recorded
// events, plus the streaming scan that powers it.
//
// Expression grammar (comma = AND):
//
//   kind=slot.obs, t>=57, t<=70        # slot range of a breach window
//   kind=migration, ok=true
//   kind=span.end, t_ns>1000
//
// Each clause is `key op value` with op one of = != < <= > >=.  `kind`
// matches the event kind (equality only); any other key names a field.
// Values that parse as numbers compare numerically (bools count as
// 0/1, string-typed digits from CSV logs are coerced); anything else
// compares as text with =/!= only.  A clause naming an absent field
// never matches — `kind=slot.obs, viol=` is not expressible and does
// not need to be.
//
// scan_events() is the one streaming walk over a recorded trace shared
// by the query CLI, the profiler (obs/profile.h), `slo explain`, and
// the harness invariant runner: JSONL line-by-line, BTRC block-by-block
// (never the whole file in memory), each event delivered with the
// byte-offset pointer `trace head|tail --at-offset` can resolve — the
// start of its JSONL line, or its containing BTRC block's boundary.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/jsonl.h"

namespace burstq::obs {

enum class QueryOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct QueryClause {
  std::string key;
  QueryOp op{QueryOp::kEq};
  std::string text;    ///< raw value text
  double num{0.0};     ///< numeric value when `numeric`
  bool numeric{false};
};

/// A parsed conjunction of clauses.  Default-constructed = match all.
struct Query {
  std::vector<QueryClause> clauses;

  /// Parses a comma-separated clause list; throws InvalidArgument on an
  /// empty clause, a missing operator, or an ordering operator applied
  /// to `kind`.
  static Query parse(std::string_view expr);

  [[nodiscard]] bool matches(const RecordedEvent& ev) const;
  [[nodiscard]] bool empty() const { return clauses.empty(); }
};

/// Visitor for scan_events: (event, byte offset, global event index).
/// Return false to stop the scan early.
using EventScanFn =
    std::function<bool(const RecordedEvent&, std::uint64_t, std::uint64_t)>;

/// Streams a recorded trace in whatever format it actually is, calling
/// `fn` once per event in file order.  Offsets are resolvable pointers
/// for JSONL (line start) and BTRC (containing block's boundary); long
/// CSV has no stable per-event offsets, so its events arrive with
/// offset 0.  Returns the number of events visited.  Throws
/// InvalidArgument on unreadable or corrupt input.
std::uint64_t scan_events(const std::string& path, const EventScanFn& fn);

}  // namespace burstq::obs
