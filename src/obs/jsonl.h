// Read side of the flight recorder: parses the JSONL event stream the
// EventLog writes back into flat records.
//
// The grammar is deliberately the subset EventLog emits — one flat JSON
// object per line, scalar values only (numbers, strings, booleans,
// null).  Nested objects/arrays are rejected; this is a replay format,
// not a general JSON library.

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace burstq::obs {

/// One parsed field value.  Members are ordered so the two one-byte
/// discriminants pack into the same word (48 bytes instead of 56 —
/// readers materialise millions of these).
struct EventValue {
  enum class Tag : std::uint8_t { kNumber, kString, kBool, kNull };
  double num{0.0};
  std::string str;
  Tag tag{Tag::kNull};
  bool b{false};
};

/// Small-vector of (key, value) pairs backing RecordedEvent::fields:
/// contiguous storage with inline capacity for the common case (no
/// recorder kind today carries more than five fields), spilling to the
/// heap beyond that.  The readers construct one RecordedEvent per trace
/// event, so skipping the per-event heap allocation is what keeps
/// replay decode-bound rather than allocator-bound.  Deliberately
/// minimal: just the vector surface the readers, replay, and trace
/// tools use.
class FieldVec {
 public:
  using value_type = std::pair<std::string, EventValue>;
  using iterator = value_type*;
  using const_iterator = const value_type*;

  FieldVec() noexcept : data_(inline_data()) {}
  FieldVec(const FieldVec& other) : FieldVec() {
    reserve(other.size_);
    for (const value_type& v : other) emplace_back(v.first, v.second);
  }
  FieldVec(FieldVec&& other) noexcept : FieldVec() { take(other); }
  FieldVec& operator=(const FieldVec& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const value_type& v : other) emplace_back(v.first, v.second);
    }
    return *this;
  }
  FieldVec& operator=(FieldVec&& other) noexcept {
    if (this != &other) {
      release();
      take(other);
    }
    return *this;
  }
  ~FieldVec() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }
  [[nodiscard]] value_type& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const value_type& operator[](std::size_t i) const {
    return data_[i];
  }
  [[nodiscard]] value_type& back() { return data_[size_ - 1]; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  template <typename... Args>
  value_type& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(cap_ * 2);
    value_type* slot = ::new (static_cast<void*>(data_ + size_))
        value_type(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void clear() noexcept {
    for (std::size_t i = size_; i > 0; --i) data_[i - 1].~value_type();
    size_ = 0;
  }

 private:
  static constexpr std::size_t kInlineCapacity = 2;

  [[nodiscard]] value_type* inline_data() noexcept {
    return reinterpret_cast<value_type*>(inline_);
  }
  [[nodiscard]] bool spilled() const noexcept {
    return data_ != reinterpret_cast<const value_type*>(inline_);
  }

  // Leaves `other` empty-and-inline; assumes *this* is empty-and-inline.
  void take(FieldVec& other) noexcept {
    if (other.spilled()) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.cap_ = kInlineCapacity;
      other.size_ = 0;
    } else {
      for (std::size_t i = 0; i < other.size_; ++i)
        ::new (static_cast<void*>(data_ + i))
            value_type(std::move(other.data_[i]));
      size_ = other.size_;
      other.clear();
    }
  }

  void release() noexcept {
    clear();
    if (spilled()) {
      ::operator delete(static_cast<void*>(data_));
      data_ = inline_data();
      cap_ = kInlineCapacity;
    }
  }

  void grow(std::size_t n) {
    const std::size_t new_cap = n > cap_ * 2 ? n : cap_ * 2;
    auto* fresh = static_cast<value_type*>(
        ::operator new(new_cap * sizeof(value_type)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) value_type(std::move(data_[i]));
      data_[i].~value_type();
    }
    if (spilled()) ::operator delete(static_cast<void*>(data_));
    data_ = fresh;
    cap_ = new_cap;
  }

  alignas(value_type) unsigned char inline_[kInlineCapacity *
                                            sizeof(value_type)];
  value_type* data_;
  std::size_t size_{0};
  std::size_t cap_{kInlineCapacity};
};

/// One parsed event line.
struct RecordedEvent {
  std::string kind;
  FieldVec fields;  // file order

  [[nodiscard]] const EventValue* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
  /// Numeric field, or `fallback` when absent/non-numeric.
  [[nodiscard]] double num(std::string_view key, double fallback = 0.0) const;
  /// Numeric field rounded to integer.
  [[nodiscard]] std::int64_t integer(std::string_view key,
                                     std::int64_t fallback = 0) const;
  /// String field, or "" when absent/non-string.
  [[nodiscard]] std::string_view str(std::string_view key) const;
  /// Boolean field, or `fallback` when absent/non-bool.
  [[nodiscard]] bool boolean(std::string_view key, bool fallback = false)
      const;
};

/// Parses one JSONL line.  Returns nullopt on malformed input (and sets
/// `*error` when non-null).  Blank lines return nullopt with empty error.
std::optional<RecordedEvent> parse_event_line(std::string_view line,
                                              std::string* error = nullptr);

/// Reads a whole JSONL event file.  Throws InvalidArgument when the file
/// cannot be opened or any non-blank line is malformed.
std::vector<RecordedEvent> read_events_jsonl(const std::string& path);

/// Reads a long-format CSV event file (`id,kind,key,value`, RFC 4180
/// quoting) back into events: rows sharing an id become one event, the
/// key-less first row carries the kind.  CSV is lossy about types — every
/// value comes back as EventValue::Tag::kString — so this feeds ad-hoc
/// analysis and round-trip tests, not replay.  Throws InvalidArgument on
/// open failure or malformed rows.
std::vector<RecordedEvent> read_events_csv(const std::string& path);

}  // namespace burstq::obs
