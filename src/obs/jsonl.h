// Read side of the flight recorder: parses the JSONL event stream the
// EventLog writes back into flat records.
//
// The grammar is deliberately the subset EventLog emits — one flat JSON
// object per line, scalar values only (numbers, strings, booleans,
// null).  Nested objects/arrays are rejected; this is a replay format,
// not a general JSON library.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace burstq::obs {

/// One parsed field value.
struct EventValue {
  enum class Tag { kNumber, kString, kBool, kNull };
  Tag tag{Tag::kNull};
  double num{0.0};
  std::string str;
  bool b{false};
};

/// One parsed event line.
struct RecordedEvent {
  std::string kind;
  std::vector<std::pair<std::string, EventValue>> fields;  // file order

  [[nodiscard]] const EventValue* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
  /// Numeric field, or `fallback` when absent/non-numeric.
  [[nodiscard]] double num(std::string_view key, double fallback = 0.0) const;
  /// Numeric field rounded to integer.
  [[nodiscard]] std::int64_t integer(std::string_view key,
                                     std::int64_t fallback = 0) const;
  /// String field, or "" when absent/non-string.
  [[nodiscard]] std::string_view str(std::string_view key) const;
  /// Boolean field, or `fallback` when absent/non-bool.
  [[nodiscard]] bool boolean(std::string_view key, bool fallback = false)
      const;
};

/// Parses one JSONL line.  Returns nullopt on malformed input (and sets
/// `*error` when non-null).  Blank lines return nullopt with empty error.
std::optional<RecordedEvent> parse_event_line(std::string_view line,
                                              std::string* error = nullptr);

/// Reads a whole JSONL event file.  Throws InvalidArgument when the file
/// cannot be opened or any non-blank line is malformed.
std::vector<RecordedEvent> read_events_jsonl(const std::string& path);

}  // namespace burstq::obs
