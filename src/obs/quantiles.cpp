#include "obs/quantiles.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace burstq::obs {

std::size_t sketch_bucket_of(std::uint64_t v) noexcept {
  if (v < 2 * kSketchSubBuckets) return static_cast<std::size_t>(v);
  const auto width = static_cast<std::size_t>(std::bit_width(v));
  if (width > kSketchMaxWidth) return kSketchBuckets - 1;
  // Octave 0 holds widths kSketchSubBits + 2; the sub-bucket is the
  // kSketchSubBits bits right below the leading one.
  const std::size_t octave = width - (kSketchSubBits + 2);
  const std::size_t sub =
      static_cast<std::size_t>(v >> (width - 1 - kSketchSubBits)) &
      (kSketchSubBuckets - 1);
  return 2 * kSketchSubBuckets + octave * kSketchSubBuckets + sub;
}

std::uint64_t sketch_bucket_lower(std::size_t b) noexcept {
  if (b < 2 * kSketchSubBuckets) return b;
  const std::size_t octave = (b - 2 * kSketchSubBuckets) / kSketchSubBuckets;
  const std::size_t sub = (b - 2 * kSketchSubBuckets) % kSketchSubBuckets;
  // Width w = octave + kSketchSubBits + 2; value = (2^kSubBits + sub)
  // shifted so its bit width is w.
  return (static_cast<std::uint64_t>(kSketchSubBuckets + sub))
         << (octave + 1);
}

std::uint64_t sketch_bucket_upper(std::size_t b) noexcept {
  if (b < 2 * kSketchSubBuckets) return b;
  if (b >= kSketchBuckets - 1) return UINT64_MAX;
  return sketch_bucket_lower(b + 1) - 1;
}

double SketchSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kSketchBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      if (b < 2 * kSketchSubBuckets)  // exact small values
        return static_cast<double>(b);
      const double lo = static_cast<double>(sketch_bucket_lower(b));
      const double hi = static_cast<double>(sketch_bucket_upper(b));
      const double mid = lo + (hi - lo) / 2.0;
      // The true observation lies in [lo, hi] and also in [min, max].
      return std::clamp(mid, static_cast<double>(min),
                        static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

}  // namespace burstq::obs
