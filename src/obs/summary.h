// Per-run observability summary: a human-readable digest of the metrics
// registry (top spans by time, counters, gauges, histogram quantiles)
// plus a machine-readable CSV dump, emitted by the bench harnesses next
// to their figure CSVs and by the CLI tools on request.

#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace burstq::obs {

struct SummaryOptions {
  std::size_t top_spans{12};     ///< spans shown, sorted by total time desc
  std::size_t top_counters{20};  ///< counters shown, sorted by value desc
  std::string title{"observability summary"};
};

/// Renders `snap` as console tables.  Prints a one-line note instead when
/// the snapshot is empty (e.g. under -DBURSTQ_NO_OBS).
void print_summary(std::ostream& os, const MetricsSnapshot& snap,
                   const SummaryOptions& options = {});

/// Scrapes the global registry and prints it.
void print_summary(std::ostream& os, const SummaryOptions& options = {});

/// Dumps every metric in `snap` as CSV rows:
///   type,name,value,calls,total_ns,self_ns,mean,p50,p95,p99,max
/// (columns unused by a metric type are left empty).  Histogram
/// quantiles come from the streaming sketch (obs/quantiles.h).
/// `meta` rows, when given, lead the dump as `meta,<key>,<value>,...` so
/// a summary is self-describing (e.g. which trace format the run
/// recorded — BENCH comparisons across formats need this).
void write_summary_csv(
    const std::string& path, const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, std::string>>& meta = {});

}  // namespace burstq::obs
