// Prometheus text-format (exposition format 0.0.4) rendering of a
// MetricsSnapshot, plus a small standalone validator used by tests and
// the CI smoke job (no external dependencies).
//
// Mapping:
//   counter  c            -> <prefix><name>_total            (counter)
//   gauge    g            -> <prefix><name>                  (gauge)
//   histogram h           -> <prefix><name>                  (histogram)
//                             cumulative _bucket{le="..."} over the
//                             coarse log2 buckets, plus _sum / _count
//                          -> <prefix><name>_quantiles       (summary)
//                             {quantile="0.5"|"0.95"|"0.99"} from the
//                             streaming sketch
//   span     s            -> <prefix><name>_calls_total      (counter)
//                          -> <prefix><name>_wall_seconds_total
//                          -> <prefix><name>_self_seconds_total
//                          -> <prefix><name>_max_seconds     (gauge)
//
// Dots (and any other character outside [a-zA-Z0-9_:]) in burstq metric
// names become underscores: "mapcal.solve" -> "burstq_mapcal_solve".

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace burstq::obs {

struct PrometheusOptions {
  std::string prefix{"burstq_"};
  /// Quantiles rendered into each histogram's companion summary family.
  std::vector<double> quantiles{0.5, 0.95, 0.99};
};

/// Maps a dot-separated burstq metric name onto the Prometheus name
/// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: invalid characters become '_' and a
/// leading digit gains a '_' prefix.  The result excludes `prefix`.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Renders the snapshot as exposition text.  An empty snapshot renders
/// to an empty string (a valid exposition document).
[[nodiscard]] std::string render_prometheus(
    const MetricsSnapshot& snap, const PrometheusOptions& options = {});

/// Validates exposition text line by line: metric-name grammar, label
/// syntax, parseable values, TYPE-before-samples discipline, cumulative
/// le-bucket monotonicity and _count == the +Inf bucket for histograms,
/// quantile labels in [0,1] for summaries.  Returns nullopt when valid,
/// otherwise a "line N: ..." diagnostic.
[[nodiscard]] std::optional<std::string> validate_exposition(
    std::string_view text);

}  // namespace burstq::obs
