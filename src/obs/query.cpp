#include "obs/query.h"

#include <cstdlib>
#include <fstream>

#include "common/error.h"
#include "obs/trace.h"

namespace burstq::obs {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

bool parse_number(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool compare(double lhs, double rhs, QueryOp op) {
  switch (op) {
    case QueryOp::kEq: return lhs == rhs;
    case QueryOp::kNe: return lhs != rhs;
    case QueryOp::kLt: return lhs < rhs;
    case QueryOp::kLe: return lhs <= rhs;
    case QueryOp::kGt: return lhs > rhs;
    case QueryOp::kGe: return lhs >= rhs;
  }
  return false;
}

/// Text rendering used for string comparison (mirrors how the JSONL
/// writer would have printed the value).
std::string value_text(const EventValue& v) {
  switch (v.tag) {
    case EventValue::Tag::kString: return v.str;
    case EventValue::Tag::kBool: return v.b ? "true" : "false";
    case EventValue::Tag::kNull: return "null";
    case EventValue::Tag::kNumber: break;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v.num);
  return buf;
}

/// Numeric view of a field value; strings are coerced when they parse
/// (CSV logs read everything back string-typed).
bool value_number(const EventValue& v, double* out) {
  switch (v.tag) {
    case EventValue::Tag::kNumber: *out = v.num; return true;
    case EventValue::Tag::kBool: *out = v.b ? 1.0 : 0.0; return true;
    case EventValue::Tag::kString: return parse_number(v.str, out);
    case EventValue::Tag::kNull: return false;
  }
  return false;
}

bool clause_matches(const QueryClause& c, const RecordedEvent& ev) {
  if (c.key == "kind") {
    const bool eq = ev.kind == c.text;
    return c.op == QueryOp::kEq ? eq : !eq;
  }
  const EventValue* v = ev.find(c.key);
  if (v == nullptr) return false;
  double field_num = 0.0;
  if (c.numeric && value_number(*v, &field_num))
    return compare(field_num, c.num, c.op);
  const std::string text = value_text(*v);
  switch (c.op) {
    case QueryOp::kEq: return text == c.text;
    case QueryOp::kNe: return text != c.text;
    default: return false;  // ordering on non-numeric values
  }
}

}  // namespace

Query Query::parse(std::string_view expr) {
  Query q;
  if (trim(expr).empty()) return q;
  std::size_t pos = 0;
  while (pos <= expr.size()) {
    std::size_t comma = expr.find(',', pos);
    if (comma == std::string_view::npos) comma = expr.size();
    const std::string_view clause = trim(expr.substr(pos, comma - pos));
    pos = comma + 1;
    BURSTQ_REQUIRE(!clause.empty(),
                   "query: empty clause in '" + std::string(expr) + "'");
    // Longest operator first so "<=" is not read as "<" + "=value".
    static constexpr struct {
      std::string_view token;
      QueryOp op;
    } kOps[] = {{"<=", QueryOp::kLe}, {">=", QueryOp::kGe},
                {"!=", QueryOp::kNe}, {"<", QueryOp::kLt},
                {">", QueryOp::kGt},  {"=", QueryOp::kEq}};
    std::size_t op_at = std::string_view::npos;
    std::size_t op_len = 0;
    QueryOp op = QueryOp::kEq;
    for (const auto& cand : kOps) {
      const std::size_t at = clause.find(cand.token);
      if (at != std::string_view::npos &&
          (op_at == std::string_view::npos || at < op_at ||
           (at == op_at && cand.token.size() > op_len))) {
        op_at = at;
        op_len = cand.token.size();
        op = cand.op;
      }
    }
    BURSTQ_REQUIRE(op_at != std::string_view::npos && op_at > 0,
                   "query: clause '" + std::string(clause) +
                       "' is not of the form key op value");
    QueryClause out;
    out.key = std::string(trim(clause.substr(0, op_at)));
    out.op = op;
    out.text = std::string(trim(clause.substr(op_at + op_len)));
    out.numeric = parse_number(out.text, &out.num);
    BURSTQ_REQUIRE(!out.key.empty(), "query: clause '" + std::string(clause) +
                                         "' has an empty key");
    BURSTQ_REQUIRE(
        out.key != "kind" || op == QueryOp::kEq || op == QueryOp::kNe,
        "query: kind supports only = and !=");
    q.clauses.push_back(std::move(out));
  }
  return q;
}

bool Query::matches(const RecordedEvent& ev) const {
  for (const QueryClause& c : clauses)
    if (!clause_matches(c, ev)) return false;
  return true;
}

std::uint64_t scan_events(const std::string& path, const EventScanFn& fn) {
  const EventFormat format = sniff_event_format(path);
  std::uint64_t total = 0;

  if (format == EventFormat::kBinary) {
    TraceReader reader(path);
    std::vector<RecordedEvent> block;
    while (true) {
      const std::uint64_t block_start = reader.valid_offset();
      block.clear();
      if (!reader.next_block(block)) break;
      for (std::size_t i = 0; i < block.size(); ++i)
        if (!fn(block[i], block_start, total + i)) return total + i + 1;
      total += block.size();
    }
    return total;
  }

  if (format == EventFormat::kCsv) {
    // Long CSV groups rows by id, so per-event byte offsets don't
    // exist; deliver the decoded events with offset 0.
    const std::vector<RecordedEvent> events = read_events_csv(path);
    for (const RecordedEvent& ev : events) {
      if (!fn(ev, 0, total)) return total + 1;
      ++total;
    }
    return total;
  }

  std::ifstream in(path, std::ios::in | std::ios::binary);
  BURSTQ_REQUIRE(in.is_open(), "cannot open trace file: " + path);
  std::string line;
  std::uint64_t offset = 0;
  while (std::getline(in, line)) {
    const std::uint64_t line_start = offset;
    offset += line.size() + 1;  // getline consumed the newline
    std::string error;
    const auto ev = parse_event_line(line, &error);
    if (!ev) continue;  // blank or foreign line
    if (!fn(*ev, line_start, total)) return total + 1;
    ++total;
  }
  return total;
}

}  // namespace burstq::obs
