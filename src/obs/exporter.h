// TelemetryExporter — periodic snapshot export over HTTP.
//
// A background refresh thread scrapes the process-wide metrics registry
// every `interval` and caches the snapshot; the HTTP server (one acceptor
// thread) serves it on demand:
//
//   GET /metrics  Prometheus text format (exposition 0.0.4).  Counters
//                 are cumulative as usual, and each counter additionally
//                 gets a `<prefix><name>_delta` gauge holding its change
//                 since the previous refresh — the scrape-to-scrape rate
//                 numerator without server-side state.  Gauges are
//                 last-write-wins.
//   GET /healthz  "ok\n" — liveness for smoke tests and orchestration.
//   GET /slo      key=value SLO report (404 when no tracker is attached).
//
// Under -DBURSTQ_NO_OBS the class is an inline stub whose start() throws
// InvalidArgument, and start_telemetry_from_args() rejects
// --telemetry-port with a clear message; no socket or thread code links.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/args.h"
#include "common/error.h"
#include "obs/slo.h"

namespace burstq::obs {

struct TelemetryOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port{0};
  /// Snapshot refresh period.
  std::chrono::milliseconds interval{1000};
  /// Optional SLO tracker backing /slo.  Not owned; must outlive the
  /// exporter.
  const SloTracker* slo{nullptr};
  /// Reported as the `service` label-free info gauge comment in /metrics.
  std::string service{"burstq"};
};

#ifndef BURSTQ_NO_OBS

class TelemetryExporter {
 public:
  /// Binds the port and starts the refresh + acceptor threads.  Throws
  /// InvalidArgument when the port cannot be bound.
  explicit TelemetryExporter(TelemetryOptions options);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Stops both threads.  Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] std::uint64_t requests_served() const;
  [[nodiscard]] std::uint64_t refreshes() const;

  /// The exact /metrics and /slo bodies (exposed for tests, which check
  /// rendering without sockets).
  [[nodiscard]] std::string render_metrics() const;
  [[nodiscard]] std::string render_slo() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // BURSTQ_NO_OBS

class TelemetryExporter {
 public:
  [[noreturn]] explicit TelemetryExporter(TelemetryOptions) {
    throw InvalidArgument(
        "telemetry exporter unavailable: built with BURSTQ_NO_OBS");
  }
  void stop() {}
  [[nodiscard]] std::uint16_t port() const { return 0; }
  [[nodiscard]] std::uint64_t requests_served() const { return 0; }
  [[nodiscard]] std::uint64_t refreshes() const { return 0; }
  [[nodiscard]] std::string render_metrics() const { return {}; }
  [[nodiscard]] std::string render_slo() const { return {}; }
};

#endif  // BURSTQ_NO_OBS

/// Declares --telemetry-port and --telemetry-interval on `args` (shared
/// by autopilot, online_cloud and burstq_cli sim).
void add_telemetry_options(ArgParser& args);

/// Starts an exporter when --telemetry-port was supplied; returns nullptr
/// otherwise.  Throws InvalidArgument for a malformed port/interval, and
/// under BURSTQ_NO_OBS whenever a port is requested (uninstrumented
/// builds must fail loudly, not silently serve an empty registry).
std::unique_ptr<TelemetryExporter> start_telemetry_from_args(
    const ArgParser& args, const SloTracker* slo = nullptr);

}  // namespace burstq::obs
