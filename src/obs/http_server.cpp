#ifndef BURSTQ_NO_OBS

#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>

namespace burstq::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 431:
      return "Request Header Fields Too Large";
    default:
      return "Error";
  }
}

void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing sensible to do
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

struct HttpServer::Impl {
  int listen_fd{-1};
  std::uint16_t port{0};
  int read_timeout_ms{5000};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::thread acceptor;
};

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, HttpHandler handler) {
  BURSTQ_REQUIRE(impl_ == nullptr,
                 "HttpServer routes must be registered before start()");
  routes_[std::move(path)] = std::move(handler);
}

void HttpServer::set_read_timeout_ms(int ms) {
  BURSTQ_REQUIRE(impl_ == nullptr,
                 "HttpServer read timeout must be set before start()");
  BURSTQ_REQUIRE(ms > 0, "HttpServer read timeout must be positive");
  read_timeout_ms_ = ms;
}

void HttpServer::start(std::uint16_t port) {
  BURSTQ_REQUIRE(impl_ == nullptr, "HttpServer already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BURSTQ_REQUIRE(fd >= 0, "telemetry: socket() failed: " +
                              std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw InvalidArgument("telemetry: cannot listen on 127.0.0.1:" +
                          std::to_string(port) + ": " + err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  impl_ = new Impl();
  impl_->listen_fd = fd;
  impl_->port = ntohs(addr.sin_port);
  impl_->read_timeout_ms = read_timeout_ms_;
  Impl* impl = impl_;
  const std::map<std::string, HttpHandler>* routes = &routes_;
  impl->acceptor = std::thread([impl, routes] {
    while (!impl->stop.load(std::memory_order_acquire)) {
      const int conn = ::accept(impl->listen_fd, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR) continue;
        break;  // listen socket shut down by stop()
      }
      // A stalled client must not pin the single acceptor thread: cap
      // how long each recv may block before we give up on the head.
      timeval timeout{};
      timeout.tv_sec = impl->read_timeout_ms / 1000;
      timeout.tv_usec = (impl->read_timeout_ms % 1000) * 1000;
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof timeout);

      // Read the request head (we never accept bodies).
      std::string req;
      char buf[1024];
      bool timed_out = false;
      while (req.size() < kMaxRequestBytes &&
             req.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(conn, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          timed_out = true;
          break;
        }
        if (n <= 0) break;
        req.append(buf, static_cast<std::size_t>(n));
      }
      const bool head_complete =
          req.find("\r\n\r\n") != std::string::npos;

      HttpResponse resp;
      const std::size_t line_end = req.find("\r\n");
      const std::size_t sp1 = req.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? sp1 : req.find(' ', sp1 + 1);
      if (timed_out && !head_complete) {
        resp = HttpResponse{408, "text/plain; charset=utf-8",
                            "request head not received in time\n"};
      } else if (!head_complete && req.size() >= kMaxRequestBytes) {
        resp = HttpResponse{431, "text/plain; charset=utf-8",
                            "request head exceeds " +
                                std::to_string(kMaxRequestBytes) +
                                " bytes\n"};
      } else if (line_end == std::string::npos ||
                 sp1 == std::string::npos ||
                 sp2 == std::string::npos || sp2 > line_end) {
        resp = HttpResponse{400, "text/plain; charset=utf-8",
                            "malformed request\n"};
      } else if (req.substr(0, sp1) != "GET") {
        resp = HttpResponse{405, "text/plain; charset=utf-8",
                            "only GET is supported\n"};
      } else {
        std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::size_t query = path.find('?');
        if (query != std::string::npos) path.resize(query);
        const auto it = routes->find(path);
        if (it == routes->end())
          resp = HttpResponse{404, "text/plain; charset=utf-8",
                              "no such endpoint: " + path + "\n"};
        else
          resp = it->second(path);
      }

      std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                         reason_phrase(resp.status) +
                         "\r\nContent-Type: " + resp.content_type +
                         "\r\nContent-Length: " +
                         std::to_string(resp.body.size()) +
                         "\r\nConnection: close\r\n\r\n";
      write_all(conn, head);
      write_all(conn, resp.body);
      ::shutdown(conn, SHUT_RDWR);
      ::close(conn);
      impl->served.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

void HttpServer::stop() {
  if (impl_ == nullptr) return;
  impl_->stop.store(true, std::memory_order_release);
  // Unblocks the acceptor's ::accept; on Linux shutdown() on a listening
  // socket makes pending and future accepts fail immediately.
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  ::close(impl_->listen_fd);
  delete impl_;
  impl_ = nullptr;
}

bool HttpServer::running() const { return impl_ != nullptr; }

std::uint16_t HttpServer::port() const {
  return impl_ == nullptr ? 0 : impl_->port;
}

std::uint64_t HttpServer::requests_served() const {
  return impl_ == nullptr ? 0
                          : impl_->served.load(std::memory_order_relaxed);
}

}  // namespace burstq::obs

#endif  // BURSTQ_NO_OBS
