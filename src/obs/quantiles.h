// Fixed-precision streaming-quantile sketch: an HDR-style histogram that
// subdivides every power-of-two octave into 2^kSketchSubBits linear
// sub-buckets.  Values below 2 * kSketchSubBuckets are stored exactly;
// everything else lands in a bucket whose width is at most 1/16 of its
// lower bound, so any quantile estimate carries a bounded *relative*
// error (kSketchRelativeError) without retaining samples.
//
// The sketch is pure index arithmetic — no allocation, no floating
// point on the record path — so obs::Histogram embeds one per shard and
// keeps its relaxed-atomic update discipline (see obs/registry.h).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace burstq::obs {

/// Sub-bucket resolution: each octave [2^(w-1), 2^w) splits into
/// 2^kSketchSubBits equal slices.
inline constexpr std::size_t kSketchSubBits = 4;
inline constexpr std::size_t kSketchSubBuckets = std::size_t{1}
                                                 << kSketchSubBits;

/// Values of bit width above this clamp into the last bucket (2^48 ns is
/// ~78 hours — far beyond any timing or size this library records).
inline constexpr std::size_t kSketchMaxWidth = 48;

/// Total bucket count: 2 * kSketchSubBuckets exact small values plus
/// kSketchSubBuckets per octave for widths (kSketchSubBits + 2)
/// .. kSketchMaxWidth.
inline constexpr std::size_t kSketchBuckets =
    2 * kSketchSubBuckets +
    (kSketchMaxWidth - kSketchSubBits - 1) * kSketchSubBuckets;

/// Worst-case relative error of quantile estimates (bucket width over
/// bucket lower bound, halved by the midpoint rule).
inline constexpr double kSketchRelativeError =
    1.0 / static_cast<double>(2 * kSketchSubBuckets);

/// Bucket index of a value.  Branch-light: one bit_width plus shifts.
[[nodiscard]] std::size_t sketch_bucket_of(std::uint64_t v) noexcept;

/// Smallest value mapping to bucket `b`.
[[nodiscard]] std::uint64_t sketch_bucket_lower(std::size_t b) noexcept;

/// Largest value mapping to bucket `b` (UINT64_MAX for the last bucket).
[[nodiscard]] std::uint64_t sketch_bucket_upper(std::size_t b) noexcept;

/// Merged sketch counts plus the exact scalars every histogram tracks.
/// quantile() walks the counts once; exact for q=0 / q=1 and for values
/// below 2 * kSketchSubBuckets, within kSketchRelativeError otherwise.
struct SketchSnapshot {
  std::uint64_t count{0};
  std::uint64_t min{0};  ///< 0 when count == 0
  std::uint64_t max{0};
  std::array<std::uint64_t, kSketchBuckets> counts{};

  [[nodiscard]] double quantile(double q) const;
};

}  // namespace burstq::obs
