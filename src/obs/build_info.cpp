#include "obs/build_info.h"

#include "obs/obs.h"
#include "obs/trace.h"

namespace burstq::obs {

#ifndef BURSTQ_VERSION
#define BURSTQ_VERSION "0.0.0-dev"
#endif

std::string_view build_version() noexcept { return BURSTQ_VERSION; }

bool build_obs_enabled() noexcept { return kEnabled; }

std::string build_info_text() {
  std::string out;
  out += "build.version=" + std::string(build_version()) + "\n";
  out += "build.obs=" + std::string(kEnabled ? "1" : "0") + "\n";
  out += "build.trace_format_version=" +
         std::to_string(static_cast<int>(kTraceVersion)) + "\n";
  return out;
}

void register_build_info_metrics() {
  BURSTQ_GAUGE("obs.build.info", 1.0);
  BURSTQ_GAUGE("obs.build.obs_enabled", kEnabled ? 1.0 : 0.0);
  BURSTQ_GAUGE("obs.build.trace_format_version",
               static_cast<double>(kTraceVersion));
}

}  // namespace burstq::obs
