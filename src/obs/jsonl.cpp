#include "obs/jsonl.h"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/error.h"

namespace burstq::obs {

const EventValue* RecordedEvent::find(std::string_view key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

double RecordedEvent::num(std::string_view key, double fallback) const {
  const EventValue* v = find(key);
  return (v != nullptr && v->tag == EventValue::Tag::kNumber) ? v->num
                                                              : fallback;
}

std::int64_t RecordedEvent::integer(std::string_view key,
                                    std::int64_t fallback) const {
  const EventValue* v = find(key);
  return (v != nullptr && v->tag == EventValue::Tag::kNumber)
             ? static_cast<std::int64_t>(std::llround(v->num))
             : fallback;
}

std::string_view RecordedEvent::str(std::string_view key) const {
  const EventValue* v = find(key);
  return (v != nullptr && v->tag == EventValue::Tag::kString)
             ? std::string_view(v->str)
             : std::string_view{};
}

bool RecordedEvent::boolean(std::string_view key, bool fallback) const {
  const EventValue* v = find(key);
  return (v != nullptr && v->tag == EventValue::Tag::kBool) ? v->b : fallback;
}

namespace {

/// Cursor over one line.
struct Cursor {
  std::string_view text;
  std::size_t pos{0};

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : text[pos]; }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos;
    return true;
  }
};

bool parse_string(Cursor& cur, std::string& out, std::string& error) {
  if (!cur.consume('"')) {
    error = "expected string";
    return false;
  }
  out.clear();
  while (!cur.done()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cur.done()) break;
    const char esc = cur.text[cur.pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (cur.pos + 4 > cur.text.size()) {
          error = "truncated \\u escape";
          return false;
        }
        const std::string hex(cur.text.substr(cur.pos, 4));
        cur.pos += 4;
        const auto code = static_cast<unsigned>(
            std::strtoul(hex.c_str(), nullptr, 16));
        // EventLog only emits \u00XX for control bytes; decode the
        // Latin-1 range and reject anything beyond it.
        if (code > 0xFF) {
          error = "unsupported \\u escape beyond \\u00ff";
          return false;
        }
        out += static_cast<char>(code);
        break;
      }
      default:
        error = "unknown escape";
        return false;
    }
  }
  error = "unterminated string";
  return false;
}

bool parse_value(Cursor& cur, EventValue& out, std::string& error) {
  cur.skip_ws();
  const char c = cur.peek();
  if (c == '"') {
    out.tag = EventValue::Tag::kString;
    return parse_string(cur, out.str, error);
  }
  const std::string_view rest = cur.text.substr(cur.pos);
  if (rest.starts_with("true")) {
    out.tag = EventValue::Tag::kBool;
    out.b = true;
    cur.pos += 4;
    return true;
  }
  if (rest.starts_with("false")) {
    out.tag = EventValue::Tag::kBool;
    out.b = false;
    cur.pos += 5;
    return true;
  }
  if (rest.starts_with("null")) {
    out.tag = EventValue::Tag::kNull;
    cur.pos += 4;
    return true;
  }
  // Number.
  const std::string buf(rest);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) {
    error = "expected a value";
    return false;
  }
  out.tag = EventValue::Tag::kNumber;
  out.num = v;
  cur.pos += static_cast<std::size_t>(end - buf.c_str());
  return true;
}

}  // namespace

std::optional<RecordedEvent> parse_event_line(std::string_view line,
                                              std::string* error) {
  std::string err;
  const auto fail = [&](const std::string& what) -> std::optional<RecordedEvent> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };

  Cursor cur{line, 0};
  cur.skip_ws();
  if (cur.done()) return fail("");  // blank line, not an error
  if (!cur.consume('{')) return fail("expected '{'");

  RecordedEvent ev;
  if (cur.consume('}')) return fail("event without a kind");
  while (true) {
    std::string key;
    if (!parse_string(cur, key, err)) return fail(err);
    if (!cur.consume(':')) return fail("expected ':'");
    EventValue value;
    if (!parse_value(cur, value, err)) return fail(err);
    if (key == "kind") {
      if (value.tag != EventValue::Tag::kString)
        return fail("kind must be a string");
      ev.kind = value.str;
    } else {
      ev.fields.emplace_back(std::move(key), std::move(value));
    }
    if (cur.consume(',')) continue;
    if (cur.consume('}')) break;
    return fail("expected ',' or '}'");
  }
  cur.skip_ws();
  if (!cur.done()) return fail("trailing characters after '}'");
  if (ev.kind.empty()) return fail("event without a kind");
  return ev;
}

std::vector<RecordedEvent> read_events_jsonl(const std::string& path) {
  std::ifstream in(path);
  BURSTQ_REQUIRE(in.is_open(), "cannot open event log: " + path);

  std::vector<RecordedEvent> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string error;
    auto ev = parse_event_line(line, &error);
    if (!ev) {
      if (error.empty()) continue;  // blank line
      throw InvalidArgument(path + ":" + std::to_string(line_no) + ": " +
                            error);
    }
    out.push_back(std::move(*ev));
  }
  return out;
}

}  // namespace burstq::obs
