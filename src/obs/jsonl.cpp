#include "obs/jsonl.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/error.h"

namespace burstq::obs {

const EventValue* RecordedEvent::find(std::string_view key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

double RecordedEvent::num(std::string_view key, double fallback) const {
  const EventValue* v = find(key);
  return (v != nullptr && v->tag == EventValue::Tag::kNumber) ? v->num
                                                              : fallback;
}

std::int64_t RecordedEvent::integer(std::string_view key,
                                    std::int64_t fallback) const {
  const EventValue* v = find(key);
  return (v != nullptr && v->tag == EventValue::Tag::kNumber)
             ? static_cast<std::int64_t>(std::llround(v->num))
             : fallback;
}

std::string_view RecordedEvent::str(std::string_view key) const {
  const EventValue* v = find(key);
  return (v != nullptr && v->tag == EventValue::Tag::kString)
             ? std::string_view(v->str)
             : std::string_view{};
}

bool RecordedEvent::boolean(std::string_view key, bool fallback) const {
  const EventValue* v = find(key);
  return (v != nullptr && v->tag == EventValue::Tag::kBool) ? v->b : fallback;
}

namespace {

/// Cursor over one line.
struct Cursor {
  std::string_view text;
  std::size_t pos{0};

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : text[pos]; }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos;
    return true;
  }
};

bool parse_string(Cursor& cur, std::string& out, std::string& error) {
  if (!cur.consume('"')) {
    error = "expected string";
    return false;
  }
  out.clear();
  while (!cur.done()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cur.done()) break;
    const char esc = cur.text[cur.pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (cur.pos + 4 > cur.text.size()) {
          error = "truncated \\u escape";
          return false;
        }
        const std::string hex(cur.text.substr(cur.pos, 4));
        cur.pos += 4;
        const auto code = static_cast<unsigned>(
            std::strtoul(hex.c_str(), nullptr, 16));
        // EventLog only emits \u00XX for control bytes; decode the
        // Latin-1 range and reject anything beyond it.
        if (code > 0xFF) {
          error = "unsupported \\u escape beyond \\u00ff";
          return false;
        }
        out += static_cast<char>(code);
        break;
      }
      default:
        error = "unknown escape";
        return false;
    }
  }
  error = "unterminated string";
  return false;
}

bool parse_value(Cursor& cur, EventValue& out, std::string& error) {
  cur.skip_ws();
  const char c = cur.peek();
  if (c == '"') {
    out.tag = EventValue::Tag::kString;
    return parse_string(cur, out.str, error);
  }
  const std::string_view rest = cur.text.substr(cur.pos);
  if (rest.starts_with("true")) {
    out.tag = EventValue::Tag::kBool;
    out.b = true;
    cur.pos += 4;
    return true;
  }
  if (rest.starts_with("false")) {
    out.tag = EventValue::Tag::kBool;
    out.b = false;
    cur.pos += 5;
    return true;
  }
  if (rest.starts_with("null")) {
    out.tag = EventValue::Tag::kNull;
    cur.pos += 4;
    return true;
  }
  // Number.
  const std::string buf(rest);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) {
    error = "expected a value";
    return false;
  }
  out.tag = EventValue::Tag::kNumber;
  out.num = v;
  cur.pos += static_cast<std::size_t>(end - buf.c_str());
  return true;
}

/// Parses one line into `ev` (cleared first).  kBlank means a
/// whitespace-only line; kError sets `error`.
enum class LineParse { kEvent, kBlank, kError };

LineParse parse_line_into(std::string_view line, RecordedEvent& ev,
                          std::string& error) {
  ev.kind.clear();
  ev.fields.clear();
  std::string err;
  const auto fail = [&](std::string what) {
    error = std::move(what);
    return LineParse::kError;
  };

  Cursor cur{line, 0};
  cur.skip_ws();
  if (cur.done()) return LineParse::kBlank;
  if (!cur.consume('{')) return fail("expected '{'");

  if (cur.consume('}')) return fail("event without a kind");
  while (true) {
    std::string key;
    if (!parse_string(cur, key, err)) return fail(err);
    if (!cur.consume(':')) return fail("expected ':'");
    if (key == "kind") {
      EventValue value;
      if (!parse_value(cur, value, err)) return fail(err);
      if (value.tag != EventValue::Tag::kString)
        return fail("kind must be a string");
      ev.kind = std::move(value.str);
    } else {
      // Parse straight into the field slot — values are never moved.
      auto& field = ev.fields.emplace_back();
      field.first = std::move(key);
      if (!parse_value(cur, field.second, err)) return fail(err);
    }
    if (cur.consume(',')) continue;
    if (cur.consume('}')) break;
    return fail("expected ',' or '}'");
  }
  cur.skip_ws();
  if (!cur.done()) return fail("trailing characters after '}'");
  if (ev.kind.empty()) return fail("event without a kind");
  return LineParse::kEvent;
}

}  // namespace

std::optional<RecordedEvent> parse_event_line(std::string_view line,
                                              std::string* error) {
  RecordedEvent ev;
  std::string err;
  const LineParse result = parse_line_into(line, ev, err);
  if (result == LineParse::kEvent) return ev;
  if (error != nullptr) *error = result == LineParse::kBlank ? "" : err;
  return std::nullopt;
}

namespace {

/// Splits one RFC 4180 record (possibly spanning several physical lines
/// when quoted fields embed newlines) into fields.  `in` has already
/// yielded `line` via getline; more lines are pulled as needed.  Returns
/// false on an unterminated quoted field at end of file.
bool split_csv_record(std::istream& in, std::string line,
                      std::vector<std::string>& fields) {
  fields.clear();
  fields.emplace_back();
  bool quoted = false;
  std::size_t i = 0;
  while (true) {
    if (i == line.size()) {
      if (!quoted) return true;
      // Quoted field continues on the next physical line.
      std::string next;
      if (!std::getline(in, next)) return false;
      fields.back() += '\n';
      line = std::move(next);
      i = 0;
      continue;
    }
    const char c = line[i++];
    if (quoted) {
      if (c != '"') {
        fields.back() += c;
      } else if (i < line.size() && line[i] == '"') {
        fields.back() += '"';
        ++i;
      } else {
        quoted = false;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.emplace_back();
    } else {
      fields.back() += c;
    }
  }
}

}  // namespace

std::vector<RecordedEvent> read_events_csv(const std::string& path) {
  std::ifstream in(path);
  BURSTQ_REQUIRE(in.is_open(), "cannot open event log: " + path);

  std::vector<RecordedEvent> out;
  std::string line;
  std::vector<std::string> fields;
  std::size_t line_no = 0;
  bool saw_header = false;
  std::string current_id;
  const auto fail = [&](const std::string& what) {
    throw InvalidArgument(path + ":" + std::to_string(line_no) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_no;
    // CRLF tolerance on the header line only — a trailing \r inside a
    // data record may be quoted field content and must survive.
    if (!saw_header && !line.empty() && line.back() == '\r')
      line.pop_back();
    if (line.empty()) continue;
    if (!split_csv_record(in, std::move(line), fields))
      fail("unterminated quoted field");
    line = {};
    if (!saw_header) {
      if (fields != std::vector<std::string>{"id", "kind", "key", "value"})
        fail("expected header id,kind,key,value");
      saw_header = true;
      continue;
    }
    if (fields.size() != 4) fail("expected 4 columns, got " +
                                 std::to_string(fields.size()));
    std::string& id = fields[0];
    std::string& kind = fields[1];
    std::string& key = fields[2];
    std::string& value = fields[3];
    if (kind.empty()) fail("row without a kind");
    if (out.empty() || id != current_id) {
      // A fresh id opens a new event; its first row carries the kind.
      if (!key.empty() || !value.empty())
        fail("event must start with its kind row");
      RecordedEvent ev;
      ev.kind = std::move(kind);
      out.push_back(std::move(ev));
      current_id = std::move(id);
      continue;
    }
    if (kind != out.back().kind) fail("kind changed within one event id");
    EventValue v;
    v.tag = EventValue::Tag::kString;
    v.str = std::move(value);
    out.back().fields.emplace_back(std::move(key), std::move(v));
  }
  return out;
}

std::vector<RecordedEvent> read_events_jsonl(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  BURSTQ_REQUIRE(in.is_open(), "cannot open event log: " + path);

  // Slurp once: the newline count sizes the output up front, so events
  // parse in place and are never moved by vector growth.
  std::string text;
  in.seekg(0, std::ios::end);
  const std::streamoff len = in.tellg();
  BURSTQ_REQUIRE(len >= 0, "cannot read event log: " + path);
  text.resize(static_cast<std::size_t>(len));
  in.seekg(0);
  in.read(text.data(), len);

  std::vector<RecordedEvent> out;
  out.reserve(static_cast<std::size_t>(
                  std::count(text.begin(), text.end(), '\n')) +
              1);
  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::string error;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = nl == std::string::npos ? text.size() : nl;
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    const LineParse result = parse_line_into(line, out.emplace_back(), error);
    if (result == LineParse::kEvent) continue;
    out.pop_back();
    if (result == LineParse::kBlank) continue;  // blank line
    throw InvalidArgument(path + ":" + std::to_string(line_no) + ": " + error);
  }
  return out;
}

}  // namespace burstq::obs
