#include "fit/trace_io.h"

#include <charconv>
#include <fstream>
#include <string>

#include "common/csv.h"
#include "common/error.h"

namespace burstq {

void write_demand_trace_csv(const std::string& path,
                            const DemandTrace& trace) {
  BURSTQ_REQUIRE(!trace.empty(), "refusing to write an empty trace");
  const std::size_t n_vms = trace.front().size();
  BURSTQ_REQUIRE(n_vms > 0, "trace has no VM columns");

  CsvWriter csv(path);
  csv.begin_row();
  csv.field("slot");
  for (std::size_t i = 0; i < n_vms; ++i) csv.field("vm" + std::to_string(i));
  csv.end_row();

  for (std::size_t t = 0; t < trace.size(); ++t) {
    BURSTQ_REQUIRE(trace[t].size() == n_vms, "ragged demand trace");
    csv.begin_row();
    csv.field(static_cast<std::size_t>(t));
    for (double v : trace[t]) csv.field(v);
    csv.end_row();
  }
  csv.flush();
}

namespace {

std::vector<std::string> split_fields(const std::string& line) {
  // Trace CSVs contain no quoted fields; a plain comma split suffices.
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

double parse_double(const std::string& s) {
  double v = 0.0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), v);
  BURSTQ_REQUIRE(res.ec == std::errc{} && res.ptr == s.data() + s.size(),
                 "malformed numeric field in trace CSV: '" + s + "'");
  return v;
}

}  // namespace

DemandTrace read_demand_trace_csv(const std::string& path) {
  std::ifstream in(path);
  BURSTQ_REQUIRE(in.is_open(), "cannot open trace CSV: " + path);

  std::string line;
  BURSTQ_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 "trace CSV has no header row");
  const std::size_t columns = split_fields(line).size();
  BURSTQ_REQUIRE(columns >= 2, "trace CSV needs a slot column and >= 1 VM");

  DemandTrace trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto fields = split_fields(line);
    BURSTQ_REQUIRE(fields.size() == columns,
                   "trace CSV row has wrong arity");
    std::vector<double> row;
    row.reserve(columns - 1);
    for (std::size_t c = 1; c < columns; ++c)
      row.push_back(parse_double(fields[c]));
    trace.push_back(std::move(row));
  }
  BURSTQ_REQUIRE(!trace.empty(), "trace CSV has no data rows");
  return trace;
}

}  // namespace burstq
